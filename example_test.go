package mvpbt_test

import (
	"fmt"

	"mvpbt"
)

// row encodes [keyLen][key][value]; the index key is the embedded key.
func row(key, value string) []byte {
	out := []byte{byte(len(key))}
	out = append(out, key...)
	return append(out, value...)
}

func keyOf(r []byte) []byte { return r[1 : 1+int(r[0])] }

// Example shows the core flow: a table with an MV-PBT primary index,
// MVCC updates, and a snapshot read that keeps seeing the old version —
// the paper's Figure 1 in six statements.
func Example() {
	eng := mvpbt.NewEngine(mvpbt.Config{})
	tbl, _ := eng.NewTable("t", mvpbt.HeapSIAS, mvpbt.IndexDef{
		Name: "pk", Kind: mvpbt.IdxMVPBT, Unique: true, Extract: keyOf,
	})
	pk := tbl.Indexes()[0]

	tx := eng.Begin()
	tbl.Insert(tx, row("t", "v0"))
	eng.Commit(tx)

	long := eng.Begin() // the long-running reader TXR

	for _, v := range []string{"v1", "v2", "v3"} { // TXU1..TXU3
		u := eng.Begin()
		cur, _ := tbl.LookupOne(u, pk, []byte("t"), true)
		tbl.Update(u, *cur, row("t", v))
		eng.Commit(u)
	}

	old, _ := tbl.LookupOne(long, pk, []byte("t"), true)
	fmt.Println("TXR sees:", string(old.Row[2:]))
	fresh := eng.Begin()
	cur, _ := tbl.LookupOne(fresh, pk, []byte("t"), true)
	fmt.Println("a new transaction sees:", string(cur.Row[2:]))
	eng.Commit(long)
	eng.Commit(fresh)
	// Output:
	// TXR sees: v0
	// a new transaction sees: v3
}

// ExampleTable_Count demonstrates the index-only visibility check: the
// COUNT touches no base-table pages at all.
func ExampleTable_Count() {
	eng := mvpbt.NewEngine(mvpbt.Config{})
	tbl, _ := eng.NewTable("t", mvpbt.HeapSIAS, mvpbt.IndexDef{
		Name: "pk", Kind: mvpbt.IdxMVPBT, Unique: true, Extract: keyOf,
	})
	tx := eng.Begin()
	for i := 0; i < 10; i++ {
		tbl.Insert(tx, row(fmt.Sprintf("k%02d", i), "v"))
	}
	eng.Commit(tx)

	read := eng.Begin()
	n, _ := tbl.Count(read, tbl.Indexes()[0], []byte("k03"), []byte("k08"))
	fmt.Println("count:", n)
	eng.Commit(read)
	// Output:
	// count: 5
}

// ExampleNewMVPBTKV demonstrates the clustered key-value engine of the
// paper's WiredTiger comparison.
func ExampleNewMVPBTKV() {
	eng := mvpbt.NewEngine(mvpbt.Config{})
	kv, _ := mvpbt.NewMVPBTKV(eng, "store", mvpbt.MVPBTKVOptions{BloomBits: 10})
	kv.Put([]byte("color"), []byte("green"))
	kv.Put([]byte("color"), []byte("blue")) // blind overwrite: just hits PN
	v, ok, _ := kv.Get([]byte("color"))
	fmt.Println(string(v), ok)
	kv.Delete([]byte("color"))
	_, ok, _ = kv.Get([]byte("color"))
	fmt.Println("after delete:", ok)
	// Output:
	// blue true
	// after delete: false
}
