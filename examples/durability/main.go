// Durability: run transactions against a WAL-enabled engine, "crash"
// (throw the in-memory engine away, keeping only the log image that
// reached the device), then recover into a fresh engine and verify that
// exactly the committed state survives — including a transaction whose
// commit never reached the log.
package main

import (
	"fmt"

	"mvpbt"
)

func row(key, value string) []byte {
	out := []byte{byte(len(key))}
	out = append(out, key...)
	return append(out, value...)
}

func keyOf(r []byte) []byte   { return r[1 : 1+int(r[0])] }
func valueOf(r []byte) string { return string(r[1+int(r[0]):]) }

func newEngine() (*mvpbt.Engine, *mvpbt.Table, *mvpbt.Index) {
	eng := mvpbt.NewEngine(mvpbt.Config{EnableWAL: true})
	tbl, err := eng.NewTable("ledger", mvpbt.HeapSIAS, mvpbt.IndexDef{
		Name: "pk", Kind: mvpbt.IdxMVPBT, Unique: true, BloomBits: 10, Extract: keyOf,
	})
	if err != nil {
		panic(err)
	}
	return eng, tbl, tbl.Indexes()[0]
}

func main() {
	eng, ledger, pk := newEngine()

	// Committed work.
	tx := eng.Begin()
	ledger.Insert(tx, row("alice", "100"))
	ledger.Insert(tx, row("bob", "250"))
	eng.Commit(tx)

	tx = eng.Begin()
	cur, _ := ledger.LookupOne(tx, pk, []byte("alice"), true)
	ledger.Update(tx, *cur, row("alice", "175"))
	eng.Commit(tx)

	// In-flight work that will be lost in the crash: logged but never
	// committed.
	inflight := eng.Begin()
	ledger.Insert(inflight, row("mallory", "999999"))

	// CRASH: all that survives is the log image on the device.
	img := eng.LogImage()
	fmt.Printf("crash! %d bytes of WAL survived on the device\n\n", len(img))

	// Recovery: rebuild the schema, replay the log.
	eng2, ledger2, pk2 := newEngine()
	applied, err := eng2.Recover(img, map[string]*mvpbt.Table{"ledger": ledger2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered %d committed transactions:\n", applied)
	read := eng2.Begin()
	err = ledger2.Scan(read, pk2, []byte("a"), nil, true, func(r mvpbt.RowRef) bool {
		fmt.Printf("  %s -> %s\n", r.Key, valueOf(r.Row))
		return true
	})
	if err != nil {
		panic(err)
	}
	if m, _ := ledger2.LookupOne(read, pk2, []byte("mallory"), false); m == nil {
		fmt.Println("uncommitted transaction correctly discarded")
	}
	eng2.Commit(read)
}
