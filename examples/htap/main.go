// HTAP: the paper's Figure 1/2 scenario end to end. A long-running
// analytical reader holds a snapshot while update transactions produce
// version chains; the same COUNT(a <= 10) query then runs against a
// version-oblivious B-Tree (candidates + base-table visibility checks,
// one random read per matching version) and against MV-PBT (index-only
// visibility check, zero base-table reads) — with the simulated device's
// I/O counters showing the §2 cost model.
package main

import (
	"fmt"

	"mvpbt"
	"mvpbt/internal/sfile"
)

func row(key, value string) []byte {
	out := []byte{byte(len(key))}
	out = append(out, key...)
	return append(out, value...)
}

func keyOf(r []byte) []byte { return r[1 : 1+int(r[0])] }

type engine struct {
	name string
	eng  *mvpbt.Engine
	tbl  *mvpbt.Table
	ix   *mvpbt.Index
}

func build(name string, kind int) *engine {
	eng := mvpbt.NewEngine(mvpbt.Config{BufferPages: 64})
	k := mvpbt.IdxBTree
	if kind == 1 {
		k = mvpbt.IdxMVPBT
	}
	tbl, err := eng.NewTable("r", mvpbt.HeapSIAS, mvpbt.IndexDef{
		Name: "a", Kind: k, Unique: true, BloomBits: 10, Extract: keyOf,
	})
	if err != nil {
		panic(err)
	}
	return &engine{name: name, eng: eng, tbl: tbl, ix: tbl.Indexes()[0]}
}

func main() {
	engines := []*engine{build("B-Tree (version-oblivious)", 0), build("MV-PBT (version-aware)", 1)}

	for _, e := range engines {
		// TXU0 inserts tuples t0..t499 (attribute a = the key).
		tx := e.eng.Begin()
		for i := 0; i < 500; i++ {
			if _, _, err := e.tbl.Insert(tx, row(fmt.Sprintf("a%03d", i), "v0")); err != nil {
				panic(err)
			}
		}
		e.eng.Commit(tx)

		// TXR starts its long-running query: snapshot taken NOW.
		txr := e.eng.Begin()

		// TXU1..TXU3 update every tuple while TXR runs (Figure 1): the
		// version chains grow to 4, but only v0 is visible to TXR.
		for u := 1; u <= 3; u++ {
			txu := e.eng.Begin()
			for i := 0; i < 500; i++ {
				cur, err := e.tbl.LookupOne(txu, e.ix, []byte(fmt.Sprintf("a%03d", i)), true)
				if err != nil || cur == nil {
					panic("update lookup failed")
				}
				if _, err := e.tbl.Update(txu, *cur, row(fmt.Sprintf("a%03d", i), fmt.Sprintf("v%d", u))); err != nil {
					panic(err)
				}
			}
			e.eng.Commit(txu)
		}
		e.eng.Pool.FlushAll()
		e.eng.Pool.EvictAll() // cold start, like the paper's cleaned cache

		// TXR's query: SELECT COUNT(*) FROM r WHERE a <= a499.
		tableBefore := e.eng.Pool.Stats()[sfile.ClassTable]
		devBefore := e.eng.Dev.Stats()
		n, err := e.tbl.Count(txr, e.ix, []byte("a000"), []byte("a999"))
		if err != nil {
			panic(err)
		}
		tableAfter := e.eng.Pool.Stats()[sfile.ClassTable]
		devAfter := e.eng.Dev.Stats()
		e.eng.Commit(txr)

		fmt.Printf("%s\n", e.name)
		fmt.Printf("  COUNT(*) under TXR's old snapshot = %d (each tuple counted once, at version v0)\n", n)
		fmt.Printf("  base-table page requests during query: %d\n", tableAfter.Requests-tableBefore.Requests)
		d := devAfter.Sub(devBefore)
		fmt.Printf("  device reads: %d (%.2f ms simulated I/O time)\n\n", d.Reads, d.ReadTime.Seconds()*1000)
	}
	fmt.Println("The version-oblivious index pays COST(index scan) + random base-table I/O")
	fmt.Println("per matching tuple-version (paper §2, Figure 2); MV-PBT answers the same")
	fmt.Println("query with the index-only visibility check (§4.4).")
}
