// TPC-C: load a scaled TPC-C database on two engine configurations — the
// PostgreSQL-style baseline (HOT heap + B-Tree) and the paper's stack
// (SIAS append storage + MV-PBT) — run the standard transaction mix, and
// report throughput, consistency and storage behaviour side by side.
package main

import (
	"fmt"

	"mvpbt"
	"mvpbt/internal/db"
	"mvpbt/internal/simclock"
	"mvpbt/internal/workload/tpcc"
)

func main() {
	configs := []struct {
		name string
		cfg  tpcc.Config
	}{
		{"B-Tree on HOT heap (PostgreSQL-style)", tpcc.Config{
			Heap: mvpbt.HeapHOT, Index: mvpbt.IdxBTree, RefMode: mvpbt.RefPhysical,
		}},
		{"MV-PBT on SIAS append storage (the paper)", tpcc.Config{
			Heap: mvpbt.HeapSIAS, Index: mvpbt.IdxMVPBT, RefMode: mvpbt.RefPhysical,
			BloomBits: 10, PrefixLen: 12,
		}},
	}
	const txns = 3000
	for _, c := range configs {
		eng := db.NewEngine(db.Config{BufferPages: 512, PartitionBufferBytes: 512 << 10})
		c.cfg.Warehouses = 1
		c.cfg.CustomersPerDistrict = 60
		c.cfg.Items = 300
		c.cfg.AutoVacuumEvery = 200
		b, err := tpcc.New(eng, c.cfg)
		if err != nil {
			panic(err)
		}
		if err := b.Load(); err != nil {
			panic(err)
		}
		sw := simclock.StartStopwatch(eng.Clock)
		if err := b.Run(txns); err != nil {
			panic(err)
		}
		el := sw.Elapsed()

		fmt.Printf("%s\n", c.name)
		fmt.Printf("  %d transactions in %v composite time = %.0f tx/min\n",
			txns, el.Round(1e6), float64(b.Stats.Total())/el.Minutes())
		fmt.Printf("  mix: %d new-order, %d payment, %d order-status, %d delivery, %d stock-level (%d rollbacks)\n",
			b.Stats.NewOrders, b.Stats.Payments, b.Stats.OrderStatus, b.Stats.Deliveries, b.Stats.StockLevels, b.Stats.Aborts)

		// TPC-C consistency condition: warehouse YTD equals the sum of its
		// districts' YTDs.
		tx := eng.Begin()
		var wYTD, dYTD int64
		wt := b.AllTables()[0]
		wt.Scan(tx, wt.Indexes()[0], []byte{0, 0, 0, 0}, []byte{255, 255, 255, 255}, true, func(rr db.RowRef) bool {
			wYTD += tpcc.DecodeWarehouse(rr.Row).YTD
			return true
		})
		dt := b.DistrictTable()
		dt.Scan(tx, dt.Indexes()[0], []byte{0, 0, 0, 0}, []byte{255, 255, 255, 255}, true, func(rr db.RowRef) bool {
			dYTD += tpcc.DecodeDistrict(rr.Row).YTD
			return true
		})
		eng.Commit(tx)
		fmt.Printf("  consistency: warehouse YTD %d == sum(district YTD) %d: %v\n", wYTD, dYTD, wYTD == dYTD)

		s := eng.Dev.Stats()
		fmt.Printf("  device: %d writes (%.1f%% sequential), %d reads\n\n",
			s.Writes, 100*float64(s.SeqWrites)/float64(max64(s.Writes, 1)), s.Reads)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
