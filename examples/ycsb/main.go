// YCSB: a miniature of the paper's Figure 15a — workload A (50% reads,
// 50% updates, zipfian) on the three KV engines: clustered B-Tree,
// LSM-Tree and MV-PBT. Reports composite throughput (CPU + simulated I/O
// time) and device write statistics (write amplification shows up in the
// LSM's compaction traffic).
package main

import (
	"fmt"

	"mvpbt"
	"mvpbt/internal/simclock"
	"mvpbt/internal/workload/ycsb"
)

func main() {
	const (
		records = 10000
		ops     = 10000
	)
	type entry struct {
		name string
		mk   func() (mvpbt.KV, *mvpbt.Engine)
	}
	engines := []entry{
		{"B-Tree", func() (mvpbt.KV, *mvpbt.Engine) {
			e := mvpbt.NewEngine(mvpbt.Config{BufferPages: 256})
			kv, err := mvpbt.NewBTreeKV(e, "ycsb")
			if err != nil {
				panic(err)
			}
			return kv, e
		}},
		{"LSM-Tree", func() (mvpbt.KV, *mvpbt.Engine) {
			e := mvpbt.NewEngine(mvpbt.Config{BufferPages: 256})
			return mvpbt.NewLSMKV(e, "ycsb", mvpbt.LSMOptions{MemtableBytes: 256 << 10, BloomBits: 10}), e
		}},
		{"MV-PBT", func() (mvpbt.KV, *mvpbt.Engine) {
			e := mvpbt.NewEngine(mvpbt.Config{BufferPages: 256, PartitionBufferBytes: 512 << 10})
			kv, err := mvpbt.NewMVPBTKV(e, "ycsb", mvpbt.MVPBTKVOptions{BloomBits: 10, MaxPartitions: 10})
			if err != nil {
				panic(err)
			}
			return kv, e
		}},
	}

	fmt.Printf("YCSB workload A: %d records, %d requests (50%% read / 50%% update, zipfian)\n\n", records, ops)
	for _, en := range engines {
		kv, eng := en.mk()
		y := ycsb.NewRunner(kv, ycsb.Config{Records: records, ValueLen: 256, Seed: 42})
		if err := y.Load(); err != nil {
			panic(err)
		}
		loaded := eng.Dev.Stats()
		sw := simclock.StartStopwatch(eng.Clock)
		if err := y.Run(ycsb.WorkloadA, ops); err != nil {
			panic(err)
		}
		el := sw.Elapsed()
		d := eng.Dev.Stats().Sub(loaded)
		fmt.Printf("%-10s %8.1f ops/s   device: %5d writes (%4.1f MiB, %4.1f%% sequential), %5d reads\n",
			en.name, float64(ops)/el.Seconds(), d.Writes,
			float64(d.BytesWritten)/(1<<20),
			100*float64(d.SeqWrites)/max1(float64(d.Writes)), d.Reads)
	}
	fmt.Println("\nMV-PBT accumulates modifications in its main-memory partition and appends")
	fmt.Println("immutable partitions; the LSM-Tree pays compaction write amplification; the")
	fmt.Println("B-Tree updates leaves in place (random writes).")
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
