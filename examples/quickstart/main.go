// Quickstart: open an engine, create a table with an MV-PBT primary
// index, and run transactional inserts, updates, deletes and snapshot
// reads through the public API.
package main

import (
	"fmt"

	"mvpbt"
)

// Rows are [keyLen][key][value]; the index key is the embedded key.
func row(key, value string) []byte {
	out := []byte{byte(len(key))}
	out = append(out, key...)
	return append(out, value...)
}

func keyOf(r []byte) []byte   { return r[1 : 1+int(r[0])] }
func valueOf(r []byte) string { return string(r[1+int(r[0]):]) }

func main() {
	eng := mvpbt.NewEngine(mvpbt.Config{})
	accounts, err := eng.NewTable("accounts", mvpbt.HeapSIAS, mvpbt.IndexDef{
		Name: "pk", Kind: mvpbt.IdxMVPBT, Unique: true, BloomBits: 10,
		Extract: keyOf,
	})
	if err != nil {
		panic(err)
	}
	pk := accounts.Indexes()[0]

	// Insert a few accounts in one transaction.
	tx := eng.Begin()
	for _, name := range []string{"alice", "bob", "carol"} {
		if _, _, err := accounts.Insert(tx, row(name, "balance=100")); err != nil {
			panic(err)
		}
	}
	eng.Commit(tx)

	// Update bob under MVCC: read the visible version, then supersede it.
	tx = eng.Begin()
	cur, err := accounts.LookupOne(tx, pk, []byte("bob"), true)
	if err != nil || cur == nil {
		panic(fmt.Sprint("lookup bob: ", cur, err))
	}
	if _, err := accounts.Update(tx, *cur, row("bob", "balance=250")); err != nil {
		panic(err)
	}
	eng.Commit(tx)

	// Delete carol.
	tx = eng.Begin()
	cur, _ = accounts.LookupOne(tx, pk, []byte("carol"), true)
	if err := accounts.Delete(tx, *cur); err != nil {
		panic(err)
	}
	eng.Commit(tx)

	// A fresh snapshot sees the updated state...
	read := eng.Begin()
	fmt.Println("current snapshot:")
	err = accounts.Scan(read, pk, []byte("a"), []byte("z"), true, func(r mvpbt.RowRef) bool {
		fmt.Printf("  %s -> %s\n", r.Key, valueOf(r.Row))
		return true
	})
	if err != nil {
		panic(err)
	}
	eng.Commit(read)

	// ...and COUNT(*) runs index-only: no base-table page is touched.
	read = eng.Begin()
	n, err := accounts.Count(read, pk, []byte("a"), []byte("z"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("count(*) via index-only visibility check: %d\n", n)
	eng.Commit(read)
}
