// Command mvpbt-inspect runs a small workload against an MV-PBT and dumps
// the resulting structure: partition metadata, filter statistics, the
// index records of selected keys (matter/anti-matter, timestamps), and
// device counters. A teaching and debugging tool.
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/maint"
	"mvpbt/internal/shard"
	"mvpbt/internal/txn"
)

func main() {
	var (
		tuples      = flag.Int("tuples", 200, "number of tuples")
		updates     = flag.Int("updates", 5, "updates per tuple")
		pbuf        = flag.Int("pbuf", 32<<10, "partition buffer bytes")
		key         = flag.String("key", "key-000", "key whose index records to dump")
		bgMaint     = flag.Bool("maint", false, "run eviction/merge/GC on the background maintenance service")
		capacity    = flag.Int64("capacity", 64<<20, "device capacity budget in bytes (0 = unbounded)")
		groupCommit = flag.Bool("group-commit", false, "route commits through the WAL group-commit batcher")
		shards      = flag.Int("shards", 0, "inspect a sharded deployment with this many engines instead of one engine")
	)
	flag.Parse()

	if *shards > 0 {
		inspectShards(*shards, *tuples, *updates, *pbuf, *capacity)
		return
	}

	eng := db.NewEngine(db.Config{
		BufferPages: 1024, PartitionBufferBytes: *pbuf, BackgroundMaint: *bgMaint,
		EnableWAL: true, DeviceCapacityBytes: *capacity,
		GroupCommit: db.GroupCommitConfig{Enabled: *groupCommit},
	})
	defer eng.Close()
	tbl, err := eng.NewTable("demo", db.HeapSIAS, db.IndexDef{
		Name: "pk", Kind: db.IdxMVPBT, Unique: true, BloomBits: 10,
		Extract: func(row []byte) []byte { return row[1 : 1+int(row[0])] },
	})
	if err != nil {
		panic(err)
	}
	ix := tbl.Indexes()[0]

	row := func(k, v string) []byte {
		out := []byte{byte(len(k))}
		out = append(out, k...)
		return append(out, v...)
	}
	keyOf := func(i int) string { return fmt.Sprintf("key-%03d", i) }

	// A long-running reader pins all versions, like the paper's Figure 1.
	var long *txn.Tx
	for round := 0; round <= *updates; round++ {
		tx := eng.Begin()
		for i := 0; i < *tuples; i++ {
			k := keyOf(i)
			if round == 0 {
				if _, _, err := tbl.Insert(tx, row(k, "v0")); err != nil {
					panic(err)
				}
				continue
			}
			cur, err := tbl.LookupOne(tx, ix, []byte(k), true)
			if err != nil || cur == nil {
				panic(fmt.Sprintf("lookup %s: %v %v", k, cur, err))
			}
			if _, err := tbl.Update(tx, *cur, row(k, fmt.Sprintf("v%d", round))); err != nil {
				panic(err)
			}
		}
		eng.Commit(tx)
		if round == 0 {
			long = eng.Begin()
		}
	}

	if eng.Maint != nil {
		eng.Maint.Drain() // settle in-flight evictions/merges before dumping
	}

	mv := ix.MV()
	fmt.Printf("== MV-PBT structure after %d tuples x %d updates ==\n", *tuples, *updates)
	fmt.Printf("PN: %d bytes in memory\n", mv.PNBytes())
	for _, p := range mv.Partitions() {
		fmt.Printf("P%-3d pages=%-4d leaves=%-4d records=%-6d keys [%q .. %q] ts [%d..%d]",
			p.No, p.NumPages, p.NumLeaves, p.NumRecords, p.MinKey, p.MaxKey, p.MinTS, p.MaxTS)
		if p.Filter != nil {
			fmt.Printf(" bloom=%dB", p.Filter.SizeBytes())
		}
		fmt.Println()
	}
	st := mv.Stats()
	fmt.Printf("stats: evictions=%d merges=%d gc(marked=%d sweptPN=%d evict=%d)\n",
		st.Evictions, st.Merges, st.GCMarked, st.GCSweptPN, st.GCEvict)
	fmt.Printf("bloom: neg=%d pos=%d falsepos=%d\n",
		st.Bloom.Negatives, st.Bloom.Positives, st.Bloom.FalsePositives)
	if eng.Maint != nil {
		ms := eng.Maint.Stats()
		stalls, stallTime := eng.PBuf.Stalls()
		fmt.Printf("maintenance: submitted=%d deduped=%d throttle=%v stalls=%d stall_time=%v\n",
			ms.Submitted, ms.Deduped, ms.Throttle, stalls, stallTime)
		for k, js := range ms.Jobs {
			if js.Runs > 0 {
				fmt.Printf("  %-7s runs=%-4d errors=%-2d bytes=%-8d busy=%v\n",
					maint.Kind(k), js.Runs, js.Errors, js.Bytes, js.Busy)
			}
		}
	}
	fmt.Println()

	fmt.Printf("== index records for %q (PN first, partitions newest to oldest) ==\n", *key)
	for _, d := range mv.DumpKey([]byte(*key)) {
		fmt.Println(d)
	}

	fresh := eng.Begin()
	cur, _ := tbl.LookupOne(fresh, ix, []byte(*key), true)
	old, _ := tbl.LookupOne(long, ix, []byte(*key), true)
	fmt.Printf("\nfresh snapshot sees: %s\n", val(cur))
	fmt.Printf("long-running reader (Figure 1) sees: %s\n", val(old))
	eng.Commit(fresh)
	eng.Commit(long)

	fmt.Printf("\n== device ==\n%v\n", eng.Dev.Stats())
	io := eng.Pool.IOStats()
	fmt.Printf("faults injected: [%v]\n", eng.Dev.FaultCounters())
	fmt.Printf("error path: checksum_failures=%d read_retries=%d write_retries=%d read_failures=%d write_failures=%d\n",
		io.ChecksumFailures, io.ReadRetries, io.WriteRetries, io.ReadFailures, io.WriteFailures)

	// Commit pipeline: flushes vs commits shows the lazy-begin/read-only
	// elision and (with -group-commit) the batcher's amortization.
	ws := eng.WALStatsSnapshot()
	fmt.Printf("\n== commit pipeline ==\n")
	fmt.Printf("wal: flushes=%d commits=%d read-only-commits=%d flushes/commit=%.2f\n",
		ws.Flushes, ws.Commits, ws.ReadOnlyCommits, ws.FlushesPerCommit())
	if *groupCommit {
		fmt.Printf("group commit: batches=%d commits=%d max-batched=%d\n",
			ws.Group.Batches, ws.Group.Commits, ws.Group.MaxBatched)
	}

	// Space governance: the capacity budget, the governor's counters, and
	// the effect of a WAL checkpoint on log size (all transactions are done
	// by now, so the quiescence precondition holds).
	sp := eng.SpaceInfo()
	fmt.Printf("\n== space governance ==\n")
	fmt.Printf("device: capacity=%d live=%d high-water=%d (soft=%d hard=%d)\n",
		sp.Capacity, sp.Live, sp.HighWater, sp.Soft, sp.Hard)
	fmt.Printf("read-only: now=%v entries=%d exits=%d reclaims=%d\n",
		sp.ReadOnly, sp.ROEntries, sp.ROExits, sp.Reclaims)
	walBefore := eng.WALDeviceBytes()
	if err := eng.Checkpoint(); err != nil {
		fmt.Printf("checkpoint: %v\n", err)
	}
	ck := eng.CheckpointInfo()
	fmt.Printf("wal: checkpoints=%d seq=%d size before last checkpoint=%dB after=%dB (device now %dB, was %dB)\n",
		ck.Count, ck.Seq, ck.WALBytesBefore, ck.WALBytesAfter, eng.WALDeviceBytes(), walBefore)
}

func val(rr *db.RowRef) string {
	if rr == nil {
		return "<nothing>"
	}
	return string(rr.Row[1+int(rr.Row[0]):])
}

// inspectShards runs a small workload through a shard.Router and prints
// per-shard statistics side by side: key distribution, space governance,
// and the commit pipeline, one column per shard.
func inspectShards(n, tuples, updates, pbuf int, capacity int64) {
	r, err := shard.New(shard.Config{
		Shards: n,
		Engine: db.Config{
			BufferPages:          1024,
			PartitionBufferBytes: pbuf,
			EnableWAL:            true,
			DeviceCapacityBytes:  capacity,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
		Supervise: true,
	})
	if err != nil {
		panic(err)
	}
	defer r.Close()

	for round := 0; round <= updates; round++ {
		for i := 0; i < tuples; i++ {
			k := []byte(fmt.Sprintf("key-%05d", i))
			if err := r.Put(k, []byte(fmt.Sprintf("v%d", round))); err != nil {
				panic(err)
			}
		}
	}
	// A tenth of the keyspace deleted, to exercise anti-matter routing.
	for i := 0; i < tuples; i += 10 {
		if err := r.Delete([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			panic(err)
		}
	}
	// A few cross-shard transactions, so the commit-protocol section below
	// has two-phase commit traffic to show.
	for g := 0; g < 8; g++ {
		gtx, err := r.Begin()
		if err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			k := []byte(fmt.Sprintf("key-%05d", (g*37+i*11)%tuples))
			if err := gtx.Put(k, []byte(fmt.Sprintf("g%d", g))); err != nil {
				panic(err)
			}
		}
		if err := gtx.Commit(); err != nil {
			panic(err)
		}
	}

	// Per-shard live key counts via one consistent cross-shard snapshot.
	keys := make([]int, n)
	tx, err := r.Begin()
	if err != nil {
		panic(err)
	}
	if err := tx.Scan(nil, math.MaxInt32, func(k, v []byte) bool {
		keys[r.ShardOf(k)]++
		return true
	}); err != nil {
		panic(err)
	}
	tx.Commit()

	stats := r.Stats()
	fmt.Printf("== per-shard stats: %d shards, %d keys x %d rounds (hash-partitioned) ==\n",
		n, tuples, updates+1)
	row := func(label string, cell func(i int) string) {
		fmt.Printf("%-18s", label)
		for i := range stats {
			fmt.Printf("  %-14s", cell(i))
		}
		fmt.Println()
	}
	row("", func(i int) string { return stats[i].Dir })
	row("live keys", func(i int) string { return fmt.Sprintf("%d", keys[i]) })
	row("capacity", func(i int) string { return fmt.Sprintf("%d", stats[i].Space.Capacity) })
	row("live bytes", func(i int) string { return fmt.Sprintf("%d", stats[i].Space.Live) })
	row("high water", func(i int) string { return fmt.Sprintf("%d", stats[i].Space.HighWater) })
	row("soft/hard", func(i int) string {
		return fmt.Sprintf("%d/%d", stats[i].Space.Soft, stats[i].Space.Hard)
	})
	row("read-only", func(i int) string { return fmt.Sprintf("%v", stats[i].Space.ReadOnly) })
	row("reclaims", func(i int) string { return fmt.Sprintf("%d", stats[i].Space.Reclaims) })
	row("wal flushes", func(i int) string { return fmt.Sprintf("%d", stats[i].WAL.Flushes) })
	row("wal commits", func(i int) string { return fmt.Sprintf("%d", stats[i].WAL.Commits) })
	row("flushes/commit", func(i int) string { return fmt.Sprintf("%.2f", stats[i].WAL.FlushesPerCommit()) })
	row("group batches", func(i int) string { return fmt.Sprintf("%d", stats[i].WAL.Group.Batches) })
	row("max batched", func(i int) string { return fmt.Sprintf("%d", stats[i].WAL.Group.MaxBatched) })
	row("health", func(i int) string { return stats[i].Health.State.String() })
	row("restarts", func(i int) string { return fmt.Sprintf("%d", stats[i].Health.Restarts) })
	row("breaker", func(i int) string {
		if stats[i].Health.BreakerOpen {
			return fmt.Sprintf("open (%d fails)", stats[i].Health.RestartFailures)
		}
		return "closed"
	})

	// Commit protocol: the participant side per shard (prepare votes,
	// resolutions, anything still in doubt) and the coordinator log.
	twopc := make([]db.TwoPCStats, n)
	for i := 0; i < n; i++ {
		twopc[i] = r.Shard(i).Engine.TwoPCInfo()
	}
	fmt.Println("\n== commit protocol (two-phase, presumed abort) ==")
	row("2pc prepares", func(i int) string { return fmt.Sprintf("%d", twopc[i].Prepares) })
	row("2pc commits", func(i int) string { return fmt.Sprintf("%d", twopc[i].ResolvedCommits) })
	row("2pc aborts", func(i int) string { return fmt.Sprintf("%d", twopc[i].ResolvedAborts) })
	row("in doubt", func(i int) string { return fmt.Sprintf("%d", twopc[i].InDoubt) })
	row("oldest prepared", func(i int) string {
		if twopc[i].InDoubt == 0 {
			return "-"
		}
		return twopc[i].OldestAge.Round(time.Millisecond).String()
	})
	info := r.TwoPCInfo()
	fmt.Printf("coordinator: %d groups decided, %d retired, %d live decisions, %d inflight, "+
		"log %d bytes, %d checkpoints, incarnation %d\n",
		info.Coordinator.Decides, info.Coordinator.Forgets, info.Coordinator.LiveDecisions,
		info.Coordinator.Inflight, info.Coordinator.LogBytes, info.Coordinator.Checkpoints,
		info.Coordinator.Incarnation)

	fmt.Println("\n== per-shard devices ==")
	for _, st := range stats {
		fmt.Printf("%s: %s\n", st.Dir, strings.TrimSpace(st.Device))
	}
	if d := r.Degraded(); len(d) > 0 {
		fmt.Printf("\ndegraded shards: %v\n", d)
	}
}
