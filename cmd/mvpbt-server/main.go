// Command mvpbt-server serves a sharded MV-PBT deployment over TCP: N
// independent engines behind a shard.Router, fronted by the wire protocol
// with per-tenant admission control and graceful drain on SIGINT/SIGTERM
// (DESIGN.md §12).
//
// The storage under it is the repo's simulated device, so the server is a
// protocol/concurrency testbed rather than a persistent database: state
// lives for the process lifetime.
//
// -smoke runs the full lifecycle in-process — start, run client
// operations through shardclient, drain, verify clean shutdown — and
// exits non-zero on any failure; CI uses it as the server's end-to-end
// gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server"
	"mvpbt/internal/server/shardclient"
	"mvpbt/internal/shard"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7878", "TCP listen address")
		shards       = flag.Int("shards", 4, "number of independent engine shards")
		capacity     = flag.Int64("capacity", 256<<20, "per-shard device capacity budget in bytes (0 = unbounded)")
		pbuf         = flag.Int("pbuf", 256<<10, "per-shard partition buffer bytes")
		groupCommit  = flag.Bool("group-commit", true, "route commits through the WAL group-commit batcher")
		admission    = flag.String("admission", "reject", "admission policy under overload: reject | queue")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "how long queued sessions wait for admission")
		maxSessions  = flag.Int("max-sessions", 256, "global concurrent session cap")
		maxPerTenant = flag.Int("max-per-tenant", 64, "per-tenant concurrent session cap")
		drainWait    = flag.Duration("drain-wait", 10*time.Second, "how long shutdown waits for sessions to finish")
		supervise    = flag.Bool("supervise", true, "per-shard health supervision: auto-restart failed shards through WAL recovery")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "reap sessions idle this long (0 = default, <0 = never)")
		smoke        = flag.Bool("smoke", false, "run the in-process smoke test and exit")
	)
	flag.Parse()

	pol := server.AdmitReject
	switch *admission {
	case "reject":
	case "queue":
		pol = server.AdmitQueue
	default:
		fmt.Fprintf(os.Stderr, "unknown -admission %q (want reject or queue)\n", *admission)
		os.Exit(2)
	}

	r, err := shard.New(shard.Config{
		Shards: *shards,
		Engine: db.Config{
			BufferPages:          1024,
			PartitionBufferBytes: *pbuf,
			EnableWAL:            true,
			DeviceCapacityBytes:  *capacity,
			GroupCommit:          db.GroupCommitConfig{Enabled: *groupCommit},
		},
		Supervise: *supervise,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "router: %v\n", err)
		os.Exit(1)
	}
	defer r.Close()

	cfg := server.Config{
		Addr:                 *addr,
		MaxSessions:          *maxSessions,
		MaxSessionsPerTenant: *maxPerTenant,
		Admission:            pol,
		QueueTimeout:         *queueTimeout,
		IdleTimeout:          *idleTimeout,
	}
	if *smoke {
		cfg.Addr = "127.0.0.1:0"
		if err := runSmoke(r, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "SMOKE FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("SMOKE OK")
		return
	}

	srv := server.New(r, cfg)
	bound, err := srv.Listen()
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mvpbt-server: %d shards on %s (admission=%s)\n", *shards, bound, *admission)

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("mvpbt-server: %v, draining (up to %v)\n", s, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		}
		<-serveDone
	case err := <-serveDone:
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	}
	m := srv.Metrics()
	fmt.Printf("mvpbt-server: done (admitted=%d rejected=%d queued=%d drained=%d)\n",
		m.Admitted, m.Rejected, m.Queued, m.Drained)
}

// runSmoke exercises the whole stack end to end: serve, run a client
// workload (autocommit, cross-shard transaction, scan, stats), drain with
// a session still connected, and verify the shutdown is clean and the
// drained commit durable.
func runSmoke(r *shard.Router, cfg server.Config) error {
	srv := server.New(r, cfg)
	bound, err := srv.Listen()
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	c, err := shardclient.Dial(bound.String(), "smoke")
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer c.Close()

	// Autocommit write/read/delete across shards.
	for i := 0; i < 64; i++ {
		if err := c.Set(0, []byte(fmt.Sprintf("smoke-%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			return fmt.Errorf("set %d: %w", i, err)
		}
	}
	if v, ok, err := c.Get(0, []byte("smoke-001")); err != nil || !ok || string(v) != "v1" {
		return fmt.Errorf("get: %q %v %v", v, ok, err)
	}
	if err := c.Del(0, []byte("smoke-000")); err != nil {
		return fmt.Errorf("del: %w", err)
	}

	// Cross-shard transaction committed during drain.
	tx, err := c.Begin()
	if err != nil {
		return fmt.Errorf("begin: %w", err)
	}
	if err := c.Set(tx, []byte("pair-a"), []byte("pv")); err != nil {
		return fmt.Errorf("tx set: %w", err)
	}
	if err := c.Set(tx, []byte("pair-b"), []byte("pv")); err != nil {
		return fmt.Errorf("tx set: %w", err)
	}

	// Scan in global order.
	kvs, err := c.Scan(0, []byte("smoke-"), 100)
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if len(kvs) != 63 {
		return fmt.Errorf("scan returned %d pairs, want 63", len(kvs))
	}
	for i := 1; i < len(kvs); i++ {
		if string(kvs[i-1].Key) >= string(kvs[i].Key) {
			return fmt.Errorf("scan out of order at %d", i)
		}
	}
	if st, err := c.Stats(); err != nil || st == "" {
		return fmt.Errorf("stats: %q %v", st, err)
	}

	// Drain while the transaction is open: the in-flight commit must
	// succeed, new sessions must be refused, and Serve must return nil.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := shardclient.DialTimeout(bound.String(), "late", 200*time.Millisecond); err == nil {
		return fmt.Errorf("new session admitted during drain")
	}
	if err := c.Commit(tx); err != nil {
		return fmt.Errorf("commit during drain: %w", err)
	}
	c.Close()
	if err := <-drainDone; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveDone; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// The drained commit is durable in the router.
	for _, k := range []string{"pair-a", "pair-b"} {
		if v, ok, err := r.Get([]byte(k)); err != nil || !ok || string(v) != "pv" {
			return fmt.Errorf("drained commit lost for %s: %q %v %v", k, v, ok, err)
		}
	}
	m := srv.Metrics()
	if m.Admitted != 1 {
		return fmt.Errorf("metrics %+v, want exactly 1 admitted session", m)
	}
	return nil
}
