// Command mvpbt-check runs the differential correctness harness
// (internal/check): a randomized multi-client history generated from
// -seed is executed against the real engine and a naive MVCC oracle in
// lockstep, with invariant audits along the way and WAL crash-restarts
// injected. On a violation the failing history is shrunk to a minimal
// reproducer and the exact repro command line is printed.
//
// Typical smoke run (CI):
//
//	go run ./cmd/mvpbt-check -seed 1 -ops 6000 -clients 4 -crashes 2
//
// Nightly-length run: raise -ops (the budget knob), e.g. -ops 50000.
// Reproduce a reported failure: rerun with the printed flags verbatim.
package main

import (
	"flag"
	"fmt"
	"os"

	"mvpbt/internal/check"
	"mvpbt/internal/db"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "history seed (printed on failure; reruns are deterministic)")
		ops      = flag.Int("ops", 10000, "history length — the run-length budget knob")
		clients  = flag.Int("clients", 4, "logical clients interleaved in the history")
		keys     = flag.Int("keys", 200, "key-space size")
		crashes  = flag.Int("crashes", 3, "crash-restart points injected into the history")
		heapSel  = flag.String("heap", "both", "heap layout: hot, sias or both")
		background = flag.Bool("background", true, "run maintenance on background workers (false = synchronous)")
		auditEvery = flag.Int("audit-every", 250, "full audit cadence in ops")
		fault    = flag.Int("inject-fault", 0, "TEST the harness: invert visibility for tx ids divisible by N")
		noShrink = flag.Bool("no-shrink", false, "skip shrinking on failure")
		verbose  = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	var heaps []db.HeapKind
	switch *heapSel {
	case "hot":
		heaps = []db.HeapKind{db.HeapHOT}
	case "sias":
		heaps = []db.HeapKind{db.HeapSIAS}
	case "both":
		heaps = []db.HeapKind{db.HeapHOT, db.HeapSIAS}
	default:
		fmt.Fprintf(os.Stderr, "unknown -heap %q (want hot, sias or both)\n", *heapSel)
		os.Exit(2)
	}
	heapName := map[db.HeapKind]string{db.HeapHOT: "hot", db.HeapSIAS: "sias"}

	for _, hk := range heaps {
		cfg := check.RunConfig{
			Heap: hk, Seed: *seed, Ops: *ops, Clients: *clients, Keys: *keys,
			Crashes: *crashes, Background: *background, AuditEvery: *auditEvery,
			FaultEvery: *fault,
		}
		if *verbose {
			cfg.Log = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		fmt.Printf("heap=%-4s seed=%d ops=%d clients=%d keys=%d crashes=%d background=%v\n",
			heapName[hk], *seed, *ops, *clients, *keys, *crashes, *background)
		res := check.Run(cfg)
		if res.Violation == nil {
			fmt.Printf("  OK: %d ops, %d audits, %d crash-recoveries, %d write conflicts — zero invariant violations\n",
				res.Ops, res.Audits, res.Crashes, res.Conflicts)
			continue
		}
		fmt.Printf("  VIOLATION: %v\n", res.Violation)
		history := check.History(cfg)
		if !*noShrink {
			fmt.Printf("  shrinking (%d-op history)...\n", len(history))
			min := check.Shrink(cfg, history, 0)
			fmt.Printf("  minimal failing history (%d ops):\n%s", len(min), check.FormatOps(min))
			if r := check.Replay(stepAudit(cfg), min); r.Violation != nil {
				fmt.Printf("  violation: %v\n", r.Violation)
			}
		}
		fmt.Printf("  reproduce: go run ./cmd/mvpbt-check -seed %d -ops %d -clients %d -keys %d -crashes %d -heap %s -background=%v -audit-every %d",
			*seed, *ops, *clients, *keys, *crashes, heapName[hk], *background, *auditEvery)
		if *fault > 0 {
			fmt.Printf(" -inject-fault %d", *fault)
		}
		fmt.Println()
		os.Exit(1)
	}
}

func stepAudit(cfg check.RunConfig) check.RunConfig {
	cfg.StepAudit = true
	cfg.Log = nil
	return cfg
}
