// Command mvpbt-check runs the differential correctness harness
// (internal/check): a randomized multi-client history generated from
// -seed is executed against the real engine and a naive MVCC oracle in
// lockstep, with invariant audits along the way and WAL crash-restarts
// injected. On a violation the failing history is shrunk to a minimal
// reproducer and the exact repro command line is printed.
//
// Typical smoke run (CI):
//
//	go run ./cmd/mvpbt-check -seed 1 -ops 6000 -clients 4 -crashes 2
//
// Nightly-length run: raise -ops (the budget knob), e.g. -ops 50000.
// Reproduce a reported failure: rerun with the printed flags verbatim.
//
// Fault campaign (`make check-faults`): -faults switches to campaign
// mode — -seeds consecutive seeds starting at -seed, each a
// fault-punctuated history (read errors, write errors, torn commit
// flushes, bit rot) replayed twice on both heap layouts; every run must
// hold oracle lockstep and the two replays must agree byte-for-byte on
// fault counters and final state (the determinism contract):
//
//	go run ./cmd/mvpbt-check -faults -seed 1 -seeds 8 -ops 1500
//
// Exhaustion campaign (`make check-exhaust`): -exhaust fills a
// capacity-bounded device to its hard watermark on both heap layouts,
// asserting read-only degradation with oracle-correct reads, reclamation
// (WAL checkpoint/truncation, GC, vacuum) back under the soft watermark,
// write resume, crash-recovery, and byte-identical double replay — plus a
// context-deadline bound on writes wedged in a partition-buffer stall:
//
//	go run ./cmd/mvpbt-check -exhaust -seed 1 -seeds 2
//
// Hostile-scenario campaign (`make check-scenarios`): -scenarios runs the
// hostile-workload catalogue (hot-key storms, sawtooth load/delete cycles,
// GC-pinning analytical snapshots, tenant-skewed admission-controlled
// mixes) across a device-zoo subset chosen with -devices, each cell
// replayed twice for byte-identical fingerprints:
//
//	go run ./cmd/mvpbt-check -scenarios -devices enterprise-nvme,cloud-block
//
// Network-chaos campaign (`make check-chaos`): -chaos drives a seeded
// history through the real TCP server under a deterministic schedule of
// connection resets, mid-frame truncations and read/write stalls, with a
// self-healing client (reconnect, idempotent retries, commit tokens).
// Every run is replayed twice and must produce a byte-identical
// fingerprint; every acked write must survive to the post-chaos scan and
// every in-doubt commit must resolve one way:
//
//	go run ./cmd/mvpbt-check -chaos -seed 1 -seeds 8
//
// 2PC crash campaign (`make check-2pc`): -2pc drives multi-shard
// transactions through presumed-abort two-phase commit while a
// deterministic plan crashes the coordinator or a participant at every
// protocol step (before/after prepare per shard, before/after the
// decision, before forget), plus standalone coordinator crashes. Every
// seed is replayed twice for a byte-identical fingerprint; every group
// must apply or abort atomically, every in-doubt leg must resolve, and no
// acked commit may be lost:
//
//	go run ./cmd/mvpbt-check -2pc -seed 1 -seeds 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mvpbt/internal/check"
	"mvpbt/internal/db"
	"mvpbt/internal/ssd"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "history seed (printed on failure; reruns are deterministic)")
		ops        = flag.Int("ops", 10000, "history length — the run-length budget knob")
		clients    = flag.Int("clients", 4, "logical clients interleaved in the history")
		keys       = flag.Int("keys", 200, "key-space size")
		crashes    = flag.Int("crashes", 3, "crash-restart points injected into the history")
		heapSel    = flag.String("heap", "both", "heap layout: hot, sias or both")
		background = flag.Bool("background", true, "run maintenance on background workers (false = synchronous)")
		auditEvery = flag.Int("audit-every", 250, "full audit cadence in ops")
		fault      = flag.Int("inject-fault", 0, "TEST the harness: invert visibility for tx ids divisible by N")
		noShrink   = flag.Bool("no-shrink", false, "skip shrinking on failure")
		verbose    = flag.Bool("v", false, "progress output")
		faults     = flag.Bool("faults", false, "fault-campaign mode: seeded device faults on both heaps, each history replayed twice for determinism")
		seeds      = flag.Int("seeds", 8, "campaign seed count (seeds -seed..-seed+N-1); only with -faults or -exhaust")
		exhaust    = flag.Bool("exhaust", false, "exhaustion-campaign mode: fill a capacity-bounded device to read-only, reclaim, resume, recover, replay twice for determinism")
		scenarios  = flag.Bool("scenarios", false, "hostile-scenario campaign: every hostile workload on each -devices device, replayed twice for determinism")
		devices    = flag.String("devices", "", "comma-separated device-zoo names for -scenarios (empty = whole zoo; see ssd.ZooNames)")
		chaosMode  = flag.Bool("chaos", false, "network-chaos campaign: seeded histories through real TCP under injected resets/truncations/stalls with a self-healing client, replayed twice for determinism")
		chaosKinds = flag.String("chaos-kinds", "", "comma-separated chaos kinds for -chaos (empty = reset,truncate,stall,mixed)")
		twoPCMode  = flag.Bool("2pc", false, "2PC crash campaign: coordinator/participant crashes at every commit-protocol step, replayed twice for determinism")
	)
	flag.Parse()

	if *twoPCMode {
		os.Exit(run2PC(*seed, *seeds))
	}
	if *chaosMode {
		os.Exit(runChaos(*seed, *seeds, *chaosKinds))
	}
	if *scenarios {
		os.Exit(runScenarios(*seed, *seeds, *devices))
	}
	if *exhaust {
		os.Exit(runExhaust(*seed, *seeds))
	}
	if *faults {
		os.Exit(runCampaign(*seed, *seeds, *ops, *clients, *keys, *crashes))
	}

	var heaps []db.HeapKind
	switch *heapSel {
	case "hot":
		heaps = []db.HeapKind{db.HeapHOT}
	case "sias":
		heaps = []db.HeapKind{db.HeapSIAS}
	case "both":
		heaps = []db.HeapKind{db.HeapHOT, db.HeapSIAS}
	default:
		fmt.Fprintf(os.Stderr, "unknown -heap %q (want hot, sias or both)\n", *heapSel)
		os.Exit(2)
	}
	heapName := map[db.HeapKind]string{db.HeapHOT: "hot", db.HeapSIAS: "sias"}

	for _, hk := range heaps {
		cfg := check.RunConfig{
			Heap: hk, Seed: *seed, Ops: *ops, Clients: *clients, Keys: *keys,
			Crashes: *crashes, Background: *background, AuditEvery: *auditEvery,
			FaultEvery: *fault,
		}
		if *verbose {
			cfg.Log = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		fmt.Printf("heap=%-4s seed=%d ops=%d clients=%d keys=%d crashes=%d background=%v\n",
			heapName[hk], *seed, *ops, *clients, *keys, *crashes, *background)
		res := check.Run(cfg)
		if res.Violation == nil {
			fmt.Printf("  OK: %d ops, %d audits, %d crash-recoveries, %d write conflicts — zero invariant violations\n",
				res.Ops, res.Audits, res.Crashes, res.Conflicts)
			continue
		}
		fmt.Printf("  VIOLATION: %v\n", res.Violation)
		history := check.History(cfg)
		if !*noShrink {
			fmt.Printf("  shrinking (%d-op history)...\n", len(history))
			min := check.Shrink(cfg, history, 0)
			fmt.Printf("  minimal failing history (%d ops):\n%s", len(min), check.FormatOps(min))
			if r := check.Replay(stepAudit(cfg), min); r.Violation != nil {
				fmt.Printf("  violation: %v\n", r.Violation)
			}
		}
		fmt.Printf("  reproduce: go run ./cmd/mvpbt-check -seed %d -ops %d -clients %d -keys %d -crashes %d -heap %s -background=%v -audit-every %d",
			*seed, *ops, *clients, *keys, *crashes, heapName[hk], *background, *auditEvery)
		if *fault > 0 {
			fmt.Printf(" -inject-fault %d", *fault)
		}
		fmt.Println()
		os.Exit(1)
	}
}

func stepAudit(cfg check.RunConfig) check.RunConfig {
	cfg.StepAudit = true
	cfg.Log = nil
	return cfg
}

// runCampaign drives check.FaultCampaign and reports it: per-run progress
// lines, the aggregate per-kind injection counters, and a pass/fail verdict.
// Returns the process exit code.
func runCampaign(seed uint64, n, ops, clients, keys, crashes int) int {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = seed + uint64(i)
	}
	fmt.Printf("fault campaign: %d seeds (%d..%d) x both heaps, ops=%d clients=%d keys=%d crashes=%d\n",
		n, seed, seed+uint64(n)-1, ops, clients, keys, crashes)
	res := check.FaultCampaign(check.CampaignConfig{
		Seeds: seedList, Ops: ops, Clients: clients, Keys: keys, Crashes: crashes,
		Log: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	fmt.Printf("injected: %v across %d runs; %d fault recoveries, %d quarantine-rebuilds\n",
		res.Faults, len(res.Runs), res.Recoveries, res.Rebuilds)
	if res.Failed() {
		fmt.Printf("FAIL: %d invariant violations, %d nondeterministic replays\n",
			res.Violations, res.Mismatches)
		for _, r := range res.Runs {
			if r.Res.Violation != nil || r.Mismatch != "" {
				fmt.Printf("  reproduce: go run ./cmd/mvpbt-check -faults -seed %d -seeds 1 -ops %d -clients %d -keys %d -crashes %d\n",
					r.Seed, ops, clients, keys, crashes)
			}
		}
		return 1
	}
	fmt.Println("OK: every fault masked or recovered, all replays deterministic")
	return 0
}

// runScenarios drives check.ScenarioCampaign and reports it. Returns the
// process exit code.
func runScenarios(seed uint64, n int, deviceCSV string) int {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = seed + uint64(i)
	}
	var devs []ssd.DeviceSpec
	names := "whole zoo"
	if deviceCSV != "" {
		for _, name := range strings.Split(deviceCSV, ",") {
			name = strings.TrimSpace(name)
			spec, ok := ssd.SpecByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown device %q (zoo: %s)\n", name, strings.Join(ssd.ZooNames(), ", "))
				return 2
			}
			devs = append(devs, spec)
		}
		names = deviceCSV
	}
	fmt.Printf("hostile-scenario campaign: %d seeds (%d..%d) x devices [%s] x all scenarios\n",
		n, seed, seed+uint64(n)-1, names)
	res := check.ScenarioCampaign(check.ScenarioConfig{
		Seeds:   seedList,
		Devices: devs,
		Log:     func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if res.Failed() {
		fmt.Printf("FAIL: %d violations, %d nondeterministic replays\n", res.Violations, res.Mismatches)
		for _, r := range res.Runs {
			if r.Violation != nil || r.Mismatch != "" {
				fmt.Printf("  reproduce: go run ./cmd/mvpbt-check -scenarios -seed %d -seeds 1 -devices %s\n",
					r.Seed, r.Device)
			}
		}
		return 1
	}
	fmt.Printf("OK: %d cells, every scenario invariant held, all replays byte-identical\n", len(res.Runs))
	return 0
}

// runChaos drives check.ChaosCampaign and reports it. Returns the process
// exit code.
func runChaos(seed uint64, n int, kindCSV string) int {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = seed + uint64(i)
	}
	var kinds []string
	if kindCSV != "" {
		for _, k := range strings.Split(kindCSV, ",") {
			kinds = append(kinds, strings.TrimSpace(k))
		}
	}
	kindNames := kinds
	if kindNames == nil {
		kindNames = check.ChaosKinds
	}
	fmt.Printf("network-chaos campaign: %d seeds (%d..%d) x kinds [%s], each replayed twice\n",
		n, seed, seed+uint64(n)-1, strings.Join(kindNames, ", "))
	res := check.ChaosCampaign(check.ChaosConfig{
		Seeds: seedList,
		Kinds: kinds,
		Log:   func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	fmt.Printf("injected: %d cuts, %d truncations, %d stalls across %d runs; %d reconnects, %d commit resolutions\n",
		res.Cuts, res.Truncs, res.Stalls, len(res.Runs), res.Reconnects, res.Resolves)
	if res.Failed() {
		fmt.Printf("FAIL: %d violations (acked-write loss or unresolved commits), %d nondeterministic replays\n",
			res.Violations, res.Mismatches)
		for _, r := range res.Runs {
			if r.Violation != "" || r.Mismatch != "" {
				fmt.Printf("  reproduce: go run ./cmd/mvpbt-check -chaos -seed %d -seeds 1 -chaos-kinds %s\n",
					r.Seed, r.Kind)
			}
		}
		return 1
	}
	fmt.Println("OK: every acked write survived, every in-doubt commit resolved, all replays byte-identical")
	return 0
}

// run2PC drives check.TwoPCCampaign and reports it. Returns the process
// exit code.
func run2PC(seed uint64, n int) int {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = seed + uint64(i)
	}
	fmt.Printf("2pc crash campaign: %d seeds (%d..%d), crashes at every protocol step, each replayed twice\n",
		n, seed, seed+uint64(n)-1)
	res := check.TwoPCCampaign(check.TwoPCConfig{
		Seeds: seedList,
		Log:   func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	fmt.Printf("injected: %d protocol-step crashes, %d coordinator crashes across %d commit groups in %d runs\n",
		res.Crashes, res.CoordCrashes, res.Groups, len(res.Runs))
	if res.Failed() {
		fmt.Printf("FAIL: %d violations (half-applied groups, acked-commit loss, or unresolved legs), %d nondeterministic replays\n",
			res.Violations, res.Mismatches)
		for _, r := range res.Runs {
			if r.Violation != "" || r.Mismatch != "" {
				fmt.Printf("  reproduce: go run ./cmd/mvpbt-check -2pc -seed %d -seeds 1\n", r.Seed)
			}
		}
		return 1
	}
	fmt.Println("OK: every group atomic, every in-doubt leg resolved, no acked commit lost, all replays byte-identical")
	return 0
}

// runExhaust drives check.ExhaustCampaign and reports it. Returns the
// process exit code.
func runExhaust(seed uint64, n int) int {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = seed + uint64(i)
	}
	fmt.Printf("exhaustion campaign: %d seeds (%d..%d) x both heaps\n", n, seed, seed+uint64(n)-1)
	res := check.ExhaustCampaign(check.ExhaustConfig{
		Seeds: seedList,
		Log:   func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if res.Failed() {
		fmt.Printf("FAIL: %d violations, %d nondeterministic replays", res.Violations, res.Mismatches)
		if res.StallViolation != nil {
			fmt.Printf(", stall probe: %v", res.StallViolation)
		}
		fmt.Println()
		for _, r := range res.Runs {
			if r.Violation != nil || r.Mismatch != "" {
				fmt.Printf("  reproduce: go run ./cmd/mvpbt-check -exhaust -seed %d -seeds 1\n", r.Seed)
			}
		}
		return 1
	}
	fmt.Println("OK: degraded read-only under fill, reads oracle-correct, reclamation re-opened writes, replays deterministic, stalls cancellable")
	return 0
}
