// Command mvpbt-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mvpbt-bench -list
//	mvpbt-bench -run fig12a
//	mvpbt-bench -all -scale full
//
// Every experiment prints the same rows/series the corresponding figure of
// the paper reports; EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mvpbt/internal/bench"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list all experiments")
		run   = flag.String("run", "", "run one experiment by id (e.g. fig3)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.String("scale", "quick", "experiment scale: quick | full")
		csv   = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	)
	flag.Parse()

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick
	case "full":
		s = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *run != "":
		e, ok := bench.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(2)
		}
		if err := runOne(e, s, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		for _, e := range bench.All() {
			if err := runOne(e, s, *csv); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e bench.Experiment, s bench.Scale, csv bool) error {
	start := time.Now()
	res, err := e.Run(s)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if csv {
		fmt.Printf("# %s: %s\n%s\n", res.ID, res.Title, res.CSV())
		return nil
	}
	fmt.Print(res.String())
	fmt.Printf("# completed in %v (real time)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
