// Command mvpbt-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mvpbt-bench -list
//	mvpbt-bench -run fig12a
//	mvpbt-bench -all -scale full
//	mvpbt-bench -run parallel -cpuprofile cpu.pprof -memprofile mem.pprof
//	mvpbt-bench -run fig12a -device consumer-tlc
//	mvpbt-bench -run scenarios
//
// Every experiment prints the same rows/series the corresponding figure of
// the paper reports; EXPERIMENTS.md records paper-vs-measured values. The
// -cpuprofile/-memprofile flags write standard pprof profiles covering the
// experiment run (inspect with `go tool pprof`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mvpbt/internal/bench"
	"mvpbt/internal/ssd"
)

func main() {
	os.Exit(run())
}

// run carries the exit code back to main so that profile-flushing defers
// execute before the process exits.
func run() int {
	var (
		list       = flag.Bool("list", false, "list all experiments")
		runID      = flag.String("run", "", "run one experiment by id (e.g. fig3)")
		all        = flag.Bool("all", false, "run every experiment")
		scale      = flag.String("scale", "quick", "experiment scale: quick | full")
		csv        = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to `file`")
		maintWk    = flag.Int("maint-workers", bench.MaintWorkers, "maintenance worker pool size (maint experiment)")
		maintRate  = flag.Int("maint-rate-mb", bench.MaintRateMBps, "maintenance I/O rate limit in MiB/s, 0 = unthrottled (maint experiment)")
		device     = flag.String("device", "", "device-zoo name every engine-backed experiment runs on (default: calibrated enterprise NVMe); see -list-devices")
		listDev    = flag.Bool("list-devices", false, "list the device zoo and exit")
	)
	flag.Parse()
	bench.MaintWorkers = *maintWk
	bench.MaintRateMBps = *maintRate

	if *listDev {
		for _, spec := range ssd.Zoo() {
			fmt.Printf("%-16s mode=%s\n", spec.Name, spec.Mode)
		}
		return 0
	}
	if *device != "" {
		spec, ok := ssd.SpecByName(*device)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown device %q (zoo: %s)\n", *device, strings.Join(ssd.ZooNames(), ", "))
			return 2
		}
		bench.Device = spec
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick
	case "full":
		s = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		return 2
	}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *runID != "":
		e, ok := bench.Lookup(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *runID)
			return 2
		}
		if err := runOne(e, s, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case *all:
		for _, e := range bench.All() {
			if err := runOne(e, s, *csv); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}

func runOne(e bench.Experiment, s bench.Scale, csv bool) error {
	start := time.Now()
	res, err := e.Run(s)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if csv {
		fmt.Printf("# %s: %s\n%s\n", res.ID, res.Title, res.CSV())
		return nil
	}
	fmt.Print(res.String())
	fmt.Printf("# completed in %v (real time)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
