# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race race-net race-hostile race-chaos race-2pc fuzz-wire check check-nightly check-faults check-exhaust check-scenarios check-chaos check-2pc check-all bench bench-commit bench-net bench-scenarios bench-full smoke-server examples cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go vet ./...
	go test -race ./...

# Race pass over the sharding/network subsystem only (fast CI step): the
# shard router's snapshot barrier and the server's session management are
# the most concurrency-sensitive code in the tree.
race-net:
	go test -race ./internal/shard/ ./internal/server/...

# Race pass over the device zoo and the hostile-workload generators: the
# scenarios are single-threaded by contract, so the detector pins that
# contract (plus the admission-timeout/starvation server tests above).
race-hostile:
	go test -race ./internal/ssd/ ./internal/workload/hostile/

# Race pass over the resilience machinery: the shard supervisor's
# restart-vs-traffic interleavings, the router close drain fence, the
# chaos injector, and the chaos-campaign smoke.
race-chaos:
	go test -race -run 'TestSupervisor|TestRouterCloseDrainFence' ./internal/shard/
	go test -race ./internal/server/chaos/
	go test -race -run TestChaosCampaignSmoke ./internal/check/

# Race pass over the 2PC machinery: restart-vs-in-doubt resolution and
# Router.Close racing in-flight multi-shard commit groups.
race-2pc:
	go test -race -run 'TestRestartResolvesInDoubt|TestRouterCloseRacesTwoPC' ./internal/shard/

# Ten-second fuzz smoke over the wire frame decoder — the first code that
# touches untrusted network bytes. The full fuzzer runs with -fuzztime
# raised; crashers land in internal/server/wire/testdata/fuzz/.
fuzz-wire:
	go test -fuzz=FuzzReadFrame -fuzztime=10s ./internal/server/wire/

# Differential correctness harness: short smoke (CI) and nightly-length.
check:
	go run ./cmd/mvpbt-check -seed 1 -ops 6000 -clients 4 -crashes 2

check-nightly:
	go run ./cmd/mvpbt-check -seed 1 -ops 50000 -clients 4 -crashes 3

# Seeded fault campaign: 8 seeds x {read-err, write-err, torn-write,
# bit-flip} schedules on both heap layouts, every history replayed twice
# to pin fault determinism (same counters, same final state hash).
check-faults:
	go run ./cmd/mvpbt-check -faults -seed 1 -seeds 8 -ops 1500

# Resource-exhaustion campaign: fill a capacity-bounded device to its hard
# watermark on both heaps, assert read-only degradation with oracle-correct
# reads, reclamation (WAL truncation, GC, vacuum) back under the soft
# watermark, write resume, crash-recovery, and byte-identical double replay.
check-exhaust:
	go run ./cmd/mvpbt-check -exhaust -seed 1 -seeds 4

# Hostile-scenario campaign: every device-zoo spec x every hostile
# scenario x 2 seeds (32 cells), each cell run twice and its full
# fingerprint diffed — scenario invariants (p99 bound, sawtooth
# reclamation, pinned-snapshot correctness, admission oscillation) plus
# byte-identical replay on every device.
check-scenarios:
	go run ./cmd/mvpbt-check -scenarios -seed 1 -seeds 2

# Network-chaos campaign: 8 seeds x {reset, truncate, stall, mixed}
# schedules against the real TCP server with a self-healing client, each
# run replayed twice — zero acked-write loss, every in-doubt commit
# resolved via its idempotent token, byte-identical fingerprints.
check-chaos:
	go run ./cmd/mvpbt-check -chaos -seed 1 -seeds 8

# Atomic cross-shard commit campaign: 8 seeds, the coordinator and each
# participant crashed at every 2PC protocol step (before/after prepare,
# before/after decide, before forget), every run replayed twice — zero
# half-applied groups, zero acked-commit loss, every in-doubt leg resolved
# per the coordinator log, byte-identical fingerprints.
check-2pc:
	go run ./cmd/mvpbt-check -2pc -seed 1 -seeds 8

# Every seeded campaign back to back: faults, exhaustion, hostile
# scenarios, network chaos, and cross-shard 2PC crashes.
check-all: check-faults check-exhaust check-scenarios check-chaos check-2pc

# One testing.B benchmark per paper figure (quick scale).
bench:
	go test -bench=. -benchmem

# Commit-pipeline benchmarks: the group-commit experiment table, the
# write-hot-path alloc benchmarks, and the allocs/op regression gate
# (TestHotPathAllocGate fails the build on a regression). Output lands in
# bench-commit.txt for publishing as a build artifact.
bench-commit:
	go test ./internal/bench/ -run TestHotPathAllocGate -count 1
	go test -bench BenchmarkCommit_GroupCommit -benchtime 1x -run xxx . | tee bench-commit.txt
	go test -bench BenchmarkAlloc -benchmem -benchtime 2000x -run xxx ./internal/bench/ | tee -a bench-commit.txt

# Sharded network front-end experiment: clients x shards scaling curve and
# p99 under overload with admission control on/off. Output lands in
# bench-net.txt for publishing as a build artifact.
bench-net:
	go run ./cmd/mvpbt-bench -run net | tee bench-net.txt

# Hostile-scenario matrix: device zoo x scenario x heap layout, one
# state-hash-stamped row per cell. Output lands in scenarios.txt for
# publishing as a build artifact.
bench-scenarios:
	go run ./cmd/mvpbt-bench -run scenarios | tee scenarios.txt

# mvpbt-server end-to-end smoke: start, run client ops over TCP via
# shardclient, drain, verify clean shutdown. Exits non-zero on failure.
smoke-server:
	go run ./cmd/mvpbt-server -smoke

# Regenerate every figure at full scale (minutes).
bench-full:
	go run ./cmd/mvpbt-bench -all -scale full

examples:
	go run ./examples/quickstart
	go run ./examples/htap
	go run ./examples/ycsb
	go run ./examples/tpcc
	go run ./examples/durability

cover:
	go test -cover ./...
