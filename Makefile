# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-full examples cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go vet ./...
	go test -race ./...

# One testing.B benchmark per paper figure (quick scale).
bench:
	go test -bench=. -benchmem

# Regenerate every figure at full scale (minutes).
bench-full:
	go run ./cmd/mvpbt-bench -all -scale full

examples:
	go run ./examples/quickstart
	go run ./examples/htap
	go run ./examples/ycsb
	go run ./examples/tpcc
	go run ./examples/durability

cover:
	go test -cover ./...
