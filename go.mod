module mvpbt

go 1.24
