package txn

import (
	"sync"
	"testing"
)

func TestBeginAssignsMonotonicIDs(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if b.ID <= a.ID {
		t.Fatalf("ids not monotonic: %d then %d", a.ID, b.ID)
	}
}

func TestOwnEffectsVisible(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if !tx.Sees(tx.ID) {
		t.Fatal("transaction cannot see its own effects")
	}
}

func TestCommittedBeforeSnapshotVisible(t *testing.T) {
	m := NewManager()
	w := m.Begin()
	m.Commit(w)
	r := m.Begin()
	if !r.Sees(w.ID) {
		t.Fatal("earlier committed tx invisible")
	}
}

func TestConcurrentInvisibleEvenAfterCommit(t *testing.T) {
	m := NewManager()
	w := m.Begin() // active when r snapshots
	r := m.Begin()
	if r.Sees(w.ID) {
		t.Fatal("in-progress tx visible")
	}
	m.Commit(w)
	if r.Sees(w.ID) {
		t.Fatal("tx concurrent with snapshot became visible after commit")
	}
}

func TestLaterTxInvisible(t *testing.T) {
	m := NewManager()
	r := m.Begin()
	w := m.Begin()
	m.Commit(w)
	if r.Sees(w.ID) {
		t.Fatal("tx started after snapshot is visible")
	}
}

func TestAbortedInvisible(t *testing.T) {
	m := NewManager()
	w := m.Begin()
	id := w.ID // capture before Abort: handles are pooled and reused
	m.Abort(w)
	r := m.Begin()
	if r.Sees(id) {
		t.Fatal("aborted tx visible")
	}
	if m.StatusOf(id) != Aborted {
		t.Fatal("status not aborted")
	}
}

func TestInvalidIDNeverVisible(t *testing.T) {
	m := NewManager()
	r := m.Begin()
	if r.Sees(InvalidTxID) {
		t.Fatal("invalid id visible")
	}
}

func TestSnapshotStability(t *testing.T) {
	// The classic anomaly SI prevents: a reader's view must not change as
	// writers commit around it.
	m := NewManager()
	w1 := m.Begin()
	m.Commit(w1)
	r := m.Begin()
	sawBefore := r.Sees(w1.ID)
	for i := 0; i < 10; i++ {
		w := m.Begin()
		m.Commit(w)
	}
	if r.Sees(w1.ID) != sawBefore {
		t.Fatal("snapshot view changed")
	}
}

func TestHorizonAdvances(t *testing.T) {
	m := NewManager()
	r := m.Begin()
	h1 := m.Horizon()
	if h1 > r.ID {
		t.Fatalf("horizon %d beyond active snapshot xmin %d", h1, r.ID)
	}
	for i := 0; i < 5; i++ {
		w := m.Begin()
		m.Commit(w)
	}
	if m.Horizon() != h1 {
		t.Fatal("horizon moved while old snapshot active")
	}
	m.Commit(r)
	if m.Horizon() <= h1 {
		t.Fatal("horizon did not advance after snapshot release")
	}
}

func TestHorizonWithLongReader(t *testing.T) {
	m := NewManager()
	// A long-running reader pins the horizon even when newer txs are active:
	// the HTAP scenario of Figure 1.
	long := m.Begin()
	var last *Tx
	for i := 0; i < 100; i++ {
		last = m.Begin()
		m.Commit(last)
	}
	if m.Horizon() > long.ID {
		t.Fatalf("long reader did not pin horizon: %d > %d", m.Horizon(), long.ID)
	}
	m.Commit(long)
	if m.Horizon() <= last.ID {
		t.Fatal("horizon stuck after long reader finished")
	}
}

func TestStatusOfUnassigned(t *testing.T) {
	m := NewManager()
	if m.StatusOf(999) != InProgress {
		t.Fatal("unassigned id should report in-progress (not visible)")
	}
}

func TestDoubleFinishPanics(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	m.Commit(tx)
	defer func() {
		if recover() == nil {
			t.Fatal("double finish should panic")
		}
	}()
	m.Abort(tx)
}

func TestActiveCount(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if m.ActiveCount() != 2 {
		t.Fatalf("active=%d want 2", m.ActiveCount())
	}
	m.Commit(a)
	m.Abort(b)
	if m.ActiveCount() != 0 {
		t.Fatalf("active=%d want 0", m.ActiveCount())
	}
}

func TestConcurrentBeginCommit(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tx := m.Begin()
				if i%7 == 0 {
					m.Abort(tx)
				} else {
					m.Commit(tx)
				}
			}
		}()
	}
	wg.Wait()
	if m.ActiveCount() != 0 {
		t.Fatalf("leaked active txs: %d", m.ActiveCount())
	}
	if m.NextID() != 4001 {
		t.Fatalf("ids not dense: next=%d", m.NextID())
	}
}

func TestSnapshotActiveSetSorted(t *testing.T) {
	m := NewManager()
	var held []*Tx
	for i := 0; i < 20; i++ {
		held = append(held, m.Begin())
	}
	// Finish a scattered subset so the active set has gaps.
	for i := 0; i < 20; i += 3 {
		m.Commit(held[i])
		held[i] = nil
	}
	r := m.Begin()
	for i := 1; i < len(r.Snap.Active); i++ {
		if r.Snap.Active[i-1] >= r.Snap.Active[i] {
			t.Fatal("active set not sorted")
		}
	}
	for _, h := range held {
		if h != nil && !h.done {
			m.Commit(h)
		}
	}
}
