// Package txn implements the multi-version concurrency control substrate:
// transaction identifiers that double as logical timestamps, PostgreSQL
// style snapshots (xmin/xmax/active-set), a commit log, and the visibility
// primitives used by both the base-table visibility check (§2 of the
// paper) and the MV-PBT index-only visibility check (§4.4).
package txn

import (
	"fmt"
	"sort"
	"sync"
)

// TxID is a transaction identifier. TxIDs are assigned monotonically at
// transaction begin and serve as the logical timestamps stored in version
// records and MV-PBT index records. 0 is invalid.
type TxID uint64

// InvalidTxID is the zero, never-assigned transaction id. Version records
// use it as the "no invalidator" timestamp under two-point invalidation.
const InvalidTxID TxID = 0

// Status is the commit-log state of a transaction.
type Status uint8

// Transaction states.
const (
	InProgress Status = iota
	Committed
	Aborted
)

func (s Status) String() string {
	switch s {
	case InProgress:
		return "in-progress"
	case Committed:
		return "committed"
	default:
		return "aborted"
	}
}

// Snapshot captures the set of transactions visible to a transaction at its
// start (snapshot isolation): everything that committed before Xmax and was
// not in-progress (Active) at snapshot time.
type Snapshot struct {
	Xmin   TxID   // lowest transaction id still active at snapshot time
	Xmax   TxID   // first transaction id NOT visible (next to be assigned)
	Active []TxID // sorted ids active at snapshot time (excluding the owner)
}

// contains reports whether id is in the snapshot's active set.
func (s *Snapshot) contains(id TxID) bool {
	i := sort.Search(len(s.Active), func(i int) bool { return s.Active[i] >= id })
	return i < len(s.Active) && s.Active[i] == id
}

// Tx is a running (or finished) transaction handle.
type Tx struct {
	ID   TxID
	Snap Snapshot
	mgr  *Manager
	done bool
}

// Manager assigns transaction ids, tracks active transactions and keeps the
// commit log. It is safe for concurrent use.
type Manager struct {
	mu     sync.Mutex
	next   TxID
	active map[TxID]*Tx
	status []Status // indexed by TxID; grows as ids are assigned
}

// NewManager returns a manager with no history; the first transaction gets
// id 1.
func NewManager() *Manager {
	return &Manager{next: 1, active: make(map[TxID]*Tx), status: make([]Status, 1, 1024)}
}

// Begin starts a transaction, assigning it the next id and a snapshot of
// the currently active set.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.next
	m.next++
	m.status = append(m.status, InProgress)
	snap := Snapshot{Xmin: id, Xmax: id}
	if len(m.active) > 0 {
		snap.Active = make([]TxID, 0, len(m.active))
		for a := range m.active {
			snap.Active = append(snap.Active, a)
		}
		sort.Slice(snap.Active, func(i, j int) bool { return snap.Active[i] < snap.Active[j] })
		if snap.Active[0] < snap.Xmin {
			snap.Xmin = snap.Active[0]
		}
	}
	tx := &Tx{ID: id, Snap: snap, mgr: m}
	m.active[id] = tx
	return tx
}

// Commit marks tx committed and removes it from the active set.
func (m *Manager) Commit(tx *Tx) {
	m.finish(tx, Committed)
}

// Abort marks tx aborted and removes it from the active set.
func (m *Manager) Abort(tx *Tx) {
	m.finish(tx, Aborted)
}

func (m *Manager) finish(tx *Tx, st Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tx.done {
		panic(fmt.Sprintf("txn: double finish of %d", tx.ID))
	}
	tx.done = true
	m.status[tx.ID] = st
	delete(m.active, tx.ID)
}

// StatusOf returns the commit-log state of id.
func (m *Manager) StatusOf(id TxID) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statusLocked(id)
}

func (m *Manager) statusLocked(id TxID) Status {
	if id == InvalidTxID || id >= m.next {
		return InProgress
	}
	return m.status[id]
}

// Sees reports whether the effects of transaction id are visible to the
// transaction holding snapshot snap with identity self: its own effects
// always are; otherwise id must have committed before the snapshot was
// taken (id < Xmax, not active at snapshot time, and committed by now —
// a transaction in the active set is "concurrent" in the paper's Algorithm
// 3 and never visible, even if it has since committed).
func (m *Manager) Sees(snap *Snapshot, self, id TxID) bool {
	if id == InvalidTxID {
		return false
	}
	if id == self {
		return true
	}
	if id >= snap.Xmax {
		return false
	}
	if snap.contains(id) {
		return false
	}
	m.mu.Lock()
	st := m.statusLocked(id)
	m.mu.Unlock()
	return st == Committed
}

// Sees is the transaction-handle convenience form of Manager.Sees.
func (t *Tx) Sees(id TxID) bool {
	return t.mgr.Sees(&t.Snap, t.ID, id)
}

// Horizon returns the garbage-collection cutoff: the highest transaction id
// H such that every transaction with id < H is either finished or invisible
// to no one — i.e. the minimum Xmin over all active snapshots (or the next
// id if nothing is active). A committed invalidation with timestamp < H is
// invisible to every present and future snapshot, so the versions it
// superseded are garbage (paper §4.6 "cutoff-transaction").
func (m *Manager) Horizon() TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.next
	for _, tx := range m.active {
		if tx.Snap.Xmin < h {
			h = tx.Snap.Xmin
		}
	}
	return h
}

// ActiveCount returns the number of in-progress transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// NextID returns the id the next transaction will receive.
func (m *Manager) NextID() TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}
