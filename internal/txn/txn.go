// Package txn implements the multi-version concurrency control substrate:
// transaction identifiers that double as logical timestamps, PostgreSQL
// style snapshots (xmin/xmax/active-set), a commit log, and the visibility
// primitives used by both the base-table visibility check (§2 of the
// paper) and the MV-PBT index-only visibility check (§4.4).
package txn

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// TxID is a transaction identifier. TxIDs are assigned monotonically at
// transaction begin and serve as the logical timestamps stored in version
// records and MV-PBT index records. 0 is invalid.
type TxID uint64

// InvalidTxID is the zero, never-assigned transaction id. Version records
// use it as the "no invalidator" timestamp under two-point invalidation.
const InvalidTxID TxID = 0

// Status is the commit-log state of a transaction.
type Status uint8

// Transaction states.
const (
	InProgress Status = iota
	Committed
	Aborted
)

func (s Status) String() string {
	switch s {
	case InProgress:
		return "in-progress"
	case Committed:
		return "committed"
	default:
		return "aborted"
	}
}

// Snapshot captures the set of transactions visible to a transaction at its
// start (snapshot isolation): everything that committed before Xmax and was
// not in-progress (Active) at snapshot time.
type Snapshot struct {
	Xmin   TxID   // lowest transaction id still active at snapshot time
	Xmax   TxID   // first transaction id NOT visible (next to be assigned)
	Active []TxID // sorted ids active at snapshot time (excluding the owner)
}

// contains reports whether id is in the snapshot's active set.
func (s *Snapshot) contains(id TxID) bool {
	i := sort.Search(len(s.Active), func(i int) bool { return s.Active[i] >= id })
	return i < len(s.Active) && s.Active[i] == id
}

// Tx is a running (or finished) transaction handle.
//
// Handles are POOLED: Commit/Abort returns the handle to the manager's
// free list and a later Begin may reuse it, rewriting every field. The
// rules that make this safe: a handle is owned by one goroutine at a
// time, nothing may retain a *Tx (or a sub-slice of its snapshot's
// Active set) past Commit/Abort, and consumers that need transaction
// identity durably store the TxID value, never the pointer. All in-tree
// consumers follow this (heaps and indexes store TxIDs; the differential
// oracle copies the snapshot at Begin).
type Tx struct {
	ID   TxID
	Snap Snapshot
	mgr  *Manager
	done bool
	ctx  context.Context

	// walLogged tracks whether the engine has emitted this transaction's
	// WAL begin record (begin records are written lazily with the first
	// row operation, so read-only transactions never touch the log). Owned
	// by the transaction's goroutine, reset on reuse.
	walLogged bool
}

// FirstWALOp reports whether this is the first logged operation of the
// transaction, marking it logged as a side effect. The engine calls it to
// decide whether a begin record must precede the row record being appended.
func (t *Tx) FirstWALOp() bool {
	if t.walLogged {
		return false
	}
	t.walLogged = true
	return true
}

// WALLogged reports whether the transaction has appended anything to the
// WAL (i.e. a begin record exists). Read-only transactions never log, so
// their commit needs neither a commit record nor a flush.
func (t *Tx) WALLogged() bool { return t.walLogged }

// Context returns the context the transaction was begun with (never nil).
// Operations issued through the transaction consult it at their blocking
// points — write stalls, I/O retries — so a deadline or cancellation on the
// caller's context bounds how long any single operation can block.
func (t *Tx) Context() context.Context {
	if t.ctx == nil {
		return context.Background()
	}
	return t.ctx
}

// Commit-log chunking: statuses live in fixed 4096-entry chunks of atomic
// words. The chunk directory is republished copy-on-write under mu when it
// grows, so readers resolve any assigned id with two atomic loads and no
// lock. A chunk's zero value is InProgress, matching the state of an id
// whose transaction has begun but not finished.
const (
	statusChunkBits = 12
	statusChunkSize = 1 << statusChunkBits
	statusChunkMask = statusChunkSize - 1
)

type statusChunk [statusChunkSize]atomic.Uint32

// Manager assigns transaction ids, tracks active transactions and keeps the
// commit log. It is safe for concurrent use; the read-path primitives
// (StatusOf, Sees, Horizon) are lock-free so parallel index readers do not
// serialize here.
type Manager struct {
	mu     sync.Mutex
	next   atomic.Uint64 // next TxID to assign
	active map[TxID]*Tx
	chunks atomic.Pointer[[]*statusChunk]

	// txPool recycles Tx handles (and, via their Snap.Active capacity, the
	// per-begin active-set slices) so the Begin/Commit hot path allocates
	// nothing in steady state. See the pooling contract on Tx.
	txPool sync.Pool

	// horizon caches the GC cutoff (min Xmin over active snapshots, or
	// next if none). It only changes when the active set changes, so
	// Begin/finish recompute it under mu and readers load it for free.
	horizon atomic.Uint64
}

// NewManager returns a manager with no history; the first transaction gets
// id 1.
func NewManager() *Manager {
	m := &Manager{active: make(map[TxID]*Tx)}
	chunks := []*statusChunk{new(statusChunk)}
	m.chunks.Store(&chunks)
	m.next.Store(1)
	m.horizon.Store(1)
	return m
}

// ensureChunkLocked grows the chunk directory to cover id, republishing a
// copied directory so concurrent readers never observe a partial append.
func (m *Manager) ensureChunkLocked(id TxID) {
	want := int(id>>statusChunkBits) + 1
	cur := *m.chunks.Load()
	if len(cur) >= want {
		return
	}
	grown := make([]*statusChunk, want)
	copy(grown, cur)
	for i := len(cur); i < want; i++ {
		grown[i] = new(statusChunk)
	}
	m.chunks.Store(&grown)
}

// Begin starts a transaction, assigning it the next id and a snapshot of
// the currently active set. The transaction carries context.Background();
// use BeginCtx to attach a cancellable context.
func (m *Manager) Begin() *Tx {
	return m.BeginCtx(context.Background())
}

// BeginCtx starts a transaction carrying ctx (see Tx.Context). A nil ctx
// is treated as context.Background(). The context does NOT abort the
// transaction by itself — it only unblocks operations waiting inside it;
// the caller still owns the Commit/Abort decision.
func (m *Manager) BeginCtx(ctx context.Context) *Tx {
	if ctx == nil {
		ctx = context.Background()
	}
	tx, _ := m.txPool.Get().(*Tx)
	if tx == nil {
		tx = &Tx{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := TxID(m.next.Load())
	m.ensureChunkLocked(id)
	m.next.Store(uint64(id) + 1)
	snap := Snapshot{Xmin: id, Xmax: id, Active: tx.Snap.Active[:0]}
	if len(m.active) > 0 {
		for a := range m.active {
			snap.Active = append(snap.Active, a)
		}
		sort.Slice(snap.Active, func(i, j int) bool { return snap.Active[i] < snap.Active[j] })
		if snap.Active[0] < snap.Xmin {
			snap.Xmin = snap.Active[0]
		}
	}
	*tx = Tx{ID: id, Snap: snap, mgr: m, ctx: ctx}
	m.active[id] = tx
	m.recomputeHorizonLocked()
	return tx
}

// Commit marks tx committed and removes it from the active set.
func (m *Manager) Commit(tx *Tx) {
	m.finish(tx, Committed)
}

// Abort marks tx aborted and removes it from the active set.
func (m *Manager) Abort(tx *Tx) {
	m.finish(tx, Aborted)
}

func (m *Manager) finish(tx *Tx, st Status) {
	m.mu.Lock()
	if tx.done {
		m.mu.Unlock()
		panic(fmt.Sprintf("txn: double finish of %d", tx.ID))
	}
	tx.done = true
	m.statusEntry(tx.ID).Store(uint32(st))
	delete(m.active, tx.ID)
	m.recomputeHorizonLocked()
	m.mu.Unlock()
	// Recycle the handle. The pooling contract (see Tx) lets a later Begin
	// rewrite it; callers that read tx.ID immediately after Commit in the
	// same goroutine are still safe only if no other goroutine Begins in
	// between, so in-tree callers capture the id before finishing.
	m.txPool.Put(tx)
}

func (m *Manager) recomputeHorizonLocked() {
	h := TxID(m.next.Load())
	for _, tx := range m.active {
		if tx.Snap.Xmin < h {
			h = tx.Snap.Xmin
		}
	}
	m.horizon.Store(uint64(h))
}

// statusEntry returns the commit-log word for an assigned id.
func (m *Manager) statusEntry(id TxID) *atomic.Uint32 {
	chunks := *m.chunks.Load()
	return &chunks[id>>statusChunkBits][id&statusChunkMask]
}

// StatusOf returns the commit-log state of id. Lock-free.
func (m *Manager) StatusOf(id TxID) Status {
	if id == InvalidTxID || uint64(id) >= m.next.Load() {
		return InProgress
	}
	return Status(m.statusEntry(id).Load())
}

// Sees reports whether the effects of transaction id are visible to the
// transaction holding snapshot snap with identity self: its own effects
// always are; otherwise id must have committed before the snapshot was
// taken (id < Xmax, not active at snapshot time, and committed by now —
// a transaction in the active set is "concurrent" in the paper's Algorithm
// 3 and never visible, even if it has since committed). Lock-free.
func (m *Manager) Sees(snap *Snapshot, self, id TxID) bool {
	if id == InvalidTxID {
		return false
	}
	if id == self {
		return true
	}
	if id >= snap.Xmax {
		return false
	}
	if snap.contains(id) {
		return false
	}
	return m.StatusOf(id) == Committed
}

// Sees is the transaction-handle convenience form of Manager.Sees.
func (t *Tx) Sees(id TxID) bool {
	return t.mgr.Sees(&t.Snap, t.ID, id)
}

// Horizon returns the garbage-collection cutoff: the highest transaction id
// H such that every transaction with id < H is either finished or invisible
// to no one — i.e. the minimum Xmin over all active snapshots (or the next
// id if nothing is active). A committed invalidation with timestamp < H is
// invisible to every present and future snapshot, so the versions it
// superseded are garbage (paper §4.6 "cutoff-transaction"). Lock-free:
// the value is maintained on the Begin/Commit/Abort path.
func (m *Manager) Horizon() TxID {
	return TxID(m.horizon.Load())
}

// ActiveCount returns the number of in-progress transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// NextID returns the id the next transaction will receive.
func (m *Manager) NextID() TxID {
	return TxID(m.next.Load())
}
