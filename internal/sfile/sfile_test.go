package sfile

import (
	"bytes"
	"errors"
	"testing"

	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

func newMgr() *Manager {
	return NewManager(ssd.New(simclock.New(), ssd.IntelP3600))
}

func TestCreateAndIdentity(t *testing.T) {
	m := newMgr()
	f1 := m.Create("table-a", ClassTable)
	f2 := m.Create("index-a", ClassIndex)
	if f1.ID() == f2.ID() {
		t.Fatal("file ids collide")
	}
	if m.Lookup(f1.ID()) != f1 || m.Lookup(f2.ID()) != f2 {
		t.Fatal("lookup broken")
	}
	if f1.Class() != ClassTable || f2.Class() != ClassIndex {
		t.Fatal("class lost")
	}
	if !f1.PageID(0).Valid() {
		t.Fatal("page id of first page invalid")
	}
}

func TestPageRoundTrip(t *testing.T) {
	m := newMgr()
	f := m.Create("t", ClassTable)
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 100; i++ {
		no := f.AllocPage()
		if no != uint64(i) {
			t.Fatalf("page numbers not dense: got %d want %d", no, i)
		}
		for j := range buf {
			buf[j] = byte(i)
		}
		f.WritePage(no, buf)
	}
	got := make([]byte, storage.PageSize)
	for i := 0; i < 100; i++ {
		f.ReadPage(uint64(i), got)
		if got[0] != byte(i) || got[storage.PageSize-1] != byte(i) {
			t.Fatalf("page %d content wrong", i)
		}
	}
}

func TestTwoFilesDoNotOverlap(t *testing.T) {
	m := newMgr()
	a := m.Create("a", ClassTable)
	b := m.Create("b", ClassTable)
	bufA := bytes.Repeat([]byte{0xAA}, storage.PageSize)
	bufB := bytes.Repeat([]byte{0xBB}, storage.PageSize)
	for i := 0; i < 2*ExtentPages; i++ {
		a.AllocPage()
		b.AllocPage()
		a.WritePage(uint64(i), bufA)
		b.WritePage(uint64(i), bufB)
	}
	got := make([]byte, storage.PageSize)
	for i := 0; i < 2*ExtentPages; i++ {
		a.ReadPage(uint64(i), got)
		if got[17] != 0xAA {
			t.Fatalf("file a page %d corrupted by file b", i)
		}
	}
}

func TestAllocRunAlignedAndSequential(t *testing.T) {
	m := newMgr()
	f := m.Create("idx", ClassIndex)
	f.AllocPage() // leave the file mid-extent
	start := f.AllocRun(100)
	if start%ExtentPages != 0 {
		t.Fatalf("run start %d not extent-aligned", start)
	}
	// Writing the run in order must be sequential on the device.
	dev := m.Device()
	dev.ResetStats()
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 100; i++ {
		f.WritePage(start+uint64(i), buf)
	}
	s := dev.Stats()
	if s.SeqWrites < 95 {
		t.Fatalf("run write-out not sequential: seq=%d rand=%d", s.SeqWrites, s.RandWrites)
	}
}

func TestFreeRunRecyclesExtents(t *testing.T) {
	m := newMgr()
	f := m.Create("idx", ClassIndex)
	start := f.AllocRun(ExtentPages * 3)
	if m.FreeExtents() != 0 {
		t.Fatal("free list should start empty")
	}
	f.FreeRun(start, ExtentPages*3)
	if m.FreeExtents() != 3 {
		t.Fatalf("freed %d extents, want 3", m.FreeExtents())
	}
	before := m.AllocatedBytes()
	g := m.Create("other", ClassTable)
	for i := 0; i < ExtentPages*3; i++ {
		g.AllocPage()
	}
	if m.AllocatedBytes() != before {
		t.Fatal("regular allocation did not reuse freed extents")
	}
}

func TestAccessFreedRunReturnsTypedError(t *testing.T) {
	m := newMgr()
	f := m.Create("idx", ClassIndex)
	start := f.AllocRun(ExtentPages)
	f.FreeRun(start, ExtentPages)
	buf := make([]byte, storage.PageSize)
	if err := f.ReadPage(start, buf); !errors.Is(err, storage.ErrFreedPage) {
		t.Fatalf("reading a freed page: got %v, want ErrFreedPage", err)
	}
	if err := f.WritePage(start, buf); !errors.Is(err, storage.ErrFreedPage) {
		t.Fatalf("writing a freed page: got %v, want ErrFreedPage", err)
	}
	// Never-allocated pages report the same typed error.
	if err := f.ReadPage(start+10*ExtentPages, buf); !errors.Is(err, storage.ErrFreedPage) {
		t.Fatalf("reading an unallocated page: got %v, want ErrFreedPage", err)
	}
}

func TestClassifierScopesFaultsByFileClass(t *testing.T) {
	m := newMgr()
	tbl := m.Create("t", ClassTable)
	idx := m.Create("i", ClassIndex)
	tno, ino := tbl.AllocPage(), idx.AllocPage()
	buf := make([]byte, storage.PageSize)
	m.Device().ArmFault(ssd.FaultRule{Kind: ssd.FaultWriteErr, Class: int(ClassIndex), Sticky: true})
	if err := tbl.WritePage(tno, buf); err != nil {
		t.Fatalf("table write should pass an index-scoped fault: %v", err)
	}
	if err := idx.WritePage(ino, buf); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("index write should hit the index-scoped fault, got %v", err)
	}
	// Freed extents lose their class attribution.
	run := idx.AllocRun(ExtentPages)
	idx.FreeRun(run, ExtentPages)
	m.Device().DisarmAllFaults()
}

func TestPageIDComposition(t *testing.T) {
	m := newMgr()
	f := m.Create("x", ClassMeta)
	no := f.AllocPage()
	pid := f.PageID(no)
	if pid.File() != f.ID() || pid.PageNo() != no {
		t.Fatalf("PageID decomposition wrong: %v", pid)
	}
}
