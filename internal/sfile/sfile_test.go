package sfile

import (
	"bytes"
	"errors"
	"testing"

	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

func newMgr() *Manager {
	return NewManager(ssd.New(simclock.New(), ssd.IntelP3600))
}

func mustAllocPage(t *testing.T, f *File) uint64 {
	t.Helper()
	no, err := f.AllocPage()
	if err != nil {
		t.Fatalf("AllocPage(%q): %v", f.Name(), err)
	}
	return no
}

func mustAllocRun(t *testing.T, f *File, n int) uint64 {
	t.Helper()
	start, err := f.AllocRun(n)
	if err != nil {
		t.Fatalf("AllocRun(%q, %d): %v", f.Name(), n, err)
	}
	return start
}

func TestCreateAndIdentity(t *testing.T) {
	m := newMgr()
	f1 := m.Create("table-a", ClassTable)
	f2 := m.Create("index-a", ClassIndex)
	if f1.ID() == f2.ID() {
		t.Fatal("file ids collide")
	}
	if m.Lookup(f1.ID()) != f1 || m.Lookup(f2.ID()) != f2 {
		t.Fatal("lookup broken")
	}
	if f1.Class() != ClassTable || f2.Class() != ClassIndex {
		t.Fatal("class lost")
	}
	if !f1.PageID(0).Valid() {
		t.Fatal("page id of first page invalid")
	}
}

func TestPageRoundTrip(t *testing.T) {
	m := newMgr()
	f := m.Create("t", ClassTable)
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 100; i++ {
		no := mustAllocPage(t, f)
		if no != uint64(i) {
			t.Fatalf("page numbers not dense: got %d want %d", no, i)
		}
		for j := range buf {
			buf[j] = byte(i)
		}
		f.WritePage(no, buf)
	}
	got := make([]byte, storage.PageSize)
	for i := 0; i < 100; i++ {
		f.ReadPage(uint64(i), got)
		if got[0] != byte(i) || got[storage.PageSize-1] != byte(i) {
			t.Fatalf("page %d content wrong", i)
		}
	}
}

func TestTwoFilesDoNotOverlap(t *testing.T) {
	m := newMgr()
	a := m.Create("a", ClassTable)
	b := m.Create("b", ClassTable)
	bufA := bytes.Repeat([]byte{0xAA}, storage.PageSize)
	bufB := bytes.Repeat([]byte{0xBB}, storage.PageSize)
	for i := 0; i < 2*ExtentPages; i++ {
		mustAllocPage(t, a)
		mustAllocPage(t, b)
		a.WritePage(uint64(i), bufA)
		b.WritePage(uint64(i), bufB)
	}
	got := make([]byte, storage.PageSize)
	for i := 0; i < 2*ExtentPages; i++ {
		a.ReadPage(uint64(i), got)
		if got[17] != 0xAA {
			t.Fatalf("file a page %d corrupted by file b", i)
		}
	}
}

func TestAllocRunAlignedAndSequential(t *testing.T) {
	m := newMgr()
	f := m.Create("idx", ClassIndex)
	mustAllocPage(t, f) // leave the file mid-extent
	start := mustAllocRun(t, f, 100)
	if start%ExtentPages != 0 {
		t.Fatalf("run start %d not extent-aligned", start)
	}
	// Writing the run in order must be sequential on the device.
	dev := m.Device()
	dev.ResetStats()
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 100; i++ {
		f.WritePage(start+uint64(i), buf)
	}
	s := dev.Stats()
	if s.SeqWrites < 95 {
		t.Fatalf("run write-out not sequential: seq=%d rand=%d", s.SeqWrites, s.RandWrites)
	}
}

func TestFreeRunRecyclesExtents(t *testing.T) {
	m := newMgr()
	f := m.Create("idx", ClassIndex)
	start := mustAllocRun(t, f, ExtentPages*3)
	if m.FreeExtents() != 0 {
		t.Fatal("free list should start empty")
	}
	f.FreeRun(start, ExtentPages*3)
	if m.FreeExtents() != 3 {
		t.Fatalf("freed %d extents, want 3", m.FreeExtents())
	}
	before := m.AllocatedBytes()
	g := m.Create("other", ClassTable)
	for i := 0; i < ExtentPages*3; i++ {
		mustAllocPage(t, g)
	}
	if m.AllocatedBytes() != before {
		t.Fatal("regular allocation did not reuse freed extents")
	}
}

func TestAccessFreedRunReturnsTypedError(t *testing.T) {
	m := newMgr()
	f := m.Create("idx", ClassIndex)
	start := mustAllocRun(t, f, ExtentPages)
	f.FreeRun(start, ExtentPages)
	buf := make([]byte, storage.PageSize)
	if err := f.ReadPage(start, buf); !errors.Is(err, storage.ErrFreedPage) {
		t.Fatalf("reading a freed page: got %v, want ErrFreedPage", err)
	}
	if err := f.WritePage(start, buf); !errors.Is(err, storage.ErrFreedPage) {
		t.Fatalf("writing a freed page: got %v, want ErrFreedPage", err)
	}
	// Never-allocated pages report the same typed error.
	if err := f.ReadPage(start+10*ExtentPages, buf); !errors.Is(err, storage.ErrFreedPage) {
		t.Fatalf("reading an unallocated page: got %v, want ErrFreedPage", err)
	}
}

func TestClassifierScopesFaultsByFileClass(t *testing.T) {
	m := newMgr()
	tbl := m.Create("t", ClassTable)
	idx := m.Create("i", ClassIndex)
	tno, ino := mustAllocPage(t, tbl), mustAllocPage(t, idx)
	buf := make([]byte, storage.PageSize)
	m.Device().ArmFault(ssd.FaultRule{Kind: ssd.FaultWriteErr, Class: int(ClassIndex), Sticky: true})
	if err := tbl.WritePage(tno, buf); err != nil {
		t.Fatalf("table write should pass an index-scoped fault: %v", err)
	}
	if err := idx.WritePage(ino, buf); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("index write should hit the index-scoped fault, got %v", err)
	}
	// Freed extents lose their class attribution.
	run := mustAllocRun(t, idx, ExtentPages)
	idx.FreeRun(run, ExtentPages)
	m.Device().DisarmAllFaults()
}

func TestPageIDComposition(t *testing.T) {
	m := newMgr()
	f := m.Create("x", ClassMeta)
	no := mustAllocPage(t, f)
	pid := f.PageID(no)
	if pid.File() != f.ID() || pid.PageNo() != no {
		t.Fatalf("PageID decomposition wrong: %v", pid)
	}
}

func TestLiveBytesAllocFreeAllocNoDoubleCount(t *testing.T) {
	m := newMgr()
	f := m.Create("idx", ClassIndex)
	start := mustAllocRun(t, f, ExtentPages*4)
	if got, want := m.LiveBytes(), int64(4*ExtentBytes); got != want {
		t.Fatalf("live after alloc: got %d want %d", got, want)
	}
	f.FreeRun(start, ExtentPages*4)
	if got := m.LiveBytes(); got != 0 {
		t.Fatalf("live after free: got %d want 0", got)
	}
	hw := m.HighWaterBytes()
	// Reuse the freed extents: live must be counted once, the high-water
	// mark must not move.
	g := m.Create("t", ClassTable)
	for i := 0; i < ExtentPages*4; i++ {
		mustAllocPage(t, g)
	}
	if got, want := m.LiveBytes(), int64(4*ExtentBytes); got != want {
		t.Fatalf("live after reuse: got %d want %d (double-counted?)", got, want)
	}
	if m.HighWaterBytes() != hw {
		t.Fatalf("high-water moved on reuse: %d -> %d", hw, m.HighWaterBytes())
	}
	if m.AllocatedBytes() != m.HighWaterBytes() {
		t.Fatal("AllocatedBytes must alias HighWaterBytes")
	}
}

func TestCapacityBudgetReturnsErrNoSpace(t *testing.T) {
	m := newMgr()
	m.SetCapacity(2 * ExtentBytes)
	f := m.Create("t", ClassTable)
	for i := 0; i < 2*ExtentPages; i++ {
		mustAllocPage(t, f)
	}
	if _, err := f.AllocPage(); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("alloc past capacity: got %v, want ErrNoSpace", err)
	}
	before := f.NumPages()
	// Freeing space clears the condition.
	g := m.Create("idx", ClassIndex)
	if _, err := g.AllocRun(ExtentPages); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("run past capacity: got %v, want ErrNoSpace", err)
	}
	if f.NumPages() != before {
		t.Fatal("failed alloc changed file size")
	}
	m.SetCapacity(0)
	mustAllocPage(t, f)
}

func TestAllocRunRollbackOnMidRunFailure(t *testing.T) {
	m := newMgr()
	m.SetCapacity(3 * ExtentBytes)
	f := m.Create("idx", ClassIndex)
	mustAllocRun(t, f, ExtentPages) // one extent live
	pages := f.NumPages()
	// A 3-extent run cannot fit in the remaining 2-extent budget; the
	// whole run must roll back.
	if _, err := f.AllocRun(3 * ExtentPages); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("mid-run capacity failure: got %v, want ErrNoSpace", err)
	}
	if f.NumPages() != pages {
		t.Fatalf("failed run changed file size: %d -> %d", pages, f.NumPages())
	}
	if got, want := m.LiveBytes(), int64(ExtentBytes); got != want {
		t.Fatalf("failed run leaked live bytes: got %d want %d", got, want)
	}
	// The rolled-back extents are reusable.
	start := mustAllocRun(t, f, 2*ExtentPages)
	buf := make([]byte, storage.PageSize)
	if err := f.WritePage(start, buf); err != nil {
		t.Fatalf("write after rollback: %v", err)
	}
}

func TestInjectedNoSpaceFault(t *testing.T) {
	m := newMgr()
	f := m.Create("t", ClassTable)
	mustAllocPage(t, f)
	// The next extent allocation (the file's second extent) hits ENOSPC.
	m.Device().ArmFault(ssd.FaultRule{Kind: ssd.FaultNoSpace, Class: ssd.AnyClass, Ops: []uint64{1}})
	for i := 1; i < ExtentPages; i++ {
		mustAllocPage(t, f) // same extent: no allocation, no fault
	}
	if _, err := f.AllocPage(); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("injected ENOSPC: got %v, want ErrNoSpace", err)
	}
	// The schedule is exhausted; the retry succeeds and accounting held.
	mustAllocPage(t, f)
	if got, want := m.LiveBytes(), int64(2*ExtentBytes); got != want {
		t.Fatalf("live after injected fault: got %d want %d", got, want)
	}
	if c := m.Device().FaultCounters(); c.Injected[ssd.FaultNoSpace] != 1 {
		t.Fatalf("no-space fault counter: got %d want 1", c.Injected[ssd.FaultNoSpace])
	}
}

func TestSpaceNotifierFiresOutsideLocks(t *testing.T) {
	m := newMgr()
	var calls int
	var last int64
	m.SetSpaceNotifier(func(live int64) {
		// Re-entering the manager must be safe (no locks held).
		_ = m.LiveBytes()
		_ = m.HighWaterBytes()
		calls++
		last = live
	})
	f := m.Create("t", ClassTable)
	mustAllocPage(t, f)
	if calls != 1 || last != ExtentBytes {
		t.Fatalf("after alloc: calls=%d last=%d", calls, last)
	}
	start := mustAllocRun(t, f, ExtentPages)
	if calls != 2 {
		t.Fatalf("after run: calls=%d", calls)
	}
	f.FreeRun(start, ExtentPages)
	if calls != 3 || last != ExtentBytes {
		t.Fatalf("after free: calls=%d last=%d", calls, last)
	}
	m.SetSpaceNotifier(nil)
	mustAllocPage(t, f)
	if calls != 3 {
		t.Fatal("notifier fired after removal")
	}
}
