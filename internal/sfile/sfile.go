// Package sfile provides extent-based space allocation on top of the
// simulated flash device: storage objects (base-table segments, index
// files) allocate pages in extents of contiguous device blocks, which gives
// append workloads the sequential, extent-striped write pattern visible in
// the paper's Figure 12c. Freed extents are recycled.
package sfile

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

// ExtentPages is the number of pages per allocation extent (256 KiB
// extents, matching common database extent sizes).
const ExtentPages = 32

// ExtentBytes is the extent size in bytes.
const ExtentBytes = ExtentPages * storage.PageSize

// Class labels a file's role for buffer-pool statistics (the paper's
// Figure 12d separates index-node from base-table-node requests).
type Class uint8

// File classes.
const (
	ClassTable Class = iota
	ClassIndex
	ClassMeta
	numClasses
)

// NumClasses is the number of file classes.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case ClassTable:
		return "table"
	case ClassIndex:
		return "index"
	default:
		return "meta"
	}
}

// Manager owns the device space: it hands out extents to files and
// recycles freed ones. Space is accounted two ways: LIVE bytes (extents
// currently handed out, decremented on free) and the HIGH-WATER mark (the
// allocation frontier, which never shrinks). An optional capacity budget
// bounds live bytes: an allocation that would exceed it fails with an
// error wrapping storage.ErrNoSpace instead of growing forever.
type Manager struct {
	mu       sync.Mutex
	dev      *ssd.Device
	frontier int64 // next unallocated device byte offset (high-water mark)
	free     []int64
	files    map[storage.FileID]*File
	nextFile storage.FileID

	capacity atomic.Int64 // live-byte budget; 0 = unbounded
	live     atomic.Int64 // bytes of extents currently handed out

	// notify, when installed, fires after every allocation or free with the
	// current live-byte count — the engine's space governor hangs its
	// watermark state machine off it. It is invoked OUTSIDE the manager and
	// file locks, so it may call back into the manager (LiveBytes, etc.)
	// but sees a count that may already be stale; governors must tolerate
	// that.
	notify atomic.Pointer[func(live int64)]

	// classMu guards extClass, the extent→class map backing the device's
	// fault-scoping classifier. It is a separate mutex because the device
	// calls the classifier with its own lock held, and the manager calls
	// into the device (Discard) while holding m.mu — routing the classifier
	// through m.mu would invert that order.
	classMu  sync.Mutex
	extClass map[int64]Class
}

// NewManager returns a manager allocating space on dev.
func NewManager(dev *ssd.Device) *Manager {
	m := &Manager{dev: dev, files: make(map[storage.FileID]*File), nextFile: 1, extClass: make(map[int64]Class)}
	dev.SetClassifier(m.classOf)
	return m
}

// classOf maps a device byte offset to the sfile class of the extent it
// falls in, for fault-rule scoping. Unattributed space is ssd.AnyClass.
func (m *Manager) classOf(off int64) int {
	m.classMu.Lock()
	defer m.classMu.Unlock()
	if c, ok := m.extClass[off/ExtentBytes]; ok {
		return int(c)
	}
	return ssd.AnyClass
}

// Device returns the underlying device.
func (m *Manager) Device() *ssd.Device { return m.dev }

// SetCapacity installs a live-byte budget (0 removes it). Allocations that
// would push live bytes past the budget fail with storage.ErrNoSpace;
// already-allocated space is unaffected, so shrinking below current usage
// only blocks future growth.
func (m *Manager) SetCapacity(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	m.capacity.Store(bytes)
}

// CapacityBytes returns the configured live-byte budget (0 = unbounded).
func (m *Manager) CapacityBytes() int64 { return m.capacity.Load() }

// LiveBytes returns the bytes of extents currently handed out. Unlike the
// high-water mark it shrinks when runs are freed.
func (m *Manager) LiveBytes() int64 { return m.live.Load() }

// HighWaterBytes returns the allocation frontier — the most device address
// space ever handed out at once. It never shrinks.
func (m *Manager) HighWaterBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frontier
}

// SetSpaceNotifier installs fn to run (outside the manager's locks) after
// every allocation and free, with the current live-byte count. Pass nil to
// remove it.
func (m *Manager) SetSpaceNotifier(fn func(live int64)) {
	if fn == nil {
		m.notify.Store(nil)
		return
	}
	m.notify.Store(&fn)
}

// noteSpace fires the space notifier. Callers must hold NO manager or file
// locks.
func (m *Manager) noteSpace() {
	if fn := m.notify.Load(); fn != nil {
		(*fn)(m.live.Load())
	}
}

// Create makes a new empty file.
func (m *Manager) Create(name string, class Class) *File {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &File{m: m, id: m.nextFile, name: name, class: class}
	m.files[f.id] = f
	m.nextFile++
	return f
}

// Lookup returns the file with the given id, or nil.
func (m *Manager) Lookup(id storage.FileID) *File {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.files[id]
}

// allocExtent hands out one extent, reusing freed extents first. preferNew
// forces fresh frontier space (used for partition runs, which want device
// contiguity for sequential write-out). The allocation is charged against
// the live-byte budget — reusing a freed extent counts the same as frontier
// space, since freed extents were discarded and their live bytes released —
// and checked against the device's armed FaultNoSpace rules. On failure
// nothing is committed: the free list, frontier, and live count are
// untouched.
func (m *Manager) allocExtent(preferNew bool, class Class) (int64, error) {
	var off int64
	fromFree := !preferNew && len(m.free) > 0
	if fromFree {
		off = m.free[len(m.free)-1]
	} else {
		off = m.frontier
	}
	if cap := m.capacity.Load(); cap > 0 && m.live.Load()+ExtentBytes > cap {
		return 0, fmt.Errorf("sfile: extent at off=%d: live=%d + extent=%d exceeds capacity=%d: %w",
			off, m.live.Load(), int64(ExtentBytes), cap, storage.ErrNoSpace)
	}
	if err := m.dev.CheckAlloc(off, ExtentBytes); err != nil {
		return 0, err
	}
	if fromFree {
		m.free = m.free[:len(m.free)-1]
	} else {
		m.frontier += ExtentBytes
	}
	m.live.Add(ExtentBytes)
	m.classMu.Lock()
	m.extClass[off/ExtentBytes] = class
	m.classMu.Unlock()
	return off, nil
}

func (m *Manager) freeExtent(off int64) {
	m.classMu.Lock()
	delete(m.extClass, off/ExtentBytes)
	m.classMu.Unlock()
	m.dev.Discard(off, ExtentBytes)
	m.free = append(m.free, off)
	m.live.Add(-ExtentBytes)
}

// AllocatedBytes returns the high-water mark of device space handed out.
// It is an alias for HighWaterBytes, kept for older callers; use LiveBytes
// for current usage.
func (m *Manager) AllocatedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frontier
}

// FreeExtents returns the number of recyclable extents.
func (m *Manager) FreeExtents() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// File is a storage object: a growable array of pages mapped onto device
// extents. Files are safe for concurrent use.
type File struct {
	m     *Manager
	id    storage.FileID
	name  string
	class Class

	mu      sync.Mutex
	extents []int64 // device byte offset per extent; -1 = freed
	nPages  uint64
}

// ID returns the file id.
func (f *File) ID() storage.FileID { return f.id }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Class returns the file's buffer-statistics class.
func (f *File) Class() Class { return f.class }

// NumPages returns the number of allocated pages (including freed runs).
func (f *File) NumPages() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nPages
}

// AllocPage allocates one page and returns its page number. It fails with
// an error wrapping storage.ErrNoSpace when the extent it needs exceeds the
// manager's capacity budget (or an injected ENOSPC fault fires); on failure
// the file is unchanged.
func (f *File) AllocPage() (uint64, error) {
	f.mu.Lock()
	no, err := f.allocPageLocked()
	f.mu.Unlock()
	if err == nil {
		f.m.noteSpace()
	}
	return no, err
}

func (f *File) allocPageLocked() (uint64, error) {
	no := f.nPages
	ext := int(no / ExtentPages)
	if ext >= len(f.extents) {
		f.m.mu.Lock()
		off, err := f.m.allocExtent(false, f.class)
		f.m.mu.Unlock()
		if err != nil {
			return 0, fmt.Errorf("sfile: file %q: %w", f.name, err)
		}
		f.extents = append(f.extents, off)
	}
	f.nPages++
	return no, nil
}

// AllocRun allocates n pages starting at an extent boundary, backed by
// freshly allocated (device-contiguous where possible) extents. It returns
// the first page number. Partition eviction uses this so the subsequent
// page writes form one long sequential stream. A capacity failure mid-run
// rolls the whole run back (extents already taken are freed again, the file
// size is restored) so a failed AllocRun is a no-op.
func (f *File) AllocRun(n int) (uint64, error) {
	if n <= 0 {
		panic("sfile: AllocRun with n <= 0")
	}
	f.mu.Lock()
	savedPages := f.nPages
	savedExt := len(f.extents)
	// Align to the next extent boundary; the tail of the current extent is
	// wasted (dense-packed partitions tolerate this, and it keeps runs
	// extent-aligned for freeing).
	if rem := f.nPages % ExtentPages; rem != 0 {
		f.nPages += ExtentPages - rem
	}
	start := f.nPages
	need := (n + ExtentPages - 1) / ExtentPages
	var allocErr error
	f.m.mu.Lock()
	for i := 0; i < need; i++ {
		off, err := f.m.allocExtent(true, f.class)
		if err != nil {
			allocErr = err
			break
		}
		f.extents = append(f.extents, off)
	}
	if allocErr != nil {
		for _, off := range f.extents[savedExt:] {
			f.m.freeExtent(off)
		}
		f.extents = f.extents[:savedExt]
		f.nPages = savedPages
	}
	f.m.mu.Unlock()
	if allocErr != nil {
		f.mu.Unlock()
		return 0, fmt.Errorf("sfile: file %q: run of %d pages: %w", f.name, n, allocErr)
	}
	f.nPages = start + uint64(n)
	f.mu.Unlock()
	f.m.noteSpace()
	return start, nil
}

// FreeRun releases the extents backing pages [start, start+n). start must
// be extent-aligned (as returned by AllocRun). The page numbers must never
// be referenced again.
func (f *File) FreeRun(start uint64, n int) {
	if start%ExtentPages != 0 {
		panic("sfile: FreeRun start not extent-aligned")
	}
	f.mu.Lock()
	first := int(start / ExtentPages)
	last := int((start + uint64(n) + ExtentPages - 1) / ExtentPages)
	f.m.mu.Lock()
	for i := first; i < last && i < len(f.extents); i++ {
		if f.extents[i] >= 0 {
			f.m.freeExtent(f.extents[i])
			f.extents[i] = -1
		}
	}
	f.m.mu.Unlock()
	f.mu.Unlock()
	f.m.noteSpace()
}

func (f *File) offsetOf(pageNo uint64) (int64, error) {
	ext := int(pageNo / ExtentPages)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ext >= len(f.extents) || f.extents[ext] < 0 {
		return 0, fmt.Errorf("sfile: page %d of file %q: %w", pageNo, f.name, storage.ErrFreedPage)
	}
	return f.extents[ext] + int64(pageNo%ExtentPages)*storage.PageSize, nil
}

// ReadPage reads page pageNo into buf (which must be storage.PageSize).
// Accessing a freed or never-allocated run returns storage.ErrFreedPage;
// device-level failures wrap storage.ErrIOFault.
func (f *File) ReadPage(pageNo uint64, buf []byte) error {
	off, err := f.offsetOf(pageNo)
	if err != nil {
		return err
	}
	return f.m.dev.ReadAt(buf, off)
}

// WritePage writes buf to page pageNo. Errors mirror ReadPage.
func (f *File) WritePage(pageNo uint64, buf []byte) error {
	off, err := f.offsetOf(pageNo)
	if err != nil {
		return err
	}
	return f.m.dev.WriteAt(buf, off)
}

// PageID returns the global page id of pageNo in this file.
func (f *File) PageID(pageNo uint64) storage.PageID {
	return storage.NewPageID(f.id, pageNo)
}
