// Package sfile provides extent-based space allocation on top of the
// simulated flash device: storage objects (base-table segments, index
// files) allocate pages in extents of contiguous device blocks, which gives
// append workloads the sequential, extent-striped write pattern visible in
// the paper's Figure 12c. Freed extents are recycled.
package sfile

import (
	"fmt"
	"sync"

	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

// ExtentPages is the number of pages per allocation extent (256 KiB
// extents, matching common database extent sizes).
const ExtentPages = 32

// ExtentBytes is the extent size in bytes.
const ExtentBytes = ExtentPages * storage.PageSize

// Class labels a file's role for buffer-pool statistics (the paper's
// Figure 12d separates index-node from base-table-node requests).
type Class uint8

// File classes.
const (
	ClassTable Class = iota
	ClassIndex
	ClassMeta
	numClasses
)

// NumClasses is the number of file classes.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case ClassTable:
		return "table"
	case ClassIndex:
		return "index"
	default:
		return "meta"
	}
}

// Manager owns the device space: it hands out extents to files and
// recycles freed ones.
type Manager struct {
	mu       sync.Mutex
	dev      *ssd.Device
	frontier int64 // next unallocated device byte offset
	free     []int64
	files    map[storage.FileID]*File
	nextFile storage.FileID

	// classMu guards extClass, the extent→class map backing the device's
	// fault-scoping classifier. It is a separate mutex because the device
	// calls the classifier with its own lock held, and the manager calls
	// into the device (Discard) while holding m.mu — routing the classifier
	// through m.mu would invert that order.
	classMu  sync.Mutex
	extClass map[int64]Class
}

// NewManager returns a manager allocating space on dev.
func NewManager(dev *ssd.Device) *Manager {
	m := &Manager{dev: dev, files: make(map[storage.FileID]*File), nextFile: 1, extClass: make(map[int64]Class)}
	dev.SetClassifier(m.classOf)
	return m
}

// classOf maps a device byte offset to the sfile class of the extent it
// falls in, for fault-rule scoping. Unattributed space is ssd.AnyClass.
func (m *Manager) classOf(off int64) int {
	m.classMu.Lock()
	defer m.classMu.Unlock()
	if c, ok := m.extClass[off/ExtentBytes]; ok {
		return int(c)
	}
	return ssd.AnyClass
}

// Device returns the underlying device.
func (m *Manager) Device() *ssd.Device { return m.dev }

// Create makes a new empty file.
func (m *Manager) Create(name string, class Class) *File {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &File{m: m, id: m.nextFile, name: name, class: class}
	m.files[f.id] = f
	m.nextFile++
	return f
}

// Lookup returns the file with the given id, or nil.
func (m *Manager) Lookup(id storage.FileID) *File {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.files[id]
}

// allocExtent hands out one extent, reusing freed extents first. preferNew
// forces fresh frontier space (used for partition runs, which want device
// contiguity for sequential write-out).
func (m *Manager) allocExtent(preferNew bool, class Class) int64 {
	var off int64
	if !preferNew && len(m.free) > 0 {
		off = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	} else {
		off = m.frontier
		m.frontier += ExtentBytes
	}
	m.classMu.Lock()
	m.extClass[off/ExtentBytes] = class
	m.classMu.Unlock()
	return off
}

func (m *Manager) freeExtent(off int64) {
	m.classMu.Lock()
	delete(m.extClass, off/ExtentBytes)
	m.classMu.Unlock()
	m.dev.Discard(off, ExtentBytes)
	m.free = append(m.free, off)
}

// AllocatedBytes returns the high-water mark of device space handed out.
func (m *Manager) AllocatedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frontier
}

// FreeExtents returns the number of recyclable extents.
func (m *Manager) FreeExtents() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// File is a storage object: a growable array of pages mapped onto device
// extents. Files are safe for concurrent use.
type File struct {
	m     *Manager
	id    storage.FileID
	name  string
	class Class

	mu      sync.Mutex
	extents []int64 // device byte offset per extent; -1 = freed
	nPages  uint64
}

// ID returns the file id.
func (f *File) ID() storage.FileID { return f.id }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Class returns the file's buffer-statistics class.
func (f *File) Class() Class { return f.class }

// NumPages returns the number of allocated pages (including freed runs).
func (f *File) NumPages() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nPages
}

// AllocPage allocates one page and returns its page number.
func (f *File) AllocPage() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.allocPageLocked()
}

func (f *File) allocPageLocked() uint64 {
	no := f.nPages
	ext := int(no / ExtentPages)
	if ext >= len(f.extents) {
		f.m.mu.Lock()
		f.extents = append(f.extents, f.m.allocExtent(false, f.class))
		f.m.mu.Unlock()
	}
	f.nPages++
	return no
}

// AllocRun allocates n pages starting at an extent boundary, backed by
// freshly allocated (device-contiguous where possible) extents. It returns
// the first page number. Partition eviction uses this so the subsequent
// page writes form one long sequential stream.
func (f *File) AllocRun(n int) uint64 {
	if n <= 0 {
		panic("sfile: AllocRun with n <= 0")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Align to the next extent boundary; the tail of the current extent is
	// wasted (dense-packed partitions tolerate this, and it keeps runs
	// extent-aligned for freeing).
	if rem := f.nPages % ExtentPages; rem != 0 {
		f.nPages += ExtentPages - rem
	}
	start := f.nPages
	need := (n + ExtentPages - 1) / ExtentPages
	f.m.mu.Lock()
	for i := 0; i < need; i++ {
		f.extents = append(f.extents, f.m.allocExtent(true, f.class))
	}
	f.m.mu.Unlock()
	f.nPages = start + uint64(n)
	return start
}

// FreeRun releases the extents backing pages [start, start+n). start must
// be extent-aligned (as returned by AllocRun). The page numbers must never
// be referenced again.
func (f *File) FreeRun(start uint64, n int) {
	if start%ExtentPages != 0 {
		panic("sfile: FreeRun start not extent-aligned")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	first := int(start / ExtentPages)
	last := int((start + uint64(n) + ExtentPages - 1) / ExtentPages)
	f.m.mu.Lock()
	for i := first; i < last && i < len(f.extents); i++ {
		if f.extents[i] >= 0 {
			f.m.freeExtent(f.extents[i])
			f.extents[i] = -1
		}
	}
	f.m.mu.Unlock()
}

func (f *File) offsetOf(pageNo uint64) (int64, error) {
	ext := int(pageNo / ExtentPages)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ext >= len(f.extents) || f.extents[ext] < 0 {
		return 0, fmt.Errorf("sfile: page %d of file %q: %w", pageNo, f.name, storage.ErrFreedPage)
	}
	return f.extents[ext] + int64(pageNo%ExtentPages)*storage.PageSize, nil
}

// ReadPage reads page pageNo into buf (which must be storage.PageSize).
// Accessing a freed or never-allocated run returns storage.ErrFreedPage;
// device-level failures wrap storage.ErrIOFault.
func (f *File) ReadPage(pageNo uint64, buf []byte) error {
	off, err := f.offsetOf(pageNo)
	if err != nil {
		return err
	}
	return f.m.dev.ReadAt(buf, off)
}

// WritePage writes buf to page pageNo. Errors mirror ReadPage.
func (f *File) WritePage(pageNo uint64, buf []byte) error {
	off, err := f.offsetOf(pageNo)
	if err != nil {
		return err
	}
	return f.m.dev.WriteAt(buf, off)
}

// PageID returns the global page id of pageNo in this file.
func (f *File) PageID(pageNo uint64) storage.PageID {
	return storage.NewPageID(f.id, pageNo)
}
