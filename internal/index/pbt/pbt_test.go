package pbt

import (
	"fmt"
	"testing"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index"
	"mvpbt/internal/index/part"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

type env struct {
	dev  *ssd.Device
	pool *buffer.Pool
	fm   *sfile.Manager
	pbuf *part.PartitionBuffer
}

func newEnv(frames, limit int) *env {
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	return &env{dev: dev, pool: buffer.New(frames), fm: sfile.NewManager(dev), pbuf: part.NewPartitionBuffer(limit)}
}

func (e *env) tree(opts Options) *Tree {
	if opts.Name == "" {
		opts.Name = "pbt"
	}
	return New(e.pool, e.fm.Create(opts.Name, sfile.ClassIndex), e.pbuf, opts)
}

func ref(i int) index.Ref {
	return index.Ref{RID: storage.RecordID{Page: storage.NewPageID(5, uint64(i)), Slot: 0}, VID: uint64(i)}
}

func TestInsertLookupAcrossPartitions(t *testing.T) {
	e := newEnv(256, 1<<20)
	tr := e.tree(Options{BloomBits: 10})
	for p := 0; p < 3; p++ {
		for i := 0; i < 500; i++ {
			if err := tr.Insert([]byte(fmt.Sprintf("k%04d", i)), ref(p*1000+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.EvictPN(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumPartitions() != 3 {
		t.Fatalf("partitions=%d", tr.NumPartitions())
	}
	// Every key has 3 candidates — one per partition; PBT is
	// version-oblivious and returns all of them.
	var vids []uint64
	tr.LookupCandidates([]byte("k0042"), func(e index.Entry) bool {
		vids = append(vids, e.Ref.VID)
		return true
	})
	if len(vids) != 3 {
		t.Fatalf("candidates=%d want 3 (%v)", len(vids), vids)
	}
	// Newest partition's entry must come first.
	if vids[0] != 2042 || vids[2] != 42 {
		t.Fatalf("partition order wrong: %v", vids)
	}
}

func TestPNServedBeforePartitions(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	tr.Insert([]byte("a"), ref(1))
	tr.EvictPN()
	tr.Insert([]byte("a"), ref(2))
	var vids []uint64
	tr.LookupCandidates([]byte("a"), func(e index.Entry) bool {
		vids = append(vids, e.Ref.VID)
		return true
	})
	if len(vids) != 2 || vids[0] != 2 {
		t.Fatalf("PN not served first: %v", vids)
	}
}

func TestScanCandidatesRange(t *testing.T) {
	e := newEnv(256, 1<<20)
	tr := e.tree(Options{})
	for i := 0; i < 300; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%04d", i)), ref(i))
	}
	tr.EvictPN()
	for i := 300; i < 600; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%04d", i)), ref(i))
	}
	count := 0
	tr.ScanCandidates([]byte("k0250"), []byte("k0350"), func(e index.Entry) bool {
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("scan returned %d, want 100", count)
	}
}

func TestAppendOnlyWrites(t *testing.T) {
	e := newEnv(512, 1<<18)
	tr := e.tree(Options{})
	e.dev.ResetStats()
	for i := 0; i < 20000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%08d", i%777)), ref(i))
	}
	tr.EvictPN()
	s := e.dev.Stats()
	if s.Writes == 0 {
		t.Fatal("nothing written")
	}
	if float64(s.SeqWrites)/float64(s.Writes) < 0.9 {
		t.Fatalf("PBT writes not append-only: seq=%d total=%d", s.SeqWrites, s.Writes)
	}
}

func TestEarlyStop(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	for i := 0; i < 100; i++ {
		tr.Insert([]byte("same"), ref(i))
	}
	n := 0
	tr.LookupCandidates([]byte("same"), func(index.Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop ignored: %d", n)
	}
}

func TestEmptyEviction(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	if err := tr.EvictPN(); err != nil {
		t.Fatal(err)
	}
	if tr.NumPartitions() != 0 {
		t.Fatal("empty eviction created a partition")
	}
}
