// Package pbt implements the basic Partitioned B-Tree of Graefe [12,13] as
// the paper evaluates it: version-oblivious, but with append-based write
// behaviour. New index entries accumulate in a main-memory partition PN
// (held in the shared MV-PBT buffer); when evicted, the partition is
// dense-packed and written to storage as one sequential stream and becomes
// immutable. Lookups and scans process partitions newest to oldest and
// return version CANDIDATES — the base-table visibility check still pays
// one random read per matching entry (Figure 3's "PBT" curve).
package pbt

import (
	"bytes"
	"context"
	"sync"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index"
	"mvpbt/internal/index/part"
	"mvpbt/internal/sfile"
	"mvpbt/internal/skiplist"
)

// pnKey orders PN entries by (key asc, insertion sequence asc).
type pnKey struct {
	key []byte
	seq uint64
}

func cmpPNKey(a, b pnKey) int {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c
	}
	switch {
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	default:
		return 0
	}
}

// Options configures a PBT.
type Options struct {
	Name string
	// BloomBits enables per-partition bloom filters (bits per key).
	BloomBits int
	// PrefixLen enables prefix bloom filters for range scans.
	PrefixLen int
}

// Tree is a Partitioned B-Tree. Safe for concurrent use.
type Tree struct {
	mu     sync.Mutex
	opts   Options
	pool   *buffer.Pool
	file   *sfile.File
	pbuf   *part.PartitionBuffer
	pn     *skiplist.List[pnKey, []byte]
	pnSeq  uint64
	parts  []*part.Segment
	nextNo int
}

// New creates an empty PBT storing partitions in file and registering its
// PN with the shared partition buffer.
func New(pool *buffer.Pool, file *sfile.File, pbuf *part.PartitionBuffer, opts Options) *Tree {
	t := &Tree{opts: opts, pool: pool, file: file, pbuf: pbuf}
	t.pn = newPN()
	pbuf.Register(t)
	return t
}

func newPN() *skiplist.List[pnKey, []byte] {
	return skiplist.New[pnKey, []byte](cmpPNKey, func(k pnKey, v []byte) int {
		return len(k.key) + 12 + len(v)
	})
}

// Name implements part.Owner.
func (t *Tree) Name() string { return t.opts.Name }

// PNBytes implements part.Owner.
func (t *Tree) PNBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pn.Bytes()
}

// NumPartitions returns the number of persisted partitions.
func (t *Tree) NumPartitions() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.parts)
}

// Insert implements index.Candidates: the entry goes to PN only — no
// in-place update of persisted partitions, ever.
func (t *Tree) Insert(key []byte, ref index.Ref) error {
	t.mu.Lock()
	k := pnKey{key: append([]byte(nil), key...), seq: t.pnSeq}
	t.pnSeq++
	t.pn.Set(k, index.EncodeRef(nil, ref))
	t.mu.Unlock()
	return t.pbuf.DidInsert(context.Background())
}

// EvictPN implements part.Owner (Algorithm 4, without the version steps):
// dense-pack PN into an immutable partition, write it sequentially, attach
// it to the partition list.
func (t *Tree) EvictPN() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pn.Len() == 0 {
		return nil
	}
	kvs := make([]part.KV, 0, t.pn.Len())
	for it := t.pn.Min(); it.Valid(); it.Next() {
		kvs = append(kvs, part.KV{Key: it.Key().key, Body: it.Value()})
	}
	seg, err := part.Build(t.pool, t.file, t.nextNo, kvs, 0, 0, part.BuildOptions{
		BloomBitsPerKey: t.opts.BloomBits,
		PrefixLen:       t.opts.PrefixLen,
	})
	if err != nil {
		return err
	}
	t.nextNo++
	if seg != nil {
		t.parts = append(t.parts, seg)
	}
	t.pn = newPN()
	return nil
}

// LookupCandidates implements index.Candidates: all entries for key, PN
// first, then partitions newest to oldest (bloom filters skip partitions).
func (t *Tree) LookupCandidates(key []byte, fn func(index.Entry) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for it := t.pn.Seek(pnKey{key: key}); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key().key, key) {
			break
		}
		if !fn(index.Entry{Key: it.Key().key, Ref: index.DecodeRef(it.Value())}) {
			return nil
		}
	}
	for i := len(t.parts) - 1; i >= 0; i-- {
		seg := t.parts[i]
		if !seg.MayContainKey(key) {
			continue
		}
		it := seg.Seek(key)
		for ; it.Valid(); it.Next() {
			r := it.Record()
			if !bytes.Equal(r.Key, key) {
				break
			}
			if !fn(index.Entry{Key: r.Key, Ref: index.DecodeRef(r.Body)}) {
				return nil
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ScanCandidates implements index.Candidates: every entry in [lo, hi)
// across PN and all partitions. Entries arrive grouped by partition
// (newest first), each group in key order — the caller's visibility check
// does not depend on global ordering for candidates.
func (t *Tree) ScanCandidates(lo, hi []byte, fn func(index.Entry) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for it := t.pn.Seek(pnKey{key: lo}); it.Valid(); it.Next() {
		if !index.KeyInRange(it.Key().key, lo, hi) {
			break
		}
		if !fn(index.Entry{Key: it.Key().key, Ref: index.DecodeRef(it.Value())}) {
			return nil
		}
	}
	for i := len(t.parts) - 1; i >= 0; i-- {
		seg := t.parts[i]
		if !seg.MayContainRange(lo, hi) {
			continue
		}
		it := seg.Seek(lo)
		for ; it.Valid(); it.Next() {
			r := it.Record()
			if !index.KeyInRange(r.Key, lo, hi) {
				break
			}
			if !fn(index.Entry{Key: r.Key, Ref: index.DecodeRef(r.Body)}) {
				return nil
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

var _ index.Candidates = (*Tree)(nil)
