package index

import (
	"bytes"
	"testing"
	"testing/quick"

	"mvpbt/internal/storage"
)

func TestRefCodecRoundTrip(t *testing.T) {
	f := func(file uint32, pageNo uint64, slot uint16, vid uint64) bool {
		r := Ref{
			RID: storage.RecordID{
				Page: storage.NewPageID(storage.FileID(file&0xFFFFFF), pageNo&(1<<40-1)),
				Slot: slot,
			},
			VID: vid,
		}
		enc := EncodeRef(nil, r)
		if len(enc) != RefLen {
			return false
		}
		return DecodeRef(enc) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRefCodecBoundaries pins the exact encoding of the corner cases the
// randomized round-trip is unlikely to hit: the zero Ref, the all-ones VID,
// and RecordIDs at the edges of the 24-bit file / 40-bit page / 16-bit slot
// fields. DecodeRef(EncodeRef(r)) must be the identity and the encoding must
// be big-endian so encoded refs sort like (RID, VID).
func TestRefCodecBoundaries(t *testing.T) {
	maxRID := storage.RecordID{
		Page: storage.NewPageID(storage.FileID(1<<24-1), 1<<40-1),
		Slot: ^uint16(0),
	}
	cases := []struct {
		name string
		ref  Ref
	}{
		{"zero", Ref{}},
		{"zero rid, max vid", Ref{VID: ^uint64(0)}},
		{"max rid, zero vid", Ref{RID: maxRID}},
		{"max everything", Ref{RID: maxRID, VID: ^uint64(0)}},
		{"min valid rid", Ref{RID: storage.RecordID{Page: storage.NewPageID(1, 0)}, VID: 1}},
		{"slot only", Ref{RID: storage.RecordID{Slot: 7}}},
		{"page number overflow masked", Ref{RID: storage.RecordID{Page: storage.NewPageID(2, 1 << 39)}, VID: 42}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			enc := EncodeRef(nil, c.ref)
			if len(enc) != RefLen {
				t.Fatalf("encoded length %d, want RefLen=%d", len(enc), RefLen)
			}
			if got := DecodeRef(enc); got != c.ref {
				t.Fatalf("round trip: got %+v, want %+v", got, c.ref)
			}
		})
	}

	// Encoding appends: a non-empty dst must be preserved, with the ref
	// starting exactly at the old length.
	prefix := []byte("key-bytes")
	r := Ref{RID: maxRID, VID: 0x0102030405060708}
	enc := EncodeRef(append([]byte(nil), prefix...), r)
	if len(enc) != len(prefix)+RefLen {
		t.Fatalf("appended length %d, want %d", len(enc), len(prefix)+RefLen)
	}
	if !bytes.Equal(enc[:len(prefix)], prefix) {
		t.Fatalf("prefix clobbered: %q", enc[:len(prefix)])
	}
	if got := DecodeRef(enc[len(prefix):]); got != r {
		t.Fatalf("appended round trip: got %+v, want %+v", got, r)
	}

	// Big-endian VID: encoded refs with equal RIDs compare like their VIDs.
	lo := EncodeRef(nil, Ref{RID: maxRID, VID: 1})
	hi := EncodeRef(nil, Ref{RID: maxRID, VID: 256})
	if bytes.Compare(lo, hi) >= 0 {
		t.Fatal("VID encoding is not big-endian: encoded order != numeric order")
	}
}

func TestKeyInRange(t *testing.T) {
	cases := []struct {
		key, lo, hi string
		hiNil       bool
		want        bool
	}{
		{"b", "a", "c", false, true},
		{"a", "a", "c", false, true},  // lo inclusive
		{"c", "a", "c", false, false}, // hi exclusive
		{"d", "a", "c", false, false},
		{"z", "a", "", true, true}, // nil hi = +inf
		{"a", "b", "", true, false},
	}
	for _, c := range cases {
		var hi []byte
		if !c.hiNil {
			hi = []byte(c.hi)
		}
		if got := KeyInRange([]byte(c.key), []byte(c.lo), hi); got != c.want {
			t.Errorf("KeyInRange(%q, %q, %q/nil=%v) = %v want %v", c.key, c.lo, c.hi, c.hiNil, got, c.want)
		}
	}
}
