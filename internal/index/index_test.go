package index

import (
	"testing"
	"testing/quick"

	"mvpbt/internal/storage"
)

func TestRefCodecRoundTrip(t *testing.T) {
	f := func(file uint32, pageNo uint64, slot uint16, vid uint64) bool {
		r := Ref{
			RID: storage.RecordID{
				Page: storage.NewPageID(storage.FileID(file&0xFFFFFF), pageNo&(1<<40-1)),
				Slot: slot,
			},
			VID: vid,
		}
		enc := EncodeRef(nil, r)
		if len(enc) != RefLen {
			return false
		}
		return DecodeRef(enc) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyInRange(t *testing.T) {
	cases := []struct {
		key, lo, hi string
		hiNil       bool
		want        bool
	}{
		{"b", "a", "c", false, true},
		{"a", "a", "c", false, true},  // lo inclusive
		{"c", "a", "c", false, false}, // hi exclusive
		{"d", "a", "c", false, false},
		{"z", "a", "", true, true}, // nil hi = +inf
		{"a", "b", "", true, false},
	}
	for _, c := range cases {
		var hi []byte
		if !c.hiNil {
			hi = []byte(c.hi)
		}
		if got := KeyInRange([]byte(c.key), []byte(c.lo), hi); got != c.want {
			t.Errorf("KeyInRange(%q, %q, %q/nil=%v) = %v want %v", c.key, c.lo, c.hi, c.hiNil, got, c.want)
		}
	}
}
