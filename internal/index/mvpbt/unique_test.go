package mvpbt

import (
	"fmt"
	"testing"

	"mvpbt/internal/index"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

// blindPut inserts a regular record without any predecessor reference —
// the unique-index blind-write path.
func blindPut(e *env, tr *Tree, key string, val string) index.Ref {
	ref := e.ref()
	e.commit(func(tx *txn.Tx) {
		tr.InsertRegularVal(tx, []byte(key), ref, []byte(val))
	})
	return ref
}

func blindDelete(e *env, tr *Tree, key string) {
	e.commit(func(tx *txn.Tx) {
		tr.InsertTombstone(tx, []byte(key), storage.RecordID{})
	})
}

func uniqueGet(t *testing.T, tr *Tree, tx *txn.Tx, key string) (string, bool) {
	t.Helper()
	var val string
	found := false
	if err := tr.Lookup(tx, []byte(key), func(en index.Entry) bool {
		val = string(en.Val)
		found = true
		return false
	}); err != nil {
		t.Fatal(err)
	}
	return val, found
}

func TestUniqueBlindOverwrite(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{Unique: true})
	blindPut(e, tr, "k", "v1")
	blindPut(e, tr, "k", "v2")
	blindPut(e, tr, "k", "v3")
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	if v, ok := uniqueGet(t, tr, r, "k"); !ok || v != "v3" {
		t.Fatalf("got %q/%v want v3", v, ok)
	}
}

func TestUniqueBlindDeleteHidesAllHistory(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{Unique: true})
	blindPut(e, tr, "k", "v1")
	tr.EvictPN()
	blindPut(e, tr, "k", "v2")
	blindDelete(e, tr, "k")
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	if v, ok := uniqueGet(t, tr, r, "k"); ok {
		t.Fatalf("deleted key visible: %q", v)
	}
	// Re-insert resurrects cleanly.
	blindPut(e, tr, "k", "v4")
	r2 := e.mgr.Begin()
	defer e.mgr.Commit(r2)
	if v, ok := uniqueGet(t, tr, r2, "k"); !ok || v != "v4" {
		t.Fatalf("reinsert got %q/%v", v, ok)
	}
}

func TestUniqueSnapshotsAcrossBlindWrites(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{Unique: true})
	blindPut(e, tr, "k", "v1")
	s1 := e.mgr.Begin()
	blindPut(e, tr, "k", "v2")
	s2 := e.mgr.Begin()
	blindDelete(e, tr, "k")
	s3 := e.mgr.Begin()
	if v, _ := uniqueGet(t, tr, s1, "k"); v != "v1" {
		t.Fatalf("s1 sees %q", v)
	}
	if v, _ := uniqueGet(t, tr, s2, "k"); v != "v2" {
		t.Fatalf("s2 sees %q", v)
	}
	if _, ok := uniqueGet(t, tr, s3, "k"); ok {
		t.Fatal("s3 sees deleted key")
	}
	e.mgr.Commit(s1)
	e.mgr.Commit(s2)
	e.mgr.Commit(s3)
}

func TestUniqueUncommittedAndAbortedSkipped(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{Unique: true})
	blindPut(e, tr, "k", "committed")
	w := e.mgr.Begin()
	tr.InsertRegularVal(w, []byte("k"), e.ref(), []byte("dirty"))
	r := e.mgr.Begin()
	if v, _ := uniqueGet(t, tr, r, "k"); v != "committed" {
		t.Fatalf("reader sees %q", v)
	}
	// The writer sees its own value.
	if v, _ := uniqueGet(t, tr, w, "k"); v != "dirty" {
		t.Fatalf("writer sees %q", v)
	}
	e.mgr.Abort(w)
	e.mgr.Commit(r)
	r2 := e.mgr.Begin()
	defer e.mgr.Commit(r2)
	if v, _ := uniqueGet(t, tr, r2, "k"); v != "committed" {
		t.Fatalf("aborted write leaked: %q", v)
	}
}

func TestUniqueScanOneVersionPerKey(t *testing.T) {
	e := newEnv(512, 1<<22)
	tr := e.tree(Options{Unique: true, BloomBits: 10})
	// Multiple generations of each key spread over partitions.
	for gen := 0; gen < 4; gen++ {
		for k := 0; k < 50; k++ {
			blindPut(e, tr, fmt.Sprintf("k%03d", k), fmt.Sprintf("g%d", gen))
		}
		tr.EvictPN()
	}
	// Delete a few.
	for k := 0; k < 50; k += 10 {
		blindDelete(e, tr, fmt.Sprintf("k%03d", k))
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	seen := map[string]string{}
	err := tr.Scan(r, []byte("k"), []byte("l"), func(en index.Entry) bool {
		if _, dup := seen[string(en.Key)]; dup {
			t.Fatalf("duplicate key %q in unique scan", en.Key)
		}
		seen[string(en.Key)] = string(en.Val)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 45 {
		t.Fatalf("scan found %d keys, want 45", len(seen))
	}
	for k, v := range seen {
		if v != "g3" {
			t.Fatalf("key %s resolved to stale generation %s", k, v)
		}
	}
}

func TestUniqueEvictionGCDropsHistory(t *testing.T) {
	e := newEnv(512, 1<<24)
	tr := e.tree(Options{Unique: true})
	for gen := 0; gen < 20; gen++ {
		for k := 0; k < 10; k++ {
			blindPut(e, tr, fmt.Sprintf("k%d", k), fmt.Sprintf("g%d", gen))
		}
	}
	tr.EvictPN()
	// 200 records, no active snapshots: only the 10 newest survive.
	if got := tr.Partitions()[0].NumRecords; got != 10 {
		t.Fatalf("unique eviction GC kept %d records, want 10", got)
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for k := 0; k < 10; k++ {
		if v, ok := uniqueGet(t, tr, r, fmt.Sprintf("k%d", k)); !ok || v != "g19" {
			t.Fatalf("key %d: %q/%v", k, v, ok)
		}
	}
}

func TestUniqueEvictionGCRespectsSnapshot(t *testing.T) {
	e := newEnv(512, 1<<24)
	tr := e.tree(Options{Unique: true})
	blindPut(e, tr, "k", "old")
	long := e.mgr.Begin()
	blindPut(e, tr, "k", "new")
	tr.EvictPN()
	if v, ok := uniqueGet(t, tr, long, "k"); !ok || v != "old" {
		t.Fatalf("long reader lost its version: %q/%v", v, ok)
	}
	e.mgr.Commit(long)
}

func TestUniqueMergeKeepsTombstones(t *testing.T) {
	e := newEnv(512, 1<<24)
	tr := e.tree(Options{Unique: true})
	blindPut(e, tr, "k", "v")
	tr.EvictPN()
	blindDelete(e, tr, "k")
	tr.EvictPN()
	if err := tr.MergePartitions(); err != nil {
		t.Fatal(err)
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	if v, ok := uniqueGet(t, tr, r, "k"); ok {
		t.Fatalf("deleted key resurrected after unique merge: %q", v)
	}
}

func TestUniqueRandomizedModel(t *testing.T) {
	e := newEnv(1024, 1<<24)
	tr := e.tree(Options{Unique: true, BloomBits: 10, MaxPartitions: 6})
	r := util.NewRand(777)
	model := map[string]string{}
	type snap struct {
		tx    *txn.Tx
		state map[string]string
	}
	var snaps []snap
	for step := 0; step < 4000; step++ {
		k := fmt.Sprintf("key-%03d", r.Intn(150))
		if r.Intn(10) == 0 {
			blindDelete(e, tr, k)
			delete(model, k)
		} else {
			v := fmt.Sprintf("s%d", step)
			blindPut(e, tr, k, v)
			model[k] = v
		}
		if r.Intn(500) == 0 {
			tr.EvictPN()
		}
		if r.Intn(900) == 0 && len(snaps) < 4 {
			st := make(map[string]string, len(model))
			for k, v := range model {
				st[k] = v
			}
			snaps = append(snaps, snap{tx: e.mgr.Begin(), state: st})
		}
	}
	st := make(map[string]string, len(model))
	for k, v := range model {
		st[k] = v
	}
	snaps = append(snaps, snap{tx: e.mgr.Begin(), state: st})

	for si, s := range snaps {
		got := map[string]string{}
		err := tr.Scan(s.tx, []byte("key-"), []byte("key-~"), func(en index.Entry) bool {
			got[string(en.Key)] = string(en.Val)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(s.state) {
			t.Fatalf("snapshot %d: %d keys, want %d", si, len(got), len(s.state))
		}
		for k, v := range s.state {
			if got[k] != v {
				t.Fatalf("snapshot %d key %s: %q want %q", si, k, got[k], v)
			}
		}
		e.mgr.Commit(s.tx)
	}
}
