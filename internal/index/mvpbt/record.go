// Package mvpbt implements the paper's contribution: the Multi-Version
// Partitioned B-Tree (§4). MV-PBT is a partitioned B-Tree whose index
// records carry version information — a transaction timestamp plus
// record identifiers of the validated and invalidated tuple-versions —
// enabling the index-only visibility check of §4.4: lookups and scans
// return exactly the entries visible to the calling transaction, without
// fetching base-table version records.
package mvpbt

import (
	"fmt"
	"sync/atomic"

	"mvpbt/internal/index"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

// RecType is the index-record type of §4.1.
type RecType uint8

// The four MV-PBT record types.
const (
	// Regular records are created by tuple inserts: pure matter.
	Regular RecType = iota
	// Replacement records are created by non-key updates: matter for the
	// new version plus anti-matter invalidating the predecessor.
	Replacement
	// Anti records are created (together with a replacement record under
	// the new key) by index-key updates: pure anti-matter extinguishing
	// the old-key record.
	Anti
	// Tombstone records are created by deletes: pure anti-matter
	// extinguishing the whole version chain.
	Tombstone
)

func (t RecType) String() string {
	switch t {
	case Regular:
		return "regular"
	case Replacement:
		return "replacement"
	case Anti:
		return "anti"
	default:
		return "tombstone"
	}
}

// Record is a decoded MV-PBT index record (the search key is stored
// separately).
type Record struct {
	Type RecType
	// gc marks the record as garbage (cooperative GC phase 1, §4.6).
	// Accessed atomically via GCMarked/MarkGC: records living in PN are
	// shared with lock-free readers, which mark them concurrently.
	gc uint32
	// TS is the logical timestamp of the creating transaction.
	TS txn.TxID
	// Ref is the matter: the reference of the tuple-version this record
	// validates (Regular, Replacement).
	Ref index.Ref
	// OldRID is the anti-matter: the recordID of the tuple-version (and
	// thereby the older index record) this record invalidates
	// (Replacement, Anti, Tombstone).
	OldRID storage.RecordID
	// Val is an optional inline payload: when MV-PBT serves as a
	// clustered multi-version store (the WiredTiger integration of §5),
	// matter records carry the tuple value itself.
	Val []byte
}

// GCMarked reports whether the record has been flagged as garbage.
func (r *Record) GCMarked() bool { return atomic.LoadUint32(&r.gc) != 0 }

// MarkGC flags the record as garbage, reporting whether this call was the
// one that flipped the flag (so concurrent markers account it once).
func (r *Record) MarkGC() bool { return atomic.CompareAndSwapUint32(&r.gc, 0, 1) }

// SetGC forces the flag to v. Only for tests and decoding; not safe
// against concurrent markers.
func (r *Record) SetGC(v bool) {
	if v {
		atomic.StoreUint32(&r.gc, 1)
	} else {
		atomic.StoreUint32(&r.gc, 0)
	}
}

// snapshot returns a value copy that is safe to take while concurrent
// readers may be marking the record.
func (r *Record) snapshot() Record {
	c := Record{Type: r.Type, TS: r.TS, Ref: r.Ref, OldRID: r.OldRID, Val: r.Val}
	if r.GCMarked() {
		c.gc = 1
	}
	return c
}

// Matter reports whether the record validates a tuple-version.
func (r *Record) Matter() bool { return r.Type == Regular || r.Type == Replacement }

// AntiMatter reports whether the record invalidates a predecessor.
func (r *Record) AntiMatter() bool { return r.Type != Regular && r.OldRID.Valid() }

const (
	flagGC     = 1 << 2
	flagOldRID = 1 << 3
	flagVal    = 1 << 4
)

// encodeRecord appends the body encoding of r (without the key).
func encodeRecord(dst []byte, r *Record) []byte {
	flags := byte(r.Type)
	if r.GCMarked() {
		flags |= flagGC
	}
	if r.OldRID.Valid() {
		flags |= flagOldRID
	}
	if r.Val != nil {
		flags |= flagVal
	}
	dst = append(dst, flags)
	dst = util.PutUvarint(dst, uint64(r.TS))
	if r.Matter() {
		dst = index.EncodeRef(dst, r.Ref)
	}
	if r.OldRID.Valid() {
		dst = storage.EncodeRecordID(dst, r.OldRID)
	}
	if r.Val != nil {
		dst = util.PutBytes(dst, r.Val)
	}
	return dst
}

// decodeRecord parses a body produced by encodeRecord.
func decodeRecord(src []byte) (Record, error) {
	if len(src) < 2 {
		return Record{}, fmt.Errorf("mvpbt: truncated record")
	}
	var r Record
	flags := src[0]
	r.Type = RecType(flags & 3)
	if flags&flagGC != 0 {
		r.gc = 1
	}
	i := 1
	ts, n := util.Uvarint(src[i:])
	i += n
	r.TS = txn.TxID(ts)
	if r.Matter() {
		r.Ref = index.DecodeRef(src[i:])
		i += index.RefLen
	}
	if flags&flagOldRID != 0 {
		r.OldRID = storage.DecodeRecordID(src[i:])
		i += storage.RecordIDLen
	}
	if flags&flagVal != 0 {
		v, n := util.GetBytes(src[i:])
		r.Val = v
		i += n
	}
	return r, nil
}

// recordSize approximates the in-memory footprint of a PN entry.
func recordSize(key []byte, r *Record) int {
	s := len(key) + 24 // key bytes + flags/ts/bookkeeping
	if r.Matter() {
		s += index.RefLen
	}
	if r.OldRID.Valid() {
		s += storage.RecordIDLen
	}
	return s + len(r.Val)
}
