package mvpbt

import (
	"fmt"
	"testing"

	"mvpbt/internal/index"
	"mvpbt/internal/txn"
)

func TestBulkLoadBasic(t *testing.T) {
	e := newEnv(512, 1<<22)
	tr := e.tree(Options{BloomBits: 10, Unique: true})
	var entries []index.Entry
	for i := 0; i < 5000; i++ {
		entries = append(entries, index.Entry{Key: []byte(fmt.Sprintf("k%06d", i)), Ref: e.ref()})
	}
	e.commit(func(tx *txn.Tx) {
		if err := tr.BulkLoad(tx, entries); err != nil {
			t.Fatal(err)
		}
	})
	if tr.NumPartitions() != 1 {
		t.Fatalf("partitions=%d", tr.NumPartitions())
	}
	if tr.PNBytes() != 0 {
		t.Fatal("bulk load went through PN")
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for i := 0; i < 5000; i += 333 {
		rids := lookupRIDs(t, tr, r, entries[i].Key)
		if len(rids) != 1 || rids[0] != entries[i].Ref.RID {
			t.Fatalf("key %d wrong after bulk load: %v", i, rids)
		}
	}
}

func TestBulkLoadInvisibleUntilCommit(t *testing.T) {
	e := newEnv(512, 1<<22)
	tr := e.tree(Options{Unique: true})
	w := e.mgr.Begin()
	err := tr.BulkLoad(w, []index.Entry{{Key: []byte("k"), Ref: e.ref()}})
	if err != nil {
		t.Fatal(err)
	}
	r := e.mgr.Begin()
	if len(lookupRIDs(t, tr, r, []byte("k"))) != 0 {
		t.Fatal("uncommitted bulk load visible")
	}
	e.mgr.Commit(w)
	e.mgr.Commit(r)
	r2 := e.mgr.Begin()
	defer e.mgr.Commit(r2)
	if len(lookupRIDs(t, tr, r2, []byte("k"))) != 1 {
		t.Fatal("committed bulk load invisible")
	}
}

func TestBulkLoadThenUpdates(t *testing.T) {
	// Records written on top of a bulk-loaded partition supersede it.
	e := newEnv(512, 1<<22)
	tr := e.tree(Options{Unique: true})
	v0, v1 := e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) {
		if err := tr.BulkLoad(tx, []index.Entry{{Key: []byte("k"), Ref: v0}}); err != nil {
			t.Fatal(err)
		}
	})
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("k"), v1, v0.RID) })
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	rids := lookupRIDs(t, tr, r, []byte("k"))
	if len(rids) != 1 || rids[0] != v1.RID {
		t.Fatalf("update over bulk load wrong: %v", rids)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	e := newEnv(512, 1<<22)
	tr := e.tree(Options{})
	tx := e.mgr.Begin()
	defer e.mgr.Abort(tx)
	err := tr.BulkLoad(tx, []index.Entry{
		{Key: []byte("b"), Ref: e.ref()},
		{Key: []byte("a"), Ref: e.ref()},
	})
	if err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	e := newEnv(512, 1<<22)
	tr := e.tree(Options{})
	tx := e.mgr.Begin()
	defer e.mgr.Commit(tx)
	if err := tr.BulkLoad(tx, nil); err != nil {
		t.Fatal(err)
	}
	if tr.NumPartitions() != 0 {
		t.Fatal("empty bulk load created a partition")
	}
}

func TestBulkLoadWithValues(t *testing.T) {
	e := newEnv(512, 1<<22)
	tr := e.tree(Options{Unique: true})
	e.commit(func(tx *txn.Tx) {
		tr.BulkLoad(tx, []index.Entry{{Key: []byte("k"), Ref: e.ref(), Val: []byte("inline")}})
	})
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	var got []byte
	tr.Lookup(r, []byte("k"), func(en index.Entry) bool {
		got = append([]byte(nil), en.Val...)
		return false
	})
	if string(got) != "inline" {
		t.Fatalf("value lost in bulk load: %q", got)
	}
}
