package mvpbt

import (
	"bytes"
	"fmt"

	"mvpbt/internal/txn"
)

// DumpEntry describes one index record for diagnostics (cmd/mvpbt-inspect).
type DumpEntry struct {
	Where string // "PN" or "P<n>"
	Key   string
	Rec   Record
}

func (d DumpEntry) String() string {
	s := fmt.Sprintf("%-4s key=%q %s ts=%d", d.Where, d.Key, d.Rec.Type, d.Rec.TS)
	if d.Rec.Matter() {
		s += fmt.Sprintf(" rid=%v vid=%d", d.Rec.Ref.RID, d.Rec.Ref.VID)
	}
	if d.Rec.OldRID.Valid() {
		s += fmt.Sprintf(" old=%v", d.Rec.OldRID)
	}
	if d.Rec.GCMarked() {
		s += " GC"
	}
	return s
}

// DumpKey returns every index record for key, in processing order (PN
// first, then frozen eviction-pending PNs newest first as F<i>, then
// partitions newest to oldest).
func (t *Tree) DumpKey(key []byte) []DumpEntry {
	t.gate.RLock()
	defer t.gate.RUnlock()
	v := t.view.Load()
	var out []DumpEntry
	for it := v.pn.Seek(pnKey{key: key, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key().key, key) {
			break
		}
		out = append(out, DumpEntry{Where: "PN", Key: string(key), Rec: it.Value().snapshot()})
	}
	for fi, fz := range v.frozen {
		for it := fz.Seek(pnKey{key: key, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
			if !bytes.Equal(it.Key().key, key) {
				break
			}
			out = append(out, DumpEntry{Where: fmt.Sprintf("F%d", fi), Key: string(key), Rec: it.Value().snapshot()})
		}
	}
	for i := len(v.parts) - 1; i >= 0; i-- {
		seg := v.parts[i]
		for it := seg.Seek(key); it.Valid(); it.Next() {
			r := it.Record()
			if !bytes.Equal(r.Key, key) {
				break
			}
			rec, err := decodeRecord(r.Body)
			if err != nil {
				continue
			}
			out = append(out, DumpEntry{Where: fmt.Sprintf("P%d", seg.No), Key: string(key), Rec: rec})
		}
	}
	return out
}
