package mvpbt

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/index"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

// TestPersistedPartitionOrderingInvariant verifies §4.3 on disk: within
// every persisted partition, records are sorted by search key ascending,
// and records with equal keys appear newest-timestamp first. The whole
// visibility check depends on this invariant.
func TestPersistedPartitionOrderingInvariant(t *testing.T) {
	e := newEnv(2048, 1<<26)
	tr := e.tree(Options{BloomBits: 10, DisableGC: true}) // keep every record
	r := util.NewRand(4321)
	type tuple struct {
		ref index.Ref
		key string
	}
	live := map[int]*tuple{}
	for step := 0; step < 4000; step++ {
		id := r.Intn(120)
		tx := e.mgr.Begin()
		tp := live[id]
		switch {
		case tp == nil:
			key := fmt.Sprintf("key-%03d", r.Intn(200))
			ref := e.ref()
			tr.InsertRegular(tx, []byte(key), ref)
			live[id] = &tuple{ref: ref, key: key}
		case r.Intn(12) == 0:
			tr.InsertTombstone(tx, []byte(tp.key), tp.ref.RID)
			delete(live, id)
		case r.Intn(5) == 0:
			nk := fmt.Sprintf("key-%03d", r.Intn(200))
			ref := e.ref()
			tr.InsertKeyUpdate(tx, []byte(tp.key), []byte(nk), ref, tp.ref.RID)
			tp.key, tp.ref = nk, ref
		default:
			ref := e.ref()
			tr.InsertReplacement(tx, []byte(tp.key), ref, tp.ref.RID)
			tp.ref = ref
		}
		e.mgr.Commit(tx)
		if r.Intn(300) == 0 {
			if err := tr.EvictPN(); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr.EvictPN()
	if tr.NumPartitions() < 3 {
		t.Fatalf("want several partitions, got %d", tr.NumPartitions())
	}
	for _, seg := range tr.Partitions() {
		var prevKey []byte
		var prevTS txn.TxID
		n := 0
		for it := seg.Min(); it.Valid(); it.Next() {
			rec, err := decodeRecord(it.Record().Body)
			if err != nil {
				t.Fatal(err)
			}
			k := it.Record().Key
			if prevKey != nil {
				switch bytes.Compare(prevKey, k) {
				case 1:
					t.Fatalf("P%d: keys out of order: %q after %q", seg.No, k, prevKey)
				case 0:
					if rec.TS > prevTS {
						t.Fatalf("P%d key %q: timestamps not descending: %d after %d",
							seg.No, k, rec.TS, prevTS)
					}
				}
			}
			prevKey = append(prevKey[:0], k...)
			prevTS = rec.TS
			n++
		}
		if n != seg.NumRecords {
			t.Fatalf("P%d: iterated %d records, metadata says %d", seg.No, n, seg.NumRecords)
		}
	}
}
