package mvpbt

import (
	"bytes"

	"mvpbt/internal/index"
	"mvpbt/internal/txn"
)

// Unique-index visibility: with at most one live tuple per key, the
// NEWEST record whose transaction the caller sees decides the key — a
// visible matter record yields the key's current version, a visible
// tombstone (or anti-record) means the key is absent, and everything
// older is superseded without inspecting anti-matter at all. This enables
// BLIND writes (replacements and tombstones without predecessor
// recordIDs), which is how the KV integration of §5 achieves LSM-like
// write behaviour: updates just hit PN.
//
// Correctness rests on the paper's §4.3 ordering guarantee: within a
// partition and across partitions, newer records of a key are always
// encountered before older ones.

// uniqueLookup is the point-lookup path for unique indexes: PN first,
// then partitions newest to oldest with bloom skipping, stopping at the
// first record the transaction sees. Runs lock-free over one view.
func (t *Tree) uniqueLookup(tx *txn.Tx, v *treeView, key []byte, fn func(index.Entry) bool) error {
	decide := func(rec *Record) (done bool) {
		if rec.GCMarked() || !t.applyVisFault(rec.TS, tx.Sees(rec.TS)) {
			return false
		}
		if rec.Matter() {
			fn(index.Entry{Key: key, Ref: rec.Ref, Val: rec.Val})
		}
		return true
	}
	for it := v.pn.Seek(pnKey{key: key, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key().key, key) {
			break
		}
		if decide(it.Value()) {
			return nil
		}
	}
	for _, fz := range v.frozen {
		for it := fz.Seek(pnKey{key: key, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
			if !bytes.Equal(it.Key().key, key) {
				break
			}
			if decide(it.Value()) {
				return nil
			}
		}
	}
	for i := len(v.parts) - 1; i >= 0; i-- {
		seg := v.parts[i]
		if segInvisible(tx, seg) {
			continue
		}
		if !seg.MayContainKey(key) {
			t.stats.bloom.negatives.Add(1)
			continue
		}
		found := false
		it := seg.Seek(key)
		for ; it.Valid(); it.Next() {
			r := it.Record()
			if !bytes.Equal(r.Key, key) {
				break
			}
			found = true
			rec, err := decodeRecord(r.Body)
			if err != nil {
				return err
			}
			if decide(&rec) {
				t.countBloom(true)
				return nil
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
		t.countBloom(found)
	}
	return nil
}

// uniqueScan is the range-scan path for unique indexes: the merged
// (key asc, ts desc) stream with per-key decisions; once a key is decided
// its remaining records are skipped without visibility checks. Runs
// lock-free over one view.
func (t *Tree) uniqueScan(tx *txn.Tx, v *treeView, lo, hi []byte, fn func(index.Entry) bool) error {
	srcs, err := t.scanSources(tx, v, lo, hi)
	if err != nil {
		return err
	}
	var decided []byte
	haveDecided := false
	for {
		s := nextSource(srcs)
		if s == nil {
			return nil
		}
		if haveDecided && bytes.Equal(s.key, decided) {
			if err := s.next(hi); err != nil {
				return err
			}
			continue
		}
		rec := s.record()
		if !rec.GCMarked() && t.applyVisFault(rec.TS, tx.Sees(rec.TS)) {
			decided = append(decided[:0], s.key...)
			haveDecided = true
			if rec.Matter() {
				if !fn(index.Entry{Key: s.key, Ref: rec.Ref, Val: rec.Val}) {
					return nil
				}
			}
		}
		if err := s.next(hi); err != nil {
			return err
		}
	}
}

// nextSource picks the source with the smallest (key, ts desc, prio)
// position, or nil when all are exhausted.
func nextSource(srcs []*scanSource) *scanSource {
	best := -1
	for i, s := range srcs {
		if !s.valid {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := srcs[best]
		if c := bytes.Compare(s.key, b.key); c < 0 ||
			(c == 0 && (s.ts() > b.ts() || (s.ts() == b.ts() && s.prio < b.prio))) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return srcs[best]
}

// uniqueEvictGC is the unique-mode phase-3 GC: per key (entries arrive in
// key asc, ts desc order) keep every record down to and INCLUDING the
// first committed-below-horizon one — the all-visible decider — and drop
// the rest. Tombstone deciders are kept: they may still extinguish the
// key in older partitions. Aborted records are dropped anywhere.
func (t *Tree) uniqueEvictGC(entries []pnEntry, dropDecidedTombstones bool) []pnEntry {
	horizon := t.mgr.Horizon()
	out := entries[:0]
	var curKey []byte
	anchored := false
	for i := range entries {
		rec := entries[i].rec
		if !bytes.Equal(entries[i].key.key, curKey) {
			curKey = entries[i].key.key
			anchored = false
		}
		switch {
		case anchored:
			t.stats.gcEvict.Add(1)
			continue
		case rec.GCMarked() || t.mgr.StatusOf(rec.TS) == txn.Aborted:
			t.stats.gcEvict.Add(1)
			continue
		case rec.TS < horizon && t.mgr.StatusOf(rec.TS) == txn.Committed:
			anchored = true
			if dropDecidedTombstones && !rec.Matter() {
				// Safe only when the GC input is the complete key history
				// (a full merge with no older records of the key in PN).
				t.stats.gcEvict.Add(1)
				continue
			}
		}
		out = append(out, entries[i])
	}
	return out
}
