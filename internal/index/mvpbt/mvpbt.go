package mvpbt

import (
	"bytes"
	"sync"
	"sync/atomic"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index"
	"mvpbt/internal/index/part"
	"mvpbt/internal/sfile"
	"mvpbt/internal/skiplist"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// pnKey orders PN records per §4.3: primary sort on the search key
// (ascending), secondary on the transaction timestamp DESCENDING, so that
// within one partition the records of newer versions always precede those
// of older versions of the same tuple. seq (descending) breaks ties among
// records of the same transaction: its later operations supersede earlier
// ones.
type pnKey struct {
	key []byte
	ts  txn.TxID
	seq uint64
}

func cmpPNKey(a, b pnKey) int {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c
	}
	switch {
	case a.ts > b.ts:
		return -1
	case a.ts < b.ts:
		return 1
	}
	switch {
	case a.seq > b.seq:
		return -1
	case a.seq < b.seq:
		return 1
	}
	return 0
}

// Options configures an MV-PBT.
type Options struct {
	Name string
	// Unique lets point lookups stop at the first visible match (§4.2).
	Unique bool
	// BloomBits enables per-partition bloom filters (bits per key);
	// 0 disables them (Figure 14c's "no filters" configuration).
	BloomBits int
	// PrefixLen enables prefix bloom filters of that prefix length for
	// range scans; 0 disables them.
	PrefixLen int
	// DisableGC turns off partition garbage collection (§4.6) for the
	// ablations of Figures 12a/12b/14d.
	DisableGC bool
	// MaxPartitions triggers an on-line merge of all persisted partitions
	// when their count exceeds it (0 disables merging). See
	// MergePartitions.
	MaxPartitions int
}

// FilterStats counts partition-filter consultations (Figure 13).
type FilterStats struct {
	// Negatives: partitions skipped (key/range cannot be present).
	Negatives int64
	// Positives: filter said yes and the partition had a match.
	Positives int64
	// FalsePositives: filter said yes but the search found nothing.
	FalsePositives int64
}

// Stats aggregates index activity.
type Stats struct {
	Bloom  FilterStats
	Prefix FilterStats
	// GCMarked counts records flagged by scans (phase 1).
	GCMarked int64
	// GCSweptPN counts records removed from PN by phase 2.
	GCSweptPN int64
	// GCEvict counts records removed during partition eviction (phase 3).
	GCEvict int64
	// Evictions counts partition evictions.
	Evictions int64
	// Merges counts partition reorganizations (MergePartitions).
	Merges int64
}

// filterCounters is the internal atomic form of FilterStats: the read path
// bumps these without any lock.
type filterCounters struct {
	negatives      atomic.Int64
	positives      atomic.Int64
	falsePositives atomic.Int64
}

func (f *filterCounters) snapshot() FilterStats {
	return FilterStats{
		Negatives:      f.negatives.Load(),
		Positives:      f.positives.Load(),
		FalsePositives: f.falsePositives.Load(),
	}
}

// statCounters is the internal atomic form of Stats.
type statCounters struct {
	bloom     filterCounters
	prefix    filterCounters
	gcMarked  atomic.Int64
	gcSweptPN atomic.Int64
	gcEvict   atomic.Int64
	evictions atomic.Int64
	merges    atomic.Int64
}

// treeView is the immutable snapshot the read path operates on: the
// current main-memory partition, the frozen (eviction-pending) PNs newest
// first, and the persisted partition list, oldest first. All three are
// published TOGETHER — eviction moves records PN → frozen → partition, so
// publishing them separately would let a reader observe records twice or
// not at all.
//
// The pn inside a view is mutable in the SWMR sense: the single writer
// (under Tree.mu) keeps inserting into it until it is frozen by eviction;
// readers traverse it lock-free. frozen lists receive no further inserts
// (that is the point of freezing: the expensive partition build reads
// them without any lock), and parts is never mutated once published —
// writers publish a whole new view instead.
type treeView struct {
	pn     *skiplist.List[pnKey, *Record]
	frozen []*skiplist.List[pnKey, *Record]
	parts  []*part.Segment
}

// Tree is a Multi-Version Partitioned B-Tree. Safe for concurrent use:
// readers (Lookup, Scan, ScanAllMatter, DumpKey) run in parallel against
// the current view; writers (inserts, eviction, merge, bulk load)
// serialize on mu and publish new views. See DESIGN.md "Concurrency
// model".
type Tree struct {
	mu   sync.Mutex // serializes all mutation: PN inserts, eviction, merge, bulk load
	opts Options
	pool *buffer.Pool
	file *sfile.File
	pbuf *part.PartitionBuffer
	mgr  *txn.Manager

	// view is the read-path snapshot, swapped atomically by writers.
	view atomic.Pointer[treeView]

	// bgMu serializes the heavy reorganizations — frozen-PN partition
	// builds and partition merges — WITHOUT blocking mu: foreground
	// inserts and freezes proceed while a build is in flight. Lock order
	// is always bgMu before mu.
	bgMu sync.Mutex

	// onMerge/onGC, when set (guarded by mu), defer partition merging and
	// PN sweeping to the maintenance service instead of running them
	// inline on whichever caller tripped the threshold.
	onMerge func()
	onGC    func()

	// gate tracks readers for segment reclamation: every reader holds the
	// read side for its whole operation; MergePartitions — the only writer
	// that destroys segments — acquires the write side after publishing
	// the merged view and before freeing the inputs, so no reader can
	// still hold the freed segments. Eviction and bulk load publish new
	// views without the gate: their superseded views are reclaimed by the
	// garbage collector, not destroyed.
	gate sync.RWMutex

	pnSeq     uint64 // guarded by mu
	nextNo    int    // guarded by mu
	pnGarbage atomic.Int64
	stats     statCounters

	// Test-only hooks (see hooks.go); nil in production.
	visFault  atomic.Pointer[VisFaultFn]
	mergeHook atomic.Pointer[func()]
}

// New creates an empty MV-PBT storing partitions in file, registered with
// the shared partition buffer.
func New(pool *buffer.Pool, file *sfile.File, pbuf *part.PartitionBuffer, mgr *txn.Manager, opts Options) *Tree {
	t := &Tree{opts: opts, pool: pool, file: file, pbuf: pbuf, mgr: mgr}
	t.view.Store(&treeView{pn: newPN()})
	pbuf.Register(t)
	return t
}

func newPN() *skiplist.List[pnKey, *Record] {
	return skiplist.New[pnKey, *Record](cmpPNKey, func(k pnKey, v *Record) int {
		return recordSize(k.key, v)
	})
}

// Name implements part.Owner.
func (t *Tree) Name() string { return t.opts.Name }

// PNBytes implements part.Owner. Frozen PNs still occupy buffer memory
// until their partition build publishes, so they count too.
func (t *Tree) PNBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.view.Load()
	total := v.pn.Bytes()
	for _, fz := range v.frozen {
		total += fz.Bytes()
	}
	return total
}

// FrozenPNs returns the number of eviction-pending frozen PNs.
func (t *Tree) FrozenPNs() int {
	return len(t.view.Load().frozen)
}

// SetMaintHooks installs the maintenance triggers: onMerge fires when the
// partition count exceeds MaxPartitions after an eviction (instead of
// merging inline), onGC when the PN garbage ratio trips (instead of
// sweeping on the inserting writer). Either may be nil to keep the
// synchronous behavior.
func (t *Tree) SetMaintHooks(onMerge, onGC func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onMerge, t.onGC = onMerge, onGC
}

// NeedsMerge reports whether the persisted partition count exceeds the
// configured MaxPartitions threshold.
func (t *Tree) NeedsMerge() bool {
	if t.opts.MaxPartitions <= 0 {
		return false
	}
	return len(t.view.Load().parts) > t.opts.MaxPartitions
}

// NumPartitions returns the number of persisted partitions.
func (t *Tree) NumPartitions() int {
	return len(t.view.Load().parts)
}

// Partitions returns the persisted partition metadata, oldest first.
func (t *Tree) Partitions() []*part.Segment {
	v := t.view.Load()
	return append([]*part.Segment(nil), v.parts...)
}

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() Stats {
	return Stats{
		Bloom:     t.stats.bloom.snapshot(),
		Prefix:    t.stats.prefix.snapshot(),
		GCMarked:  t.stats.gcMarked.Load(),
		GCSweptPN: t.stats.gcSweptPN.Load(),
		GCEvict:   t.stats.gcEvict.Load(),
		Evictions: t.stats.evictions.Load(),
		Merges:    t.stats.merges.Load(),
	}
}

// ---- Modification operations (§4.2): all writes go to PN only.

func (t *Tree) pnPut(tx *txn.Tx, key []byte, rec *Record) error {
	// The record owns copies of the caller's key and inline value; both
	// live until the partition is evicted, so they are carved from ONE
	// allocation rather than two (callers pass Val uncopied).
	buf := make([]byte, len(key)+len(rec.Val))
	kc := buf[:len(key):len(key)]
	copy(kc, key)
	if len(rec.Val) > 0 {
		vc := buf[len(key):]
		copy(vc, rec.Val)
		rec.Val = vc
	}
	t.mu.Lock()
	v := t.view.Load()
	k := pnKey{key: kc, ts: rec.TS, seq: t.pnSeq}
	t.pnSeq++
	v.pn.Set(k, rec)
	var needGC func()
	if !t.opts.DisableGC {
		if g := t.pnGarbage.Load(); g > 64 && g > int64(v.pn.Len()/8) {
			if t.onGC != nil {
				needGC = t.onGC
			} else {
				t.sweepPNLocked(v)
			}
		}
	}
	t.mu.Unlock()
	if needGC != nil {
		needGC()
	}
	return t.pbuf.DidInsert(tx.Context())
}

// InsertRegular implements index.VersionAware.
func (t *Tree) InsertRegular(tx *txn.Tx, key []byte, ref index.Ref) error {
	return t.pnPut(tx, key, &Record{Type: Regular, TS: tx.ID, Ref: ref})
}

// InsertRegularVal is InsertRegular with an inline payload — MV-PBT as a
// clustered multi-version store (the WiredTiger integration of §5).
func (t *Tree) InsertRegularVal(tx *txn.Tx, key []byte, ref index.Ref, val []byte) error {
	return t.pnPut(tx, key, &Record{Type: Regular, TS: tx.ID, Ref: ref, Val: val})
}

// InsertReplacement implements index.VersionAware.
func (t *Tree) InsertReplacement(tx *txn.Tx, key []byte, newRef index.Ref, oldRID storage.RecordID) error {
	return t.pnPut(tx, key, &Record{Type: Replacement, TS: tx.ID, Ref: newRef, OldRID: oldRID})
}

// InsertReplacementVal is InsertReplacement with an inline payload.
func (t *Tree) InsertReplacementVal(tx *txn.Tx, key []byte, newRef index.Ref, oldRID storage.RecordID, val []byte) error {
	return t.pnPut(tx, key, &Record{Type: Replacement, TS: tx.ID, Ref: newRef, OldRID: oldRID, Val: val})
}

// InsertKeyUpdate implements index.VersionAware: an anti-record under the
// old key plus a replacement record under the new key (§4.1).
func (t *Tree) InsertKeyUpdate(tx *txn.Tx, oldKey, newKey []byte, newRef index.Ref, oldRID storage.RecordID) error {
	if err := t.pnPut(tx, oldKey, &Record{Type: Anti, TS: tx.ID, OldRID: oldRID}); err != nil {
		return err
	}
	return t.pnPut(tx, newKey, &Record{Type: Replacement, TS: tx.ID, Ref: newRef, OldRID: oldRID})
}

// InsertTombstone implements index.VersionAware.
func (t *Tree) InsertTombstone(tx *txn.Tx, key []byte, oldRID storage.RecordID) error {
	return t.pnPut(tx, key, &Record{Type: Tombstone, TS: tx.ID, OldRID: oldRID})
}

// BulkLoad builds one immutable partition directly from pre-sorted
// entries, bypassing PN — the bulk-load functionality the paper
// attributes to partitions (§4: "Partitions can support additional
// functionalities, like bulk loads"). Entries must be sorted by key
// ascending; every entry becomes a regular record stamped with tx. The
// partition is placed as the OLDEST (searched last): a bulk load may only
// introduce keys that have no newer records yet.
func (t *Tree) BulkLoad(tx *txn.Tx, entries []index.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	// bgMu keeps the partition list stable against concurrent frozen-PN
	// builds and merges (lock order: bgMu before mu).
	t.bgMu.Lock()
	defer t.bgMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	kvs := make([]part.KV, len(entries))
	for i, e := range entries {
		if i > 0 && bytes.Compare(entries[i-1].Key, e.Key) > 0 {
			return errNotSorted
		}
		rec := Record{Type: Regular, TS: tx.ID, Ref: e.Ref, Val: e.Val}
		kvs[i] = part.KV{Key: e.Key, Body: encodeRecord(nil, &rec)}
	}
	seg, err := part.Build(t.pool, t.file, t.nextNo, kvs, uint64(tx.ID), uint64(tx.ID), part.BuildOptions{
		BloomBitsPerKey: t.opts.BloomBits,
		PrefixLen:       t.opts.PrefixLen,
	})
	if err != nil {
		return err
	}
	t.nextNo++
	if seg != nil {
		v := t.view.Load()
		parts := make([]*part.Segment, 0, len(v.parts)+1)
		parts = append(parts, seg)
		parts = append(parts, v.parts...)
		t.view.Store(&treeView{pn: v.pn, frozen: v.frozen, parts: parts})
	}
	return nil
}

type mvpbtError string

func (e mvpbtError) Error() string { return string(e) }

const errNotSorted = mvpbtError("mvpbt: bulk load entries not sorted by key")

// ---- Index-only visibility check (§4.4, Algorithm 3).

// visCheck carries the per-scan anti-matter map. Records are processed
// newest-first per chain (guaranteed by §4.3 ordering), so a record's
// suppressor is always seen before it.
//
// The map is scoped to ONE index key: anti-matter always lives under the
// same key as the record it extinguishes (replacements and tombstones by
// construction; a key update's anti-record is inserted under the OLD key,
// next to its predecessor). Range scans must call atKey on every key
// boundary — vacuum recycles heap slots, so records of different keys can
// legitimately carry the same RecordID, and an unscoped map would let one
// key's anti-matter suppress another key's matter.
type visCheck struct {
	t       *txn.Tx
	tree    *Tree
	horizon txn.TxID
	anti    map[storage.RecordID]txn.TxID
	key     []byte
	haveKey bool
}

// atKey resets the anti-matter map when the scan crosses into a new key.
func (v *visCheck) atKey(key []byte) {
	if v.haveKey && bytes.Equal(v.key, key) {
		return
	}
	v.key = append(v.key[:0], key...)
	v.haveKey = true
	if len(v.anti) > 0 {
		v.anti = make(map[storage.RecordID]txn.TxID)
	}
}

// visPool recycles visCheck scratch (struct, anti-matter map, key buffer)
// across lookups and scans: the per-read allocation cost of the visibility
// check drops to zero in steady state.
var visPool = sync.Pool{
	New: func() any { return &visCheck{anti: make(map[storage.RecordID]txn.TxID)} },
}

func (t *Tree) newVisCheck(tx *txn.Tx) *visCheck {
	v := visPool.Get().(*visCheck)
	v.t, v.tree, v.horizon = tx, t, t.mgr.Horizon()
	v.haveKey = false
	v.key = v.key[:0]
	if len(v.anti) > 0 {
		clear(v.anti)
	}
	return v
}

// release returns v to the pool. The transaction and tree references are
// dropped: Tx handles are themselves pooled by the txn manager and must
// not be retained past the read that borrowed them.
func (v *visCheck) release() {
	v.t, v.tree = nil, nil
	visPool.Put(v)
}

// check classifies one record. inPN enables cooperative GC phase-1 marking
// (only main-memory records are mutable). It returns true when the record
// is VISIBLE to the calling transaction.
//
// Deviation from the paper's Algorithm 3 as printed: anti-matter is
// registered for every committed snapshot-visible record BEFORE the
// suppression test, which makes suppression transitive across chains of
// three and more versions (see DESIGN.md §4).
func (v *visCheck) check(rec *Record, inPN bool) bool {
	return v.tree.applyVisFault(rec.TS, v.checkInner(rec, inPN))
}

func (v *visCheck) checkInner(rec *Record, inPN bool) bool {
	if rec.GCMarked() {
		return false
	}
	if !v.t.Sees(rec.TS) {
		// Aborted records are garbage regardless of snapshots.
		if inPN && !v.tree.opts.DisableGC && rec.TS < v.horizon &&
			v.tree.mgr.StatusOf(rec.TS) == txn.Aborted {
			v.mark(rec)
		}
		return false
	}
	// The suppression test runs BEFORE this record's own anti-matter is
	// registered: GC inheritance can leave a record whose OldRID equals its
	// own Ref.RID (the inherited target's heap slot was recycled by this
	// very record's version) — such a record suppresses OLDER records that
	// reference the slot's previous occupant, never itself.
	visible := true
	if rec.Matter() {
		if ts, ok := v.anti[rec.Ref.RID]; ok && rec.TS <= ts {
			// Superseded. If the suppressor is below the horizon the record
			// is invisible to every present and future snapshot: GC victim
			// (phase 1, §4.6) — but ONLY pure-matter records may be marked.
			// Records carrying anti-matter (replacements) are still required
			// to invalidate their predecessors in older partitions; they are
			// purged with inheritance during partition eviction (phase 3).
			if inPN && !v.tree.opts.DisableGC && ts < v.horizon && !rec.AntiMatter() {
				v.mark(rec)
			}
			visible = false
		}
	}
	if rec.AntiMatter() {
		if ts, ok := v.anti[rec.OldRID]; !ok || rec.TS > ts {
			v.anti[rec.OldRID] = rec.TS
		}
	}
	if !rec.Matter() {
		return false // pure anti-matter (anti- or tombstone record)
	}
	return visible
}

// mark is GC phase 1. Readers run concurrently, so the flag is a CAS: only
// the reader that actually flips it accounts the record as new garbage.
func (v *visCheck) mark(rec *Record) {
	if rec.MarkGC() {
		v.tree.pnGarbage.Add(1)
		v.tree.stats.gcMarked.Add(1)
	}
}

// Lookup implements index.VersionAware (Algorithm 1): visible entries for
// exactly this key, newest version first, PN before persisted partitions.
// Lock-free against other readers and PN inserts; it sees the view
// current at call time.
func (t *Tree) Lookup(tx *txn.Tx, key []byte, fn func(index.Entry) bool) error {
	t.gate.RLock()
	defer t.gate.RUnlock()
	v := t.view.Load()
	if t.opts.Unique {
		return t.uniqueLookup(tx, v, key, fn)
	}
	vis := t.newVisCheck(tx)
	defer vis.release()
	stop := false
	emit := func(rec *Record) bool {
		if !fn(index.Entry{Key: key, Ref: rec.Ref, Val: rec.Val}) {
			stop = true
		}
		return !stop
	}
	for it := v.pn.Seek(pnKey{key: key, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key().key, key) {
			break
		}
		if vis.check(it.Value(), true) && !emit(it.Value()) {
			return nil
		}
	}
	// Frozen PNs: eviction-pending, newest first, strictly newer than any
	// persisted partition — §4.3 ordering holds.
	for _, fz := range v.frozen {
		for it := fz.Seek(pnKey{key: key, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
			if !bytes.Equal(it.Key().key, key) {
				break
			}
			if vis.check(it.Value(), true) && !emit(it.Value()) {
				return nil
			}
		}
	}
	for i := len(v.parts) - 1; i >= 0; i-- {
		seg := v.parts[i]
		if segInvisible(tx, seg) {
			// Minimum Transaction Timestamp filter (§4.2): nothing in this
			// partition can be visible — but newer partitions cannot
			// suppress older ones we still need, so just skip this one.
			continue
		}
		if !seg.MayContainKey(key) {
			t.stats.bloom.negatives.Add(1)
			continue
		}
		found := false
		it := seg.Seek(key)
		for ; it.Valid(); it.Next() {
			r := it.Record()
			if !bytes.Equal(r.Key, key) {
				break
			}
			found = true
			rec, err := decodeRecord(r.Body)
			if err != nil {
				return err
			}
			if vis.check(&rec, false) && !emit(&rec) {
				t.countBloom(true)
				return nil
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
		t.countBloom(found)
	}
	return nil
}

func (t *Tree) countBloom(found bool) {
	if found {
		t.stats.bloom.positives.Add(1)
	} else {
		t.stats.bloom.falsePositives.Add(1)
	}
}

// scanSource is one merge input: the main-memory partition or a persisted
// partition, both already ordered (key asc, ts desc).
type scanSource struct {
	prio  int // lower = newer (0 = PN)
	pnIt  *skiplist.Iterator[pnKey, *Record]
	segIt *part.Iterator
	// decoded current record for segment sources
	rec   Record
	key   []byte
	valid bool
}

func (s *scanSource) load(hi []byte) error {
	if s.pnIt != nil {
		if !s.pnIt.Valid() || !index.KeyInRange(s.pnIt.Key().key, nil, hi) {
			s.valid = false
			return nil
		}
		s.key = s.pnIt.Key().key
		s.valid = true
		return nil
	}
	if !s.segIt.Valid() {
		s.valid = false
		return s.segIt.Err()
	}
	r := s.segIt.Record()
	if !index.KeyInRange(r.Key, nil, hi) {
		s.valid = false
		return nil
	}
	rec, err := decodeRecord(r.Body)
	if err != nil {
		return err
	}
	s.rec = rec
	s.key = r.Key
	s.valid = true
	return nil
}

func (s *scanSource) record() *Record {
	if s.pnIt != nil {
		return s.pnIt.Value()
	}
	return &s.rec
}

func (s *scanSource) ts() txn.TxID {
	if s.pnIt != nil {
		return s.pnIt.Key().ts
	}
	return s.rec.TS
}

func (s *scanSource) next(hi []byte) error {
	if s.pnIt != nil {
		s.pnIt.Next()
	} else {
		s.segIt.Next()
	}
	return s.load(hi)
}

// Scan implements index.VersionAware (Algorithm 2): visible entries with
// lo <= key < hi (hi nil = +inf), streamed in key order. The inputs — PN
// and every partition — are merged on (key asc, ts desc, partition
// newest-first), which preserves the §4.3 invariant that a record's
// suppressor is processed before it, while allowing early termination
// (LIMIT-style scans stop without draining the range). Unique indexes use
// the per-key decision rule instead of the anti-matter map (see
// unique.go). Lock-free against other readers and PN inserts.
func (t *Tree) Scan(tx *txn.Tx, lo, hi []byte, fn func(index.Entry) bool) error {
	t.gate.RLock()
	defer t.gate.RUnlock()
	v := t.view.Load()
	if t.opts.Unique {
		return t.uniqueScan(tx, v, lo, hi, fn)
	}
	vis := t.newVisCheck(tx)
	defer vis.release()
	srcs, err := t.scanSources(tx, v, lo, hi)
	if err != nil {
		return err
	}
	for {
		s := nextSource(srcs)
		if s == nil {
			return nil
		}
		rec := s.record()
		vis.atKey(s.key)
		if vis.check(rec, s.pnIt != nil) {
			if !fn(index.Entry{Key: s.key, Ref: rec.Ref, Val: rec.Val}) {
				return nil
			}
		}
		if err := s.next(hi); err != nil {
			return err
		}
	}
}

// scanSources builds the merge inputs for [lo, hi) over one view: the PN
// iterator plus one iterator per partition surviving the timestamp and
// segInvisible is the Minimum Transaction Timestamp filter (§4.2): the
// partition can be skipped when every record in it was created at or after
// the snapshot's Xmax — unless the reader's OWN id falls inside the
// partition's timestamp range, since a transaction always sees its own
// records (eviction may persist them while the transaction is still in
// progress).
func segInvisible(tx *txn.Tx, seg *part.Segment) bool {
	if seg.MinTS == 0 || txn.TxID(seg.MinTS) < tx.Snap.Xmax {
		return false
	}
	own := uint64(tx.ID)
	return own < seg.MinTS || own > seg.MaxTS
}

// range filters, all positioned at lo.
func (t *Tree) scanSources(tx *txn.Tx, v *treeView, lo, hi []byte) ([]*scanSource, error) {
	var srcs []*scanSource
	pnIt := v.pn.Seek(pnKey{key: lo, ts: ^txn.TxID(0), seq: ^uint64(0)})
	srcs = append(srcs, &scanSource{prio: 0, pnIt: &pnIt})
	for fi, fz := range v.frozen {
		it := fz.Seek(pnKey{key: lo, ts: ^txn.TxID(0), seq: ^uint64(0)})
		srcs = append(srcs, &scanSource{prio: fi + 1, pnIt: &it})
	}
	base := len(v.frozen) + 1
	for i := len(v.parts) - 1; i >= 0; i-- {
		seg := v.parts[i]
		if segInvisible(tx, seg) {
			continue
		}
		if !seg.MayContainRange(lo, hi) {
			t.stats.prefix.negatives.Add(1)
			continue
		}
		t.stats.prefix.positives.Add(1)
		srcs = append(srcs, &scanSource{prio: base + len(v.parts) - 1 - i, segIt: seg.Seek(lo)})
	}
	for _, s := range srcs {
		if err := s.load(hi); err != nil {
			return nil, err
		}
	}
	return srcs, nil
}

// ScanAllMatter returns every matter record in [lo, hi) WITHOUT the
// index-only visibility check — the "MV-PBT w/o idxVC" ablation of Figure
// 12a, where the caller must verify candidates against the base table.
func (t *Tree) ScanAllMatter(lo, hi []byte, fn func(index.Entry) bool) error {
	t.gate.RLock()
	defer t.gate.RUnlock()
	v := t.view.Load()
	for it := v.pn.Seek(pnKey{key: lo, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
		if !index.KeyInRange(it.Key().key, lo, hi) {
			break
		}
		if rec := it.Value(); rec.Matter() {
			if !fn(index.Entry{Key: it.Key().key, Ref: rec.Ref}) {
				return nil
			}
		}
	}
	for _, fz := range v.frozen {
		for it := fz.Seek(pnKey{key: lo, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
			if !index.KeyInRange(it.Key().key, lo, hi) {
				break
			}
			if rec := it.Value(); rec.Matter() {
				if !fn(index.Entry{Key: it.Key().key, Ref: rec.Ref}) {
					return nil
				}
			}
		}
	}
	for i := len(v.parts) - 1; i >= 0; i-- {
		seg := v.parts[i]
		if !seg.MayContainRange(lo, hi) {
			continue
		}
		it := seg.Seek(lo)
		for ; it.Valid(); it.Next() {
			r := it.Record()
			if !index.KeyInRange(r.Key, lo, hi) {
				break
			}
			rec, err := decodeRecord(r.Body)
			if err != nil {
				return err
			}
			if rec.Matter() {
				if !fn(index.Entry{Key: r.Key, Ref: rec.Ref}) {
					return nil
				}
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

var _ index.VersionAware = (*Tree)(nil)
