package mvpbt

import (
	"strings"
	"testing"

	"mvpbt/internal/txn"
)

func TestDumpKeyShowsAllLocations(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{})
	v0, v1, v2 := e.ref(), e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("k"), v0) })
	tr.EvictPN()
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("k"), v1, v0.RID) })
	tr.EvictPN()
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("k"), v2, v1.RID) })

	dump := tr.DumpKey([]byte("k"))
	if len(dump) != 3 {
		t.Fatalf("dump has %d entries, want 3", len(dump))
	}
	if dump[0].Where != "PN" {
		t.Fatalf("newest record not in PN: %+v", dump[0])
	}
	// Rendering mentions the record type and location.
	s := dump[0].String()
	for _, want := range []string{"PN", "replacement", "rid="} {
		if !strings.Contains(s, want) {
			t.Fatalf("dump rendering %q missing %q", s, want)
		}
	}
	// Partitions newest to oldest.
	if dump[1].Where != "P1" || dump[2].Where != "P0" {
		t.Fatalf("partition order wrong: %s then %s", dump[1].Where, dump[2].Where)
	}
	if dump[2].Rec.Type != Regular {
		t.Fatalf("oldest record should be the regular insert: %v", dump[2].Rec.Type)
	}
	if len(tr.DumpKey([]byte("absent"))) != 0 {
		t.Fatal("dump of absent key returned records")
	}
}

func TestStatsSnapshotIndependent(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{BloomBits: 10})
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("k"), e.ref()) })
	tr.EvictPN()
	s1 := tr.Stats()
	r := e.mgr.Begin()
	lookupRIDs(t, tr, r, []byte("k"))
	e.mgr.Commit(r)
	s2 := tr.Stats()
	if s1.Bloom.Positives == s2.Bloom.Positives && s1.Evictions != 1 {
		t.Fatalf("stats not advancing: %+v vs %+v", s1, s2)
	}
	if s1.Evictions != 1 || s2.Evictions != 1 {
		t.Fatalf("eviction counter wrong: %d %d", s1.Evictions, s2.Evictions)
	}
}
