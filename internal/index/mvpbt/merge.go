package mvpbt

import (
	"bytes"

	"mvpbt/internal/index/part"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// MergePartitions reorganizes ALL persisted partitions into one (the
// paper's on-line "system-transaction merge steps", §4: "They can be
// reorganized and optimized on-line"). Because the merge input is the
// complete persisted state, garbage collection can run across partition
// boundaries: chains are collapsed below the horizon exactly as in
// partition eviction, and pure anti-matter whose target no longer exists
// anywhere is dropped. The merged partition is dense-packed, filtered and
// written sequentially; the inputs are freed once every in-flight reader
// has moved past the old view (see the gate in Tree).
//
// The k-way merge and the build run under bgMu only — foreground inserts,
// freezes and readers proceed throughout; mu is taken briefly to snapshot
// the inputs and to install the result.
func (t *Tree) MergePartitions() error {
	t.bgMu.Lock()
	defer t.bgMu.Unlock()
	return t.mergeBG()
}

// mergeBG is the merge body; called with bgMu held. The GC reasoning
// below requires the merge input to be the COMPLETE persisted state:
// bgMu guarantees that (only bgMu holders append to or replace parts),
// and records in PN or frozen PNs are strictly newer than any persisted
// record, so they can only suppress, never be required by, the merged
// partition.
func (t *Tree) mergeBG() error {
	t.mu.Lock()
	v := t.view.Load()
	if len(v.parts) < 2 {
		t.mu.Unlock()
		return nil
	}
	no := t.nextNo
	t.nextNo++
	t.mu.Unlock()
	horizon := t.mgr.Horizon()
	committedBelow := func(rec *Record) bool {
		return rec.TS < horizon && t.mgr.StatusOf(rec.TS) == txn.Committed
	}

	// K-way merge in (key asc, ts desc, newer partition first) order.
	type src struct {
		it   *part.Iterator
		prio int
	}
	srcs := make([]*src, 0, len(v.parts))
	for i := len(v.parts) - 1; i >= 0; i-- {
		srcs = append(srcs, &src{it: v.parts[i].Min(), prio: len(v.parts) - i})
	}
	type entry struct {
		key []byte
		rec Record
	}
	var entries []entry
	for {
		best := -1
		var bestKey []byte
		var bestTS txn.TxID
		for i, s := range srcs {
			if !s.it.Valid() {
				continue
			}
			r := s.it.Record()
			rec, err := decodeRecord(r.Body)
			if err != nil {
				return err
			}
			if best < 0 {
				best, bestKey, bestTS = i, r.Key, rec.TS
				continue
			}
			if c := bytes.Compare(r.Key, bestKey); c < 0 || (c == 0 && rec.TS > bestTS) {
				best, bestKey, bestTS = i, r.Key, rec.TS
			}
		}
		if best < 0 {
			break
		}
		r := srcs[best].it.Record()
		rec, err := decodeRecord(r.Body)
		if err != nil {
			return err
		}
		entries = append(entries, entry{key: r.Key, rec: rec})
		srcs[best].it.Next()
	}
	for _, s := range srcs {
		if err := s.it.Err(); err != nil {
			return err
		}
	}
	if hook := t.mergeHook.Load(); hook != nil {
		// Deterministic crash point for recovery tests: the inputs are
		// consumed but the merged partition is neither built nor installed.
		(*hook)()
	}

	var out []entry
	if t.opts.DisableGC {
		out = entries
	} else if t.opts.Unique {
		// Unique-mode key-based GC. Tombstone deciders are still kept: PN
		// may hold an older-timestamp record of the key from a
		// long-running writer, which must stay extinguished.
		pn := make([]pnEntry, len(entries))
		for i := range entries {
			pn[i] = pnEntry{key: pnKey{key: entries[i].key, ts: entries[i].rec.TS}, rec: &entries[i].rec}
		}
		kept := t.uniqueEvictGC(pn, false)
		out = make([]entry, len(kept))
		for i := range kept {
			out[i] = entry{key: kept[i].key.key, rec: *kept[i].rec}
		}
	} else {
		// Cross-partition GC: same chain collapse as eviction, plus
		// removal of dangling pure anti-matter (the input is the complete
		// persisted state, so a missing target cannot exist elsewhere —
		// only PN holds strictly newer records).
		drop := make([]bool, len(entries))
		for i := range entries {
			rec := &entries[i].rec
			if rec.GCMarked() || t.mgr.StatusOf(rec.TS) == txn.Aborted {
				drop[i] = true
			}
		}
		// Positional predecessor resolution, exactly as in evictGC: heap
		// slot reuse means a bare RecordID may alias records of a different
		// key or a different chain position, so an anti record's target is
		// the first matter record AFTER it (= newest strictly older, since
		// entries are ts desc within a key) under the same key with that
		// rid, skipping aborted aliased generations.
		matchAfter := func(from, i int, rid storage.RecordID) int {
			for k := from + 1; k < len(entries); k++ {
				if !bytes.Equal(entries[k].key, entries[i].key) {
					return -1
				}
				if entries[k].rec.Matter() && entries[k].rec.Ref.RID == rid {
					return k
				}
			}
			return -1
		}
		for i := range entries {
			r := &entries[i].rec
			if drop[i] || !r.AntiMatter() || !committedBelow(r) {
				continue
			}
			from := i
			for r.OldRID.Valid() {
				j := matchAfter(from, i, r.OldRID)
				if j < 0 {
					break
				}
				pred := &entries[j].rec
				if t.mgr.StatusOf(pred.TS) == txn.Aborted {
					from = j // aliased generation, not the target
					continue
				}
				if !committedBelow(pred) {
					break
				}
				// Inherit even from an already-dropped predecessor: breaking
				// would leave OldRID aimed at a freed (possibly reused) slot.
				drop[j] = true
				r.OldRID = pred.OldRID
				from = j
			}
		}
		for i := range entries {
			r := &entries[i].rec
			if drop[i] || r.Matter() || !committedBelow(r) {
				continue
			}
			if !r.OldRID.Valid() {
				drop[i] = true // chain fully consumed
				continue
			}
			j := matchAfter(i, i, r.OldRID)
			for j >= 0 && t.mgr.StatusOf(entries[j].rec.TS) == txn.Aborted {
				j = matchAfter(j, i, r.OldRID)
			}
			if j < 0 || drop[j] {
				drop[i] = true // dangling: the target exists nowhere
			}
		}
		out = entries[:0]
		for i := range entries {
			if drop[i] {
				t.stats.gcEvict.Add(1)
				continue
			}
			out = append(out, entries[i])
		}
	}

	var merged []*part.Segment
	if len(out) > 0 {
		kvs := make([]part.KV, len(out))
		minTS, maxTS := ^txn.TxID(0), txn.TxID(0)
		for i := range out {
			kvs[i] = part.KV{Key: out[i].key, Body: encodeRecord(nil, &out[i].rec)}
			if ts := out[i].rec.TS; ts < minTS {
				minTS = ts
			}
			if ts := out[i].rec.TS; ts > maxTS {
				maxTS = ts
			}
		}
		seg, err := part.Build(t.pool, t.file, no, kvs, uint64(minTS), uint64(maxTS), part.BuildOptions{
			BloomBitsPerKey: t.opts.BloomBits,
			PrefixLen:       t.opts.PrefixLen,
		})
		if err != nil {
			// Nothing was published: readers and future operations keep
			// the previous, still-intact view.
			return err
		}
		if seg != nil {
			merged = []*part.Segment{seg}
		}
	}
	// Install: re-read the view — PN inserts and freezes may have
	// published since the snapshot (they don't touch parts; bgMu excludes
	// every parts mutator for the whole merge), so carry the current
	// pn/frozen and rebase defensively around the inputs prefix.
	t.mu.Lock()
	v2 := t.view.Load()
	parts := merged
	if extra := v2.parts[len(v.parts):]; len(extra) > 0 {
		parts = append(append([]*part.Segment(nil), merged...), extra...)
	}
	t.view.Store(&treeView{pn: v2.pn, frozen: v2.frozen, parts: parts})
	t.mu.Unlock()
	// Grace period: in-flight readers may still hold the old view with the
	// input segments. Taking the gate's write side waits them out; new
	// readers entering afterwards can only load the merged view. Only then
	// is freeing the inputs safe.
	t.gate.Lock()
	t.gate.Unlock() //nolint:staticcheck // empty critical section IS the grace period
	for _, p := range v.parts {
		p.Free()
	}
	t.stats.merges.Add(1)
	return nil
}
