package mvpbt

import (
	"fmt"
	"testing"

	"mvpbt/internal/index"
	"mvpbt/internal/txn"
)

func TestManifestRoundTrip(t *testing.T) {
	e := newEnv(1024, 1<<24)
	tr := e.tree(Options{BloomBits: 10, PrefixLen: 4, Unique: true})
	cur := map[int]index.Ref{}
	for gen := 0; gen < 3; gen++ {
		e.commit(func(tx *txn.Tx) {
			for k := 0; k < 200; k++ {
				key := []byte(fmt.Sprintf("key-%04d", k))
				nr := e.ref()
				if p, ok := cur[k]; ok {
					tr.InsertReplacement(tx, key, nr, p.RID)
				} else {
					tr.InsertRegular(tx, key, nr)
				}
				cur[k] = nr
			}
		})
		if err := tr.EvictPN(); err != nil {
			t.Fatal(err)
		}
	}
	start, n, err := tr.SaveManifest()
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatal("manifest used no pages")
	}

	// "Reopen": a fresh tree over the SAME file and buffer pool, with the
	// same transaction manager (logical time continues).
	tr2 := New(e.pool, tr.file, e.pbuf, e.mgr, Options{BloomBits: 10, PrefixLen: 4, Unique: true})
	if err := tr2.LoadManifest(start, n); err != nil {
		t.Fatal(err)
	}
	if tr2.NumPartitions() != tr.NumPartitions() {
		t.Fatalf("partitions %d vs %d", tr2.NumPartitions(), tr.NumPartitions())
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for k := 0; k < 200; k += 11 {
		key := []byte(fmt.Sprintf("key-%04d", k))
		rids := lookupRIDs(t, tr2, r, key)
		if len(rids) != 1 || rids[0] != cur[k].RID {
			t.Fatalf("key %d wrong after reopen: %v want %v", k, rids, cur[k].RID)
		}
	}
	// Filters survived: lookups for absent keys must skip partitions.
	before := tr2.Stats().Bloom
	for i := 0; i < 100; i++ {
		lookupRIDs(t, tr2, r, []byte(fmt.Sprintf("nope-%04d", i)))
	}
	after := tr2.Stats().Bloom
	if after.Negatives-before.Negatives < 200 {
		t.Fatalf("rehydrated bloom filters not skipping: %+v", after)
	}
	// The reopened tree accepts new writes on top.
	e.commit(func(tx *txn.Tx) {
		tr2.InsertReplacement(tx, []byte("key-0000"), e.ref(), cur[0].RID)
	})
	if rids := lookupRIDs(t, tr2, r, []byte("key-0000")); len(rids) != 1 || rids[0] != cur[0].RID {
		t.Fatal("old snapshot disturbed by post-reopen write")
	}
}

func TestManifestRejectsGarbage(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{})
	// Write junk pages and try to load them.
	start, _ := tr.file.AllocRun(1)
	junk := make([]byte, 8192)
	for i := range junk {
		junk[i] = byte(i * 13)
	}
	tr.file.WritePage(start, junk)
	tr2 := New(e.pool, tr.file, e.pbuf, e.mgr, Options{})
	if err := tr2.LoadManifest(start, 1); err == nil {
		t.Fatal("garbage manifest accepted")
	}
}

func TestManifestOnNonEmptyTreeRejected(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{})
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("k"), e.ref()) })
	tr.EvictPN()
	start, n, err := tr.SaveManifest()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.LoadManifest(start, n); err == nil {
		t.Fatal("LoadManifest on a non-empty tree accepted")
	}
}
