package mvpbt

import (
	"bytes"

	"mvpbt/internal/index/part"
	"mvpbt/internal/skiplist"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// sweepPNLocked is garbage-collection phase 2 (§4.6): remove the records
// that scans flagged (phase 1) from the main-memory partition, reclaiming
// space before the next insert. Called with t.mu held when the garbage
// ratio crosses the threshold. Deleting from the SWMR skiplist is safe
// against concurrent readers; a reader parked on a removed node continues
// into the surviving suffix.
func (t *Tree) sweepPNLocked(v *treeView) {
	var victims []pnKey
	for it := v.pn.Min(); it.Valid(); it.Next() {
		if it.Value().GCMarked() {
			victims = append(victims, it.Key())
		}
	}
	for _, k := range victims {
		v.pn.Delete(k)
	}
	t.stats.gcSweptPN.Add(int64(len(victims)))
	t.pnGarbage.Store(0)
}

// SweepPN runs garbage-collection phase 2 on demand — the maintenance
// service's GC job (scheduled via the onGC hook instead of sweeping on
// the inserting writer's critical path).
func (t *Tree) SweepPN() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepPNLocked(t.view.Load())
	return nil
}

// pnEntry pairs a PN key with its record during eviction.
type pnEntry struct {
	key pnKey
	rec *Record
}

// EvictPN implements part.Owner — the partition eviction pipeline of
// Algorithm 4, restructured so the expensive build never holds the
// tree's write lock:
//
//  1. Freeze (under mu, cheap): the current PN is prepended to the view's
//     frozen list and a fresh PN takes its place; ongoing modifications
//     and readers are unaffected.
//  2. Build (under bgMu only): the oldest frozen PN's version chains are
//     analysed and obsolete records garbage collected (phase 3 of §4.6):
//     a record superseded below the GC horizon by a committed successor
//     of the same key is invisible to every present and future snapshot
//     and is dropped, with its anti-matter inherited by the successor;
//     aborted and flagged records are dropped; anti and tombstone records
//     whose whole chain lived in PN vanish entirely. The survivors are
//     dense-packed into leaf pages with prefix truncation, internal
//     levels are built bottom-up, all pages are written out strictly
//     sequentially, and bloom/prefix-bloom filters are computed from the
//     same pass.
//  3. Publish (under mu, cheap): the frozen PN is swapped for the new
//     partition in ONE view, so a reader either sees the frozen PN (old
//     view) or the new partition (new view) — never both or neither.
//
// Foreground inserts therefore only ever contend with the freeze and
// publish steps; the serialization + device write happens concurrently.
func (t *Tree) EvictPN() error {
	t.mu.Lock()
	v := t.view.Load()
	if v.pn.Len() > 0 {
		frozen := make([]*skiplist.List[pnKey, *Record], 0, len(v.frozen)+1)
		frozen = append(frozen, v.pn)
		frozen = append(frozen, v.frozen...)
		t.view.Store(&treeView{pn: newPN(), frozen: frozen, parts: v.parts})
		t.pnGarbage.Store(0)
	}
	t.mu.Unlock()
	return t.buildFrozen()
}

// buildFrozen drains the frozen list oldest-first, building one partition
// per frozen PN. Only bgMu is held across a build; mu is taken briefly to
// pick the next source and to publish the result. When the partition
// count crosses MaxPartitions afterwards, the merge either runs inline
// (synchronous mode) or is handed to the maintenance service (onMerge).
func (t *Tree) buildFrozen() error {
	t.bgMu.Lock()
	defer t.bgMu.Unlock()
	for {
		t.mu.Lock()
		v := t.view.Load()
		if len(v.frozen) == 0 {
			onMerge := t.onMerge
			needMerge := t.opts.MaxPartitions > 0 && len(v.parts) > t.opts.MaxPartitions
			t.mu.Unlock()
			if !needMerge {
				return nil
			}
			if onMerge != nil {
				onMerge()
				return nil
			}
			return t.mergeBG()
		}
		src := v.frozen[len(v.frozen)-1] // oldest; new freezes prepend
		no := t.nextNo
		t.nextNo++
		t.mu.Unlock()

		seg, err := t.buildPartition(src, no)
		if err != nil {
			return err
		}

		t.mu.Lock()
		v2 := t.view.Load()
		frozen := append([]*skiplist.List[pnKey, *Record](nil), v2.frozen[:len(v2.frozen)-1]...)
		parts := v2.parts
		if seg != nil {
			parts = make([]*part.Segment, 0, len(v2.parts)+1)
			parts = append(parts, v2.parts...)
			parts = append(parts, seg)
		}
		t.view.Store(&treeView{pn: v2.pn, frozen: frozen, parts: parts})
		t.mu.Unlock()
		if seg != nil {
			t.stats.evictions.Add(1)
		}
	}
}

// buildPartition runs GC phase 3 over one frozen PN and serializes the
// survivors into a partition. Called with bgMu (NOT mu) held: the frozen
// source receives no more inserts, record flags are read via snapshot
// copies, and txn.Manager, the segment builder and the stats counters are
// all thread-safe. Returns (nil, nil) when GC leaves nothing to persist.
func (t *Tree) buildPartition(src *skiplist.List[pnKey, *Record], no int) (*part.Segment, error) {
	// Value-copy every record: the frozen PN stays readable through the
	// current view while GC below rewrites anti-matter chains (OldRID
	// inheritance), so the mutation must happen on private copies.
	entries := make([]pnEntry, 0, src.Len())
	recs := make([]Record, 0, src.Len())
	for it := src.Min(); it.Valid(); it.Next() {
		recs = append(recs, it.Value().snapshot())
		entries = append(entries, pnEntry{key: it.Key(), rec: &recs[len(recs)-1]})
	}
	if !t.opts.DisableGC {
		if t.opts.Unique {
			entries = t.uniqueEvictGC(entries, false)
		} else {
			entries = t.evictGC(entries)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	kvs := make([]part.KV, len(entries))
	minTS, maxTS := ^txn.TxID(0), txn.TxID(0)
	for i, e := range entries {
		kvs[i] = part.KV{Key: e.key.key, Body: encodeRecord(nil, e.rec)}
		if e.rec.TS < minTS {
			minTS = e.rec.TS
		}
		if e.rec.TS > maxTS {
			maxTS = e.rec.TS
		}
	}
	return part.Build(t.pool, t.file, no, kvs, uint64(minTS), uint64(maxTS), part.BuildOptions{
		BloomBitsPerKey: t.opts.BloomBits,
		PrefixLen:       t.opts.PrefixLen,
	})
}

// evictGC is phase 3: chain-collapsing garbage collection over the frozen
// PN contents. entries are in (key asc, ts desc) order; the returned slice
// preserves that order.
func (t *Tree) evictGC(entries []pnEntry) []pnEntry {
	horizon := t.mgr.Horizon()
	drop := make([]bool, len(entries))

	// committedBelow reports whether the record is committed with a
	// timestamp below the horizon — i.e. visible to (or superseded for)
	// every present and future snapshot.
	committedBelow := func(rec *Record) bool {
		return rec.TS < horizon && t.mgr.StatusOf(rec.TS) == txn.Committed
	}

	// Aborted and phase-1-flagged records are dropped outright.
	for i, e := range entries {
		if e.rec.GCMarked() || t.mgr.StatusOf(e.rec.TS) == txn.Aborted {
			drop[i] = true
		}
	}

	// matchAfter resolves an anti-matter record's OldRID to the entry it
	// suppresses: the first matter record after position from (entries are
	// ts desc within a key, so "after" = newest among strictly older) under
	// entry i's key whose validated version is rid. Both scopes are
	// load-bearing: heap vacuum recycles slots, so a bare RecordID may alias
	// records of a different key, or of the same key at a different chain
	// position — a tombstone whose deleted version's slot was reused by a
	// later re-insert must not consume its own successor. Positional
	// matching is exact because slot reuse follows creation order: the
	// newest matter record older than the anti record with that rid IS its
	// predecessor (or an aborted aliased generation, which callers skip).
	matchAfter := func(from, i int, rid storage.RecordID) int {
		for k := from + 1; k < len(entries); k++ {
			if !bytes.Equal(entries[k].key.key, entries[i].key.key) {
				return -1
			}
			if entries[k].rec.Matter() && entries[k].rec.Ref.RID == rid {
				return k
			}
		}
		return -1
	}

	// Chain collapse. Only predecessors under the SAME key are collapsed:
	// a key update's replacement record must not consume the old-key chain
	// (the simultaneously inserted anti-record owns that suppression).
	for i := range entries {
		r := entries[i].rec
		if drop[i] || !r.AntiMatter() || !committedBelow(r) {
			continue
		}
		from := i
		for r.OldRID.Valid() {
			j := matchAfter(from, i, r.OldRID)
			if j < 0 {
				break
			}
			pred := entries[j].rec
			if t.mgr.StatusOf(pred.TS) == txn.Aborted {
				// An aborted record that reused the slot of the true
				// predecessor's version — a different chain generation,
				// not the suppression target. Keep scanning older entries.
				from = j
				continue
			}
			if !committedBelow(pred) {
				break
			}
			// The collapsing record inherits the predecessor's anti-matter
			// so that suppression of still older (possibly on-disk)
			// records is preserved. Inherit even when the predecessor is
			// already dropped (phase-1 flagged): breaking here would leave
			// an OldRID pointing at a freed — and possibly reused — slot.
			drop[j] = true
			r.OldRID = pred.OldRID
			from = j
		}
	}

	// Pure anti-matter whose whole chain lived in PN has nothing left to
	// extinguish: the tombstone/anti record itself vanishes.
	for i := range entries {
		r := entries[i].rec
		if drop[i] {
			continue
		}
		if (r.Type == Tombstone || r.Type == Anti) && !r.OldRID.Valid() && committedBelow(r) {
			drop[i] = true
		}
	}

	out := entries[:0]
	for i := range entries {
		if drop[i] {
			t.stats.gcEvict.Add(1)
			continue
		}
		out = append(out, entries[i])
	}
	return out
}
