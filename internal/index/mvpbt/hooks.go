package mvpbt

import (
	"fmt"

	"mvpbt/internal/index"
	"mvpbt/internal/skiplist"
	"mvpbt/internal/txn"
)

// Raw-record enumeration and test-only mutation hooks for the differential
// correctness harness (internal/check). DumpRange exposes every physical
// index record so the harness can assert the structural invariants —
// per-source key ordering, ts-descending within a key, and that the
// visible result set is a subset of the raw matter records. The fault
// hook lets the harness verify its own teeth: a deliberately corrupted
// visibility decision must be caught and shrunk to a minimal history.

// RawEntry is one physical index record as stored, with its source.
type RawEntry struct {
	// Source is "PN" for the main-memory partition, "F<i>" for frozen
	// (eviction-pending) PNs newest first, and "P<no>" for persisted
	// partitions, newest first — the §4.3 processing order.
	Source string
	Key    []byte
	Rec    Record
}

// DumpRange streams every index record with lo <= key < hi (hi nil =
// +inf), source by source in processing order (PN, frozen PNs newest
// first, partitions newest to oldest), each source in its internal
// (key asc, ts desc, seq desc) order. No visibility filtering and no GC
// side effects; fn returning false stops. Safe to run concurrently with
// readers and writers — it sees the view current at call time.
func (t *Tree) DumpRange(lo, hi []byte, fn func(RawEntry) bool) error {
	t.gate.RLock()
	defer t.gate.RUnlock()
	v := t.view.Load()
	dumpPN := func(src string, pn *skiplist.List[pnKey, *Record]) bool {
		for it := pn.Seek(pnKey{key: lo, ts: ^txn.TxID(0), seq: ^uint64(0)}); it.Valid(); it.Next() {
			if !index.KeyInRange(it.Key().key, lo, hi) {
				break
			}
			if !fn(RawEntry{Source: src, Key: it.Key().key, Rec: it.Value().snapshot()}) {
				return false
			}
		}
		return true
	}
	if !dumpPN("PN", v.pn) {
		return nil
	}
	for fi, fz := range v.frozen {
		if !dumpPN(fmt.Sprintf("F%d", fi), fz) {
			return nil
		}
	}
	for i := len(v.parts) - 1; i >= 0; i-- {
		seg := v.parts[i]
		src := fmt.Sprintf("P%d", seg.No)
		it := seg.Seek(lo)
		for ; it.Valid(); it.Next() {
			r := it.Record()
			if !index.KeyInRange(r.Key, lo, hi) {
				break
			}
			rec, err := decodeRecord(r.Body)
			if err != nil {
				return err
			}
			if !fn(RawEntry{Source: src, Key: r.Key, Rec: rec}) {
				return nil
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// VisFaultFn post-processes an index-only visibility decision: it receives
// the record's timestamp and the correct answer and returns the answer to
// use instead.
type VisFaultFn func(ts txn.TxID, visible bool) bool

// SetVisibilityFaultForTest installs (or, with nil, removes) a test-only
// mutation hook over the index-only visibility check. The harness's
// self-test uses it to seed a visibility bug and assert the differential
// checkers catch it. Never set outside tests.
func (t *Tree) SetVisibilityFaultForTest(fn VisFaultFn) {
	if fn == nil {
		t.visFault.Store(nil)
		return
	}
	t.visFault.Store(&fn)
}

// applyVisFault filters one visibility decision through the installed
// fault hook, if any. The nil fast path is a single atomic load.
func (t *Tree) applyVisFault(ts txn.TxID, visible bool) bool {
	f := t.visFault.Load()
	if f == nil {
		return visible
	}
	return (*f)(ts, visible)
}

// SetMergeTestHook installs fn to run in the middle of every partition
// merge — after the merge inputs are read, before the merged partition is
// built and installed. Recovery tests use it as a deterministic crash
// point "during an in-flight background merge". Never set outside tests.
func (t *Tree) SetMergeTestHook(fn func()) {
	if fn == nil {
		t.mergeHook.Store(nil)
		return
	}
	t.mergeHook.Store(&fn)
}
