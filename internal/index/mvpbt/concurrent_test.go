package mvpbt

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpbt/internal/index"
	"mvpbt/internal/storage"
	"mvpbt/internal/util"
)

// TestConcurrentReadersWriters is the race-focused stress test for the
// lock-free read path: parallel Lookup/Scan/ScanAllMatter/DumpKey readers
// run against concurrent writers (inserts, tombstones, key updates) while
// forced evictions and merges republish the partition snapshot and the
// cooperative GC marks records. Run under -race this exercises the SWMR
// skiplist, the view publication protocol, the segment-reclamation grace
// period, and the GC-mark atomics. Correctness check: a reader's snapshot
// must never see more than one visible version per logical tuple, and
// committed tuples a snapshot saw once must stay visible within it.
func TestConcurrentReadersWriters(t *testing.T) {
	env := newEnv(512, 32<<10) // small partition buffer: constant evictions
	tr := env.tree(Options{Name: "stress", BloomBits: 10, MaxPartitions: 4})

	const keys = 200
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%05d", i)) }

	// Seed every key with one committed version.
	var rid atomic.Uint64
	newRef := func() index.Ref {
		return index.Ref{RID: storage.RecordID{Page: storage.NewPageID(9, rid.Add(1)), Slot: 0}}
	}
	refs := make([]index.Ref, keys)
	seed := env.mgr.Begin()
	for i := 0; i < keys; i++ {
		refs[i] = newRef()
		if err := tr.InsertRegular(seed, key(i), refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	env.mgr.Commit(seed)

	deadline := time.Now().Add(1 * time.Second)
	if testing.Short() {
		deadline = time.Now().Add(200 * time.Millisecond)
	}
	stop := func() bool { return time.Now().After(deadline) }

	var wg sync.WaitGroup
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}

	// Writers: version churn through replacements and delete+re-insert
	// pairs. Each writer owns a disjoint key slice (writer w owns keys with
	// i%numWriters == w) so every version chain stays linear — write-write
	// conflicts on one tuple are the heap's job, not the index's.
	const numWriters = 2
	cur := make([]index.Ref, keys) // last COMMITTED head of each chain
	for i := range cur {
		cur[i] = refs[i]
	}
	for w := 0; w < numWriters; w++ {
		wg.Add(1)
		go func(w int, seed uint64) {
			defer wg.Done()
			r := util.NewRand(seed)
			for !stop() {
				i := r.Intn(keys/numWriters)*numWriters + w
				k := key(i)
				tx := env.mgr.Begin()
				next := newRef()
				var err error
				if r.Intn(4) == 0 {
					// Delete the tuple and insert a brand-new one (fresh
					// chain) in the same transaction.
					err = tr.InsertTombstone(tx, k, cur[i].RID)
					if err == nil {
						err = tr.InsertRegular(tx, k, next)
					}
				} else {
					err = tr.InsertReplacement(tx, k, next, cur[i].RID)
				}
				if err != nil {
					env.mgr.Abort(tx)
					report(err)
					return
				}
				if r.Intn(8) == 0 {
					env.mgr.Abort(tx) // chain head stays cur[i]
				} else {
					env.mgr.Commit(tx)
					cur[i] = next
				}
			}
		}(w, uint64(w+1))
	}

	// Maintenance: forced evictions and merges republish views and free
	// old segments under readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop() {
			if err := tr.EvictPN(); err != nil {
				report(err)
				return
			}
			if err := tr.MergePartitions(); err != nil {
				report(err)
				return
			}
		}
	}()

	// Readers: point lookups and range scans under fresh snapshots.
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := util.NewRand(seed)
			for !stop() {
				tx := env.mgr.Begin()
				for b := 0; b < 16; b++ {
					k := key(r.Intn(keys))
					switch r.Intn(4) {
					case 0:
						n := 0
						err := tr.Lookup(tx, k, func(e index.Entry) bool {
							if !bytes.Equal(e.Key, k) {
								report(fmt.Errorf("lookup returned key %q for %q", e.Key, k))
							}
							n++
							return true
						})
						if err != nil {
							report(err)
						}
						if n > 1 {
							report(fmt.Errorf("snapshot saw %d visible versions of %q", n, k))
						}
					case 1:
						seen := make(map[string]int)
						err := tr.Scan(tx, k, nil, func(e index.Entry) bool {
							seen[string(e.Key)]++
							return len(seen) < 20
						})
						if err != nil {
							report(err)
						}
						for sk, n := range seen {
							if n > 1 {
								report(fmt.Errorf("scan saw %d visible versions of %q", n, sk))
							}
						}
					case 2:
						err := tr.ScanAllMatter(k, nil, func(e index.Entry) bool { return false })
						if err != nil {
							report(err)
						}
					default:
						tr.DumpKey(k)
					}
				}
				env.mgr.Commit(tx)
			}
		}(uint64(rd + 100))
	}

	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	// Ground truth after the storm: every key decides to exactly one
	// visible version under a fresh snapshot (writers always end keys with
	// a committed or aborted regular insert; tombstones are always
	// followed by a re-insert in the same transaction).
	tx := env.mgr.Begin()
	defer env.mgr.Commit(tx)
	for i := 0; i < keys; i++ {
		n := 0
		if err := tr.Lookup(tx, key(i), func(e index.Entry) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("key %d: %d visible versions after quiesce", i, n)
		}
	}
	if tr.Stats().Evictions == 0 {
		t.Error("stress ran without a single partition eviction")
	}
}
