package mvpbt

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index"
	"mvpbt/internal/index/part"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

type env struct {
	dev  *ssd.Device
	pool *buffer.Pool
	mgr  *txn.Manager
	fm   *sfile.Manager
	pbuf *part.PartitionBuffer
	rid  uint64
}

func newEnv(frames, pbufLimit int) *env {
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	return &env{
		dev:  dev,
		pool: buffer.New(frames),
		mgr:  txn.NewManager(),
		fm:   sfile.NewManager(dev),
		pbuf: part.NewPartitionBuffer(pbufLimit),
	}
}

func (e *env) tree(opts Options) *Tree {
	if opts.Name == "" {
		opts.Name = "test"
	}
	return New(e.pool, e.fm.Create(opts.Name, sfile.ClassIndex), e.pbuf, e.mgr, opts)
}

// nextRID fabricates a unique tuple-version recordID (the tests have no
// real heap; MV-PBT never dereferences rids).
func (e *env) nextRID() storage.RecordID {
	e.rid++
	return storage.RecordID{Page: storage.NewPageID(999, e.rid), Slot: 0}
}

func (e *env) ref() index.Ref { return index.Ref{RID: e.nextRID()} }

func (e *env) commit(fn func(tx *txn.Tx)) *txn.Tx {
	tx := e.mgr.Begin()
	fn(tx)
	e.mgr.Commit(tx)
	return tx
}

// lookupRIDs collects the rids visible for key.
func lookupRIDs(t *testing.T, tr *Tree, tx *txn.Tx, key []byte) []storage.RecordID {
	t.Helper()
	var out []storage.RecordID
	if err := tr.Lookup(tx, key, func(e index.Entry) bool {
		out = append(out, e.Ref.RID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInsertLookup(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	ref := e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("k1"), ref) })
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	rids := lookupRIDs(t, tr, r, []byte("k1"))
	if len(rids) != 1 || rids[0] != ref.RID {
		t.Fatalf("lookup got %v want %v", rids, ref.RID)
	}
	if len(lookupRIDs(t, tr, r, []byte("nope"))) != 0 {
		t.Fatal("absent key matched")
	}
}

func TestUncommittedAndAbortedInvisible(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	w := e.mgr.Begin()
	ref := e.ref()
	tr.InsertRegular(w, []byte("k"), ref)
	r := e.mgr.Begin()
	if len(lookupRIDs(t, tr, r, []byte("k"))) != 0 {
		t.Fatal("uncommitted visible to other tx")
	}
	if got := lookupRIDs(t, tr, w, []byte("k")); len(got) != 1 {
		t.Fatal("own insert invisible")
	}
	e.mgr.Abort(w)
	e.mgr.Commit(r)
	r2 := e.mgr.Begin()
	defer e.mgr.Commit(r2)
	if len(lookupRIDs(t, tr, r2, []byte("k"))) != 0 {
		t.Fatal("aborted insert visible")
	}
}

func TestReplacementSupersedes(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	v0, v1 := e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("t"), v0) })
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("t"), v1, v0.RID) })
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	rids := lookupRIDs(t, tr, r, []byte("t"))
	if len(rids) != 1 || rids[0] != v1.RID {
		t.Fatalf("replacement not superseding: %v", rids)
	}
}

func TestHTAPLongReaderSeesOldVersion(t *testing.T) {
	// Figure 1: TXR keeps seeing t.v0 while TXU1..TXU3 commit successors.
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	v := []index.Ref{e.ref(), e.ref(), e.ref(), e.ref()}
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("t"), v[0]) })
	long := e.mgr.Begin()
	prev := v[0]
	for i := 1; i <= 3; i++ {
		e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("t"), v[i], prev.RID) })
		prev = v[i]
	}
	if rids := lookupRIDs(t, tr, long, []byte("t")); len(rids) != 1 || rids[0] != v[0].RID {
		t.Fatalf("long reader got %v want v0 %v", rids, v[0].RID)
	}
	fresh := e.mgr.Begin()
	if rids := lookupRIDs(t, tr, fresh, []byte("t")); len(rids) != 1 || rids[0] != v[3].RID {
		t.Fatalf("fresh reader got %v want v3 %v", rids, v[3].RID)
	}
	e.mgr.Commit(long)
	e.mgr.Commit(fresh)
}

func TestTransitiveSuppression(t *testing.T) {
	// Three and more versions: the middle replacement is itself suppressed
	// but must still extinguish its predecessor (the Algorithm 3 fix).
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	refs := make([]index.Ref, 8)
	for i := range refs {
		refs[i] = e.ref()
	}
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("c"), refs[0]) })
	for i := 1; i < len(refs); i++ {
		e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("c"), refs[i], refs[i-1].RID) })
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	rids := lookupRIDs(t, tr, r, []byte("c"))
	if len(rids) != 1 || rids[0] != refs[7].RID {
		t.Fatalf("transitive suppression broken: %v", rids)
	}
}

func TestKeyUpdate(t *testing.T) {
	// Figure 10/11: UPDATE r SET a=1 WHERE a=7.
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	v1, v2 := e.ref(), e.ref()
	k7, k1 := []byte("key-7"), []byte("key-1")
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, k7, v1) })
	before := e.mgr.Begin()
	e.commit(func(tx *txn.Tx) { tr.InsertKeyUpdate(tx, k7, k1, v2, v1.RID) })
	after := e.mgr.Begin()
	defer e.mgr.Commit(after)
	defer e.mgr.Commit(before)
	if rids := lookupRIDs(t, tr, after, k7); len(rids) != 0 {
		t.Fatalf("old key still visible after key update: %v", rids)
	}
	if rids := lookupRIDs(t, tr, after, k1); len(rids) != 1 || rids[0] != v2.RID {
		t.Fatalf("new key wrong: %v", rids)
	}
	// The older snapshot still sees the old key and NOT the new one.
	if rids := lookupRIDs(t, tr, before, k7); len(rids) != 1 || rids[0] != v1.RID {
		t.Fatalf("old snapshot lost old key: %v", rids)
	}
	if rids := lookupRIDs(t, tr, before, k1); len(rids) != 0 {
		t.Fatalf("old snapshot sees new key: %v", rids)
	}
}

func TestTombstone(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	v0 := e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("d"), v0) })
	before := e.mgr.Begin()
	e.commit(func(tx *txn.Tx) { tr.InsertTombstone(tx, []byte("d"), v0.RID) })
	after := e.mgr.Begin()
	defer e.mgr.Commit(after)
	defer e.mgr.Commit(before)
	if rids := lookupRIDs(t, tr, after, []byte("d")); len(rids) != 0 {
		t.Fatalf("deleted tuple visible: %v", rids)
	}
	if rids := lookupRIDs(t, tr, before, []byte("d")); len(rids) != 1 {
		t.Fatalf("pre-delete snapshot lost tuple: %v", rids)
	}
}

func TestSameTxMultipleUpdates(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	v0, v1, v2 := e.ref(), e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) {
		tr.InsertRegular(tx, []byte("m"), v0)
		tr.InsertReplacement(tx, []byte("m"), v1, v0.RID)
		tr.InsertReplacement(tx, []byte("m"), v2, v1.RID)
	})
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	rids := lookupRIDs(t, tr, r, []byte("m"))
	if len(rids) != 1 || rids[0] != v2.RID {
		t.Fatalf("same-tx chain wrong: %v", rids)
	}
}

func TestVisibilityAcrossEvictedPartitions(t *testing.T) {
	// All of the above must hold when the records live in different
	// persisted partitions.
	e := newEnv(256, 1<<20)
	tr := e.tree(Options{BloomBits: 10})
	v0, v1, v2 := e.ref(), e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("t"), v0) })
	tr.EvictPN() // v0 → P0
	long := e.mgr.Begin()
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("t"), v1, v0.RID) })
	tr.EvictPN() // v1 → P1
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("t"), v2, v1.RID) })
	// v2 in PN. Three locations, one chain.
	if tr.NumPartitions() != 2 {
		t.Fatalf("partitions=%d want 2", tr.NumPartitions())
	}
	fresh := e.mgr.Begin()
	if rids := lookupRIDs(t, tr, fresh, []byte("t")); len(rids) != 1 || rids[0] != v2.RID {
		t.Fatalf("fresh reader across partitions got %v", rids)
	}
	if rids := lookupRIDs(t, tr, long, []byte("t")); len(rids) != 1 || rids[0] != v0.RID {
		t.Fatalf("long reader across partitions got %v", rids)
	}
	e.mgr.Commit(long)
	e.mgr.Commit(fresh)
}

func TestEvictionOfUncommittedThenCommit(t *testing.T) {
	e := newEnv(256, 1<<20)
	tr := e.tree(Options{})
	w := e.mgr.Begin()
	ref := e.ref()
	tr.InsertRegular(w, []byte("u"), ref)
	tr.EvictPN() // record persisted while its tx is in progress
	r1 := e.mgr.Begin()
	if len(lookupRIDs(t, tr, r1, []byte("u"))) != 0 {
		t.Fatal("in-progress record visible from partition")
	}
	e.mgr.Commit(w)
	e.mgr.Commit(r1)
	r2 := e.mgr.Begin()
	defer e.mgr.Commit(r2)
	if rids := lookupRIDs(t, tr, r2, []byte("u")); len(rids) != 1 {
		t.Fatal("committed record lost after early eviction")
	}
}

func TestUniqueLookupStopsEarly(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{Unique: true})
	v0, v1 := e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("u"), v0) })
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("u"), v1, v0.RID) })
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	calls := 0
	tr.Lookup(r, []byte("u"), func(e index.Entry) bool {
		calls++
		return true
	})
	if calls != 1 {
		t.Fatalf("unique lookup emitted %d entries", calls)
	}
}

func TestScanRangeOrderAndVisibility(t *testing.T) {
	e := newEnv(256, 1<<20)
	tr := e.tree(Options{})
	refs := map[string]index.Ref{}
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("k%03d", i)
			refs[k] = e.ref()
			tr.InsertRegular(tx, []byte(k), refs[k])
		}
	})
	tr.EvictPN()
	// Update half the tuples.
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 100; i += 2 {
			k := fmt.Sprintf("k%03d", i)
			nr := e.ref()
			tr.InsertReplacement(tx, []byte(k), nr, refs[k].RID)
			refs[k] = nr
		}
	})
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	var keys []string
	err := tr.Scan(r, []byte("k010"), []byte("k020"), func(en index.Entry) bool {
		k := string(en.Key)
		keys = append(keys, k)
		if en.Ref.RID != refs[k].RID {
			t.Fatalf("key %s wrong version", k)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 {
		t.Fatalf("scan returned %d keys: %v", len(keys), keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order: %v", keys)
		}
	}
}

func TestScanAllMatterReturnsCandidates(t *testing.T) {
	e := newEnv(64, 1<<20)
	tr := e.tree(Options{})
	v0, v1 := e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("x"), v0) })
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("x"), v1, v0.RID) })
	n := 0
	tr.ScanAllMatter([]byte("a"), []byte("z"), func(index.Entry) bool { n++; return true })
	if n != 2 {
		t.Fatalf("candidates=%d want 2 (no visibility filtering)", n)
	}
}

func TestEvictionGCDropsObsolete(t *testing.T) {
	e := newEnv(256, 1<<22)
	gcTree := e.tree(Options{Name: "gc"})
	noGCTree := e.tree(Options{Name: "nogc", DisableGC: true})
	fill := func(tr *Tree) {
		prev := map[int]index.Ref{}
		for i := 0; i < 50; i++ {
			e.commit(func(tx *txn.Tx) {
				for k := 0; k < 20; k++ {
					key := []byte(fmt.Sprintf("t%02d", k))
					nr := e.ref()
					if p, ok := prev[k]; ok {
						tr.InsertReplacement(tx, key, nr, p.RID)
					} else {
						tr.InsertRegular(tx, key, nr)
					}
					prev[k] = nr
				}
			})
		}
		tr.EvictPN()
	}
	fill(gcTree)
	fill(noGCTree)
	g, n := gcTree.Partitions()[0], noGCTree.Partitions()[0]
	// With no active snapshots, only the newest record per chain (plus
	// nothing else) survives GC: 20 records vs 1000.
	if g.NumRecords >= n.NumRecords/10 {
		t.Fatalf("eviction GC ineffective: %d vs %d records", g.NumRecords, n.NumRecords)
	}
	if gcTree.Stats().GCEvict == 0 {
		t.Fatal("GCEvict counter zero")
	}
	// Correctness after GC: newest version still visible.
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for k := 0; k < 20; k++ {
		if rids := lookupRIDs(t, gcTree, r, []byte(fmt.Sprintf("t%02d", k))); len(rids) != 1 {
			t.Fatalf("tuple %d lost after GC: %v", k, rids)
		}
	}
}

func TestEvictionGCRespectsLongReader(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{})
	v0 := e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("t"), v0) })
	long := e.mgr.Begin() // pins horizon
	prev := v0
	for i := 0; i < 10; i++ {
		e.commit(func(tx *txn.Tx) {
			nr := e.ref()
			tr.InsertReplacement(tx, []byte("t"), nr, prev.RID)
			prev = nr
		})
	}
	tr.EvictPN()
	if rids := lookupRIDs(t, tr, long, []byte("t")); len(rids) != 1 || rids[0] != v0.RID {
		t.Fatalf("GC during eviction destroyed version visible to long reader: %v", rids)
	}
	e.mgr.Commit(long)
}

func TestTombstoneChainFullyInPNVanishes(t *testing.T) {
	e := newEnv(64, 1<<22)
	tr := e.tree(Options{})
	v0 := e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("gone"), v0) })
	e.commit(func(tx *txn.Tx) { tr.InsertTombstone(tx, []byte("gone"), v0.RID) })
	tr.EvictPN()
	// Both records were below the horizon and the chain began in PN: the
	// partition should contain nothing (or not exist at all).
	total := 0
	for _, p := range tr.Partitions() {
		total += p.NumRecords
	}
	if total != 0 {
		t.Fatalf("fully-dead chain left %d records", total)
	}
}

func TestTombstoneSuppressingOlderPartitionSurvivesGC(t *testing.T) {
	e := newEnv(256, 1<<22)
	tr := e.tree(Options{})
	v0 := e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("t"), v0) })
	tr.EvictPN() // regular in P0
	e.commit(func(tx *txn.Tx) { tr.InsertTombstone(tx, []byte("t"), v0.RID) })
	tr.EvictPN() // tombstone must survive into P1 to suppress P0
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	if rids := lookupRIDs(t, tr, r, []byte("t")); len(rids) != 0 {
		t.Fatalf("tombstone lost during eviction GC; tuple resurrected: %v", rids)
	}
}

func TestPhase1MarkingAndPhase2Sweep(t *testing.T) {
	e := newEnv(256, 1<<26)
	tr := e.tree(Options{})
	// Insert/delete/re-insert cycles: the superseded REGULAR records are
	// pure matter and thus phase-1 markable (replacements are not — their
	// anti-matter is still needed, §4.6).
	cur := map[int]index.Ref{}
	for round := 0; round < 40; round++ {
		e.commit(func(tx *txn.Tx) {
			for k := 0; k < 30; k++ {
				key := []byte(fmt.Sprintf("t%02d", k))
				if p, ok := cur[k]; ok {
					tr.InsertTombstone(tx, key, p.RID)
					delete(cur, k)
				} else {
					nr := e.ref()
					tr.InsertRegular(tx, key, nr)
					cur[k] = nr
				}
			}
		})
	}
	// End on a live generation.
	if len(cur) == 0 {
		e.commit(func(tx *txn.Tx) {
			for k := 0; k < 30; k++ {
				nr := e.ref()
				tr.InsertRegular(tx, []byte(fmt.Sprintf("t%02d", k)), nr)
				cur[k] = nr
			}
		})
	}
	r := e.mgr.Begin()
	tr.Scan(r, []byte("t00"), []byte("t99"), func(index.Entry) bool { return true })
	e.mgr.Commit(r)
	st := tr.Stats()
	if st.GCMarked == 0 {
		t.Fatal("phase 1 marked nothing on a heavily versioned scan")
	}
	// More modifications trigger the phase-2 sweep.
	before := tr.PNBytes()
	e.commit(func(tx *txn.Tx) {
		for k := 0; k < 30; k++ {
			key := []byte(fmt.Sprintf("t%02d", k))
			nr := e.ref()
			tr.InsertReplacement(tx, key, nr, cur[k].RID)
			cur[k] = nr
		}
	})
	if st2 := tr.Stats(); st2.GCSweptPN == 0 {
		t.Fatal("phase 2 swept nothing")
	}
	if tr.PNBytes() >= before {
		t.Fatalf("sweep did not shrink PN: %d -> %d", before, tr.PNBytes())
	}
	// Correctness preserved.
	r2 := e.mgr.Begin()
	defer e.mgr.Commit(r2)
	for k := 0; k < 30; k++ {
		key := []byte(fmt.Sprintf("t%02d", k))
		if rids := lookupRIDs(t, tr, r2, key); len(rids) != 1 || rids[0] != cur[k].RID {
			t.Fatalf("tuple %d wrong after sweep: %v want %v", k, rids, cur[k].RID)
		}
	}
}

func TestPhase1NeverMarksAntiMatterCarriers(t *testing.T) {
	// A replacement record superseded below the horizon still carries the
	// anti-matter that extinguishes an on-disk predecessor; phase 1 must
	// leave it alone or the predecessor would resurrect (§4.6).
	e := newEnv(256, 1<<26)
	tr := e.tree(Options{})
	v0, v1, v2 := e.ref(), e.ref(), e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("t"), v0) })
	tr.EvictPN() // regular on disk
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("t"), v1, v0.RID) })
	e.commit(func(tx *txn.Tx) { tr.InsertReplacement(tx, []byte("t"), v2, v1.RID) })
	// Scan marks; inserts trigger sweeps. The v1 replacement is suppressed
	// by v2 but must survive in PN.
	for i := 0; i < 5; i++ {
		r := e.mgr.Begin()
		tr.Scan(r, []byte("s"), []byte("u"), func(index.Entry) bool { return true })
		e.mgr.Commit(r)
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	rids := lookupRIDs(t, tr, r, []byte("t"))
	if len(rids) != 1 || rids[0] != v2.RID {
		t.Fatalf("resurrection or loss: %v (want only %v)", rids, v2.RID)
	}
}

func TestBloomFilterStats(t *testing.T) {
	e := newEnv(256, 1<<20)
	tr := e.tree(Options{BloomBits: 10, Unique: true})
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 1000; i++ {
			tr.InsertRegular(tx, []byte(fmt.Sprintf("p0-%04d", i)), e.ref())
		}
	})
	tr.EvictPN()
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 1000; i++ {
			tr.InsertRegular(tx, []byte(fmt.Sprintf("p1-%04d", i)), e.ref())
		}
	})
	tr.EvictPN()
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	// Lookups for p0 keys consult the newest partition first; its bloom
	// filter must skip it (a negative), then partition 0 matches.
	for i := 0; i < 200; i++ {
		lookupRIDs(t, tr, r, []byte(fmt.Sprintf("p0-%04d", i)))
	}
	st := tr.Stats()
	if st.Bloom.Positives == 0 {
		t.Fatalf("no filter positives: %+v", st.Bloom)
	}
	if st.Bloom.Negatives == 0 {
		t.Fatalf("no filter negatives (partition skipping broken): %+v", st.Bloom)
	}
}

func TestPartitionBufferDrivesEviction(t *testing.T) {
	e := newEnv(1024, 16<<10) // tiny partition buffer
	tr := e.tree(Options{})
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 2000; i++ {
			tr.InsertRegular(tx, []byte(fmt.Sprintf("k%06d", i)), e.ref())
		}
	})
	if tr.NumPartitions() == 0 {
		t.Fatal("partition buffer never evicted")
	}
	if e.pbuf.Used() > e.pbuf.Limit() {
		t.Fatalf("buffer over limit: %d > %d", e.pbuf.Used(), e.pbuf.Limit())
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for i := 0; i < 2000; i += 191 {
		if rids := lookupRIDs(t, tr, r, []byte(fmt.Sprintf("k%06d", i))); len(rids) != 1 {
			t.Fatalf("key %d lost across auto-evictions", i)
		}
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rids := []storage.RecordID{
		{},
		{Page: storage.NewPageID(7, 99), Slot: 3},
	}
	for _, typ := range []RecType{Regular, Replacement, Anti, Tombstone} {
		for _, gc := range []bool{false, true} {
			for _, old := range rids {
				r := Record{Type: typ, TS: 123456, OldRID: old}
				r.SetGC(gc)
				if r.Matter() {
					r.Ref = index.Ref{RID: storage.RecordID{Page: storage.NewPageID(2, 5), Slot: 9}, VID: 42}
				}
				if r.Matter() {
					r.Val = []byte("inline-value")
				}
				got, err := decodeRecord(encodeRecord(nil, &r))
				if err != nil {
					t.Fatal(err)
				}
				if got.Type != r.Type || got.GCMarked() != r.GCMarked() || got.TS != r.TS ||
					got.Ref != r.Ref || got.OldRID != r.OldRID || !bytes.Equal(got.Val, r.Val) {
					t.Fatalf("round trip: %+v != %+v", got, r)
				}
			}
		}
	}
}

// TestRandomizedModel drives MV-PBT with a random committed history of
// inserts, key/non-key updates and deletes across many tuples, takes
// snapshots at random points, forces random evictions, and verifies that
// full scans under every held snapshot return exactly the model's visible
// set.
func TestRandomizedModel(t *testing.T) {
	for _, gc := range []bool{true, false} {
		t.Run(fmt.Sprintf("gc=%v", gc), func(t *testing.T) {
			e := newEnv(1024, 1<<26)
			tr := e.tree(Options{BloomBits: 10, DisableGC: !gc})
			r := util.NewRand(2024)

			type version struct {
				ts      txn.TxID
				key     string
				ref     index.Ref
				deleted bool
			}
			// Per-tuple history, newest last.
			hist := map[int][]version{}
			keyOf := func(k int) string { return fmt.Sprintf("key-%03d", k) }

			type snap struct {
				tx *txn.Tx
			}
			var snaps []snap

			const tuples = 60
			for step := 0; step < 3000; step++ {
				id := r.Intn(tuples)
				h := hist[id]
				live := len(h) > 0 && !h[len(h)-1].deleted
				tx := e.mgr.Begin()
				switch {
				case !live:
					ref := e.ref()
					key := keyOf(id)
					tr.InsertRegular(tx, []byte(key), ref)
					hist[id] = append(h, version{ts: tx.ID, key: key, ref: ref})
				case r.Intn(10) == 0: // delete
					last := h[len(h)-1]
					tr.InsertTombstone(tx, []byte(last.key), last.ref.RID)
					hist[id] = append(h, version{ts: tx.ID, key: last.key, deleted: true})
				case r.Intn(4) == 0: // key update: move to a sibling key
					last := h[len(h)-1]
					nk := keyOf(r.Intn(tuples))
					ref := e.ref()
					tr.InsertKeyUpdate(tx, []byte(last.key), []byte(nk), ref, last.ref.RID)
					hist[id] = append(h, version{ts: tx.ID, key: nk, ref: ref})
				default: // non-key update
					last := h[len(h)-1]
					ref := e.ref()
					tr.InsertReplacement(tx, []byte(last.key), ref, last.ref.RID)
					hist[id] = append(h, version{ts: tx.ID, key: last.key, ref: ref})
				}
				e.mgr.Commit(tx)

				if r.Intn(200) == 0 && len(snaps) < 6 {
					snaps = append(snaps, snap{tx: e.mgr.Begin()})
				}
				if r.Intn(400) == 0 {
					if err := tr.EvictPN(); err != nil {
						t.Fatal(err)
					}
				}
			}
			snaps = append(snaps, snap{tx: e.mgr.Begin()})

			for si, s := range snaps {
				want := map[storage.RecordID]string{}
				for _, h := range hist {
					// Newest version visible to the snapshot wins.
					for i := len(h) - 1; i >= 0; i-- {
						if s.tx.Sees(h[i].ts) {
							if !h[i].deleted {
								want[h[i].ref.RID] = h[i].key
							}
							break
						}
					}
				}
				got := map[storage.RecordID]string{}
				err := tr.Scan(s.tx, []byte("key-"), []byte("key-~"), func(en index.Entry) bool {
					if _, dup := got[en.Ref.RID]; dup {
						t.Fatalf("snapshot %d: duplicate rid %v", si, en.Ref.RID)
					}
					got[en.Ref.RID] = string(en.Key)
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("snapshot %d: got %d visible, want %d", si, len(got), len(want))
				}
				for rid, key := range want {
					if got[rid] != key {
						t.Fatalf("snapshot %d: rid %v got key %q want %q", si, rid, got[rid], key)
					}
				}
			}
			for _, s := range snaps {
				e.mgr.Commit(s.tx)
			}
		})
	}
}

func TestScanAfterManyEvictionsMatchesModel(t *testing.T) {
	// Same model as above but with eviction after every batch, exercising
	// cross-partition suppression heavily.
	e := newEnv(2048, 1<<26)
	tr := e.tree(Options{BloomBits: 10})
	cur := map[int]index.Ref{}
	for round := 0; round < 30; round++ {
		e.commit(func(tx *txn.Tx) {
			for k := 0; k < 40; k++ {
				key := []byte(fmt.Sprintf("t%02d", k))
				nr := e.ref()
				if p, ok := cur[k]; ok {
					tr.InsertReplacement(tx, key, nr, p.RID)
				} else {
					tr.InsertRegular(tx, key, nr)
				}
				cur[k] = nr
			}
		})
		if err := tr.EvictPN(); err != nil {
			t.Fatal(err)
		}
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	seen := map[string]storage.RecordID{}
	tr.Scan(r, []byte("t00"), []byte("t99"), func(en index.Entry) bool {
		if _, dup := seen[string(en.Key)]; dup {
			t.Fatalf("duplicate key %q in scan", en.Key)
		}
		seen[string(en.Key)] = en.Ref.RID
		return true
	})
	if len(seen) != 40 {
		t.Fatalf("scan found %d tuples, want 40", len(seen))
	}
	for k := 0; k < 40; k++ {
		key := fmt.Sprintf("t%02d", k)
		if seen[key] != cur[k].RID {
			t.Fatalf("tuple %s resolved to stale version", key)
		}
	}
}

func TestIndexOnlyNoHeapAccess(t *testing.T) {
	// The defining property (§4.4): visibility checking costs no base
	// table I/O. The only device traffic during lookups is (possibly)
	// index partition reads.
	e := newEnv(4096, 1<<20)
	tr := e.tree(Options{BloomBits: 10})
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 5000; i++ {
			tr.InsertRegular(tx, []byte(fmt.Sprintf("k%06d", i)), e.ref())
		}
	})
	tr.EvictPN()
	// Warm the partition pages.
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for i := 0; i < 5000; i += 10 {
		lookupRIDs(t, tr, r, []byte(fmt.Sprintf("k%06d", i)))
	}
	before := e.dev.Stats()
	for i := 0; i < 5000; i += 10 {
		lookupRIDs(t, tr, r, []byte(fmt.Sprintf("k%06d", i)))
	}
	delta := e.dev.Stats().Sub(before)
	if delta.Reads != 0 {
		t.Fatalf("index-only lookups on warm cache performed %d device reads", delta.Reads)
	}
}

var _ = bytes.Compare // keep bytes import if tests shrink
