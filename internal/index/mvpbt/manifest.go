package mvpbt

import (
	"fmt"

	"mvpbt/internal/index/part"
	"mvpbt/internal/storage"
	"mvpbt/internal/util"
)

// Index-level manifest: persisted partition metadata (§4.7 — the filters
// are "persisted as part of the partition metadata"). SaveManifest writes
// the metadata of every persisted partition into fresh pages of the index
// file; LoadManifest rebuilds the partition list of a freshly constructed
// Tree over the same file. PN is main-memory state and is NOT covered —
// evict it first (or accept losing it, as a crash would; the WAL covers
// logical durability).

const manifestMagic = 0x4D56504254 // "MVPBT"

// SaveManifest persists the current partition metadata and returns the
// page run holding it.
func (t *Tree) SaveManifest() (startPage uint64, numPages int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.view.Load()
	body := util.PutUvarint(nil, manifestMagic)
	body = util.PutUvarint(body, uint64(t.nextNo))
	body = util.PutUvarint(body, uint64(len(v.parts)))
	for _, s := range v.parts {
		body = part.EncodeMeta(body, s)
	}
	n := (len(body) + 8 + storage.PageSize - 1) / storage.PageSize
	start, err := t.file.AllocRun(n)
	if err != nil {
		return 0, 0, fmt.Errorf("mvpbt: manifest alloc: %w", err)
	}
	framed := util.EncodeUint64(nil, uint64(len(body)))
	framed = append(framed, body...)
	page := make([]byte, storage.PageSize)
	for i := 0; i < n; i++ {
		lo := i * storage.PageSize
		hi := lo + storage.PageSize
		if hi > len(framed) {
			hi = len(framed)
		}
		copy(page, framed[lo:hi])
		for j := hi - lo; j < storage.PageSize; j++ {
			page[j] = 0
		}
		t.file.WritePage(start+uint64(i), page)
	}
	return start, n, nil
}

// LoadManifest reads a manifest written by SaveManifest and installs its
// partitions. The tree must be freshly constructed over the same file.
func (t *Tree) LoadManifest(startPage uint64, numPages int) (err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Corrupt metadata surfaces as an error, not a crash.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mvpbt: corrupt manifest: %v", r)
		}
	}()
	v := t.view.Load()
	if len(v.parts) != 0 || v.pn.Len() != 0 {
		return fmt.Errorf("mvpbt: LoadManifest on a non-empty tree")
	}
	framed := make([]byte, 0, numPages*storage.PageSize)
	buf := make([]byte, storage.PageSize)
	for i := 0; i < numPages; i++ {
		t.file.ReadPage(startPage+uint64(i), buf)
		framed = append(framed, buf...)
	}
	if len(framed) < 8 {
		return fmt.Errorf("mvpbt: manifest too short")
	}
	bl := util.DecodeUint64(framed)
	if int(bl)+8 > len(framed) {
		return fmt.Errorf("mvpbt: manifest truncated")
	}
	body := framed[8 : 8+int(bl)]
	i := 0
	read := func() uint64 {
		v, n := util.Uvarint(body[i:])
		i += n
		return v
	}
	if read() != manifestMagic {
		return fmt.Errorf("mvpbt: bad manifest magic")
	}
	t.nextNo = int(read())
	count := int(read())
	parts := make([]*part.Segment, 0, count)
	for j := 0; j < count; j++ {
		seg, n, err := part.DecodeMeta(t.pool, t.file, body[i:])
		if err != nil {
			return err
		}
		i += n
		parts = append(parts, seg)
	}
	t.view.Store(&treeView{pn: v.pn, parts: parts})
	return nil
}
