package mvpbt

import (
	"fmt"
	"testing"

	"mvpbt/internal/index"
	"mvpbt/internal/txn"
)

func TestMergePartitionsCollapsesToOne(t *testing.T) {
	e := newEnv(1024, 1<<26)
	tr := e.tree(Options{BloomBits: 10})
	cur := map[int]index.Ref{}
	for round := 0; round < 5; round++ {
		e.commit(func(tx *txn.Tx) {
			for k := 0; k < 50; k++ {
				key := []byte(fmt.Sprintf("t%02d", k))
				nr := e.ref()
				if p, ok := cur[k]; ok {
					tr.InsertReplacement(tx, key, nr, p.RID)
				} else {
					tr.InsertRegular(tx, key, nr)
				}
				cur[k] = nr
			}
		})
		tr.EvictPN()
	}
	if tr.NumPartitions() != 5 {
		t.Fatalf("partitions=%d want 5", tr.NumPartitions())
	}
	if err := tr.MergePartitions(); err != nil {
		t.Fatal(err)
	}
	if tr.NumPartitions() != 1 {
		t.Fatalf("after merge partitions=%d want 1", tr.NumPartitions())
	}
	if tr.Stats().Merges != 1 {
		t.Fatal("merge counter not bumped")
	}
	// Correctness: every tuple resolves to its newest version, once.
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for k := 0; k < 50; k++ {
		rids := lookupRIDs(t, tr, r, []byte(fmt.Sprintf("t%02d", k)))
		if len(rids) != 1 || rids[0] != cur[k].RID {
			t.Fatalf("tuple %d wrong after merge: %v want %v", k, rids, cur[k].RID)
		}
	}
	// Cross-partition GC: 5 versions per chain collapse to 1 record.
	if got := tr.Partitions()[0].NumRecords; got != 50 {
		t.Fatalf("merged partition has %d records, want 50", got)
	}
}

func TestMergeRespectsLongReader(t *testing.T) {
	e := newEnv(1024, 1<<26)
	tr := e.tree(Options{})
	v0 := e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("t"), v0) })
	tr.EvictPN()
	long := e.mgr.Begin()
	prev := v0
	for i := 0; i < 4; i++ {
		e.commit(func(tx *txn.Tx) {
			nr := e.ref()
			tr.InsertReplacement(tx, []byte("t"), nr, prev.RID)
			prev = nr
		})
		tr.EvictPN()
	}
	if err := tr.MergePartitions(); err != nil {
		t.Fatal(err)
	}
	if rids := lookupRIDs(t, tr, long, []byte("t")); len(rids) != 1 || rids[0] != v0.RID {
		t.Fatalf("merge destroyed version visible to long reader: %v", rids)
	}
	fresh := e.mgr.Begin()
	if rids := lookupRIDs(t, tr, fresh, []byte("t")); len(rids) != 1 || rids[0] != prev.RID {
		t.Fatalf("merge lost newest version: %v", rids)
	}
	e.mgr.Commit(long)
	e.mgr.Commit(fresh)
}

func TestMergeDropsDanglingTombstones(t *testing.T) {
	e := newEnv(1024, 1<<26)
	tr := e.tree(Options{})
	v0 := e.ref()
	e.commit(func(tx *txn.Tx) { tr.InsertRegular(tx, []byte("gone"), v0) })
	tr.EvictPN()
	e.commit(func(tx *txn.Tx) { tr.InsertTombstone(tx, []byte("gone"), v0.RID) })
	tr.EvictPN()
	if err := tr.MergePartitions(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range tr.Partitions() {
		total += p.NumRecords
	}
	if total != 0 {
		t.Fatalf("fully dead chain left %d records after merge", total)
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	if rids := lookupRIDs(t, tr, r, []byte("gone")); len(rids) != 0 {
		t.Fatalf("deleted tuple resurrected after merge: %v", rids)
	}
}

func TestMergeWithValuesPreserved(t *testing.T) {
	e := newEnv(1024, 1<<26)
	tr := e.tree(Options{Unique: true})
	e.commit(func(tx *txn.Tx) { tr.InsertRegularVal(tx, []byte("k"), e.ref(), []byte("v1")) })
	tr.EvictPN()
	r0 := e.mgr.Begin()
	var prevRID = func() index.Ref {
		var out index.Ref
		tr.Lookup(r0, []byte("k"), func(en index.Entry) bool { out = en.Ref; return false })
		return out
	}()
	e.mgr.Commit(r0)
	e.commit(func(tx *txn.Tx) { tr.InsertReplacementVal(tx, []byte("k"), e.ref(), prevRID.RID, []byte("v2")) })
	tr.EvictPN()
	if err := tr.MergePartitions(); err != nil {
		t.Fatal(err)
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	var got []byte
	tr.Lookup(r, []byte("k"), func(en index.Entry) bool {
		got = append([]byte(nil), en.Val...)
		return false
	})
	if string(got) != "v2" {
		t.Fatalf("value after merge: %q", got)
	}
}

func TestAutoMergeTriggered(t *testing.T) {
	e := newEnv(2048, 20<<10) // small partition buffer: frequent evictions
	tr := e.tree(Options{MaxPartitions: 3})
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 4000; i++ {
			tr.InsertRegular(tx, []byte(fmt.Sprintf("k%06d", i)), e.ref())
		}
	})
	if tr.NumPartitions() > 4 {
		t.Fatalf("auto-merge did not cap partitions: %d", tr.NumPartitions())
	}
	if tr.Stats().Merges == 0 {
		t.Fatal("auto-merge never ran")
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	for i := 0; i < 4000; i += 307 {
		if rids := lookupRIDs(t, tr, r, []byte(fmt.Sprintf("k%06d", i))); len(rids) != 1 {
			t.Fatalf("key %d lost across auto-merges", i)
		}
	}
}

func TestMergeRandomizedModelEquivalence(t *testing.T) {
	// Random history with interleaved evictions AND merges must match the
	// no-merge tree exactly.
	e1 := newEnv(2048, 1<<26)
	e2 := newEnv(2048, 1<<26)
	a := e1.tree(Options{Name: "merged", BloomBits: 10})
	b := e2.tree(Options{Name: "plain", BloomBits: 10})
	// Mirror rid sequences.
	r := newTestRand()
	cur := map[int]index.Ref{}
	for step := 0; step < 2500; step++ {
		k := r.Intn(80)
		key := []byte(fmt.Sprintf("key-%03d", k))
		ref1 := e1.ref()
		ref2 := index.Ref{RID: ref1.RID} // identical synthetic rid
		e2.rid = e1.rid
		tx1 := e1.mgr.Begin()
		tx2 := e2.mgr.Begin()
		if p, ok := cur[k]; ok {
			if r.Intn(12) == 0 {
				a.InsertTombstone(tx1, key, p.RID)
				b.InsertTombstone(tx2, key, p.RID)
				delete(cur, k)
			} else {
				a.InsertReplacement(tx1, key, ref1, p.RID)
				b.InsertReplacement(tx2, key, ref2, p.RID)
				cur[k] = ref1
			}
		} else {
			a.InsertRegular(tx1, key, ref1)
			b.InsertRegular(tx2, key, ref2)
			cur[k] = ref1
		}
		e1.mgr.Commit(tx1)
		e2.mgr.Commit(tx2)
		if r.Intn(200) == 0 {
			if err := a.EvictPN(); err != nil {
				t.Fatal(err)
			}
			if err := b.EvictPN(); err != nil {
				t.Fatal(err)
			}
		}
		if r.Intn(500) == 0 {
			if err := a.MergePartitions(); err != nil {
				t.Fatal(err)
			}
		}
	}
	r1 := e1.mgr.Begin()
	r2 := e2.mgr.Begin()
	defer e1.mgr.Commit(r1)
	defer e2.mgr.Commit(r2)
	for k := 0; k < 80; k++ {
		key := []byte(fmt.Sprintf("key-%03d", k))
		ra := lookupRIDs(t, a, r1, key)
		rb := lookupRIDs(t, b, r2, key)
		if len(ra) != len(rb) {
			t.Fatalf("key %d: merged=%v plain=%v", k, ra, rb)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("key %d: merged=%v plain=%v", k, ra, rb)
			}
		}
	}
}

func newTestRand() *testRand { return &testRand{s: 31337} }

type testRand struct{ s uint64 }

func (r *testRand) Intn(n int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(n))
}
