package btree

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/index"
	"mvpbt/internal/util"
)

func TestInsertDeleteRandomizedModel(t *testing.T) {
	tr, _ := newTree(t, 512)
	model := map[string]bool{} // key+body present?
	r := util.NewRand(31337)
	key := func(k int) []byte { return []byte(fmt.Sprintf("key-%05d", k)) }
	body := func(v int) []byte { return []byte(fmt.Sprintf("body-%03d", v)) }
	for step := 0; step < 15000; step++ {
		k, v := r.Intn(500), r.Intn(4)
		id := string(key(k)) + "|" + string(body(v))
		if r.Intn(4) != 0 {
			if err := tr.InsertEntry(key(k), body(v)); err != nil {
				t.Fatal(err)
			}
			model[id] = true
		} else {
			ok, err := tr.Delete(key(k), body(v))
			if err != nil {
				t.Fatal(err)
			}
			if ok != model[id] {
				t.Fatalf("step %d: delete(%s)=%v model=%v", step, id, ok, model[id])
			}
			delete(model, id)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
	}
	// Full scan matches the model exactly, in order.
	var prevKey, prevBody []byte
	seen := 0
	err := tr.ScanRaw([]byte("key-"), nil, func(k, b []byte) bool {
		if prevKey != nil && cmpEntry(prevKey, prevBody, k, b) >= 0 {
			t.Fatalf("scan out of order at %s|%s", k, b)
		}
		if !model[string(k)+"|"+string(b)] {
			t.Fatalf("scan returned deleted entry %s|%s", k, b)
		}
		prevKey = append(prevKey[:0], k...)
		prevBody = append(prevBody[:0], b...)
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(model) {
		t.Fatalf("scan saw %d entries, model %d", seen, len(model))
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr, _ := newTree(t, 4096)
	for i := 0; i < 60000; i++ {
		if err := tr.Insert(ik(i), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(); h < 3 || h > 6 {
		t.Fatalf("height %d for 60k sorted inserts (expected 3..6)", h)
	}
}

func TestLargeEntriesSplitCorrectly(t *testing.T) {
	tr, _ := newTree(t, 1024)
	// Near-max entries force splits with very few entries per node.
	big := bytes.Repeat([]byte("v"), MaxEntrySize-40)
	for i := 0; i < 60; i++ {
		if err := tr.InsertEntry(ik(i), big); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	tr.ScanRaw(ik(0), nil, func(k, b []byte) bool {
		if !bytes.Equal(b, big) {
			t.Fatalf("body corrupted at %s", k)
		}
		count++
		return true
	})
	if count != 60 {
		t.Fatalf("scan saw %d of 60 large entries", count)
	}
}

func TestScanFromMiddleOfDuplicates(t *testing.T) {
	tr, _ := newTree(t, 512)
	// Enough duplicates of one key to span multiple leaves.
	for v := 0; v < 2000; v++ {
		if err := tr.Insert([]byte("dup"), ref(v)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Insert([]byte("zzz"), ref(0))
	count := 0
	err := tr.LookupCandidates([]byte("dup"), func(e index.Entry) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2000 {
		t.Fatalf("duplicates across leaves: found %d of 2000", count)
	}
}
