// Package btree implements the mutable, paged B⁺-Tree baseline: slotted
// 8 KiB nodes fetched through the shared buffer pool, root-to-leaf
// traversal, node splits, and a leaf sibling chain for range scans. It is
// version-oblivious: entries are (key, body) pairs treated as independent
// tuples, maintained in place — which is exactly the random-write,
// candidate-returning behaviour the paper's B-Tree baseline exhibits.
//
// Non-unique keys are supported by ordering entries on the composite
// (key, body); every entry is unique under that ordering.
package btree

import (
	"bytes"
	"fmt"
	"sync"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index"
	"mvpbt/internal/page"
	"mvpbt/internal/sfile"
	"mvpbt/internal/util"
)

// Client-header layout: [0] level, [1:9] right sibling page number + 1
// (0 = none).
const (
	hdrLevel   = 0
	hdrSibling = 1
)

// MaxEntrySize bounds key+body so that any two entries fit in a node,
// guaranteeing splits always succeed.
const MaxEntrySize = 2048

// Tree is a paged B⁺-Tree. Safe for concurrent use via a coarse lock.
type Tree struct {
	mu   sync.Mutex
	pool *buffer.Pool
	file *sfile.File
	root uint64
	h    int // height: 1 = root is a leaf
	n    int // live entries
}

// New creates an empty tree stored in file.
func New(pool *buffer.Pool, file *sfile.File) (*Tree, error) {
	t := &Tree{pool: pool, file: file}
	fr, pageNo, err := pool.NewPage(file)
	if err != nil {
		return nil, err
	}
	p := page.Wrap(fr.Data())
	p.Init()
	setLevel(p, 0)
	setSibling(p, 0)
	pool.Unpin(fr, true)
	t.root = pageNo
	t.h = 1
	return t, nil
}

func setLevel(p page.Page, l int) { p.Client()[hdrLevel] = byte(l) }
func level(p page.Page) int       { return int(p.Client()[hdrLevel]) }
func setSibling(p page.Page, s uint64) {
	b := p.Client()[hdrSibling : hdrSibling+8]
	for i := 7; i >= 0; i-- {
		b[i] = byte(s)
		s >>= 8
	}
}
func sibling(p page.Page) uint64 {
	b := p.Client()[hdrSibling : hdrSibling+8]
	var s uint64
	for i := 0; i < 8; i++ {
		s = s<<8 | uint64(b[i])
	}
	return s
}

// Leaf records: [klen varint][key][body].
// Internal records: [klen varint][key][blen varint][body][child 8 bytes].

func encodeLeaf(key, body []byte) []byte {
	out := util.PutUvarint(nil, uint64(len(key)))
	out = append(out, key...)
	return append(out, body...)
}

func decodeLeaf(rec []byte) (key, body []byte) {
	kl, n := util.Uvarint(rec)
	return rec[n : n+int(kl)], rec[n+int(kl):]
}

func encodeInternal(key, body []byte, child uint64) []byte {
	out := util.PutUvarint(nil, uint64(len(key)))
	out = append(out, key...)
	out = util.PutUvarint(out, uint64(len(body)))
	out = append(out, body...)
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(child)
		child >>= 8
	}
	return append(out, b[:]...)
}

func decodeInternal(rec []byte) (key, body []byte, child uint64) {
	kl, n := util.Uvarint(rec)
	key = rec[n : n+int(kl)]
	rest := rec[n+int(kl):]
	bl, n2 := util.Uvarint(rest)
	body = rest[n2 : n2+int(bl)]
	cb := rest[n2+int(bl):]
	for i := 0; i < 8; i++ {
		child = child<<8 | uint64(cb[i])
	}
	return key, body, child
}

// cmpEntry orders entries by (key, body).
func cmpEntry(k1, b1, k2, b2 []byte) int {
	if c := bytes.Compare(k1, k2); c != 0 {
		return c
	}
	return bytes.Compare(b1, b2)
}

// nodeKey returns the (key, body) of slot i, decoding per node level.
func nodeKey(p page.Page, i int) (key, body []byte) {
	rec := p.Get(i)
	if level(p) == 0 {
		return decodeLeaf(rec)
	}
	k, b, _ := decodeInternal(rec)
	return k, b
}

// searchNode returns the first slot whose entry is >= (key, body).
func searchNode(p page.Page, key, body []byte) int {
	lo, hi := 0, p.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		k, b := nodeKey(p, mid)
		if cmpEntry(k, b, key, body) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the slot index of the child to descend into for
// (key, body): the rightmost separator <= it, or -1 for child0. Internal
// nodes store child0 in the client header bytes [9:17].
const hdrChild0 = 9

func setChild0(p page.Page, c uint64) {
	b := p.Client()[hdrChild0 : hdrChild0+8]
	for i := 7; i >= 0; i-- {
		b[i] = byte(c)
		c >>= 8
	}
}

func child0(p page.Page) uint64 {
	b := p.Client()[hdrChild0 : hdrChild0+8]
	var c uint64
	for i := 0; i < 8; i++ {
		c = c<<8 | uint64(b[i])
	}
	return c
}

func childFor(p page.Page, key, body []byte) (slot int, child uint64) {
	// Upper bound: first separator STRICTLY greater than (key, body); the
	// child to follow precedes it. A key equal to a separator descends into
	// that separator's child (its subtree holds keys >= separator).
	lo, hi := 0, p.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		k, b := nodeKey(p, mid)
		if cmpEntry(k, b, key, body) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1, child0(p)
	}
	_, _, c := decodeInternal(p.Get(lo - 1))
	return lo - 1, c
}

// pathElem records the traversal for split propagation.
type pathElem struct {
	pageNo uint64
	slot   int // separator slot followed (-1 = child0)
}

// Insert adds the entry (key, ref). Exact duplicates are ignored.
func (t *Tree) Insert(key []byte, ref index.Ref) error {
	return t.InsertEntry(key, index.EncodeRef(nil, ref))
}

// InsertEntry adds a raw (key, body) entry.
func (t *Tree) InsertEntry(key, body []byte) error {
	if len(key)+len(body) > MaxEntrySize {
		return fmt.Errorf("btree: entry too large (%d bytes)", len(key)+len(body))
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	var path []pathElem
	pageNo := t.root
	for {
		fr, err := t.pool.Get(t.file, pageNo)
		if err != nil {
			return err
		}
		p := page.Wrap(fr.Data())
		if level(p) == 0 {
			err := t.insertLeaf(fr, p, pageNo, key, body, path)
			return err
		}
		slot, child := childFor(p, key, body)
		t.pool.Unpin(fr, false)
		path = append(path, pathElem{pageNo: pageNo, slot: slot})
		pageNo = child
	}
}

// insertLeaf places (key, body) in the pinned leaf, splitting as needed.
// It consumes the pin.
func (t *Tree) insertLeaf(fr *buffer.Frame, p page.Page, pageNo uint64, key, body []byte, path []pathElem) error {
	pos := searchNode(p, key, body)
	if pos < p.NumSlots() {
		k, b := nodeKey(p, pos)
		if cmpEntry(k, b, key, body) == 0 {
			t.pool.Unpin(fr, false)
			return nil // exact duplicate
		}
	}
	rec := encodeLeaf(key, body)
	if p.InsertAt(pos, rec) {
		t.pool.Unpin(fr, true)
		t.n++
		return nil
	}
	// Split, then insert into the proper half.
	rightNo, sepKey, sepBody, err := t.splitNode(p)
	if err != nil {
		t.pool.Unpin(fr, true)
		return err
	}
	target, targetNo := fr, pageNo
	var rfr *buffer.Frame
	if cmpEntry(key, body, sepKey, sepBody) >= 0 {
		rfr, err = t.pool.Get(t.file, rightNo)
		if err != nil {
			t.pool.Unpin(fr, true)
			return err
		}
		target, targetNo = rfr, rightNo
	}
	tp := page.Wrap(target.Data())
	pos = searchNode(tp, key, body)
	ok := tp.InsertAt(pos, rec)
	if rfr != nil {
		t.pool.Unpin(fr, true)
		t.pool.Unpin(rfr, true)
	} else {
		t.pool.Unpin(fr, true)
	}
	if !ok {
		return fmt.Errorf("btree: insert failed after split (page %d)", targetNo)
	}
	t.n++
	return t.insertSeparator(path, sepKey, sepBody, rightNo)
}

// splitNode moves the upper half of the pinned node p into a fresh right
// node and returns the right node's page number and the separator (the
// first entry of the right node). For internal nodes the separator entry
// is REMOVED from the right node and its child becomes the right node's
// child0 (B-tree key promotion).
func (t *Tree) splitNode(p page.Page) (uint64, []byte, []byte, error) {
	rfr, rightNo, err := t.pool.NewPage(t.file)
	if err != nil {
		return 0, nil, nil, err
	}
	rp := page.Wrap(rfr.Data())
	rp.Init()
	setLevel(rp, level(p))

	n := p.NumSlots()
	mid := n / 2
	// Copy upper half into the right node.
	for i := mid; i < n; i++ {
		if !rp.InsertAt(rp.NumSlots(), p.Get(i)) {
			t.pool.Unpin(rfr, true)
			return 0, nil, nil, fmt.Errorf("btree: split copy overflow")
		}
	}
	for i := n - 1; i >= mid; i-- {
		p.DeleteAt(i)
	}
	p.Compact()

	var sepKey, sepBody []byte
	if level(p) == 0 {
		k, b := decodeLeaf(rp.Get(0))
		sepKey = append([]byte(nil), k...)
		sepBody = append([]byte(nil), b...)
		// Leaf sibling chain.
		setSibling(rp, sibling(p))
		setSibling(p, rightNo+1)
	} else {
		k, b, c := decodeInternal(rp.Get(0))
		sepKey = append([]byte(nil), k...)
		sepBody = append([]byte(nil), b...)
		setChild0(rp, c)
		rp.DeleteAt(0)
	}
	t.pool.Unpin(rfr, true)
	return rightNo, sepKey, sepBody, nil
}

// insertSeparator inserts (sepKey, sepBody → rightNo) into the parent,
// recursing up the remembered path; an empty path means the root split.
func (t *Tree) insertSeparator(path []pathElem, sepKey, sepBody []byte, rightNo uint64) error {
	if len(path) == 0 {
		// Root split: new root with old root as child0.
		fr, newRootNo, err := t.pool.NewPage(t.file)
		if err != nil {
			return err
		}
		p := page.Wrap(fr.Data())
		p.Init()
		setLevel(p, t.h)
		setChild0(p, t.root)
		ok := p.InsertAt(0, encodeInternal(sepKey, sepBody, rightNo))
		t.pool.Unpin(fr, true)
		if !ok {
			return fmt.Errorf("btree: root separator overflow")
		}
		t.root = newRootNo
		t.h++
		return nil
	}
	parent := path[len(path)-1]
	fr, err := t.pool.Get(t.file, parent.pageNo)
	if err != nil {
		return err
	}
	p := page.Wrap(fr.Data())
	pos := searchNode(p, sepKey, sepBody)
	rec := encodeInternal(sepKey, sepBody, rightNo)
	if p.InsertAt(pos, rec) {
		t.pool.Unpin(fr, true)
		return nil
	}
	prNo, psk, psb, err := t.splitNode(p)
	if err != nil {
		t.pool.Unpin(fr, true)
		return err
	}
	// Choose the half that receives the new separator.
	if cmpEntry(sepKey, sepBody, psk, psb) >= 0 {
		rfr, err2 := t.pool.Get(t.file, prNo)
		if err2 != nil {
			t.pool.Unpin(fr, true)
			return err2
		}
		rp := page.Wrap(rfr.Data())
		ok := rp.InsertAt(searchNode(rp, sepKey, sepBody), rec)
		t.pool.Unpin(rfr, true)
		t.pool.Unpin(fr, true)
		if !ok {
			return fmt.Errorf("btree: separator insert failed after split")
		}
	} else {
		ok := p.InsertAt(searchNode(p, sepKey, sepBody), rec)
		t.pool.Unpin(fr, true)
		if !ok {
			return fmt.Errorf("btree: separator insert failed after split")
		}
	}
	return t.insertSeparator(path[:len(path)-1], psk, psb, prNo)
}

// findLeaf descends to the leaf that would hold (key, body).
func (t *Tree) findLeaf(key, body []byte) (uint64, error) {
	pageNo := t.root
	for {
		fr, err := t.pool.Get(t.file, pageNo)
		if err != nil {
			return 0, err
		}
		p := page.Wrap(fr.Data())
		if level(p) == 0 {
			t.pool.Unpin(fr, false)
			return pageNo, nil
		}
		_, child := childFor(p, key, body)
		t.pool.Unpin(fr, false)
		pageNo = child
	}
}

// LookupCandidates implements index.Candidates.
func (t *Tree) LookupCandidates(key []byte, fn func(index.Entry) bool) error {
	return t.ScanCandidates(key, append(append([]byte(nil), key...), 0), fn)
}

// ScanCandidates implements index.Candidates: all entries in [lo, hi).
func (t *Tree) ScanCandidates(lo, hi []byte, fn func(index.Entry) bool) error {
	return t.ScanRaw(lo, hi, func(key, body []byte) bool {
		return fn(index.Entry{Key: key, Ref: index.DecodeRef(body)})
	})
}

// ScanRaw walks entries in [lo, hi) in order, calling fn with key and raw
// body. Returning false stops. nil hi means +infinity.
func (t *Tree) ScanRaw(lo, hi []byte, fn func(key, body []byte) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	leafNo, err := t.findLeaf(lo, nil)
	if err != nil {
		return err
	}
	pos := -1
	for {
		fr, err := t.pool.Get(t.file, leafNo)
		if err != nil {
			return err
		}
		p := page.Wrap(fr.Data())
		if pos < 0 {
			pos = searchNode(p, lo, nil)
		}
		for ; pos < p.NumSlots(); pos++ {
			k, b := decodeLeaf(p.Get(pos))
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				t.pool.Unpin(fr, false)
				return nil
			}
			kc := append([]byte(nil), k...)
			bc := append([]byte(nil), b...)
			if !fn(kc, bc) {
				t.pool.Unpin(fr, false)
				return nil
			}
		}
		sib := sibling(p)
		t.pool.Unpin(fr, false)
		if sib == 0 {
			return nil
		}
		leafNo = sib - 1
		pos = 0
	}
}

// Delete removes the exact entry (key, body), reporting whether it
// existed. No rebalancing is performed (PostgreSQL-style lazy deletion).
func (t *Tree) Delete(key, body []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	leafNo, err := t.findLeaf(key, body)
	if err != nil {
		return false, err
	}
	fr, err := t.pool.Get(t.file, leafNo)
	if err != nil {
		return false, err
	}
	p := page.Wrap(fr.Data())
	pos := searchNode(p, key, body)
	if pos < p.NumSlots() {
		k, b := decodeLeaf(p.Get(pos))
		if cmpEntry(k, b, key, body) == 0 {
			p.DeleteAt(pos)
			t.pool.Unpin(fr, true)
			t.n--
			return true, nil
		}
	}
	t.pool.Unpin(fr, false)
	return false, nil
}

// Len returns the number of live entries.
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Height returns the number of levels.
func (t *Tree) Height() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h
}

// Insert of index.Candidates requires this adapter signature; assert it.
var _ index.Candidates = (*candidateAdapter)(nil)

// candidateAdapter binds Tree to index.Candidates (the raw Tree exposes
// richer signatures).
type candidateAdapter struct{ t *Tree }

// AsCandidates returns the tree as a version-oblivious index.
func (t *Tree) AsCandidates() index.Candidates { return &candidateAdapter{t: t} }

func (a *candidateAdapter) Insert(key []byte, ref index.Ref) error { return a.t.Insert(key, ref) }
func (a *candidateAdapter) LookupCandidates(key []byte, fn func(index.Entry) bool) error {
	return a.t.LookupCandidates(key, fn)
}
func (a *candidateAdapter) ScanCandidates(lo, hi []byte, fn func(index.Entry) bool) error {
	return a.t.ScanCandidates(lo, hi, fn)
}
