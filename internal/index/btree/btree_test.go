package btree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/util"
)

func newTree(t *testing.T, frames int) (*Tree, *ssd.Device) {
	t.Helper()
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	fm := sfile.NewManager(dev)
	tr, err := New(buffer.New(frames), fm.Create("idx", sfile.ClassIndex))
	if err != nil {
		t.Fatal(err)
	}
	return tr, dev
}

func ik(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func ref(i int) index.Ref {
	return index.Ref{RID: storage.RecordID{Page: storage.NewPageID(1, uint64(i)), Slot: uint16(i)}, VID: uint64(i)}
}

func TestInsertLookupSmall(t *testing.T) {
	tr, _ := newTree(t, 64)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(ik(i), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		found := 0
		err := tr.LookupCandidates(ik(i), func(e index.Entry) bool {
			if e.Ref.VID != uint64(i) {
				t.Fatalf("key %d resolved to vid %d", i, e.Ref.VID)
			}
			found++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if found != 1 {
			t.Fatalf("key %d found %d times", i, found)
		}
	}
}

func TestLookupAbsent(t *testing.T) {
	tr, _ := newTree(t, 64)
	for i := 0; i < 50; i++ {
		tr.Insert(ik(i*2), ref(i))
	}
	err := tr.LookupCandidates(ik(33), func(index.Entry) bool {
		t.Fatal("absent key matched")
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitsAndHeight(t *testing.T) {
	tr, _ := newTree(t, 512)
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tr.Insert(ik(i), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("tree never split: height=%d", tr.Height())
	}
	if tr.Len() != n {
		t.Fatalf("Len=%d want %d", tr.Len(), n)
	}
	// Every key still findable.
	for i := 0; i < n; i += 997 {
		found := false
		tr.LookupCandidates(ik(i), func(index.Entry) bool { found = true; return false })
		if !found {
			t.Fatalf("key %d lost after splits", i)
		}
	}
}

func TestRandomInsertOrderedScan(t *testing.T) {
	tr, _ := newTree(t, 512)
	r := util.NewRand(42)
	perm := make([]int, 5000)
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, i := range perm {
		if err := tr.Insert(ik(i), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	var keys [][]byte
	err := tr.ScanCandidates(ik(0), nil, func(e index.Entry) bool {
		keys = append(keys, e.Key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5000 {
		t.Fatalf("scan returned %d keys, want 5000", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Fatal("scan not in key order")
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr, _ := newTree(t, 128)
	for i := 0; i < 1000; i++ {
		tr.Insert(ik(i), ref(i))
	}
	count := 0
	tr.ScanCandidates(ik(100), ik(200), func(e index.Entry) bool {
		if bytes.Compare(e.Key, ik(100)) < 0 || bytes.Compare(e.Key, ik(200)) >= 0 {
			t.Fatalf("key %q out of range", e.Key)
		}
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("range returned %d entries, want 100", count)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 128)
	for i := 0; i < 1000; i++ {
		tr.Insert(ik(i), ref(i))
	}
	count := 0
	tr.ScanCandidates(ik(0), nil, func(index.Entry) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop ignored: %d", count)
	}
}

func TestNonUniqueKeys(t *testing.T) {
	tr, _ := newTree(t, 256)
	// 50 versions of the same key: the version-oblivious index treats them
	// as separate tuples (paper §2).
	for v := 0; v < 50; v++ {
		if err := tr.Insert([]byte("hot-tuple"), ref(v)); err != nil {
			t.Fatal(err)
		}
	}
	var vids []uint64
	tr.LookupCandidates([]byte("hot-tuple"), func(e index.Entry) bool {
		vids = append(vids, e.Ref.VID)
		return true
	})
	if len(vids) != 50 {
		t.Fatalf("got %d candidates, want 50", len(vids))
	}
}

func TestDuplicateInsertIgnored(t *testing.T) {
	tr, _ := newTree(t, 64)
	tr.Insert(ik(1), ref(1))
	tr.Insert(ik(1), ref(1))
	if tr.Len() != 1 {
		t.Fatalf("duplicate not ignored: Len=%d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTree(t, 128)
	for i := 0; i < 100; i++ {
		tr.Insert(ik(i), ref(i))
	}
	body := index.EncodeRef(nil, ref(42))
	ok, err := tr.Delete(ik(42), body)
	if err != nil || !ok {
		t.Fatalf("delete failed: %v %v", ok, err)
	}
	ok, _ = tr.Delete(ik(42), body)
	if ok {
		t.Fatal("double delete succeeded")
	}
	found := false
	tr.LookupCandidates(ik(42), func(index.Entry) bool { found = true; return false })
	if found {
		t.Fatal("deleted entry still visible")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len=%d want 99", tr.Len())
	}
}

func TestInPlaceMaintenanceCausesRandomWrites(t *testing.T) {
	// The I/O signature that motivates the paper: under buffer pressure a
	// mutable B-Tree's dirty node evictions are random writes.
	tr, dev := newTree(t, 32)
	r := util.NewRand(1)
	for i := 0; i < 20000; i++ {
		if err := tr.Insert(ik(r.Intn(1000000)), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := dev.Stats()
	if s.RandWrites < 100 {
		t.Fatalf("expected heavy random writes from in-place maintenance, got %+v", s)
	}
}

func TestModelComparison(t *testing.T) {
	tr, _ := newTree(t, 256)
	model := map[string][]uint64{}
	r := util.NewRand(3)
	for step := 0; step < 8000; step++ {
		k := r.Intn(300)
		key := string(ik(k))
		v := uint64(r.Intn(10))
		dup := false
		for _, x := range model[key] {
			if x == v {
				dup = true
			}
		}
		if err := tr.Insert(ik(k), index.Ref{VID: v, RID: storage.RecordID{Page: storage.NewPageID(1, v), Slot: 0}}); err != nil {
			t.Fatal(err)
		}
		if !dup {
			model[key] = append(model[key], v)
		}
	}
	total := 0
	for _, vs := range model {
		total += len(vs)
	}
	if tr.Len() != total {
		t.Fatalf("Len=%d model=%d", tr.Len(), total)
	}
	for k, vs := range model {
		var got []uint64
		tr.LookupCandidates([]byte(k), func(e index.Entry) bool {
			got = append(got, e.Ref.VID)
			return true
		})
		if len(got) != len(vs) {
			t.Fatalf("key %s: got %d entries want %d", k, len(got), len(vs))
		}
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr, _ := newTree(t, 256)
	keys := []string{"", "a", "aa", "ab", "b", "ba", "z", "zzzzzzzzzzzzzzzzzzzzzz"}
	for i, k := range keys {
		if k == "" {
			continue // empty keys unsupported at page level; skip
		}
		if err := tr.Insert([]byte(k), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	tr.ScanCandidates([]byte("a"), nil, func(e index.Entry) bool {
		got = append(got, string(e.Key))
		return true
	})
	want := []string{"a", "aa", "ab", "b", "ba", "z", "zzzzzzzzzzzzzzzzzzzzzz"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch: %v", got)
		}
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	tr, _ := newTree(t, 64)
	if err := tr.InsertEntry(make([]byte, MaxEntrySize+1), nil); err == nil {
		t.Fatal("oversized entry accepted")
	}
}
