// Package index defines the contracts shared by the four index
// implementations the paper evaluates: the mutable B⁺-Tree baseline
// (version-oblivious), the Partitioned B-Tree (version-oblivious,
// append-based), the Multi-Version Partitioned B-Tree (version-aware,
// index-only visibility check) and the LSM-Tree (KV baseline).
//
// Version-oblivious indexes return *candidates*: every matching index
// entry, regardless of version visibility. The caller must verify each
// candidate against the base table (random reads — the cost of Figure 2).
// The version-aware MV-PBT returns only entries visible to the calling
// transaction.
package index

import (
	"bytes"

	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// Ref is what an index entry points at: a physical RecordID, a logical VID
// (indirection layer), or both (§3.5).
type Ref struct {
	RID storage.RecordID
	VID uint64
}

// EncodeRef appends the fixed encoding of r to dst (RecordID then VID).
func EncodeRef(dst []byte, r Ref) []byte {
	dst = storage.EncodeRecordID(dst, r.RID)
	var b [8]byte
	v := r.VID
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return append(dst, b[:]...)
}

// RefLen is the encoded size of a Ref.
const RefLen = storage.RecordIDLen + 8

// DecodeRef reads a Ref written by EncodeRef.
func DecodeRef(src []byte) Ref {
	r := Ref{RID: storage.DecodeRecordID(src)}
	for i := 0; i < 8; i++ {
		r.VID = r.VID<<8 | uint64(src[storage.RecordIDLen+i])
	}
	return r
}

// Entry is one index result.
type Entry struct {
	Key []byte
	Ref Ref
	// Val is the inline payload for clustered (multi-version store)
	// indexes; nil for reference-only indexes.
	Val []byte
}

// Candidates is the version-oblivious index contract: results are version
// candidates that require a base-table visibility check.
type Candidates interface {
	// Insert adds an entry. Version-oblivious indexes are maintained on
	// tuple insert, on every update that creates a new entry-point
	// (physical references), and on key updates.
	Insert(key []byte, ref Ref) error
	// LookupCandidates calls fn for every entry with exactly this key, in
	// arbitrary version order. Returning false stops the scan.
	LookupCandidates(key []byte, fn func(Entry) bool) error
	// ScanCandidates calls fn for every entry with lo <= key < hi in key
	// order (ties in arbitrary version order).
	ScanCandidates(lo, hi []byte, fn func(Entry) bool) error
}

// VersionAware is the MV-PBT contract: results are already filtered by the
// index-only visibility check of §4.4 — no base-table access needed.
type VersionAware interface {
	// InsertRegular records a newly inserted tuple version.
	InsertRegular(tx *txn.Tx, key []byte, ref Ref) error
	// InsertReplacement records a non-key update: newRef supersedes the
	// version at oldRID (§4.1 replacement record).
	InsertReplacement(tx *txn.Tx, key []byte, newRef Ref, oldRID storage.RecordID) error
	// InsertKeyUpdate records an index-key update: an anti-record for
	// (oldKey, oldRID) plus a replacement record for (newKey, newRef).
	InsertKeyUpdate(tx *txn.Tx, oldKey, newKey []byte, newRef Ref, oldRID storage.RecordID) error
	// InsertTombstone records a tuple deletion, extinguishing the chain
	// whose newest version is oldRID.
	InsertTombstone(tx *txn.Tx, key []byte, oldRID storage.RecordID) error
	// Lookup calls fn for every entry with this key VISIBLE to tx.
	Lookup(tx *txn.Tx, key []byte, fn func(Entry) bool) error
	// Scan calls fn for every visible entry with lo <= key < hi.
	Scan(tx *txn.Tx, lo, hi []byte, fn func(Entry) bool) error
}

// KeyInRange reports lo <= key < hi, with nil hi meaning +infinity.
func KeyInRange(key, lo, hi []byte) bool {
	if bytes.Compare(key, lo) < 0 {
		return false
	}
	return hi == nil || bytes.Compare(key, hi) < 0
}
