package part

import (
	"fmt"

	"mvpbt/internal/bloom"
	"mvpbt/internal/buffer"
	"mvpbt/internal/sfile"
	"mvpbt/internal/util"
)

// Partition metadata persistence (§4.7: "BF ... is persisted as part of
// the partition metadata"). EncodeMeta serializes everything needed to
// rehydrate a Segment — page layout, key and timestamp bounds, and the
// serialized filters; DecodeMeta reconstructs the segment over the same
// file. The index-level manifest (a list of encoded segments) lives in
// mvpbt.SaveManifest / LoadManifest.

// EncodeMeta appends the segment's metadata encoding to dst.
func EncodeMeta(dst []byte, s *Segment) []byte {
	dst = util.PutUvarint(dst, uint64(s.No))
	dst = util.PutUvarint(dst, s.StartPage)
	dst = util.PutUvarint(dst, uint64(s.NumPages))
	dst = util.PutUvarint(dst, uint64(s.NumLeaves))
	dst = util.PutUvarint(dst, uint64(s.rootRel))
	dst = util.PutUvarint(dst, uint64(s.height))
	dst = util.PutBytes(dst, s.MinKey)
	dst = util.PutBytes(dst, s.MaxKey)
	dst = util.PutUvarint(dst, s.MinTS)
	dst = util.PutUvarint(dst, s.MaxTS)
	dst = util.PutUvarint(dst, uint64(s.NumRecords))
	dst = util.PutUvarint(dst, uint64(s.SizeBytes))
	if s.Filter != nil {
		dst = append(dst, 1)
		dst = util.PutBytes(dst, s.Filter.MarshalBinary())
	} else {
		dst = append(dst, 0)
	}
	if s.PFilter != nil {
		dst = append(dst, 1)
		dst = util.PutBytes(dst, s.PFilter.MarshalBinary())
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// DecodeMeta reconstructs a segment over (pool, file) from an encoding
// produced by EncodeMeta, returning the segment and the bytes consumed.
func DecodeMeta(pool *buffer.Pool, file *sfile.File, b []byte) (*Segment, int, error) {
	s := &Segment{pool: pool, file: file}
	i := 0
	read := func() uint64 {
		v, n := util.Uvarint(b[i:])
		i += n
		return v
	}
	s.No = int(read())
	s.StartPage = read()
	s.NumPages = int(read())
	s.NumLeaves = int(read())
	s.rootRel = int(read())
	s.height = int(read())
	mk, n := util.GetBytes(b[i:])
	i += n
	s.MinKey = append([]byte(nil), mk...)
	xk, n := util.GetBytes(b[i:])
	i += n
	s.MaxKey = append([]byte(nil), xk...)
	s.MinTS = read()
	s.MaxTS = read()
	s.NumRecords = int(read())
	s.SizeBytes = int(read())
	if s.NumPages <= 0 || s.NumLeaves <= 0 || s.rootRel >= s.NumPages {
		return nil, 0, fmt.Errorf("part: corrupt segment metadata")
	}
	if b[i] == 1 {
		i++
		fb, n := util.GetBytes(b[i:])
		i += n
		f, _ := bloom.UnmarshalFilter(fb)
		s.Filter = f
	} else {
		i++
	}
	if b[i] == 1 {
		i++
		pb, n := util.GetBytes(b[i:])
		i += n
		p, _ := bloom.UnmarshalPrefixFilter(pb)
		s.PFilter = p
	} else {
		i++
	}
	s.initCache()
	return s, i, nil
}
