// Package part provides the partition machinery shared by the Partitioned
// B-Tree and the Multi-Version Partitioned B-Tree: immutable, bulk-built
// B-Tree segments (dense-packed prefix-truncated leaves, bottom-up internal
// levels, strictly sequential write-out — paper §4.5/4.7), per-partition
// bloom and prefix-bloom filters, and the shared MV-PBT buffer that evicts
// whole main-memory partitions, largest victim first.
package part

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"mvpbt/internal/bloom"
	"mvpbt/internal/buffer"
	"mvpbt/internal/page"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/util"
)

// KV is one index record for bulk building: an opaque body under a search
// key. Records must be handed to Build in final sort order.
type KV struct {
	Key  []byte
	Body []byte
}

// BuildOptions tunes segment construction.
type BuildOptions struct {
	// BloomBitsPerKey sizes the partition bloom filter; 0 disables it.
	BloomBitsPerKey int
	// PrefixLen enables a prefix bloom filter over the leading PrefixLen
	// key bytes; 0 disables it.
	PrefixLen int
	// FillFraction is the leaf fill target (1.0 = dense-packed, the
	// default; in-memory B-tree nodes use ~0.67 per §4.7).
	FillFraction float64
}

// Leaf records are front-coded against their predecessor within the page:
// [sharedLen varint][suffixLen varint][suffix][body]. Internal records:
// [keyLen varint][key][child varint] with child page numbers RELATIVE to
// the segment start, so pages can be written sequentially without
// patching.

// Segment is one immutable on-disk partition: a dense B-Tree over sorted
// records, plus filters and metadata. Reads go through the shared buffer
// pool; the segment itself is read-only.
type Segment struct {
	No         int // partition number
	pool       *buffer.Pool
	file       *sfile.File
	StartPage  uint64
	NumPages   int
	NumLeaves  int
	rootRel    int // page number of the root, relative to StartPage
	height     int
	MinKey     []byte
	MaxKey     []byte
	MinTS      uint64
	MaxTS      uint64
	NumRecords int
	SizeBytes  int
	Filter     *bloom.Filter
	PFilter    *bloom.PrefixFilter

	// Decoded-page caches, filled lazily on first access. Segments are
	// immutable, so any published decode stays valid; entries are atomic
	// pointers because segment readers run lock-free under the index's
	// snapshot protocol. Concurrent readers may race to decode the same
	// page — wasted work, never an inconsistent read. While a page is
	// cached, reads of it bypass the buffer pool (and its shard latches)
	// entirely; a pool eviction hook drops the decoded form when the
	// backing page leaves the pool, so the cache saves decode CPU without
	// changing the pool's I/O behavior.
	leaves []atomic.Pointer[[]KV]    // by leaf page rel: decoded records
	inner  []atomic.Pointer[sepNode] // by rel-NumLeaves: decoded separators
	hookID int                       // pool eviction-hook handle
}

// sepNode is one decoded internal node: child separator keys (first key of
// each child subtree) and relative child page numbers, in slot order.
type sepNode struct {
	keys  [][]byte
	child []int
}

// initCache sizes the decoded-page caches and couples them to buffer
// residency; called once at construction.
func (s *Segment) initCache() {
	s.leaves = make([]atomic.Pointer[[]KV], s.NumLeaves)
	if n := s.NumPages - s.NumLeaves; n > 0 {
		s.inner = make([]atomic.Pointer[sepNode], n)
	}
	s.hookID = s.pool.AddEvictHook(s.file, s.StartPage, s.NumPages, s.dropDecoded)
}

// dropDecoded discards the decoded form of relative page rel. Runs under a
// pool shard latch (eviction hook): atomic stores only.
func (s *Segment) dropDecoded(rel int) {
	if rel < len(s.leaves) {
		s.leaves[rel].Store(nil)
	} else if slot := rel - s.NumLeaves; slot >= 0 && slot < len(s.inner) {
		s.inner[slot].Store(nil)
	}
}

// Build writes a segment from sorted records and returns its metadata. The
// page writes form one sequential run. Build returns nil for an empty
// record set.
//
// minTS/maxTS are caller-provided timestamp bounds of the records (the
// Minimum Transaction Timestamp partition filter of §4.2); pass 0,0 if
// unused.
func Build(pool *buffer.Pool, file *sfile.File, no int, kvs []KV, minTS, maxTS uint64, opts BuildOptions) (*Segment, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	fill := opts.FillFraction
	if fill <= 0 || fill > 1 {
		fill = 1.0
	}
	// ---- Pack leaves (in memory first: page numbers of internal levels
	// depend on the leaf count, and the final write-out must be one
	// sequential pass in page order).
	var pages [][]byte
	newNode := func(level int) page.Page {
		buf := make([]byte, storage.PageSize)
		p := page.Wrap(buf)
		p.Init()
		p.Client()[0] = byte(level)
		pages = append(pages, buf)
		return p
	}

	type childRef struct {
		firstKey []byte
		rel      int
	}
	var leafRefs []childRef

	leaf := newNode(0)
	var prevKey []byte
	budget := int(float64(storage.PageSize-64) * fill)
	used := 0
	size := 0
	for i := range kvs {
		rec := encodeLeafRec(prevKey, kvs[i].Key, kvs[i].Body)
		if used+len(rec)+4 > budget && leaf.NumSlots() > 0 {
			leaf = newNode(0)
			leafRefs = append(leafRefs, childRef{firstKey: kvs[i].Key, rel: len(pages) - 1})
			prevKey = nil
			used = 0
			rec = encodeLeafRec(nil, kvs[i].Key, kvs[i].Body)
		} else if leaf.NumSlots() == 0 {
			if len(leafRefs) == 0 || leafRefs[len(leafRefs)-1].rel != len(pages)-1 {
				leafRefs = append(leafRefs, childRef{firstKey: kvs[i].Key, rel: len(pages) - 1})
			}
		}
		if !leaf.InsertAt(leaf.NumSlots(), rec) {
			return nil, fmt.Errorf("part: record too large for leaf (%d bytes)", len(rec))
		}
		used += len(rec) + 4
		size += len(rec)
		prevKey = kvs[i].Key
	}
	numLeaves := len(pages)

	// ---- Build internal levels bottom-up until a single root remains.
	height := 1
	refs := leafRefs
	for len(refs) > 1 {
		height++
		var up []childRef
		node := newNode(height - 1)
		up = append(up, childRef{firstKey: refs[0].firstKey, rel: len(pages) - 1})
		for _, r := range refs {
			rec := encodeInternalRec(r.firstKey, r.rel)
			if !node.InsertAt(node.NumSlots(), rec) {
				node = newNode(height - 1)
				up = append(up, childRef{firstKey: r.firstKey, rel: len(pages) - 1})
				if !node.InsertAt(node.NumSlots(), rec) {
					return nil, fmt.Errorf("part: separator too large")
				}
			}
		}
		refs = up
	}

	// ---- Filters are computed concurrently with the sequential
	// write-out, like Algorithm 4's worker pair (worker1 loadAndFlush,
	// worker2 createFilters).
	type filters struct {
		bloom  *bloom.Filter
		prefix *bloom.PrefixFilter
	}
	fch := make(chan filters, 1)
	go func() {
		var f filters
		if opts.BloomBitsPerKey > 0 {
			f.bloom = bloom.New(len(kvs), opts.BloomBitsPerKey)
			for i := range kvs {
				f.bloom.Add(kvs[i].Key)
			}
		}
		if opts.PrefixLen > 0 {
			f.prefix = bloom.NewPrefix(len(kvs), opts.BloomBitsPerKey+2, opts.PrefixLen)
			for i := range kvs {
				f.prefix.Add(kvs[i].Key)
			}
		}
		fch <- f
	}()

	// ---- Sequential write-out. Pages are stamped with their checksum (the
	// buffer pool verifies them on every later fetch) and transient write
	// faults are retried a bounded number of times before the build fails.
	start, err := file.AllocRun(len(pages))
	if err != nil {
		<-fch // the filter goroutine sends exactly once; drain it
		return nil, fmt.Errorf("part: segment alloc: %w", err)
	}
	var werr error
	for i, buf := range pages {
		page.StampChecksum(buf)
		for attempt := 0; ; attempt++ {
			werr = file.WritePage(start+uint64(i), buf)
			if werr == nil || attempt >= 2 {
				break
			}
		}
		if werr != nil {
			break
		}
	}
	flt := <-fch
	if werr != nil {
		return nil, fmt.Errorf("part: segment write-out: %w", werr)
	}

	seg := &Segment{
		No:         no,
		pool:       pool,
		file:       file,
		StartPage:  start,
		NumPages:   len(pages),
		NumLeaves:  numLeaves,
		rootRel:    len(pages) - 1,
		height:     height,
		MinKey:     append([]byte(nil), kvs[0].Key...),
		MaxKey:     append([]byte(nil), kvs[len(kvs)-1].Key...),
		MinTS:      minTS,
		MaxTS:      maxTS,
		NumRecords: len(kvs),
		SizeBytes:  size,
	}
	seg.Filter = flt.bloom
	seg.PFilter = flt.prefix
	seg.initCache()
	return seg, nil
}

func encodeLeafRec(prevKey, key, body []byte) []byte {
	shared := util.CommonPrefix(prevKey, key)
	out := util.PutUvarint(nil, uint64(shared))
	out = util.PutUvarint(out, uint64(len(key)-shared))
	out = append(out, key[shared:]...)
	return append(out, body...)
}

func encodeInternalRec(key []byte, rel int) []byte {
	out := util.PutUvarint(nil, uint64(len(key)))
	out = append(out, key...)
	return util.PutUvarint(out, uint64(rel))
}

func decodeInternalRec(rec []byte) (key []byte, rel int) {
	kl, n := util.Uvarint(rec)
	key = rec[n : n+int(kl)]
	r, _ := util.Uvarint(rec[n+int(kl):])
	return key, int(r)
}

// MayContainKey consults the bloom filter (true when absent or filters are
// disabled means "must search").
func (s *Segment) MayContainKey(key []byte) bool {
	if bytes.Compare(key, s.MinKey) < 0 || bytes.Compare(key, s.MaxKey) > 0 {
		return false
	}
	if s.Filter != nil {
		return s.Filter.MayContain(key)
	}
	return true
}

// MayContainRange consults min/max keys and the prefix bloom filter for a
// scan over [lo, hi) (hi nil = +inf).
func (s *Segment) MayContainRange(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(s.MinKey, hi) >= 0 {
		return false
	}
	if bytes.Compare(s.MaxKey, lo) < 0 {
		return false
	}
	if s.PFilter != nil && hi != nil {
		// The prefix filter needs an inclusive upper bound sharing the
		// prefix; approximate with hi itself (conservative: extra trues
		// only when hi is exactly on a prefix boundary).
		return s.PFilter.MayContainRange(lo, hi)
	}
	return true
}

// readLeaf decodes all records of relative leaf page rel. Decoded leaves
// are memoized per page (segments are immutable, so any published decode
// is valid forever), which makes repeated seeks into a hot partition
// cheap and latch-free. Safe for concurrent readers.
func (s *Segment) readLeaf(rel int) ([]KV, error) {
	if rel < len(s.leaves) {
		if p := s.leaves[rel].Load(); p != nil {
			return *p, nil
		}
	}
	fr, err := s.pool.Get(s.file, s.StartPage+uint64(rel))
	if err != nil {
		return nil, err
	}
	p := page.Wrap(fr.Data())
	n := p.NumSlots()
	out := make([]KV, 0, n)
	// Single backing buffer for all decoded keys and bodies: two passes,
	// first to size it (front-coding means decoded keys are larger than
	// their stored suffixes).
	total := 0
	for i := 0; i < n; i++ {
		rec := p.Get(i)
		shared, c := util.Uvarint(rec)
		_, c2 := util.Uvarint(rec[c:])
		total += int(shared) + len(rec) - c - c2
	}
	buf := make([]byte, 0, total)
	var prev []byte
	for i := 0; i < n; i++ {
		rec := p.Get(i)
		shared, c := util.Uvarint(rec)
		sl, c2 := util.Uvarint(rec[c:])
		kStart := len(buf)
		buf = append(buf, prev[:shared]...)
		buf = append(buf, rec[c+c2:c+c2+int(sl)]...)
		key := buf[kStart:len(buf):len(buf)]
		bStart := len(buf)
		buf = append(buf, rec[c+c2+int(sl):]...)
		body := buf[bStart:len(buf):len(buf)]
		out = append(out, KV{Key: key, Body: body})
		prev = key
	}
	// Publish before Unpin: while pinned the page cannot be evicted, so the
	// eviction hook cannot fire between the store and the pin release.
	if rel < len(s.leaves) {
		s.leaves[rel].Store(&out)
	}
	s.pool.Unpin(fr, false)
	return out, nil
}

// readInner decodes the separators of relative internal page rel, memoized
// like readLeaf.
func (s *Segment) readInner(rel int) (*sepNode, error) {
	slot := rel - s.NumLeaves
	if slot >= 0 && slot < len(s.inner) {
		if p := s.inner[slot].Load(); p != nil {
			return p, nil
		}
	}
	fr, err := s.pool.Get(s.file, s.StartPage+uint64(rel))
	if err != nil {
		return nil, err
	}
	p := page.Wrap(fr.Data())
	n := p.NumSlots()
	node := &sepNode{keys: make([][]byte, n), child: make([]int, n)}
	for i := 0; i < n; i++ {
		k, c := decodeInternalRec(p.Get(i))
		node.keys[i] = append([]byte(nil), k...)
		node.child[i] = c
	}
	if slot >= 0 && slot < len(s.inner) {
		s.inner[slot].Store(node)
	}
	s.pool.Unpin(fr, false)
	return node, nil
}

// findLeaf descends to the first relative leaf page that could contain
// key. Because duplicate keys may span leaf boundaries, the descent picks
// the LAST child whose first key is strictly below key — a run of equal
// keys beginning at a leaf boundary is then entered from its first record
// (the iterator skips the preceding leaf's smaller keys).
func (s *Segment) findLeaf(key []byte) (int, error) {
	rel := s.rootRel
	for level := s.height - 1; level >= 1; level-- {
		node, err := s.readInner(rel)
		if err != nil {
			return 0, err
		}
		// First child whose first key >= key; descend into its
		// predecessor (default: the first child).
		lo, hi := 0, len(node.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			if bytes.Compare(node.keys[mid], key) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx := lo - 1
		if idx < 0 {
			idx = 0
		}
		rel = node.child[idx]
	}
	return rel, nil
}

// Iterator walks a segment's records in key order.
type Iterator struct {
	seg  *Segment
	leaf int
	recs []KV
	pos  int
	err  error
}

// Seek positions an iterator at the first record with key >= key.
func (s *Segment) Seek(key []byte) *Iterator {
	it := &Iterator{seg: s}
	rel, err := s.findLeaf(key)
	if err != nil {
		it.err = err
		return it
	}
	it.leaf = rel
	it.recs, it.err = s.readLeaf(rel)
	for it.Valid() && bytes.Compare(it.recs[it.pos].Key, key) < 0 {
		it.Next()
	}
	return it
}

// Min positions an iterator at the segment's first record.
func (s *Segment) Min() *Iterator {
	it := &Iterator{seg: s}
	it.recs, it.err = s.readLeaf(0)
	return it
}

func (it *Iterator) advanceLeaf() {
	it.leaf++
	it.pos = 0
	if it.leaf >= it.seg.NumLeaves {
		it.recs = nil
		return
	}
	it.recs, it.err = it.seg.readLeaf(it.leaf)
}

// Valid reports whether the iterator is on a record.
func (it *Iterator) Valid() bool { return it.err == nil && it.pos < len(it.recs) }

// Err returns the first error the iterator hit.
func (it *Iterator) Err() error { return it.err }

// Record returns the current record.
func (it *Iterator) Record() KV { return it.recs[it.pos] }

// Next advances to the following record.
func (it *Iterator) Next() {
	it.pos++
	if it.pos >= len(it.recs) {
		it.advanceLeaf()
	}
}

// Free releases the segment's pages: the extents return to the space
// manager and any cached pages are dropped. The segment must not be used
// afterwards.
func (s *Segment) Free() {
	s.pool.RemoveEvictHook(s.hookID)
	s.pool.DropFilePages(s.file, s.StartPage, s.NumPages)
	s.file.FreeRun(s.StartPage, s.NumPages)
}
