package part

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Owner is an index holding a main-memory partition PN inside the shared
// MV-PBT buffer.
type Owner interface {
	// Name identifies the index in diagnostics.
	Name() string
	// PNBytes returns the current size of the index's main-memory
	// partition.
	PNBytes() int
	// EvictPN freezes and persists the main-memory partition (paper
	// Algorithm 4).
	EvictPN() error
}

// ErrNoVictim reports that the buffer is over its target but no owner has
// a non-empty PN to evict (no owners registered, all PNs empty, or
// evictions made no progress). Previously this condition was silently
// swallowed; now it is surfaced via both the error and the NoVictims
// counter so an undersized buffer or a broken owner is observable.
var ErrNoVictim = errors.New("partition buffer over limit but no evictable partition")

// PartitionBuffer is the shared MV-PBT buffer of §4.5: all partitioned
// indexes place their PN here, and when the total size crosses the limit
// the LARGEST partition is evicted as a whole — giving update-intensive
// indexes room to grow while small partitions are flushed before they
// fragment the index into many tiny partitions.
//
// Two operating modes:
//
//   - Synchronous (no notifier installed): DidInsert behaves like the
//     original MaybeEvict — the inserting writer evicts inline once the
//     hard limit is crossed.
//
//   - Background (SetNotifier installed by the maintenance service): the
//     notifier fires when usage crosses the LOW watermark, and a
//     background worker calls EvictToLow. Writers only block — a bounded
//     RocksDB-style write stall — when usage exceeds the HIGH watermark,
//     i.e. when eviction has fallen behind the insert rate.
//
// Eviction itself never runs under the buffer's exclusive lock: owner
// list and sizes are read under RLock, and the (expensive, I/O-charging)
// EvictPN call is serialized only by evictMu. Concurrent writers of
// different indexes therefore never serialize here unless they stall.
type PartitionBuffer struct {
	mu     sync.RWMutex
	owners []Owner

	limit int          // hard target the sync path enforces
	low   atomic.Int64 // background-eviction trigger (<= limit)
	high  atomic.Int64 // write-stall threshold (>= limit)

	// evictMu serializes evictions; deliberately not b.mu so readers and
	// writers proceed while a partition is being persisted.
	evictMu sync.Mutex

	notify atomic.Pointer[func()] // background-mode trigger; nil = sync mode

	// stall machinery: stallCh is closed (and replaced) after every
	// eviction to wake all stalled writers at once. stallTimers pools the
	// stall timers per buffer: one literal timer would be shared mutable
	// state across concurrent stallers, while a per-call time.NewTimer is
	// an allocation on the hottest degraded path — the pool gives each
	// staller a private timer that is Reset-reused across stalls.
	stallMu      sync.Mutex
	stallCh      chan struct{}
	stallTimeout atomic.Int64 // ns
	stallTimers  sync.Pool

	evictions   atomic.Int64
	evictErrors atomic.Int64
	noVictims   atomic.Int64
	stalls      atomic.Int64
	stallNS     atomic.Int64
}

// DefaultStallTimeout bounds how long one DidInsert call may block when
// the buffer is above the high watermark. Writers re-trigger eviction and
// retry, so the total stall across calls can exceed this, but a single
// insert never hangs.
const DefaultStallTimeout = 5 * time.Millisecond

// NewPartitionBuffer returns a buffer with the given byte limit. The low
// watermark defaults to 80% of the limit and the high watermark to 125%.
func NewPartitionBuffer(limit int) *PartitionBuffer {
	if limit < 1 {
		limit = 1
	}
	b := &PartitionBuffer{
		limit:   limit,
		stallCh: make(chan struct{}),
	}
	b.low.Store(int64(limit - limit/5))
	b.high.Store(int64(limit + limit/4))
	b.stallTimeout.Store(int64(DefaultStallTimeout))
	return b
}

// Register adds an index to the buffer's accounting.
func (b *PartitionBuffer) Register(o Owner) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.owners = append(b.owners, o)
}

// Unregister removes an index from the buffer's accounting (a quarantined
// tree being replaced by a rebuild). No-op when o was never registered.
func (b *PartitionBuffer) Unregister(o Owner) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, own := range b.owners {
		if own == o {
			b.owners = append(b.owners[:i], b.owners[i+1:]...)
			return
		}
	}
}

// Used returns the total bytes of all main-memory partitions.
func (b *PartitionBuffer) Used() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	total := 0
	for _, o := range b.owners {
		total += o.PNBytes()
	}
	return total
}

// Limit returns the configured byte limit.
func (b *PartitionBuffer) Limit() int { return b.limit }

// Low returns the background-eviction trigger watermark.
func (b *PartitionBuffer) Low() int { return int(b.low.Load()) }

// High returns the write-stall watermark.
func (b *PartitionBuffer) High() int { return int(b.high.Load()) }

// SetWatermarks overrides the low/high watermarks (tests, tuning). Values
// are clamped to low <= limit <= high.
func (b *PartitionBuffer) SetWatermarks(low, high int) {
	if low > b.limit {
		low = b.limit
	}
	if high < b.limit {
		high = b.limit
	}
	b.low.Store(int64(low))
	b.high.Store(int64(high))
}

// SetStallTimeout overrides the per-call stall bound.
func (b *PartitionBuffer) SetStallTimeout(d time.Duration) {
	if d > 0 {
		b.stallTimeout.Store(int64(d))
	}
}

// SetNotifier switches the buffer to background mode: fn is invoked
// (non-blocking, possibly concurrently) whenever an insert observes usage
// at or above the low watermark. Pass nil to return to synchronous mode.
func (b *PartitionBuffer) SetNotifier(fn func()) {
	if fn == nil {
		b.notify.Store(nil)
		return
	}
	b.notify.Store(&fn)
}

// Evictions returns the number of partition evictions so far.
func (b *PartitionBuffer) Evictions() int64 { return b.evictions.Load() }

// EvictErrors returns the number of failed eviction attempts.
func (b *PartitionBuffer) EvictErrors() int64 { return b.evictErrors.Load() }

// NoVictims returns how often the buffer was over target with nothing to
// evict (see ErrNoVictim).
func (b *PartitionBuffer) NoVictims() int64 { return b.noVictims.Load() }

// Stalls returns the number of write stalls and the cumulative time
// writers spent stalled.
func (b *PartitionBuffer) Stalls() (int64, time.Duration) {
	return b.stalls.Load(), time.Duration(b.stallNS.Load())
}

// DidInsert is called by indexes after every PN insert, with the context
// of the inserting transaction. In synchronous mode it evicts inline (the
// original MaybeEvict behavior). In background mode it triggers the
// notifier at the low watermark and stalls the caller — bounded, with
// periodic re-triggering — above the high watermark until eviction catches
// up. A canceled or expired ctx ends the stall immediately and its error
// is returned; the insert itself has already happened, so callers treat it
// as "insert done, deadline hit while absorbing backpressure".
func (b *PartitionBuffer) DidInsert(ctx context.Context) error {
	fn := b.notify.Load()
	if fn == nil {
		return b.MaybeEvict()
	}
	used := b.Used()
	if used < b.Low() {
		return nil
	}
	(*fn)()
	if used < b.High() {
		return nil
	}
	return b.stallWait(ctx, fn)
}

// acquireTimer takes a stopped timer from the pool (or makes one) and arms
// it for d.
func (b *PartitionBuffer) acquireTimer(d time.Duration) *time.Timer {
	if t, _ := b.stallTimers.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// releaseTimer stops and drains t, returning it to the pool ready for the
// next Reset.
func (b *PartitionBuffer) releaseTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	b.stallTimers.Put(t)
}

// stallWait blocks until usage drops below the high watermark, the stall
// timeout elapses (returns nil — the writer proceeds and will stall again
// on its next insert if eviction is still behind), or ctx is done (returns
// ctx.Err()), waking early whenever an eviction completes.
func (b *PartitionBuffer) stallWait(ctx context.Context, fn *func()) error {
	start := time.Now()
	timer := b.acquireTimer(time.Duration(b.stallTimeout.Load()))
	defer b.releaseTimer(timer)
	defer func() { b.stallNS.Add(int64(time.Since(start))) }()
	b.stalls.Add(1)
	for {
		b.stallMu.Lock()
		ch := b.stallCh
		b.stallMu.Unlock()
		if b.Used() < b.High() {
			return nil
		}
		(*fn)() // keep the eviction queue primed while we wait
		select {
		case <-ch:
			// an eviction finished; re-check usage
		case <-timer.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// wakeStalled releases every writer currently blocked in stallWait.
func (b *PartitionBuffer) wakeStalled() {
	b.stallMu.Lock()
	close(b.stallCh)
	b.stallCh = make(chan struct{})
	b.stallMu.Unlock()
}

// MaybeEvict evicts largest-first until the buffer is within its hard
// limit (the synchronous path, kept for callers that manage their own
// scheduling). Returns ErrNoVictim when over the limit with nothing to
// evict.
func (b *PartitionBuffer) MaybeEvict() error {
	return b.evictDownTo(b.limit)
}

// EvictToLow evicts largest-first until usage is at or below the low
// watermark — the background maintenance job.
func (b *PartitionBuffer) EvictToLow() error {
	return b.evictDownTo(b.Low())
}

// evictDownTo performs largest-first whole-partition evictions until
// Used() <= target. The owner scan holds only the read lock and the
// EvictPN call holds only evictMu, so foreground inserts (which touch
// b.mu) are never blocked by an in-flight eviction.
func (b *PartitionBuffer) evictDownTo(target int) error {
	if b.Used() <= target {
		return nil
	}
	b.evictMu.Lock()
	defer b.evictMu.Unlock()
	// Bound the loop: an owner whose EvictPN makes no progress (PNBytes
	// unchanged) must not spin us forever.
	b.mu.RLock()
	attempts := 2*len(b.owners) + 4
	b.mu.RUnlock()
	for ; attempts > 0; attempts-- {
		b.mu.RLock()
		used := 0
		var victim Owner
		max := 0
		for _, o := range b.owners {
			s := o.PNBytes()
			used += s
			if s > max {
				max, victim = s, o
			}
		}
		b.mu.RUnlock()
		if used <= target {
			return nil
		}
		if victim == nil {
			b.noVictims.Add(1)
			return ErrNoVictim
		}
		if err := victim.EvictPN(); err != nil {
			b.evictErrors.Add(1)
			return err
		}
		b.evictions.Add(1)
		b.wakeStalled()
	}
	// No owner made enough progress to reach the target.
	b.noVictims.Add(1)
	return ErrNoVictim
}
