package part

import "sync"

// Owner is an index holding a main-memory partition PN inside the shared
// MV-PBT buffer.
type Owner interface {
	// Name identifies the index in diagnostics.
	Name() string
	// PNBytes returns the current size of the index's main-memory
	// partition.
	PNBytes() int
	// EvictPN freezes and persists the main-memory partition (paper
	// Algorithm 4).
	EvictPN() error
}

// PartitionBuffer is the shared MV-PBT buffer of §4.5: all partitioned
// indexes place their PN here, and when the total size crosses the limit
// the LARGEST partition is evicted as a whole — giving update-intensive
// indexes room to grow while small partitions are flushed before they
// fragment the index into many tiny partitions.
type PartitionBuffer struct {
	mu     sync.Mutex
	limit  int
	owners []Owner
	// evictions counts whole-partition evictions performed.
	evictions int64
}

// NewPartitionBuffer returns a buffer with the given byte limit.
func NewPartitionBuffer(limit int) *PartitionBuffer {
	if limit < 1 {
		limit = 1
	}
	return &PartitionBuffer{limit: limit}
}

// Register adds an index to the buffer's accounting.
func (b *PartitionBuffer) Register(o Owner) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.owners = append(b.owners, o)
}

// Used returns the total bytes of all main-memory partitions.
func (b *PartitionBuffer) Used() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.usedLocked()
}

func (b *PartitionBuffer) usedLocked() int {
	total := 0
	for _, o := range b.owners {
		total += o.PNBytes()
	}
	return total
}

// Limit returns the configured byte limit.
func (b *PartitionBuffer) Limit() int { return b.limit }

// Evictions returns the number of partition evictions so far.
func (b *PartitionBuffer) Evictions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evictions
}

// MaybeEvict evicts largest-first until the buffer is within its limit.
// Indexes call it after inserting into their PN.
func (b *PartitionBuffer) MaybeEvict() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.usedLocked() > b.limit {
		var victim Owner
		max := 0
		for _, o := range b.owners {
			if s := o.PNBytes(); s > max {
				max, victim = s, o
			}
		}
		if victim == nil {
			return nil
		}
		if err := victim.EvictPN(); err != nil {
			return err
		}
		b.evictions++
	}
	return nil
}
