package part

import (
	"sync"
	"sync/atomic"
)

// Owner is an index holding a main-memory partition PN inside the shared
// MV-PBT buffer.
type Owner interface {
	// Name identifies the index in diagnostics.
	Name() string
	// PNBytes returns the current size of the index's main-memory
	// partition.
	PNBytes() int
	// EvictPN freezes and persists the main-memory partition (paper
	// Algorithm 4).
	EvictPN() error
}

// PartitionBuffer is the shared MV-PBT buffer of §4.5: all partitioned
// indexes place their PN here, and when the total size crosses the limit
// the LARGEST partition is evicted as a whole — giving update-intensive
// indexes room to grow while small partitions are flushed before they
// fragment the index into many tiny partitions.
//
// MaybeEvict runs after every PN insert, so its common no-eviction case
// takes only the read lock; concurrent writers of different indexes don't
// serialize here unless an eviction is actually due.
type PartitionBuffer struct {
	mu     sync.RWMutex
	limit  int
	owners []Owner
	// evictions counts whole-partition evictions performed.
	evictions atomic.Int64
}

// NewPartitionBuffer returns a buffer with the given byte limit.
func NewPartitionBuffer(limit int) *PartitionBuffer {
	if limit < 1 {
		limit = 1
	}
	return &PartitionBuffer{limit: limit}
}

// Register adds an index to the buffer's accounting.
func (b *PartitionBuffer) Register(o Owner) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.owners = append(b.owners, o)
}

// Used returns the total bytes of all main-memory partitions.
func (b *PartitionBuffer) Used() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.usedLocked()
}

func (b *PartitionBuffer) usedLocked() int {
	total := 0
	for _, o := range b.owners {
		total += o.PNBytes()
	}
	return total
}

// Limit returns the configured byte limit.
func (b *PartitionBuffer) Limit() int { return b.limit }

// Evictions returns the number of partition evictions so far.
func (b *PartitionBuffer) Evictions() int64 {
	return b.evictions.Load()
}

// MaybeEvict evicts largest-first until the buffer is within its limit.
// Indexes call it after inserting into their PN.
func (b *PartitionBuffer) MaybeEvict() error {
	b.mu.RLock()
	over := b.usedLocked() > b.limit
	b.mu.RUnlock()
	if !over {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Re-check under the exclusive lock: another caller may have already
	// evicted on our behalf between the two lock acquisitions.
	for b.usedLocked() > b.limit {
		var victim Owner
		max := 0
		for _, o := range b.owners {
			if s := o.PNBytes(); s > max {
				max, victim = s, o
			}
		}
		if victim == nil {
			return nil
		}
		if err := victim.EvictPN(); err != nil {
			return err
		}
		b.evictions.Add(1)
	}
	return nil
}
