package part

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/buffer"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/util"
)

type env struct {
	dev  *ssd.Device
	pool *buffer.Pool
	file *sfile.File
	fm   *sfile.Manager
}

func newEnv(frames int) *env {
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	fm := sfile.NewManager(dev)
	return &env{dev: dev, pool: buffer.New(frames), file: fm.Create("part", sfile.ClassIndex), fm: fm}
}

func sortedKVs(n int) []KV {
	kvs := make([]KV, n)
	for i := 0; i < n; i++ {
		kvs[i] = KV{
			Key:  []byte(fmt.Sprintf("key-%08d", i)),
			Body: []byte(fmt.Sprintf("body-%d", i)),
		}
	}
	return kvs
}

func TestBuildAndFullIteration(t *testing.T) {
	e := newEnv(256)
	kvs := sortedKVs(10000)
	seg, err := Build(e.pool, e.file, 1, kvs, 5, 99, BuildOptions{BloomBitsPerKey: 10})
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumRecords != 10000 || seg.NumLeaves < 2 {
		t.Fatalf("meta wrong: %+v", seg)
	}
	if seg.MinTS != 5 || seg.MaxTS != 99 {
		t.Fatal("timestamp bounds lost")
	}
	i := 0
	for it := seg.Min(); it.Valid(); it.Next() {
		r := it.Record()
		if !bytes.Equal(r.Key, kvs[i].Key) || !bytes.Equal(r.Body, kvs[i].Body) {
			t.Fatalf("record %d mismatch: %q/%q", i, r.Key, r.Body)
		}
		i++
	}
	if i != 10000 {
		t.Fatalf("iterated %d records", i)
	}
}

func TestEmptyBuild(t *testing.T) {
	e := newEnv(16)
	seg, err := Build(e.pool, e.file, 1, nil, 0, 0, BuildOptions{})
	if err != nil || seg != nil {
		t.Fatalf("empty build: %v %v", seg, err)
	}
}

func TestSeek(t *testing.T) {
	e := newEnv(256)
	kvs := sortedKVs(5000)
	seg, err := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []int{0, 1, 499, 2500, 4999} {
		it := seg.Seek(kvs[probe].Key)
		if !it.Valid() || !bytes.Equal(it.Record().Key, kvs[probe].Key) {
			t.Fatalf("seek to %d failed", probe)
		}
	}
	// Seek between keys lands on the successor.
	it := seg.Seek([]byte("key-00000001x"))
	if !it.Valid() || !bytes.Equal(it.Record().Key, []byte("key-00000002")) {
		t.Fatalf("between-keys seek landed on %q", it.Record().Key)
	}
	// Seek past the end.
	it = seg.Seek([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
	// Seek before the start.
	it = seg.Seek([]byte("a"))
	if !it.Valid() || !bytes.Equal(it.Record().Key, kvs[0].Key) {
		t.Fatal("seek before start should land on min")
	}
}

func TestDuplicateKeysPreserveOrder(t *testing.T) {
	e := newEnv(128)
	var kvs []KV
	for i := 0; i < 100; i++ {
		kvs = append(kvs, KV{Key: []byte("same"), Body: []byte(fmt.Sprintf("b%03d", i))})
	}
	seg, err := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it := seg.Seek([]byte("same")); it.Valid(); it.Next() {
		if string(it.Record().Body) != fmt.Sprintf("b%03d", i) {
			t.Fatalf("duplicate order broken at %d: %q", i, it.Record().Body)
		}
		i++
	}
	if i != 100 {
		t.Fatalf("got %d duplicates", i)
	}
}

func TestSequentialWritePattern(t *testing.T) {
	// Figure 12c: a partition write-out must be one sequential stream.
	e := newEnv(256)
	e.dev.ResetStats()
	kvs := sortedKVs(20000)
	seg, err := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{BloomBitsPerKey: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := e.dev.Stats()
	if s.Writes < 10 {
		t.Fatalf("too few writes: %+v", s)
	}
	if float64(s.SeqWrites)/float64(s.Writes) < 0.95 {
		t.Fatalf("write-out not sequential: seq=%d total=%d", s.SeqWrites, s.Writes)
	}
	_ = seg
}

func TestDensePacking(t *testing.T) {
	e := newEnv(256)
	kvs := sortedKVs(10000)
	dense, _ := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{FillFraction: 1.0})
	loose, _ := Build(e.pool, e.file, 2, kvs, 0, 0, BuildOptions{FillFraction: 0.67})
	if dense.NumLeaves >= loose.NumLeaves {
		t.Fatalf("dense packing not denser: %d vs %d leaves", dense.NumLeaves, loose.NumLeaves)
	}
}

func TestPrefixTruncationSavesSpace(t *testing.T) {
	e := newEnv(256)
	// Long shared prefixes: front-coding should cut leaves substantially
	// versus the naive encoding size.
	var kvs []KV
	for i := 0; i < 5000; i++ {
		kvs = append(kvs, KV{Key: []byte(fmt.Sprintf("warehouse-0001-district-%06d", i)), Body: []byte("x")})
	}
	seg, _ := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{})
	rawBytes := 0
	for _, kv := range kvs {
		rawBytes += len(kv.Key) + len(kv.Body)
	}
	if seg.SizeBytes >= rawBytes*3/4 {
		t.Fatalf("front-coding ineffective: %d vs raw %d", seg.SizeBytes, rawBytes)
	}
}

func TestBloomFilterSkipping(t *testing.T) {
	e := newEnv(256)
	kvs := sortedKVs(5000)
	seg, _ := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{BloomBitsPerKey: 10})
	for i := 0; i < 5000; i += 111 {
		if !seg.MayContainKey(kvs[i].Key) {
			t.Fatalf("bloom false negative on %q", kvs[i].Key)
		}
	}
	skipped := 0
	for i := 0; i < 2000; i++ {
		if !seg.MayContainKey([]byte(fmt.Sprintf("key-1%07d", i))) {
			skipped++
		}
	}
	if skipped < 1800 {
		t.Fatalf("bloom skipped only %d/2000 absent keys", skipped)
	}
	// Out-of-bounds keys are skipped by min/max alone.
	if seg.MayContainKey([]byte("aaa")) || seg.MayContainKey([]byte("zzz")) {
		t.Fatal("min/max key filter broken")
	}
}

func TestPrefixFilterRange(t *testing.T) {
	e := newEnv(256)
	var kvs []KV
	for i := 0; i < 1000; i++ {
		kvs = append(kvs, KV{Key: []byte(fmt.Sprintf("AAAA%06d", i)), Body: []byte("x")})
	}
	for i := 0; i < 1000; i++ {
		kvs = append(kvs, KV{Key: []byte(fmt.Sprintf("MMMM%06d", i)), Body: []byte("x")})
	}
	seg, _ := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{BloomBitsPerKey: 10, PrefixLen: 4})
	if !seg.MayContainRange([]byte("AAAA000000"), []byte("AAAA999999")) {
		t.Fatal("present prefix range skipped")
	}
	if seg.MayContainRange([]byte("CCCC000000"), []byte("CCCC999999")) {
		t.Fatal("absent prefix range not skipped")
	}
	// Out of min/max bounds entirely.
	if seg.MayContainRange([]byte("ZZZZ0"), []byte("ZZZZ9")) {
		t.Fatal("out-of-bounds range not skipped")
	}
}

func TestFreeReleasesExtents(t *testing.T) {
	e := newEnv(256)
	kvs := sortedKVs(10000)
	seg, _ := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{})
	before := e.fm.FreeExtents()
	seg.Free()
	if e.fm.FreeExtents() <= before {
		t.Fatal("Free did not release extents")
	}
}

func TestRandomKeysModel(t *testing.T) {
	e := newEnv(512)
	r := util.NewRand(77)
	seen := map[string]bool{}
	var kvs []KV
	for len(kvs) < 3000 {
		k := make([]byte, 5+r.Intn(20))
		r.Letters(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		kvs = append(kvs, KV{Key: k, Body: []byte{byte(len(kvs))}})
	}
	sortKVs(kvs)
	seg, err := Build(e.pool, e.file, 1, kvs, 0, 0, BuildOptions{BloomBitsPerKey: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(kvs); i += 53 {
		it := seg.Seek(kvs[i].Key)
		if !it.Valid() || !bytes.Equal(it.Record().Key, kvs[i].Key) {
			t.Fatalf("random key %q not found", kvs[i].Key)
		}
		if !bytes.Equal(it.Record().Body, kvs[i].Body) {
			t.Fatalf("random key %q wrong body", kvs[i].Key)
		}
	}
}

func sortKVs(kvs []KV) {
	// insertion of pre-sorted slices is the norm; this helper sorts test data
	for i := 1; i < len(kvs); i++ {
		for j := i; j > 0 && bytes.Compare(kvs[j].Key, kvs[j-1].Key) < 0; j-- {
			kvs[j], kvs[j-1] = kvs[j-1], kvs[j]
		}
	}
}

// fakeOwner implements Owner for buffer tests.
type fakeOwner struct {
	name    string
	size    int
	evicted int
}

func (f *fakeOwner) Name() string { return f.name }
func (f *fakeOwner) PNBytes() int { return f.size }
func (f *fakeOwner) EvictPN() error {
	f.evicted++
	f.size = 0
	return nil
}

func TestPartitionBufferEvictsLargest(t *testing.T) {
	b := NewPartitionBuffer(100)
	small := &fakeOwner{name: "small", size: 20}
	big := &fakeOwner{name: "big", size: 90}
	b.Register(small)
	b.Register(big)
	if err := b.MaybeEvict(); err != nil {
		t.Fatal(err)
	}
	if big.evicted != 1 || small.evicted != 0 {
		t.Fatalf("largest-victim policy violated: big=%d small=%d", big.evicted, small.evicted)
	}
	if b.Used() != 20 {
		t.Fatalf("Used=%d want 20", b.Used())
	}
	if b.Evictions() != 1 {
		t.Fatalf("Evictions=%d", b.Evictions())
	}
}

func TestPartitionBufferUnderLimitNoEviction(t *testing.T) {
	b := NewPartitionBuffer(1000)
	o := &fakeOwner{name: "o", size: 500}
	b.Register(o)
	b.MaybeEvict()
	if o.evicted != 0 {
		t.Fatal("evicted while under limit")
	}
}

func TestPartitionBufferEvictsUntilUnderLimit(t *testing.T) {
	b := NewPartitionBuffer(100)
	a := &fakeOwner{name: "a", size: 80}
	c := &fakeOwner{name: "c", size: 70}
	b.Register(a)
	b.Register(c)
	b.MaybeEvict()
	if b.Used() > 100 {
		t.Fatalf("still over limit: %d", b.Used())
	}
}
