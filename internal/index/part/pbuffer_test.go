package part

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpbt/internal/maint"
)

// atomicOwner is a concurrency-safe fake Owner: Grow simulates PN inserts
// and EvictPN zeroes the size (optionally failing or making no progress).
type atomicOwner struct {
	name     string
	size     atomic.Int64
	evicted  atomic.Int64
	evictErr error
	noop     bool // EvictPN succeeds but frees nothing
}

func (o *atomicOwner) Name() string { return o.name }
func (o *atomicOwner) PNBytes() int { return int(o.size.Load()) }
func (o *atomicOwner) Grow(n int)   { o.size.Add(int64(n)) }
func (o *atomicOwner) EvictPN() error {
	if o.evictErr != nil {
		return o.evictErr
	}
	o.evicted.Add(1)
	if !o.noop {
		o.size.Store(0)
	}
	return nil
}

func TestPartitionBufferNoVictim(t *testing.T) {
	// An owner whose eviction makes no progress must surface ErrNoVictim
	// (and bump the counter) instead of looping forever or silently
	// returning nil — the satellite-1 bug.
	b := NewPartitionBuffer(100)
	o := &atomicOwner{name: "stuck", noop: true}
	o.Grow(500)
	b.Register(o)
	if err := b.MaybeEvict(); !errors.Is(err, ErrNoVictim) {
		t.Fatalf("MaybeEvict = %v, want ErrNoVictim", err)
	}
	if b.NoVictims() != 1 {
		t.Fatalf("NoVictims = %d, want 1", b.NoVictims())
	}
}

func TestPartitionBufferNoVictimCounterAccounting(t *testing.T) {
	// Pin the counter semantics of the ErrNoVictim path: every failing
	// MaybeEvict adds exactly one to NoVictims, the no-progress eviction
	// attempts still count as Evictions (the owner WAS asked), and a later
	// successful eviction neither increments NoVictims nor clears it.
	b := NewPartitionBuffer(100)
	stuck := &atomicOwner{name: "stuck", noop: true}
	stuck.Grow(500)
	b.Register(stuck)

	for i := 1; i <= 3; i++ {
		if err := b.MaybeEvict(); !errors.Is(err, ErrNoVictim) {
			t.Fatalf("call %d: MaybeEvict = %v, want ErrNoVictim", i, err)
		}
		if got := b.NoVictims(); got != int64(i) {
			t.Fatalf("call %d: NoVictims = %d, want %d", i, got, i)
		}
	}
	if b.EvictErrors() != 0 {
		t.Fatalf("EvictErrors = %d, want 0 (no-progress is not an error)", b.EvictErrors())
	}

	// A healthy owner larger than the stuck one turns the next call into a
	// success: Evictions grows, NoVictims stays frozen.
	healthy := &atomicOwner{name: "healthy"}
	healthy.Grow(600)
	b.Register(healthy)
	stuck.size.Store(0)
	before := b.Evictions()
	if err := b.MaybeEvict(); err != nil {
		t.Fatalf("MaybeEvict with healthy victim = %v", err)
	}
	if healthy.evicted.Load() != 1 {
		t.Fatalf("healthy owner evicted %d times, want 1", healthy.evicted.Load())
	}
	if b.Evictions() <= before {
		t.Fatalf("Evictions did not grow (%d -> %d)", before, b.Evictions())
	}
	if b.NoVictims() != 3 {
		t.Fatalf("NoVictims = %d after success, want 3 (monotonic)", b.NoVictims())
	}

	// Under the limit nothing is counted at all.
	if err := b.MaybeEvict(); err != nil {
		t.Fatalf("MaybeEvict under limit = %v", err)
	}
	if b.NoVictims() != 3 || b.Evictions() != before+1 {
		t.Fatalf("under-limit call changed counters: noVictims=%d evictions=%d",
			b.NoVictims(), b.Evictions())
	}
}

func TestPartitionBufferEvictionError(t *testing.T) {
	b := NewPartitionBuffer(100)
	boom := errors.New("device gone")
	o := &atomicOwner{name: "bad", evictErr: boom}
	o.Grow(500)
	b.Register(o)
	if err := b.MaybeEvict(); !errors.Is(err, boom) {
		t.Fatalf("MaybeEvict = %v, want injected error", err)
	}
	if b.EvictErrors() != 1 {
		t.Fatalf("EvictErrors = %d, want 1", b.EvictErrors())
	}
}

func TestPartitionBufferWatermarkDefaults(t *testing.T) {
	b := NewPartitionBuffer(1000)
	if b.Low() != 800 || b.High() != 1250 {
		t.Fatalf("default watermarks low=%d high=%d", b.Low(), b.High())
	}
	b.SetWatermarks(2000, 500) // both clamp to the limit
	if b.Low() != 1000 || b.High() != 1000 {
		t.Fatalf("clamped watermarks low=%d high=%d", b.Low(), b.High())
	}
}

func TestPartitionBufferBackgroundTrigger(t *testing.T) {
	b := NewPartitionBuffer(1000)
	o := &atomicOwner{name: "o"}
	b.Register(o)
	var triggers atomic.Int64
	b.SetNotifier(func() { triggers.Add(1) })

	o.Grow(100)
	if err := b.DidInsert(context.Background()); err != nil {
		t.Fatal(err)
	}
	if triggers.Load() != 0 {
		t.Fatal("notifier fired below the low watermark")
	}
	o.Grow(800) // 900 >= low(800), < high(1250)
	if err := b.DidInsert(context.Background()); err != nil {
		t.Fatal(err)
	}
	if triggers.Load() != 1 {
		t.Fatalf("notifier fired %d times, want 1", triggers.Load())
	}
	if n, _ := b.Stalls(); n != 0 {
		t.Fatal("stalled below the high watermark")
	}
}

func TestPartitionBufferWriteStall(t *testing.T) {
	// Above the high watermark with eviction lagging, DidInsert must block
	// (bounded) and wake early when an eviction completes.
	b := NewPartitionBuffer(1000)
	b.SetStallTimeout(2 * time.Second) // generous: the eviction wake must beat it
	o := &atomicOwner{name: "o"}
	b.Register(o)

	evictStarted := make(chan struct{})
	var once sync.Once
	b.SetNotifier(func() {
		once.Do(func() { close(evictStarted) })
	})

	o.Grow(2000) // way above high(1250)
	go func() {
		<-evictStarted
		time.Sleep(10 * time.Millisecond) // let the writer reach stallWait
		b.EvictToLow()
	}()
	start := time.Now()
	if err := b.DidInsert(context.Background()); err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	if n, d := b.Stalls(); n != 1 || d <= 0 {
		t.Fatalf("stall not recorded: n=%d d=%v", n, d)
	}
	if el >= 2*time.Second {
		t.Fatalf("writer waited the full timeout (%v); eviction wake-up lost", el)
	}
	if o.evicted.Load() == 0 {
		t.Fatal("background eviction did not run")
	}
}

func TestPartitionBufferStallTimesOut(t *testing.T) {
	// With no eviction happening at all, the stall must release the writer
	// after the bounded timeout rather than hanging.
	b := NewPartitionBuffer(1000)
	b.SetStallTimeout(5 * time.Millisecond)
	o := &atomicOwner{name: "o"}
	b.Register(o)
	b.SetNotifier(func() {}) // notifier that never evicts
	o.Grow(2000)
	done := make(chan struct{})
	go func() {
		b.DidInsert(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stalled writer hung past its timeout")
	}
	if n, d := b.Stalls(); n != 1 || d < 5*time.Millisecond {
		t.Fatalf("stall stats n=%d d=%v", n, d)
	}
}

// TestPartitionBufferConcurrent drives Register / DidInsert / Used /
// EvictToLow from many goroutines with a real maintenance service doing
// the background eviction — the satellite-3 race test, including an
// owner that injects eviction errors.
func TestPartitionBufferConcurrent(t *testing.T) {
	b := NewPartitionBuffer(64 << 10)
	b.SetStallTimeout(time.Millisecond)

	svc := maint.New(maint.Config{Workers: 2})
	defer svc.Close()
	b.SetNotifier(func() {
		svc.Submit(maint.Evict, "pbuf", b.EvictToLow)
	})

	owners := make([]*atomicOwner, 4)
	for i := range owners {
		owners[i] = &atomicOwner{name: string(rune('a' + i))}
		b.Register(owners[i])
	}
	// One owner occasionally fails its eviction.
	boom := errors.New("injected")
	bad := &atomicOwner{name: "bad", evictErr: boom}
	b.Register(bad)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o := owners[g%len(owners)]
			for i := 0; i < 3000; i++ {
				o.Grow(64)
				b.DidInsert(context.Background())
				if i%64 == 0 {
					_ = b.Used()
				}
				if i%500 == 0 {
					// late registration races with the owner scan
					b.Register(&atomicOwner{name: "late"})
				}
				if i%1000 == 0 {
					bad.Grow(128) // keep the failing owner in contention
				}
			}
		}(g)
	}
	wg.Wait()
	svc.Drain()
	if b.Evictions() == 0 {
		t.Fatal("no background evictions happened")
	}
	// The injected error is allowed to surface (or not, if "bad" was never
	// the largest), but nothing may have deadlocked or raced to get here.
	t.Logf("evictions=%d errors=%d noVictims=%d stalls=%v",
		b.Evictions(), b.EvictErrors(), b.NoVictims(), func() int64 { n, _ := b.Stalls(); return n }())
}

func TestPartitionBufferSyncModeUnchanged(t *testing.T) {
	// Without a notifier DidInsert must behave exactly like MaybeEvict.
	b := NewPartitionBuffer(100)
	o := &atomicOwner{name: "o"}
	b.Register(o)
	o.Grow(150)
	if err := b.DidInsert(context.Background()); err != nil {
		t.Fatal(err)
	}
	if o.evicted.Load() != 1 || b.Used() != 0 {
		t.Fatalf("sync DidInsert did not evict inline: evicted=%d used=%d", o.evicted.Load(), b.Used())
	}
	if n, _ := b.Stalls(); n != 0 {
		t.Fatal("sync mode stalled")
	}
}

func TestPartitionBufferStallCanceledContext(t *testing.T) {
	// A canceled (or deadline-expired) context must release a stalled
	// writer promptly — well before the stall timeout — with ctx.Err().
	b := NewPartitionBuffer(1000)
	b.SetStallTimeout(10 * time.Second) // the context must beat this
	o := &atomicOwner{name: "o"}
	b.Register(o)
	b.SetNotifier(func() {}) // notifier that never evicts
	o.Grow(2000)             // way above high(1250)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.DidInsert(ctx) }()
	time.Sleep(5 * time.Millisecond) // let the writer reach stallWait
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stalled DidInsert returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled writer still stalled")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("cancellation took %v to release the stall", el)
	}

	// A context with an already-expired deadline must not stall at all.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if err := b.DidInsert(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline DidInsert returned %v, want DeadlineExceeded", err)
	}
}
