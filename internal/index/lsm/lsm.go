// Package lsm implements the LSM-Tree baseline the paper compares MV-PBT
// against (§5 "Comparison to LSM-Trees", Figure 15): a skiplist memtable,
// tiered L0 runs flushed from it, and levelled compaction below — each run
// an immutable bulk-built B-Tree segment with a bloom filter, like
// WiredTiger's LSM components. Point lookups probe the memtable and then
// every run newest-to-oldest (bloom filters skip runs); range scans merge
// all runs with newest-wins shadowing; deletes are tombstones that
// compaction drops at the bottom level.
package lsm

import (
	"bytes"
	"sync"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index/part"
	"mvpbt/internal/sfile"
	"mvpbt/internal/skiplist"
	"mvpbt/internal/util"
)

// Options configures an LSM tree.
type Options struct {
	Name string
	// MemtableBytes is the flush threshold (default 1 MiB).
	MemtableBytes int
	// L0Runs is the number of L0 runs that triggers compaction into L1
	// (default 4).
	L0Runs int
	// LevelRatio is the size ratio between adjacent levels (default 10).
	LevelRatio int
	// BloomBits is the per-run bloom filter size in bits per key
	// (default 10; 0 disables).
	BloomBits int
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.L0Runs <= 0 {
		o.L0Runs = 4
	}
	if o.LevelRatio <= 0 {
		o.LevelRatio = 10
	}
	return o
}

// memEntry is a memtable value.
type memEntry struct {
	seq  uint64
	tomb bool
	val  []byte
}

// Body encoding in runs: [seq varint][flags 1B][value...].
func encodeBody(e memEntry) []byte {
	out := util.PutUvarint(nil, e.seq)
	var f byte
	if e.tomb {
		f = 1
	}
	out = append(out, f)
	return append(out, e.val...)
}

func decodeBody(b []byte) memEntry {
	seq, n := util.Uvarint(b)
	return memEntry{seq: seq, tomb: b[n]&1 != 0, val: b[n+1:]}
}

// Stats aggregates LSM activity.
type Stats struct {
	Flushes     int64
	Compactions int64
	// BloomNegatives counts runs skipped during gets.
	BloomNegatives int64
}

// Tree is an LSM tree. Safe for concurrent use.
type Tree struct {
	mu    sync.Mutex
	opts  Options
	pool  *buffer.Pool
	file  *sfile.File
	mem   *skiplist.List[[]byte, memEntry]
	seq   uint64
	l0    []*part.Segment // newest first
	lower []*part.Segment // levels[i] = L(i+1); nil slots allowed
	runNo int
	stats Stats
}

// New creates an empty LSM tree stored in file.
func New(pool *buffer.Pool, file *sfile.File, opts Options) *Tree {
	t := &Tree{opts: opts.withDefaults(), pool: pool, file: file}
	t.mem = newMem()
	return t
}

func newMem() *skiplist.List[[]byte, memEntry] {
	return skiplist.New[[]byte, memEntry](bytes.Compare, func(k []byte, v memEntry) int {
		return len(k) + len(v.val) + 24
	})
}

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// NumRuns returns the total number of on-disk runs.
func (t *Tree) NumRuns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.l0)
	for _, s := range t.lower {
		if s != nil {
			n++
		}
	}
	return n
}

// Put stores key → val.
func (t *Tree) Put(key, val []byte) error {
	return t.write(key, memEntry{tomb: false, val: append([]byte(nil), val...)})
}

// Delete removes key (a tombstone shadows older values until compaction
// drops both at the bottom level).
func (t *Tree) Delete(key []byte) error {
	return t.write(key, memEntry{tomb: true})
}

func (t *Tree) write(key []byte, e memEntry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.seq = t.seq
	t.mem.Set(append([]byte(nil), key...), e)
	if t.mem.Bytes() >= t.opts.MemtableBytes {
		return t.flushLocked()
	}
	return nil
}

// Get returns the newest value for key (nil, false when absent or
// tombstoned).
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.mem.Get(key); ok {
		if e.tomb {
			return nil, false, nil
		}
		return append([]byte(nil), e.val...), true, nil
	}
	probe := func(seg *part.Segment) (memEntry, bool, error) {
		if !seg.MayContainKey(key) {
			t.stats.BloomNegatives++
			return memEntry{}, false, nil
		}
		it := seg.Seek(key)
		if it.Err() != nil {
			return memEntry{}, false, it.Err()
		}
		if it.Valid() && bytes.Equal(it.Record().Key, key) {
			return decodeBody(it.Record().Body), true, nil
		}
		return memEntry{}, false, nil
	}
	for _, seg := range t.l0 {
		e, ok, err := probe(seg)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.tomb {
				return nil, false, nil
			}
			return e.val, true, nil
		}
	}
	for _, seg := range t.lower {
		if seg == nil {
			continue
		}
		e, ok, err := probe(seg)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.tomb {
				return nil, false, nil
			}
			return e.val, true, nil
		}
	}
	return nil, false, nil
}

// source is one input to the merge: the memtable or a run, with rank 0 =
// newest.
type source struct {
	// memtable cursor
	memIt *skiplist.Iterator[[]byte, memEntry]
	segIt *part.Iterator
}

func (s *source) valid() bool {
	if s.memIt != nil {
		return s.memIt.Valid()
	}
	return s.segIt.Valid()
}

func (s *source) key() []byte {
	if s.memIt != nil {
		return s.memIt.Key()
	}
	return s.segIt.Record().Key
}

func (s *source) entry() memEntry {
	if s.memIt != nil {
		return s.memIt.Value()
	}
	return decodeBody(s.segIt.Record().Body)
}

func (s *source) next() {
	if s.memIt != nil {
		s.memIt.Next()
	} else {
		s.segIt.Next()
	}
}

// Scan calls fn for every live key in [lo, hi) in key order, newest value
// per key, skipping tombstoned keys. Returning false stops.
func (t *Tree) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	srcs := t.sources(lo)
	for {
		// Pick the smallest key; among equals the lowest-rank (newest)
		// source wins, the rest are shadowed.
		var minKey []byte
		best := -1
		for i := range srcs {
			if !srcs[i].valid() {
				continue
			}
			k := srcs[i].key()
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				continue
			}
			if best < 0 || bytes.Compare(k, minKey) < 0 {
				minKey, best = k, i
			}
		}
		if best < 0 {
			return nil
		}
		e := srcs[best].entry()
		key := append([]byte(nil), minKey...)
		for i := range srcs {
			if srcs[i].valid() && bytes.Equal(srcs[i].key(), key) {
				srcs[i].next()
			}
		}
		if e.tomb {
			continue
		}
		if !fn(key, e.val) {
			return nil
		}
	}
}

// sources builds merge inputs positioned at lo, newest first.
func (t *Tree) sources(lo []byte) []*source {
	var srcs []*source
	mit := t.mem.Seek(lo)
	srcs = append(srcs, &source{memIt: &mit})
	for _, seg := range t.l0 {
		srcs = append(srcs, &source{segIt: seg.Seek(lo)})
	}
	for _, seg := range t.lower {
		if seg != nil {
			srcs = append(srcs, &source{segIt: seg.Seek(lo)})
		}
	}
	return srcs
}

// Flush forces the memtable out (mainly for tests and shutdown).
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tree) flushLocked() error {
	if t.mem.Len() == 0 {
		return nil
	}
	kvs := make([]part.KV, 0, t.mem.Len())
	for it := t.mem.Min(); it.Valid(); it.Next() {
		kvs = append(kvs, part.KV{Key: it.Key(), Body: encodeBody(it.Value())})
	}
	seg, err := part.Build(t.pool, t.file, t.runNo, kvs, 0, 0, part.BuildOptions{BloomBitsPerKey: t.opts.BloomBits})
	if err != nil {
		return err
	}
	t.runNo++
	t.l0 = append([]*part.Segment{seg}, t.l0...)
	t.mem = newMem()
	t.stats.Flushes++
	return t.maybeCompactLocked()
}

func (t *Tree) maybeCompactLocked() error {
	// L0 → L1 when L0 has too many runs.
	if len(t.l0) >= t.opts.L0Runs {
		inputs := append([]*part.Segment{}, t.l0...)
		if len(t.lower) > 0 && t.lower[0] != nil {
			inputs = append(inputs, t.lower[0])
		}
		merged, err := t.mergeRuns(inputs, t.bottomEmpty(0))
		if err != nil {
			return err
		}
		for _, s := range inputs {
			s.Free()
		}
		t.l0 = nil
		if len(t.lower) == 0 {
			t.lower = append(t.lower, nil)
		}
		t.lower[0] = merged
		t.stats.Compactions++
	}
	// Cascade: level i overflows into level i+1.
	target := t.opts.LevelRatio * t.opts.MemtableBytes
	for i := 0; i < len(t.lower); i++ {
		if t.lower[i] == nil || t.lower[i].SizeBytes <= target {
			target *= t.opts.LevelRatio
			continue
		}
		inputs := []*part.Segment{t.lower[i]}
		if i+1 < len(t.lower) && t.lower[i+1] != nil {
			inputs = append(inputs, t.lower[i+1])
		}
		merged, err := t.mergeRuns(inputs, t.bottomEmpty(i+1))
		if err != nil {
			return err
		}
		for _, s := range inputs {
			s.Free()
		}
		t.lower[i] = nil
		if i+1 >= len(t.lower) {
			t.lower = append(t.lower, nil)
		}
		t.lower[i+1] = merged
		t.stats.Compactions++
		target *= t.opts.LevelRatio
	}
	return nil
}

// bottomEmpty reports whether no run exists below level index i (tombstones
// can then be dropped).
func (t *Tree) bottomEmpty(i int) bool {
	for j := i + 1; j < len(t.lower); j++ {
		if t.lower[j] != nil {
			return false
		}
	}
	return true
}

// mergeRuns merges runs (newest first) into one, newest entry per key
// winning; dropTombs drops tombstones (safe only at the bottom).
func (t *Tree) mergeRuns(runs []*part.Segment, dropTombs bool) (*part.Segment, error) {
	its := make([]*part.Iterator, len(runs))
	for i, r := range runs {
		its[i] = r.Min()
	}
	var out []part.KV
	for {
		var minKey []byte
		best := -1
		for i, it := range its {
			if !it.Valid() {
				continue
			}
			k := it.Record().Key
			if best < 0 || bytes.Compare(k, minKey) < 0 {
				minKey, best = k, i
			}
		}
		if best < 0 {
			break
		}
		rec := its[best].Record()
		e := decodeBody(rec.Body)
		if !(dropTombs && e.tomb) {
			out = append(out, part.KV{Key: rec.Key, Body: rec.Body})
		}
		for _, it := range its {
			if it.Valid() && bytes.Equal(it.Record().Key, minKey) {
				it.Next()
			}
		}
	}
	for _, it := range its {
		if it.Err() != nil {
			return nil, it.Err()
		}
	}
	seg, err := part.Build(t.pool, t.file, t.runNo, out, 0, 0, part.BuildOptions{BloomBitsPerKey: t.opts.BloomBits})
	if err != nil {
		return nil, err
	}
	t.runNo++
	return seg, nil
}
