// Package lsm implements the LSM-Tree baseline the paper compares MV-PBT
// against (§5 "Comparison to LSM-Trees", Figure 15): a skiplist memtable,
// tiered L0 runs flushed from it, and levelled compaction below — each run
// an immutable bulk-built B-Tree segment with a bloom filter, like
// WiredTiger's LSM components. Point lookups probe the memtable and then
// every run newest-to-oldest (bloom filters skip runs); range scans merge
// all runs with newest-wins shadowing; deletes are tombstones that
// compaction drops at the bottom level.
package lsm

import (
	"bytes"
	"sync"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index/part"
	"mvpbt/internal/sfile"
	"mvpbt/internal/skiplist"
	"mvpbt/internal/util"
)

// Options configures an LSM tree.
type Options struct {
	Name string
	// MemtableBytes is the flush threshold (default 1 MiB).
	MemtableBytes int
	// L0Runs is the number of L0 runs that triggers compaction into L1
	// (default 4).
	L0Runs int
	// LevelRatio is the size ratio between adjacent levels (default 10).
	LevelRatio int
	// BloomBits is the per-run bloom filter size in bits per key
	// (default 10; 0 disables).
	BloomBits int
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.L0Runs <= 0 {
		o.L0Runs = 4
	}
	if o.LevelRatio <= 0 {
		o.LevelRatio = 10
	}
	return o
}

// memEntry is a memtable value.
type memEntry struct {
	seq  uint64
	tomb bool
	val  []byte
}

// Body encoding in runs: [seq varint][flags 1B][value...].
func encodeBody(e memEntry) []byte {
	out := util.PutUvarint(nil, e.seq)
	var f byte
	if e.tomb {
		f = 1
	}
	out = append(out, f)
	return append(out, e.val...)
}

func decodeBody(b []byte) memEntry {
	seq, n := util.Uvarint(b)
	return memEntry{seq: seq, tomb: b[n]&1 != 0, val: b[n+1:]}
}

// Stats aggregates LSM activity.
type Stats struct {
	Flushes     int64
	Compactions int64
	// BloomNegatives counts runs skipped during gets.
	BloomNegatives int64
	// Stalls counts writes that blocked on a backed-up flush pipeline
	// (background mode only: too many immutable memtables pending).
	Stalls int64
}

// maxPendingImm bounds the immutable-memtable backlog in background mode;
// a write that freezes memtable number maxPendingImm+1 flushes the
// backlog itself (write stall) instead of letting memory grow unbounded.
const maxPendingImm = 4

// Tree is an LSM tree. Safe for concurrent use.
//
// Two flush modes: synchronously (default) the writer that fills the
// memtable builds the run inline under mu — the seed behavior. With
// SetFlushNotify installed, the full memtable is frozen onto the imm list
// (an O(1) pointer swap) and the notifier schedules FlushPending on the
// maintenance service; reads cover mem + imm + runs throughout. The
// expensive run build and compaction merges then run under compactMu
// only, so foreground writes never wait on device I/O unless the imm
// backlog exceeds maxPendingImm.
type Tree struct {
	mu    sync.Mutex
	opts  Options
	pool  *buffer.Pool
	file  *sfile.File
	mem   *skiplist.List[[]byte, memEntry]
	imm   []*skiplist.List[[]byte, memEntry] // frozen, newest first
	seq   uint64
	l0    []*part.Segment // newest first
	lower []*part.Segment // levels[i] = L(i+1); nil slots allowed
	runNo int
	stats Stats

	onFlush func() // guarded by mu; nil = synchronous flush

	// compactMu serializes run builds and compactions (FlushPending,
	// Compact, Close) without holding mu across the merge I/O.
	compactMu sync.Mutex
}

// New creates an empty LSM tree stored in file.
func New(pool *buffer.Pool, file *sfile.File, opts Options) *Tree {
	t := &Tree{opts: opts.withDefaults(), pool: pool, file: file}
	t.mem = newMem()
	return t
}

func newMem() *skiplist.List[[]byte, memEntry] {
	return skiplist.New[[]byte, memEntry](bytes.Compare, func(k []byte, v memEntry) int {
		return len(k) + len(v.val) + 24
	})
}

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// NumRuns returns the total number of on-disk runs.
func (t *Tree) NumRuns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.l0)
	for _, s := range t.lower {
		if s != nil {
			n++
		}
	}
	return n
}

// Put stores key → val.
func (t *Tree) Put(key, val []byte) error {
	return t.write(key, memEntry{tomb: false, val: append([]byte(nil), val...)})
}

// Delete removes key (a tombstone shadows older values until compaction
// drops both at the bottom level).
func (t *Tree) Delete(key []byte) error {
	return t.write(key, memEntry{tomb: true})
}

func (t *Tree) write(key []byte, e memEntry) error {
	t.mu.Lock()
	t.seq++
	e.seq = t.seq
	t.mem.Set(append([]byte(nil), key...), e)
	if t.mem.Bytes() < t.opts.MemtableBytes {
		t.mu.Unlock()
		return nil
	}
	if t.onFlush == nil {
		err := t.flushLocked()
		t.mu.Unlock()
		return err
	}
	onFlush := t.onFlush
	t.imm = append([]*skiplist.List[[]byte, memEntry]{t.mem}, t.imm...)
	t.mem = newMem()
	stall := len(t.imm) > maxPendingImm
	if stall {
		t.stats.Stalls++
	}
	t.mu.Unlock()
	onFlush()
	if stall {
		// Flushing has fallen behind the write rate: this writer drains
		// the backlog itself (compactMu serializes with the background
		// worker, so the work happens exactly once).
		return t.FlushPending()
	}
	return nil
}

// SetFlushNotify switches the tree to background-flush mode: fn is
// invoked (without locks held) whenever a full memtable is frozen and a
// flush should be scheduled. Pass nil to restore synchronous flushing.
func (t *Tree) SetFlushNotify(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onFlush = fn
}

// PendingMemtables returns the number of frozen memtables awaiting flush.
func (t *Tree) PendingMemtables() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.imm)
}

// Get returns the newest value for key (nil, false when absent or
// tombstoned).
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.mem.Get(key); ok {
		if e.tomb {
			return nil, false, nil
		}
		return append([]byte(nil), e.val...), true, nil
	}
	for _, im := range t.imm {
		if e, ok := im.Get(key); ok {
			if e.tomb {
				return nil, false, nil
			}
			return append([]byte(nil), e.val...), true, nil
		}
	}
	probe := func(seg *part.Segment) (memEntry, bool, error) {
		if !seg.MayContainKey(key) {
			t.stats.BloomNegatives++
			return memEntry{}, false, nil
		}
		it := seg.Seek(key)
		if it.Err() != nil {
			return memEntry{}, false, it.Err()
		}
		if it.Valid() && bytes.Equal(it.Record().Key, key) {
			return decodeBody(it.Record().Body), true, nil
		}
		return memEntry{}, false, nil
	}
	for _, seg := range t.l0 {
		e, ok, err := probe(seg)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.tomb {
				return nil, false, nil
			}
			return e.val, true, nil
		}
	}
	for _, seg := range t.lower {
		if seg == nil {
			continue
		}
		e, ok, err := probe(seg)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.tomb {
				return nil, false, nil
			}
			return e.val, true, nil
		}
	}
	return nil, false, nil
}

// source is one input to the merge: the memtable or a run, with rank 0 =
// newest.
type source struct {
	// memtable cursor
	memIt *skiplist.Iterator[[]byte, memEntry]
	segIt *part.Iterator
}

func (s *source) valid() bool {
	if s.memIt != nil {
		return s.memIt.Valid()
	}
	return s.segIt.Valid()
}

func (s *source) key() []byte {
	if s.memIt != nil {
		return s.memIt.Key()
	}
	return s.segIt.Record().Key
}

func (s *source) entry() memEntry {
	if s.memIt != nil {
		return s.memIt.Value()
	}
	return decodeBody(s.segIt.Record().Body)
}

func (s *source) next() {
	if s.memIt != nil {
		s.memIt.Next()
	} else {
		s.segIt.Next()
	}
}

// Scan calls fn for every live key in [lo, hi) in key order, newest value
// per key, skipping tombstoned keys. Returning false stops.
func (t *Tree) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	srcs := t.sources(lo)
	for {
		// Pick the smallest key; among equals the lowest-rank (newest)
		// source wins, the rest are shadowed.
		var minKey []byte
		best := -1
		for i := range srcs {
			if !srcs[i].valid() {
				continue
			}
			k := srcs[i].key()
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				continue
			}
			if best < 0 || bytes.Compare(k, minKey) < 0 {
				minKey, best = k, i
			}
		}
		if best < 0 {
			return nil
		}
		e := srcs[best].entry()
		key := append([]byte(nil), minKey...)
		for i := range srcs {
			if srcs[i].valid() && bytes.Equal(srcs[i].key(), key) {
				srcs[i].next()
			}
		}
		if e.tomb {
			continue
		}
		if !fn(key, e.val) {
			return nil
		}
	}
}

// sources builds merge inputs positioned at lo, newest first.
func (t *Tree) sources(lo []byte) []*source {
	var srcs []*source
	mit := t.mem.Seek(lo)
	srcs = append(srcs, &source{memIt: &mit})
	for _, im := range t.imm {
		iit := im.Seek(lo)
		srcs = append(srcs, &source{memIt: &iit})
	}
	for _, seg := range t.l0 {
		srcs = append(srcs, &source{segIt: seg.Seek(lo)})
	}
	for _, seg := range t.lower {
		if seg != nil {
			srcs = append(srcs, &source{segIt: seg.Seek(lo)})
		}
	}
	return srcs
}

// ScanRawAll streams EVERY stored record in [lo, hi) — shadowed versions
// and tombstones included — in key order, newest (highest-seq) first
// within a key. The correctness harness uses it to assert that Scan's
// newest-wins shadowing agrees with the raw record set. fn returning
// false stops.
func (t *Tree) ScanRawAll(lo, hi []byte, fn func(key []byte, seq uint64, tomb bool, val []byte) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	srcs := t.sources(lo)
	type raw struct {
		e   memEntry
		src int
	}
	for {
		var minKey []byte
		best := -1
		for i := range srcs {
			if !srcs[i].valid() {
				continue
			}
			k := srcs[i].key()
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				continue
			}
			if best < 0 || bytes.Compare(k, minKey) < 0 {
				minKey, best = k, i
			}
		}
		if best < 0 {
			return nil
		}
		key := append([]byte(nil), minKey...)
		// Each source holds at most one record per key; collect them all
		// and emit by descending sequence number.
		var recs []raw
		for i := range srcs {
			if srcs[i].valid() && bytes.Equal(srcs[i].key(), key) {
				recs = append(recs, raw{e: srcs[i].entry(), src: i})
				srcs[i].next()
			}
		}
		for j := 1; j < len(recs); j++ {
			for k := j; k > 0 && recs[k].e.seq > recs[k-1].e.seq; k-- {
				recs[k], recs[k-1] = recs[k-1], recs[k]
			}
		}
		for _, r := range recs {
			if !fn(key, r.e.seq, r.e.tomb, r.e.val) {
				return nil
			}
		}
	}
}

// Flush forces everything in memory out (tests and shutdown). In
// background mode (or with a flush backlog) it freezes the current
// memtable and drains the whole pipeline via FlushPending.
func (t *Tree) Flush() error {
	t.mu.Lock()
	if t.onFlush == nil && len(t.imm) == 0 {
		err := t.flushLocked()
		t.mu.Unlock()
		return err
	}
	if t.mem.Len() > 0 {
		t.imm = append([]*skiplist.List[[]byte, memEntry]{t.mem}, t.imm...)
		t.mem = newMem()
	}
	t.mu.Unlock()
	return t.FlushPending()
}

// Close flushes all in-memory state to disk. The caller is responsible
// for draining any maintenance service first so no flush job races the
// shutdown (compactMu makes such a race safe, just wasteful).
func (t *Tree) Close() error {
	return t.Flush()
}

// flushLocked is the synchronous path: build the run inline under mu.
func (t *Tree) flushLocked() error {
	if t.mem.Len() == 0 {
		return nil
	}
	no := t.runNo
	t.runNo++
	seg, err := t.buildRun(t.mem, no)
	if err != nil {
		return err
	}
	t.l0 = append([]*part.Segment{seg}, t.l0...)
	t.mem = newMem()
	t.stats.Flushes++
	return t.maybeCompactLocked()
}

// buildRun serializes one memtable into run number no. The background
// path calls it WITHOUT mu: the source is frozen (no further inserts)
// and the builder touches only thread-safe state (pool, file).
func (t *Tree) buildRun(mem *skiplist.List[[]byte, memEntry], no int) (*part.Segment, error) {
	kvs := make([]part.KV, 0, mem.Len())
	for it := mem.Min(); it.Valid(); it.Next() {
		kvs = append(kvs, part.KV{Key: it.Key(), Body: encodeBody(it.Value())})
	}
	return part.Build(t.pool, t.file, no, kvs, 0, 0, part.BuildOptions{BloomBitsPerKey: t.opts.BloomBits})
}

// FlushPending builds runs for all frozen memtables, oldest first, then
// runs any due compactions — the background flush job. Serialized by
// compactMu; mu is held only to pick sources and install results, never
// across the build I/O.
func (t *Tree) FlushPending() error {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	for {
		t.mu.Lock()
		if len(t.imm) == 0 {
			t.mu.Unlock()
			break
		}
		src := t.imm[len(t.imm)-1] // oldest; write() prepends
		no := t.runNo
		t.runNo++
		t.mu.Unlock()

		seg, err := t.buildRun(src, no)
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.l0 = append([]*part.Segment{seg}, t.l0...)
		t.imm = t.imm[:len(t.imm)-1]
		t.stats.Flushes++
		t.mu.Unlock()
	}
	return t.compactPending()
}

// Compact runs any due compactions (the background compaction job).
func (t *Tree) Compact() error {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	return t.compactPending()
}

// compactPending loops plan → merge → install until no level is over
// threshold. Called with compactMu held; the merge I/O runs outside mu.
func (t *Tree) compactPending() error {
	for {
		t.mu.Lock()
		inputs, srcLevel, dropTombs, no, ok := t.planCompactionLocked()
		t.mu.Unlock()
		if !ok {
			return nil
		}
		merged, err := t.mergeRuns(inputs, dropTombs, no)
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.installCompactionLocked(inputs, srcLevel, merged)
		t.mu.Unlock()
		for _, s := range inputs {
			s.Free()
		}
	}
}

// maybeCompactLocked is the synchronous equivalent: plan/merge/install
// entirely under mu (the seed behavior — the inserting client pays).
func (t *Tree) maybeCompactLocked() error {
	for {
		inputs, srcLevel, dropTombs, no, ok := t.planCompactionLocked()
		if !ok {
			return nil
		}
		merged, err := t.mergeRuns(inputs, dropTombs, no)
		if err != nil {
			return err
		}
		t.installCompactionLocked(inputs, srcLevel, merged)
		for _, s := range inputs {
			s.Free()
		}
	}
}

// planCompactionLocked picks the next due compaction: all L0 runs into L1
// when L0 is full (srcLevel -1), else the first oversized lower level
// into the one below it (srcLevel i). Allocates the output run number.
// Requires mu.
func (t *Tree) planCompactionLocked() (inputs []*part.Segment, srcLevel int, dropTombs bool, no int, ok bool) {
	if len(t.l0) >= t.opts.L0Runs {
		inputs = append([]*part.Segment{}, t.l0...)
		if len(t.lower) > 0 && t.lower[0] != nil {
			inputs = append(inputs, t.lower[0])
		}
		no = t.runNo
		t.runNo++
		return inputs, -1, t.bottomEmpty(0), no, true
	}
	target := t.opts.LevelRatio * t.opts.MemtableBytes
	for i := 0; i < len(t.lower); i++ {
		if t.lower[i] == nil || t.lower[i].SizeBytes <= target {
			target *= t.opts.LevelRatio
			continue
		}
		inputs = []*part.Segment{t.lower[i]}
		if i+1 < len(t.lower) && t.lower[i+1] != nil {
			inputs = append(inputs, t.lower[i+1])
		}
		no = t.runNo
		t.runNo++
		return inputs, i, t.bottomEmpty(i + 1), no, true
	}
	return nil, 0, false, 0, false
}

// installCompactionLocked swaps the merged run in for its inputs.
// merged may be nil (everything compacted away). Requires mu.
func (t *Tree) installCompactionLocked(inputs []*part.Segment, srcLevel int, merged *part.Segment) {
	dest := 0
	if srcLevel < 0 {
		// Remove exactly the consumed runs; background flushes cannot have
		// prepended new ones (compactMu), but filter defensively.
		consumed := make(map[*part.Segment]bool, len(inputs))
		for _, s := range inputs {
			consumed[s] = true
		}
		var keep []*part.Segment
		for _, s := range t.l0 {
			if !consumed[s] {
				keep = append(keep, s)
			}
		}
		t.l0 = keep
	} else {
		t.lower[srcLevel] = nil
		dest = srcLevel + 1
	}
	for len(t.lower) <= dest {
		t.lower = append(t.lower, nil)
	}
	t.lower[dest] = merged
	t.stats.Compactions++
}

// bottomEmpty reports whether no run exists below level index i (tombstones
// can then be dropped).
func (t *Tree) bottomEmpty(i int) bool {
	for j := i + 1; j < len(t.lower); j++ {
		if t.lower[j] != nil {
			return false
		}
	}
	return true
}

// mergeRuns merges runs (newest first) into run number no, newest entry
// per key winning; dropTombs drops tombstones (safe only at the bottom).
// Touches no locked state: callable with or without mu.
func (t *Tree) mergeRuns(runs []*part.Segment, dropTombs bool, no int) (*part.Segment, error) {
	its := make([]*part.Iterator, len(runs))
	for i, r := range runs {
		its[i] = r.Min()
	}
	var out []part.KV
	for {
		var minKey []byte
		best := -1
		for i, it := range its {
			if !it.Valid() {
				continue
			}
			k := it.Record().Key
			if best < 0 || bytes.Compare(k, minKey) < 0 {
				minKey, best = k, i
			}
		}
		if best < 0 {
			break
		}
		rec := its[best].Record()
		e := decodeBody(rec.Body)
		if !(dropTombs && e.tomb) {
			out = append(out, part.KV{Key: rec.Key, Body: rec.Body})
		}
		for _, it := range its {
			if it.Valid() && bytes.Equal(it.Record().Key, minKey) {
				it.Next()
			}
		}
	}
	for _, it := range its {
		if it.Err() != nil {
			return nil, it.Err()
		}
	}
	return part.Build(t.pool, t.file, no, out, 0, 0, part.BuildOptions{BloomBitsPerKey: t.opts.BloomBits})
}
