package lsm

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/buffer"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/util"
)

func newTree(frames int, opts Options) (*Tree, *ssd.Device) {
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	fm := sfile.NewManager(dev)
	if opts.Name == "" {
		opts.Name = "lsm"
	}
	return New(buffer.New(frames), fm.Create(opts.Name, sfile.ClassIndex), opts), dev
}

func TestPutGet(t *testing.T) {
	tr, _ := newTree(64, Options{})
	tr.Put([]byte("a"), []byte("1"))
	v, ok, err := tr.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]byte("b")); ok {
		t.Fatal("absent key found")
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	tr, _ := newTree(64, Options{})
	tr.Put([]byte("k"), []byte("old"))
	tr.Flush()
	tr.Put([]byte("k"), []byte("new"))
	v, ok, _ := tr.Get([]byte("k"))
	if !ok || string(v) != "new" {
		t.Fatalf("got %q", v)
	}
	tr.Flush() // two runs now; still newest wins
	v, ok, _ = tr.Get([]byte("k"))
	if !ok || string(v) != "new" {
		t.Fatalf("after flush got %q", v)
	}
}

func TestDeleteTombstone(t *testing.T) {
	tr, _ := newTree(64, Options{})
	tr.Put([]byte("k"), []byte("v"))
	tr.Flush()
	tr.Delete([]byte("k"))
	if _, ok, _ := tr.Get([]byte("k")); ok {
		t.Fatal("deleted key visible (memtable tombstone)")
	}
	tr.Flush()
	if _, ok, _ := tr.Get([]byte("k")); ok {
		t.Fatal("deleted key visible (flushed tombstone)")
	}
}

func TestFlushAndCompaction(t *testing.T) {
	tr, dev := newTree(2048, Options{MemtableBytes: 32 << 10, L0Runs: 3, LevelRatio: 4})
	r := util.NewRand(5)
	model := map[string]string{}
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("key-%06d", r.Intn(5000))
		v := fmt.Sprintf("val-%d", i)
		tr.Put([]byte(k), []byte(v))
		model[k] = v
	}
	st := tr.Stats()
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("no flushes/compactions: %+v", st)
	}
	// Spot-check correctness.
	n := 0
	for k, want := range model {
		v, ok, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != want {
			t.Fatalf("key %s: got %q want %q", k, v, want)
		}
		if n++; n > 500 {
			break
		}
	}
	// Write amplification: compaction rewrites data, so device writes
	// exceed logical data size.
	s := dev.Stats()
	if s.BytesWritten == 0 {
		t.Fatal("no device writes")
	}
}

func TestScanMergesRunsNewestWins(t *testing.T) {
	tr, _ := newTree(512, Options{})
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("old"))
	}
	tr.Flush()
	for i := 0; i < 100; i += 2 {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("new"))
	}
	tr.Flush()
	for i := 1; i < 100; i += 10 {
		tr.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	var keys []string
	err := tr.Scan([]byte("k"), []byte("l"), func(k, v []byte) bool {
		keys = append(keys, string(k))
		want := "old"
		idx := 0
		fmt.Sscanf(string(k), "k%03d", &idx)
		if idx%2 == 0 {
			want = "new"
		}
		if string(v) != want {
			t.Fatalf("key %s: got %q want %q", k, v, want)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 90 {
		t.Fatalf("scan returned %d keys, want 90 (10 deleted)", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("scan out of order")
		}
	}
}

func TestScanRangeBounds(t *testing.T) {
	tr, _ := newTree(256, Options{})
	for i := 0; i < 1000; i++ {
		tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	tr.Flush()
	count := 0
	tr.Scan([]byte("k0100"), []byte("k0200"), func(k, v []byte) bool {
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("range scan count=%d", count)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _ := newTree(256, Options{})
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	count := 0
	tr.Scan([]byte("k"), nil, func(k, v []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop ignored: %d", count)
	}
}

func TestBloomSkipsRuns(t *testing.T) {
	tr, _ := newTree(512, Options{BloomBits: 10, L0Runs: 100}) // no compaction
	for p := 0; p < 5; p++ {
		for i := 0; i < 200; i++ {
			tr.Put([]byte(fmt.Sprintf("r%d-%04d", p, i)), []byte("v"))
		}
		tr.Flush()
	}
	before := tr.Stats().BloomNegatives
	for i := 0; i < 100; i++ {
		tr.Get([]byte(fmt.Sprintf("r0-%04d", i))) // in the OLDEST run
	}
	if tr.Stats().BloomNegatives-before < 300 {
		t.Fatalf("bloom not skipping runs: %d", tr.Stats().BloomNegatives-before)
	}
}

func TestTombstonesDroppedAtBottom(t *testing.T) {
	tr, _ := newTree(1024, Options{MemtableBytes: 8 << 10, L0Runs: 2, LevelRatio: 100})
	for i := 0; i < 500; i++ {
		tr.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("x"), 30))
	}
	for i := 0; i < 500; i++ {
		tr.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	tr.Flush()
	// Force everything into one bottom run.
	for tr.NumRuns() > 1 {
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		tr.Put([]byte("filler"), []byte("x"))
		tr.Flush()
	}
	count := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { count++; return true })
	if count > 1 { // only the filler may remain
		t.Fatalf("tombstoned keys survived bottom compaction: %d live", count)
	}
}

func TestRandomizedModel(t *testing.T) {
	tr, _ := newTree(2048, Options{MemtableBytes: 16 << 10, L0Runs: 3, LevelRatio: 4})
	r := util.NewRand(11)
	model := map[string]string{}
	for step := 0; step < 20000; step++ {
		k := fmt.Sprintf("key-%04d", r.Intn(800))
		switch r.Intn(10) {
		case 0:
			tr.Delete([]byte(k))
			delete(model, k)
		default:
			v := fmt.Sprintf("v%d", step)
			tr.Put([]byte(k), []byte(v))
			model[k] = v
		}
		if step%4999 == 0 {
			got := map[string]string{}
			tr.Scan(nil, nil, func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			})
			if len(got) != len(model) {
				t.Fatalf("step %d: scan size %d, model %d", step, len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("step %d key %s: got %q want %q", step, k, got[k], v)
				}
			}
		}
	}
}
