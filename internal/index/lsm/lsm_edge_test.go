package lsm

import (
	"fmt"
	"testing"
)

func TestGetFromEveryLevel(t *testing.T) {
	// Force keys into distinct storage locations: memtable, L0 run, and a
	// compacted lower level; Get must find all of them.
	tr, _ := newTree(2048, Options{MemtableBytes: 4 << 10, L0Runs: 2, LevelRatio: 2})
	// Old data, pushed down by compaction.
	for i := 0; i < 1000; i++ {
		tr.Put([]byte(fmt.Sprintf("old-%04d", i)), []byte("deep"))
	}
	tr.Flush()
	// Fresh L0 run.
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("mid-%04d", i)), []byte("run"))
	}
	tr.Flush()
	// Memtable only.
	tr.Put([]byte("new-0001"), []byte("mem"))

	for _, c := range []struct{ k, v string }{
		{"old-0500", "deep"}, {"mid-0025", "run"}, {"new-0001", "mem"},
	} {
		v, ok, err := tr.Get([]byte(c.k))
		if err != nil || !ok || string(v) != c.v {
			t.Fatalf("%s: %q %v %v", c.k, v, ok, err)
		}
	}
	if tr.NumRuns() < 2 {
		t.Fatalf("expected multiple runs, got %d", tr.NumRuns())
	}
}

func TestScanAcrossCompactionBoundary(t *testing.T) {
	tr, _ := newTree(2048, Options{MemtableBytes: 8 << 10, L0Runs: 2, LevelRatio: 2})
	for i := 0; i < 3000; i++ {
		tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	// Overwrite a band so newest-wins spans the level boundary.
	for i := 1000; i < 1100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("NEW"))
	}
	n, news := 0, 0
	err := tr.Scan([]byte("k00900"), []byte("k01200"), func(k, v []byte) bool {
		n++
		if string(v) == "NEW" {
			news++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 || news != 100 {
		t.Fatalf("scan saw %d rows (%d NEW), want 300/100", n, news)
	}
}

func TestEmptyTreeOperations(t *testing.T) {
	tr, _ := newTree(64, Options{})
	if _, ok, _ := tr.Get([]byte("x")); ok {
		t.Fatal("empty tree found a key")
	}
	if err := tr.Delete([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { n++; return true })
	// Only the tombstone-shadowed key exists; scan must skip it.
	if n != 0 {
		t.Fatalf("empty-tree scan returned %d rows", n)
	}
	if tr.NumRuns() > 1 {
		t.Fatalf("empty flushes created %d runs", tr.NumRuns())
	}
}

func TestStatsAccumulate(t *testing.T) {
	tr, _ := newTree(2048, Options{MemtableBytes: 4 << 10, L0Runs: 2, LevelRatio: 2, BloomBits: 10})
	for i := 0; i < 2000; i++ {
		tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("vvvvvvvv"))
	}
	st := tr.Stats()
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("stats flat: %+v", st)
	}
}
