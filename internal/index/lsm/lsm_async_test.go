package lsm

import (
	"fmt"
	"sync"
	"testing"

	"mvpbt/internal/maint"
)

// Background-flush mode: memtables freeze onto the imm list, a
// maintenance service builds the runs, reads cover mem + imm + runs
// throughout, and Close leaves nothing in memory.

func newAsyncTree(t *testing.T, opts Options) (*Tree, *maint.Service) {
	t.Helper()
	tr, _ := newTree(512, opts)
	svc := maint.New(maint.Config{Workers: 2})
	tr.SetFlushNotify(func() {
		svc.Submit(maint.Flush, "lsm", tr.FlushPending)
	})
	t.Cleanup(func() { svc.Close() })
	return tr, svc
}

func TestAsyncFlushReadsCoverImm(t *testing.T) {
	tr, svc := newAsyncTree(t, Options{MemtableBytes: 4 << 10})
	val := make([]byte, 64)
	n := 500
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatal(err)
		}
		// Interleave reads: keys must be visible whether they sit in mem,
		// a frozen imm, or an already-flushed run.
		if i%37 == 0 {
			probe := []byte(fmt.Sprintf("k%06d", i/2))
			if _, ok, err := tr.Get(probe); err != nil || !ok {
				t.Fatalf("key %s lost mid-flush: ok=%v err=%v", probe, ok, err)
			}
		}
	}
	svc.Drain()
	if tr.Stats().Flushes == 0 {
		t.Fatal("no background flush happened")
	}
	// Every key still readable, and a scan sees all of them exactly once.
	got := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { got++; return true })
	if got != n {
		t.Fatalf("scan saw %d keys, want %d", got, n)
	}
}

func TestAsyncFlushCompacts(t *testing.T) {
	tr, svc := newAsyncTree(t, Options{MemtableBytes: 2 << 10, L0Runs: 2})
	val := make([]byte, 128)
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i%300)), val); err != nil {
			t.Fatal(err)
		}
	}
	svc.Drain()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions despite L0Runs=2: %+v", st)
	}
	if tr.PendingMemtables() != 0 {
		t.Fatalf("Close left %d frozen memtables", tr.PendingMemtables())
	}
	got := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { got++; return true })
	if got != 300 {
		t.Fatalf("scan saw %d keys, want 300", got)
	}
}

func TestAsyncFlushStallsWhenBehind(t *testing.T) {
	// A notifier that never flushes forces the writer to hit the
	// maxPendingImm bound and drain the backlog itself.
	tr, _ := newTree(512, Options{MemtableBytes: 1 << 10})
	tr.SetFlushNotify(func() {}) // flushes never scheduled
	val := make([]byte, 64)
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Stalls == 0 {
		t.Fatal("writer never stalled despite no background flushing")
	}
	if st.Flushes == 0 {
		t.Fatal("stalled writer did not drain the backlog")
	}
	if n := tr.PendingMemtables(); n > maxPendingImm {
		t.Fatalf("imm backlog %d exceeds bound %d", n, maxPendingImm)
	}
}

func TestAsyncCloseFlushesMemtable(t *testing.T) {
	tr, svc := newAsyncTree(t, Options{MemtableBytes: 1 << 20})
	tr.Put([]byte("only"), []byte("v"))
	svc.Drain()
	if tr.Stats().Flushes != 0 {
		t.Fatal("small memtable flushed early")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Flushes != 1 {
		t.Fatal("Close did not flush the live memtable")
	}
	if v, ok, _ := tr.Get([]byte("only")); !ok || string(v) != "v" {
		t.Fatal("key lost across Close")
	}
}

func TestAsyncConcurrentWritersAndReaders(t *testing.T) {
	tr, svc := newAsyncTree(t, Options{MemtableBytes: 8 << 10, L0Runs: 3})
	val := make([]byte, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := []byte(fmt.Sprintf("g%dk%06d", g, i))
				if err := tr.Put(key, val); err != nil {
					t.Error(err)
					return
				}
				if i%29 == 0 {
					if _, ok, err := tr.Get(key); err != nil || !ok {
						t.Errorf("own write lost: %s ok=%v err=%v", key, ok, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	svc.Drain()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { got++; return true })
	if got != 4000 {
		t.Fatalf("scan saw %d keys, want 4000", got)
	}
}
