package util

import "encoding/binary"

// Order-preserving key codecs: the encoded byte strings compare (with
// bytes.Compare) in the same order as the source values. Indexes store keys
// as opaque byte strings, so all workload key types funnel through these.

// EncodeUint64 appends the big-endian encoding of v to dst.
func EncodeUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// DecodeUint64 reads a value encoded by EncodeUint64.
func DecodeUint64(src []byte) uint64 {
	return binary.BigEndian.Uint64(src)
}

// EncodeUint32 appends the big-endian encoding of v to dst.
func EncodeUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// DecodeUint32 reads a value encoded by EncodeUint32.
func DecodeUint32(src []byte) uint32 {
	return binary.BigEndian.Uint32(src)
}

// EncodeInt64 appends an order-preserving encoding of a signed value: the
// sign bit is flipped so negative values sort before positive ones.
func EncodeInt64(dst []byte, v int64) []byte {
	return EncodeUint64(dst, uint64(v)^(1<<63))
}

// DecodeInt64 reads a value encoded by EncodeInt64.
func DecodeInt64(src []byte) int64 {
	return int64(DecodeUint64(src) ^ (1 << 63))
}

// PutUvarint appends v as a varint to dst.
func PutUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	return append(dst, b[:n]...)
}

// Uvarint reads a varint from src, returning the value and byte count.
func Uvarint(src []byte) (uint64, int) {
	return binary.Uvarint(src)
}

// PutBytes appends a length-prefixed byte string to dst.
func PutBytes(dst, b []byte) []byte {
	dst = PutUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// GetBytes reads a length-prefixed byte string, returning the string (a
// sub-slice of src, not a copy) and the total byte count consumed.
func GetBytes(src []byte) ([]byte, int) {
	l, n := Uvarint(src)
	return src[n : n+int(l)], n + int(l)
}

// CommonPrefix returns the length of the longest common prefix of a and b.
func CommonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
