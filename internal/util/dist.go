package util

import "math"

// Generator produces item indexes in [0, N) following some distribution.
// All generators in this package are deterministic given their seed and are
// not safe for concurrent use.
type Generator interface {
	// Next returns the next item index.
	Next() uint64
}

// Uniform draws items uniformly from [0, n).
type Uniform struct {
	r *Rand
	n uint64
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(r *Rand, n uint64) *Uniform {
	return &Uniform{r: r, n: n}
}

// Next implements Generator.
func (u *Uniform) Next() uint64 { return u.r.Uint64() % u.n }

// Zipfian draws items from [0, n) with a zipfian (power-law) distribution,
// following the rejection-free algorithm from Gray et al. "Quickly
// Generating Billion-Record Synthetic Databases" that YCSB uses. Item 0 is
// the most popular.
type Zipfian struct {
	r            *Rand
	items        uint64
	theta        float64
	zetaN, zeta2 float64
	alpha, eta   float64
}

// ZipfianConstant is YCSB's default skew parameter.
const ZipfianConstant = 0.99

// NewZipfian returns a zipfian generator over [0, items) with the given
// theta (use ZipfianConstant for the YCSB default).
func NewZipfian(r *Rand, items uint64, theta float64) *Zipfian {
	z := &Zipfian{r: r, items: items, theta: theta}
	z.zetaN = zeta(items, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetaN
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads zipfian ranks across the key space by hashing,
// so the popular items are not clustered — YCSB's default request
// distribution for workloads A and B.
type ScrambledZipfian struct {
	z     *Zipfian
	items uint64
}

// NewScrambledZipfian returns a scrambled zipfian generator over [0, items).
func NewScrambledZipfian(r *Rand, items uint64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(r, items, ZipfianConstant), items: items}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next() uint64 { return FNV64a(s.z.Next()) % s.items }

// Latest skews requests towards recently inserted items — YCSB workload D.
// The caller advances the insert frontier with SetMax as new items are
// created.
type Latest struct {
	z   *Zipfian
	max uint64
}

// NewLatest returns a latest-skewed generator; max is the current number of
// inserted items (frontier).
func NewLatest(r *Rand, max uint64) *Latest {
	return &Latest{z: NewZipfian(r, max, ZipfianConstant), max: max}
}

// SetMax advances the insert frontier. The underlying zipfian keeps its
// original zeta (YCSB does an incremental update; for our frontier growth
// rates the difference is negligible and the shape is preserved).
func (l *Latest) SetMax(max uint64) { l.max = max }

// Next implements Generator.
func (l *Latest) Next() uint64 {
	off := l.z.Next()
	if off >= l.max {
		off = l.max - 1
	}
	return l.max - 1 - off
}
