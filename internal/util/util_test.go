package util

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestUniformRange(t *testing.T) {
	u := NewUniform(NewRand(1), 100)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		v := u.Next()
		if v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 90 {
		t.Fatalf("uniform covered only %d/100 items", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(NewRand(3), 1000, ZipfianConstant)
	counts := make([]int, 1000)
	n := 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the most popular: ~1/zeta(1000) of requests.
	if counts[0] < n/20 {
		t.Fatalf("zipfian head not popular enough: %d/%d", counts[0], n)
	}
	// The tail should still be hit occasionally.
	tail := 0
	for _, c := range counts[500:] {
		tail += c
	}
	if tail == 0 {
		t.Fatal("zipfian never hit the tail half")
	}
	if counts[0] <= counts[500] {
		t.Fatal("zipfian head not more popular than tail")
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	s := NewScrambledZipfian(NewRand(5), 1000)
	seen := make(map[uint64]bool)
	for i := 0; i < 50000; i++ {
		v := s.Next()
		if v >= 1000 {
			t.Fatalf("scrambled zipfian out of range: %d", v)
		}
		seen[v] = true
	}
	// Hot items are hashed across the space; a decent fraction is touched.
	if len(seen) < 200 {
		t.Fatalf("scrambled zipfian touched only %d items", len(seen))
	}
}

func TestLatestSkewsToRecent(t *testing.T) {
	l := NewLatest(NewRand(9), 1000)
	recent := 0
	n := 50000
	for i := 0; i < n; i++ {
		v := l.Next()
		if v >= 1000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 900 {
			recent++
		}
	}
	if recent < n/2 {
		t.Fatalf("latest distribution not skewed to recent: %d/%d in top decile", recent, n)
	}
	l.SetMax(2000)
	for i := 0; i < 1000; i++ {
		if v := l.Next(); v >= 2000 {
			t.Fatalf("latest out of extended range: %d", v)
		}
	}
}

func TestEncodeUint64OrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		ea := EncodeUint64(nil, a)
		eb := EncodeUint64(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeInt64OrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ea := EncodeInt64(nil, a)
		eb := EncodeInt64(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, v uint32) bool {
		if DecodeUint64(EncodeUint64(nil, u)) != u {
			return false
		}
		if DecodeInt64(EncodeInt64(nil, i)) != i {
			return false
		}
		return DecodeUint32(EncodeUint32(nil, v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetBytes(t *testing.T) {
	f := func(b []byte, trailer []byte) bool {
		enc := PutBytes(nil, b)
		enc = append(enc, trailer...)
		got, n := GetBytes(enc)
		return bytes.Equal(got, b) && n == len(enc)-len(trailer)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := PutUvarint(nil, v)
		got, n := Uvarint(enc)
		return got == v && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommonPrefix(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 3},
		{"abc", "abd", 2},
		{"abc", "xbc", 0},
		{"ab", "abcd", 2},
		{"abcd", "ab", 2},
	}
	for _, c := range cases {
		if got := CommonPrefix([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("CommonPrefix(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFNV64aDisperses(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		seen[FNV64a(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("FNV64a collided on sequential inputs: %d unique", len(seen))
	}
}
