// Package util provides small shared helpers: deterministic random number
// generation, workload key-distribution generators (uniform, zipfian,
// latest), and order-preserving key codecs used by the storage engine and
// the benchmark workloads.
package util

// Rand is a small, fast, deterministic PRNG (xorshift64*). It is not safe
// for concurrent use; give each goroutine its own instance.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is replaced by a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("util: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a pseudo-random float64 in [0.0, 1.0).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntRange returns a pseudo-random int in [lo, hi] inclusive.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("util: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Letters fills buf with pseudo-random lower-case letters.
func (r *Rand) Letters(buf []byte) {
	for i := range buf {
		buf[i] = byte('a' + r.Intn(26))
	}
}

// FNV64a hashes b with the 64-bit FNV-1a function. It is used to scramble
// zipfian ranks into a key space (YCSB "scrambled zipfian").
func FNV64a(x uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= x & 0xFF
		h *= prime
		x >>= 8
	}
	return h
}
