package skiplist

import (
	"bytes"
	"sort"
	"testing"

	"mvpbt/internal/util"
)

func intList() *List[int, string] {
	return New[int, string](func(a, b int) int { return a - b }, nil)
}

func TestSetGetDelete(t *testing.T) {
	l := intList()
	l.Set(3, "three")
	l.Set(1, "one")
	l.Set(2, "two")
	if v, ok := l.Get(2); !ok || v != "two" {
		t.Fatalf("Get(2)=%q,%v", v, ok)
	}
	if _, ok := l.Get(9); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if !l.Delete(2) || l.Delete(2) {
		t.Fatal("Delete semantics wrong")
	}
	if l.Len() != 2 {
		t.Fatalf("Len=%d want 2", l.Len())
	}
}

func TestOverwrite(t *testing.T) {
	l := intList()
	l.Set(1, "a")
	l.Set(1, "b")
	if l.Len() != 1 {
		t.Fatalf("overwrite changed Len: %d", l.Len())
	}
	if v, _ := l.Get(1); v != "b" {
		t.Fatalf("overwrite lost: %q", v)
	}
}

func TestOrderedIteration(t *testing.T) {
	l := intList()
	r := util.NewRand(99)
	want := map[int]bool{}
	for i := 0; i < 2000; i++ {
		k := r.Intn(10000)
		l.Set(k, "")
		want[k] = true
	}
	var keys []int
	for it := l.Min(); it.Valid(); it.Next() {
		keys = append(keys, it.Key())
	}
	if len(keys) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(keys), len(want))
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatal("iteration not sorted")
	}
}

func TestSeek(t *testing.T) {
	l := intList()
	for _, k := range []int{10, 20, 30, 40} {
		l.Set(k, "")
	}
	it := l.Seek(25)
	if !it.Valid() || it.Key() != 30 {
		t.Fatalf("Seek(25) at %v", it.Key())
	}
	it = l.Seek(30)
	if !it.Valid() || it.Key() != 30 {
		t.Fatalf("Seek(30) at %v", it.Key())
	}
	it = l.Seek(41)
	if it.Valid() {
		t.Fatal("Seek past end should be invalid")
	}
	it = l.Seek(5)
	if !it.Valid() || it.Key() != 10 {
		t.Fatal("Seek before begin should land on min")
	}
}

func TestCustomComparatorCompositeOrder(t *testing.T) {
	// The MV-PBT PN ordering: key ascending, timestamp DESCENDING.
	type k struct {
		key []byte
		ts  uint64
	}
	cmp := func(a, b k) int {
		if c := bytes.Compare(a.key, b.key); c != 0 {
			return c
		}
		switch {
		case a.ts > b.ts:
			return -1
		case a.ts < b.ts:
			return 1
		default:
			return 0
		}
	}
	l := New[k, int](cmp, nil)
	l.Set(k{[]byte("a"), 1}, 0)
	l.Set(k{[]byte("a"), 5}, 0)
	l.Set(k{[]byte("a"), 3}, 0)
	l.Set(k{[]byte("b"), 2}, 0)
	var got []uint64
	for it := l.Min(); it.Valid(); it.Next() {
		if string(it.Key().key) == "a" {
			got = append(got, it.Key().ts)
		}
	}
	want := []uint64{5, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ts order %v, want %v (newest first)", got, want)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	l := New[string, string](func(a, b string) int {
		return bytes.Compare([]byte(a), []byte(b))
	}, func(k, v string) int { return len(k) + len(v) })
	l.Set("abc", "1234")
	if l.Bytes() != 7 {
		t.Fatalf("Bytes=%d want 7", l.Bytes())
	}
	l.Set("abc", "12") // overwrite shrinks
	if l.Bytes() != 5 {
		t.Fatalf("Bytes=%d want 5", l.Bytes())
	}
	l.Delete("abc")
	if l.Bytes() != 0 {
		t.Fatalf("Bytes=%d want 0", l.Bytes())
	}
}

func TestModelProperty(t *testing.T) {
	l := intList()
	model := map[int]string{}
	r := util.NewRand(7)
	vals := []string{"x", "y", "z"}
	for step := 0; step < 30000; step++ {
		k := r.Intn(500)
		switch r.Intn(3) {
		case 0:
			v := vals[r.Intn(3)]
			l.Set(k, v)
			model[k] = v
		case 1:
			got, ok := l.Get(k)
			want, wok := model[k]
			if ok != wok || got != want {
				t.Fatalf("step %d: Get(%d)=%q,%v want %q,%v", step, k, got, ok, want, wok)
			}
		case 2:
			if l.Delete(k) != (func() bool { _, ok := model[k]; return ok })() {
				t.Fatalf("step %d: Delete(%d) mismatch", step, k)
			}
			delete(model, k)
		}
	}
	if l.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", l.Len(), len(model))
	}
}
