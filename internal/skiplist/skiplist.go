// Package skiplist provides an ordered in-memory map with a caller-supplied
// comparator. It backs the LSM memtable and the MV-PBT main-memory
// partition PN, whose ordering (search key ascending, transaction
// timestamp descending — paper §4.3) is not a plain byte ordering.
//
// Concurrency: the list is single-writer multi-reader (SWMR). Readers
// (Get, Seek, Min, iteration) may run lock-free and concurrently with one
// writer; all mutations (Set, Delete) and the Len/Bytes accessors must be
// serialized externally. Links are atomic pointers: Set publishes a new
// node bottom-up after its forward pointers are set, Delete unlinks
// top-down and leaves the victim's forward pointers intact, so a reader
// parked on either keeps a consistent view of the remaining list.
package skiplist

import (
	"sync/atomic"

	"mvpbt/internal/util"
)

const maxLevel = 20

// List is a skiplist from K to V ordered by the comparator. One writer
// and any number of readers may proceed concurrently; writers synchronize
// among themselves externally.
type List[K any, V any] struct {
	cmp   func(a, b K) int
	head  *node[K, V]
	level atomic.Int32
	n     int
	rnd   *util.Rand
	bytes int
	size  func(k K, v V) int
}

// inlineLevels is the tower height stored inside the node itself. With the
// 1/4 level promotion probability, ~99.6% of nodes fit (P[lvl>4] = 4^-4),
// so the common-case insert is one allocation: node and tower together.
const inlineLevels = 4

type node[K any, V any] struct {
	key    K
	val    V
	next   []atomic.Pointer[node[K, V]] // aliases inline for lvl <= inlineLevels
	inline [inlineLevels]atomic.Pointer[node[K, V]]
}

func newNode[K any, V any](k K, v V, lvl int) *node[K, V] {
	n := &node[K, V]{key: k, val: v}
	if lvl <= inlineLevels {
		n.next = n.inline[:lvl:inlineLevels]
	} else {
		n.next = make([]atomic.Pointer[node[K, V]], lvl)
	}
	return n
}

// New returns an empty list ordered by cmp. size, if non-nil, is used to
// account approximate memory usage (Bytes).
func New[K any, V any](cmp func(a, b K) int, size func(k K, v V) int) *List[K, V] {
	l := &List[K, V]{
		cmp:  cmp,
		head: newNode[K, V](*new(K), *new(V), maxLevel),
		rnd:  util.NewRand(0x5EEDF00D),
		size: size,
	}
	l.level.Store(1)
	return l
}

// Len returns the number of entries. Writer-side only.
func (l *List[K, V]) Len() int { return l.n }

// Bytes returns the accumulated size of all entries (per the size
// function; 0 if none was given). Writer-side only.
func (l *List[K, V]) Bytes() int { return l.bytes }

func (l *List[K, V]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rnd.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}

// findGE returns the first node with key >= k, filling prev with the
// predecessor at each level when prev is non-nil. Safe for concurrent
// readers (prev==nil); the writer passes prev under its own serialization.
func (l *List[K, V]) findGE(k K, prev []*node[K, V]) *node[K, V] {
	x := l.head
	for i := int(l.level.Load()) - 1; i >= 0; i-- {
		for nx := x.next[i].Load(); nx != nil && l.cmp(nx.key, k) < 0; nx = x.next[i].Load() {
			x = nx
		}
		if prev != nil {
			prev[i] = x
		}
	}
	return x.next[0].Load()
}

// Set inserts or overwrites the entry for k. Overwrite replaces the node
// rather than mutating it in place, so a concurrent reader positioned on
// the old node still sees a consistent (pre-overwrite) entry.
func (l *List[K, V]) Set(k K, v V) {
	var prev [maxLevel]*node[K, V]
	x := l.findGE(k, prev[:])
	if x != nil && l.cmp(x.key, k) == 0 {
		if l.size != nil {
			l.bytes += l.size(k, v) - l.size(x.key, x.val)
		}
		nd := newNode(k, v, len(x.next))
		for i := 0; i < len(x.next); i++ {
			nd.next[i].Store(x.next[i].Load())
		}
		for i := len(x.next) - 1; i >= 0; i-- {
			prev[i].next[i].Store(nd)
		}
		return
	}
	lvl := l.randomLevel()
	if cur := int(l.level.Load()); lvl > cur {
		for i := cur; i < lvl; i++ {
			prev[i] = l.head
		}
		l.level.Store(int32(lvl))
	}
	nd := newNode(k, v, lvl)
	// Link bottom-up: once level 0 is published the node is reachable in
	// full; higher levels only add shortcuts.
	for i := 0; i < lvl; i++ {
		nd.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(nd)
	}
	l.n++
	if l.size != nil {
		l.bytes += l.size(k, v)
	}
}

// Get returns the value for k.
func (l *List[K, V]) Get(k K) (V, bool) {
	x := l.findGE(k, nil)
	if x != nil && l.cmp(x.key, k) == 0 {
		return x.val, true
	}
	var zero V
	return zero, false
}

// Delete removes the entry for k, reporting whether it existed. The
// victim is unlinked top-down and its own forward pointers are preserved,
// so a reader parked on it continues into the surviving suffix.
func (l *List[K, V]) Delete(k K) bool {
	var prev [maxLevel]*node[K, V]
	x := l.findGE(k, prev[:])
	if x == nil || l.cmp(x.key, k) != 0 {
		return false
	}
	for i := len(x.next) - 1; i >= 0; i-- {
		if prev[i].next[i].Load() == x {
			prev[i].next[i].Store(x.next[i].Load())
		}
	}
	l.n--
	if l.size != nil {
		l.bytes -= l.size(x.key, x.val)
	}
	return true
}

// Iterator walks entries in order. The zero Iterator is exhausted.
// Iterating concurrently with the writer is safe: the iterator sees some
// consistent interleaving of the entries present during the walk.
type Iterator[K any, V any] struct {
	nd *node[K, V]
}

// Min returns an iterator at the smallest entry.
func (l *List[K, V]) Min() Iterator[K, V] {
	return Iterator[K, V]{nd: l.head.next[0].Load()}
}

// Seek returns an iterator at the first entry with key >= k.
func (l *List[K, V]) Seek(k K) Iterator[K, V] {
	return Iterator[K, V]{nd: l.findGE(k, nil)}
}

// Valid reports whether the iterator is positioned on an entry.
func (it Iterator[K, V]) Valid() bool { return it.nd != nil }

// Key returns the current key; only valid when Valid.
func (it Iterator[K, V]) Key() K { return it.nd.key }

// Value returns the current value; only valid when Valid.
func (it Iterator[K, V]) Value() V { return it.nd.val }

// Next advances to the following entry.
func (it *Iterator[K, V]) Next() { it.nd = it.nd.next[0].Load() }
