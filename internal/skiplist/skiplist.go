// Package skiplist provides an ordered in-memory map with a caller-supplied
// comparator. It backs the LSM memtable and the MV-PBT main-memory
// partition PN, whose ordering (search key ascending, transaction
// timestamp descending — paper §4.3) is not a plain byte ordering.
package skiplist

import "mvpbt/internal/util"

const maxLevel = 20

// List is a skiplist from K to V ordered by the comparator. Not safe for
// concurrent use; callers synchronize.
type List[K any, V any] struct {
	cmp   func(a, b K) int
	head  *node[K, V]
	level int
	n     int
	rnd   *util.Rand
	bytes int
	size  func(k K, v V) int
}

type node[K any, V any] struct {
	key  K
	val  V
	next []*node[K, V]
}

// New returns an empty list ordered by cmp. size, if non-nil, is used to
// account approximate memory usage (Bytes).
func New[K any, V any](cmp func(a, b K) int, size func(k K, v V) int) *List[K, V] {
	return &List[K, V]{
		cmp:   cmp,
		head:  &node[K, V]{next: make([]*node[K, V], maxLevel)},
		level: 1,
		rnd:   util.NewRand(0x5EEDF00D),
		size:  size,
	}
}

// Len returns the number of entries.
func (l *List[K, V]) Len() int { return l.n }

// Bytes returns the accumulated size of all entries (per the size
// function; 0 if none was given).
func (l *List[K, V]) Bytes() int { return l.bytes }

func (l *List[K, V]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rnd.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}

// findGE returns the first node with key >= k, filling prev with the
// predecessor at each level when prev is non-nil.
func (l *List[K, V]) findGE(k K, prev []*node[K, V]) *node[K, V] {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && l.cmp(x.next[i].key, k) < 0 {
			x = x.next[i]
		}
		if prev != nil {
			prev[i] = x
		}
	}
	return x.next[0]
}

// Set inserts or overwrites the entry for k.
func (l *List[K, V]) Set(k K, v V) {
	var prev [maxLevel]*node[K, V]
	x := l.findGE(k, prev[:])
	if x != nil && l.cmp(x.key, k) == 0 {
		if l.size != nil {
			l.bytes += l.size(k, v) - l.size(x.key, x.val)
		}
		x.key, x.val = k, v
		return
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			prev[i] = l.head
		}
		l.level = lvl
	}
	nd := &node[K, V]{key: k, val: v, next: make([]*node[K, V], lvl)}
	for i := 0; i < lvl; i++ {
		nd.next[i] = prev[i].next[i]
		prev[i].next[i] = nd
	}
	l.n++
	if l.size != nil {
		l.bytes += l.size(k, v)
	}
}

// Get returns the value for k.
func (l *List[K, V]) Get(k K) (V, bool) {
	x := l.findGE(k, nil)
	if x != nil && l.cmp(x.key, k) == 0 {
		return x.val, true
	}
	var zero V
	return zero, false
}

// Delete removes the entry for k, reporting whether it existed.
func (l *List[K, V]) Delete(k K) bool {
	var prev [maxLevel]*node[K, V]
	x := l.findGE(k, prev[:])
	if x == nil || l.cmp(x.key, k) != 0 {
		return false
	}
	for i := 0; i < len(x.next); i++ {
		if prev[i].next[i] == x {
			prev[i].next[i] = x.next[i]
		}
	}
	l.n--
	if l.size != nil {
		l.bytes -= l.size(x.key, x.val)
	}
	return true
}

// Iterator walks entries in order. The zero Iterator is exhausted.
type Iterator[K any, V any] struct {
	nd *node[K, V]
}

// Min returns an iterator at the smallest entry.
func (l *List[K, V]) Min() Iterator[K, V] {
	return Iterator[K, V]{nd: l.head.next[0]}
}

// Seek returns an iterator at the first entry with key >= k.
func (l *List[K, V]) Seek(k K) Iterator[K, V] {
	return Iterator[K, V]{nd: l.findGE(k, nil)}
}

// Valid reports whether the iterator is positioned on an entry.
func (it Iterator[K, V]) Valid() bool { return it.nd != nil }

// Key returns the current key; only valid when Valid.
func (it Iterator[K, V]) Key() K { return it.nd.key }

// Value returns the current value; only valid when Valid.
func (it Iterator[K, V]) Value() V { return it.nd.val }

// Next advances to the following entry.
func (it *Iterator[K, V]) Next() { it.nd = it.nd.next[0] }
