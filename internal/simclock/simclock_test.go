package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestAdvanceAndNow(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now=%v want 5ms", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not zero the clock")
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8*1000*time.Microsecond {
		t.Fatalf("Now=%v want 8ms", c.Now())
	}
}

func TestStopwatchCombinesWallAndSim(t *testing.T) {
	c := New()
	sw := StartStopwatch(c)
	c.Advance(50 * time.Millisecond)
	el := sw.Elapsed()
	if el < 50*time.Millisecond {
		t.Fatalf("Elapsed %v lost simulated time", el)
	}
	if sw.SimElapsed() != 50*time.Millisecond {
		t.Fatalf("SimElapsed %v want 50ms", sw.SimElapsed())
	}
	// A second stopwatch only sees new simulated time.
	sw2 := StartStopwatch(c)
	c.Advance(time.Millisecond)
	if sw2.SimElapsed() != time.Millisecond {
		t.Fatalf("second stopwatch SimElapsed %v want 1ms", sw2.SimElapsed())
	}
}
