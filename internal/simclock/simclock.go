// Package simclock provides a virtual clock that accumulates simulated I/O
// time. The SSD simulator (internal/ssd) charges a latency to the clock for
// every I/O it serves; benchmark harnesses combine the accumulated virtual
// I/O time with measured CPU time to derive hardware-independent throughput
// figures (see DESIGN.md §4 "Virtual time").
package simclock

import (
	"sync/atomic"
	"time"
)

// Clock accumulates virtual nanoseconds. It is safe for concurrent use.
type Clock struct {
	ns atomic.Int64
}

// New returns a clock at zero.
func New() *Clock { return &Clock{} }

// Advance adds d to the virtual clock.
func (c *Clock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// Now returns the accumulated virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Reset sets the clock back to zero.
func (c *Clock) Reset() { c.ns.Store(0) }

// Stopwatch measures a composite elapsed time: real (CPU) wall time plus
// virtual I/O time accumulated on a Clock since Start. This is the time base
// for all reported throughputs.
type Stopwatch struct {
	clock     *Clock
	wallStart time.Time
	simStart  time.Duration
}

// StartStopwatch begins measuring against clock.
func StartStopwatch(clock *Clock) *Stopwatch {
	return &Stopwatch{clock: clock, wallStart: time.Now(), simStart: clock.Now()}
}

// Elapsed returns CPU wall time plus virtual I/O time since Start.
func (s *Stopwatch) Elapsed() time.Duration {
	return time.Since(s.wallStart) + (s.clock.Now() - s.simStart)
}

// SimElapsed returns only the virtual I/O time since Start.
func (s *Stopwatch) SimElapsed() time.Duration {
	return s.clock.Now() - s.simStart
}
