// Package vid implements the logical indirection layer of §3.5: a mapping
// from Virtual tuple IDentifiers to the physical entry-point of the
// tuple's version chain. Indexes storing VIDs instead of recordIDs avoid
// maintenance when the entry-point moves (every update under SIAS); the
// mapping table itself is memory-resident, as in the paper's systems.
package vid

import (
	"sync"

	"mvpbt/internal/storage"
)

// VID is a virtual tuple identifier. 0 is never allocated.
type VID = uint64

// Table is the indirection mapping VID → entry-point RecordID. It is safe
// for concurrent use.
type Table struct {
	mu   sync.RWMutex
	m    map[VID]storage.RecordID
	next VID
}

// NewTable returns an empty indirection table.
func NewTable() *Table {
	return &Table{m: make(map[VID]storage.RecordID), next: 1}
}

// Alloc reserves a fresh VID (with no mapping yet).
func (t *Table) Alloc() VID {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.next
	t.next++
	return v
}

// Set points vid at the new chain entry-point.
func (t *Table) Set(v VID, rid storage.RecordID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[v] = rid
}

// Get resolves vid to the current chain entry-point.
func (t *Table) Get(v VID) (storage.RecordID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rid, ok := t.m[v]
	return rid, ok
}

// Delete removes the mapping (after the whole chain is garbage collected).
func (t *Table) Delete(v VID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, v)
}

// Entry is one VID mapping.
type Entry struct {
	VID VID
	RID storage.RecordID
}

// Entries returns a snapshot of all mappings (unordered).
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, len(t.m))
	for v, r := range t.m {
		out = append(out, Entry{VID: v, RID: r})
	}
	return out
}

// Len returns the number of live mappings.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}
