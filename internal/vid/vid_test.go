package vid

import (
	"sync"
	"testing"

	"mvpbt/internal/storage"
)

func TestAllocUnique(t *testing.T) {
	tab := NewTable()
	seen := map[VID]bool{}
	for i := 0; i < 1000; i++ {
		v := tab.Alloc()
		if v == 0 {
			t.Fatal("allocated the invalid VID 0")
		}
		if seen[v] {
			t.Fatalf("duplicate VID %d", v)
		}
		seen[v] = true
	}
}

func TestSetGetDelete(t *testing.T) {
	tab := NewTable()
	v := tab.Alloc()
	rid := storage.RecordID{Page: storage.NewPageID(1, 42), Slot: 3}
	tab.Set(v, rid)
	got, ok := tab.Get(v)
	if !ok || got != rid {
		t.Fatalf("Get=%v,%v want %v", got, ok, rid)
	}
	rid2 := storage.RecordID{Page: storage.NewPageID(1, 43), Slot: 0}
	tab.Set(v, rid2) // entry-point moves on update
	if got, _ := tab.Get(v); got != rid2 {
		t.Fatal("Set did not overwrite")
	}
	tab.Delete(v)
	if _, ok := tab.Get(v); ok {
		t.Fatal("Delete left mapping")
	}
}

func TestEntriesSnapshot(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 10; i++ {
		v := tab.Alloc()
		tab.Set(v, storage.RecordID{Page: storage.NewPageID(1, uint64(i)), Slot: 0})
	}
	es := tab.Entries()
	if len(es) != 10 || tab.Len() != 10 {
		t.Fatalf("entries=%d len=%d want 10", len(es), tab.Len())
	}
}

func TestConcurrent(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := tab.Alloc()
				tab.Set(v, storage.RecordID{Page: storage.NewPageID(1, uint64(i)), Slot: 0})
				tab.Get(v)
			}
		}()
	}
	wg.Wait()
	if tab.Len() != 4000 {
		t.Fatalf("len=%d want 4000", tab.Len())
	}
}
