package ssd

import (
	"fmt"

	"mvpbt/internal/storage"
)

// Fault injection. The device can be armed with deterministic fault rules:
// each rule scopes a fault kind to a file class and/or LBA range and fires
// on specific scope-matching operation counts (an op-count schedule) or on
// every match (sticky). Because firing depends only on the sequence of
// matching operations — never on wall-clock time or randomness — two runs
// that issue the same I/O sequence against the same rules observe exactly
// the same faults. That determinism contract is what lets the differential
// harness (internal/check) replay and shrink faulty histories.

// FaultKind enumerates the injectable fault classes.
type FaultKind uint8

const (
	// FaultReadErr fails a read with ErrIOFault; the media is unchanged.
	FaultReadErr FaultKind = iota
	// FaultWriteErr fails a write with ErrIOFault; nothing is persisted.
	FaultWriteErr
	// FaultTornWrite persists only the first TornSectors sectors of a write
	// and then fails it — the tail of the target range keeps whatever the
	// media held before (real sector-atomic devices tear exactly this way;
	// they do not zero the unwritten sectors).
	FaultTornWrite
	// FaultBitFlip flips one bit in the stored media under a read's target
	// range (persistent bit rot). The read itself succeeds and returns the
	// corrupted data; only a checksum can tell.
	FaultBitFlip
	// FaultNoSpace fails an extent ALLOCATION (not a data-path I/O) with an
	// error wrapping storage.ErrNoSpace — deterministic ENOSPC, as if the
	// device's usable capacity shrank under the space manager. Scoping and
	// op-count schedules work exactly like the I/O fault kinds; the
	// matching operation sequence is the sequence of extent allocations.
	FaultNoSpace

	// NumFaultKinds is the number of fault kinds (for counter arrays).
	NumFaultKinds = 5
)

func (k FaultKind) String() string {
	switch k {
	case FaultReadErr:
		return "read-err"
	case FaultWriteErr:
		return "write-err"
	case FaultTornWrite:
		return "torn-write"
	case FaultBitFlip:
		return "bit-flip"
	case FaultNoSpace:
		return "no-space"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// AnyClass in FaultRule.Class matches I/O to every file class.
const AnyClass = -1

// FaultRule describes one armed fault. The zero LBA bounds mean "whole
// device"; an empty Ops schedule with Sticky false never fires (arm it with
// Sticky or at least one op count).
type FaultRule struct {
	Kind FaultKind

	// Class restricts the rule to I/O on extents of one sfile class
	// (sfile registers an offset→class classifier with the device), or
	// AnyClass. I/O the classifier cannot attribute matches only AnyClass
	// rules.
	Class int

	// [MinLBA, MaxLBA) bounds the rule to a 512-byte-sector range; MaxLBA 0
	// means unbounded.
	MinLBA, MaxLBA int64

	// Ops is the op-count schedule: the rule fires on its k-th
	// scope-matching operation for every k listed (1-based). Once the
	// largest count has passed, the rule disarms itself.
	Ops []uint64

	// Sticky makes the rule fire on every scope-matching operation until
	// explicitly disarmed.
	Sticky bool

	// ByteOffset (mod the op length) selects the corrupted byte and BitMask
	// the flipped bits for FaultBitFlip. A zero BitMask flips bit 0.
	ByteOffset int
	BitMask    byte

	// TornSectors is how many leading 512-byte sectors a FaultTornWrite
	// persists before failing.
	TornSectors int
}

func (r *FaultRule) appliesTo(op Op) bool {
	switch op {
	case OpRead:
		return r.Kind == FaultReadErr || r.Kind == FaultBitFlip
	case OpWrite:
		return r.Kind == FaultWriteErr || r.Kind == FaultTornWrite
	default: // OpAlloc
		return r.Kind == FaultNoSpace
	}
}

// FaultCounters counts injected faults per kind since the last reset.
type FaultCounters struct {
	Injected [NumFaultKinds]int64
}

// Total sums the per-kind counters.
func (c FaultCounters) Total() int64 {
	var t int64
	for _, n := range c.Injected {
		t += n
	}
	return t
}

func (c FaultCounters) String() string {
	return fmt.Sprintf("read-err=%d write-err=%d torn-write=%d bit-flip=%d no-space=%d",
		c.Injected[FaultReadErr], c.Injected[FaultWriteErr],
		c.Injected[FaultTornWrite], c.Injected[FaultBitFlip],
		c.Injected[FaultNoSpace])
}

// armedFault is a FaultRule plus its private match counter.
type armedFault struct {
	id      int
	rule    FaultRule
	matches uint64
}

// SetClassifier installs the offset→file-class function used by rule
// scoping. It is called with the device mutex held, so it must not acquire
// locks that can be held while calling into the device (sfile keeps its
// extent-class map under a dedicated mutex for exactly this reason).
func (d *Device) SetClassifier(fn func(off int64) int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.classifier = fn
}

// ArmFault arms a fault rule and returns its id for DisarmFault.
func (d *Device) ArmFault(r FaultRule) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextFaultID++
	d.faults = append(d.faults, &armedFault{id: d.nextFaultID, rule: r})
	return d.nextFaultID
}

// DisarmFault removes the rule with the given id (a no-op if it already
// disarmed itself).
func (d *Device) DisarmFault(id int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, f := range d.faults {
		if f.id == id {
			d.faults = append(d.faults[:i], d.faults[i+1:]...)
			return
		}
	}
}

// DisarmAllFaults removes every armed rule. Counters are kept.
func (d *Device) DisarmAllFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults = nil
}

// FaultCounters returns a snapshot of the injected-fault counters.
func (d *Device) FaultCounters() FaultCounters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faultStats
}

// ResetFaultCounters zeroes the injected-fault counters.
func (d *Device) ResetFaultCounters() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faultStats = FaultCounters{}
}

// matchFault is called under d.mu for every I/O. Every rule that scopes the
// operation advances its match counter; the first rule whose schedule is due
// fires (at most one fault per operation, in arm order — deterministic).
// Non-sticky rules disarm themselves once their schedule is exhausted.
func (d *Device) matchFault(op Op, off int64, n int) *armedFault {
	if len(d.faults) == 0 {
		return nil
	}
	cls := AnyClass
	if d.classifier != nil {
		cls = d.classifier(off)
	}
	lba := off / SectorSize
	var fired *armedFault
	for _, f := range d.faults {
		r := &f.rule
		if !r.appliesTo(op) {
			continue
		}
		if r.Class != AnyClass && r.Class != cls {
			continue
		}
		if lba < r.MinLBA || (r.MaxLBA > 0 && lba >= r.MaxLBA) {
			continue
		}
		f.matches++
		if fired != nil {
			continue
		}
		if r.Sticky {
			fired = f
			continue
		}
		for _, k := range r.Ops {
			if k == f.matches {
				fired = f
				break
			}
		}
	}
	if fired != nil {
		d.faultStats.Injected[fired.rule.Kind]++
		if !fired.rule.Sticky {
			var maxOp uint64
			for _, k := range fired.rule.Ops {
				if k > maxOp {
					maxOp = k
				}
			}
			if fired.matches >= maxOp {
				for i, f := range d.faults {
					if f == fired {
						d.faults = append(d.faults[:i], d.faults[i+1:]...)
						break
					}
				}
			}
		}
	}
	return fired
}

// flipBit corrupts one bit of the stored media inside [off, off+n).
func (d *Device) flipBit(f *armedFault, off int64, n int) {
	if n == 0 {
		return
	}
	pos := off + int64(f.rule.ByteOffset%n)
	mask := f.rule.BitMask
	if mask == 0 {
		mask = 1
	}
	var b [1]byte
	d.copyOut(b[:], pos)
	b[0] ^= mask
	d.copyIn(b[:], pos)
}

func faultErr(kind FaultKind, off int64, n int) error {
	base := storage.ErrIOFault
	if kind == FaultNoSpace {
		base = storage.ErrNoSpace
	}
	return fmt.Errorf("ssd: injected %v at off=%d len=%d: %w", kind, off, n, base)
}

// CheckAlloc consults the armed fault rules for an extent allocation at
// byte offset off of n bytes. The space manager calls it before committing
// an allocation; an armed FaultNoSpace rule whose schedule is due fails the
// allocation with an error wrapping storage.ErrNoSpace. Allocations charge
// no latency (they move no data) and are not traced.
func (d *Device) CheckAlloc(off int64, n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f := d.matchFault(OpAlloc, off, n); f != nil {
		return faultErr(f.rule.Kind, off, n)
	}
	return nil
}
