package ssd

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"mvpbt/internal/simclock"
)

func newDev() *Device {
	return New(simclock.New(), IntelP3600)
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newDev()
	data := []byte("hello, flash translation layer")
	d.WriteAt(data, 12345)
	got := make([]byte, len(data))
	d.ReadAt(got, 12345)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q != %q", got, data)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := newDev()
	p := make([]byte, 64)
	for i := range p {
		p[i] = 0xFF
	}
	d.ReadAt(p, 9999999)
	for i, b := range p {
		if b != 0 {
			t.Fatalf("byte %d not zero: %x", i, b)
		}
	}
}

func TestCrossBlockWrite(t *testing.T) {
	d := newDev()
	data := make([]byte, 3*storeBlock)
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := int64(storeBlock - 100) // straddles several internal blocks
	d.WriteAt(data, off)
	got := make([]byte, len(data))
	d.ReadAt(got, off)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-block round trip mismatch")
	}
}

func TestSequentialClassification(t *testing.T) {
	d := newDev()
	buf := make([]byte, 8192)
	d.WriteAt(buf, 0)     // first write: random (no predecessor)
	d.WriteAt(buf, 8192)  // adjacent: sequential
	d.WriteAt(buf, 16384) // adjacent: sequential
	d.WriteAt(buf, 65536) // gap: random
	s := d.Stats()
	if s.SeqWrites != 2 || s.RandWrites != 2 {
		t.Fatalf("classification wrong: seq=%d rand=%d", s.SeqWrites, s.RandWrites)
	}
}

func TestReadWriteStreamsIndependent(t *testing.T) {
	d := newDev()
	buf := make([]byte, 8192)
	d.WriteAt(buf, 0)
	d.ReadAt(buf, 1<<20) // interleaved read must not break the write stream
	d.WriteAt(buf, 8192)
	s := d.Stats()
	if s.SeqWrites != 1 {
		t.Fatalf("interleaved read broke write stream: seq=%d", s.SeqWrites)
	}
}

func TestLatencyAsymmetry(t *testing.T) {
	// The defining property: random 8K writes are much slower than random
	// 8K reads, and sequential writes much faster than random writes at 64K.
	if IntelP3600.WriteRand8 < 10*IntelP3600.ReadRand8 {
		t.Fatalf("random write should be >=10x random read: %v vs %v",
			IntelP3600.WriteRand8, IntelP3600.ReadRand8)
	}
	if IntelP3600.WriteRand64 < 10*IntelP3600.WriteSeq64 {
		t.Fatalf("random 64K write should be >=10x sequential: %v vs %v",
			IntelP3600.WriteRand64, IntelP3600.WriteSeq64)
	}
}

func TestClockAdvances(t *testing.T) {
	clk := simclock.New()
	d := New(clk, IntelP3600)
	buf := make([]byte, 8192)
	d.ReadAt(buf, 0)
	want := IntelP3600.ReadRand8
	if clk.Now() != want {
		t.Fatalf("clock advanced %v want %v", clk.Now(), want)
	}
	d.ReadAt(buf, 8192) // sequential
	if clk.Now() != want+IntelP3600.ReadSeq8 {
		t.Fatalf("clock advanced %v want %v", clk.Now(), want+IntelP3600.ReadSeq8)
	}
}

func TestLatencyInterpolation(t *testing.T) {
	lat8, lat64 := 8*time.Microsecond, 40*time.Microsecond
	if got := latency(lat8, lat64, 8<<10); got != lat8 {
		t.Fatalf("8K latency %v want %v", got, lat8)
	}
	if got := latency(lat8, lat64, 64<<10); got != lat64 {
		t.Fatalf("64K latency %v want %v", got, lat64)
	}
	if got := latency(lat8, lat64, 4<<10); got != lat8/2 {
		t.Fatalf("4K latency %v want %v", got, lat8/2)
	}
	mid := latency(lat8, lat64, 36<<10)
	if mid <= lat8 || mid >= lat64 {
		t.Fatalf("36K latency %v not between %v and %v", mid, lat8, lat64)
	}
	big := latency(lat8, lat64, 128<<10)
	if big <= lat64 {
		t.Fatalf("128K latency %v not above %v", big, lat64)
	}
	if latency(lat8, lat64, 0) != 0 {
		t.Fatal("zero-length latency not zero")
	}
}

func TestLatencyMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		lx := latency(IntelP3600.WriteSeq8, IntelP3600.WriteSeq64, x*512)
		ly := latency(IntelP3600.WriteSeq8, IntelP3600.WriteSeq64, y*512)
		return lx <= ly
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrace(t *testing.T) {
	d := newDev()
	d.SetTracing(true)
	buf := make([]byte, 8192)
	d.WriteAt(buf, 0)
	d.WriteAt(buf, 8192)
	d.ReadAt(buf, 0)
	tr := d.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length %d want 3", len(tr))
	}
	if tr[0].Op != OpWrite || tr[0].LBA != 0 || tr[0].Seq {
		t.Fatalf("entry 0 wrong: %+v", tr[0])
	}
	if tr[1].LBA != 8192/SectorSize || !tr[1].Seq {
		t.Fatalf("entry 1 wrong: %+v", tr[1])
	}
	if tr[2].Op != OpRead {
		t.Fatalf("entry 2 wrong: %+v", tr[2])
	}
	d.SetTracing(false)
	d.WriteAt(buf, 0)
	if len(d.Trace()) != 3 {
		t.Fatal("tracing kept recording after disable")
	}
}

func TestStatsSubAndReset(t *testing.T) {
	d := newDev()
	buf := make([]byte, 8192)
	d.WriteAt(buf, 0)
	before := d.Stats()
	d.WriteAt(buf, 8192)
	delta := d.Stats().Sub(before)
	if delta.Writes != 1 || delta.BytesWritten != 8192 {
		t.Fatalf("delta wrong: %+v", delta)
	}
	d.ResetStats()
	if s := d.Stats(); s.Writes != 0 || s.Reads != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestDiscard(t *testing.T) {
	d := newDev()
	buf := make([]byte, storeBlock)
	for i := range buf {
		buf[i] = 0xAB
	}
	d.WriteAt(buf, 0)
	d.WriteAt(buf, storeBlock)
	d.Discard(0, storeBlock)
	got := make([]byte, storeBlock)
	d.ReadAt(got, 0)
	for _, b := range got {
		if b != 0 {
			t.Fatal("discarded block not zeroed")
		}
	}
	d.ReadAt(got, storeBlock)
	if got[0] != 0xAB {
		t.Fatal("discard released the wrong block")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newDev()
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			buf := make([]byte, 4096)
			for i := 0; i < 200; i++ {
				d.WriteAt(buf, int64(g*1000+i)*4096)
				d.ReadAt(buf, int64(g*1000+i)*4096)
			}
			done <- true
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s := d.Stats(); s.Writes != 800 || s.Reads != 800 {
		t.Fatalf("concurrent counters wrong: %+v", s)
	}
}
