// Package ssd simulates an enterprise flash device (modelled on the Intel
// DC P3600 of the paper's Figure 8). The simulator serves reads and writes
// from RAM, charges each I/O a latency derived from the paper's measured
// IOPS table to a virtual clock (internal/simclock), classifies each I/O as
// sequential or random by LBA adjacency, and optionally records an LBA
// trace (Figure 12c).
//
// The essential property preserved from real flash is the read/write
// asymmetry: small random reads are fast and parallel, small random writes
// are an order of magnitude slower, and large sequential writes are the
// only efficient write pattern. Every experiment in the paper is driven by
// this asymmetry.
package ssd

import (
	"fmt"
	"sync"
	"time"

	"mvpbt/internal/simclock"
)

// SectorSize is the LBA unit used in traces, matching common disk tooling
// (blktrace reports 512-byte sectors).
const SectorSize = 512

// storeBlock is the internal storage granularity of the simulator.
const storeBlock = 8192

// Profile holds the calibration points of the latency model: the duration
// of one 8 KiB and one 64 KiB operation for each of the four I/O classes.
// Latencies for other sizes are interpolated piecewise-linearly (see
// latency).
type Profile struct {
	ReadSeq8, ReadSeq64     time.Duration
	ReadRand8, ReadRand64   time.Duration
	WriteSeq8, WriteSeq64   time.Duration
	WriteRand8, WriteRand64 time.Duration
}

// IntelP3600 is the latency profile derived from the paper's Figure 8
// (latency = 1 / IOPS for each class and block size).
//
//	                 8 KiB IOPS   64 KiB IOPS
//	sequential read     122382        24180
//	random read         112479        23631
//	sequential write     11104         1343
//	random write          7185           56
var IntelP3600 = Profile{
	ReadSeq8:    time.Second / 122382,
	ReadSeq64:   time.Second / 24180,
	ReadRand8:   time.Second / 112479,
	ReadRand64:  time.Second / 23631,
	WriteSeq8:   time.Second / 11104,
	WriteSeq64:  time.Second / 1343,
	WriteRand8:  time.Second / 7185,
	WriteRand64: time.Second / 56,
}

// latency interpolates the duration of an n-byte operation from the two
// calibration points (8 KiB, lat8) and (64 KiB, lat64): proportional below
// 8 KiB, linear between the points, slope-extrapolated above 64 KiB.
func latency(lat8, lat64 time.Duration, n int) time.Duration {
	const p8, p64 = 8 << 10, 64 << 10
	switch {
	case n <= 0:
		return 0
	case n <= p8:
		return time.Duration(int64(lat8) * int64(n) / p8)
	case n <= p64:
		frac := float64(n-p8) / float64(p64-p8)
		return lat8 + time.Duration(float64(lat64-lat8)*frac)
	default:
		slope := float64(lat64-lat8) / float64(p64-p8) // ns per byte
		return lat64 + time.Duration(slope*float64(n-p64))
	}
}

// Op identifies the direction of a traced I/O.
type Op uint8

// I/O directions. OpAlloc is not a data-path I/O: it labels extent
// allocations for fault-rule scoping (FaultNoSpace) and never appears in
// traces.
const (
	OpRead Op = iota
	OpWrite
	OpAlloc
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	default:
		return "A"
	}
}

// TraceEntry records a single device I/O for write-pattern analysis
// (Figure 12c).
type TraceEntry struct {
	Time time.Duration // virtual time at completion
	Op   Op
	LBA  int64 // 512-byte sector address
	Len  int   // bytes
	Seq  bool  // classified as sequential
}

// Stats aggregates device activity since the last reset.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	SeqReads, RandReads     int64
	SeqWrites, RandWrites   int64
	ReadTime, WriteTime     time.Duration
}

// Sub returns s - o, for windowed measurements.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes,
		BytesRead: s.BytesRead - o.BytesRead, BytesWritten: s.BytesWritten - o.BytesWritten,
		SeqReads: s.SeqReads - o.SeqReads, RandReads: s.RandReads - o.RandReads,
		SeqWrites: s.SeqWrites - o.SeqWrites, RandWrites: s.RandWrites - o.RandWrites,
		ReadTime: s.ReadTime - o.ReadTime, WriteTime: s.WriteTime - o.WriteTime,
	}
}

// IOTime returns the total virtual time spent in I/O.
func (s Stats) IOTime() time.Duration { return s.ReadTime + s.WriteTime }

// Device is a simulated flash device. All methods are safe for concurrent
// use; the latency of each I/O is charged to the shared virtual clock.
type Device struct {
	mu        sync.Mutex
	clock     *simclock.Clock
	prof      Profile
	spec      DeviceSpec
	blocks    map[int64][]byte
	lastRdEnd int64
	lastWrEnd int64
	stats     Stats
	tracing   bool
	trace     []TraceEntry

	// Zoned-device state (zoo.go): per-zone write pointers and counters.
	zoneWP map[int64]int64
	zns    ZNSStats

	// Throttled-device state (zoo.go): IOPS token bucket.
	tokens  float64
	tokenAt time.Duration
	cloud   CloudStats

	// Fault injection (faults.go). classifier maps a byte offset to the
	// sfile class of the extent it falls in, for rule scoping.
	faults      []*armedFault
	nextFaultID int
	faultStats  FaultCounters
	classifier  func(off int64) int
}

// New returns an empty device with the given latency profile and
// conventional block semantics, charging I/O time to clock.
func New(clock *simclock.Clock, prof Profile) *Device {
	return NewWithSpec(clock, DeviceSpec{Profile: prof})
}

// NewWithSpec returns an empty device built from a zoo spec (zoo.go),
// charging I/O time to clock. The zero spec is the default device
// (enterprise-nvme profile, block mode).
func NewWithSpec(clock *simclock.Clock, spec DeviceSpec) *Device {
	spec = spec.withDefaults()
	d := &Device{clock: clock, prof: spec.Profile, spec: spec,
		blocks: make(map[int64][]byte), lastRdEnd: -1, lastWrEnd: -1}
	if spec.Mode == ModeZNS {
		d.zoneWP = make(map[int64]int64)
	}
	if spec.Mode == ModeCloud {
		d.tokens = float64(spec.BurstOps) // the bucket starts full
	}
	return d
}

// Clock returns the virtual clock the device charges.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// ReadAt reads len(p) bytes at byte offset off. Unwritten regions read as
// zeros (like a trimmed SSD). An armed read-error fault fails the read with
// an error wrapping storage.ErrIOFault (the latency is still charged — a
// failed I/O is not a free I/O); an armed bit-flip fault corrupts the
// stored media under the range and the read succeeds.
func (d *Device) ReadAt(p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	d.mu.Lock()
	seq := off == d.lastRdEnd
	d.lastRdEnd = off + int64(len(p))
	var lat time.Duration
	if seq {
		lat = latency(d.prof.ReadSeq8, d.prof.ReadSeq64, len(p))
		d.stats.SeqReads++
	} else {
		lat = latency(d.prof.ReadRand8, d.prof.ReadRand64, len(p))
		d.stats.RandReads++
	}
	if d.spec.Mode == ModeCloud {
		lat = d.cloudCharge(lat)
	}
	d.stats.Reads++
	d.stats.BytesRead += int64(len(p))
	d.stats.ReadTime += lat
	var ioErr error
	if f := d.matchFault(OpRead, off, len(p)); f != nil {
		if f.rule.Kind == FaultBitFlip {
			d.flipBit(f, off, len(p))
		} else {
			ioErr = faultErr(f.rule.Kind, off, len(p))
		}
	}
	if ioErr == nil {
		d.copyOut(p, off)
	}
	if d.tracing {
		d.trace = append(d.trace, TraceEntry{Time: d.clock.Now() + lat, Op: OpRead, LBA: off / SectorSize, Len: len(p), Seq: seq})
	}
	d.mu.Unlock()
	d.clock.Advance(lat)
	return ioErr
}

// WriteAt writes len(p) bytes at byte offset off. An armed write-error
// fault persists nothing and fails with an error wrapping
// storage.ErrIOFault; a torn-write fault persists only the leading sectors
// (the rest of the range keeps its previous media contents) and then fails.
func (d *Device) WriteAt(p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	d.mu.Lock()
	seq := off == d.lastWrEnd
	d.lastWrEnd = off + int64(len(p))
	var lat time.Duration
	if seq {
		lat = latency(d.prof.WriteSeq8, d.prof.WriteSeq64, len(p))
		d.stats.SeqWrites++
	} else {
		lat = latency(d.prof.WriteRand8, d.prof.WriteRand64, len(p))
		d.stats.RandWrites++
	}
	var ioErr error
	switch d.spec.Mode {
	case ModeZNS:
		lat, ioErr = d.znsWrite(off, len(p), lat)
	case ModeCloud:
		lat = d.cloudCharge(lat)
	}
	d.stats.Writes++
	d.stats.BytesWritten += int64(len(p))
	d.stats.WriteTime += lat
	if f := d.matchFault(OpWrite, off, len(p)); ioErr == nil && f != nil {
		if f.rule.Kind == FaultTornWrite {
			n := f.rule.TornSectors * SectorSize
			if n > len(p) {
				n = len(p)
			}
			if n > 0 {
				d.copyIn(p[:n], off)
			}
		}
		ioErr = faultErr(f.rule.Kind, off, len(p))
	}
	if ioErr == nil {
		d.copyIn(p, off)
	}
	if d.tracing {
		d.trace = append(d.trace, TraceEntry{Time: d.clock.Now() + lat, Op: OpWrite, LBA: off / SectorSize, Len: len(p), Seq: seq})
	}
	d.mu.Unlock()
	d.clock.Advance(lat)
	return ioErr
}

// Discard releases the storage backing [off, off+n) (like TRIM). Only whole
// internal blocks are released; subsequent reads of the region return
// zeros for released blocks. Discard charges no latency.
func (d *Device) Discard(off, n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	first := (off + storeBlock - 1) / storeBlock
	last := (off + n) / storeBlock
	for b := first; b < last; b++ {
		delete(d.blocks, b)
	}
	if d.spec.Mode == ModeZNS {
		d.znsDiscard(off, n)
	}
}

func (d *Device) copyOut(p []byte, off int64) {
	for len(p) > 0 {
		b := off / storeBlock
		bo := int(off % storeBlock)
		n := storeBlock - bo
		if n > len(p) {
			n = len(p)
		}
		if blk, ok := d.blocks[b]; ok {
			copy(p[:n], blk[bo:bo+n])
		} else {
			for i := 0; i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += int64(n)
	}
}

func (d *Device) copyIn(p []byte, off int64) {
	for len(p) > 0 {
		b := off / storeBlock
		bo := int(off % storeBlock)
		n := storeBlock - bo
		if n > len(p) {
			n = len(p)
		}
		blk, ok := d.blocks[b]
		if !ok {
			blk = make([]byte, storeBlock)
			d.blocks[b] = blk
		}
		copy(blk[bo:bo+n], p[:n])
		p = p[n:]
		off += int64(n)
	}
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the stored data is kept).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// SetTracing enables or disables LBA tracing. Enabling clears any previous
// trace.
func (d *Device) SetTracing(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracing = on
	if on {
		d.trace = nil
	}
}

// Trace returns a copy of the recorded trace.
func (d *Device) Trace() []TraceEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TraceEntry, len(d.trace))
	copy(out, d.trace)
	return out
}

// String summarizes the counters for logs and the inspect tool.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d (seq=%d rand=%d, %.1f MiB) writes=%d (seq=%d rand=%d, %.1f MiB) readTime=%v writeTime=%v",
		s.Reads, s.SeqReads, s.RandReads, float64(s.BytesRead)/(1<<20),
		s.Writes, s.SeqWrites, s.RandWrites, float64(s.BytesWritten)/(1<<20),
		s.ReadTime, s.WriteTime)
}
