package ssd

import (
	"bytes"
	"errors"
	"testing"

	"mvpbt/internal/simclock"
	"mvpbt/internal/storage"
)

func TestReadErrorSchedule(t *testing.T) {
	d := newDev()
	buf := make([]byte, 4096)
	d.WriteAt(buf, 0)
	// Fire on the 2nd matching read only.
	d.ArmFault(FaultRule{Kind: FaultReadErr, Class: AnyClass, Ops: []uint64{2}})
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 1 should succeed: %v", err)
	}
	err := d.ReadAt(buf, 0)
	if !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("read 2 should fail with ErrIOFault, got %v", err)
	}
	// Schedule exhausted: rule disarmed itself.
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 3 should succeed: %v", err)
	}
	c := d.FaultCounters()
	if c.Injected[FaultReadErr] != 1 || c.Total() != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
}

func TestStickyWriteErrorAndDisarm(t *testing.T) {
	d := newDev()
	buf := []byte("payload")
	id := d.ArmFault(FaultRule{Kind: FaultWriteErr, Class: AnyClass, Sticky: true})
	for i := 0; i < 3; i++ {
		if err := d.WriteAt(buf, 512); !errors.Is(err, storage.ErrIOFault) {
			t.Fatalf("write %d should fail, got %v", i, err)
		}
	}
	// Nothing persisted.
	got := make([]byte, len(buf))
	if err := d.ReadAt(got, 512); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("failed write leaked to media")
		}
	}
	d.DisarmFault(id)
	if err := d.WriteAt(buf, 512); err != nil {
		t.Fatalf("write after disarm should succeed: %v", err)
	}
	if c := d.FaultCounters(); c.Injected[FaultWriteErr] != 3 {
		t.Fatalf("counters wrong: %+v", c)
	}
}

func TestTornWritePersistsPrefixKeepsOldTail(t *testing.T) {
	d := newDev()
	old := bytes.Repeat([]byte{0xAA}, 4*SectorSize)
	if err := d.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	d.ArmFault(FaultRule{Kind: FaultTornWrite, Class: AnyClass, Ops: []uint64{1}, TornSectors: 1})
	nw := bytes.Repeat([]byte{0xBB}, 4*SectorSize)
	if err := d.WriteAt(nw, 0); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("torn write should report a fault, got %v", err)
	}
	got := make([]byte, 4*SectorSize)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0xBB)
		if i >= SectorSize {
			want = 0xAA // unpersisted sectors keep the OLD content, not zeros
		}
		if b != want {
			t.Fatalf("byte %d = %#x want %#x", i, b, want)
		}
	}
}

func TestBitFlipIsPersistent(t *testing.T) {
	d := newDev()
	data := make([]byte, 1024)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	d.ArmFault(FaultRule{Kind: FaultBitFlip, Class: AnyClass, Ops: []uint64{1}, ByteOffset: 7, BitMask: 0x10})
	got := make([]byte, 1024)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("bit-flip read should succeed: %v", err)
	}
	if got[7] != 0x10 {
		t.Fatalf("flipped byte = %#x want 0x10", got[7])
	}
	// The rot is in the media: a second (clean) read sees the same value.
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[7] != 0x10 {
		t.Fatalf("bit flip did not persist: byte = %#x", got[7])
	}
}

func TestFaultScopingByLBAAndClass(t *testing.T) {
	d := newDev()
	// Classify offsets >= 1 MiB as class 1, below as class 0.
	d.SetClassifier(func(off int64) int {
		if off >= 1<<20 {
			return 1
		}
		return 0
	})
	buf := make([]byte, 512)
	d.ArmFault(FaultRule{Kind: FaultWriteErr, Class: 1, Sticky: true})
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("class-0 write should pass: %v", err)
	}
	if err := d.WriteAt(buf, 1<<20); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("class-1 write should fail, got %v", err)
	}
	d.DisarmAllFaults()
	// LBA scoping: only sectors [16, 32).
	d.ArmFault(FaultRule{Kind: FaultReadErr, Class: AnyClass, MinLBA: 16, MaxLBA: 32, Sticky: true})
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("out-of-range read should pass: %v", err)
	}
	if err := d.ReadAt(buf, 16*SectorSize); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("in-range read should fail, got %v", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() (FaultCounters, []byte) {
		d := New(simclock.New(), IntelP3600)
		d.ArmFault(FaultRule{Kind: FaultWriteErr, Class: AnyClass, Ops: []uint64{2, 5}})
		d.ArmFault(FaultRule{Kind: FaultBitFlip, Class: AnyClass, Ops: []uint64{3}, ByteOffset: 11, BitMask: 0x80})
		buf := make([]byte, 1024)
		for i := range buf {
			buf[i] = byte(i)
		}
		for i := 0; i < 8; i++ {
			d.WriteAt(buf, int64(i)*1024)
		}
		out := make([]byte, 8*1024)
		for i := 0; i < 8; i++ {
			d.ReadAt(out[i*1024:(i+1)*1024], int64(i)*1024)
		}
		return d.FaultCounters(), out
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 {
		t.Fatalf("fault counters diverged: %+v vs %+v", c1, c2)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("media state diverged between identical runs")
	}
	if c1.Injected[FaultWriteErr] != 2 || c1.Injected[FaultBitFlip] != 1 {
		t.Fatalf("unexpected counters: %+v", c1)
	}
}
