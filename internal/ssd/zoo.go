package ssd

// The device zoo. The paper evaluates on a single enterprise NVMe latency
// profile (Figure 8); its claims — index-only visibility checks staying
// cheap, append-based storage keeping writes sequential — are exactly the
// kind that shift with device characteristics. Following the NVMeVirt
// methodology (software-defined device personalities over one substrate)
// and the flash KV-store analysis of Misra et al. (PAPERS.md), the
// simulator is parameterized into named device specs:
//
//   - enterprise-nvme: the paper's Intel P3600 profile, conventional block
//     semantics. The baseline every experiment historically used.
//   - consumer-tlc: a SATA-class consumer TLC drive — lower read
//     parallelism, and sustained (post-SLC-cache) random writes an order
//     of magnitude worse than the enterprise part.
//   - zns: an append-only zoned device. Writes land at a per-zone write
//     pointer; an in-place overwrite is REJECTED by the media. The default
//     spec runs a dm-zoned-style translation shim that absorbs overwrites
//     as zone appends plus a mapping update (charged and counted), so
//     unmodified engines still run — the redirect counter measures exactly
//     how much of the engine's write traffic a real zoned device would
//     bounce. Strict mode surfaces the rejection as a typed error instead.
//   - cloud-block: network-attached cloud block storage — a flat per-op
//     network overhead, no seq/rand asymmetry, and a throttled-IOPS token
//     bucket with burst credits: I/O beyond the sustained rate drains the
//     bucket, and once credits are spent each op stalls until the next
//     token accrues (charged to the virtual clock, so stalls are
//     deterministic).
//
// A DeviceSpec is a pure value (scalars only), so it can ride inside
// db.Config under the Config copy contract and template N shard engines.

import (
	"errors"
	"time"
)

// Mode selects a device's write-path semantics beyond the latency profile.
type Mode uint8

// Device modes.
const (
	// ModeBlock is a conventional block device: any offset is writable in
	// place. The zero value, and the semantics every profile had before the
	// zoo existed.
	ModeBlock Mode = iota
	// ModeZNS is an append-only zoned device: each ZoneBytes-sized zone has
	// a write pointer, writes at the pointer append, writes below it are
	// in-place overwrites the media rejects — absorbed by the built-in
	// translation shim (counted + charged) unless ZNSStrict surfaces them
	// as ErrZoneOverwrite. Discarding a whole zone resets its pointer.
	ModeZNS
	// ModeCloud is network-attached block storage: PerOpOverhead is added
	// to every I/O and a token bucket throttles sustained IOPS to BaseIOPS
	// with BurstOps credits of headroom.
	ModeCloud
)

func (m Mode) String() string {
	switch m {
	case ModeBlock:
		return "block"
	case ModeZNS:
		return "zns"
	case ModeCloud:
		return "cloud"
	}
	return "?"
}

// ErrZoneOverwrite is returned by a strict ZNS device for a write that is
// not positioned at its zone's write pointer. The latency of the rejected
// I/O is still charged — a bounced command is not a free command.
var ErrZoneOverwrite = errors.New("ssd: zns: write not at zone write pointer")

// DeviceSpec names one zoo device: a latency profile plus mode parameters.
//
// COPY CONTRACT: DeviceSpec is a pure value type (scalars and structs of
// scalars only) so db.Config can embed it — see the Config copy contract.
// It is comparable with ==; the zero value means "default device"
// (enterprise-nvme).
type DeviceSpec struct {
	// Name is the zoo identifier ("enterprise-nvme", "consumer-tlc",
	// "zns", "cloud-block").
	Name string
	// Profile is the latency calibration table.
	Profile Profile
	// Mode selects block / zns / cloud semantics.
	Mode Mode

	// ZoneBytes sizes ZNS zones (default 4 MiB). ModeZNS only.
	ZoneBytes int64
	// ZNSStrict rejects in-place overwrites with ErrZoneOverwrite instead
	// of absorbing them in the translation shim. ModeZNS only.
	ZNSStrict bool

	// BaseIOPS is the sustained token refill rate (default 4000) and
	// BurstOps the bucket capacity in ops (default 8000). ModeCloud only.
	BaseIOPS int64
	BurstOps int64
	// PerOpOverhead is the flat network round-trip added to every I/O
	// (default 250µs). ModeCloud only.
	PerOpOverhead time.Duration
}

// withDefaults fills unset mode parameters.
func (s DeviceSpec) withDefaults() DeviceSpec {
	zero := Profile{}
	if s.Profile == zero {
		s.Profile = IntelP3600
	}
	if s.Name == "" {
		s.Name = "custom"
	}
	if s.Mode == ModeZNS && s.ZoneBytes <= 0 {
		s.ZoneBytes = 4 << 20
	}
	if s.Mode == ModeCloud {
		if s.BaseIOPS <= 0 {
			s.BaseIOPS = 4000
		}
		if s.BurstOps <= 0 {
			s.BurstOps = 8000
		}
		if s.PerOpOverhead <= 0 {
			s.PerOpOverhead = 250 * time.Microsecond
		}
	}
	return s
}

// EnterpriseNVMe is the paper's Intel P3600 as a zoo spec — the default
// device and the baseline of every historical experiment.
var EnterpriseNVMe = DeviceSpec{Name: "enterprise-nvme", Profile: IntelP3600}

// ConsumerTLC models a SATA-class consumer TLC drive in its sustained
// (post-SLC-cache) regime: reads capped by the SATA link and shallower
// device parallelism, small random writes ~6x slower than the enterprise
// part, and large random writes collapsing to tens of IOPS once device-side
// garbage collection kicks in (the Misra et al. failure mode).
var ConsumerTLC = DeviceSpec{
	Name: "consumer-tlc",
	Profile: Profile{
		ReadSeq8:    time.Second / 60000,
		ReadSeq64:   time.Second / 8300,
		ReadRand8:   time.Second / 11000,
		ReadRand64:  time.Second / 5600,
		WriteSeq8:   time.Second / 6000,
		WriteSeq64:  time.Second / 900,
		WriteRand8:  time.Second / 1100,
		WriteRand64: time.Second / 18,
	},
}

// ZNSAppend models an NVMe zoned namespace device: read latencies in the
// P3600's class, zone appends slightly faster than conventional writes
// (the device runs no internal garbage collection), and NO random-write
// path at the media — every write either lands on a zone write pointer or
// is absorbed by the translation shim (see ModeZNS). The random-write
// calibration points equal the sequential ones because the media never
// executes a random write.
var ZNSAppend = DeviceSpec{
	Name: "zns",
	Mode: ModeZNS,
	Profile: Profile{
		ReadSeq8:    time.Second / 122382,
		ReadSeq64:   time.Second / 24180,
		ReadRand8:   time.Second / 112479,
		ReadRand64:  time.Second / 23631,
		WriteSeq8:   time.Second / 14000,
		WriteSeq64:  time.Second / 1700,
		WriteRand8:  time.Second / 14000,
		WriteRand64: time.Second / 1700,
	},
	ZoneBytes: 4 << 20,
}

// CloudBlock models provisioned cloud block storage (EBS-gp-style): a flat
// network round-trip on every I/O, no seq/rand asymmetry (the backend is a
// replicated store, not a single flash device), and a throttled-IOPS token
// bucket — 4000 sustained IOPS with 8000 ops of burst credits.
var CloudBlock = DeviceSpec{
	Name: "cloud-block",
	Mode: ModeCloud,
	Profile: Profile{
		ReadSeq8:    time.Second / 20000,
		ReadSeq64:   time.Second / 4000,
		ReadRand8:   time.Second / 20000,
		ReadRand64:  time.Second / 4000,
		WriteSeq8:   time.Second / 16000,
		WriteSeq64:  time.Second / 3200,
		WriteRand8:  time.Second / 16000,
		WriteRand64: time.Second / 3200,
	},
	BaseIOPS:      4000,
	BurstOps:      8000,
	PerOpOverhead: 250 * time.Microsecond,
}

// Zoo returns the named device specs in canonical order.
func Zoo() []DeviceSpec {
	return []DeviceSpec{EnterpriseNVMe, ConsumerTLC, ZNSAppend, CloudBlock}
}

// ZooNames returns the zoo's device names in canonical order.
func ZooNames() []string {
	specs := Zoo()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// SpecByName resolves a zoo device by name.
func SpecByName(name string) (DeviceSpec, bool) {
	for _, s := range Zoo() {
		if s.Name == name {
			return s, true
		}
	}
	return DeviceSpec{}, false
}

// ZNSStats counts zoned-device activity. Appends are writes that landed on
// a zone write pointer; Redirects are in-place overwrites the translation
// shim absorbed (each also charged one mapping-block append); Rejects are
// overwrites a strict device bounced with ErrZoneOverwrite; Resets counts
// zones whose write pointer a whole-zone discard rewound.
type ZNSStats struct {
	Appends       int64
	AppendBytes   int64
	Redirects     int64
	RedirectBytes int64
	Rejects       int64
	Resets        int64
}

// CloudStats counts throttled-device activity: ops served, ops that found
// the token bucket empty (Stalls) and the total virtual time those stalls
// charged.
type CloudStats struct {
	Ops       int64
	Stalls    int64
	StallTime time.Duration
}

// Spec returns the device's spec (defaults filled).
func (d *Device) Spec() DeviceSpec { return d.spec }

// ZNSCounters returns a snapshot of the zoned-device counters (zeros on a
// non-ZNS device).
func (d *Device) ZNSCounters() ZNSStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.zns
}

// CloudCounters returns a snapshot of the throttle counters (zeros on a
// non-cloud device).
func (d *Device) CloudCounters() CloudStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cloud
}

// znsWrite applies zoned-device semantics to a write of n bytes at off,
// returning the adjusted latency charge and ErrZoneOverwrite for a strict
// rejection. Called with d.mu held.
//
// A write at (or beyond) the zone's write pointer is an append: it charges
// the sequential-write latency regardless of global LBA adjacency (the
// zone IS the sequential stream) and advances the pointer. A write below
// the pointer is an in-place overwrite: the media rejects it, and the
// translation shim absorbs it as a data append plus one mapping-block
// append — charged as sequential writes of the payload and one store
// block. Writes that cross a zone boundary are accounted to the zone of
// their first byte (zones are orders of magnitude larger than any single
// engine I/O).
func (d *Device) znsWrite(off int64, n int, lat time.Duration) (time.Duration, error) {
	zone := off / d.spec.ZoneBytes
	wp, ok := d.zoneWP[zone]
	if !ok {
		wp = zone * d.spec.ZoneBytes
	}
	if off >= wp {
		if d.zoneWP == nil {
			d.zoneWP = make(map[int64]int64)
		}
		d.zoneWP[zone] = off + int64(n)
		d.zns.Appends++
		d.zns.AppendBytes += int64(n)
		return latency(d.spec.Profile.WriteSeq8, d.spec.Profile.WriteSeq64, n), nil
	}
	if d.spec.ZNSStrict {
		d.zns.Rejects++
		return lat, ErrZoneOverwrite
	}
	d.zns.Redirects++
	d.zns.RedirectBytes += int64(n)
	// Data re-append plus one mapping-block write in the shim's metadata
	// zone; the stale copy under the old offset becomes zone garbage a
	// future reset reclaims.
	return latency(d.spec.Profile.WriteSeq8, d.spec.Profile.WriteSeq64, n) +
		latency(d.spec.Profile.WriteSeq8, d.spec.Profile.WriteSeq64, storeBlock), nil
}

// cloudCharge applies the network overhead and the IOPS token bucket to
// one I/O's latency. Called with d.mu held. Tokens accrue in VIRTUAL time
// at BaseIOPS per second up to BurstOps; an op that finds the bucket empty
// stalls until the next token accrues, and the stall is charged to the
// virtual clock — making throttle behaviour a deterministic function of
// the I/O sequence.
func (d *Device) cloudCharge(lat time.Duration) time.Duration {
	now := d.clock.Now()
	if now > d.tokenAt {
		accrued := float64(now-d.tokenAt) / float64(time.Second) * float64(d.spec.BaseIOPS)
		d.tokens += accrued
		if max := float64(d.spec.BurstOps); d.tokens > max {
			d.tokens = max
		}
		d.tokenAt = now
	}
	lat += d.spec.PerOpOverhead
	d.cloud.Ops++
	if d.tokens >= 1 {
		d.tokens--
		return lat
	}
	wait := time.Duration((1 - d.tokens) / float64(d.spec.BaseIOPS) * float64(time.Second))
	d.tokens = 0
	d.cloud.Stalls++
	d.cloud.StallTime += wait
	return lat + wait
}

// znsDiscard rewinds the write pointer of every zone fully covered by the
// discard range. Called with d.mu held.
func (d *Device) znsDiscard(off, n int64) {
	zb := d.spec.ZoneBytes
	first := (off + zb - 1) / zb
	last := (off + n) / zb
	for z := first; z < last; z++ {
		if _, ok := d.zoneWP[z]; ok {
			delete(d.zoneWP, z)
			d.zns.Resets++
		}
	}
}
