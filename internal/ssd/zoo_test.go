package ssd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mvpbt/internal/simclock"
)

func TestZooRegistry(t *testing.T) {
	want := []string{"enterprise-nvme", "consumer-tlc", "zns", "cloud-block"}
	names := ZooNames()
	if len(names) != len(want) {
		t.Fatalf("zoo has %d devices, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("zoo[%d] = %q, want %q", i, names[i], n)
		}
		spec, ok := SpecByName(n)
		if !ok || spec.Name != n {
			t.Fatalf("SpecByName(%q) = %+v, %v", n, spec, ok)
		}
	}
	if _, ok := SpecByName("floppy"); ok {
		t.Fatal("SpecByName accepted an unknown device")
	}
	if EnterpriseNVMe.Profile != IntelP3600 {
		t.Fatal("enterprise-nvme must keep the paper's P3600 calibration")
	}
}

// The zero spec must behave exactly like the historical default device.
func TestZeroSpecIsDefaultDevice(t *testing.T) {
	d := NewWithSpec(simclock.New(), DeviceSpec{})
	if d.Spec().Profile != IntelP3600 {
		t.Fatalf("zero-spec profile = %+v, want IntelP3600", d.Spec().Profile)
	}
	if d.Spec().Mode != ModeBlock {
		t.Fatalf("zero-spec mode = %v, want block", d.Spec().Mode)
	}
}

func TestZNSShimAppendRedirectReset(t *testing.T) {
	clk := simclock.New()
	d := NewWithSpec(clk, ZNSAppend)
	zb := d.Spec().ZoneBytes
	buf := bytes.Repeat([]byte{0xAB}, 8192)

	// Two appends at the write pointer.
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if err := d.WriteAt(buf, 8192); err != nil {
		t.Fatalf("append 2: %v", err)
	}
	z := d.ZNSCounters()
	if z.Appends != 2 || z.Redirects != 0 {
		t.Fatalf("after appends: %+v", z)
	}

	// An in-place overwrite: absorbed by the shim, counted, and costlier
	// than the append it replaces (data re-append + mapping block).
	before := clk.Now()
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("overwrite via shim: %v", err)
	}
	redirCost := clk.Now() - before
	z = d.ZNSCounters()
	if z.Redirects != 1 || z.RedirectBytes != 8192 {
		t.Fatalf("after overwrite: %+v", z)
	}
	appendCost := latency(ZNSAppend.Profile.WriteSeq8, ZNSAppend.Profile.WriteSeq64, 8192)
	if redirCost <= appendCost {
		t.Fatalf("redirect cost %v not above append cost %v", redirCost, appendCost)
	}
	// The overwrite must still be readable (the shim remaps, not rejects).
	got := make([]byte, 8192)
	if err := d.ReadAt(got, 0); err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("read after shim overwrite: err=%v equal=%v", err, bytes.Equal(got, buf))
	}

	// A whole-zone discard rewinds the write pointer: the next write at the
	// zone base is an append again.
	d.Discard(0, zb)
	z = d.ZNSCounters()
	if z.Resets != 1 {
		t.Fatalf("after whole-zone discard: %+v", z)
	}
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	z = d.ZNSCounters()
	if z.Appends != 3 || z.Redirects != 1 {
		t.Fatalf("after post-reset append: %+v", z)
	}

	// A partial-zone discard must NOT reset the pointer.
	d.Discard(0, zb/2)
	if z := d.ZNSCounters(); z.Resets != 1 {
		t.Fatalf("partial discard reset a zone: %+v", z)
	}
}

func TestZNSStrictRejectsOverwrite(t *testing.T) {
	spec := ZNSAppend
	spec.ZNSStrict = true
	d := NewWithSpec(simclock.New(), spec)
	buf := bytes.Repeat([]byte{0x11}, 4096)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	err := d.WriteAt(bytes.Repeat([]byte{0x22}, 4096), 0)
	if !errors.Is(err, ErrZoneOverwrite) {
		t.Fatalf("in-place overwrite: err = %v, want ErrZoneOverwrite", err)
	}
	if z := d.ZNSCounters(); z.Rejects != 1 {
		t.Fatalf("counters after reject: %+v", z)
	}
	// The rejected write must not have persisted.
	got := make([]byte, 4096)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("rejected overwrite mutated the media")
	}
	// Writes in different zones are independent appends.
	if err := d.WriteAt(buf, spec.ZoneBytes); err != nil {
		t.Fatalf("append in second zone: %v", err)
	}
}

func TestCloudThrottleBurstThenStall(t *testing.T) {
	spec := CloudBlock
	spec.BaseIOPS = 100
	spec.BurstOps = 4
	clk := simclock.New()
	d := NewWithSpec(clk, spec)
	buf := make([]byte, 4096)

	// The first BurstOps I/Os ride the full bucket: no stalls.
	for i := 0; i < 4; i++ {
		if err := d.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatalf("burst write %d: %v", i, err)
		}
	}
	c := d.CloudCounters()
	if c.Ops != 4 || c.Stalls != 0 {
		t.Fatalf("after burst: %+v", c)
	}

	// Beyond the burst the bucket is (nearly) dry: ops stall at ~BaseIOPS
	// pacing, charged to the virtual clock.
	before := clk.Now()
	for i := 4; i < 14; i++ {
		if err := d.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatalf("throttled write %d: %v", i, err)
		}
	}
	c = d.CloudCounters()
	if c.Stalls == 0 || c.StallTime == 0 {
		t.Fatalf("sustained overload did not stall: %+v", c)
	}
	// 10 ops at 100 IOPS is ~100ms of pacing; allow generous slack below
	// but demand the order of magnitude.
	if got := clk.Now() - before; got < 50*time.Millisecond {
		t.Fatalf("10 throttled ops advanced clock only %v", got)
	}

	// Determinism: an identical run produces identical counters and clock.
	clk2 := simclock.New()
	d2 := NewWithSpec(clk2, spec)
	for i := 0; i < 14; i++ {
		if err := d2.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatalf("replay write %d: %v", i, err)
		}
	}
	if c2 := d2.CloudCounters(); c2 != c {
		t.Fatalf("replay diverged: %+v vs %+v", c2, c)
	}
	if clk2.Now() != clk.Now() {
		t.Fatalf("replay clock diverged: %v vs %v", clk2.Now(), clk.Now())
	}
}

func TestCloudIdleRefillsBurst(t *testing.T) {
	spec := CloudBlock
	spec.BaseIOPS = 100
	spec.BurstOps = 4
	clk := simclock.New()
	d := NewWithSpec(clk, spec)
	buf := make([]byte, 4096)
	for i := 0; i < 8; i++ {
		if err := d.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	stalls := d.CloudCounters().Stalls
	if stalls == 0 {
		t.Fatal("expected stalls before idle period")
	}
	// An idle stretch refills the bucket; the next burst is stall-free.
	clk.Advance(time.Second)
	for i := 0; i < 4; i++ {
		if err := d.WriteAt(buf, int64(8+i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	if c := d.CloudCounters(); c.Stalls != stalls {
		t.Fatalf("post-idle burst stalled: %+v (had %d stalls)", c, stalls)
	}
}

// The zoo must preserve the flash asymmetry story across tiers: the
// consumer part's sustained random writes are far slower than the
// enterprise part's, while the cloud device has no seq/rand asymmetry.
func TestZooProfileShapes(t *testing.T) {
	if ConsumerTLC.Profile.WriteRand8 <= EnterpriseNVMe.Profile.WriteRand8 {
		t.Fatal("consumer-tlc random writes should be slower than enterprise-nvme")
	}
	if ConsumerTLC.Profile.ReadRand8 <= EnterpriseNVMe.Profile.ReadRand8 {
		t.Fatal("consumer-tlc random reads should be slower than enterprise-nvme")
	}
	if CloudBlock.Profile.ReadSeq8 != CloudBlock.Profile.ReadRand8 ||
		CloudBlock.Profile.WriteSeq8 != CloudBlock.Profile.WriteRand8 {
		t.Fatal("cloud-block should have no seq/rand asymmetry")
	}
	if ZNSAppend.Profile.WriteSeq8 != ZNSAppend.Profile.WriteRand8 {
		t.Fatal("zns media never executes a random write; calibration points must match")
	}
}
