// Package bloom implements the partition filters of §4.7: a standard bloom
// filter over full search keys (accelerating point lookups by skipping
// partitions) and a prefix bloom filter over fixed-length key prefixes
// (allowing range scans with a shared prefix — e.g. a fixed set of scan
// attributes — to skip partitions too).
package bloom

import "math"

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash2 computes two independent 64-bit hashes of b for double hashing.
func hash2(b []byte) (uint64, uint64) {
	h1 := uint64(fnvOffset)
	for _, c := range b {
		h1 ^= uint64(c)
		h1 *= fnvPrime
	}
	// Second hash: FNV over the bytes in reverse with a different offset.
	h2 := uint64(0x9E3779B97F4A7C15)
	for i := len(b) - 1; i >= 0; i-- {
		h2 ^= uint64(b[i])
		h2 *= fnvPrime
	}
	h2 |= 1 // must be odd so probe sequences cover the table
	return h1, h2
}

// Filter is a bloom filter. Build with New, fill with Add, then query with
// MayContain. The zero value is unusable.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint32 // number of probes
}

// New returns a filter sized for n keys at bitsPerKey bits each (10 bits
// per key ≈ 1% false-positive rate; the paper reports ~2% for partition
// filters).
func New(n int, bitsPerKey int) *Filter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	m := uint64(n * bitsPerKey)
	if m < 64 {
		m = 64
	}
	k := uint32(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether key might have been added. False positives
// are possible; false negatives are not.
func (f *Filter) MayContain(key []byte) bool {
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// PrefixFilter is a bloom filter over fixed-length key prefixes. A range
// scan whose bounds share at least PrefixLen leading bytes can consult it
// to skip partitions (§4.7 "prefix Bloom Filters").
type PrefixFilter struct {
	f         *Filter
	prefixLen int
}

// NewPrefix returns a prefix filter for n keys with the given prefix
// length.
func NewPrefix(n, bitsPerKey, prefixLen int) *PrefixFilter {
	if prefixLen < 1 {
		prefixLen = 1
	}
	return &PrefixFilter{f: New(n, bitsPerKey), prefixLen: prefixLen}
}

// PrefixLen returns the indexed prefix length.
func (p *PrefixFilter) PrefixLen() int { return p.prefixLen }

// Add inserts key's prefix.
func (p *PrefixFilter) Add(key []byte) {
	if len(key) < p.prefixLen {
		p.f.Add(key)
		return
	}
	p.f.Add(key[:p.prefixLen])
}

// MayContainRange reports whether any key in [lo, hi] might be present.
// When the bounds do not share PrefixLen bytes the filter cannot decide
// and answers true.
func (p *PrefixFilter) MayContainRange(lo, hi []byte) bool {
	if len(lo) < p.prefixLen || len(hi) < p.prefixLen {
		return true
	}
	pre := lo[:p.prefixLen]
	for i := 0; i < p.prefixLen; i++ {
		if lo[i] != hi[i] {
			return true
		}
	}
	return p.f.MayContain(pre)
}

// SizeBytes returns the memory footprint of the bit array.
func (p *PrefixFilter) SizeBytes() int { return p.f.SizeBytes() }

// MarshalBinary serializes the filter (bit array plus parameters).
func (f *Filter) MarshalBinary() []byte {
	out := make([]byte, 0, 12+len(f.bits)*8)
	out = append(out, byte(f.k))
	out = appendU64(out, f.m)
	out = appendU64(out, uint64(len(f.bits)))
	for _, w := range f.bits {
		out = appendU64(out, w)
	}
	return out
}

// UnmarshalFilter reconstructs a filter serialized by MarshalBinary,
// returning the bytes consumed.
func UnmarshalFilter(b []byte) (*Filter, int) {
	f := &Filter{k: uint32(b[0])}
	i := 1
	f.m, i = readU64(b, i)
	var n uint64
	n, i = readU64(b, i)
	f.bits = make([]uint64, n)
	for j := range f.bits {
		f.bits[j], i = readU64(b, i)
	}
	return f, i
}

// MarshalBinary serializes the prefix filter.
func (p *PrefixFilter) MarshalBinary() []byte {
	out := appendU64(nil, uint64(p.prefixLen))
	return append(out, p.f.MarshalBinary()...)
}

// UnmarshalPrefixFilter reconstructs a prefix filter, returning the bytes
// consumed.
func UnmarshalPrefixFilter(b []byte) (*PrefixFilter, int) {
	l, i := readU64(b, 0)
	f, n := UnmarshalFilter(b[i:])
	return &PrefixFilter{f: f, prefixLen: int(l)}, i + n
}

func appendU64(dst []byte, v uint64) []byte {
	for i := 56; i >= 0; i -= 8 {
		dst = append(dst, byte(v>>uint(i)))
	}
	return dst
}

func readU64(b []byte, i int) (uint64, int) {
	var v uint64
	for j := 0; j < 8; j++ {
		v = v<<8 | uint64(b[i+j])
	}
	return v, i + 8
}
