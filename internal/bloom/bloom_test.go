package bloom

import (
	"fmt"
	"testing"

	"mvpbt/internal/util"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 10)
	for i := 0; i < 10000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%08d", i)))
	}
	for i := 0; i < 10000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%08d", i))) {
			t.Fatalf("false negative for key-%08d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, 10)
	for i := 0; i < 10000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%08d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%08d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key gives ~1%; allow generous slack.
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(100, 10)
	hits := 0
	for i := 0; i < 1000; i++ {
		if f.MayContain([]byte(fmt.Sprintf("k%d", i))) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("empty filter answered yes %d times", hits)
	}
}

func TestTinyAndDegenerate(t *testing.T) {
	f := New(0, 0) // clamped internally
	f.Add([]byte{})
	if !f.MayContain([]byte{}) {
		t.Fatal("empty key lost")
	}
	if f.SizeBytes() < 8 {
		t.Fatal("filter has no storage")
	}
}

func TestSizeScalesWithKeys(t *testing.T) {
	small := New(1000, 10)
	big := New(100000, 10)
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("size does not scale with n")
	}
	// Paper Figure 13: filter size is small relative to partition size
	// (0.57MB filter for 24MB partition ≈ 2.4%). With 10 bits/key and
	// ~100-byte records: 10 bits vs 800 bits per record ≈ 1.25%.
	if big.SizeBytes() > 100000*2 {
		t.Fatalf("filter unexpectedly large: %d bytes for 100k keys", big.SizeBytes())
	}
}

func TestPrefixFilterRangeSkipping(t *testing.T) {
	p := NewPrefix(1000, 10, 4)
	// Keys are grouped under 4-byte prefixes "aaaa", "bbbb".
	for i := 0; i < 500; i++ {
		p.Add([]byte(fmt.Sprintf("aaaa-%04d", i)))
		p.Add([]byte(fmt.Sprintf("bbbb-%04d", i)))
	}
	if !p.MayContainRange([]byte("aaaa-0000"), []byte("aaaa-9999")) {
		t.Fatal("false negative on present prefix range")
	}
	if p.MayContainRange([]byte("cccc-0000"), []byte("cccc-9999")) {
		t.Fatal("absent prefix range not skipped (could be a false positive, but with 2 prefixes it must not)")
	}
	// Bounds with different prefixes: cannot decide, must answer true.
	if !p.MayContainRange([]byte("cccc-0000"), []byte("dddd-9999")) {
		t.Fatal("cross-prefix range must answer true")
	}
	// Short bounds: cannot decide.
	if !p.MayContainRange([]byte("cc"), []byte("cc")) {
		t.Fatal("short bounds must answer true")
	}
}

func TestPrefixFilterShortKeys(t *testing.T) {
	p := NewPrefix(10, 10, 8)
	p.Add([]byte("ab")) // shorter than prefix: indexed whole
	if p.PrefixLen() != 8 {
		t.Fatal("prefix length lost")
	}
}

func TestHashIndependence(t *testing.T) {
	// Distinct keys should rarely collide on both hashes.
	seen := map[[2]uint64]bool{}
	r := util.NewRand(1)
	for i := 0; i < 5000; i++ {
		k := make([]byte, 12)
		r.Letters(k)
		h1, h2 := hash2(k)
		pair := [2]uint64{h1, h2}
		if seen[pair] {
			t.Fatal("double-hash collision on random keys")
		}
		seen[pair] = true
	}
}
