package storage

import (
	"testing"
	"testing/quick"
)

func TestPageIDComposeDecompose(t *testing.T) {
	f := func(file uint32, pageNo uint64) bool {
		f24 := FileID(file & 0xFFFFFF)
		no := pageNo & (1<<40 - 1)
		pid := NewPageID(f24, no)
		return pid.File() == f24 && pid.PageNo() == no
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidPageID(t *testing.T) {
	if InvalidPageID.Valid() {
		t.Fatal("invalid page id reports valid")
	}
	if !NewPageID(1, 0).Valid() {
		t.Fatal("file 1 page 0 should be valid")
	}
	var r RecordID
	if r.Valid() {
		t.Fatal("zero record id reports valid")
	}
}

func TestRecordIDCodec(t *testing.T) {
	f := func(file uint32, pageNo uint64, slot uint16) bool {
		rid := RecordID{Page: NewPageID(FileID(file&0xFFFFFF), pageNo&(1<<40-1)), Slot: slot}
		enc := EncodeRecordID(nil, rid)
		if len(enc) != RecordIDLen {
			return false
		}
		return DecodeRecordID(enc) == rid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
