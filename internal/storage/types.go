// Package storage defines the identifiers shared by every storage-layer
// component: file ids, page ids and record ids (the physical references of
// §3.5 of the paper).
package storage

import (
	"fmt"

	"mvpbt/internal/util"
)

// PageSize is the database page size (the paper's engine and the simulated
// device both use 8 KiB pages).
const PageSize = 8192

// FileID identifies a storage object (a base table segment or an index
// file). FileID 0 is invalid so that the zero PageID is invalid too.
type FileID uint32

// PageID identifies a page: the owning file in the top 24 bits and the page
// number within the file in the lower 40 bits. The zero value is invalid.
type PageID uint64

// InvalidPageID is the zero, never-allocated page id.
const InvalidPageID PageID = 0

// NewPageID composes a page id from a file and a page number.
func NewPageID(f FileID, pageNo uint64) PageID {
	return PageID(uint64(f)<<40 | (pageNo & (1<<40 - 1)))
}

// File returns the owning file.
func (p PageID) File() FileID { return FileID(p >> 40) }

// PageNo returns the page number within the file.
func (p PageID) PageNo() uint64 { return uint64(p) & (1<<40 - 1) }

// Valid reports whether p refers to an allocatable page.
func (p PageID) Valid() bool { return p != InvalidPageID }

func (p PageID) String() string {
	return fmt.Sprintf("%d:%d", p.File(), p.PageNo())
}

// RecordID is a physical tuple-version reference: page and slot. It is the
// paper's recordID (§3.5).
type RecordID struct {
	Page PageID
	Slot uint16
}

// InvalidRecordID is the zero, never-assigned record id.
var InvalidRecordID = RecordID{}

// Valid reports whether r refers to a stored record.
func (r RecordID) Valid() bool { return r.Page.Valid() }

func (r RecordID) String() string {
	return fmt.Sprintf("%v/%d", r.Page, r.Slot)
}

// RecordIDLen is the encoded size of a RecordID.
const RecordIDLen = 10

// EncodeRecordID appends the fixed-width encoding of r to dst.
func EncodeRecordID(dst []byte, r RecordID) []byte {
	dst = util.EncodeUint64(dst, uint64(r.Page))
	return append(dst, byte(r.Slot>>8), byte(r.Slot))
}

// DecodeRecordID reads a RecordID written by EncodeRecordID.
func DecodeRecordID(src []byte) RecordID {
	return RecordID{
		Page: PageID(util.DecodeUint64(src)),
		Slot: uint16(src[8])<<8 | uint16(src[9]),
	}
}
