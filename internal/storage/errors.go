package storage

import "errors"

// Typed storage errors. They live in package storage — the one package every
// storage-layer component already imports — so that ssd, sfile, buffer, heap,
// the indexes, wal, db and maint can all wrap and test for them without
// import cycles. Callers classify with errors.Is.
var (
	// ErrIOFault marks a device-level I/O failure (an injected or simulated
	// media error). It is transient from the caller's point of view: retrying
	// the operation may succeed, and the retry loops in buffer, wal and maint
	// treat it as retryable.
	ErrIOFault = errors.New("storage: device I/O fault")

	// ErrCorruptPage marks a page whose checksum did not match its contents
	// (bit rot, torn write, firmware bug). It is permanent: re-reading the
	// same media returns the same corrupt bytes. Derived structures
	// (B-Tree/PBT runs) respond by quarantine-and-rebuild; base-table and
	// WAL pages surface it as a hard error.
	ErrCorruptPage = errors.New("storage: corrupt page (checksum mismatch)")

	// ErrFreedPage marks an access to a page of a freed or never-allocated
	// run — a use-after-free at the space-manager level. It indicates a
	// stale reference (e.g. an index entry pointing into a reclaimed
	// partition) rather than a media problem.
	ErrFreedPage = errors.New("storage: access to freed or unallocated page")

	// ErrNoSpace marks an extent allocation the device capacity budget
	// cannot satisfy (or an injected ENOSPC fault). It is neither transient
	// like ErrIOFault — retrying without reclaiming space fails the same
	// way — nor permanent like ErrCorruptPage: space reclamation (garbage
	// collection, partition merges, WAL truncation) can clear it. The
	// engine responds by degrading to read-only until reclamation brings
	// usage back under its soft watermark.
	ErrNoSpace = errors.New("storage: device capacity exhausted")
)
