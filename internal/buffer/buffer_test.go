package buffer

import (
	"testing"

	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

func setup(frames int) (*Pool, *sfile.Manager) {
	m := sfile.NewManager(ssd.New(simclock.New(), ssd.IntelP3600))
	return New(frames), m
}

func TestNewPageAndGet(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	fr, no, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0x5A
	p.Unpin(fr, true)
	fr2, err := p.Get(f, no)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Data()[0] != 0x5A {
		t.Fatal("page content lost")
	}
	p.Unpin(fr2, false)
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	p, m := setup(4)
	f := m.Create("t", sfile.ClassTable)
	var nos []uint64
	for i := 0; i < 10; i++ {
		fr, no, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		p.Unpin(fr, true)
		nos = append(nos, no)
	}
	for i, no := range nos {
		fr, err := p.Get(f, no)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i+1) {
			t.Fatalf("page %d lost across eviction: got %d", no, fr.Data()[0])
		}
		p.Unpin(fr, false)
	}
	if p.Evictions() == 0 {
		t.Fatal("expected dirty evictions")
	}
}

func TestAllPinnedErrors(t *testing.T) {
	p, m := setup(2)
	f := m.Create("t", sfile.ClassTable)
	a, _, _ := p.NewPage(f)
	b, _, _ := p.NewPage(f)
	if _, _, err := p.NewPage(f); err != ErrNoFrames {
		t.Fatalf("want ErrNoFrames, got %v", err)
	}
	p.Unpin(a, true)
	p.Unpin(b, true)
	if _, _, err := p.NewPage(f); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestPinCountsNested(t *testing.T) {
	p, m := setup(4)
	f := m.Create("t", sfile.ClassTable)
	fr, no, _ := p.NewPage(f)
	fr2, _ := p.Get(f, no)
	if fr != fr2 {
		t.Fatal("same page returned different frames")
	}
	p.Unpin(fr, true)
	// still pinned once; must survive pressure
	for i := 0; i < 10; i++ {
		x, _, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(x, false)
	}
	if fr2.PageID() != f.PageID(no) {
		t.Fatal("pinned frame was evicted")
	}
	p.Unpin(fr2, false)
}

func TestClassStats(t *testing.T) {
	p, m := setup(16)
	tbl := m.Create("t", sfile.ClassTable)
	idx := m.Create("i", sfile.ClassIndex)
	frT, noT, _ := p.NewPage(tbl)
	p.Unpin(frT, true)
	frI, noI, _ := p.NewPage(idx)
	p.Unpin(frI, true)
	for i := 0; i < 5; i++ {
		fr, _ := p.Get(tbl, noT)
		p.Unpin(fr, false)
	}
	fr, _ := p.Get(idx, noI)
	p.Unpin(fr, false)
	st := p.Stats()
	if st[sfile.ClassTable].Requests != 6 || st[sfile.ClassTable].Hits != 6 {
		t.Fatalf("table stats wrong: %+v", st[sfile.ClassTable])
	}
	if st[sfile.ClassIndex].Requests != 2 {
		t.Fatalf("index stats wrong: %+v", st[sfile.ClassIndex])
	}
	p.ResetStats()
	if s := p.Stats(); s[sfile.ClassTable].Requests != 0 {
		t.Fatal("reset failed")
	}
}

func TestMissCountsAfterEviction(t *testing.T) {
	p, m := setup(4)
	f := m.Create("t", sfile.ClassTable)
	var nos []uint64
	for i := 0; i < 8; i++ {
		fr, no, _ := p.NewPage(f)
		p.Unpin(fr, true)
		nos = append(nos, no)
	}
	p.ResetStats()
	fr, _ := p.Get(f, nos[0]) // evicted long ago: miss
	p.Unpin(fr, false)
	st := p.Stats()
	if st[sfile.ClassTable].Misses() != 1 {
		t.Fatalf("expected 1 miss, got %+v", st[sfile.ClassTable])
	}
}

func TestFlushPage(t *testing.T) {
	p, m := setup(4)
	f := m.Create("t", sfile.ClassTable)
	fr, no, _ := p.NewPage(f)
	fr.Data()[7] = 0x77
	p.Unpin(fr, true)
	p.FlushPage(f, no)
	// Read directly from the device, bypassing the pool.
	buf := make([]byte, storage.PageSize)
	f.ReadPage(no, buf)
	if buf[7] != 0x77 {
		t.Fatal("FlushPage did not persist")
	}
}

func TestFlushAll(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	var nos []uint64
	for i := 0; i < 5; i++ {
		fr, no, _ := p.NewPage(f)
		fr.Data()[0] = byte(i + 1)
		p.Unpin(fr, true)
		nos = append(nos, no)
	}
	p.FlushAll()
	buf := make([]byte, storage.PageSize)
	for i, no := range nos {
		f.ReadPage(no, buf)
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d not flushed", no)
		}
	}
}

func TestDropFilePages(t *testing.T) {
	p, m := setup(8)
	f := m.Create("i", sfile.ClassIndex)
	start, _ := f.AllocRun(4)
	// Cache the run's pages dirty via direct writes, then fetch.
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 4; i++ {
		f.WritePage(start+uint64(i), buf)
		fr, _ := p.Get(f, start+uint64(i))
		p.Unpin(fr, false)
	}
	p.DropFilePages(f, start, 4)
	p.ResetStats()
	fr, _ := p.Get(f, start) // must be a miss now
	p.Unpin(fr, false)
	if p.Stats()[sfile.ClassIndex].Hits != 0 {
		t.Fatal("dropped page still cached")
	}
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	p, m := setup(4)
	f := m.Create("t", sfile.ClassTable)
	fr, _, _ := p.NewPage(f)
	p.Unpin(fr, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin should panic")
		}
	}()
	p.Unpin(fr, false)
}

func TestGetAllPinnedErrors(t *testing.T) {
	p, m := setup(2)
	f := m.Create("t", sfile.ClassTable)
	// Create pages, then fill every frame with pins.
	a, n0, _ := p.NewPage(f)
	b, _, _ := p.NewPage(f)
	_ = n0
	if _, err := p.Get(f, 0); err != ErrNoFrames {
		// frame for page 0 is cached & pinned: Get should HIT, not error.
		if err != nil {
			t.Fatalf("unexpected: %v", err)
		}
		p.Unpin(a, false) // extra pin from the hit
	}
	// A page that is NOT cached cannot be brought in.
	c, _, err := p.NewPage(f)
	if err != ErrNoFrames {
		t.Fatalf("want ErrNoFrames, got %v", err)
	}
	_ = c
	p.Unpin(a, false)
	p.Unpin(b, false)
}

func TestEvictAllKeepsPinnedPages(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	pinned, no, _ := p.NewPage(f)
	pinned.Data()[0] = 0x42
	other, _, _ := p.NewPage(f)
	p.Unpin(other, true)
	p.EvictAll()
	// The pinned frame survives with its contents; re-Get hits.
	p.ResetStats()
	fr, err := p.Get(f, no)
	if err != nil {
		t.Fatal(err)
	}
	if fr != pinned || fr.Data()[0] != 0x42 {
		t.Fatal("pinned page evicted by EvictAll")
	}
	if p.Stats()[sfile.ClassTable].Hits != 1 {
		t.Fatal("pinned page not served from cache")
	}
	p.Unpin(fr, false)
	p.Unpin(pinned, true)
}

func TestEvictAllFlushesDirty(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	fr, no, _ := p.NewPage(f)
	fr.Data()[1] = 0x77
	p.Unpin(fr, true)
	p.EvictAll()
	buf := make([]byte, storage.PageSize)
	f.ReadPage(no, buf)
	if buf[1] != 0x77 {
		t.Fatal("EvictAll lost a dirty page")
	}
	// And the page is no longer cached.
	p.ResetStats()
	fr2, _ := p.Get(f, no)
	p.Unpin(fr2, false)
	if p.Stats()[sfile.ClassTable].Hits != 0 {
		t.Fatal("EvictAll left the page cached")
	}
}

func TestDropPinnedPagePanics(t *testing.T) {
	p, m := setup(4)
	f := m.Create("i", sfile.ClassIndex)
	start, _ := f.AllocRun(1)
	buf := make([]byte, storage.PageSize)
	f.WritePage(start, buf)
	fr, _ := p.Get(f, start)
	defer func() {
		if recover() == nil {
			t.Fatal("dropping a pinned page should panic")
		}
		p.Unpin(fr, false)
	}()
	p.DropFilePages(f, start, 1)
}
