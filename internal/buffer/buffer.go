// Package buffer implements the shared database buffer pool: a fixed set
// of page frames with clock-sweep replacement, pin counts, dirty
// write-back, and per-class request/hit statistics (the paper's Figure 12d
// compares index-node against base-table-node buffer traffic).
//
// The frame set is split into shards addressed by a hash of the page id,
// each with its own latch, page table, and clock hand, so page fetches
// from parallel clients do not contend on one pool-wide lock. Small pools
// (under 64 frames) collapse to a single shard and behave exactly like
// the unsharded pool, including its eviction order.
package buffer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mvpbt/internal/page"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
)

// ErrNoFrames is returned when every frame (of the page's shard) is pinned
// and none can be evicted.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// maxIORetries is how many times a failing page read or write is retried
// in-line before the error is surfaced (total attempts = 1 + maxIORetries).
// Transient device faults (storage.ErrIOFault) are worth retrying; freed-page
// references are not.
const maxIORetries = 2

// IOStats counts the pool's error-path activity: checksum verification
// failures on fetch, in-line retries, and operations that failed even after
// retrying.
type IOStats struct {
	ChecksumFailures int64
	ReadRetries      int64
	WriteRetries     int64
	ReadFailures     int64
	WriteFailures    int64
}

// ClassStats counts buffer traffic for one file class.
type ClassStats struct {
	Requests int64 // page fetches through the pool
	Hits     int64 // served without device I/O
}

// Misses returns Requests - Hits.
func (c ClassStats) Misses() int64 { return c.Requests - c.Hits }

// Sub returns c - o.
func (c ClassStats) Sub(o ClassStats) ClassStats {
	return ClassStats{Requests: c.Requests - o.Requests, Hits: c.Hits - o.Hits}
}

// classCounter is the internal atomic form of ClassStats.
type classCounter struct {
	requests atomic.Int64
	hits     atomic.Int64
}

// Frame is a pinned buffer page. Callers must Unpin every frame they
// fetched, stating whether they dirtied it.
type Frame struct {
	sh    *shard
	pid   storage.PageID
	file  *sfile.File
	data  []byte
	pin   int
	dirty bool
	ref   bool
}

// Data returns the frame's page buffer.
func (fr *Frame) Data() []byte { return fr.data }

// PageID returns the id of the page held by the frame.
func (fr *Frame) PageID() storage.PageID { return fr.pid }

// shard is one latch domain: a slice of the pool's frames with its own
// page table and clock hand.
type shard struct {
	mu     sync.Mutex
	frames []*Frame
	table  map[storage.PageID]*Frame
	hand   int
}

// Sharding bounds: never fewer than minFramesPerShard frames per shard
// (tiny test pools keep exact single-shard eviction semantics), never more
// than maxShards shards.
const (
	minFramesPerShard = 32
	maxShards         = 16
)

// evictHook is a registered page-range observer: fn fires with the
// range-relative page number whenever a cached page of the range is evicted
// or invalidated. Immutable-segment readers use it to keep derived caches
// (decoded pages) from outliving buffer residency.
type evictHook struct {
	id    int
	file  *sfile.File
	start uint64
	n     int
	fn    func(rel int)
}

// Pool is the shared buffer pool. All methods are safe for concurrent use.
type Pool struct {
	shards []*shard
	mask   uint64
	stats  [sfile.NumClasses]classCounter
	// evictions counts pages written back dirty (random in-place writes).
	evictions atomic.Int64

	// Error-path counters (see IOStats).
	checksumFails atomic.Int64
	readRetries   atomic.Int64
	writeRetries  atomic.Int64
	readFailures  atomic.Int64
	writeFailures atomic.Int64

	hookMu   sync.RWMutex
	hooks    []evictHook
	nextHook int
}

// New returns a pool with the given number of page frames.
func New(nFrames int) *Pool {
	if nFrames < 2 {
		nFrames = 2
	}
	nShards := 1
	for nShards < maxShards && nFrames/(nShards*2) >= minFramesPerShard {
		nShards *= 2
	}
	p := &Pool{
		shards: make([]*shard, nShards),
		mask:   uint64(nShards - 1),
	}
	for i := range p.shards {
		// Spread the remainder over the first shards.
		n := nFrames / nShards
		if i < nFrames%nShards {
			n++
		}
		sh := &shard{
			frames: make([]*Frame, n),
			table:  make(map[storage.PageID]*Frame, n),
		}
		for j := range sh.frames {
			sh.frames[j] = &Frame{sh: sh, data: make([]byte, storage.PageSize)}
		}
		p.shards[i] = sh
	}
	return p
}

// NumFrames returns the pool capacity in pages.
func (p *Pool) NumFrames() int {
	n := 0
	for _, sh := range p.shards {
		n += len(sh.frames)
	}
	return n
}

// NumShards returns the number of latch domains the frames are split into.
func (p *Pool) NumShards() int { return len(p.shards) }

// shardOf picks the shard for a page id (Fibonacci hash of the full id, so
// consecutive pages of one file spread across shards).
func (p *Pool) shardOf(pid storage.PageID) *shard {
	return p.shards[(uint64(pid)*0x9E3779B97F4A7C15)>>32&p.mask]
}

// lockAll acquires every shard latch in index order (the only multi-shard
// lock order, so pool-wide operations cannot deadlock each other).
func (p *Pool) lockAll() {
	for _, sh := range p.shards {
		sh.mu.Lock()
	}
}

func (p *Pool) unlockAll() {
	for _, sh := range p.shards {
		sh.mu.Unlock()
	}
}

// Get fetches page pageNo of file f, pinning it. The returned frame must be
// released with Unpin.
func (p *Pool) Get(f *sfile.File, pageNo uint64) (*Frame, error) {
	return p.GetCtx(context.Background(), f, pageNo)
}

// GetCtx is Get with a cancellation point: a done ctx fails the fetch
// before any device I/O and between I/O retry attempts (an in-flight
// device operation itself is never interrupted — the simulated I/O is
// atomic). Cache hits always succeed; a pinned frame is returned even
// under a canceled context because the caller must Unpin it regardless.
func (p *Pool) GetCtx(ctx context.Context, f *sfile.File, pageNo uint64) (*Frame, error) {
	pid := f.PageID(pageNo)
	p.stats[f.Class()].requests.Add(1)
	sh := p.shardOf(pid)
	sh.mu.Lock()
	if fr, ok := sh.table[pid]; ok {
		p.stats[f.Class()].hits.Add(1)
		fr.pin++
		fr.ref = true
		sh.mu.Unlock()
		return fr, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("buffer: page %d of %q: %w", pageNo, f.Name(), cerr)
	}
	fr, err := sh.victimLocked(p)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	// The read happens under the shard latch so a concurrent Get for the
	// same page cannot observe a half-filled frame. The device is simulated,
	// so holding the latch across the "I/O" costs nothing real. The frame is
	// installed in the page table only once the read verified, so a failed
	// fetch leaves it free for the next victim search.
	if err := p.readPageChecked(ctx, f, pageNo, fr.data); err != nil {
		fr.ref = false
		sh.mu.Unlock()
		return nil, err
	}
	fr.pid = pid
	fr.file = f
	fr.pin = 1
	fr.ref = true
	fr.dirty = false
	sh.table[pid] = fr
	sh.mu.Unlock()
	return fr, nil
}

// readPageChecked reads a page with bounded retries and verifies its
// checksum. Checksum mismatches count as corrupt pages (re-reads are still
// attempted: controllers do recover marginal reads) and I/O faults as
// transient; freed-page references fail immediately.
func (p *Pool) readPageChecked(ctx context.Context, f *sfile.File, pageNo uint64, buf []byte) error {
	var err error
	for attempt := 0; attempt <= maxIORetries; attempt++ {
		if attempt > 0 {
			if cerr := ctx.Err(); cerr != nil {
				// Cancelled between retries: give the caller its deadline
				// back instead of burning the remaining attempts.
				p.readFailures.Add(1)
				return fmt.Errorf("buffer: page %d of %q: %w (after %v)", pageNo, f.Name(), cerr, err)
			}
			p.readRetries.Add(1)
		}
		if err = f.ReadPage(pageNo, buf); err != nil {
			if errors.Is(err, storage.ErrFreedPage) {
				break
			}
			continue
		}
		if page.VerifyChecksum(buf) {
			return nil
		}
		p.checksumFails.Add(1)
		err = fmt.Errorf("buffer: page %d of %q: %w", pageNo, f.Name(), storage.ErrCorruptPage)
		// A checksum mismatch is media rot, not a transient transfer
		// failure: re-reading returns the same rotted bytes. Surface it
		// immediately so the caller can quarantine the page.
		break
	}
	p.readFailures.Add(1)
	return err
}

// writePageChecked stamps the page checksum and writes with bounded retries.
func (p *Pool) writePageChecked(f *sfile.File, pageNo uint64, buf []byte) error {
	page.StampChecksum(buf)
	var err error
	for attempt := 0; attempt <= maxIORetries; attempt++ {
		if attempt > 0 {
			p.writeRetries.Add(1)
		}
		if err = f.WritePage(pageNo, buf); err == nil {
			return nil
		}
		if errors.Is(err, storage.ErrFreedPage) {
			break
		}
	}
	p.writeFailures.Add(1)
	return err
}

// NewPage allocates a fresh page in f, returning a pinned zeroed frame and
// the new page number.
func (p *Pool) NewPage(f *sfile.File) (*Frame, uint64, error) {
	pageNo, err := f.AllocPage()
	if err != nil {
		return nil, 0, err
	}
	pid := f.PageID(pageNo)
	p.stats[f.Class()].requests.Add(1)
	p.stats[f.Class()].hits.Add(1) // fresh pages never touch the device
	sh := p.shardOf(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fr, err := sh.victimLocked(p)
	if err != nil {
		return nil, 0, err
	}
	fr.pid = pid
	fr.file = f
	fr.pin = 1
	fr.ref = true
	fr.dirty = true
	for i := range fr.data {
		fr.data[i] = 0
	}
	sh.table[pid] = fr
	return fr, pageNo, nil
}

// victimLocked finds a free or evictable frame in the shard, writing it
// back if dirty.
func (sh *shard) victimLocked(p *Pool) (*Frame, error) {
	n := len(sh.frames)
	for sweep := 0; sweep < 2*n; sweep++ {
		fr := sh.frames[sh.hand]
		sh.hand = (sh.hand + 1) % n
		if fr.pin > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.dirty {
			if err := p.writePageChecked(fr.file, fr.pid.PageNo(), fr.data); err != nil {
				// Write-back failed even after retries: keep the frame dirty
				// (the data is still only in memory) and surface the fault.
				return nil, err
			}
			fr.dirty = false
			p.evictions.Add(1)
		}
		if fr.pid.Valid() {
			delete(sh.table, fr.pid)
			p.notifyEvict(fr.file, fr.pid)
			fr.pid = storage.InvalidPageID
		}
		return fr, nil
	}
	return nil, ErrNoFrames
}

// AddEvictHook registers fn to fire (with the range-relative page number)
// whenever a cached page of f in [start, start+n) leaves the pool. fn runs
// under the page's shard latch and must not block or touch the pool.
// Returns a handle for RemoveEvictHook.
func (p *Pool) AddEvictHook(f *sfile.File, start uint64, n int, fn func(rel int)) int {
	p.hookMu.Lock()
	defer p.hookMu.Unlock()
	p.nextHook++
	p.hooks = append(p.hooks, evictHook{id: p.nextHook, file: f, start: start, n: n, fn: fn})
	return p.nextHook
}

// RemoveEvictHook unregisters a hook returned by AddEvictHook.
func (p *Pool) RemoveEvictHook(id int) {
	p.hookMu.Lock()
	defer p.hookMu.Unlock()
	for i := range p.hooks {
		if p.hooks[i].id == id {
			p.hooks = append(p.hooks[:i], p.hooks[i+1:]...)
			return
		}
	}
}

// notifyEvict fires the hooks covering pid. Callers hold the page's shard
// latch; hook order shard.mu -> hookMu is the only nesting, and hook
// registration never takes shard latches, so there is no cycle.
func (p *Pool) notifyEvict(f *sfile.File, pid storage.PageID) {
	p.hookMu.RLock()
	defer p.hookMu.RUnlock()
	pageNo := pid.PageNo()
	for i := range p.hooks {
		h := &p.hooks[i]
		if h.file == f && pageNo >= h.start && pageNo < h.start+uint64(h.n) {
			h.fn(int(pageNo - h.start))
		}
	}
}

// Unpin releases a frame fetched with Get or NewPage. dirty marks the page
// as modified, to be written back on eviction or flush.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	sh := fr.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr.pin <= 0 {
		panic("buffer: Unpin of unpinned frame")
	}
	fr.pin--
	if dirty {
		fr.dirty = true
	}
}

// FlushPage writes the page back immediately if it is cached dirty,
// leaving it cached clean. Used by the append heaps to emit sequential
// writes as tail pages fill. On a persistent write fault the page stays
// dirty and the error is returned.
func (p *Pool) FlushPage(f *sfile.File, pageNo uint64) error {
	pid := f.PageID(pageNo)
	sh := p.shardOf(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr, ok := sh.table[pid]; ok && fr.dirty {
		if err := p.writePageChecked(fr.file, pageNo, fr.data); err != nil {
			return err
		}
		fr.dirty = false
	}
	return nil
}

// FlushAll writes back every dirty page. It keeps going past individual
// failures (those pages stay dirty) and returns the first error.
func (p *Pool) FlushAll() error {
	p.lockAll()
	defer p.unlockAll()
	var firstErr error
	for _, sh := range p.shards {
		for _, fr := range sh.frames {
			if fr.pid.Valid() && fr.dirty {
				if err := p.writePageChecked(fr.file, fr.pid.PageNo(), fr.data); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				fr.dirty = false
			}
		}
	}
	return firstErr
}

// EvictAll flushes every dirty page (in pool-wide elevator order: sorted
// by page id, like a checkpointer) and invalidates all unpinned frames.
// Experiments use it to reproduce the paper's methodology of cleaning the
// OS page cache every second (§5 "Experimental Setup").
func (p *Pool) EvictAll() error {
	p.lockAll()
	defer p.unlockAll()
	var dirty []*Frame
	for _, sh := range p.shards {
		for _, fr := range sh.frames {
			if fr.pid.Valid() && fr.dirty {
				dirty = append(dirty, fr)
			}
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].pid < dirty[j].pid })
	var firstErr error
	for _, fr := range dirty {
		if err := p.writePageChecked(fr.file, fr.pid.PageNo(), fr.data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fr.dirty = false
	}
	for _, sh := range p.shards {
		for _, fr := range sh.frames {
			// Frames whose write-back failed stay dirty and stay cached.
			if fr.pid.Valid() && fr.pin == 0 && !fr.dirty {
				delete(sh.table, fr.pid)
				p.notifyEvict(fr.file, fr.pid)
				fr.pid = storage.InvalidPageID
				fr.ref = false
			}
		}
	}
	return firstErr
}

// DropFilePages discards all cached pages of file f in [start, start+n)
// without writing them back. Used when partition runs are freed: the pages
// are dead.
func (p *Pool) DropFilePages(f *sfile.File, start uint64, n int) {
	for i := 0; i < n; i++ {
		pid := f.PageID(start + uint64(i))
		sh := p.shardOf(pid)
		sh.mu.Lock()
		if fr, ok := sh.table[pid]; ok {
			if fr.pin > 0 {
				sh.mu.Unlock()
				panic("buffer: dropping pinned page")
			}
			delete(sh.table, pid)
			fr.pid = storage.InvalidPageID
			fr.dirty = false
			fr.ref = false
		}
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of the per-class counters.
func (p *Pool) Stats() [sfile.NumClasses]ClassStats {
	var out [sfile.NumClasses]ClassStats
	for i := range p.stats {
		out[i] = ClassStats{
			Requests: p.stats[i].requests.Load(),
			Hits:     p.stats[i].hits.Load(),
		}
	}
	return out
}

// Evictions returns the number of dirty write-backs performed by the
// replacement policy.
func (p *Pool) Evictions() int64 {
	return p.evictions.Load()
}

// IOStats returns a snapshot of the error-path counters.
func (p *Pool) IOStats() IOStats {
	return IOStats{
		ChecksumFailures: p.checksumFails.Load(),
		ReadRetries:      p.readRetries.Load(),
		WriteRetries:     p.writeRetries.Load(),
		ReadFailures:     p.readFailures.Load(),
		WriteFailures:    p.writeFailures.Load(),
	}
}

// ResetStats zeroes the per-class counters.
func (p *Pool) ResetStats() {
	for i := range p.stats {
		p.stats[i].requests.Store(0)
		p.stats[i].hits.Store(0)
	}
	p.evictions.Store(0)
}
