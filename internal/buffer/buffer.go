// Package buffer implements the shared database buffer pool: a fixed set
// of page frames with clock-sweep replacement, pin counts, dirty
// write-back, and per-class request/hit statistics (the paper's Figure 12d
// compares index-node against base-table-node buffer traffic).
package buffer

import (
	"errors"
	"sort"
	"sync"

	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
)

// ErrNoFrames is returned when every frame is pinned and none can be
// evicted.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// ClassStats counts buffer traffic for one file class.
type ClassStats struct {
	Requests int64 // page fetches through the pool
	Hits     int64 // served without device I/O
}

// Misses returns Requests - Hits.
func (c ClassStats) Misses() int64 { return c.Requests - c.Hits }

// Sub returns c - o.
func (c ClassStats) Sub(o ClassStats) ClassStats {
	return ClassStats{Requests: c.Requests - o.Requests, Hits: c.Hits - o.Hits}
}

// Frame is a pinned buffer page. Callers must Unpin every frame they
// fetched, stating whether they dirtied it.
type Frame struct {
	pid   storage.PageID
	file  *sfile.File
	data  []byte
	pin   int
	dirty bool
	ref   bool
}

// Data returns the frame's page buffer.
func (fr *Frame) Data() []byte { return fr.data }

// PageID returns the id of the page held by the frame.
func (fr *Frame) PageID() storage.PageID { return fr.pid }

// Pool is the shared buffer pool. All methods are safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	frames []*Frame
	table  map[storage.PageID]*Frame
	hand   int
	stats  [sfile.NumClasses]ClassStats
	// evictions counts pages written back dirty (random in-place writes).
	evictions int64
}

// New returns a pool with the given number of page frames.
func New(nFrames int) *Pool {
	if nFrames < 2 {
		nFrames = 2
	}
	p := &Pool{
		frames: make([]*Frame, nFrames),
		table:  make(map[storage.PageID]*Frame, nFrames),
	}
	for i := range p.frames {
		p.frames[i] = &Frame{data: make([]byte, storage.PageSize)}
	}
	return p
}

// NumFrames returns the pool capacity in pages.
func (p *Pool) NumFrames() int { return len(p.frames) }

// Get fetches page pageNo of file f, pinning it. The returned frame must be
// released with Unpin.
func (p *Pool) Get(f *sfile.File, pageNo uint64) (*Frame, error) {
	pid := f.PageID(pageNo)
	p.mu.Lock()
	p.stats[f.Class()].Requests++
	if fr, ok := p.table[pid]; ok {
		p.stats[f.Class()].Hits++
		fr.pin++
		fr.ref = true
		p.mu.Unlock()
		return fr, nil
	}
	fr, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	fr.pid = pid
	fr.file = f
	fr.pin = 1
	fr.ref = true
	fr.dirty = false
	p.table[pid] = fr
	// The read happens under the pool lock so a concurrent Get for the same
	// page cannot observe a half-filled frame. The device is simulated, so
	// holding the lock across the "I/O" costs nothing real.
	f.ReadPage(pageNo, fr.data)
	p.mu.Unlock()
	return fr, nil
}

// NewPage allocates a fresh page in f, returning a pinned zeroed frame and
// the new page number.
func (p *Pool) NewPage(f *sfile.File) (*Frame, uint64, error) {
	pageNo := f.AllocPage()
	pid := f.PageID(pageNo)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats[f.Class()].Requests++
	p.stats[f.Class()].Hits++ // fresh pages never touch the device
	fr, err := p.victimLocked()
	if err != nil {
		return nil, 0, err
	}
	fr.pid = pid
	fr.file = f
	fr.pin = 1
	fr.ref = true
	fr.dirty = true
	for i := range fr.data {
		fr.data[i] = 0
	}
	p.table[pid] = fr
	return fr, pageNo, nil
}

// victimLocked finds a free or evictable frame, writing it back if dirty.
func (p *Pool) victimLocked() (*Frame, error) {
	n := len(p.frames)
	for sweep := 0; sweep < 2*n; sweep++ {
		fr := p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if fr.pin > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.dirty {
			fr.file.WritePage(fr.pid.PageNo(), fr.data)
			fr.dirty = false
			p.evictions++
		}
		if fr.pid.Valid() {
			delete(p.table, fr.pid)
			fr.pid = storage.InvalidPageID
		}
		return fr, nil
	}
	return nil, ErrNoFrames
}

// Unpin releases a frame fetched with Get or NewPage. dirty marks the page
// as modified, to be written back on eviction or flush.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pin <= 0 {
		panic("buffer: Unpin of unpinned frame")
	}
	fr.pin--
	if dirty {
		fr.dirty = true
	}
}

// FlushPage writes the page back immediately if it is cached dirty,
// leaving it cached clean. Used by the append heaps to emit sequential
// writes as tail pages fill.
func (p *Pool) FlushPage(f *sfile.File, pageNo uint64) {
	pid := f.PageID(pageNo)
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.table[pid]; ok && fr.dirty {
		fr.file.WritePage(pageNo, fr.data)
		fr.dirty = false
	}
}

// FlushAll writes back every dirty page.
func (p *Pool) FlushAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.pid.Valid() && fr.dirty {
			fr.file.WritePage(fr.pid.PageNo(), fr.data)
			fr.dirty = false
		}
	}
}

// EvictAll flushes every dirty page (in elevator order: sorted by page id,
// like a checkpointer) and invalidates all unpinned frames. Experiments
// use it to reproduce the paper's methodology of cleaning the OS page
// cache every second (§5 "Experimental Setup").
func (p *Pool) EvictAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dirty []*Frame
	for _, fr := range p.frames {
		if fr.pid.Valid() && fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].pid < dirty[j].pid })
	for _, fr := range dirty {
		fr.file.WritePage(fr.pid.PageNo(), fr.data)
		fr.dirty = false
	}
	for _, fr := range p.frames {
		if fr.pid.Valid() && fr.pin == 0 {
			delete(p.table, fr.pid)
			fr.pid = storage.InvalidPageID
			fr.ref = false
		}
	}
}

// DropFilePages discards all cached pages of file f in [start, start+n)
// without writing them back. Used when partition runs are freed: the pages
// are dead.
func (p *Pool) DropFilePages(f *sfile.File, start uint64, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < n; i++ {
		pid := f.PageID(start + uint64(i))
		if fr, ok := p.table[pid]; ok {
			if fr.pin > 0 {
				panic("buffer: dropping pinned page")
			}
			delete(p.table, pid)
			fr.pid = storage.InvalidPageID
			fr.dirty = false
			fr.ref = false
		}
	}
}

// Stats returns a snapshot of the per-class counters.
func (p *Pool) Stats() [sfile.NumClasses]ClassStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Evictions returns the number of dirty write-backs performed by the
// replacement policy.
func (p *Pool) Evictions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// ResetStats zeroes the per-class counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = [sfile.NumClasses]ClassStats{}
	p.evictions = 0
}
