package buffer

import (
	"errors"
	"testing"

	"mvpbt/internal/sfile"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

// writeEvict creates a page with recognizable content and pushes it to the
// device (via FlushPage), then drops it from the cache so the next Get does
// real I/O.
func writeEvict(t *testing.T, p *Pool, f *sfile.File) uint64 {
	t.Helper()
	fr, no, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[100] = 0xC7
	p.Unpin(fr, true)
	if err := p.FlushPage(f, no); err != nil {
		t.Fatal(err)
	}
	p.DropFilePages(f, no, 1)
	return no
}

func TestGetDetectsBitRot(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	no := writeEvict(t, p, f)
	// Rot one media bit under the page: the next fetch must fail typed, and
	// re-reads (retries) must keep failing — rot is permanent.
	m.Device().ArmFault(ssd.FaultRule{Kind: ssd.FaultBitFlip, Class: ssd.AnyClass, Ops: []uint64{1}, ByteOffset: 300, BitMask: 0x04})
	if _, err := p.Get(f, no); !errors.Is(err, storage.ErrCorruptPage) {
		t.Fatalf("want ErrCorruptPage, got %v", err)
	}
	st := p.IOStats()
	if st.ChecksumFailures == 0 || st.ReadFailures != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestGetMasksTransientReadFault(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	no := writeEvict(t, p, f)
	// Fail only the first read: the in-line retry must mask it.
	m.Device().ArmFault(ssd.FaultRule{Kind: ssd.FaultReadErr, Class: ssd.AnyClass, Ops: []uint64{1}})
	fr, err := p.Get(f, no)
	if err != nil {
		t.Fatalf("transient fault should be masked: %v", err)
	}
	if fr.Data()[100] != 0xC7 {
		t.Fatal("content wrong after retried read")
	}
	p.Unpin(fr, false)
	st := p.IOStats()
	if st.ReadRetries == 0 || st.ReadFailures != 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestGetSurfacesPersistentReadFault(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	no := writeEvict(t, p, f)
	m.Device().ArmFault(ssd.FaultRule{Kind: ssd.FaultReadErr, Class: ssd.AnyClass, Sticky: true})
	if _, err := p.Get(f, no); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("want ErrIOFault, got %v", err)
	}
	m.Device().DisarmAllFaults()
	// The failed fetch must not have cached anything: a clean retry works.
	fr, err := p.Get(f, no)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data()[100] != 0xC7 {
		t.Fatal("content wrong after recovery")
	}
	p.Unpin(fr, false)
}

func TestFlushRetriesAndKeepsDirtyOnFailure(t *testing.T) {
	p, m := setup(8)
	f := m.Create("t", sfile.ClassTable)
	fr, no, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0x11
	p.Unpin(fr, true)
	m.Device().ArmFault(ssd.FaultRule{Kind: ssd.FaultWriteErr, Class: ssd.AnyClass, Sticky: true})
	if err := p.FlushPage(f, no); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("want ErrIOFault, got %v", err)
	}
	if st := p.IOStats(); st.WriteRetries == 0 || st.WriteFailures != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	m.Device().DisarmAllFaults()
	// The page stayed dirty, so a later flush persists it.
	if err := p.FlushPage(f, no); err != nil {
		t.Fatal(err)
	}
	p.DropFilePages(f, no, 1)
	fr2, err := p.Get(f, no)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Data()[0] != 0x11 {
		t.Fatal("data lost across failed flush")
	}
	p.Unpin(fr2, false)
}

func TestFreedPageNotRetried(t *testing.T) {
	p, m := setup(8)
	f := m.Create("idx", sfile.ClassIndex)
	start, _ := f.AllocRun(sfile.ExtentPages)
	f.FreeRun(start, sfile.ExtentPages)
	if _, err := p.Get(f, start); !errors.Is(err, storage.ErrFreedPage) {
		t.Fatalf("want ErrFreedPage, got %v", err)
	}
	if st := p.IOStats(); st.ReadRetries != 0 {
		t.Fatalf("freed-page access should not be retried: %+v", st)
	}
}
