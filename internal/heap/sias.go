package heap

import (
	"errors"
	"sync"

	"mvpbt/internal/buffer"
	"mvpbt/internal/page"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/vid"
)

// SiasHeap is the Snapshot Isolation Append Storage base table (§3.6,
// [9,11]): every new tuple-version is appended to the tail page, versions
// are chained new-to-old, invalidation is one-point (the existence of a
// successor invalidates the predecessor — no in-place timestamp writes),
// and an intrinsic VID indirection table maps each tuple to its chain
// entry-point (the newest version). Tail pages are flushed as they fill,
// producing the sequential base-table write pattern the paper's storage
// tradeoffs call for (§3.7).
type SiasHeap struct {
	// mu serializes page mutations against readers (see HotHeap.mu).
	mu   sync.RWMutex
	pool *buffer.Pool
	file *sfile.File
	mgr  *txn.Manager
	vids *vid.Table

	tail    uint64
	hasTail bool
}

// NewSiasHeap returns an empty SIAS heap stored in file.
func NewSiasHeap(pool *buffer.Pool, file *sfile.File, mgr *txn.Manager) *SiasHeap {
	return &SiasHeap{pool: pool, file: file, mgr: mgr, vids: vid.NewTable()}
}

// File returns the heap's storage file.
func (h *SiasHeap) File() *sfile.File { return h.file }

// VIDs exposes the indirection table (logical-reference indexes resolve
// through it).
func (h *SiasHeap) VIDs() *vid.Table { return h.vids }

// EntryPoint resolves a VID to the current chain entry-point.
func (h *SiasHeap) EntryPoint(v uint64) (storage.RecordID, bool) {
	return h.vids.Get(v)
}

// append places rec on the tail page, flushing full tails (sequential
// write) and starting a new one as needed.
func (h *SiasHeap) append(rec []byte) (storage.RecordID, error) {
	if h.hasTail {
		fr, err := h.pool.Get(h.file, h.tail)
		if err != nil {
			return storage.RecordID{}, err
		}
		p := page.Wrap(fr.Data())
		if slot, ok := p.Insert(rec); ok {
			h.pool.Unpin(fr, true)
			return storage.RecordID{Page: h.file.PageID(h.tail), Slot: uint16(slot)}, nil
		}
		h.pool.Unpin(fr, false)
		// Tail is full: write it out now — appends reach the device in
		// page order, i.e. sequentially. A flush fault is not fatal to the
		// append (the page stays dirty in the pool and will be retried at
		// eviction); only freed-page errors indicate real breakage.
		if err := h.pool.FlushPage(h.file, h.tail); err != nil && errors.Is(err, storage.ErrFreedPage) {
			return storage.RecordID{}, err
		}
	}
	fr, pageNo, err := h.pool.NewPage(h.file)
	if err != nil {
		return storage.RecordID{}, err
	}
	p := page.Wrap(fr.Data())
	p.Init()
	slot, ok := p.Insert(rec)
	h.pool.Unpin(fr, ok)
	if !ok {
		return storage.RecordID{}, errRecordTooLarge
	}
	h.tail, h.hasTail = pageNo, true
	return storage.RecordID{Page: h.file.PageID(pageNo), Slot: uint16(slot)}, nil
}

// Insert implements Heap.
func (h *SiasHeap) Insert(tx *txn.Tx, v uint64, data []byte) (storage.RecordID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec := Version{TCreate: tx.ID, VID: v, Data: data}
	rid, err := h.append(encodeVersion(nil, &rec))
	if err != nil {
		return storage.RecordID{}, err
	}
	h.vids.Set(v, rid)
	return rid, nil
}

// Update implements Heap. SIAS ignores hotEligible: every update appends a
// new entry-point, so index maintenance is always required for
// physical-reference indexes.
func (h *SiasHeap) Update(tx *txn.Tx, prev storage.RecordID, v uint64, data []byte, _ bool) (UpdateResult, error) {
	return h.supersede(tx, prev, v, data, false)
}

// Delete implements Heap: appends a tombstone version (the logical end of
// the chain — §4.1's tombstone tuple-version).
func (h *SiasHeap) Delete(tx *txn.Tx, prev storage.RecordID, v uint64) (UpdateResult, error) {
	return h.supersede(tx, prev, v, nil, true)
}

func (h *SiasHeap) supersede(tx *txn.Tx, prev storage.RecordID, v uint64, data []byte, tombstone bool) (UpdateResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// First-updater-wins: if the chain moved past prev, somebody else
	// already superseded prev — unless every newer version was written by
	// a since-aborted transaction. The entry-point alone is not enough: an
	// aborted head may sit on top of a committed update that DOES conflict,
	// so walk new-to-old until prev, our own earlier write, or the newest
	// non-aborted foreign version (the conflict) is found.
	link := prev
	for rid, ok := h.vids.Get(v); ok && rid.Valid() && rid != prev; {
		curV, err := h.readVersionLocked(rid)
		if err != nil {
			return UpdateResult{}, err
		}
		if curV.TCreate == tx.ID {
			// Our own earlier write in this transaction: chain onto it.
			link = rid
			break
		}
		if h.mgr.StatusOf(curV.TCreate) != txn.Aborted {
			return UpdateResult{}, ErrWriteConflict
		}
		rid = curV.Next
	}
	rec := Version{Tombstone: tombstone, TCreate: tx.ID, Next: link, VID: v, Data: data}
	rid, err := h.append(encodeVersion(nil, &rec))
	if err != nil {
		return UpdateResult{}, err
	}
	h.vids.Set(v, rid)
	return UpdateResult{NewRID: rid, NeedsIndexUpdate: true}, nil
}

// readAt decodes the version at rid; dead slots return ok=false. A freed
// page also reads as "gone" rather than an error: vacuum only frees extents
// whose every record was already deleted (invisible to all live snapshots),
// so a reference leading into one is by construction a dead-version
// reference — exactly the case SIAS's append-only design already resolves
// to "record gone" at the slot level.
func (h *SiasHeap) readAt(rid storage.RecordID) (Version, bool, error) {
	fr, err := h.pool.Get(h.file, rid.Page.PageNo())
	if err != nil {
		if errors.Is(err, storage.ErrFreedPage) {
			return Version{}, false, nil
		}
		return Version{}, false, err
	}
	p := page.Wrap(fr.Data())
	rec := p.Get(int(rid.Slot))
	if rec == nil {
		h.pool.Unpin(fr, false)
		return Version{}, false, nil
	}
	v := decodeVersion(rec)
	v.Data = append([]byte(nil), v.Data...)
	h.pool.Unpin(fr, false)
	return v, true, nil
}

// ReadVisible implements Heap: it reads the candidate to learn the tuple's
// VID, resolves the chain entry-point through the indirection table, and
// walks new-to-old until the first version whose creator tx sees — each
// hop a page fetch. This is the SIAS base-table visibility check whose
// cost MV-PBT's index-only check eliminates.
func (h *SiasHeap) ReadVisible(tx *txn.Tx, candidate storage.RecordID) (*VisibleVersion, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, ok, err := h.readAt(candidate)
	if err != nil || !ok {
		return nil, err
	}
	return h.readVisibleByVIDLocked(tx, v.VID)
}

// ReadVisibleByVID performs the visibility walk from the chain entry-point
// of the given VID (logical-reference indexes start here directly).
func (h *SiasHeap) ReadVisibleByVID(tx *txn.Tx, v uint64) (*VisibleVersion, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.readVisibleByVIDLocked(tx, v)
}

func (h *SiasHeap) readVisibleByVIDLocked(tx *txn.Tx, v uint64) (*VisibleVersion, error) {
	rid, ok := h.vids.Get(v)
	if !ok {
		return nil, nil
	}
	for rid.Valid() {
		ver, ok, err := h.readAt(rid)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		if tx.Sees(ver.TCreate) {
			if ver.Tombstone {
				return nil, nil
			}
			return &VisibleVersion{RID: rid, VID: ver.VID, Data: ver.Data}, nil
		}
		rid = ver.Next
	}
	return nil, nil
}

// ReadVersion implements Heap.
func (h *SiasHeap) ReadVersion(rid storage.RecordID) (Version, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.readVersionLocked(rid)
}

func (h *SiasHeap) readVersionLocked(rid storage.RecordID) (Version, error) {
	v, ok, err := h.readAt(rid)
	if err != nil {
		return Version{}, err
	}
	if !ok {
		return Version{}, errRecordGone
	}
	return v, nil
}

// ScanVersions implements Heap: it streams every live tuple-version in the
// heap. Under SIAS each non-tombstone version was a chain entry-point once
// and may still be the version some snapshot's index entry leads to, so a
// rebuilt version-oblivious index gets one candidate entry per version —
// readers deduplicate and visibility-check candidates anyway.
func (h *SiasHeap) ScanVersions(fn func(rid storage.RecordID, v Version) bool) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	nPages := h.file.NumPages()
	for pageNo := uint64(0); pageNo < nPages; pageNo++ {
		fr, err := h.pool.Get(h.file, pageNo)
		if err != nil {
			if errors.Is(err, storage.ErrFreedPage) {
				// A vacuumed extent: nothing lives there, skip past it.
				pageNo = (pageNo/sfile.ExtentPages+1)*sfile.ExtentPages - 1
				continue
			}
			return err
		}
		p := page.Wrap(fr.Data())
		pid := h.file.PageID(pageNo)
		cont := true
		for s := 0; s < p.NumSlots() && cont; s++ {
			rec := p.Get(s)
			if rec == nil {
				continue
			}
			v := decodeVersion(rec)
			if v.Tombstone {
				continue
			}
			v.Data = append([]byte(nil), v.Data...)
			cont = fn(storage.RecordID{Page: pid, Slot: uint16(s)}, v)
		}
		h.pool.Unpin(fr, false)
		if !cont {
			return nil
		}
	}
	return nil
}

// Vacuum implements Heap: for every chain it finds the newest version that
// is visible to every snapshot below the horizon and unlinks everything
// older, deleting those records. SIAS never inserts into non-tail pages,
// so freed slots in old pages are never reused and stale index references
// to them resolve to "record gone".
func (h *SiasHeap) Vacuum(horizon txn.TxID) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	removed := 0
	for _, e := range h.vids.Entries() {
		rid := e.RID
		// Find the newest all-visible version: TCreate < horizon and
		// committed. Everything strictly older than it is garbage.
		var anchor storage.RecordID
		for rid.Valid() {
			ver, ok, err := h.readAt(rid)
			if err != nil {
				return removed, err
			}
			if !ok {
				break
			}
			if ver.TCreate < horizon && h.mgr.StatusOf(ver.TCreate) == txn.Committed {
				anchor = rid
				rid = ver.Next
				break
			}
			rid = ver.Next
		}
		if !anchor.Valid() || !rid.Valid() {
			continue
		}
		// Unlink: clear the anchor's predecessor pointer, then delete the
		// tail of the chain.
		if err := h.clearNext(anchor); err != nil {
			return removed, err
		}
		for rid.Valid() {
			ver, ok, err := h.readAt(rid)
			if err != nil {
				return removed, err
			}
			if !ok {
				break
			}
			if err := h.deleteRecord(rid); err != nil {
				return removed, err
			}
			removed++
			rid = ver.Next
		}
	}
	h.freeDeadExtents()
	return removed, nil
}

// freeDeadExtents returns fully-dead extents to the device. SIAS appends
// only to the tail page, so once vacuum has deleted every record in an
// extent the extent can never gain a live record again — its device space
// is pure garbage. The extent holding the tail page is exempt, as is any
// extent with even one live slot (including tombstones, which must remain
// readable). Freed pages surface as storage.ErrFreedPage, which readAt maps
// to "record gone" — the resolution any stale reference into the extent
// would have gotten anyway. Returns the number of extents freed.
func (h *SiasHeap) freeDeadExtents() int {
	nPages := h.file.NumPages()
	if nPages == 0 {
		return 0
	}
	freed := 0
	nExt := (nPages + sfile.ExtentPages - 1) / sfile.ExtentPages
	for ext := uint64(0); ext < nExt; ext++ {
		if h.hasTail && ext == h.tail/sfile.ExtentPages {
			continue
		}
		start := ext * sfile.ExtentPages
		end := start + sfile.ExtentPages
		if end > nPages {
			end = nPages
		}
		dead := true
		for pageNo := start; pageNo < end; pageNo++ {
			fr, err := h.pool.Get(h.file, pageNo)
			if err != nil {
				// Already freed, or unreadable — either way, leave it be.
				dead = false
				break
			}
			live := page.Wrap(fr.Data()).LiveCount()
			h.pool.Unpin(fr, false)
			if live > 0 {
				dead = false
				break
			}
		}
		if !dead {
			continue
		}
		h.pool.DropFilePages(h.file, start, int(end-start))
		h.file.FreeRun(start, int(end-start))
		freed++
	}
	return freed
}

func (h *SiasHeap) clearNext(rid storage.RecordID) error {
	fr, err := h.pool.Get(h.file, rid.Page.PageNo())
	if err != nil {
		return err
	}
	p := page.Wrap(fr.Data())
	rec := p.Get(int(rid.Slot))
	if rec == nil {
		h.pool.Unpin(fr, false)
		return nil
	}
	v := decodeVersion(rec)
	v.Next = storage.RecordID{}
	v.Data = append([]byte(nil), v.Data...)
	ok := p.Replace(int(rid.Slot), encodeVersion(nil, &v))
	h.pool.Unpin(fr, ok)
	return nil
}

func (h *SiasHeap) deleteRecord(rid storage.RecordID) error {
	fr, err := h.pool.Get(h.file, rid.Page.PageNo())
	if err != nil {
		return err
	}
	p := page.Wrap(fr.Data())
	p.Delete(int(rid.Slot))
	h.pool.Unpin(fr, true)
	return nil
}
