package heap

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

func TestReadVersionOfGoneRecord(t *testing.T) {
	e := newEnv(64)
	h := e.sias()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("v0")) })
	cur := rid
	for i := 0; i < 5; i++ {
		e.commit(func(tx *txn.Tx) {
			res, _ := h.Update(tx, cur, 1, []byte(fmt.Sprintf("v%d", i+1)), true)
			cur = res.NewRID
		})
	}
	if _, err := h.Vacuum(e.mgr.Horizon()); err != nil {
		t.Fatal(err)
	}
	// The original version was vacuumed away; reading it must error, and
	// a stale-candidate visibility check must still find the live version.
	if _, err := h.ReadVersion(rid); err == nil {
		t.Fatal("vacuumed record still readable")
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	if vv, _ := h.ReadVisible(r, rid); vv != nil {
		// The candidate slot is dead: ReadVisible resolves nil (the db
		// layer then skips the candidate).
		t.Fatalf("dead candidate resolved: %+v", vv)
	}
	if vv, _ := h.ReadVisibleByVID(r, 1); vv == nil || !bytes.Equal(vv.Data, []byte("v5")) {
		t.Fatalf("live version lost after vacuum: %+v", vv)
	}
}

func TestHotDeleteConflicts(t *testing.T) {
	e := newEnv(64)
	h := e.hot()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("x")) })
	t1 := e.mgr.Begin()
	if _, err := h.Delete(t1, rid, 1); err != nil {
		t.Fatal(err)
	}
	t2 := e.mgr.Begin()
	if _, err := h.Delete(t2, rid, 1); err != ErrWriteConflict {
		t.Fatalf("concurrent delete: want conflict, got %v", err)
	}
	e.mgr.Abort(t1)
	// After the abort the delete may proceed.
	if _, err := h.Delete(t2, rid, 1); err != nil {
		t.Fatalf("delete after abort: %v", err)
	}
	e.mgr.Commit(t2)
}

func TestHotDeleteOfGoneRecord(t *testing.T) {
	e := newEnv(64)
	h := e.hot()
	tx := e.mgr.Begin()
	defer e.mgr.Abort(tx)
	gone := storage.RecordID{Page: storage.NewPageID(1, 0), Slot: 99}
	// Allocate page 0 first so the read succeeds but the slot is dead.
	e.commit(func(x *txn.Tx) { h.Insert(x, 1, []byte("seed")) })
	if _, err := h.Delete(tx, gone, 1); err != ErrWriteConflict {
		t.Fatalf("delete of dead slot: want conflict, got %v", err)
	}
}

func TestHotVacuumReusesFreedPages(t *testing.T) {
	e := newEnv(512)
	h := e.hot()
	// Build long chains on several pages, then vacuum and verify new
	// inserts land in the reclaimed space (file does not grow).
	var rids []storage.RecordID
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 50; i++ {
			rid, _ := h.Insert(tx, uint64(i+1), bytes.Repeat([]byte("a"), 300))
			rids = append(rids, rid)
		}
	})
	for round := 0; round < 6; round++ {
		e.commit(func(tx *txn.Tx) {
			for i := range rids {
				cur, _ := h.ReadVisible(tx, rids[i])
				if cur == nil {
					t.Fatalf("tuple %d lost", i)
				}
				res, err := h.Update(tx, cur.RID, uint64(i+1), bytes.Repeat([]byte("b"), 300), true)
				if err != nil {
					t.Fatal(err)
				}
				if res.NeedsIndexUpdate {
					// Non-HOT: the tuple moved to a new segment; track the
					// new entry-point like the index layer would.
					rids[i] = res.NewRID
				}
			}
		})
	}
	if _, err := h.Vacuum(e.mgr.Horizon()); err != nil {
		t.Fatal(err)
	}
	before := h.File().NumPages()
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 30; i++ {
			if _, err := h.Insert(tx, uint64(1000+i), bytes.Repeat([]byte("c"), 300)); err != nil {
				t.Fatal(err)
			}
		}
	})
	after := h.File().NumPages()
	if after > before+2 {
		t.Fatalf("vacuumed space not reused: %d -> %d pages", before, after)
	}
}

func TestSiasDoubleUpdateSameTx(t *testing.T) {
	e := newEnv(64)
	h := e.sias()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 3, []byte("v0")) })
	tx := e.mgr.Begin()
	r1, err := h.Update(tx, rid, 3, []byte("v1"), true)
	if err != nil {
		t.Fatal(err)
	}
	// Second update in the same tx chains onto its own first write even
	// when the caller passes the original rid.
	if _, err := h.Update(tx, rid, 3, []byte("v2"), true); err != nil {
		t.Fatalf("second same-tx update: %v", err)
	}
	e.mgr.Commit(tx)
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	vv, _ := h.ReadVisibleByVID(r, 3)
	if vv == nil || !bytes.Equal(vv.Data, []byte("v2")) {
		t.Fatalf("got %+v want v2", vv)
	}
	_ = r1
}

func TestVisibleVersionDataIsCopied(t *testing.T) {
	// The returned payload must not alias the page buffer (which the
	// buffer pool recycles).
	e := newEnv(4) // tiny pool: frames recycle immediately
	h := e.sias()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("stable-payload")) })
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	vv, _ := h.ReadVisible(r, rid)
	// Churn the pool so the frame gets reused.
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 50; i++ {
			h.Insert(tx, uint64(100+i), bytes.Repeat([]byte("x"), 500))
		}
	})
	if !bytes.Equal(vv.Data, []byte("stable-payload")) {
		t.Fatalf("payload aliased a recycled frame: %q", vv.Data)
	}
}

func TestHeapsAcceptEmptyData(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			var rid storage.RecordID
			e.commit(func(tx *txn.Tx) {
				var err error
				rid, err = h.Insert(tx, 77, nil)
				if err != nil {
					t.Fatal(err)
				}
			})
			r := e.mgr.Begin()
			defer e.mgr.Commit(r)
			vv, err := h.ReadVisible(r, rid)
			if err != nil || vv == nil {
				t.Fatalf("empty-payload tuple lost: %+v %v", vv, err)
			}
			if len(vv.Data) != 0 {
				t.Fatalf("payload not empty: %q", vv.Data)
			}
		})
	}
}
