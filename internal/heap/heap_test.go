package heap

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/buffer"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

type env struct {
	dev  *ssd.Device
	pool *buffer.Pool
	mgr  *txn.Manager
	fm   *sfile.Manager
}

func newEnv(frames int) *env {
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	return &env{
		dev:  dev,
		pool: buffer.New(frames),
		mgr:  txn.NewManager(),
		fm:   sfile.NewManager(dev),
	}
}

func (e *env) hot() *HotHeap {
	return NewHotHeap(e.pool, e.fm.Create("hot", sfile.ClassTable), e.mgr)
}

func (e *env) sias() *SiasHeap {
	return NewSiasHeap(e.pool, e.fm.Create("sias", sfile.ClassTable), e.mgr)
}

// commit runs fn inside a committed transaction and returns it.
func (e *env) commit(fn func(tx *txn.Tx)) *txn.Tx {
	tx := e.mgr.Begin()
	fn(tx)
	e.mgr.Commit(tx)
	return tx
}

func heapsUnderTest(e *env) map[string]Heap {
	return map[string]Heap{"hot": e.hot(), "sias": e.sias()}
}

func TestInsertAndReadVisible(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			var rid storage.RecordID
			e.commit(func(tx *txn.Tx) {
				var err error
				rid, err = h.Insert(tx, 1, []byte("v0"))
				if err != nil {
					t.Fatal(err)
				}
			})
			r := e.mgr.Begin()
			defer e.mgr.Commit(r)
			vv, err := h.ReadVisible(r, rid)
			if err != nil {
				t.Fatal(err)
			}
			if vv == nil || !bytes.Equal(vv.Data, []byte("v0")) {
				t.Fatalf("got %+v", vv)
			}
			if vv.VID != 1 {
				t.Fatalf("vid=%d want 1", vv.VID)
			}
		})
	}
}

func TestUncommittedInvisible(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			w := e.mgr.Begin()
			rid, err := h.Insert(w, 2, []byte("dirty"))
			if err != nil {
				t.Fatal(err)
			}
			r := e.mgr.Begin()
			vv, _ := h.ReadVisible(r, rid)
			if vv != nil {
				t.Fatal("uncommitted version visible to other tx")
			}
			// But visible to its own transaction.
			own, _ := h.ReadVisible(w, rid)
			if own == nil {
				t.Fatal("own write invisible")
			}
			e.mgr.Commit(w)
			e.mgr.Commit(r)
		})
	}
}

func TestAbortedInvisible(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			w := e.mgr.Begin()
			rid, _ := h.Insert(w, 3, []byte("doomed"))
			e.mgr.Abort(w)
			r := e.mgr.Begin()
			defer e.mgr.Commit(r)
			if vv, _ := h.ReadVisible(r, rid); vv != nil {
				t.Fatal("aborted insert visible")
			}
		})
	}
}

func TestUpdateChainSnapshots(t *testing.T) {
	// The Figure 1 scenario: a long-running reader keeps seeing t.v0 while
	// updaters produce v1..v3.
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			var rid storage.RecordID
			e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 7, []byte("v0")) })
			long := e.mgr.Begin() // long-running reader

			cur := rid
			for i := 1; i <= 3; i++ {
				tx := e.mgr.Begin()
				res, err := h.Update(tx, cur, 7, []byte(fmt.Sprintf("v%d", i)), true)
				if err != nil {
					t.Fatal(err)
				}
				e.mgr.Commit(tx)
				if res.NewRID.Valid() {
					cur = res.NewRID
				}
			}

			vv, err := h.ReadVisible(long, rid)
			if err != nil {
				t.Fatal(err)
			}
			if vv == nil || !bytes.Equal(vv.Data, []byte("v0")) {
				t.Fatalf("long reader sees %+v, want v0", vv)
			}

			fresh := e.mgr.Begin()
			vv2, _ := h.ReadVisible(fresh, cur)
			if vv2 == nil || !bytes.Equal(vv2.Data, []byte("v3")) {
				t.Fatalf("fresh reader sees %+v, want v3", vv2)
			}
			e.mgr.Commit(long)
			e.mgr.Commit(fresh)
		})
	}
}

func TestDeleteMakesInvisible(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			var rid storage.RecordID
			e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 9, []byte("x")) })
			before := e.mgr.Begin() // snapshot before the delete
			var del UpdateResult
			e.commit(func(tx *txn.Tx) {
				var err error
				del, err = h.Delete(tx, rid, 9)
				if err != nil {
					t.Fatal(err)
				}
			})
			after := e.mgr.Begin()
			entry := rid
			if del.NewRID.Valid() {
				entry = del.NewRID
			}
			if vv, _ := h.ReadVisible(after, entry); vv != nil {
				t.Fatal("deleted tuple visible to later snapshot")
			}
			if vv, _ := h.ReadVisible(before, rid); vv == nil || !bytes.Equal(vv.Data, []byte("x")) {
				t.Fatal("pre-delete snapshot lost the tuple")
			}
			e.mgr.Commit(before)
			e.mgr.Commit(after)
		})
	}
}

func TestWriteWriteConflict(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			var rid storage.RecordID
			e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 11, []byte("base")) })
			t1 := e.mgr.Begin()
			t2 := e.mgr.Begin()
			if _, err := h.Update(t1, rid, 11, []byte("a"), true); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Update(t2, rid, 11, []byte("b"), true); err != ErrWriteConflict {
				t.Fatalf("want ErrWriteConflict, got %v", err)
			}
			e.mgr.Commit(t1)
			e.mgr.Abort(t2)
		})
	}
}

func TestUpdateAfterAbortSucceeds(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			var rid storage.RecordID
			e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 13, []byte("base")) })
			t1 := e.mgr.Begin()
			if _, err := h.Update(t1, rid, 13, []byte("doomed"), true); err != nil {
				t.Fatal(err)
			}
			e.mgr.Abort(t1)
			var res UpdateResult
			e.commit(func(tx *txn.Tx) {
				var err error
				res, err = h.Update(tx, rid, 13, []byte("final"), true)
				if err != nil {
					t.Fatalf("update after abort: %v", err)
				}
			})
			r := e.mgr.Begin()
			defer e.mgr.Commit(r)
			entry := rid
			if res.NewRID.Valid() {
				entry = res.NewRID
			}
			vv, _ := h.ReadVisible(r, entry)
			if vv == nil || !bytes.Equal(vv.Data, []byte("final")) {
				t.Fatalf("got %+v want final", vv)
			}
		})
	}
}

func TestVersionCodecRoundTrip(t *testing.T) {
	v := Version{
		Tombstone:   true,
		SegmentRoot: true,
		TCreate:     12345,
		TInvalidate: 67890,
		Next:        storage.RecordID{Page: storage.NewPageID(3, 99), Slot: 7},
		VID:         424242,
		Data:        []byte("payload"),
	}
	got := decodeVersion(encodeVersion(nil, &v))
	if got.Tombstone != v.Tombstone || got.SegmentRoot != v.SegmentRoot ||
		got.TCreate != v.TCreate || got.TInvalidate != v.TInvalidate ||
		got.Next != v.Next || got.VID != v.VID || !bytes.Equal(got.Data, v.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, v)
	}
}

func TestHotUpdateStaysOnPage(t *testing.T) {
	e := newEnv(64)
	h := e.hot()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("small")) })
	var res UpdateResult
	e.commit(func(tx *txn.Tx) {
		var err error
		res, err = h.Update(tx, rid, 1, []byte("small2"), true)
		if err != nil {
			t.Fatal(err)
		}
	})
	if res.NeedsIndexUpdate {
		t.Fatal("HOT update should not require index maintenance")
	}
	if res.NewRID.Page != rid.Page {
		t.Fatal("HOT successor left the page")
	}
}

func TestHotNonKeyUpdateOverflowsToNewSegment(t *testing.T) {
	e := newEnv(256)
	h := e.hot()
	big := make([]byte, 3000)
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, big) })
	// Two updates fit (3 versions ≈ 9KB > 8KB, so the 2nd or 3rd spills).
	cur := rid
	spilled := false
	for i := 0; i < 3; i++ {
		e.commit(func(tx *txn.Tx) {
			res, err := h.Update(tx, cur, 1, big, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.NeedsIndexUpdate {
				spilled = true
			}
			cur = res.NewRID
		})
		if spilled {
			break
		}
	}
	if !spilled {
		t.Fatal("page-overflow update never became non-HOT")
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	vv, _ := h.ReadVisible(r, cur)
	if vv == nil {
		t.Fatal("post-spill version invisible via its own entry")
	}
}

func TestHotKeyUpdateSegmentsIsolated(t *testing.T) {
	// After a non-HOT (key) update, the old entry must NOT return the new
	// version — it belongs to the new index entry.
	e := newEnv(64)
	h := e.hot()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("old-key")) })
	var res UpdateResult
	e.commit(func(tx *txn.Tx) {
		var err error
		res, err = h.Update(tx, rid, 1, []byte("new-key"), false) // key update: not HOT-eligible
		if err != nil {
			t.Fatal(err)
		}
	})
	if !res.NeedsIndexUpdate {
		t.Fatal("key update must require index maintenance")
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	if vv, _ := h.ReadVisible(r, rid); vv != nil {
		t.Fatalf("old entry leaked new segment version: %+v", vv)
	}
	if vv, _ := h.ReadVisible(r, res.NewRID); vv == nil {
		t.Fatal("new entry cannot see new version")
	}
}

func TestSiasAppendSequentialWrites(t *testing.T) {
	e := newEnv(1024)
	h := e.sias()
	payload := make([]byte, 200)
	e.commit(func(tx *txn.Tx) {
		for i := 0; i < 2000; i++ {
			if _, err := h.Insert(tx, uint64(i+1), payload); err != nil {
				t.Fatal(err)
			}
		}
	})
	e.pool.FlushAll()
	s := e.dev.Stats()
	if s.Writes == 0 {
		t.Fatal("no writes reached the device")
	}
	if s.SeqWrites < s.RandWrites {
		t.Fatalf("SIAS writes not predominantly sequential: seq=%d rand=%d", s.SeqWrites, s.RandWrites)
	}
}

func TestSiasEntryPointMovesOnUpdate(t *testing.T) {
	e := newEnv(64)
	h := e.sias()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 5, []byte("v0")) })
	ep, ok := h.EntryPoint(5)
	if !ok || ep != rid {
		t.Fatal("entry point not set on insert")
	}
	var res UpdateResult
	e.commit(func(tx *txn.Tx) { res, _ = h.Update(tx, rid, 5, []byte("v1"), true) })
	if !res.NeedsIndexUpdate {
		t.Fatal("SIAS update must always require index maintenance")
	}
	ep, _ = h.EntryPoint(5)
	if ep != res.NewRID {
		t.Fatal("entry point did not move to new version")
	}
}

func TestSiasReadVisibleFromStaleCandidate(t *testing.T) {
	// A version-oblivious index hands the heap an OLD version's rid; the
	// visibility check must still find the NEWEST visible version via the
	// indirection layer.
	e := newEnv(64)
	h := e.sias()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 5, []byte("v0")) })
	e.commit(func(tx *txn.Tx) { _, _ = h.Update(tx, rid, 5, []byte("v1"), true) })
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	vv, _ := h.ReadVisible(r, rid) // stale candidate
	if vv == nil || !bytes.Equal(vv.Data, []byte("v1")) {
		t.Fatalf("stale candidate resolved to %+v, want v1", vv)
	}
}

func TestSiasOnePointInvalidationNoInPlaceWrites(t *testing.T) {
	// After the initial insert is flushed, updates must never dirty old
	// pages (one-point invalidation writes nothing to the predecessor).
	e := newEnv(64)
	h := e.sias()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 5, []byte("v0")) })
	e.pool.FlushAll()
	cur := rid
	filler := make([]byte, 500)
	e.commit(func(tx *txn.Tx) {
		// enough updates to fill several pages
		for i := 0; i < 50; i++ {
			res, err := h.Update(tx, cur, 5, filler, true)
			if err != nil {
				t.Fatal(err)
			}
			cur = res.NewRID
		}
	})
	e.pool.FlushAll()
	s := e.dev.Stats()
	if s.RandWrites > 2 { // first page write of the file is always "random"
		t.Fatalf("one-point invalidation should not cause random writes: %+v", s)
	}
}

func TestHotVacuumCollapsesChains(t *testing.T) {
	e := newEnv(256)
	h := e.hot()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("v0")) })
	cur := rid
	for i := 1; i <= 10; i++ {
		e.commit(func(tx *txn.Tx) {
			res, err := h.Update(tx, cur, 1, []byte(fmt.Sprintf("v%02d", i)), true)
			if err != nil {
				t.Fatal(err)
			}
			cur = res.NewRID
		})
	}
	removed, err := h.Vacuum(e.mgr.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("vacuum removed nothing from a 11-version chain")
	}
	// The segment root rid must still resolve to the newest version.
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	vv, _ := h.ReadVisible(r, rid)
	if vv == nil || !bytes.Equal(vv.Data, []byte("v10")) {
		t.Fatalf("after vacuum root resolves to %+v, want v10", vv)
	}
}

func TestHotVacuumRespectsHorizon(t *testing.T) {
	e := newEnv(256)
	h := e.hot()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("v0")) })
	long := e.mgr.Begin() // pins the horizon
	cur := rid
	for i := 1; i <= 5; i++ {
		e.commit(func(tx *txn.Tx) {
			res, _ := h.Update(tx, cur, 1, []byte(fmt.Sprintf("w%d", i)), true)
			cur = res.NewRID
		})
	}
	if _, err := h.Vacuum(e.mgr.Horizon()); err != nil {
		t.Fatal(err)
	}
	vv, _ := h.ReadVisible(long, rid)
	if vv == nil || !bytes.Equal(vv.Data, []byte("v0")) {
		t.Fatalf("vacuum destroyed version visible to long reader: %+v", vv)
	}
	e.mgr.Commit(long)
}

func TestSiasVacuumTruncatesChains(t *testing.T) {
	e := newEnv(256)
	h := e.sias()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) { rid, _ = h.Insert(tx, 1, []byte("v0")) })
	cur := rid
	for i := 1; i <= 10; i++ {
		e.commit(func(tx *txn.Tx) {
			res, _ := h.Update(tx, cur, 1, []byte(fmt.Sprintf("v%02d", i)), true)
			cur = res.NewRID
		})
	}
	removed, err := h.Vacuum(e.mgr.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if removed < 9 {
		t.Fatalf("vacuum removed %d, want >=9", removed)
	}
	r := e.mgr.Begin()
	defer e.mgr.Commit(r)
	vv, _ := h.ReadVisibleByVID(r, 1)
	if vv == nil || !bytes.Equal(vv.Data, []byte("v10")) {
		t.Fatalf("after vacuum chain resolves to %+v, want v10", vv)
	}
}

func TestManyTuplesAcrossEvictions(t *testing.T) {
	// Small pool forces heavy eviction traffic; everything must survive.
	e := newEnv(16)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			const n = 500
			rids := make([]storage.RecordID, n)
			e.commit(func(tx *txn.Tx) {
				for i := 0; i < n; i++ {
					var err error
					rids[i], err = h.Insert(tx, uint64(i+1000), []byte(fmt.Sprintf("tuple-%d", i)))
					if err != nil {
						t.Fatal(err)
					}
				}
			})
			r := e.mgr.Begin()
			defer e.mgr.Commit(r)
			for i := 0; i < n; i += 37 {
				vv, err := h.ReadVisible(r, rids[i])
				if err != nil {
					t.Fatal(err)
				}
				if vv == nil || !bytes.Equal(vv.Data, []byte(fmt.Sprintf("tuple-%d", i))) {
					t.Fatalf("tuple %d lost: %+v", i, vv)
				}
			}
		})
	}
}

// ScanVersions must stream exactly the versions a version-oblivious index
// holds entries for: HOT emits one record per chain-segment root (a HOT
// successor shares its root's entry), SIAS one per non-tombstone version.
func TestScanVersionsEmitsIndexEntryPoints(t *testing.T) {
	e := newEnv(64)
	for name, h := range heapsUnderTest(e) {
		t.Run(name, func(t *testing.T) {
			var rids []storage.RecordID
			e.commit(func(tx *txn.Tx) {
				for i := 0; i < 3; i++ {
					rid, err := h.Insert(tx, uint64(i), []byte(fmt.Sprintf("row-%d", i)))
					if err != nil {
						t.Fatal(err)
					}
					rids = append(rids, rid)
				}
			})
			// Tuple 0: HOT-eligible update (same segment under HOT, new
			// version under SIAS). Tuple 1: deleted.
			e.commit(func(tx *txn.Tx) {
				if _, err := h.Update(tx, rids[0], 0, []byte("row-0b"), true); err != nil {
					t.Fatal(err)
				}
				if _, err := h.Delete(tx, rids[1], 1); err != nil {
					t.Fatal(err)
				}
			})
			got := map[string]int{}
			n := 0
			if err := h.ScanVersions(func(rid storage.RecordID, v Version) bool {
				got[string(v.Data)]++
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			switch name {
			case "hot":
				// Three inserts made three segment roots; the HOT update and
				// the in-place delete add none.
				if n != 3 || got["row-0"] != 1 || got["row-1"] != 1 || got["row-2"] != 1 {
					t.Fatalf("hot entry-points %v (n=%d), want the 3 roots", got, n)
				}
			case "sias":
				// Every non-tombstone version: 3 inserts + 1 update version.
				if n != 4 || got["row-0b"] != 1 {
					t.Fatalf("sias versions %v (n=%d), want 4 incl. row-0b", got, n)
				}
			}
		})
	}
}

// After vacuum prunes a HOT chain, ScanVersions resolves redirect stubs to
// the surviving payload while reporting the stub's (stable) rid.
func TestScanVersionsResolvesRedirects(t *testing.T) {
	e := newEnv(64)
	h := e.hot()
	var rid storage.RecordID
	e.commit(func(tx *txn.Tx) {
		r, err := h.Insert(tx, 7, []byte("old"))
		if err != nil {
			t.Fatal(err)
		}
		rid = r
	})
	e.commit(func(tx *txn.Tx) {
		if _, err := h.Update(tx, rid, 7, []byte("new"), true); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := h.Vacuum(e.mgr.Horizon()); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := h.ScanVersions(func(got storage.RecordID, v Version) bool {
		if got == rid {
			found = true
			if string(v.Data) != "new" {
				t.Fatalf("redirect resolved to %q, want new", v.Data)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("pruned root's rid missing from ScanVersions")
	}
}
