// Package heap implements the two base-table organizations the paper
// evaluates (§3, §5):
//
//   - HotHeap: PostgreSQL-style heap with Heap-Only Tuples — physically
//     materialized versions, old-to-new chain ordering, two-point
//     invalidation, in-place page updates. Non-HOT updates start a new
//     chain segment and require index maintenance.
//   - SiasHeap: Snapshot Isolation Append Storage — append-only pages,
//     new-to-old ordering, one-point invalidation, sequential write
//     pattern, and an intrinsic VID indirection layer (entry-points).
//
// Both store each tuple-version as an independent slotted-page record
// carrying its version information (Figure 2.A), which is what makes the
// base-table visibility check of version-oblivious indexes cost one random
// read per matching version.
package heap

import (
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

// Version record flags.
const (
	flagTombstone   = 1 << 0 // logical delete marker (end of chain)
	flagSegmentRoot = 1 << 1 // version is an index entry-point (HOT heap)
	flagRedirect    = 1 << 2 // pruned entry-point forwarding to the survivor
)

// Version is a decoded tuple-version record: the paper's physically
// materialized version with creation/invalidation timestamps, chain link
// and virtual tuple identifier (Figures 2.A, 4, 5).
type Version struct {
	Tombstone bool
	// SegmentRoot marks versions that have their own index entries in the
	// HOT heap (initial inserts and non-HOT successors). Chain walks from
	// an older segment stop when they reach a root of a newer segment.
	SegmentRoot bool
	// Redirect marks a pruned entry-point (PostgreSQL's LP_REDIRECT):
	// the record carries no tuple, only a Next pointer to the surviving
	// version. Vacuum may never relocate a live version — MV-PBT records
	// hold direct physical references into the middle of HOT chains — so
	// pruning a dead chain prefix leaves the survivor in place and turns
	// the root slot into a redirect instead.
	Redirect bool
	TCreate  txn.TxID
	// TInvalidate is the invalidating transaction under two-point
	// invalidation (HotHeap). SiasHeap uses one-point invalidation and
	// leaves it zero.
	TInvalidate txn.TxID
	// Next links the chain: successor under old-to-new (HotHeap),
	// predecessor under new-to-old (SiasHeap).
	Next storage.RecordID
	// VID is the virtual tuple identifier (indirection layer, §3.5).
	VID uint64
	// Data is the tuple payload (row bytes).
	Data []byte
}

// encodeVersion appends the record encoding of v to dst.
func encodeVersion(dst []byte, v *Version) []byte {
	var flags byte
	if v.Tombstone {
		flags |= flagTombstone
	}
	if v.SegmentRoot {
		flags |= flagSegmentRoot
	}
	if v.Redirect {
		flags |= flagRedirect
	}
	dst = append(dst, flags)
	dst = util.PutUvarint(dst, uint64(v.TCreate))
	// The invalidation timestamp is fixed-width (like PostgreSQL's xmax
	// header field) so that stamping it in place under two-point
	// invalidation NEVER grows the record — an in-place update must always
	// succeed, even on a full page.
	dst = util.EncodeUint64(dst, uint64(v.TInvalidate))
	dst = storage.EncodeRecordID(dst, v.Next)
	dst = util.PutUvarint(dst, v.VID)
	return append(dst, v.Data...)
}

// decodeVersion parses a record produced by encodeVersion. The Data field
// aliases src.
func decodeVersion(src []byte) Version {
	var v Version
	flags := src[0]
	v.Tombstone = flags&flagTombstone != 0
	v.SegmentRoot = flags&flagSegmentRoot != 0
	v.Redirect = flags&flagRedirect != 0
	i := 1
	tc, n := util.Uvarint(src[i:])
	i += n
	ti := util.DecodeUint64(src[i:])
	i += 8
	v.TCreate, v.TInvalidate = txn.TxID(tc), txn.TxID(ti)
	v.Next = storage.DecodeRecordID(src[i:])
	i += storage.RecordIDLen
	vid, n := util.Uvarint(src[i:])
	i += n
	v.VID = vid
	v.Data = src[i:]
	return v
}

// UpdateResult reports the outcome of an update or delete.
type UpdateResult struct {
	// NewRID is the record id of the newly created version (the new chain
	// entry-point for SiasHeap; the new segment root for non-HOT updates).
	NewRID storage.RecordID
	// NeedsIndexUpdate is true when the new version is a new index
	// entry-point: physical-reference indexes must be maintained. HOT
	// same-page updates leave it false.
	NeedsIndexUpdate bool
}

// VisibleVersion is the result of a visibility check: the visible version's
// payload and location.
type VisibleVersion struct {
	RID  storage.RecordID
	VID  uint64
	Data []byte
}

// Heap is the base-table contract shared by both organizations.
type Heap interface {
	// Insert creates the initial version of a new tuple.
	Insert(tx *txn.Tx, vid uint64, data []byte) (storage.RecordID, error)
	// Update creates a successor version of the version at prev (which the
	// caller found visible). hotEligible is true when no indexed column
	// changed (the HOT condition); SiasHeap ignores it.
	Update(tx *txn.Tx, prev storage.RecordID, vid uint64, data []byte, hotEligible bool) (UpdateResult, error)
	// Delete appends a tombstone version ending the chain.
	Delete(tx *txn.Tx, prev storage.RecordID, vid uint64) (UpdateResult, error)
	// ReadVisible performs the base-table visibility check starting from an
	// index candidate rid; it returns nil when no version of that chain
	// (segment) is visible to tx.
	ReadVisible(tx *txn.Tx, candidate storage.RecordID) (*VisibleVersion, error)
	// ReadVersion fetches the exact version record at rid.
	ReadVersion(rid storage.RecordID) (Version, error)
	// Vacuum reclaims versions invisible to every snapshot below horizon.
	// It returns the number of version records removed.
	Vacuum(horizon txn.TxID) (int, error)
	// ScanVersions streams the versions a version-oblivious index would
	// hold entries for (HOT: chain-segment roots; SIAS: every non-tombstone
	// version), without applying visibility. It is the base-table side of an
	// index rebuild. fn returning false stops the scan.
	ScanVersions(fn func(rid storage.RecordID, v Version) bool) error
}

// ErrWriteConflict is returned when an update hits a version that a
// concurrent (or later committed) transaction already superseded:
// first-updater-wins under snapshot isolation.
type conflictError struct{}

func (conflictError) Error() string { return "heap: write-write conflict" }

// ErrWriteConflict is the sentinel write-write conflict error.
var ErrWriteConflict error = conflictError{}
