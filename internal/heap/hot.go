package heap

import (
	"sync"

	"mvpbt/internal/buffer"
	"mvpbt/internal/page"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// HotHeap is the PostgreSQL-style base table: old-to-new version chains,
// two-point invalidation with in-place timestamp updates, and Heap-Only
// Tuples — a non-key update whose successor fits on the same page extends
// the chain without touching any index; otherwise the successor starts a
// new chain segment with its own index entries.
//
// Chains are walk-isolated per segment (like PostgreSQL's heap_hot_search):
// a visibility walk entering a record flagged SegmentRoot from a
// predecessor stops — that version is reached through its own index entry.
type HotHeap struct {
	// mu serializes page mutations against readers: writers take the
	// exclusive lock, visibility walks the shared one. Critical sections
	// are per-call — a long scan acquires it once per candidate, so
	// readers and writers interleave freely (MVCC does the real isolation).
	mu   sync.RWMutex
	pool *buffer.Pool
	file *sfile.File
	mgr  *txn.Manager

	insertPage uint64
	hasInsert  bool
	freePages  []uint64 // pages with reclaimed space (filled by Vacuum)
}

// NewHotHeap returns an empty HOT heap stored in file.
func NewHotHeap(pool *buffer.Pool, file *sfile.File, mgr *txn.Manager) *HotHeap {
	return &HotHeap{pool: pool, file: file, mgr: mgr}
}

// File returns the heap's storage file.
func (h *HotHeap) File() *sfile.File { return h.file }

// placeRecord inserts rec into a page with space (the current insert
// target, a vacuumed page, or a fresh page) and returns its record id.
func (h *HotHeap) placeRecord(rec []byte) (storage.RecordID, error) {
	if h.hasInsert {
		if rid, ok, err := h.tryInsertAt(h.insertPage, rec); err != nil || ok {
			return rid, err
		}
	}
	for len(h.freePages) > 0 {
		pg := h.freePages[len(h.freePages)-1]
		h.freePages = h.freePages[:len(h.freePages)-1]
		if rid, ok, err := h.tryInsertAt(pg, rec); err != nil {
			return storage.RecordID{}, err
		} else if ok {
			h.insertPage, h.hasInsert = pg, true
			return rid, nil
		}
	}
	fr, pageNo, err := h.pool.NewPage(h.file)
	if err != nil {
		return storage.RecordID{}, err
	}
	p := page.Wrap(fr.Data())
	p.Init()
	slot, ok := p.Insert(rec)
	h.pool.Unpin(fr, true)
	if !ok {
		return storage.RecordID{}, errRecordTooLarge
	}
	h.insertPage, h.hasInsert = pageNo, true
	return storage.RecordID{Page: h.file.PageID(pageNo), Slot: uint16(slot)}, nil
}

func (h *HotHeap) tryInsertAt(pageNo uint64, rec []byte) (storage.RecordID, bool, error) {
	fr, err := h.pool.Get(h.file, pageNo)
	if err != nil {
		return storage.RecordID{}, false, err
	}
	p := page.Wrap(fr.Data())
	slot, ok := p.Insert(rec)
	h.pool.Unpin(fr, ok)
	if !ok {
		return storage.RecordID{}, false, nil
	}
	return storage.RecordID{Page: h.file.PageID(pageNo), Slot: uint16(slot)}, true, nil
}

// Insert implements Heap.
func (h *HotHeap) Insert(tx *txn.Tx, vid uint64, data []byte) (storage.RecordID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v := Version{SegmentRoot: true, TCreate: tx.ID, VID: vid, Data: data}
	return h.placeRecord(encodeVersion(nil, &v))
}

// Update implements Heap. prev must be the currently visible version of
// the tuple (found via an index); first-updater-wins conflicts return
// ErrWriteConflict.
func (h *HotHeap) Update(tx *txn.Tx, prev storage.RecordID, vid uint64, data []byte, hotEligible bool) (UpdateResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.supersede(tx, prev, vid, data, hotEligible, false)
}

// Delete implements Heap. PostgreSQL-style deletion under two-point
// invalidation just stamps the invalidation timestamp in place — no
// tombstone record is needed.
func (h *HotHeap) Delete(tx *txn.Tx, prev storage.RecordID, vid uint64) (UpdateResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fr, err := h.pool.Get(h.file, prev.Page.PageNo())
	if err != nil {
		return UpdateResult{}, err
	}
	p := page.Wrap(fr.Data())
	rec := p.Get(int(prev.Slot))
	if rec == nil {
		h.pool.Unpin(fr, false)
		return UpdateResult{}, ErrWriteConflict
	}
	v := decodeVersion(rec)
	if err := h.checkConflict(&v, tx); err != nil {
		h.pool.Unpin(fr, false)
		return UpdateResult{}, err
	}
	v.TInvalidate = tx.ID
	v.Next = storage.RecordID{}
	v.Data = append([]byte(nil), v.Data...) // rec aliases the page; Replace may move it
	ok := p.Replace(int(prev.Slot), encodeVersion(nil, &v))
	h.pool.Unpin(fr, ok)
	if !ok {
		return UpdateResult{}, errRecordTooLarge
	}
	return UpdateResult{}, nil
}

// checkConflict enforces first-updater-wins: an existing invalidation by a
// committed or still-running other transaction is a conflict; one by an
// aborted transaction (or by tx itself) may be overwritten.
func (h *HotHeap) checkConflict(v *Version, tx *txn.Tx) error {
	if v.TInvalidate == txn.InvalidTxID || v.TInvalidate == tx.ID {
		return nil
	}
	if h.mgr.StatusOf(v.TInvalidate) == txn.Aborted {
		return nil
	}
	return ErrWriteConflict
}

func (h *HotHeap) supersede(tx *txn.Tx, prev storage.RecordID, vid uint64, data []byte, hotEligible, tombstone bool) (UpdateResult, error) {
	fr, err := h.pool.Get(h.file, prev.Page.PageNo())
	if err != nil {
		return UpdateResult{}, err
	}
	p := page.Wrap(fr.Data())
	rec := p.Get(int(prev.Slot))
	if rec == nil {
		h.pool.Unpin(fr, false)
		return UpdateResult{}, ErrWriteConflict
	}
	old := decodeVersion(rec)
	if err := h.checkConflict(&old, tx); err != nil {
		h.pool.Unpin(fr, false)
		return UpdateResult{}, err
	}
	old.Data = append([]byte(nil), old.Data...)

	succ := Version{Tombstone: tombstone, TCreate: tx.ID, VID: vid, Data: data}
	var newRID storage.RecordID
	hot := false
	dirtied := false
	if hotEligible {
		if slot, ok := p.Insert(encodeVersion(nil, &succ)); ok {
			newRID = storage.RecordID{Page: prev.Page, Slot: uint16(slot)}
			hot = true
			dirtied = true
		}
	}
	if !hot {
		// Non-HOT: the successor starts a new segment elsewhere and needs
		// its own index entries.
		succ.SegmentRoot = true
		h.pool.Unpin(fr, false)
		newRID, err = h.placeRecord(encodeVersion(nil, &succ))
		if err != nil {
			return UpdateResult{}, err
		}
		fr, err = h.pool.Get(h.file, prev.Page.PageNo())
		if err != nil {
			return UpdateResult{}, err
		}
		p = page.Wrap(fr.Data())
	}
	// Two-point invalidation: stamp the predecessor in place.
	old.TInvalidate = tx.ID
	old.Next = newRID
	ok := p.Replace(int(prev.Slot), encodeVersion(nil, &old))
	h.pool.Unpin(fr, dirtied || ok)
	if !ok {
		return UpdateResult{}, errRecordTooLarge
	}
	return UpdateResult{NewRID: newRID, NeedsIndexUpdate: !hot}, nil
}

// ReadVisible implements Heap: it walks the chain segment starting at
// candidate (old-to-new) and returns the version visible to tx, fetching
// every hop's page — the random-read cost of the standard visibility
// check.
func (h *HotHeap) ReadVisible(tx *txn.Tx, candidate storage.RecordID) (*VisibleVersion, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	rid := candidate
	for rid.Valid() {
		fr, err := h.pool.Get(h.file, rid.Page.PageNo())
		if err != nil {
			return nil, err
		}
		p := page.Wrap(fr.Data())
		rec := p.Get(int(rid.Slot))
		if rec == nil {
			h.pool.Unpin(fr, false)
			return nil, nil
		}
		v := decodeVersion(rec)
		if v.Redirect {
			// Pruned entry-point: forward to the surviving version.
			next := v.Next
			h.pool.Unpin(fr, false)
			candidate, rid = next, next
			continue
		}
		if v.SegmentRoot && rid != candidate {
			// Crossed into the next segment: that version belongs to its
			// own index entry.
			h.pool.Unpin(fr, false)
			return nil, nil
		}
		if tx.Sees(v.TCreate) && (v.TInvalidate == txn.InvalidTxID || !tx.Sees(v.TInvalidate)) {
			if v.Tombstone {
				h.pool.Unpin(fr, false)
				return nil, nil
			}
			out := &VisibleVersion{RID: rid, VID: v.VID, Data: append([]byte(nil), v.Data...)}
			h.pool.Unpin(fr, false)
			return out, nil
		}
		next := v.Next
		h.pool.Unpin(fr, false)
		rid = next
	}
	return nil, nil
}

// ReadVersion implements Heap. Redirect stubs left behind by pruning are
// followed transparently.
func (h *HotHeap) ReadVersion(rid storage.RecordID) (Version, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.readVersionLocked(rid)
}

func (h *HotHeap) readVersionLocked(rid storage.RecordID) (Version, error) {
	for rid.Valid() {
		fr, err := h.pool.Get(h.file, rid.Page.PageNo())
		if err != nil {
			return Version{}, err
		}
		p := page.Wrap(fr.Data())
		rec := p.Get(int(rid.Slot))
		if rec == nil {
			h.pool.Unpin(fr, false)
			return Version{}, errRecordGone
		}
		v := decodeVersion(rec)
		if v.Redirect {
			next := v.Next
			h.pool.Unpin(fr, false)
			rid = next
			continue
		}
		v.Data = append([]byte(nil), v.Data...)
		h.pool.Unpin(fr, false)
		return v, nil
	}
	return Version{}, errRecordGone
}

// ScanVersions implements Heap: it streams the heap's index entry-points —
// every chain-segment root, since those are the versions HOT gives their own
// index entries (initial inserts and non-HOT successors). Redirect stubs are
// resolved to the surviving version's payload but reported at the stub's rid
// (the stable location index entries reference). Visibility is NOT applied:
// the stream is the raw material for rebuilding a version-oblivious index,
// whose readers run their own base-table visibility check per candidate.
func (h *HotHeap) ScanVersions(fn func(rid storage.RecordID, v Version) bool) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	nPages := h.file.NumPages()
	for pageNo := uint64(0); pageNo < nPages; pageNo++ {
		fr, err := h.pool.Get(h.file, pageNo)
		if err != nil {
			return err
		}
		p := page.Wrap(fr.Data())
		pid := h.file.PageID(pageNo)
		type root struct {
			rid storage.RecordID
			v   Version
		}
		var roots []root
		for s := 0; s < p.NumSlots(); s++ {
			rec := p.Get(s)
			if rec == nil {
				continue
			}
			v := decodeVersion(rec)
			if !v.SegmentRoot {
				continue
			}
			v.Data = append([]byte(nil), v.Data...)
			roots = append(roots, root{rid: storage.RecordID{Page: pid, Slot: uint16(s)}, v: v})
		}
		h.pool.Unpin(fr, false)
		for _, rt := range roots {
			v := rt.v
			if v.Redirect {
				// Resolve the stub to the survivor it forwards to; a stub
				// whose target vanished has no tuple left to index.
				resolved, err := h.readVersionLocked(rt.rid)
				if err == errRecordGone {
					continue
				}
				if err != nil {
					return err
				}
				resolved.VID = v.VID
				v = resolved
			}
			if !fn(rt.rid, v) {
				return nil
			}
		}
	}
	return nil
}

// Vacuum implements Heap: PostgreSQL-style page pruning. For every chain
// segment root it collapses the same-page prefix of dead versions
// (invalidated below the horizon, or created by aborted transactions) into
// the root slot, so the root rid — the one indexes point at — stays valid
// while the space is reclaimed.
func (h *HotHeap) Vacuum(horizon txn.TxID) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	removed := 0
	nPages := h.file.NumPages()
	for pageNo := uint64(0); pageNo < nPages; pageNo++ {
		fr, err := h.pool.Get(h.file, pageNo)
		if err != nil {
			return removed, err
		}
		p := page.Wrap(fr.Data())
		n, dirty := h.prunePage(p, h.file.PageID(pageNo), horizon)
		removed += n
		h.pool.Unpin(fr, dirty)
		if dirty && p.FreeSpace() > storage.PageSize/2 {
			h.freePages = append(h.freePages, pageNo)
		}
	}
	return removed, nil
}

func (h *HotHeap) dead(v *Version, horizon txn.TxID) bool {
	if h.mgr.StatusOf(v.TCreate) == txn.Aborted {
		return true
	}
	return v.TInvalidate != txn.InvalidTxID && v.TInvalidate < horizon &&
		h.mgr.StatusOf(v.TInvalidate) == txn.Committed
}

// prunePage collapses dead same-page chain prefixes. It returns the number
// of records removed and whether the page was modified.
func (h *HotHeap) prunePage(p page.Page, pid storage.PageID, horizon txn.TxID) (int, bool) {
	removed, dirty := 0, false
	nSlots := p.NumSlots()
	inChain := make(map[int]bool)
	type root struct {
		slot int
		v    Version
	}
	var roots []root
	for s := 0; s < nSlots; s++ {
		rec := p.Get(s)
		if rec == nil {
			continue
		}
		v := decodeVersion(rec)
		if v.SegmentRoot {
			roots = append(roots, root{slot: s, v: v})
		}
		if v.Next.Page == pid {
			inChain[int(v.Next.Slot)] = true
		}
	}
	for _, rt := range roots {
		// Collect the same-page chain: root → successors until the chain
		// leaves the page or reaches the next segment.
		slots := []int{rt.slot}
		vers := []Version{rt.v}
		cur := rt.v
		for cur.Next.Valid() && cur.Next.Page == pid {
			rec := p.Get(int(cur.Next.Slot))
			if rec == nil {
				break
			}
			nv := decodeVersion(rec)
			if nv.SegmentRoot {
				break
			}
			slots = append(slots, int(cur.Next.Slot))
			vers = append(vers, nv)
			cur = nv
		}
		// Find the first version worth keeping. A redirect root holds no
		// tuple, so the search starts behind it.
		start := 0
		if rt.v.Redirect {
			start = 1
		}
		keep := start
		for keep < len(vers)-1 && h.dead(&vers[keep], horizon) {
			keep++
		}
		if keep == start && rt.v.Redirect {
			continue // redirect already points at the survivor
		}
		if keep == 0 {
			continue // root version itself is still needed
		}
		// The survivor must stay at its own slot — MV-PBT records reference
		// mid-chain versions directly — so the root becomes a redirect stub
		// and only the dead versions between them are deleted.
		stub := Version{SegmentRoot: true, Redirect: true, VID: rt.v.VID,
			Next: storage.RecordID{Page: pid, Slot: uint16(slots[keep])}}
		if !p.Replace(rt.slot, encodeVersion(nil, &stub)) {
			continue
		}
		if !rt.v.Redirect {
			removed++ // the root's dead tuple was reclaimed in place
		}
		for i := start; i < keep; i++ {
			if i == 0 {
				continue // root slot was replaced, not deleted
			}
			p.Delete(slots[i])
			removed++
		}
		dirty = true
	}
	// Aborted versions that are not roots and not linked from anything on
	// this page are unreachable orphans.
	for s := 0; s < p.NumSlots(); s++ {
		rec := p.Get(s)
		if rec == nil || inChain[s] {
			continue
		}
		v := decodeVersion(rec)
		if !v.SegmentRoot && h.mgr.StatusOf(v.TCreate) == txn.Aborted {
			p.Delete(s)
			removed++
			dirty = true
		}
	}
	return removed, dirty
}

type heapError string

func (e heapError) Error() string { return string(e) }

const (
	errRecordTooLarge = heapError("heap: record exceeds page capacity")
	errRecordGone     = heapError("heap: record no longer exists")
)
