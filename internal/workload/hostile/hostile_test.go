package hostile

import (
	"testing"

	"mvpbt/internal/ssd"
)

// Every hostile scenario must replay byte-identically from its seed on
// every device in the zoo: run twice, demand fingerprint equality. This
// is the same double-replay discipline as the fault-injection and
// exhaustion campaigns — the workloads are deterministic functions of
// (kind, device, seed), so any divergence is a nondeterminism bug in the
// engine, the device model, or the generator itself.
func TestScenariosReplayOnZoo(t *testing.T) {
	for _, spec := range ssd.Zoo() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, kind := range Kinds() {
				kind := kind
				t.Run(kind.String(), func(t *testing.T) {
					cfg := Config{Device: spec, Seed: 1}
					a, err := Run(kind, cfg)
					if err != nil {
						t.Fatalf("run 1: %v", err)
					}
					b, err := Run(kind, cfg)
					if err != nil {
						t.Fatalf("run 2: %v", err)
					}
					if diffs := Diff(a, b); len(diffs) != 0 {
						t.Fatalf("replay diverged: %v", diffs)
					}
					if a.Committed == 0 {
						t.Fatal("scenario committed nothing")
					}
					if a.StateHash == 0 {
						t.Fatal("scenario produced no state hash")
					}
				})
			}
		})
	}
}

// Different seeds must drive genuinely different runs — a generator that
// ignores its seed would make every "campaign over seeds" vacuous.
func TestSeedsDiverge(t *testing.T) {
	for _, kind := range Kinds() {
		a, err := Run(kind, Config{Seed: 1})
		if err != nil {
			t.Fatalf("%v seed 1: %v", kind, err)
		}
		b, err := Run(kind, Config{Seed: 2})
		if err != nil {
			t.Fatalf("%v seed 2: %v", kind, err)
		}
		// Compare whole fingerprints, not just the final state hash:
		// sawtooth deliberately ends at a near-empty trough whose
		// contents are seed-independent, but the trajectory (I/O mix,
		// virtual time) must still differ.
		if len(Diff(a, b)) == 0 {
			t.Fatalf("%v: seeds 1 and 2 produced identical fingerprints", kind)
		}
	}
}

// The registry round-trips names, and unknown names are rejected.
func TestKindRegistry(t *testing.T) {
	want := []string{"hot-key-storm", "sawtooth", "snapshot-pin", "tenant-skew"}
	kinds := Kinds()
	if len(kinds) != len(want) {
		t.Fatalf("got %d kinds, want %d", len(kinds), len(want))
	}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d = %q, want %q", i, k.String(), want[i])
		}
		got, ok := KindByName(want[i])
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", want[i], got, ok)
		}
	}
	if _, ok := KindByName("meteor-strike"); ok {
		t.Fatal("KindByName accepted an unknown scenario")
	}
}

// The scenarios must exercise their device's distinguishing machinery:
// the ZNS device sees appends (and shim redirects from in-place page
// rewrites), the throttled cloud device accumulates token-bucket stalls
// under the tenant-skew bursts.
func TestScenariosExerciseDeviceModel(t *testing.T) {
	fp, err := Run(Sawtooth, Config{Device: ssd.ZNSAppend, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fp.ZNSAppends == 0 || fp.ZNSRedirects == 0 {
		t.Fatalf("sawtooth on zns: no zone activity: %+v", fp)
	}
	fp, err = Run(TenantSkew, Config{Device: ssd.CloudBlock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fp.CloudOps == 0 {
		t.Fatalf("tenant-skew on cloud-block: no metered ops: %+v", fp)
	}
}
