// Package hostile generates adversarial workload scenarios — the access
// patterns the paper's friendly YCSB/TPC-C mixes never produce but
// production systems do: hot-key storms that blow up one key's version
// chain, sawtooth bulk-load/delete cycles that whipsaw the space governor,
// long-running analytical snapshots that pin the GC horizon across
// maintenance cycles, and tenant-skewed mixes that drive the shard
// router's admission overload signal.
//
// Every scenario is a deterministic function of (kind, device, heap,
// seed): it runs single-threaded against engines on the virtual clock,
// with synchronous maintenance and group commit in its deterministic
// batches-of-one regime, and condenses its outcome into a comparable
// Fingerprint. Replaying the same scenario twice and comparing
// fingerprints with == is the whole determinism check — the same
// double-replay discipline as the fault and exhaustion campaigns
// (internal/check). The scenario campaign and the bench matrix both build
// on Run.
package hostile

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"mvpbt/internal/db"
	"mvpbt/internal/shard"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

// Kind names one hostile scenario.
type Kind int

// The four scenarios.
const (
	// HotKeyStorm hammers a single key with updates (version-chain
	// blowup) and measures whether unrelated-key lookups regress.
	HotKeyStorm Kind = iota
	// Sawtooth bulk-loads a keyspace and deletes it again, repeatedly —
	// the space governor must reclaim each trough instead of ratcheting.
	Sawtooth
	// SnapshotPin holds an analytical read snapshot open while update
	// churn fills the device: the pinned GC horizon must degrade the
	// engine to read-only, and releasing the snapshot must heal it.
	SnapshotPin
	// TenantSkew drives a skewed multi-tenant mix through a shard router
	// and its soft-watermark admission gate: overload must queue and shed
	// load without starving minority tenants.
	TenantSkew

	NumKinds = 4
)

func (k Kind) String() string {
	switch k {
	case HotKeyStorm:
		return "hot-key-storm"
	case Sawtooth:
		return "sawtooth"
	case SnapshotPin:
		return "snapshot-pin"
	case TenantSkew:
		return "tenant-skew"
	}
	return "?"
}

// Kinds returns all scenarios in canonical order.
func Kinds() []Kind { return []Kind{HotKeyStorm, Sawtooth, SnapshotPin, TenantSkew} }

// KindByName resolves a scenario by its String name.
func KindByName(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Config parameterizes one scenario run.
type Config struct {
	// Device is the zoo device to run on (zero = enterprise-nvme).
	Device ssd.DeviceSpec
	// Seed drives every random choice in the scenario.
	Seed uint64
	// Heap is the base-table layout for the table-backed scenarios
	// (ignored by TenantSkew, which runs on the clustered KV).
	Heap db.HeapKind
	// Scale multiplies operation counts (default 1, the CI size).
	Scale int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// Fingerprint condenses one scenario run into a comparable value: two
// replays of the same (kind, device, heap, seed) must produce fingerprints
// equal under ==. Fields are scalars and fixed arrays ONLY — adding a
// slice or map here would silently break the determinism diff.
type Fingerprint struct {
	Kind Kind
	// Committed counts committed transactions; TypedErrs counts expected
	// typed failures (db.ErrReadOnly, storage.ErrNoSpace) absorbed by the
	// scenario's control flow.
	Committed int64
	TypedErrs int64
	// StateHash fingerprints the final oracle state (FNV-1a, key order).
	StateHash uint64

	// Device counters, summed over every engine in the scenario.
	Reads, Writes         int64
	SeqWrites, RandWrites int64
	IOTimeNS              int64
	ZNSAppends            int64
	ZNSRedirects          int64
	ZNSResets             int64
	CloudOps              int64
	CloudStalls           int64
	CloudStallNS          int64

	// Space-governor counters, summed over every engine.
	ROEntries, ROExits, Reclaims int64

	// HotKeyStorm: unrelated-key lookup p99 (virtual ns) before and after
	// the storm, and the storm's update count.
	BaseP99NS  int64
	StormP99NS int64
	HotUpdates int64

	// Sawtooth: peak live bytes across load crests and live bytes after
	// the final trough's reclamation.
	PeakLive  int64
	FinalLive int64

	// SnapshotPin: churn transactions it took to degrade the engine, live
	// bytes at degradation and after the snapshot's release healed it.
	PinTxs       int64
	PinnedLive   int64
	ReleasedLive int64

	// TenantSkew: committed ops per tenant, the admission model's
	// queue/shed counts, and the commits that landed after the first
	// load-shed (proof the gate reopened after a maintenance window).
	Tenants        [4]int64
	Queued         int64
	Rejected       int64
	ResumedCommits int64
}

// Diff describes how two fingerprints of the same scenario diverge
// ("" = byte-identical replay).
func Diff(a, b Fingerprint) string {
	if a == b {
		return ""
	}
	return fmt.Sprintf("fingerprints differ:\n  run1: %+v\n  run2: %+v", a, b)
}

// Run executes one scenario and returns its fingerprint. A non-nil error
// means the scenario itself failed an invariant (not a determinism
// mismatch — that is the caller's double-replay comparison).
func Run(kind Kind, cfg Config) (Fingerprint, error) {
	cfg = cfg.withDefaults()
	switch kind {
	case HotKeyStorm:
		return runHotKey(cfg)
	case Sawtooth:
		return runSawtooth(cfg)
	case SnapshotPin:
		return runSnapshotPin(cfg)
	case TenantSkew:
		return runTenantSkew(cfg)
	}
	return Fingerprint{}, fmt.Errorf("hostile: unknown scenario kind %d", int(kind))
}

// ---- shared helpers ----

// row builds the harness row layout [len(key)][key][val].
func row(key, val string) []byte {
	r := make([]byte, 0, 1+len(key)+len(val))
	r = append(r, byte(len(key)))
	r = append(r, key...)
	return append(r, val...)
}

func extractKey(r []byte) []byte { return r[1 : 1+r[0]] }

// p99 returns the 99th-percentile of durations in ns (0 for no samples).
func p99(samples []int64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*99+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// hashState fingerprints an oracle map in key order.
func hashState(expect map[string]string) uint64 {
	keys := make([]string, 0, len(expect))
	for k := range expect {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write([]byte(expect[k]))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// captureEngine folds one engine's device and governor counters into fp.
func (fp *Fingerprint) captureEngine(e *db.Engine) {
	st := e.Dev.Stats()
	fp.Reads += st.Reads
	fp.Writes += st.Writes
	fp.SeqWrites += st.SeqWrites
	fp.RandWrites += st.RandWrites
	fp.IOTimeNS += int64(st.IOTime())
	z := e.Dev.ZNSCounters()
	fp.ZNSAppends += z.Appends
	fp.ZNSRedirects += z.Redirects
	fp.ZNSResets += z.Resets
	c := e.Dev.CloudCounters()
	fp.CloudOps += c.Ops
	fp.CloudStalls += c.Stalls
	fp.CloudStallNS += int64(c.StallTime)
	sp := e.SpaceInfo()
	fp.ROEntries += sp.ROEntries
	fp.ROExits += sp.ROExits
	fp.Reclaims += sp.Reclaims
}

// table is a single-engine scenario fixture: an engine, one table with a
// unique MV-PBT primary index, and the expected committed state (the
// oracle — single-client histories make a last-committed-row map
// complete).
type table struct {
	eng    *db.Engine
	tbl    *db.Table
	ix     *db.Index
	expect map[string]string
}

func newTable(cfg Config, ec db.Config) (*table, error) {
	ec.Device = cfg.Device
	ec.EnableWAL = true
	// Group commit in its deterministic single-threaded regime (batches
	// of one), so scenarios exercise the production commit pipeline.
	ec.GroupCommit = db.GroupCommitConfig{Enabled: true}
	eng := db.NewEngine(ec)
	tbl, err := eng.NewTable("t", cfg.Heap, db.IndexDef{
		Name: "pk", Kind: db.IdxMVPBT, RefMode: db.RefPhysical, Unique: true,
		Extract: extractKey, BloomBits: 10, MaxPartitions: 6,
	})
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &table{eng: eng, tbl: tbl, ix: tbl.Indexes()[0], expect: map[string]string{}}, nil
}

// put upserts key=val in one committed transaction, mirroring the oracle.
// Typed write failures (read-only degradation, exhaustion) are returned
// untouched for the caller's control flow.
func (t *table) put(key, val string) error {
	r := row(key, val)
	tx := t.eng.Begin()
	if _, ok := t.expect[key]; ok {
		cur, err := t.tbl.LookupOne(tx, t.ix, []byte(key), true)
		if err == nil && cur == nil {
			err = fmt.Errorf("hostile: committed key %q not visible", key)
		}
		if err == nil {
			_, err = t.tbl.Update(tx, *cur, r)
		}
		if err != nil {
			t.eng.Abort(tx)
			return err
		}
	} else if _, _, err := t.tbl.Insert(tx, r); err != nil {
		t.eng.Abort(tx)
		return err
	}
	if err := t.eng.CommitDurable(tx); err != nil {
		t.eng.Abort(tx)
		return err
	}
	t.expect[key] = val
	return nil
}

// del removes key in one committed transaction, mirroring the oracle.
func (t *table) del(key string) error {
	tx := t.eng.Begin()
	cur, err := t.tbl.LookupOne(tx, t.ix, []byte(key), true)
	if err == nil && cur == nil {
		err = fmt.Errorf("hostile: committed key %q not visible for delete", key)
	}
	if err == nil {
		err = t.tbl.Delete(tx, *cur)
	}
	if err != nil {
		t.eng.Abort(tx)
		return err
	}
	if err := t.eng.CommitDurable(tx); err != nil {
		t.eng.Abort(tx)
		return err
	}
	delete(t.expect, key)
	return nil
}

// lookupNS reads key at a fresh snapshot and returns the virtual time the
// lookup cost. The value is held to the oracle.
func (t *table) lookupNS(key string) (int64, error) {
	tx := t.eng.Begin()
	defer t.eng.Abort(tx)
	before := t.eng.Clock.Now()
	cur, err := t.tbl.LookupOne(tx, t.ix, []byte(key), true)
	elapsed := int64(t.eng.Clock.Now() - before)
	if err != nil {
		return elapsed, err
	}
	want, ok := t.expect[key]
	switch {
	case !ok && cur != nil:
		return elapsed, fmt.Errorf("hostile: deleted key %q still visible", key)
	case ok && cur == nil:
		return elapsed, fmt.Errorf("hostile: committed key %q not visible", key)
	case ok && string(cur.Row) != string(row(key, want)):
		return elapsed, fmt.Errorf("hostile: key %q: got %q, want %q", key, cur.Row, row(key, want))
	}
	return elapsed, nil
}

// checkState holds a full scan to the oracle.
func (t *table) checkState(phase string) error {
	tx := t.eng.Begin()
	defer t.eng.Abort(tx)
	got := map[string]string{}
	err := t.tbl.Scan(tx, t.ix, nil, nil, true, func(rr db.RowRef) bool {
		got[string(rr.Key)] = string(rr.Row)
		return true
	})
	if err != nil {
		return fmt.Errorf("hostile: %s: scan: %w", phase, err)
	}
	if len(got) != len(t.expect) {
		return fmt.Errorf("hostile: %s: engine has %d rows, oracle %d", phase, len(got), len(t.expect))
	}
	for k, w := range t.expect {
		if g, ok := got[k]; !ok || g != string(row(k, w)) {
			return fmt.Errorf("hostile: %s: row %q: engine %q, oracle %q", phase, k, g, row(k, w))
		}
	}
	return nil
}

func isSpacePressure(err error) bool {
	return errors.Is(err, db.ErrReadOnly) || errors.Is(err, storage.ErrNoSpace)
}

// randVal builds a value of n random letters.
func randVal(rng *util.Rand, n int) string {
	buf := make([]byte, n)
	rng.Letters(buf)
	return string(buf)
}

// ---- scenario: hot-key storm ----

// runHotKey seeds a cold keyspace bigger than the buffer pool, measures
// the lookup p99 of a fixed cold-key sample, then storms one key with
// updates (a single version chain absorbing every write) and measures the
// same sample again. The pair (BaseP99NS, StormP99NS) is the scenario's
// claim check: MV-PBT's partition structure must keep unrelated keys'
// read cost bounded while one key's version chain blows up.
func runHotKey(cfg Config) (Fingerprint, error) {
	fp := Fingerprint{Kind: HotKeyStorm}
	// A buffer pool (64 pages = 512 KiB) far smaller than the dataset, so
	// cold lookups pay device reads — the regression being measured is an
	// I/O effect, not a CPU effect.
	t, err := newTable(cfg, db.Config{BufferPages: 64, PartitionBufferBytes: 96 << 10})
	if err != nil {
		return fp, err
	}
	defer t.eng.Close()
	rng := util.NewRand(cfg.Seed)

	keys := 1500 * cfg.Scale
	for i := 0; i < keys; i++ {
		if err := t.put(fmt.Sprintf("k%05d", i), randVal(rng, 500+rng.Intn(300))); err != nil {
			return fp, err
		}
		fp.Committed++
	}
	const hot = "hot"
	if err := t.put(hot, randVal(rng, 64)); err != nil {
		return fp, err
	}
	fp.Committed++

	// One fixed cold-key sample, measured before and after the storm.
	sample := make([]string, 200)
	for i := range sample {
		sample[i] = fmt.Sprintf("k%05d", rng.Intn(keys))
	}
	measure := func() (int64, error) {
		durs := make([]int64, 0, len(sample))
		for _, k := range sample {
			d, err := t.lookupNS(k)
			if err != nil {
				return 0, err
			}
			durs = append(durs, d)
		}
		return p99(durs), nil
	}
	if fp.BaseP99NS, err = measure(); err != nil {
		return fp, err
	}

	// The storm: every update lands on the same key, growing its version
	// chain through partition after partition (merges and GC absorb it).
	storms := 1200 * cfg.Scale
	for i := 0; i < storms; i++ {
		if err := t.put(hot, randVal(rng, 64+rng.Intn(64))); err != nil {
			return fp, err
		}
		fp.Committed++
		fp.HotUpdates++
	}

	if fp.StormP99NS, err = measure(); err != nil {
		return fp, err
	}
	if _, err := t.lookupNS(hot); err != nil {
		return fp, err
	}
	fp.StateHash = hashState(t.expect)
	fp.captureEngine(t.eng)
	return fp, nil
}

// ---- scenario: sawtooth bulk-load/delete cycles ----

// runSawtooth runs load/delete cycles on a capacity-bounded engine. Each
// crest bulk-loads a keyspace of fat rows past the soft watermark; each
// trough deletes everything. The governor's reclamation (WAL truncation,
// GC, vacuum) must actually return the space: the final live bytes must
// sit well under the peak instead of ratcheting up cycle over cycle.
func runSawtooth(cfg Config) (Fingerprint, error) {
	fp := Fingerprint{Kind: Sawtooth}
	t, err := newTable(cfg, db.Config{
		BufferPages:          1024,
		PartitionBufferBytes: 96 << 10,
		DeviceCapacityBytes:  24 << 20,
		SpaceSoftBytes:       2 << 20,
		SpaceHardBytes:       20 << 20,
	})
	if err != nil {
		return fp, err
	}
	defer t.eng.Close()
	rng := util.NewRand(cfg.Seed)

	const cycles = 3
	keysPerCycle := 600 * cfg.Scale
	for c := 0; c < cycles; c++ {
		for i := 0; i < keysPerCycle; i++ {
			err := t.put(fmt.Sprintf("c%d-k%04d", c, i), randVal(rng, 800+rng.Intn(400)))
			if err != nil {
				if isSpacePressure(err) {
					// The governor shed the write; the trough below will
					// hand it the space back.
					fp.TypedErrs++
					continue
				}
				return fp, err
			}
			fp.Committed++
		}
		if live := t.eng.SpaceInfo().Live; live > fp.PeakLive {
			fp.PeakLive = live
		}
		// The trough: delete everything this crest loaded.
		keys := make([]string, 0, len(t.expect))
		for k := range t.expect {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := t.del(k); err != nil {
				return fp, err
			}
			fp.Committed++
		}
		// Each trough ends in an explicit maintenance window — the
		// governor's own reclamation pass (WAL truncation, GC, merges,
		// vacuum), run synchronously. The governor's automatic passes are
		// edge-triggered on soft-watermark crossings and so fire during
		// the crests; the window is the scheduled off-peak complement.
		if err := t.eng.ReclaimNow(); err != nil {
			return fp, fmt.Errorf("hostile: sawtooth trough reclaim: %w", err)
		}
	}
	if err := t.checkState("after-final-trough"); err != nil {
		return fp, err
	}
	// A handful of sentinel writes prove the engine still takes load in
	// its settled footprint.
	for i := 0; i < 5; i++ {
		if err := t.put(fmt.Sprintf("sentinel%d", i), "s"); err != nil {
			return fp, err
		}
		fp.Committed++
	}
	fp.FinalLive = t.eng.SpaceInfo().Live
	if fp.PeakLive <= t.eng.SpaceInfo().Soft {
		return fp, fmt.Errorf("hostile: sawtooth crests never crossed the soft watermark (peak=%d soft=%d)",
			fp.PeakLive, t.eng.SpaceInfo().Soft)
	}
	if fp.FinalLive >= fp.PeakLive {
		return fp, fmt.Errorf("hostile: sawtooth ratcheted: final live %d >= peak %d", fp.FinalLive, fp.PeakLive)
	}
	fp.StateHash = hashState(t.expect)
	fp.captureEngine(t.eng)
	return fp, nil
}

// ---- scenario: long-running analytical snapshot pinning the GC horizon ----

// runSnapshotPin opens an analytical read snapshot, then churns updates on
// a small keyspace. The pinned horizon makes every reclamation pass
// impotent (versions stay reachable, the WAL checkpoint stays busy), so
// the engine must degrade to read-only at the hard watermark; degraded
// reads must stay correct at both the pinned and fresh snapshots; and
// releasing the snapshot must heal the engine through the abort-boundary
// reclamation retry.
func runSnapshotPin(cfg Config) (Fingerprint, error) {
	fp := Fingerprint{Kind: SnapshotPin}
	t, err := newTable(cfg, db.Config{
		BufferPages:          1024,
		PartitionBufferBytes: 1 << 22,
		DeviceCapacityBytes:  16 << 20,
		SpaceSoftBytes:       3 << 20,
		SpaceHardBytes:       4 << 20,
	})
	if err != nil {
		return fp, err
	}
	defer t.eng.Close()
	rng := util.NewRand(cfg.Seed)

	const keys = 48
	for i := 0; i < keys; i++ {
		if err := t.put(fmt.Sprintf("k%04d", i), fmt.Sprintf("seed%d", i)); err != nil {
			return fp, err
		}
		fp.Committed++
	}
	// The analytical snapshot: sees exactly the seed state, forever.
	pinned := t.eng.Begin()
	pinnedOpen := true
	defer func() {
		if pinnedOpen {
			t.eng.Abort(pinned)
		}
	}()

	maxTx := 30000 * cfg.Scale
	for i := 0; i < maxTx && !t.eng.ReadOnly(); i++ {
		key := fmt.Sprintf("k%04d", i%keys)
		if err := t.put(key, randVal(rng, 200+rng.Intn(120))); err != nil {
			if isSpacePressure(err) {
				fp.TypedErrs++
				break
			}
			return fp, err
		}
		fp.Committed++
		fp.PinTxs++
	}
	if !t.eng.ReadOnly() {
		return fp, fmt.Errorf("hostile: snapshot-pin: engine never degraded after %d churn txs (live=%d)",
			fp.PinTxs, t.eng.SpaceInfo().Live)
	}
	fp.PinnedLive = t.eng.SpaceInfo().Live

	// Degraded: writes fail fast with the typed error…
	tx := t.eng.Begin()
	if _, _, err := t.tbl.Insert(tx, row("nope", "x")); !errors.Is(err, db.ErrReadOnly) {
		t.eng.Abort(tx)
		return fp, fmt.Errorf("hostile: snapshot-pin: degraded insert returned %v, want db.ErrReadOnly", err)
	}
	t.eng.Abort(tx)
	fp.TypedErrs++
	// …the pinned snapshot still sees exactly the seed state…
	for i := 0; i < keys; i += 7 {
		key := fmt.Sprintf("k%04d", i)
		cur, err := t.tbl.LookupOne(pinned, t.ix, []byte(key), true)
		if err != nil {
			return fp, fmt.Errorf("hostile: snapshot-pin: pinned read: %w", err)
		}
		want := string(row(key, fmt.Sprintf("seed%d", i)))
		if cur == nil || string(cur.Row) != want {
			return fp, fmt.Errorf("hostile: snapshot-pin: pinned snapshot drifted on %q", key)
		}
	}
	// …and a fresh snapshot sees the newest committed state.
	if err := t.checkState("degraded"); err != nil {
		return fp, err
	}

	// Release the snapshot: the abort boundary retries reclamation with
	// the horizon unpinned, and the engine must re-open for writes.
	pinnedOpen = false
	t.eng.Abort(pinned)
	// The governor retries reclamation at every commit/abort boundary
	// while degraded; a few no-op boundaries bound the healing time.
	for i := 0; i < 5 && t.eng.ReadOnly(); i++ {
		t.eng.Abort(t.eng.Begin())
	}
	if t.eng.ReadOnly() {
		return fp, fmt.Errorf("hostile: snapshot-pin: engine still read-only after snapshot release: %+v",
			t.eng.SpaceInfo())
	}
	fp.ReleasedLive = t.eng.SpaceInfo().Live
	for i := 0; i < 5; i++ {
		if err := t.put(fmt.Sprintf("r%04d", i), fmt.Sprintf("resume%d", i)); err != nil {
			return fp, err
		}
		fp.Committed++
	}
	if err := t.checkState("resumed"); err != nil {
		return fp, err
	}
	fp.StateHash = hashState(t.expect)
	fp.captureEngine(t.eng)
	return fp, nil
}

// ---- scenario: tenant-skewed mix through the shard router ----

// tenantWeights derives a skewed tenant distribution from the seed: the
// fixed weight profile (60/25/10/5 of 100) assigned to a seed-dependent
// permutation of the four tenants, so which tenant dominates varies by
// seed but the skew shape does not.
func tenantWeights(rng *util.Rand) [4]int {
	profile := [4]int{60, 25, 10, 5}
	perm := [4]int{0, 1, 2, 3}
	for i := 3; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	var w [4]int
	for i, p := range perm {
		w[p] = profile[i]
	}
	return w
}

// runTenantSkew drives a skewed four-tenant upsert mix through a
// two-shard router whose engines sit on a tight space budget, in BURSTS
// separated by off-peak maintenance windows (each tenant expires its
// oldest keys, then every shard runs its reclamation pass). The admission
// model mirrors the TCP front-end's policy deterministically: an op
// arriving while any shard is past its soft watermark is QUEUED; a queued
// op waits bounded "ticks" — each tick gives the overloaded shards a
// reclamation pass, mirroring the governor's urgent lane — and is
// REJECTED (load shed) if the overload outlasts the queue. Each burst
// runs under a tenant's pinned analytical snapshot, so mid-burst
// reclamation is structurally impotent (the checkpoint skips while the
// snapshot lives) and pressure genuinely accumulates until the window.
// The invariants: the soft-watermark gate must engage under the bursts,
// commits must resume after the first load-shed (a maintenance window
// genuinely reopened the gate), and minority tenants must not starve.
// skewTrace, when set (tests only), receives per-burst crest and
// per-window floor telemetry from runTenantSkew — the calibration seam
// for choosing the soft watermark inside the burst/floor envelope.
var skewTrace func(string, ...any)

func runTenantSkew(cfg Config) (Fingerprint, error) {
	fp := Fingerprint{Kind: TenantSkew}
	r, err := shard.New(shard.Config{
		Shards: 2,
		Engine: db.Config{
			BufferPages:          512,
			PartitionBufferBytes: 96 << 10,
			Device:               cfg.Device,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
			DeviceCapacityBytes:  12 << 20,
			// The soft watermark sits inside the envelope the bursts
			// oscillate through: below the crests the analytical pin
			// forces (the WAL cannot checkpoint while the snapshot is
			// live, so ~1.8 MiB accumulates) and above most maintenance
			// floors, so the gate engages under burst pressure and
			// commits resume once a window reclaims below it.
			// Deliberately NOT a multiple of the 256 KiB extent size:
			// live bytes are extent-quantized, and a watermark on the
			// grid can be hit exactly by a settled floor, pinning
			// `live >= soft` true forever.
			SpaceSoftBytes: 1700 << 10,
			SpaceHardBytes: 10 << 20,
		},
		// A bounded partition count makes merges (and with them garbage
		// collection of overwritten versions) actually due when the
		// governor's reclamation pass asks for them.
		KVOptions: db.MVPBTKVOptions{BloomBits: 10, MaxPartitions: 4},
	})
	if err != nil {
		return fp, err
	}
	defer r.Close()
	rng := util.NewRand(cfg.Seed)
	weights := tenantWeights(rng)
	expect := map[string]string{}

	pickTenant := func() int {
		roll := rng.Intn(100)
		for t, w := range weights {
			if roll < w {
				return t
			}
			roll -= w
		}
		return 3
	}

	// reclaimOverloaded gives every shard past its soft watermark one
	// reclamation pass — the deterministic stand-in for the governor's
	// urgent lane running concurrently in a threaded deployment.
	reclaimOverloaded := func() error {
		for s := 0; s < r.NumShards(); s++ {
			eng := r.Shard(s).Engine
			if sp := eng.SpaceInfo(); sp.Soft > 0 && sp.Live >= sp.Soft {
				if err := eng.ReclaimNow(); err != nil {
					return fmt.Errorf("hostile: tenant-skew: reclaim: %w", err)
				}
			}
		}
		return nil
	}

	const bursts = 5
	const queueTicks = 3
	opsPerBurst := 600 * cfg.Scale
	for b := 0; b < bursts; b++ {
		// Each burst runs under a tenant's analytical snapshot: a read
		// transaction pinned on every shard for the burst's duration. The
		// pin is what makes the burst hostile — while it lives, the WAL
		// checkpoint skips (transactions active) and the GC horizon is
		// stuck, so the governor's urgent pass cannot reclaim mid-burst
		// and pressure genuinely accumulates until the off-peak window.
		pins := make([]*txn.Tx, r.NumShards())
		for s := range pins {
			pins[s] = r.Shard(s).Engine.Begin()
		}
		unpin := func() {
			for s, tx := range pins {
				if tx != nil {
					r.Shard(s).Engine.Abort(tx)
					pins[s] = nil
				}
			}
		}
		var burstCommits int64
		for i := 0; i < opsPerBurst; i++ {
			ten := pickTenant()
			key := fmt.Sprintf("t%d-k%04d", ten, rng.Intn(192))
			val := randVal(rng, 700+rng.Intn(300))
			if r.PastSoftWatermark() {
				fp.Queued++
				for tick := 0; tick < queueTicks && r.PastSoftWatermark(); tick++ {
					// The queued session re-checks the watermark after
					// each tick, like the server's polling admit loop.
					if err := reclaimOverloaded(); err != nil {
						return fp, err
					}
				}
				if r.PastSoftWatermark() {
					fp.Rejected++
					continue
				}
			}
			if err := r.Put([]byte(key), []byte(val)); err != nil {
				if isSpacePressure(err) {
					fp.TypedErrs++
					continue
				}
				return fp, fmt.Errorf("hostile: tenant-skew: put: %w", err)
			}
			fp.Committed++
			fp.Tenants[ten]++
			burstCommits++
			if fp.Rejected > 0 {
				// Service resumed after load shedding: the proof the
				// admission gate is an oscillator, not a one-way door.
				fp.ResumedCommits++
			}
			expect[key] = val
		}
		// The analytical snapshot ends with the burst; only then can the
		// maintenance window's reclamation actually make progress.
		unpin()
		if skewTrace != nil {
			skewTrace("burst %d: commits=%d queued=%d rejected=%d live=[%d %d]",
				b, burstCommits, fp.Queued, fp.Rejected,
				r.Shard(0).Engine.SpaceInfo().Live, r.Shard(1).Engine.SpaceInfo().Live)
		}
		if b == bursts-1 {
			break
		}
		// Off-peak maintenance window: every tenant expires its oldest
		// keys (a TTL purge), then every shard runs a reclamation pass —
		// tombstone-merging GC, heap vacuum, WAL truncation — so the next
		// burst starts from a reclaimed footprint.
		keys := make([]string, 0, len(expect))
		for k := range expect {
			keys = append(keys, k)
		}
		sort.Strings(keys) // per-tenant prefixes: sorted = grouped, oldest first
		for ten := 0; ten < 4; ten++ {
			prefix := fmt.Sprintf("t%d-", ten)
			var mine []string
			for _, k := range keys {
				if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
					mine = append(mine, k)
				}
			}
			for i := 0; i < len(mine)*3/4; i++ {
				if err := r.Delete([]byte(mine[i])); err != nil {
					return fp, fmt.Errorf("hostile: tenant-skew: purge %q: %w", mine[i], err)
				}
				delete(expect, mine[i])
			}
		}
		// Two passes per shard: the first checkpoint snapshots the dirty
		// state (briefly growing the log) before truncating, so a second
		// pass is what actually settles the footprint at its floor.
		for pass := 0; pass < 2; pass++ {
			for s := 0; s < r.NumShards(); s++ {
				if err := r.Shard(s).Engine.ReclaimNow(); err != nil {
					return fp, fmt.Errorf("hostile: tenant-skew: window reclaim: %w", err)
				}
			}
		}
		if skewTrace != nil {
			skewTrace("window %d: floor=[%d %d] wal=[%d %d]",
				b, r.Shard(0).Engine.SpaceInfo().Live, r.Shard(1).Engine.SpaceInfo().Live,
				r.Shard(0).Engine.WALDeviceBytes(), r.Shard(1).Engine.WALDeviceBytes())
		}
	}

	// The soft-watermark gate must have engaged under the bursts, commits
	// must have resumed after the first load-shed (a maintenance window
	// genuinely reopened the gate), and no tenant may have starved.
	if fp.Queued == 0 {
		return fp, fmt.Errorf("hostile: tenant-skew: admission gate never engaged (committed=%d)", fp.Committed)
	}
	if fp.Rejected > 0 && fp.ResumedCommits == 0 {
		return fp, fmt.Errorf("hostile: tenant-skew: no commit after load shedding began (%d queued, %d rejected)",
			fp.Queued, fp.Rejected)
	}
	for t, n := range fp.Tenants {
		if n == 0 {
			return fp, fmt.Errorf("hostile: tenant-skew: tenant %d starved (weights %v)", t, weights)
		}
	}

	// Hold a sample of the oracle to the router's reads.
	keys := make([]string, 0, len(expect))
	for k := range expect {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i := 0; i < len(keys); i += 17 {
		v, ok, err := r.Get([]byte(keys[i]))
		if err != nil {
			return fp, fmt.Errorf("hostile: tenant-skew: get %q: %w", keys[i], err)
		}
		if !ok || string(v) != expect[keys[i]] {
			return fp, fmt.Errorf("hostile: tenant-skew: key %q: got %q ok=%v, want %q",
				keys[i], v, ok, expect[keys[i]])
		}
	}
	fp.StateHash = hashState(expect)
	for i := 0; i < r.NumShards(); i++ {
		fp.captureEngine(r.Shard(i).Engine)
	}
	return fp, nil
}
