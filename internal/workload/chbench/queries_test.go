package chbench

import (
	"testing"

	"mvpbt/internal/db"
)

func TestExtendedQueriesConsistentAcrossEngines(t *testing.T) {
	mv := build(t, db.IdxMVPBT)
	bt := build(t, db.IdxBTree)
	if err := mv.Run(250); err != nil {
		t.Fatal(err)
	}
	if err := bt.Run(250); err != nil {
		t.Fatal(err)
	}
	type q func(b *Bench) (QueryResult, error)
	queries := map[string]q{
		"q4": func(b *Bench) (QueryResult, error) {
			tx := b.Engine().Begin()
			defer b.Engine().Commit(tx)
			return b.Q4OrderPriorityCount(tx)
		},
		"q12": func(b *Bench) (QueryResult, error) {
			tx := b.Engine().Begin()
			defer b.Engine().Commit(tx)
			return b.Q12CarrierDistribution(tx)
		},
		"q18": func(b *Bench) (QueryResult, error) {
			tx := b.Engine().Begin()
			defer b.Engine().Commit(tx)
			return b.Q18LargeOrders(tx, 2)
		},
		"q6band": func(b *Bench) (QueryResult, error) {
			tx := b.Engine().Begin()
			defer b.Engine().Commit(tx)
			return b.Q6BandRevenue(tx, 1, 1)
		},
	}
	for name, run := range queries {
		rm, err := run(mv)
		if err != nil {
			t.Fatalf("%s on mvpbt: %v", name, err)
		}
		rb, err := run(bt)
		if err != nil {
			t.Fatalf("%s on btree: %v", name, err)
		}
		if rm != rb {
			t.Fatalf("%s diverged: mvpbt=%+v btree=%+v", name, rm, rb)
		}
		if rm.Rows == 0 {
			t.Fatalf("%s returned no rows after 250 transactions", name)
		}
	}
}

func TestFullQuerySet(t *testing.T) {
	b := build(t, db.IdxMVPBT)
	if err := b.Run(150); err != nil {
		t.Fatal(err)
	}
	tx := b.Engine().Begin()
	defer b.Engine().Commit(tx)
	n, err := b.FullQuerySet(tx)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("query sweep saw no rows")
	}
}

func TestSecondaryIndexQueryUnderChurn(t *testing.T) {
	// Q18 runs over the orders.cust secondary index while OLTP keeps
	// committing — the snapshot's answer must not change.
	b := build(t, db.IdxMVPBT)
	if err := b.Run(200); err != nil {
		t.Fatal(err)
	}
	snap := b.Engine().Begin()
	before, err := b.Q18LargeOrders(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(150); err != nil {
		t.Fatal(err)
	}
	after, err := b.Q18LargeOrders(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Engine().Commit(snap)
	if before != after {
		t.Fatalf("secondary-index snapshot drifted: %+v -> %+v", before, after)
	}
}
