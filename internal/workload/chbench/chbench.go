// Package chbench implements the CH-benchmark mixed workload of the
// paper's Figures 12a/12b: the TPC-C transaction mix interleaved with
// long-running analytical queries executed under old snapshots. The
// analytical side is a representative subset of the CH query set —
// full-relation aggregations over order_line (Q1/Q6 style), a stock scan
// and a customer-balance aggregate — all expressed as index scans, which
// is exactly where the visibility-check strategy dominates cost.
package chbench

import (
	"mvpbt/internal/db"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
	"mvpbt/internal/workload/tpcc"
)

// Bench wraps a TPC-C database with analytical queries.
type Bench struct {
	*tpcc.Bench
}

// New builds the CH-benchmark over a TPC-C configuration.
func New(eng *db.Engine, cfg tpcc.Config) (*Bench, error) {
	t, err := tpcc.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	return &Bench{Bench: t}, nil
}

// QueryResult carries an analytical query's aggregate outputs (used to
// verify consistency across engines, and to defeat dead-code elimination).
type QueryResult struct {
	Rows   int
	Sum    int64
	Groups int
}

// fullRange spans every (w, d, ...) composite key.
func fullRange() (lo, hi []byte) {
	return util.EncodeUint32(nil, 0), util.EncodeUint32(nil, ^uint32(0))
}

// Q1OrderLineAggregate is the CH Q1-style query: scan ALL order lines,
// grouping by line number. The group key (ol_number) is part of the index
// key, so the query is index-only-able: MV-PBT answers it without any
// base-table access, while version-oblivious indexes must fetch every
// candidate version for the visibility check — the paper's Figure 2 cost
// model at query scale.
func (b *Bench) Q1OrderLineAggregate(tx *txn.Tx) (QueryResult, error) {
	lo, hi := fullRange()
	var res QueryResult
	groups := map[uint32]int64{}
	tbl := b.OrderLineTable()
	err := tbl.Scan(tx, tbl.Indexes()[0], lo, hi, false, func(rr db.RowRef) bool {
		// ol_number is the last 4 bytes of the (w,d,o,number) key.
		num := util.DecodeUint32(rr.Key[12:16])
		groups[num]++
		res.Rows++
		return true
	})
	res.Groups = len(groups)
	return res, err
}

// Q6RevenueFilter is the CH Q6-style query shape: count order lines whose
// line number falls in a band — index-only, like Q1.
func (b *Bench) Q6RevenueFilter(tx *txn.Tx) (QueryResult, error) {
	lo, hi := fullRange()
	var res QueryResult
	tbl := b.OrderLineTable()
	err := tbl.Scan(tx, tbl.Indexes()[0], lo, hi, false, func(rr db.RowRef) bool {
		if num := util.DecodeUint32(rr.Key[12:16]); num >= 3 && num <= 7 {
			res.Rows++
		}
		return true
	})
	return res, err
}

// CountOrderLines is the paper's Figure 2 COUNT(*) shape: over MV-PBT it
// runs index-only, never touching the base table.
func (b *Bench) CountOrderLines(tx *txn.Tx) (int, error) {
	lo, hi := fullRange()
	tbl := b.OrderLineTable()
	return tbl.Count(tx, tbl.Indexes()[0], lo, hi)
}

// StockBelowThreshold scans all stock rows counting low inventory.
func (b *Bench) StockBelowThreshold(tx *txn.Tx, threshold uint32) (QueryResult, error) {
	lo, hi := fullRange()
	var res QueryResult
	tbl := b.StockTable()
	err := tbl.Scan(tx, tbl.Indexes()[0], lo, hi, true, func(rr db.RowRef) bool {
		if tpcc.DecodeStock(rr.Row).Quantity < threshold {
			res.Rows++
		}
		return true
	})
	return res, err
}

// CustomerBalanceAggregate sums all customer balances (touching the
// update-hot customer table).
func (b *Bench) CustomerBalanceAggregate(tx *txn.Tx) (QueryResult, error) {
	lo, hi := fullRange()
	var res QueryResult
	tbl := b.CustomerTable()
	err := tbl.Scan(tx, tbl.Indexes()[0], lo, hi, true, func(rr db.RowRef) bool {
		res.Sum += tpcc.DecodeCustomer(rr.Row).Balance
		res.Rows++
		return true
	})
	return res, err
}

// AnalyticalQuery runs the i-th query of the rotating CH set.
func (b *Bench) AnalyticalQuery(tx *txn.Tx, i int) (QueryResult, error) {
	switch i % 4 {
	case 0:
		return b.Q1OrderLineAggregate(tx)
	case 1:
		return b.Q6RevenueFilter(tx)
	case 2:
		return b.StockBelowThreshold(tx, 15)
	default:
		return b.CustomerBalanceAggregate(tx)
	}
}

// MixedRun interleaves the paper's pg_sleep construction (§5, Figure
// 12b): take a snapshot, run `sleepTxns` OLTP transactions while it stays
// open (building transient versions), then execute one analytical query
// under the old snapshot. It returns the number of OLTP transactions and
// analytical queries completed.
func (b *Bench) MixedRun(rounds, sleepTxns int) (oltp int, olap int, err error) {
	for round := 0; round < rounds; round++ {
		snap := b.Engine().Begin()
		for i := 0; i < sleepTxns; i++ {
			if err := b.Tx(); err != nil {
				b.Engine().Abort(snap)
				return oltp, olap, err
			}
			oltp++
		}
		if _, err := b.AnalyticalQuery(snap, round); err != nil {
			b.Engine().Abort(snap)
			return oltp, olap, err
		}
		olap++
		b.Engine().Commit(snap)
	}
	return oltp, olap, nil
}
