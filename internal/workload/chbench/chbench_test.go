package chbench

import (
	"testing"

	"mvpbt/internal/db"
	"mvpbt/internal/workload/tpcc"
)

func build(t *testing.T, idx db.IndexKind) *Bench {
	t.Helper()
	eng := db.NewEngine(db.Config{BufferPages: 4096, PartitionBufferBytes: 1 << 22})
	b, err := New(eng, tpcc.Config{
		Warehouses: 1, CustomersPerDistrict: 20, Items: 80,
		Heap: db.HeapSIAS, Index: idx, BloomBits: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMixedRunCompletes(t *testing.T) {
	b := build(t, db.IdxMVPBT)
	oltp, olap, err := b.MixedRun(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if oltp != 160 || olap != 4 {
		t.Fatalf("oltp=%d olap=%d", oltp, olap)
	}
}

func TestQueriesConsistentAcrossEngines(t *testing.T) {
	// Same seeded history on MV-PBT and B-Tree engines must produce
	// identical analytical answers.
	mv := build(t, db.IdxMVPBT)
	bt := build(t, db.IdxBTree)
	if err := mv.Run(200); err != nil {
		t.Fatal(err)
	}
	if err := bt.Run(200); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		txm := mv.Engine().Begin()
		rm, err := mv.AnalyticalQuery(txm, q)
		if err != nil {
			t.Fatal(err)
		}
		mv.Engine().Commit(txm)
		txb := bt.Engine().Begin()
		rb, err := bt.AnalyticalQuery(txb, q)
		if err != nil {
			t.Fatal(err)
		}
		bt.Engine().Commit(txb)
		if rm != rb {
			t.Fatalf("query %d diverged: mvpbt=%+v btree=%+v", q, rm, rb)
		}
	}
}

func TestSnapshotStableDuringOLTP(t *testing.T) {
	// The HTAP core: an analytical query under an old snapshot must see
	// the database as of snapshot time even as hundreds of transactions
	// commit (transient versions accumulate).
	b := build(t, db.IdxMVPBT)
	snap := b.Engine().Begin()
	before, err := b.Q1OrderLineAggregate(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(200); err != nil {
		t.Fatal(err)
	}
	after, err := b.Q1OrderLineAggregate(snap)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("snapshot drifted: %+v -> %+v", before, after)
	}
	b.Engine().Commit(snap)
	fresh := b.Engine().Begin()
	now, _ := b.Q1OrderLineAggregate(fresh)
	b.Engine().Commit(fresh)
	if now.Rows <= before.Rows {
		t.Fatalf("fresh snapshot should see new order lines: %d <= %d", now.Rows, before.Rows)
	}
}

func TestCountOrderLinesMatchesAggregate(t *testing.T) {
	b := build(t, db.IdxMVPBT)
	if err := b.Run(150); err != nil {
		t.Fatal(err)
	}
	tx := b.Engine().Begin()
	defer b.Engine().Commit(tx)
	n, err := b.CountOrderLines(tx)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := b.Q1OrderLineAggregate(tx)
	if err != nil {
		t.Fatal(err)
	}
	if n != agg.Rows {
		t.Fatalf("count=%d aggregate rows=%d", n, agg.Rows)
	}
	if n == 0 {
		t.Fatal("no order lines after 150 transactions")
	}
}
