package chbench

import (
	"mvpbt/internal/db"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
	"mvpbt/internal/workload/tpcc"
)

// Additional CH-style analytical queries, extending the rotating set of
// chbench.go towards the benchmark's full query list. Each is expressed
// as an index scan so the visibility-check strategy (index-only vs
// base-table) is the dominant cost, as in the paper.

// Q4OrderPriorityCount is the CH Q4 shape: count orders grouped by
// whether they have been delivered (carrier assigned), over the whole
// order table.
func (b *Bench) Q4OrderPriorityCount(tx *txn.Tx) (QueryResult, error) {
	lo, hi := fullRange()
	var res QueryResult
	delivered := 0
	tbl := b.OrdersTable()
	err := tbl.Scan(tx, tbl.Indexes()[0], lo, hi, true, func(rr db.RowRef) bool {
		if tpcc.DecodeOrder(rr.Row).Carrier != 0 {
			delivered++
		}
		res.Rows++
		return true
	})
	res.Sum = int64(delivered)
	res.Groups = 2
	return res, err
}

// Q12CarrierDistribution is the CH Q12 shape: orders per carrier.
func (b *Bench) Q12CarrierDistribution(tx *txn.Tx) (QueryResult, error) {
	lo, hi := fullRange()
	var res QueryResult
	groups := map[uint32]int{}
	tbl := b.OrdersTable()
	err := tbl.Scan(tx, tbl.Indexes()[0], lo, hi, true, func(rr db.RowRef) bool {
		groups[tpcc.DecodeOrder(rr.Row).Carrier]++
		res.Rows++
		return true
	})
	res.Groups = len(groups)
	return res, err
}

// Q18LargeOrders is the CH Q18 shape: per-customer order counts through
// the SECONDARY (w,d,c,o) index — exercising secondary-index scans under
// churn, where version-oblivious indexes accumulate the most garbage.
func (b *Bench) Q18LargeOrders(tx *txn.Tx, minOrders int) (QueryResult, error) {
	lo, hi := fullRange()
	var res QueryResult
	tbl := b.OrdersTable()
	perCust := map[string]int{}
	err := tbl.Scan(tx, tbl.Index("cust"), lo, hi, false, func(rr db.RowRef) bool {
		// Customer identity is the first 12 key bytes (w, d, c).
		perCust[string(rr.Key[:12])]++
		res.Rows++
		return true
	})
	if err != nil {
		return res, err
	}
	for _, n := range perCust {
		if n >= minOrders {
			res.Groups++
		}
	}
	return res, nil
}

// Q6BandRevenue is a parameterized Q6 variant scanning one district's
// order lines only — a selective range where partition range-keys and
// prefix bloom filters can skip partitions.
func (b *Bench) Q6BandRevenue(tx *txn.Tx, w, d uint32) (QueryResult, error) {
	lo := util.EncodeUint32(util.EncodeUint32(nil, w), d)
	hi := util.EncodeUint32(util.EncodeUint32(nil, w), d+1)
	var res QueryResult
	tbl := b.OrderLineTable()
	err := tbl.Scan(tx, tbl.Indexes()[0], lo, hi, false, func(rr db.RowRef) bool {
		res.Rows++
		return true
	})
	return res, err
}

// FullQuerySet runs every implemented analytical query once under tx and
// returns the aggregated row count (a coarse "all 22 queries" sweep).
func (b *Bench) FullQuerySet(tx *txn.Tx) (int, error) {
	total := 0
	for i := 0; i < 4; i++ {
		r, err := b.AnalyticalQuery(tx, i)
		if err != nil {
			return total, err
		}
		total += r.Rows
	}
	if r, err := b.Q4OrderPriorityCount(tx); err != nil {
		return total, err
	} else {
		total += r.Rows
	}
	if r, err := b.Q12CarrierDistribution(tx); err != nil {
		return total, err
	} else {
		total += r.Rows
	}
	if r, err := b.Q18LargeOrders(tx, 2); err != nil {
		return total, err
	} else {
		total += r.Rows
	}
	if r, err := b.Q6BandRevenue(tx, 1, 1); err != nil {
		return total, err
	} else {
		total += r.Rows
	}
	return total, nil
}
