package ycsb

import (
	"testing"

	"mvpbt/internal/db"
	"mvpbt/internal/index/lsm"
)

func kvs(t *testing.T) map[string]db.KV {
	t.Helper()
	out := map[string]db.KV{}
	eb := db.NewEngine(db.Config{BufferPages: 2048})
	bt, err := db.NewBTreeKV(eb, "bt")
	if err != nil {
		t.Fatal(err)
	}
	out["btree"] = bt
	el := db.NewEngine(db.Config{BufferPages: 2048})
	out["lsm"] = db.NewLSMKV(el, "lsm", lsm.Options{MemtableBytes: 64 << 10})
	em := db.NewEngine(db.Config{BufferPages: 2048, PartitionBufferBytes: 256 << 10})
	mv, err := db.NewMVPBTKV(em, "mv", db.MVPBTKVOptions{BloomBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	out["mvpbt"] = mv
	return out
}

func TestLoadThenAllWorkloads(t *testing.T) {
	for name, kv := range kvs(t) {
		t.Run(name, func(t *testing.T) {
			y := NewRunner(kv, Config{Records: 500, ValueLen: 64, Seed: 3})
			if err := y.Load(); err != nil {
				t.Fatal(err)
			}
			for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadD, WorkloadE} {
				if err := y.Run(w, 300); err != nil {
					t.Fatalf("workload %c: %v", w, err)
				}
			}
			if y.Reads == 0 || y.Updates == 0 || y.Inserts == 0 || y.Scans == 0 {
				t.Fatalf("op mix incomplete: %+v", y)
			}
		})
	}
}

func TestWorkloadMixRatios(t *testing.T) {
	kv := kvs(t)["lsm"]
	y := NewRunner(kv, Config{Records: 200, ValueLen: 32, Seed: 4})
	if err := y.Load(); err != nil {
		t.Fatal(err)
	}
	if err := y.Run(WorkloadB, 2000); err != nil {
		t.Fatal(err)
	}
	// B is 95/5 read/update.
	if y.Reads < 1800 || y.Updates > 200 {
		t.Fatalf("workload B ratio off: reads=%d updates=%d", y.Reads, y.Updates)
	}
}

func TestWorkloadDReadsRecentKeys(t *testing.T) {
	kv := kvs(t)["lsm"]
	y := NewRunner(kv, Config{Records: 1000, ValueLen: 16, Seed: 5})
	if err := y.Load(); err != nil {
		t.Fatal(err)
	}
	if err := y.Run(WorkloadD, 1000); err != nil {
		t.Fatal(err)
	}
	if y.Inserts == 0 {
		t.Fatal("workload D inserted nothing")
	}
}

func TestKeyStableAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := uint64(0); i < 5000; i++ {
		k := string(Key(i))
		if seen[k] {
			t.Fatalf("key collision at %d", i)
		}
		seen[k] = true
	}
	if string(Key(42)) != string(Key(42)) {
		t.Fatal("keys not deterministic")
	}
}

func TestRunParallel(t *testing.T) {
	for name, kv := range kvs(t) {
		t.Run(name, func(t *testing.T) {
			y := NewRunner(kv, Config{Records: 400, ValueLen: 32, Seed: 12})
			if err := y.Load(); err != nil {
				t.Fatal(err)
			}
			for _, w := range []Workload{WorkloadA, WorkloadD, WorkloadE} {
				if err := y.RunParallel(w, 1200, 4); err != nil {
					t.Fatalf("workload %c: %v", w, err)
				}
			}
			if y.Reads == 0 || y.Updates == 0 || y.Inserts == 0 || y.Scans == 0 {
				t.Fatalf("parallel op mix incomplete: %+v", y)
			}
			// The store survived concurrent traffic: full scan works and the
			// original keys are still present.
			n := 0
			if err := kv.Scan([]byte("user"), 1<<30, func(k, v []byte) bool { n++; return true }); err != nil {
				t.Fatal(err)
			}
			if n < 400 {
				t.Fatalf("dataset shrank under parallel load: %d", n)
			}
		})
	}
}

func TestRunParallelSingleWorkerFallsBack(t *testing.T) {
	kv := kvs(t)["lsm"]
	y := NewRunner(kv, Config{Records: 100, ValueLen: 16, Seed: 2})
	if err := y.Load(); err != nil {
		t.Fatal(err)
	}
	if err := y.RunParallel(WorkloadB, 200, 1); err != nil {
		t.Fatal(err)
	}
	if y.Reads+y.Updates != 200 {
		t.Fatalf("ops=%d want 200", y.Reads+y.Updates)
	}
}
