// Package ycsb implements the Yahoo! Cloud Serving Benchmark core
// workloads the paper uses (§2 motivation experiment and §5 Figure 15):
// A (50/50 read/update, zipfian), B (95/5 read/update, zipfian), D (95/5
// read/insert, latest) and E (95/5 scan/insert, zipfian start, uniform
// scan length).
package ycsb

import (
	"fmt"
	"sync"

	"mvpbt/internal/db"
	"mvpbt/internal/util"
)

// Workload identifies a YCSB core workload.
type Workload byte

// The core workloads used in the paper.
const (
	WorkloadA Workload = 'A'
	WorkloadB Workload = 'B'
	WorkloadD Workload = 'D'
	WorkloadE Workload = 'E'
)

// Config scales the benchmark.
type Config struct {
	// Records is the initial dataset size (the paper loads 100M keys ≈
	// 100 GB; scaled down here — see EXPERIMENTS.md).
	Records int
	// ValueLen is the value size in bytes (the paper's 10×100 B fields,
	// scaled).
	ValueLen int
	// MaxScanLen bounds workload E scans (YCSB default 100).
	MaxScanLen int
	Seed       uint64
}

func (c Config) withDefaults() Config {
	if c.Records <= 0 {
		c.Records = 10000
	}
	if c.ValueLen <= 0 {
		c.ValueLen = 256
	}
	if c.MaxScanLen <= 0 {
		c.MaxScanLen = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Runner drives one KV engine with YCSB operations.
type Runner struct {
	kv       db.KV
	cfg      Config
	r        *util.Rand
	zipf     *util.ScrambledZipfian
	latest   *util.Latest
	inserted uint64
	// insertStep spaces insert keys for parallel workers (0/1 = dense).
	insertStep uint64
	val        []byte
	// Ops counts executed operations by kind.
	Reads, Updates, Inserts, Scans int64
}

// NewRunner wraps kv; call Load before Run.
func NewRunner(kv db.KV, cfg Config) *Runner {
	cfg = cfg.withDefaults()
	r := util.NewRand(cfg.Seed)
	return &Runner{
		kv:   kv,
		cfg:  cfg,
		r:    r,
		val:  make([]byte, cfg.ValueLen),
		zipf: util.NewScrambledZipfian(util.NewRand(cfg.Seed+1), uint64(cfg.Records)),
	}
}

// Key renders the i-th key in insertion order (YCSB with ordered
// inserts: workload D's "latest" reads then target recently written key
// ranges, as the paper's caching discussion assumes). Request
// distributions still scramble ranks, so zipfian hot spots stay spread.
func Key(i uint64) []byte {
	return []byte(fmt.Sprintf("user%016d", i))
}

// Load inserts the initial dataset.
func (y *Runner) Load() error {
	for i := 0; i < y.cfg.Records; i++ {
		y.r.Letters(y.val)
		if err := y.kv.Put(Key(uint64(i)), y.val); err != nil {
			return err
		}
	}
	y.inserted = uint64(y.cfg.Records)
	y.latest = util.NewLatest(util.NewRand(y.cfg.Seed+2), y.inserted)
	return nil
}

// SetLoaded marks the dataset as externally loaded (shared dataset runs).
func (y *Runner) SetLoaded() {
	y.inserted = uint64(y.cfg.Records)
	y.latest = util.NewLatest(util.NewRand(y.cfg.Seed+2), y.inserted)
}

func (y *Runner) nextKeyZipf() []byte { return Key(y.zipf.Next()) }

func (y *Runner) nextKeyLatest() []byte { return Key(y.latest.Next()) }

func (y *Runner) read(key []byte) error {
	_, _, err := y.kv.Get(key)
	y.Reads++
	return err
}

func (y *Runner) update(key []byte) error {
	y.r.Letters(y.val)
	y.Updates++
	return y.kv.Put(key, y.val)
}

func (y *Runner) insert() error {
	k := Key(y.inserted)
	step := y.insertStep
	if step == 0 {
		step = 1
	}
	y.inserted += step
	if y.latest != nil {
		y.latest.SetMax(y.inserted)
	}
	y.r.Letters(y.val)
	y.Inserts++
	return y.kv.Put(k, y.val)
}

func (y *Runner) scan(start []byte) error {
	n := 1 + y.r.Intn(y.cfg.MaxScanLen)
	y.Scans++
	return y.kv.Scan(start, n, func(k, v []byte) bool { return true })
}

// Op executes one operation of workload w.
func (y *Runner) Op(w Workload) error {
	switch w {
	case WorkloadA:
		if y.r.Intn(2) == 0 {
			return y.read(y.nextKeyZipf())
		}
		return y.update(y.nextKeyZipf())
	case WorkloadB:
		if y.r.Intn(100) < 95 {
			return y.read(y.nextKeyZipf())
		}
		return y.update(y.nextKeyZipf())
	case WorkloadD:
		if y.r.Intn(100) < 95 {
			return y.read(y.nextKeyLatest())
		}
		return y.insert()
	case WorkloadE:
		if y.r.Intn(100) < 95 {
			return y.scan(y.nextKeyZipf())
		}
		return y.insert()
	default:
		return fmt.Errorf("ycsb: unknown workload %c", w)
	}
}

// Run executes n operations of workload w.
func (y *Runner) Run(w Workload, n int) error {
	for i := 0; i < n; i++ {
		if err := y.Op(w); err != nil {
			return err
		}
	}
	return nil
}

// RunParallel executes n total operations of workload w across `workers`
// goroutines, each with its own request-distribution state (the engines
// are safe for concurrent use). Inserts partition the key frontier so
// workers never collide on new keys. Per-kind operation counts accumulate
// into the parent runner.
func (y *Runner) RunParallel(w Workload, n, workers int) error {
	if workers <= 1 {
		return y.Run(w, n)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	subs := make([]*Runner, workers)
	for i := 0; i < workers; i++ {
		sub := &Runner{
			kv:   y.kv,
			cfg:  y.cfg,
			r:    util.NewRand(y.cfg.Seed + uint64(i)*7919),
			val:  make([]byte, y.cfg.ValueLen),
			zipf: util.NewScrambledZipfian(util.NewRand(y.cfg.Seed+uint64(i)*104729), uint64(y.cfg.Records)),
		}
		// Disjoint insert frontiers: worker i appends keys at
		// inserted + i, stepping by the worker count.
		sub.inserted = y.inserted + uint64(i)
		sub.insertStep = uint64(workers)
		sub.latest = util.NewLatest(util.NewRand(y.cfg.Seed+3+uint64(i)), maxU64(y.inserted, 1))
		subs[i] = sub
		wg.Add(1)
		go func(sub *Runner, ops int) {
			defer wg.Done()
			if err := sub.Run(w, ops); err != nil {
				errs <- err
			}
		}(sub, n/workers)
	}
	wg.Wait()
	close(errs)
	for _, sub := range subs {
		y.Reads += sub.Reads
		y.Updates += sub.Updates
		y.Inserts += sub.Inserts
		y.Scans += sub.Scans
		if sub.inserted > y.inserted {
			y.inserted = sub.inserted
		}
	}
	if y.latest != nil {
		y.latest.SetMax(y.inserted)
	}
	return <-errs
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
