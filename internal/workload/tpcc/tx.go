package tpcc

import (
	"mvpbt/internal/db"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

// pk returns a table's primary-key index (always the first definition).
func pk(t *db.Table) *db.Index { return t.Indexes()[0] }

func (b *Bench) lookup(tx *txn.Tx, t *db.Table, key []byte) (*db.RowRef, error) {
	rr, err := t.LookupOne(tx, pk(t), key, true)
	if err != nil {
		return nil, err
	}
	if rr == nil {
		return nil, errRowMissing
	}
	return rr, nil
}

func (b *Bench) randWH() uint32 { return uint32(1 + b.r.Intn(b.cfg.Warehouses)) }
func (b *Bench) randD() uint32  { return uint32(1 + b.r.Intn(b.cfg.Districts)) }

var clockTick int64

func (b *Bench) now() int64 {
	clockTick++
	return clockTick
}

// NewOrderTx is the TPC-C New-Order transaction: district sequence bump,
// order + new-order inserts, and 5–15 order lines each reading the item
// and updating the stock row. 1% roll back intentionally.
func (b *Bench) NewOrderTx() error {
	w, d := b.randWH(), b.randD()
	c := b.randomCustomerID()
	tx := b.eng.Begin()
	abort := func(err error) error {
		b.eng.Abort(tx)
		return err
	}

	if _, err := b.lookup(tx, b.warehouse, WarehouseKey(w)); err != nil {
		return abort(err)
	}
	distRef, err := b.lookup(tx, b.district, DistrictKey(w, d))
	if err != nil {
		return abort(err)
	}
	dist := DecodeDistrict(distRef.Row)
	o := dist.NextOID
	dist.NextOID++
	if _, err := b.district.Update(tx, *distRef, dist.Encode()); err != nil {
		return abort(err)
	}
	if _, err := b.lookup(tx, b.customer, CustomerKey(w, d, c)); err != nil {
		return abort(err)
	}

	nLines := uint32(5 + b.r.Intn(11))
	ord := Order{W: w, D: d, O: o, C: c, EntryD: b.now(), OLCnt: nLines}
	if _, _, err := b.orders.Insert(tx, ord.Encode()); err != nil {
		return abort(err)
	}
	if _, _, err := b.neworder.Insert(tx, NewOrder{W: w, D: d, O: o}.Encode()); err != nil {
		return abort(err)
	}

	if b.r.Intn(100) == 0 {
		return abort(errIntentionalRollback)
	}

	for num := uint32(1); num <= nLines; num++ {
		i := b.randomItemID()
		itRef, err := b.lookup(tx, b.item, ItemKey(i))
		if err != nil {
			return abort(err)
		}
		item := DecodeItem(itRef.Row)
		stRef, err := b.lookup(tx, b.stock, StockKey(w, i))
		if err != nil {
			return abort(err)
		}
		st := DecodeStock(stRef.Row)
		qty := uint32(1 + b.r.Intn(10))
		if st.Quantity >= qty+10 {
			st.Quantity -= qty
		} else {
			st.Quantity = st.Quantity - qty + 91
		}
		st.YTD += int64(qty)
		st.OrderCnt++
		if _, err := b.stock.Update(tx, *stRef, st.Encode()); err != nil {
			return abort(err)
		}
		ol := OrderLine{W: w, D: d, O: o, Number: num, Item: i, SupplyW: w,
			Quantity: qty, Amount: int64(qty) * item.Price}
		if _, _, err := b.orderline.Insert(tx, ol.Encode()); err != nil {
			return abort(err)
		}
	}
	b.eng.Commit(tx)
	return nil
}

// customerByNameOrID implements the 60/40 customer selection rule.
func (b *Bench) customerByNameOrID(tx *txn.Tx, w, d uint32) (*db.RowRef, error) {
	if b.r.Intn(100) < 60 {
		// By last name: select the middle matching customer.
		last := LastName(b.nuRand(255, 0, 999))
		lo := util.EncodeUint32(util.EncodeUint32(nil, w), d)
		lo = append(lo, last...)
		hi := append(append([]byte(nil), lo...), 1)
		lo = append(lo, 0)
		nameIdx := b.customer.Index("name")
		var matches []db.RowRef
		if err := b.customer.Scan(tx, nameIdx, lo, hi, true, func(rr db.RowRef) bool {
			matches = append(matches, rr)
			return true
		}); err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			// Name not populated in a scaled-down district: fall back to id.
			return b.lookup(tx, b.customer, CustomerKey(w, d, b.randomCustomerID()))
		}
		m := matches[len(matches)/2]
		return &m, nil
	}
	return b.lookup(tx, b.customer, CustomerKey(w, d, b.randomCustomerID()))
}

// PaymentTx is the TPC-C Payment transaction: warehouse and district YTD
// updates (hot rows), customer balance update, history insert.
func (b *Bench) PaymentTx() error {
	w, d := b.randWH(), b.randD()
	amount := int64(100 + b.r.Intn(500000))
	tx := b.eng.Begin()
	abort := func(err error) error {
		b.eng.Abort(tx)
		return err
	}

	whRef, err := b.lookup(tx, b.warehouse, WarehouseKey(w))
	if err != nil {
		return abort(err)
	}
	wh := DecodeWarehouse(whRef.Row)
	wh.YTD += amount
	if _, err := b.warehouse.Update(tx, *whRef, wh.Encode()); err != nil {
		return abort(err)
	}

	distRef, err := b.lookup(tx, b.district, DistrictKey(w, d))
	if err != nil {
		return abort(err)
	}
	dist := DecodeDistrict(distRef.Row)
	dist.YTD += amount
	if _, err := b.district.Update(tx, *distRef, dist.Encode()); err != nil {
		return abort(err)
	}

	custRef, err := b.customerByNameOrID(tx, w, d)
	if err != nil {
		return abort(err)
	}
	cust := DecodeCustomer(custRef.Row)
	cust.Balance -= amount
	cust.YTDPayment += amount
	cust.PaymentCnt++
	if _, err := b.customer.Update(tx, *custRef, cust.Encode()); err != nil {
		return abort(err)
	}

	h := History{W: w, D: d, C: cust.C, Amount: amount, Date: b.now()}
	if _, _, err := b.history.Insert(tx, h.Encode()); err != nil {
		return abort(err)
	}
	b.eng.Commit(tx)
	return nil
}

// OrderStatusTx is the read-only Order-Status transaction: customer
// selection, newest order via the (w,d,c,o) index, then its order lines.
func (b *Bench) OrderStatusTx() error {
	w, d := b.randWH(), b.randD()
	tx := b.eng.Begin()
	defer b.eng.Commit(tx)

	custRef, err := b.customerByNameOrID(tx, w, d)
	if err != nil {
		return nil // read-only; tolerate scaled-down misses
	}
	cust := DecodeCustomer(custRef.Row)

	lo := OrderCustomerKey(w, d, cust.C, 0)
	hi := OrderCustomerKey(w, d, cust.C, ^uint32(0))
	var last *Order
	if err := b.orders.Scan(tx, b.orders.Index("cust"), lo, hi, true, func(rr db.RowRef) bool {
		o := DecodeOrder(rr.Row)
		last = &o
		return true
	}); err != nil {
		return err
	}
	if last == nil {
		return nil
	}
	return b.orderline.Scan(tx, pk(b.orderline),
		OrderLineKey(w, d, last.O, 0), OrderLineKey(w, d, last.O, ^uint32(0)), true,
		func(db.RowRef) bool { return true })
}

// DeliveryTx is the TPC-C Delivery transaction: per district, pop the
// oldest new-order, stamp the order's carrier, stamp every order line's
// delivery date and credit the customer.
func (b *Bench) DeliveryTx() error {
	w := b.randWH()
	carrier := uint32(1 + b.r.Intn(10))
	tx := b.eng.Begin()
	abort := func(err error) error {
		b.eng.Abort(tx)
		return err
	}
	for d := uint32(1); d <= uint32(b.cfg.Districts); d++ {
		lo := OrderKey(w, d, 0)
		hi := OrderKey(w, d, ^uint32(0))
		var oldest *db.RowRef
		if err := b.neworder.Scan(tx, pk(b.neworder), lo, hi, true, func(rr db.RowRef) bool {
			oldest = &rr
			return false
		}); err != nil {
			return abort(err)
		}
		if oldest == nil {
			continue
		}
		no := DecodeNewOrder(oldest.Row)
		if err := b.neworder.Delete(tx, *oldest); err != nil {
			return abort(err)
		}

		ordRef, err := b.lookup(tx, b.orders, OrderKey(w, d, no.O))
		if err != nil {
			return abort(err)
		}
		ord := DecodeOrder(ordRef.Row)
		ord.Carrier = carrier
		if _, err := b.orders.Update(tx, *ordRef, ord.Encode()); err != nil {
			return abort(err)
		}

		total := int64(0)
		var lines []db.RowRef
		if err := b.orderline.Scan(tx, pk(b.orderline),
			OrderLineKey(w, d, no.O, 0), OrderLineKey(w, d, no.O, ^uint32(0)), true,
			func(rr db.RowRef) bool {
				lines = append(lines, rr)
				return true
			}); err != nil {
			return abort(err)
		}
		when := b.now()
		for _, lr := range lines {
			ol := DecodeOrderLine(lr.Row)
			total += ol.Amount
			ol.Delivery = when
			if _, err := b.orderline.Update(tx, lr, ol.Encode()); err != nil {
				return abort(err)
			}
		}

		custRef, err := b.lookup(tx, b.customer, CustomerKey(w, d, ord.C))
		if err != nil {
			return abort(err)
		}
		cust := DecodeCustomer(custRef.Row)
		cust.Balance += total
		if _, err := b.customer.Update(tx, *custRef, cust.Encode()); err != nil {
			return abort(err)
		}
	}
	b.eng.Commit(tx)
	return nil
}

// StockLevelTx is the read-only Stock-Level transaction: order lines of
// the district's last 20 orders, counting distinct items below a stock
// threshold.
func (b *Bench) StockLevelTx() error {
	w, d := b.randWH(), b.randD()
	threshold := uint32(10 + b.r.Intn(11))
	tx := b.eng.Begin()
	defer b.eng.Commit(tx)

	distRef, err := b.lookup(tx, b.district, DistrictKey(w, d))
	if err != nil {
		return nil
	}
	dist := DecodeDistrict(distRef.Row)
	loOID := uint32(1)
	if dist.NextOID > 20 {
		loOID = dist.NextOID - 20
	}
	items := map[uint32]bool{}
	if err := b.orderline.Scan(tx, pk(b.orderline),
		OrderLineKey(w, d, loOID, 0), OrderLineKey(w, d, dist.NextOID, 0), true,
		func(rr db.RowRef) bool {
			items[DecodeOrderLine(rr.Row).Item] = true
			return true
		}); err != nil {
		return err
	}
	low := 0
	for i := range items {
		stRef, err := b.lookup(tx, b.stock, StockKey(w, i))
		if err != nil {
			continue
		}
		if DecodeStock(stRef.Row).Quantity < threshold {
			low++
		}
	}
	_ = low
	return nil
}
