package tpcc

import (
	"testing"

	"mvpbt/internal/db"
	"mvpbt/internal/util"
)

func engines() map[string]Config {
	return map[string]Config{
		"hot-btree":  {Heap: db.HeapHOT, Index: db.IdxBTree, RefMode: db.RefPhysical},
		"sias-btree": {Heap: db.HeapSIAS, Index: db.IdxBTree, RefMode: db.RefLogical},
		"sias-pbt":   {Heap: db.HeapSIAS, Index: db.IdxPBT, RefMode: db.RefPhysical, BloomBits: 10},
		"sias-mvpbt": {Heap: db.HeapSIAS, Index: db.IdxMVPBT, RefMode: db.RefPhysical, BloomBits: 10},
	}
}

func load(t *testing.T, cfg Config) *Bench {
	t.Helper()
	eng := db.NewEngine(db.Config{BufferPages: 4096, PartitionBufferBytes: 1 << 22})
	cfg.Warehouses = 1
	cfg.CustomersPerDistrict = 30
	cfg.Items = 100
	b, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLoadAndRunMix(t *testing.T) {
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) {
			b := load(t, cfg)
			if err := b.Run(300); err != nil {
				t.Fatal(err)
			}
			st := b.Stats
			if st.Total() < 250 {
				t.Fatalf("too few commits: %+v", st)
			}
			if st.NewOrders == 0 || st.Payments == 0 || st.Deliveries == 0 {
				t.Fatalf("mix not exercised: %+v", st)
			}
		})
	}
}

func TestMoneyConservation(t *testing.T) {
	// TPC-C consistency: W_YTD == sum(D_YTD) per warehouse, since Payment
	// adds the same amount to both.
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) {
			b := load(t, cfg)
			if err := b.Run(400); err != nil {
				t.Fatal(err)
			}
			tx := b.eng.Begin()
			defer b.eng.Commit(tx)
			whRef, err := b.lookup(tx, b.warehouse, WarehouseKey(1))
			if err != nil {
				t.Fatal(err)
			}
			wYTD := DecodeWarehouse(whRef.Row).YTD
			var dYTD int64
			for d := uint32(1); d <= uint32(b.cfg.Districts); d++ {
				dr, err := b.lookup(tx, b.district, DistrictKey(1, d))
				if err != nil {
					t.Fatal(err)
				}
				dYTD += DecodeDistrict(dr.Row).YTD
			}
			if wYTD != dYTD {
				t.Fatalf("YTD mismatch: warehouse=%d districts=%d", wYTD, dYTD)
			}
		})
	}
}

func TestOrderChainConsistency(t *testing.T) {
	// Every order id below a district's NextOID must exist exactly once
	// unless its New-Order transaction rolled back.
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) {
			b := load(t, cfg)
			if err := b.Run(400); err != nil {
				t.Fatal(err)
			}
			tx := b.eng.Begin()
			defer b.eng.Commit(tx)
			for d := uint32(1); d <= uint32(b.cfg.Districts); d++ {
				dr, err := b.lookup(tx, b.district, DistrictKey(1, d))
				if err != nil {
					t.Fatal(err)
				}
				dist := DecodeDistrict(dr.Row)
				orders := 0
				err = b.orders.Scan(tx, pk(b.orders), OrderKey(1, d, 0), OrderKey(1, d, ^uint32(0)), false,
					func(db.RowRef) bool { orders++; return true })
				if err != nil {
					t.Fatal(err)
				}
				if orders > int(dist.NextOID-1) {
					t.Fatalf("district %d: %d orders > next_o_id-1 %d", d, orders, dist.NextOID-1)
				}
			}
		})
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	b := load(t, engines()["sias-mvpbt"])
	// Generate orders, then deliver repeatedly.
	for i := 0; i < 50; i++ {
		if err := b.NewOrderTx(); err != nil && err != errIntentionalRollback {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := b.DeliveryTx(); err != nil {
			t.Fatal(err)
		}
	}
	tx := b.eng.Begin()
	defer b.eng.Commit(tx)
	pending := 0
	err := b.neworder.Scan(tx, pk(b.neworder), OrderKey(1, 0, 0), OrderKey(1, ^uint32(0), 0), false,
		func(db.RowRef) bool { pending++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if pending != 0 {
		t.Fatalf("%d new-orders undelivered after 30 delivery rounds", pending)
	}
}

func TestCustomerByLastName(t *testing.T) {
	b := load(t, engines()["sias-mvpbt"])
	tx := b.eng.Begin()
	defer b.eng.Commit(tx)
	// Find any customer's last name via pk, then search by name index.
	cr, err := b.lookup(tx, b.customer, CustomerKey(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	c := DecodeCustomer(cr.Row)
	lo := util.EncodeUint32(util.EncodeUint32(nil, 1), 1)
	lo = append(lo, c.Last...)
	hi := append(append([]byte(nil), lo...), 1)
	lo = append(lo, 0)
	found := 0
	err = b.customer.Scan(tx, b.customer.Index("name"), lo, hi, true, func(rr db.RowRef) bool {
		if DecodeCustomer(rr.Row).Last != c.Last {
			t.Fatalf("name index returned wrong last name")
		}
		found++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("name index found nothing")
	}
}

func TestRowCodecsRoundTrip(t *testing.T) {
	w := Warehouse{W: 3, Tax: 1234, YTD: 567890, Name: "WH003"}
	if got := DecodeWarehouse(w.Encode()); got != w {
		t.Fatalf("warehouse: %+v", got)
	}
	d := District{W: 1, D: 2, Tax: 3, YTD: 4, NextOID: 5}
	if got := DecodeDistrict(d.Encode()); got != d {
		t.Fatalf("district: %+v", got)
	}
	c := Customer{W: 1, D: 2, C: 3, Balance: -99, YTDPayment: 7, PaymentCnt: 2, Last: "BARBAROUGHT", Data: "xyz"}
	if got := DecodeCustomer(c.Encode()); got != c {
		t.Fatalf("customer: %+v", got)
	}
	o := Order{W: 1, D: 2, O: 3, C: 4, EntryD: 5, Carrier: 6, OLCnt: 7}
	if got := DecodeOrder(o.Encode()); got != o {
		t.Fatalf("order: %+v", got)
	}
	ol := OrderLine{W: 1, D: 2, O: 3, Number: 4, Item: 5, SupplyW: 6, Delivery: 7, Quantity: 8, Amount: 9}
	if got := DecodeOrderLine(ol.Encode()); got != ol {
		t.Fatalf("orderline: %+v", got)
	}
	it := Item{I: 9, Price: 42, Name: "widget"}
	if got := DecodeItem(it.Encode()); got != it {
		t.Fatalf("item: %+v", got)
	}
	s := Stock{W: 1, I: 2, Quantity: 3, YTD: 4, OrderCnt: 5, Data: "d"}
	if got := DecodeStock(s.Encode()); got != s {
		t.Fatalf("stock: %+v", got)
	}
	n := NewOrder{W: 1, D: 2, O: 3}
	if got := DecodeNewOrder(n.Encode()); got != n {
		t.Fatalf("neworder: %+v", got)
	}
}

func TestLastNames(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0)=%s", LastName(0))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999)=%s", LastName(999))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371)=%s", LastName(371))
	}
}

func TestKeyExtractorsMatchBuilders(t *testing.T) {
	c := Customer{W: 1, D: 2, C: 3, Last: "ABLEPRIESE"}
	row := c.Encode()
	want := CustomerNameKey(1, 2, "ABLEPRIESE", 3)
	if string(CustomerNameExtract(row)) != string(want) {
		t.Fatal("customer name extractor diverges from key builder")
	}
	o := Order{W: 1, D: 2, O: 9, C: 5}
	if string(OrderCustomerExtract(o.Encode())) != string(OrderCustomerKey(1, 2, 5, 9)) {
		t.Fatal("order customer extractor diverges from key builder")
	}
}
