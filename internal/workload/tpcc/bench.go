package tpcc

import (
	"fmt"

	"mvpbt/internal/db"
	"mvpbt/internal/heap"
	"mvpbt/internal/util"
)

// Config scales the benchmark and selects the storage engine under test.
type Config struct {
	Warehouses int
	// Districts per warehouse (TPC-C: 10).
	Districts int
	// CustomersPerDistrict (TPC-C: 3000; scaled down by default).
	CustomersPerDistrict int
	// Items in the catalog (TPC-C: 100000; scaled down by default).
	Items int
	Seed  uint64

	// Engine axis (Figures 14a–d): heap organization, index structure,
	// reference mode and index options applied to every table.
	Heap      db.HeapKind
	Index     db.IndexKind
	RefMode   db.RefMode
	BloomBits int
	PrefixLen int
	DisableGC bool
	// AutoVacuumEvery runs a vacuum pass over all tables every N committed
	// transactions during Run (0 disables; PostgreSQL-style autovacuum).
	AutoVacuumEvery int
}

func (c Config) withDefaults() Config {
	if c.Warehouses <= 0 {
		c.Warehouses = 1
	}
	if c.Districts <= 0 {
		c.Districts = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 100
	}
	if c.Items <= 0 {
		c.Items = 1000
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Stats counts transaction outcomes.
type Stats struct {
	NewOrders, Payments, OrderStatus, Deliveries, StockLevels int64
	Aborts                                                    int64
}

// Total returns the number of committed transactions.
func (s Stats) Total() int64 {
	return s.NewOrders + s.Payments + s.OrderStatus + s.Deliveries + s.StockLevels
}

// Bench is a loaded TPC-C database plus the transaction mix driver.
type Bench struct {
	cfg Config
	eng *db.Engine
	r   *util.Rand

	warehouse, district, customer, orders *db.Table
	neworder, orderline, item, stock      *db.Table
	history                               *db.Table

	Stats Stats
}

// New creates the schema on eng per cfg (no data yet; call Load).
func New(eng *db.Engine, cfg Config) (*Bench, error) {
	cfg = cfg.withDefaults()
	b := &Bench{cfg: cfg, eng: eng, r: util.NewRand(cfg.Seed)}

	idx := func(name string, unique bool, extract func([]byte) []byte, prefixLen int) db.IndexDef {
		return db.IndexDef{
			Name: name, Kind: cfg.Index, RefMode: cfg.RefMode, Unique: unique,
			Extract: extract, BloomBits: cfg.BloomBits, PrefixLen: prefixLen,
			DisableGC: cfg.DisableGC,
		}
	}
	var err error
	mk := func(name string, defs ...db.IndexDef) *db.Table {
		if err != nil {
			return nil
		}
		var t *db.Table
		t, err = eng.NewTable(name, cfg.Heap, defs...)
		return t
	}
	pl := cfg.PrefixLen
	b.warehouse = mk("warehouse", idx("pk", true, prefix4, 0))
	b.district = mk("district", idx("pk", true, prefix8, 0))
	b.customer = mk("customer",
		idx("pk", true, prefix12, 0),
		idx("name", false, CustomerNameExtract, pl))
	b.orders = mk("orders",
		idx("pk", true, prefix12, 0),
		idx("cust", false, OrderCustomerExtract, pl))
	b.neworder = mk("new_order", idx("pk", true, prefix12, pl))
	b.orderline = mk("order_line", idx("pk", true, prefix16, pl))
	b.item = mk("item", idx("pk", true, prefix4, 0))
	b.stock = mk("stock", idx("pk", true, prefix8, pl))
	b.history = mk("history")
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Engine returns the underlying engine.
func (b *Bench) Engine() *db.Engine { return b.eng }

// Table accessors for analytical queries (CH-benchmark).
func (b *Bench) OrderLineTable() *db.Table { return b.orderline }
func (b *Bench) StockTable() *db.Table     { return b.stock }
func (b *Bench) CustomerTable() *db.Table  { return b.customer }
func (b *Bench) OrdersTable() *db.Table    { return b.orders }
func (b *Bench) DistrictTable() *db.Table  { return b.district }

// AllTables returns every table of the schema.
func (b *Bench) AllTables() []*db.Table {
	return []*db.Table{b.warehouse, b.district, b.customer, b.orders,
		b.neworder, b.orderline, b.item, b.stock, b.history}
}

// Config returns the effective configuration.
func (b *Bench) Config() Config { return b.cfg }

// lastNames per the TPC-C syllable table.
var syllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName renders TPC-C customer last name n (0..999).
func LastName(n int) string {
	return syllables[n/100] + syllables[(n/10)%10] + syllables[n%10]
}

// nuRand is the TPC-C non-uniform random function.
func (b *Bench) nuRand(a, x, y int) int {
	c := 123 % (a + 1)
	return (((b.r.IntRange(0, a) | b.r.IntRange(x, y)) + c) % (y - x + 1)) + x
}

func (b *Bench) randomCustomerID() uint32 {
	return uint32(b.nuRand(1023, 1, b.cfg.CustomersPerDistrict))
}

func (b *Bench) randomItemID() uint32 {
	return uint32(b.nuRand(8191, 1, b.cfg.Items))
}

// Load populates the database per the (scaled) TPC-C population rules.
func (b *Bench) Load() error {
	c := b.cfg
	data := make([]byte, 64)
	for w := uint32(1); w <= uint32(c.Warehouses); w++ {
		tx := b.eng.Begin()
		if _, _, err := b.warehouse.Insert(tx, Warehouse{W: w, Tax: int64(b.r.Intn(2000)), Name: fmt.Sprintf("WH%03d", w)}.Encode()); err != nil {
			return err
		}
		for i := uint32(1); i <= uint32(c.Items); i++ {
			if w == 1 { // items are global
				it := Item{I: i, Price: int64(100 + b.r.Intn(9900)), Name: fmt.Sprintf("item-%06d", i)}
				if _, _, err := b.item.Insert(tx, it.Encode()); err != nil {
					return err
				}
			}
			b.r.Letters(data[:24])
			st := Stock{W: w, I: i, Quantity: uint32(10 + b.r.Intn(91)), Data: string(data[:24])}
			if _, _, err := b.stock.Insert(tx, st.Encode()); err != nil {
				return err
			}
		}
		b.eng.Commit(tx)
		for d := uint32(1); d <= uint32(c.Districts); d++ {
			tx := b.eng.Begin()
			dist := District{W: w, D: d, Tax: int64(b.r.Intn(2000)), NextOID: 1}
			if _, _, err := b.district.Insert(tx, dist.Encode()); err != nil {
				return err
			}
			for cu := uint32(1); cu <= uint32(c.CustomersPerDistrict); cu++ {
				b.r.Letters(data[:32])
				last := LastName(b.nuRand(255, 0, 999))
				cust := Customer{W: w, D: d, C: cu, Balance: -1000, Last: last, Data: string(data[:32])}
				if _, _, err := b.customer.Insert(tx, cust.Encode()); err != nil {
					return err
				}
			}
			b.eng.Commit(tx)
		}
	}
	return nil
}

// Tx runs one transaction of the standard mix (45/43/4/4/4) and updates
// Stats. Serialization failures abort and count.
func (b *Bench) Tx() error {
	roll := b.r.Intn(100)
	var err error
	switch {
	case roll < 45:
		err = b.NewOrderTx()
		if err == nil {
			b.Stats.NewOrders++
		}
	case roll < 88:
		err = b.PaymentTx()
		if err == nil {
			b.Stats.Payments++
		}
	case roll < 92:
		err = b.OrderStatusTx()
		if err == nil {
			b.Stats.OrderStatus++
		}
	case roll < 96:
		err = b.DeliveryTx()
		if err == nil {
			b.Stats.Deliveries++
		}
	default:
		err = b.StockLevelTx()
		if err == nil {
			b.Stats.StockLevels++
		}
	}
	if err == heap.ErrWriteConflict || err == errIntentionalRollback {
		b.Stats.Aborts++
		return nil
	}
	return err
}

// Run executes n transactions of the mix, with periodic autovacuum when
// configured.
func (b *Bench) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := b.Tx(); err != nil {
			return err
		}
		if v := b.cfg.AutoVacuumEvery; v > 0 && b.Stats.Total()%int64(v) == 0 {
			if err := b.VacuumAll(); err != nil {
				return err
			}
		}
	}
	return nil
}

// VacuumAll reclaims dead versions in every table.
func (b *Bench) VacuumAll() error {
	for _, t := range b.AllTables() {
		if _, err := t.Vacuum(); err != nil {
			return err
		}
	}
	return nil
}

type tpccError string

func (e tpccError) Error() string { return string(e) }

const (
	errIntentionalRollback = tpccError("tpcc: intentional rollback (1% of new-orders)")
	errRowMissing          = tpccError("tpcc: expected row missing")
)
