// Package tpcc implements a TPC-C–style OLTP workload (the paper uses the
// DBT-2 TPC-C implementation and OLTP-Bench, §5): the nine-table schema,
// the five transaction profiles with the standard mix, and a scalable
// loader. Every table runs on the storage engine under test — heap
// organization, index structure and reference mode are injected, which is
// exactly the axis Figures 14a–d vary.
package tpcc

import (
	"encoding/binary"

	"mvpbt/internal/util"
)

// Rows are fixed-layout binary records. Key attributes live at fixed
// offsets at the front so index extractors are cheap slices; strings
// follow the fixed part.

func u32(b []byte, off int) uint32     { return binary.BigEndian.Uint32(b[off:]) }
func pu32(b []byte, off int, v uint32) { binary.BigEndian.PutUint32(b[off:], v) }
func i64(b []byte, off int) int64      { return int64(binary.BigEndian.Uint64(b[off:])) }
func pi64(b []byte, off int, v int64)  { binary.BigEndian.PutUint64(b[off:], uint64(v)) }

// ---- Warehouse: [0:4) w_id | [4:12) tax | [12:20) ytd | name.
type Warehouse struct {
	W    uint32
	Tax  int64 // basis points
	YTD  int64 // cents
	Name string
}

// Encode renders the row.
func (w Warehouse) Encode() []byte {
	b := make([]byte, 20+len(w.Name))
	pu32(b, 0, w.W)
	pi64(b, 4, w.Tax)
	pi64(b, 12, w.YTD)
	copy(b[20:], w.Name)
	return b
}

// DecodeWarehouse parses a row.
func DecodeWarehouse(b []byte) Warehouse {
	return Warehouse{W: u32(b, 0), Tax: i64(b, 4), YTD: i64(b, 12), Name: string(b[20:])}
}

// WarehouseKey is the primary key.
func WarehouseKey(w uint32) []byte { return util.EncodeUint32(nil, w) }

// ---- District: [0:4) w | [4:8) d | [8:16) tax | [16:24) ytd | [24:28) next_o_id.
type District struct {
	W, D    uint32
	Tax     int64
	YTD     int64
	NextOID uint32
}

// Encode renders the row.
func (d District) Encode() []byte {
	b := make([]byte, 28)
	pu32(b, 0, d.W)
	pu32(b, 4, d.D)
	pi64(b, 8, d.Tax)
	pi64(b, 16, d.YTD)
	pu32(b, 24, d.NextOID)
	return b
}

// DecodeDistrict parses a row.
func DecodeDistrict(b []byte) District {
	return District{W: u32(b, 0), D: u32(b, 4), Tax: i64(b, 8), YTD: i64(b, 16), NextOID: u32(b, 24)}
}

// DistrictKey is the primary key.
func DistrictKey(w, d uint32) []byte {
	return util.EncodeUint32(util.EncodeUint32(nil, w), d)
}

// ---- Customer: [0:4) w | [4:8) d | [8:12) c | [12:20) balance |
// [20:28) ytd_payment | [28:32) payment_cnt | [32] lastLen | last | data.
type Customer struct {
	W, D, C    uint32
	Balance    int64
	YTDPayment int64
	PaymentCnt uint32
	Last       string
	Data       string
}

// Encode renders the row.
func (c Customer) Encode() []byte {
	b := make([]byte, 33+len(c.Last)+len(c.Data))
	pu32(b, 0, c.W)
	pu32(b, 4, c.D)
	pu32(b, 8, c.C)
	pi64(b, 12, c.Balance)
	pi64(b, 20, c.YTDPayment)
	pu32(b, 28, c.PaymentCnt)
	b[32] = byte(len(c.Last))
	copy(b[33:], c.Last)
	copy(b[33+len(c.Last):], c.Data)
	return b
}

// DecodeCustomer parses a row.
func DecodeCustomer(b []byte) Customer {
	ll := int(b[32])
	return Customer{
		W: u32(b, 0), D: u32(b, 4), C: u32(b, 8),
		Balance: i64(b, 12), YTDPayment: i64(b, 20), PaymentCnt: u32(b, 28),
		Last: string(b[33 : 33+ll]), Data: string(b[33+ll:]),
	}
}

// CustomerKey is the primary key.
func CustomerKey(w, d, c uint32) []byte {
	k := util.EncodeUint32(nil, w)
	k = util.EncodeUint32(k, d)
	return util.EncodeUint32(k, c)
}

// CustomerNameKey is the (w, d, last, c) secondary key.
func CustomerNameKey(w, d uint32, last string, c uint32) []byte {
	k := util.EncodeUint32(nil, w)
	k = util.EncodeUint32(k, d)
	k = append(k, last...)
	k = append(k, 0)
	return util.EncodeUint32(k, c)
}

// CustomerNameExtract derives the secondary key from a row.
func CustomerNameExtract(row []byte) []byte {
	ll := int(row[32])
	k := make([]byte, 0, 13+ll)
	k = append(k, row[0:8]...)
	k = append(k, row[33:33+ll]...)
	k = append(k, 0)
	return append(k, row[8:12]...)
}

// ---- Order: [0:4) w | [4:8) d | [8:12) o | [12:16) c | [16:24) entry_d |
// [24:28) carrier | [28:32) ol_cnt.
type Order struct {
	W, D, O uint32
	C       uint32
	EntryD  int64
	Carrier uint32
	OLCnt   uint32
}

// Encode renders the row.
func (o Order) Encode() []byte {
	b := make([]byte, 32)
	pu32(b, 0, o.W)
	pu32(b, 4, o.D)
	pu32(b, 8, o.O)
	pu32(b, 12, o.C)
	pi64(b, 16, o.EntryD)
	pu32(b, 24, o.Carrier)
	pu32(b, 28, o.OLCnt)
	return b
}

// DecodeOrder parses a row.
func DecodeOrder(b []byte) Order {
	return Order{W: u32(b, 0), D: u32(b, 4), O: u32(b, 8), C: u32(b, 12),
		EntryD: i64(b, 16), Carrier: u32(b, 24), OLCnt: u32(b, 28)}
}

// OrderKey is the primary key.
func OrderKey(w, d, o uint32) []byte {
	k := util.EncodeUint32(nil, w)
	k = util.EncodeUint32(k, d)
	return util.EncodeUint32(k, o)
}

// OrderCustomerExtract derives the (w, d, c, o) secondary key from a row.
func OrderCustomerExtract(row []byte) []byte {
	k := make([]byte, 0, 16)
	k = append(k, row[0:8]...)
	k = append(k, row[12:16]...)
	return append(k, row[8:12]...)
}

// OrderCustomerKey builds the (w, d, c, o) secondary key.
func OrderCustomerKey(w, d, c, o uint32) []byte {
	k := util.EncodeUint32(nil, w)
	k = util.EncodeUint32(k, d)
	k = util.EncodeUint32(k, c)
	return util.EncodeUint32(k, o)
}

// ---- NewOrder: [0:4) w | [4:8) d | [8:12) o.
type NewOrder struct {
	W, D, O uint32
}

// Encode renders the row.
func (n NewOrder) Encode() []byte {
	b := make([]byte, 12)
	pu32(b, 0, n.W)
	pu32(b, 4, n.D)
	pu32(b, 8, n.O)
	return b
}

// DecodeNewOrder parses a row.
func DecodeNewOrder(b []byte) NewOrder {
	return NewOrder{W: u32(b, 0), D: u32(b, 4), O: u32(b, 8)}
}

// ---- OrderLine: [0:4) w | [4:8) d | [8:12) o | [12:16) number |
// [16:20) item | [20:24) supply_w | [24:32) delivery_d | [32:36) quantity |
// [36:44) amount.
type OrderLine struct {
	W, D, O  uint32
	Number   uint32
	Item     uint32
	SupplyW  uint32
	Delivery int64
	Quantity uint32
	Amount   int64
}

// Encode renders the row.
func (l OrderLine) Encode() []byte {
	b := make([]byte, 44)
	pu32(b, 0, l.W)
	pu32(b, 4, l.D)
	pu32(b, 8, l.O)
	pu32(b, 12, l.Number)
	pu32(b, 16, l.Item)
	pu32(b, 20, l.SupplyW)
	pi64(b, 24, l.Delivery)
	pu32(b, 32, l.Quantity)
	pi64(b, 36, l.Amount)
	return b
}

// DecodeOrderLine parses a row.
func DecodeOrderLine(b []byte) OrderLine {
	return OrderLine{W: u32(b, 0), D: u32(b, 4), O: u32(b, 8), Number: u32(b, 12),
		Item: u32(b, 16), SupplyW: u32(b, 20), Delivery: i64(b, 24),
		Quantity: u32(b, 32), Amount: i64(b, 36)}
}

// OrderLineKey is the primary key.
func OrderLineKey(w, d, o, num uint32) []byte {
	k := util.EncodeUint32(nil, w)
	k = util.EncodeUint32(k, d)
	k = util.EncodeUint32(k, o)
	return util.EncodeUint32(k, num)
}

// ---- Item: [0:4) i | [4:12) price | name.
type Item struct {
	I     uint32
	Price int64
	Name  string
}

// Encode renders the row.
func (i Item) Encode() []byte {
	b := make([]byte, 12+len(i.Name))
	pu32(b, 0, i.I)
	pi64(b, 4, i.Price)
	copy(b[12:], i.Name)
	return b
}

// DecodeItem parses a row.
func DecodeItem(b []byte) Item {
	return Item{I: u32(b, 0), Price: i64(b, 4), Name: string(b[12:])}
}

// ItemKey is the primary key.
func ItemKey(i uint32) []byte { return util.EncodeUint32(nil, i) }

// ---- Stock: [0:4) w | [4:8) i | [8:12) quantity | [12:20) ytd |
// [20:24) order_cnt | data.
type Stock struct {
	W, I     uint32
	Quantity uint32
	YTD      int64
	OrderCnt uint32
	Data     string
}

// Encode renders the row.
func (s Stock) Encode() []byte {
	b := make([]byte, 24+len(s.Data))
	pu32(b, 0, s.W)
	pu32(b, 4, s.I)
	pu32(b, 8, s.Quantity)
	pi64(b, 12, s.YTD)
	pu32(b, 20, s.OrderCnt)
	copy(b[24:], s.Data)
	return b
}

// DecodeStock parses a row.
func DecodeStock(b []byte) Stock {
	return Stock{W: u32(b, 0), I: u32(b, 4), Quantity: u32(b, 8),
		YTD: i64(b, 12), OrderCnt: u32(b, 20), Data: string(b[24:])}
}

// StockKey is the primary key.
func StockKey(w, i uint32) []byte {
	return util.EncodeUint32(util.EncodeUint32(nil, w), i)
}

// ---- History: [0:4) w | [4:8) d | [8:12) c | [12:20) amount |
// [20:28) date. Write-only, no index.
type History struct {
	W, D, C uint32
	Amount  int64
	Date    int64
}

// Encode renders the row.
func (h History) Encode() []byte {
	b := make([]byte, 28)
	pu32(b, 0, h.W)
	pu32(b, 4, h.D)
	pu32(b, 8, h.C)
	pi64(b, 12, h.Amount)
	pi64(b, 20, h.Date)
	return b
}

// prefix4, prefix8, prefix12, prefix16 are key extractors for rows whose
// primary key is the leading fixed bytes.
func prefix4(row []byte) []byte  { return row[0:4] }
func prefix8(row []byte) []byte  { return row[0:8] }
func prefix12(row []byte) []byte { return row[0:12] }
func prefix16(row []byte) []byte { return row[0:16] }
