package check

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

// ExhaustCampaign drives the resource-exhaustion acceptance criterion: on a
// capacity-bounded device, filling to the hard watermark must flip the
// engine into degraded read-only mode WITHOUT losing read correctness
// (every read while degraded is held to the oracle), reclamation — WAL
// checkpoint/truncation, garbage collection, heap vacuum — must recover at
// least the soft-watermark headroom so writes resume by themselves, and the
// whole scenario replayed from the same seed must be byte-identical
// (fingerprint comparison, state hash included). A deterministic ENOSPC is
// also injected through the fault-rule machinery (FaultNoSpace on a heap
// extent allocation) to prove the typed-error path degrades and recovers
// too — this is the injection TestFaultCampaignSmoke deliberately leaves to
// this campaign. Maintenance runs synchronously: background timing would
// make the fill/reclaim interleaving, and with it the fingerprint, racy.

// ExhaustConfig parameterizes an exhaustion campaign.
type ExhaustConfig struct {
	Seeds []uint64
	// Keys is the live key-space churned during the fill (default 48).
	Keys int
	// CapacityBytes bounds the device (default 16 MiB); SoftBytes and
	// HardBytes are the governor watermarks (default 3 MiB / 4 MiB —
	// far below capacity so the watermarks, not raw ENOSPC, decide).
	CapacityBytes int64
	SoftBytes     int64
	HardBytes     int64
	// MaxTx bounds the fill loop (default 30000 update transactions).
	MaxTx int
	// Log, when set, receives one progress line per run.
	Log func(format string, args ...any)
}

func (c ExhaustConfig) withDefaults() ExhaustConfig {
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1}
	}
	if c.Keys <= 0 {
		c.Keys = 48
	}
	if c.CapacityBytes <= 0 {
		c.CapacityBytes = 16 << 20
	}
	if c.SoftBytes <= 0 {
		c.SoftBytes = 3 << 20
	}
	if c.HardBytes <= 0 {
		c.HardBytes = 4 << 20
	}
	if c.MaxTx <= 0 {
		c.MaxTx = 30000
	}
	return c
}

// ExhaustFingerprint is the determinism-relevant outcome of one scenario:
// two replays of the same (heap, seed) must agree on every field.
type ExhaustFingerprint struct {
	// FillTxs is the number of committed update transactions it took to
	// degrade the engine.
	FillTxs int
	// NoSpaceInjected counts FaultNoSpace injections (the ENOSPC probe).
	NoSpaceInjected int64
	// Governor counters at the end of the scenario.
	ROEntries, ROExits, Reclaims int64
	// Live device bytes and WAL device bytes at the moment of degradation
	// and after reclamation re-opened the engine.
	LiveAtRO, WALAtRO, LiveAfter, WALAfter int64
	// RecoveredTxs is the transaction count replayed from the final log.
	RecoveredTxs int
	// StateHash fingerprints the recovered engine's visible rows (FNV-1a
	// over key/row pairs in key order).
	StateHash uint64
}

// ExhaustRun is the outcome of one (heap, seed) scenario pair.
type ExhaustRun struct {
	Heap db.HeapKind
	Seed uint64
	Fp   ExhaustFingerprint
	// Mismatch describes how the two replays diverged ("" = deterministic).
	Mismatch  string
	Violation *Violation
}

// ExhaustResult aggregates an exhaustion campaign.
type ExhaustResult struct {
	Runs       []ExhaustRun
	Violations int
	Mismatches int
	// StallViolation is the context-deadline probe's verdict (nil = pass):
	// an operation blocked in a partition-buffer write stall, and the scan
	// issued under the same deadline, must surface
	// context.DeadlineExceeded within 2x the deadline.
	StallViolation *Violation
}

// Failed reports whether any scenario violated an invariant, replayed
// nondeterministically, or the stall probe missed its deadline bound.
func (r *ExhaustResult) Failed() bool {
	return r.Violations > 0 || r.Mismatches > 0 || r.StallViolation != nil
}

// ExhaustCampaign runs the campaign over both heap layouts.
func ExhaustCampaign(cfg ExhaustConfig) ExhaustResult {
	cfg = cfg.withDefaults()
	var out ExhaustResult
	for _, hk := range []db.HeapKind{db.HeapHOT, db.HeapSIAS} {
		for _, seed := range cfg.Seeds {
			fp1, v1 := exhaustScenario(cfg, hk, seed)
			run := ExhaustRun{Heap: hk, Seed: seed, Fp: fp1, Violation: v1}
			if v1 == nil {
				fp2, v2 := exhaustScenario(cfg, hk, seed)
				if v2 != nil {
					run.Violation = v2 // a replay-only failure is still a failure
				} else {
					run.Mismatch = diffExhaust(fp1, fp2)
				}
			}
			out.Runs = append(out.Runs, run)
			if run.Violation != nil {
				out.Violations++
			}
			if run.Mismatch != "" {
				out.Mismatches++
			}
			if cfg.Log != nil {
				status := "ok"
				switch {
				case run.Violation != nil:
					status = "VIOLATION: " + run.Violation.Error()
				case run.Mismatch != "":
					status = "NONDETERMINISTIC: " + run.Mismatch
				}
				cfg.Log("  heap=%v seed=%d: %d fill txs, ro %d/%d, %d reclaims, wal %d->%d, live %d->%d, %d enospc, hash %016x — %s",
					hk, seed, fp1.FillTxs, fp1.ROEntries, fp1.ROExits, fp1.Reclaims,
					fp1.WALAtRO, fp1.WALAfter, fp1.LiveAtRO, fp1.LiveAfter,
					fp1.NoSpaceInjected, fp1.StateHash, status)
			}
		}
	}
	out.StallViolation = exhaustStallProbe()
	if cfg.Log != nil && out.StallViolation != nil {
		cfg.Log("  stall probe: VIOLATION: %v", out.StallViolation.Error())
	}
	return out
}

// diffExhaust compares two fingerprints of the same scenario.
func diffExhaust(a, b ExhaustFingerprint) string {
	if a == b {
		return ""
	}
	return fmt.Sprintf("fingerprints differ: %+v vs %+v", a, b)
}

// exRow builds a row in the harness layout ([len][key][val]) so keyExtract
// applies unchanged.
func exRow(key, val string) []byte {
	row := make([]byte, 0, 1+len(key)+len(val))
	row = append(row, byte(len(key)))
	row = append(row, key...)
	return append(row, val...)
}

// exhauster is one scenario's state: a capacity-bounded engine plus the
// expected committed state (the oracle — single-client histories make a
// last-committed-row map a complete one).
type exhauster struct {
	cfg    ExhaustConfig
	eng    *db.Engine
	tbl    *db.Table
	expect map[string]string
}

func (x *exhauster) build(hk db.HeapKind) error {
	x.eng = db.NewEngine(db.Config{
		BufferPages:          2048,
		PartitionBufferBytes: 1 << 22,
		EnableWAL:            true,
		// Commits run through the group-commit batcher (deterministic
		// batches of one: the exhauster is single-threaded, MaxDelay 0) so
		// exhaustion testing covers the production commit pipeline.
		GroupCommit:         db.GroupCommitConfig{Enabled: true},
		DeviceCapacityBytes: x.cfg.CapacityBytes,
		SpaceSoftBytes:      x.cfg.SoftBytes,
		SpaceHardBytes:      x.cfg.HardBytes,
	})
	tbl, err := x.eng.NewTable("t", hk, db.IndexDef{
		Name: "pk", Kind: db.IdxMVPBT, RefMode: db.RefPhysical, Unique: true,
		Extract: keyExtract, BloomBits: 10, MaxPartitions: 4,
	})
	x.tbl = tbl
	return err
}

// put inserts or updates key to val in one committed transaction and
// mirrors it into the expected state. A write error aborts the transaction
// and is returned untouched.
func (x *exhauster) put(key, val string) error {
	row := exRow(key, val)
	tx := x.eng.Begin()
	if _, ok := x.expect[key]; ok {
		cur, err := x.tbl.LookupOne(tx, x.tbl.Indexes()[0], []byte(key), true)
		if err == nil && cur == nil {
			err = fmt.Errorf("committed key %q not visible to a fresh transaction", key)
		}
		if err == nil {
			_, err = x.tbl.Update(tx, *cur, row)
		}
		if err != nil {
			x.eng.Abort(tx)
			return err
		}
	} else if _, _, err := x.tbl.Insert(tx, row); err != nil {
		x.eng.Abort(tx)
		return err
	}
	if err := x.eng.CommitDurable(tx); err != nil {
		x.eng.Abort(tx)
		return err
	}
	x.expect[key] = string(row)
	return nil
}

// checkState holds the engine to the oracle: a fresh snapshot's full scan
// over the primary index must yield exactly the expected committed rows.
func (x *exhauster) checkState(phase string) *Violation {
	tx := x.eng.Begin()
	defer x.eng.Abort(tx)
	got := map[string]string{}
	err := x.tbl.Scan(tx, x.tbl.Indexes()[0], nil, nil, true, func(rr db.RowRef) bool {
		got[string(rr.Key)] = string(rr.Row)
		return true
	})
	if err != nil {
		return &Violation{Op: phase, Msg: fmt.Sprintf("scan: %v", err), Err: err}
	}
	if len(got) != len(x.expect) {
		return &Violation{Op: phase, Msg: fmt.Sprintf("engine has %d rows, oracle %d", len(got), len(x.expect))}
	}
	for k, w := range x.expect {
		if g, ok := got[k]; !ok || g != w {
			return &Violation{Op: phase, Msg: fmt.Sprintf("row %q: engine %q, oracle %q", k, g, w)}
		}
	}
	return nil
}

// stateHash fingerprints the engine's visible rows in key order.
func (x *exhauster) stateHash() uint64 {
	keys := make([]string, 0, len(x.expect))
	for k := range x.expect {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fh := fnv.New64a()
	for _, k := range keys {
		fh.Write([]byte(k))
		fh.Write([]byte{0})
		fh.Write([]byte(x.expect[k]))
		fh.Write([]byte{0})
	}
	return fh.Sum64()
}

// exhaustScenario is one full pass: seed rows, prove the injected-ENOSPC
// path, fill to read-only under a pinning reader, hold degraded reads to
// the oracle, reclaim, resume writes, crash-recover, fingerprint.
func exhaustScenario(cfg ExhaustConfig, hk db.HeapKind, seed uint64) (ExhaustFingerprint, *Violation) {
	var fp ExhaustFingerprint
	x := &exhauster{cfg: cfg, expect: map[string]string{}}
	if err := x.build(hk); err != nil {
		return fp, &Violation{Op: "setup", Msg: err.Error(), Err: err}
	}
	defer func() {
		if x.eng != nil {
			x.eng.Close()
		}
	}()
	rng := rand.New(rand.NewSource(int64(seed)))

	// Seed the live key-space.
	for i := 0; i < cfg.Keys; i++ {
		if err := x.put(fmt.Sprintf("k%04d", i), fmt.Sprintf("s%d.%d", seed, i)); err != nil {
			return fp, &Violation{Op: "seed", Msg: err.Error(), Err: err}
		}
	}

	// Deterministic ENOSPC via the fault-rule machinery: the next extent
	// allocation fails with storage.ErrNoSpace. All probe inserts ride ONE
	// uncommitted transaction, so no WAL flush runs while the rule is armed
	// and the first allocation is guaranteed to be a heap extent — the
	// typed error surfaces through the write, degrades the engine, and the
	// abort-boundary reclamation re-opens it (live bytes are far below soft
	// here). Class scoping would not help: a fresh-frontier allocation has
	// no class registered yet, so only AnyClass rules can match it.
	faultID := x.eng.Dev.ArmFault(ssd.FaultRule{
		Kind: ssd.FaultNoSpace, Class: ssd.AnyClass, Ops: []uint64{1},
	})
	probeTx := x.eng.Begin()
	var nospace error
	for i := 0; i < 500 && nospace == nil; i++ {
		// Fat rows force a fresh heap extent within a few inserts.
		_, _, err := x.tbl.Insert(probeTx, exRow(fmt.Sprintf("p%04d", i), strings.Repeat("y", 4000)))
		nospace = err
	}
	x.eng.Dev.DisarmFault(faultID)
	x.eng.Abort(probeTx)
	if nospace == nil {
		return fp, &Violation{Op: "enospc-probe", Msg: "armed FaultNoSpace never fired within 500 inserts"}
	}
	if !errors.Is(nospace, storage.ErrNoSpace) {
		return fp, &Violation{Op: "enospc-probe", Err: nospace,
			Msg: fmt.Sprintf("injected allocation failure surfaced as %v, want storage.ErrNoSpace", nospace)}
	}
	fp.NoSpaceInjected = x.eng.Dev.FaultCounters().Injected[ssd.FaultNoSpace]
	if fp.NoSpaceInjected == 0 {
		return fp, &Violation{Op: "enospc-probe", Msg: "FaultNoSpace counter did not advance"}
	}
	if x.eng.ReadOnly() {
		return fp, &Violation{Op: "enospc-probe",
			Msg: "engine still read-only after the injected ENOSPC was reclaimed away"}
	}
	if st := x.eng.SpaceInfo(); st.ROEntries == 0 {
		return fp, &Violation{Op: "enospc-probe", Msg: "injected ENOSPC never degraded the engine"}
	}
	if v := x.checkState("enospc-probe"); v != nil {
		return fp, v
	}

	// Fill to the hard watermark. The long-running reader pins the garbage
	// horizon and keeps the checkpoint busy, so the soft-watermark
	// reclamation passes cannot free anything — degradation is guaranteed.
	reader := x.eng.Begin()
	readerOpen := true
	defer func() {
		if readerOpen {
			x.eng.Abort(reader)
		}
	}()
	for fp.FillTxs = 0; fp.FillTxs < cfg.MaxTx && !x.eng.ReadOnly(); fp.FillTxs++ {
		key := fmt.Sprintf("k%04d", fp.FillTxs%cfg.Keys)
		val := fmt.Sprintf("u%d.%s", fp.FillTxs, strings.Repeat("x", 200+rng.Intn(120)))
		if err := x.put(key, val); err != nil {
			if errors.Is(err, db.ErrReadOnly) || errors.Is(err, storage.ErrNoSpace) {
				break
			}
			return fp, &Violation{Op: "fill", Msg: err.Error(), Err: err}
		}
	}
	if !x.eng.ReadOnly() {
		return fp, &Violation{Op: "fill",
			Msg: fmt.Sprintf("engine never degraded after %d update transactions (live=%d)", fp.FillTxs, x.eng.FM.LiveBytes())}
	}
	fp.LiveAtRO = x.eng.SpaceInfo().Live
	fp.WALAtRO = x.eng.WALDeviceBytes()

	// Degraded: writes fail fast with the typed error, reads stay
	// oracle-correct.
	tx := x.eng.Begin()
	if _, _, err := x.tbl.Insert(tx, exRow("nope", "x")); !errors.Is(err, db.ErrReadOnly) {
		x.eng.Abort(tx)
		return fp, &Violation{Op: "degraded", Err: err,
			Msg: fmt.Sprintf("insert while degraded returned %v, want db.ErrReadOnly", err)}
	}
	x.eng.Abort(tx)
	if v := x.checkState("degraded"); v != nil {
		return fp, v
	}
	if st := x.eng.SpaceInfo(); !st.ReadOnly {
		return fp, &Violation{Op: "degraded", Msg: fmt.Sprintf("space stats disagree with ReadOnly(): %+v", st)}
	}

	// Ending the reader unpins the horizon; its abort boundary retries
	// reclamation (checkpoint truncation, GC, vacuum) and the engine must
	// re-open with at least the soft-watermark headroom recovered.
	readerOpen = false
	x.eng.Abort(reader)
	st := x.eng.SpaceInfo()
	if st.ReadOnly {
		return fp, &Violation{Op: "reclaim", Msg: fmt.Sprintf("engine still read-only after reclamation: %+v", st)}
	}
	if st.Live >= st.Soft {
		return fp, &Violation{Op: "reclaim",
			Msg: fmt.Sprintf("reclamation left live=%d at or above soft=%d", st.Live, st.Soft)}
	}
	fp.LiveAfter = st.Live
	fp.WALAfter = x.eng.WALDeviceBytes()
	if fp.WALAfter >= fp.WALAtRO {
		return fp, &Violation{Op: "reclaim",
			Msg: fmt.Sprintf("checkpoint did not truncate the log: %d -> %d bytes", fp.WALAtRO, fp.WALAfter)}
	}

	// Writes resume.
	for i := 0; i < 5; i++ {
		if err := x.put(fmt.Sprintf("r%04d", i), fmt.Sprintf("resume%d", i)); err != nil {
			return fp, &Violation{Op: "resume", Msg: err.Error(), Err: err}
		}
	}
	if v := x.checkState("resume"); v != nil {
		return fp, v
	}
	fp.ROEntries = x.eng.SpaceInfo().ROEntries
	fp.ROExits = x.eng.SpaceInfo().ROExits
	fp.Reclaims = x.eng.SpaceInfo().Reclaims

	// Crash and recover from the checkpointed log: the snapshot fence plus
	// the post-checkpoint tail must rebuild exactly the oracle state.
	img := x.eng.LogImage()
	x.eng.Crash()
	x.eng = nil
	if err := x.build(hk); err != nil {
		return fp, &Violation{Op: "recover", Msg: "rebuild: " + err.Error(), Err: err}
	}
	applied, err := x.eng.Recover(img, map[string]*db.Table{"t": x.tbl})
	if err != nil {
		return fp, &Violation{Op: "recover", Msg: err.Error(), Err: err}
	}
	fp.RecoveredTxs = applied
	if v := x.checkState("recover"); v != nil {
		return fp, v
	}
	fp.StateHash = x.stateHash()
	return fp, nil
}

// exhaustStallProbe asserts the cancellable-stall contract: with the
// partition buffer wedged above its high watermark and eviction never
// catching up (a no-op background notifier), a write blocked in
// stallWait must return context.DeadlineExceeded when its transaction's
// deadline expires, and a Scan issued under that same spent deadline must
// surface the same error — the whole sequence bounded by 2x the deadline,
// i.e. the stall wake-up is prompt, not polled.
func exhaustStallProbe() *Violation {
	e := db.NewEngine(db.Config{BufferPages: 512, PartitionBufferBytes: 64 << 10})
	defer e.Close()
	tbl, err := e.NewTable("t", db.HeapHOT, db.IndexDef{
		Name: "pk", Kind: db.IdxMVPBT, RefMode: db.RefPhysical, Unique: true,
		Extract: keyExtract, BloomBits: 10,
	})
	if err != nil {
		return &Violation{Op: "stall", Msg: err.Error(), Err: err}
	}
	// Background mode whose eviction never runs: once usage crosses the
	// high watermark every insert stalls. Short stall timeouts let the fill
	// phase push past the watermark; the probe then raises the timeout so
	// only the context can end the stall.
	e.PBuf.SetNotifier(func() {})
	e.PBuf.SetStallTimeout(time.Millisecond)
	val := strings.Repeat("w", 512)
	for i := 0; e.PBuf.Used() < e.PBuf.High() && i < 10000; i++ {
		tx := e.Begin()
		if _, _, err := tbl.Insert(tx, exRow(fmt.Sprintf("k%05d", i), val)); err != nil {
			e.Abort(tx)
			return &Violation{Op: "stall", Msg: "fill: " + err.Error(), Err: err}
		}
		e.Commit(tx)
	}
	if e.PBuf.Used() < e.PBuf.High() {
		return &Violation{Op: "stall", Msg: "could not push the partition buffer past its high watermark"}
	}
	e.PBuf.SetStallTimeout(time.Minute)

	const deadline = 150 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	tx := e.BeginCtx(ctx)
	defer e.Abort(tx)
	_, _, err = tbl.Insert(tx, exRow("stalled", "z"))
	if !errors.Is(err, context.DeadlineExceeded) {
		return &Violation{Op: "stall", Err: err,
			Msg: fmt.Sprintf("stalled write returned %v, want context.DeadlineExceeded", err)}
	}
	if err := tbl.Scan(tx, tbl.Indexes()[0], nil, nil, false, func(db.RowRef) bool { return true }); !errors.Is(err, context.DeadlineExceeded) {
		return &Violation{Op: "stall", Err: err,
			Msg: fmt.Sprintf("scan under the spent deadline returned %v, want context.DeadlineExceeded", err)}
	}
	if elapsed := time.Since(start); elapsed > 2*deadline {
		return &Violation{Op: "stall",
			Msg: fmt.Sprintf("stall + scan took %v, want <= 2x the %v deadline", elapsed, deadline)}
	}
	return nil
}
