package check

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server"
	"mvpbt/internal/server/chaos"
	"mvpbt/internal/server/shardclient"
	"mvpbt/internal/shard"
	"mvpbt/internal/util"
)

// TwoPCCampaign drives the atomic cross-shard commit acceptance criterion
// (DESIGN.md §15): for every seed, a seeded history of single-key traffic
// and multi-shard transactions runs through a real TCP server whose router
// commits cross-shard groups via presumed-abort two-phase commit — and a
// deterministic crash PLAN kills the coordinator or a participant at every
// protocol step, rotating through
//
//	before-prepare (each shard)  — participant dies before voting
//	after-prepare  (each shard)  — participant dies holding a durable YES
//	before-decide                — coordinator dies undecided
//	after-decide                 — every participant dies after the commit
//	                               decision is durable, before learning it
//	before-forget                — coordinator dies before retiring the group
//
// plus standalone coordinator crashes between operations, all under the
// chaos listener. The run passes when
//
//   - every group is ATOMIC: the final clean scan matches the client-side
//     oracle exactly, so a group's keys are present both-or-neither — no
//     half-applied group, no acked-commit loss, no aborted group leaking;
//   - a group whose crash step precedes the decision NEVER applies
//     (presumed abort), and a group whose commit decision became durable
//     ALWAYS applies, however many participants died after voting;
//   - every in-doubt leg resolves: after each crash the campaign waits for
//     the restarted shards to finish coordinator-log resolution, and the
//     run ends with zero in-doubt transactions;
//   - the coordinator log retires exactly the groups whose forget step ran
//     (a before-forget crash leaves its — idempotent — decision live);
//
// and the seed passes determinism when a second full replay produces a
// byte-identical fingerprint.

// twoPCStep is one crash-injection point in the commit protocol.
type twoPCStep int

const (
	stepNone twoPCStep = iota
	stepBeforePrepare
	stepAfterPrepare
	stepBeforeDecide
	stepAfterDecide
	stepBeforeForget
	numTwoPCSteps
)

func (s twoPCStep) String() string {
	switch s {
	case stepNone:
		return "none"
	case stepBeforePrepare:
		return "before-prepare"
	case stepAfterPrepare:
		return "after-prepare"
	case stepBeforeDecide:
		return "before-decide"
	case stepAfterDecide:
		return "after-decide"
	case stepBeforeForget:
		return "before-forget"
	}
	return fmt.Sprintf("twoPCStep(%d)", int(s))
}

// twoPCPlanEntry assigns one commit group its crash step (and, for the
// per-participant steps, which shard dies).
type twoPCPlanEntry struct {
	step  twoPCStep
	shard int
}

// twoPCPlan is the rotation applied to commit groups in creation order:
// every protocol step crashes, on every shard where that makes sense,
// interleaved with clean groups so forget/ack bookkeeping is exercised too.
var twoPCPlan = []twoPCPlanEntry{
	{stepNone, 0},
	{stepBeforePrepare, 0},
	{stepAfterPrepare, 0},
	{stepNone, 0},
	{stepBeforeDecide, 0},
	{stepAfterPrepare, 1},
	{stepAfterDecide, 0},
	{stepNone, 0},
	{stepBeforeForget, 0},
	{stepBeforePrepare, 1},
}

// TwoPCConfig parameterizes a 2pc crash campaign.
type TwoPCConfig struct {
	Seeds []uint64
	// Ops is the per-run history length (default 160); roughly a quarter
	// are multi-shard transactions, so the default covers the 10-entry
	// crash plan about four times over.
	Ops int
	// Keys sizes the single-key background keyspace (default 96). Group
	// keys are fresh per group and live outside it.
	Keys int
	// Log, when set, receives one progress line per run pair.
	Log func(format string, args ...any)
}

func (c TwoPCConfig) withDefaults() TwoPCConfig {
	if c.Ops <= 0 {
		c.Ops = 160
	}
	if c.Keys <= 0 {
		c.Keys = 96
	}
	return c
}

// TwoPCFingerprint is everything two replays of one seed must agree on.
// Deliberately a pure function of the logical history and the crash plan:
// timing-sensitive counters (retries, reconnect totals, restart counts)
// are excluded, group OUTCOMES are not — a group that applied in one
// replay and aborted in the other is a mismatch.
type TwoPCFingerprint struct {
	// StateHash fingerprints the final clean scan; LiveKeys is its length.
	StateHash uint64
	LiveKeys  int
	// Acknowledged single-key traffic.
	SetsAcked, DelsAcked, GetsOK uint64
	// Multi-shard group outcomes: applied (directly or resolved through
	// the commit token), aborted by a pre-decision crash, lost before the
	// commit was issued.
	GroupsApplied, GroupsAborted, GroupsLost uint64
	// Crashes[s] counts injected crashes per twoPCStep; CoordCrashes the
	// standalone coordinator crash/recover cycles between operations.
	Crashes      [numTwoPCSteps]uint64
	CoordCrashes uint64
	// Coordinator-log end state: live (unretired) decisions must equal the
	// before-forget crash count, and the incarnation is one bump per
	// coordinator crash.
	LiveDecisions int
	Incarnation   uint64
	// InDoubtFinal must be zero: every leg resolved.
	InDoubtFinal int
}

// TwoPCRun is the outcome of one seed.
type TwoPCRun struct {
	Seed      uint64
	Fp        TwoPCFingerprint
	Violation string // first atomicity/durability/resolution failure ("" = ok)
	Mismatch  string // how the two replays diverged ("" = deterministic)
}

// TwoPCResult aggregates a campaign.
type TwoPCResult struct {
	Runs         []TwoPCRun
	Groups       uint64
	Crashes      uint64
	CoordCrashes uint64
	Violations   int
	Mismatches   int
}

// Failed reports whether any run broke atomicity, lost an acked commit,
// left a leg in doubt, or replayed nondeterministically.
func (c *TwoPCResult) Failed() bool { return c.Violations > 0 || c.Mismatches > 0 }

// TwoPCCampaign runs the campaign over every seed, twice per seed.
func TwoPCCampaign(cfg TwoPCConfig) TwoPCResult {
	cfg = cfg.withDefaults()
	var out TwoPCResult
	for _, seed := range cfg.Seeds {
		fp1, v1 := twoPCRun(seed, cfg)
		fp2, v2 := twoPCRun(seed, cfg)
		run := TwoPCRun{Seed: seed, Fp: fp1, Violation: v1}
		if v1 == "" && v2 != "" {
			run.Violation = "(2nd replay) " + v2
		}
		if fp1 != fp2 {
			run.Mismatch = fmt.Sprintf("%+v vs %+v", fp1, fp2)
		}
		out.Runs = append(out.Runs, run)
		out.Groups += fp1.GroupsApplied + fp1.GroupsAborted
		for _, n := range fp1.Crashes {
			out.Crashes += n
		}
		out.CoordCrashes += fp1.CoordCrashes
		if run.Violation != "" {
			out.Violations++
		}
		if run.Mismatch != "" {
			out.Mismatches++
		}
		if cfg.Log != nil {
			status := "ok"
			switch {
			case run.Violation != "":
				status = "VIOLATION: " + run.Violation
			case run.Mismatch != "":
				status = "NONDETERMINISTIC: " + run.Mismatch
			}
			cfg.Log("  seed=%d: groups[applied=%d aborted=%d lost=%d] crashes=%v coord-crashes=%d "+
				"live-decisions=%d live=%d hash=%016x — %s",
				seed, fp1.GroupsApplied, fp1.GroupsAborted, fp1.GroupsLost, fp1.Crashes,
				fp1.CoordCrashes, fp1.LiveDecisions, fp1.LiveKeys, fp1.StateHash, status)
		}
	}
	return out
}

// errSimCrash is the injected failure every crash hook returns.
var errSimCrash = errors.New("2pc campaign: simulated crash")

// twoPCRun executes one seeded history under the crash plan and returns
// its fingerprint plus the first violation.
func twoPCRun(seed uint64, cfg TwoPCConfig) (fp TwoPCFingerprint, violation string) {
	salt := fnv.New64a()
	salt.Write([]byte("2pc"))
	rng := util.NewRand(seed ^ salt.Sum64())

	// The crash hooks run on server goroutines, so everything they touch —
	// the router pointer, the gid→ordinal map, the per-step crash counters —
	// lives behind one mutex. Every hook maps its group to a plan entry by
	// CREATION ORDER; the serial client makes that order a pure function of
	// the history.
	var (
		mu      sync.Mutex
		rt      *shard.Router
		ordOf   = map[uint64]int{} // gid → group ordinal
		nGroups int
		crashes [numTwoPCSteps]uint64
	)
	// entryOf maps gid to its plan entry, assigning the ordinal on first
	// sight (BeforePrepare is the first hook every group fires).
	entryOf := func(gid uint64) (twoPCPlanEntry, *shard.Router) {
		mu.Lock()
		defer mu.Unlock()
		o, ok := ordOf[gid]
		if !ok {
			o = nGroups
			ordOf[gid] = o
			nGroups++
		}
		return twoPCPlan[o%len(twoPCPlan)], rt
	}
	// crash records one injection at step s and returns the error the hook
	// reports to the protocol.
	crash := func(s twoPCStep) error {
		mu.Lock()
		crashes[s]++
		mu.Unlock()
		return errSimCrash
	}
	groupCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return nGroups
	}
	hooks := shard.TwoPCHooks{
		BeforePrepare: func(gid uint64, sh int) error {
			if e, router := entryOf(gid); e.step == stepBeforePrepare && e.shard == sh {
				router.FailShard(sh, errSimCrash)
				return crash(stepBeforePrepare)
			}
			return nil
		},
		AfterPrepare: func(gid uint64, sh int) error {
			if e, _ := entryOf(gid); e.step == stepAfterPrepare && e.shard == sh {
				return crash(stepAfterPrepare) // commit2PC fails the shard itself
			}
			return nil
		},
		BeforeDecide: func(gid uint64) error {
			if e, router := entryOf(gid); e.step == stepBeforeDecide {
				router.CrashCoordinator() // undecided groups vanish: presumed abort
				return crash(stepBeforeDecide)
			}
			return nil
		},
		AfterDecide: func(gid uint64) error {
			if e, _ := entryOf(gid); e.step == stepAfterDecide {
				return crash(stepAfterDecide) // commit2PC fails every prepared leg
			}
			return nil
		},
		BeforeForget: func(gid uint64) error {
			if e, _ := entryOf(gid); e.step == stepBeforeForget {
				return crash(stepBeforeForget) // decision stays live in the coordinator log
			}
			return nil
		},
	}

	r, err := shard.New(shard.Config{
		Shards: 2,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
		Supervise: true,
		TwoPC:     hooks,
	})
	if err != nil {
		return fp, fmt.Sprintf("router: %v", err)
	}
	mu.Lock()
	rt = r
	mu.Unlock()
	defer r.Close()

	// A light chaos schedule keeps the wire layer honest without drowning
	// the crash plan: a few connection cuts, far apart, keyed by frame
	// index (deterministic against the serial history).
	sched := chaos.NewSchedule([]chaos.Rule{
		{Dir: chaos.Out, Frame: 23, Action: chaos.Cut},
		{Dir: chaos.In, Frame: 101, Action: chaos.Cut},
		{Dir: chaos.Out, Frame: 211, Action: chaos.Cut},
	})
	srv := server.New(r, server.Config{
		IdleTimeout:  30 * time.Second,
		WriteTimeout: 10 * time.Second,
		WrapListener: func(ln net.Listener) net.Listener { return chaos.Wrap(ln, sched) },
	})
	addr, err := srv.Listen()
	if err != nil {
		return fp, fmt.Sprintf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		<-serveDone
	}()

	rc := shardclient.NewRClient(shardclient.RConfig{
		Addr:        addr.String(),
		Tenant:      "2pc",
		Seed:        seed ^ salt.Sum64(),
		MaxAttempts: 12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		DialTimeout: 5 * time.Second,
		RetryWrites: true,
	})
	defer rc.Close()

	oracle := map[string]string{}
	fail := func(format string, args ...any) {
		if violation == "" {
			violation = fmt.Sprintf(format, args...)
		}
	}
	key := func() string { return fmt.Sprintf("c-%04d", rng.Intn(cfg.Keys)) }
	// groupKey mints a fresh key owned by the given shard: group keys are
	// never reused, so an atomicity breach shows up as a key that exists
	// when its group aborted (or half of a group that committed).
	groupKey := func(op, target int) string {
		for nonce := 0; ; nonce++ {
			k := fmt.Sprintf("g%04d-s%d-%d", op, target, nonce)
			if r.ShardOf([]byte(k)) == target {
				return k
			}
		}
	}
	// quiesce waits for every shard to be healthy with zero in-doubt legs —
	// the campaign's "recovery finished" barrier after each injected crash.
	quiesce := func() bool {
		deadline := time.Now().Add(10 * time.Second)
		for {
			ok := true
			for i := 0; i < r.NumShards(); i++ {
				if r.Health(i).State != shard.Healthy {
					ok = false
					break
				}
			}
			if ok && r.TwoPCInfo().InDoubt == 0 {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
	}

	for op := 0; op < cfg.Ops && violation == ""; op++ {
		if op%40 == 20 {
			// Standalone coordinator crash between operations: durable
			// decisions and retired groups must survive it, and the bumped
			// incarnation must keep new group ids collision-free.
			r.CrashCoordinator()
			fp.CoordCrashes++
		}
		switch roll := rng.Intn(100); {
		case roll < 45: // SET
			k, v := key(), fmt.Sprintf("v-%d-%04x", op, rng.Uint64()&0xffff)
			if err := rc.Set([]byte(k), []byte(v)); err != nil {
				fail("op %d: SET %s exhausted retries: %v", op, k, err)
				break
			}
			oracle[k] = v
			fp.SetsAcked++
		case roll < 65: // GET, verified against the oracle
			k := key()
			v, ok, err := rc.Get([]byte(k))
			if err != nil {
				fail("op %d: GET %s exhausted retries: %v", op, k, err)
				break
			}
			want, wantOK := oracle[k]
			if ok != wantOK || (ok && string(v) != want) {
				fail("op %d: GET %s = %q,%v, oracle %q,%v", op, k, v, ok, want, wantOK)
				break
			}
			if ok {
				fp.GetsOK++
			}
		case roll < 75: // DEL
			k := key()
			if err := rc.Del([]byte(k)); err != nil {
				fail("op %d: DEL %s exhausted retries: %v", op, k, err)
				break
			}
			delete(oracle, k)
			fp.DelsAcked++
		default: // multi-shard transaction: one fresh key on each shard
			k0, v0 := groupKey(op, 0), fmt.Sprintf("t0-%d-%04x", op, rng.Uint64()&0xffff)
			k1, v1 := groupKey(op, 1), fmt.Sprintf("t1-%d-%04x", op, rng.Uint64()&0xffff)
			before := groupCount()
			tx, err := rc.BeginTx()
			if err != nil {
				fail("op %d: BEGIN exhausted retries: %v", op, err)
				break
			}
			lost := false
			for _, p := range [][2]string{{k0, v0}, {k1, v1}} {
				if err := tx.Set([]byte(p[0]), []byte(p[1])); err != nil {
					if errors.Is(err, shardclient.ErrTxLost) {
						fp.GroupsLost++
						lost = true
						break
					}
					fail("op %d: tx SET %s: %v", op, p[0], err)
					lost = true
					break
				}
			}
			if lost {
				break
			}
			outcome, err := tx.Commit()
			applied := err == nil &&
				(outcome == shardclient.CommitApplied || outcome == shardclient.CommitResolvedApplied)
			if err != nil && errors.Is(err, shardclient.ErrTxLost) {
				fp.GroupsLost++
				break
			}
			if groupCount() == before {
				// The commit never reached 2PC (connection cut before the
				// server processed it, or a leg failed at Put time): no
				// group, no plan entry consumed — it must not have applied.
				if applied {
					fail("op %d: commit applied without a 2PC group", op)
				}
				fp.GroupsLost++
				break
			}
			entry := twoPCPlan[before%len(twoPCPlan)]
			switch entry.step {
			case stepBeforePrepare, stepBeforeDecide:
				// Crash before the decision: presumed abort, must never apply.
				if applied {
					fail("op %d: group %d applied despite %v crash", op, before, entry.step)
					break
				}
				fp.GroupsAborted++
			case stepAfterPrepare, stepAfterDecide, stepBeforeForget:
				// The commit decision becomes durable: must always apply,
				// however many participants died after voting.
				if !applied {
					fail("op %d: group %d lost despite durable commit decision (%v crash): outcome=%v err=%v",
						op, before, entry.step, outcome, err)
					break
				}
				fp.GroupsApplied++
				oracle[k0], oracle[k1] = v0, v1
			default: // clean group: whatever the wire decided, atomically
				if applied {
					fp.GroupsApplied++
					oracle[k0], oracle[k1] = v0, v1
				} else {
					fp.GroupsAborted++
				}
			}
			if entry.step != stepNone && !quiesce() {
				fail("op %d: shards did not quiesce after %v crash (in-doubt=%d)",
					op, entry.step, r.TwoPCInfo().InDoubt)
			}
		}
	}

	// History over: let every restart and in-doubt resolution finish, then
	// verify on a clean connection that exactly the oracle survived.
	if violation == "" && !quiesce() {
		fail("final quiescence timeout (in-doubt=%d)", r.TwoPCInfo().InDoubt)
	}
	sched.Disarm()
	rc.Close()
	cc, err := shardclient.Dial(addr.String(), "verify")
	if err != nil {
		return fp, firstOf(violation, fmt.Sprintf("clean dial: %v", err))
	}
	defer cc.Close()
	got, err := cc.Scan(0, nil, len(oracle)+16)
	if err != nil {
		return fp, firstOf(violation, fmt.Sprintf("clean scan: %v", err))
	}
	want := oracleSlice(oracle, "", len(oracle)+1)
	if len(got) != len(want) {
		fail("final state: %d live keys, oracle %d — a group applied partially or an acked write was lost",
			len(got), len(want))
	} else {
		for i := range got {
			if string(got[i].Key) != want[i][0] || string(got[i].Val) != want[i][1] {
				fail("final state[%d]: %s=%s, oracle %s=%s",
					i, got[i].Key, got[i].Val, want[i][0], want[i][1])
				break
			}
		}
	}
	h := fnv.New64a()
	for _, kv := range got {
		h.Write(kv.Key)
		h.Write([]byte{0})
		h.Write(kv.Val)
		h.Write([]byte{0})
	}
	fp.StateHash = h.Sum64()
	fp.LiveKeys = len(got)
	mu.Lock()
	fp.Crashes = crashes
	mu.Unlock()

	info := r.TwoPCInfo()
	fp.LiveDecisions = info.Coordinator.LiveDecisions
	fp.Incarnation = info.Coordinator.Incarnation
	fp.InDoubtFinal = info.InDoubt
	if fp.InDoubtFinal != 0 {
		fail("final state: %d transaction(s) still in doubt", fp.InDoubtFinal)
	}
	if uint64(fp.LiveDecisions) != fp.Crashes[stepBeforeForget] {
		fail("coordinator log holds %d live decisions, want %d (one per before-forget crash)",
			fp.LiveDecisions, fp.Crashes[stepBeforeForget])
	}
	if want := 1 + fp.CoordCrashes + fp.Crashes[stepBeforeDecide]; fp.Incarnation != want {
		fail("coordinator incarnation %d, want %d (one bump per crash)", fp.Incarnation, want)
	}
	for s := stepBeforePrepare; s < numTwoPCSteps; s++ {
		if fp.Crashes[s] < 2 {
			fail("crash step %v exercised %d time(s), want >= 2 (history too short?)", s, fp.Crashes[s])
		}
	}
	return fp, violation
}
