package check

import (
	"fmt"
	"strings"
	"testing"

	"mvpbt/internal/db"
	"mvpbt/internal/ssd"
)

// TestHarnessSmoke replays a moderately long generated history on every
// heap-layout × maintenance-mode combination and expects zero invariant
// violations. This is the tier-1 entry point for the differential harness;
// cmd/mvpbt-check runs the same machinery at much larger op counts.
func TestHarnessSmoke(t *testing.T) {
	for _, heap := range []db.HeapKind{db.HeapHOT, db.HeapSIAS} {
		for _, bg := range []bool{false, true} {
			heap, bg := heap, bg
			t.Run(fmt.Sprintf("heap=%v/background=%v", heap, bg), func(t *testing.T) {
				t.Parallel()
				res := Run(RunConfig{
					Heap:       heap,
					Seed:       1,
					Ops:        1500,
					Clients:    3,
					Keys:       60,
					Crashes:    2,
					Background: bg,
				})
				if res.Violation != nil {
					t.Fatalf("violation: %v", res.Violation)
				}
				if res.Ops != 1500 {
					t.Fatalf("executed %d ops, want 1500", res.Ops)
				}
				if res.Crashes != 2 {
					t.Fatalf("executed %d crash-recoveries, want 2", res.Crashes)
				}
				if res.Audits == 0 || res.Conflicts == 0 {
					t.Fatalf("run exercised nothing: %d audits, %d conflicts", res.Audits, res.Conflicts)
				}
			})
		}
	}
}

// TestSeededVisibilityFaultCaughtAndShrunk seeds a deliberate visibility
// bug through the test-only mutation hook (decisions for records created
// by every FaultEvery-th transaction are inverted) and asserts that the
// harness (a) catches it and (b) shrinks the failure to a tiny history.
func TestSeededVisibilityFaultCaughtAndShrunk(t *testing.T) {
	cfg := RunConfig{
		Heap:       db.HeapHOT,
		Seed:       1,
		Ops:        400,
		Clients:    3,
		Keys:       40,
		FaultEvery: 3,
	}
	ops := History(cfg)
	res := Replay(cfg, ops)
	if res.Violation == nil {
		t.Fatal("seeded visibility fault was not caught")
	}
	min := Shrink(cfg, ops[:res.Ops], 0)
	if len(min) > 25 {
		t.Fatalf("shrunk history has %d ops, want <= 25:\n%s", len(min), FormatOps(min))
	}
	sc := cfg
	sc.StepAudit = true
	if r := Replay(sc, min); r.Violation == nil {
		t.Fatalf("shrunk history no longer fails:\n%s", FormatOps(min))
	}
}

// TestFaultCampaignSmoke is the tier-1 slice of the fault campaign
// (cmd/mvpbt-check -faults runs it at ≥8 seeds): fault-punctuated
// histories on both heap layouts must hold oracle lockstep — every
// injected read error, write error, torn commit flush and bit rot either
// masked (retry, checksum quarantine-rebuild) or absorbed by a
// crash-recovery, never silent corruption — and replay 100%
// deterministically. The campaign must also have actually exercised all
// four fault kinds and both recovery mechanisms.
func TestFaultCampaignSmoke(t *testing.T) {
	var lines []string
	res := FaultCampaign(CampaignConfig{
		Seeds: []uint64{1, 2, 3}, Ops: 700, Clients: 3, Keys: 60, Crashes: 1,
		Log: func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) },
	})
	if res.Failed() {
		t.Fatalf("campaign failed (%d violations, %d nondeterministic):\n%s",
			res.Violations, res.Mismatches, strings.Join(lines, "\n"))
	}
	for k := 0; k < ssd.NumFaultKinds; k++ {
		if ssd.FaultKind(k) == ssd.FaultNoSpace {
			continue // ENOSPC is exercised by the exhaustion campaign
		}
		if res.Faults.Injected[k] == 0 {
			t.Fatalf("fault kind %v never injected: [%v]", ssd.FaultKind(k), res.Faults)
		}
	}
	if res.Recoveries == 0 {
		t.Fatal("no fault ever escalated to a crash-recovery")
	}
	if res.Rebuilds == 0 {
		t.Fatal("no index rot was ever quarantined and rebuilt")
	}
}

// TestFaultHistoryGenerationBackwardCompatible: turning Faults off must
// keep history generation byte-identical to the pre-fault generator, so
// existing seeds stay reproducible.
func TestFaultHistoryGenerationBackwardCompatible(t *testing.T) {
	plain := Generate(GenConfig{Seed: 42, Ops: 500})
	for _, op := range plain {
		if op.Kind >= OpFaultRead {
			t.Fatalf("fault op %v generated without Faults", op.Kind)
		}
	}
	faulty := Generate(GenConfig{Seed: 42, Ops: 500, Faults: true})
	n := 0
	for _, op := range faulty {
		if op.Kind >= OpFaultRead {
			n++
		}
	}
	if n == 0 {
		t.Fatal("Faults generated no fault ops")
	}
}

// TestShrinkPreservesFailure shrinks a real violation-free history with a
// fault injected only during shrinking — the shrinker must return the
// input unchanged when the failure is not reproducible.
func TestShrinkIrreproducibleReturnsInput(t *testing.T) {
	cfg := RunConfig{Heap: db.HeapHOT, Seed: 2, Ops: 60, Clients: 2, Keys: 10}
	ops := History(cfg)
	min := Shrink(cfg, ops, 10)
	if len(min) != len(ops) {
		t.Fatalf("shrinker altered a non-failing history: %d -> %d ops", len(ops), len(min))
	}
}
