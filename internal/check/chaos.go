package check

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server"
	"mvpbt/internal/server/chaos"
	"mvpbt/internal/server/shardclient"
	"mvpbt/internal/shard"
	"mvpbt/internal/util"
)

// ChaosCampaign drives the network-resilience acceptance criterion
// (DESIGN.md §14): for every seed × chaos kind, a seeded history is run by
// a self-healing client through a REAL TCP server whose listener injects a
// deterministic schedule of connection resets, mid-frame truncations and
// read/write stalls. The run passes when
//
//   - every acknowledged operation survives: after the schedule is
//     disarmed, a clean client's full scan matches the client-side oracle
//     exactly — an acked SET/DEL/COMMIT is never lost, and nothing the
//     oracle doesn't know about leaks in (an unacked autocommit write may
//     only exist if its retry later acked it, which the oracle records);
//   - every unacked COMMIT resolves one way: a commit whose connection died
//     mid-decision is driven to CommitResolvedApplied or CommitNotApplied
//     via its idempotent token, and the split is reported;
//
// and the (kind, seed) pair passes determinism when a second full replay —
// fresh router, fresh server, fresh schedule, same seed — produces a
// byte-identical fingerprint: same final state hash, same per-action
// injection counters, same reconnect/retry/resolution counts. Chaos rules
// are keyed by protocol frame index (see package chaos), which is what
// makes the injection points a pure function of the logical history rather
// than of kernel scheduling.

// ChaosKinds are the chaos flavors a campaign cycles through.
var ChaosKinds = []string{"reset", "truncate", "stall", "mixed"}

// ChaosConfig parameterizes a chaos campaign.
type ChaosConfig struct {
	Seeds []uint64
	// Ops is the per-run history length (default 240).
	Ops int
	// Keys is the key-space size (default 120).
	Keys int
	// Kinds selects chaos flavors (default ChaosKinds).
	Kinds []string
	// Log, when set, receives one progress line per run pair.
	Log func(format string, args ...any)
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Ops <= 0 {
		c.Ops = 240
	}
	if c.Keys <= 0 {
		c.Keys = 120
	}
	if len(c.Kinds) == 0 {
		c.Kinds = ChaosKinds
	}
	return c
}

// ChaosFingerprint is everything two replays of one (kind, seed) must agree
// on, byte for byte. Every field is a pure function of the logical history
// and the schedule — no wall-clock, no port numbers, no syscall counts.
type ChaosFingerprint struct {
	// StateHash fingerprints the post-chaos full scan (FNV-1a over the
	// sorted key/value pairs); LiveKeys is its length.
	StateHash uint64
	LiveKeys  int
	// Acknowledged operations (these define what the oracle holds).
	SetsAcked, DelsAcked, GetsOK, Scans uint64
	// Transaction outcomes: directly acked, resolved-as-applied after a
	// lost ack, resolved-as-lost after a lost request, and lost before the
	// commit was ever issued (deterministically not applied).
	TxApplied, TxResolvedApplied, TxResolvedLost, TxLost uint64
	// Chaos counts what the schedule injected and how many frames flowed.
	Chaos chaos.Stats
	// Client self-healing counters.
	Dials, Reconnects, RetriedOps, Resolves uint64
}

// ChaosRun is the outcome of one (kind, seed) pair.
type ChaosRun struct {
	Kind string
	Seed uint64
	Fp   ChaosFingerprint
	// Violation is the first acked-durability or verification failure ("" = ok).
	Violation string
	// Mismatch describes how the two replays diverged ("" = deterministic).
	Mismatch string
}

// ChaosResult aggregates a campaign.
type ChaosResult struct {
	Runs       []ChaosRun
	Cuts       uint64
	Truncs     uint64
	Stalls     uint64
	Reconnects uint64
	Resolves   uint64
	Violations int
	Mismatches int
}

// Failed reports whether any run lost an acked write, left a commit
// unresolved, or replayed nondeterministically.
func (c *ChaosResult) Failed() bool { return c.Violations > 0 || c.Mismatches > 0 }

// ChaosCampaign runs the campaign over every kind × seed.
func ChaosCampaign(cfg ChaosConfig) ChaosResult {
	cfg = cfg.withDefaults()
	var out ChaosResult
	for _, kind := range cfg.Kinds {
		for _, seed := range cfg.Seeds {
			fp1, v1 := chaosRun(kind, seed, cfg)
			fp2, v2 := chaosRun(kind, seed, cfg)
			run := ChaosRun{Kind: kind, Seed: seed, Fp: fp1, Violation: v1}
			if v1 == "" && v2 != "" {
				run.Violation = "(2nd replay) " + v2
			}
			if fp1 != fp2 {
				run.Mismatch = fmt.Sprintf("%+v vs %+v", fp1, fp2)
			}
			out.Runs = append(out.Runs, run)
			out.Cuts += fp1.Chaos.Cuts
			out.Truncs += fp1.Chaos.Truncations
			out.Stalls += fp1.Chaos.Stalls
			out.Reconnects += fp1.Reconnects
			out.Resolves += fp1.Resolves
			if run.Violation != "" {
				out.Violations++
			}
			if run.Mismatch != "" {
				out.Mismatches++
			}
			if cfg.Log != nil {
				status := "ok"
				switch {
				case run.Violation != "":
					status = "VIOLATION: " + run.Violation
				case run.Mismatch != "":
					status = "NONDETERMINISTIC: " + run.Mismatch
				}
				cfg.Log("  kind=%-8s seed=%d: cuts=%d truncs=%d stalls=%d reconnects=%d "+
					"tx[acked=%d resolved-applied=%d resolved-lost=%d lost=%d] live=%d hash=%016x — %s",
					kind, seed, fp1.Chaos.Cuts, fp1.Chaos.Truncations, fp1.Chaos.Stalls,
					fp1.Reconnects, fp1.TxApplied, fp1.TxResolvedApplied, fp1.TxResolvedLost,
					fp1.TxLost, fp1.LiveKeys, fp1.StateHash, status)
			}
		}
	}
	return out
}

// chaosRules builds kind's seeded schedule. Frame indices start past the
// handshake and are spaced so the client's bounded retry budget always
// outlasts the worst contiguous burst a single operation can see.
func chaosRules(kind string, rng *util.Rand) []chaos.Rule {
	n := 5 + rng.Intn(5)
	frame := uint64(4 + rng.Intn(6))
	rules := make([]chaos.Rule, 0, n)
	for i := 0; i < n; i++ {
		dir := chaos.In
		if rng.Intn(2) == 1 {
			dir = chaos.Out
		}
		var action chaos.Action
		switch kind {
		case "reset":
			action = chaos.Cut
		case "truncate":
			action = chaos.Truncate
		case "stall":
			action = chaos.Stall
		default: // mixed
			action = chaos.Action(rng.Intn(3))
		}
		rules = append(rules, chaos.Rule{
			Dir:        dir,
			Frame:      frame,
			Action:     action,
			TruncBytes: 1 + rng.Intn(12),
			StallFor:   time.Duration(1+rng.Intn(3)) * time.Millisecond,
		})
		frame += uint64(6 + rng.Intn(30))
	}
	return rules
}

// chaosRun executes one seeded history under one seeded schedule and
// returns its fingerprint plus the first violation.
func chaosRun(kind string, seed uint64, cfg ChaosConfig) (fp ChaosFingerprint, violation string) {
	salt := fnv.New64a()
	salt.Write([]byte(kind))
	rng := util.NewRand(seed ^ salt.Sum64())

	r, err := shard.New(shard.Config{
		Shards: 2,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
		Supervise: true,
	})
	if err != nil {
		return fp, fmt.Sprintf("router: %v", err)
	}
	defer r.Close()

	sched := chaos.NewSchedule(chaosRules(kind, rng))
	srv := server.New(r, server.Config{
		// Timing knobs sized so no injected stall (≤3ms) can flip a
		// deadline outcome: determinism must not hinge on scheduler luck.
		IdleTimeout:  30 * time.Second,
		WriteTimeout: 10 * time.Second,
		WrapListener: func(ln net.Listener) net.Listener { return chaos.Wrap(ln, sched) },
	})
	addr, err := srv.Listen()
	if err != nil {
		return fp, fmt.Sprintf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		<-serveDone
	}()

	rc := shardclient.NewRClient(shardclient.RConfig{
		Addr:   addr.String(),
		Tenant: "chaos",
		Seed:   seed ^ salt.Sum64(),
		// The retry budget must outlast the worst contiguous injection
		// burst one operation can see (every rule fires at most once).
		MaxAttempts: 12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		DialTimeout: 5 * time.Second,
		RetryWrites: true, // this client owns every key it writes
	})
	defer rc.Close()

	// oracle is what the client has been ACKED: exactly the state the
	// post-chaos scan must show.
	oracle := map[string]string{}
	fail := func(format string, args ...any) {
		if violation == "" {
			violation = fmt.Sprintf(format, args...)
		}
	}
	key := func() string { return fmt.Sprintf("c-%04d", rng.Intn(cfg.Keys)) }

	for op := 0; op < cfg.Ops && violation == ""; op++ {
		switch roll := rng.Intn(100); {
		case roll < 50: // SET
			k, v := key(), fmt.Sprintf("v-%d-%04x", op, rng.Uint64()&0xffff)
			if err := rc.Set([]byte(k), []byte(v)); err != nil {
				fail("op %d: SET %s exhausted retries: %v", op, k, err)
				break
			}
			oracle[k] = v
			fp.SetsAcked++
		case roll < 65: // GET, verified against the oracle
			k := key()
			v, ok, err := rc.Get([]byte(k))
			if err != nil {
				fail("op %d: GET %s exhausted retries: %v", op, k, err)
				break
			}
			want, wantOK := oracle[k]
			if ok != wantOK || (ok && string(v) != want) {
				fail("op %d: GET %s = %q,%v, oracle %q,%v", op, k, v, ok, want, wantOK)
				break
			}
			if ok {
				fp.GetsOK++
			}
		case roll < 75: // SCAN, verified against the oracle
			lo := key()
			got, err := rc.Scan([]byte(lo), 20)
			if err != nil {
				fail("op %d: SCAN %s exhausted retries: %v", op, lo, err)
				break
			}
			want := oracleSlice(oracle, lo, 20)
			if len(got) != len(want) {
				fail("op %d: SCAN %s: %d pairs, oracle %d", op, lo, len(got), len(want))
				break
			}
			for i := range got {
				if string(got[i].Key) != want[i][0] || string(got[i].Val) != want[i][1] {
					fail("op %d: SCAN %s[%d] = %s=%s, oracle %s=%s",
						op, lo, i, got[i].Key, got[i].Val, want[i][0], want[i][1])
					break
				}
			}
			fp.Scans++
		case roll < 80: // DEL
			k := key()
			if err := rc.Del([]byte(k)); err != nil {
				fail("op %d: DEL %s exhausted retries: %v", op, k, err)
				break
			}
			delete(oracle, k)
			fp.DelsAcked++
		default: // transaction: 2-4 SETs under one token commit
			n := 2 + rng.Intn(3)
			pending := make([][2]string, 0, n)
			for i := 0; i < n; i++ {
				pending = append(pending,
					[2]string{key(), fmt.Sprintf("t-%d-%d-%04x", op, i, rng.Uint64()&0xffff)})
			}
			tx, err := rc.BeginTx()
			if err != nil {
				fail("op %d: BEGIN exhausted retries: %v", op, err)
				break
			}
			lost := false
			for _, p := range pending {
				if err := tx.Set([]byte(p[0]), []byte(p[1])); err != nil {
					if errors.Is(err, shardclient.ErrTxLost) {
						// The server aborts the orphan with the session:
						// deterministically not applied.
						fp.TxLost++
						lost = true
						break
					}
					fail("op %d: tx SET %s: %v", op, p[0], err)
					lost = true
					break
				}
			}
			if lost {
				break
			}
			outcome, err := tx.Commit()
			switch {
			case err == nil && outcome == shardclient.CommitApplied:
				fp.TxApplied++
			case err == nil && outcome == shardclient.CommitResolvedApplied:
				fp.TxResolvedApplied++
			case err == nil && outcome == shardclient.CommitNotApplied:
				fp.TxResolvedLost++
			case errors.Is(err, shardclient.ErrTxLost):
				fp.TxLost++
			default:
				// An unresolved in-doubt commit is exactly what the token
				// machinery exists to prevent.
				fail("op %d: COMMIT unresolved: %v", op, err)
			}
			if err == nil && (outcome == shardclient.CommitApplied || outcome == shardclient.CommitResolvedApplied) {
				for _, p := range pending {
					oracle[p[0]] = p[1]
				}
			}
		}
	}

	// Chaos over: verify every acked write survived, on a clean connection.
	sched.Disarm()
	rc.Close()
	cc, err := shardclient.Dial(addr.String(), "verify")
	if err != nil {
		return fp, firstOf(violation, fmt.Sprintf("clean dial: %v", err))
	}
	defer cc.Close()
	got, err := cc.Scan(0, nil, cfg.Keys*4)
	if err != nil {
		return fp, firstOf(violation, fmt.Sprintf("clean scan: %v", err))
	}
	want := oracleSlice(oracle, "", len(oracle)+1)
	if len(got) != len(want) {
		fail("final state: %d live keys, oracle %d", len(got), len(want))
	} else {
		for i := range got {
			if string(got[i].Key) != want[i][0] || string(got[i].Val) != want[i][1] {
				fail("final state[%d]: %s=%s, oracle %s=%s",
					i, got[i].Key, got[i].Val, want[i][0], want[i][1])
				break
			}
		}
	}
	h := fnv.New64a()
	for _, kv := range got {
		h.Write(kv.Key)
		h.Write([]byte{0})
		h.Write(kv.Val)
		h.Write([]byte{0})
	}
	fp.StateHash = h.Sum64()
	fp.LiveKeys = len(got)
	fp.Chaos = sched.Stats()
	st := rc.Stats()
	fp.Dials, fp.Reconnects, fp.RetriedOps, fp.Resolves =
		st.Dials, st.Reconnects, st.RetriedOps, st.Resolves
	return fp, violation
}

// oracleSlice returns up to limit oracle pairs with key >= lo in key order.
func oracleSlice(oracle map[string]string, lo string, limit int) [][2]string {
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		if k >= lo {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([][2]string, len(keys))
	for i, k := range keys {
		out[i] = [2]string{k, oracle[k]}
	}
	return out
}

func firstOf(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
