package check

import (
	"bytes"
	"testing"

	"mvpbt/internal/txn"
)

// otx fabricates an engine-shaped transaction handle for direct oracle
// tests: Xmax is the transaction's own id (as the engine's Begin does) and
// active lists the concurrently open transactions at snapshot time.
func otx(id txn.TxID, active ...txn.TxID) *txn.Tx {
	return &txn.Tx{ID: id, Snap: txn.Snapshot{Xmin: 1, Xmax: id, Active: active}}
}

func row(key, val string) []byte {
	r := []byte{byte(len(key))}
	r = append(r, key...)
	return append(r, val...)
}

func rowsOf(vrs []VisRow) []string {
	var out []string
	for _, vr := range vrs {
		out = append(out, string(vr.Row))
	}
	return out
}

func TestOracleSnapshotVisibility(t *testing.T) {
	o := NewOracle(keyExtract)

	// T2 inserts and commits k1.
	o.Begin(otx(2))
	o.Insert(2, row("k1", "v1"))
	o.Commit(2)

	// T3 opens after the commit: sees v1. T4 opens with T3 active.
	o.Begin(otx(3))
	if got := rowsOf(o.LookupVisible(3, []byte("k1"))); len(got) != 1 || got[0] != string(row("k1", "v1")) {
		t.Fatalf("T3 sees %v, want [k1v1]", got)
	}

	// T3 updates k1 but has not committed: T4 must still see v1, T3 its own v2.
	tup := o.TupleByRow(row("k1", "v1"))
	if tup == nil {
		t.Fatal("tuple not found")
	}
	if !o.Write(3, tup, row("k1", "v2")) {
		t.Fatal("T3 update unexpectedly conflicted")
	}
	o.Begin(otx(4, 3))
	if got := rowsOf(o.LookupVisible(4, []byte("k1"))); len(got) != 1 || got[0] != string(row("k1", "v1")) {
		t.Fatalf("T4 sees %v, want old version while T3 uncommitted", got)
	}
	if got := rowsOf(o.LookupVisible(3, []byte("k1"))); len(got) != 1 || got[0] != string(row("k1", "v2")) {
		t.Fatalf("T3 sees %v, want its own write", got)
	}

	// Even after T3 commits, T4's snapshot listed T3 active: still v1.
	o.Commit(3)
	if got := rowsOf(o.LookupVisible(4, []byte("k1"))); len(got) != 1 || got[0] != string(row("k1", "v1")) {
		t.Fatalf("T4 sees %v after T3 commit, want snapshot-time version", got)
	}

	// A transaction opened after the commit sees v2.
	o.Begin(otx(5))
	if got := rowsOf(o.LookupVisible(5, []byte("k1"))); len(got) != 1 || got[0] != string(row("k1", "v2")) {
		t.Fatalf("T5 sees %v, want committed update", got)
	}
}

func TestOracleFirstUpdaterWins(t *testing.T) {
	o := NewOracle(keyExtract)
	o.Begin(otx(2))
	tup := o.Insert(2, row("k1", "v1"))
	o.Commit(2)

	// T3 and T4 both open, T3 updates first (uncommitted).
	o.Begin(otx(3))
	o.Begin(otx(4, 3))
	if !o.Write(3, tup, row("k1", "v3")) {
		t.Fatal("first updater should win")
	}
	// T4 conflicts against the in-progress invalidation...
	if o.Write(4, tup, row("k1", "v4")) {
		t.Fatal("second updater should conflict while first is in progress")
	}
	// ...and still after it commits.
	o.Commit(3)
	if o.Write(4, tup, row("k1", "v4")) {
		t.Fatal("second updater should conflict after first commits")
	}

	// But when the first updater aborts, the second may proceed.
	o.Begin(otx(5))
	o.Begin(otx(6, 5))
	if !o.Write(5, tup, row("k1", "v5")) {
		t.Fatal("T5 update should succeed")
	}
	o.Abort(5)
	if !o.Write(6, tup, row("k1", "v6")) {
		t.Fatal("aborted invalidation must not block a new updater")
	}
}

func TestOracleOccupied(t *testing.T) {
	o := NewOracle(keyExtract)
	if o.Occupied([]byte("k1")) {
		t.Fatal("empty oracle reports k1 occupied")
	}
	o.Begin(otx(2))
	tup := o.Insert(2, row("k1", "v1"))
	if !o.Occupied([]byte("k1")) {
		t.Fatal("uncommitted insert should occupy the key (it may commit)")
	}
	o.Commit(2)
	if !o.Occupied([]byte("k1")) {
		t.Fatal("committed row should occupy the key")
	}
	// An uncommitted delete still occupies (it may abort) ...
	o.Begin(otx(3))
	if !o.Write(3, tup, nil) {
		t.Fatal("delete failed")
	}
	if !o.Occupied([]byte("k1")) {
		t.Fatal("uncommitted delete should keep the key occupied")
	}
	// ... a committed delete frees it.
	o.Commit(3)
	if o.Occupied([]byte("k1")) {
		t.Fatal("committed delete should free the key")
	}
	// An aborted insert never occupies.
	o.Begin(otx(4))
	o.Insert(4, row("k2", "v1"))
	o.Abort(4)
	if o.Occupied([]byte("k2")) {
		t.Fatal("aborted insert should not occupy the key")
	}
}

func TestOracleRestart(t *testing.T) {
	o := NewOracle(keyExtract)
	o.Begin(otx(2))
	o.Insert(2, row("k1", "v1"))
	o.Commit(2)
	o.Begin(otx(3))
	surv := o.Insert(3, row("k2", "v1"))
	o.Commit(3)
	o.Begin(otx(4))
	o.Write(4, surv, row("k2", "v2")) // uncommitted update: lost on crash
	o.Begin(otx(5))
	o.Insert(5, row("k3", "v1")) // uncommitted insert: lost on crash

	o.Restart()

	rows := rowsOf(o.CommittedRows())
	want := []string{string(row("k1", "v1")), string(row("k2", "v1"))}
	if len(rows) != len(want) || rows[0] != want[0] || rows[1] != want[1] {
		t.Fatalf("post-restart committed rows %v, want %v", rows, want)
	}
	// Survivors are reborn as bootTxID versions visible to a fresh snapshot.
	o.Begin(otx(7))
	if got := rowsOf(o.ScanVisible(7, []byte("k"), nil)); len(got) != 2 {
		t.Fatalf("fresh snapshot sees %v, want both survivors", got)
	}
	// The uncommitted update and insert are gone for good.
	if o.TupleByRow(row("k2", "v2")) != nil || o.TupleByRow(row("k3", "v1")) != nil {
		t.Fatal("in-flight writes survived the restart")
	}
}

func TestUniquePerKey(t *testing.T) {
	mk := func(key, val string, create txn.TxID) VisRow {
		return VisRow{Tuple: &Tuple{}, Row: row(key, val), Create: create}
	}
	in := []VisRow{
		mk("a", "1", 5),
		mk("b", "1", 3),
		mk("b", "2", 7), // newer creator decides key b
		mk("b", "3", 6),
		mk("c", "1", 2),
	}
	out := UniquePerKey(keyExtract, in)
	if len(out) != 3 {
		t.Fatalf("got %d rows, want 3", len(out))
	}
	wantRows := [][]byte{row("a", "1"), row("b", "2"), row("c", "1")}
	for i, w := range wantRows {
		if !bytes.Equal(out[i].Row, w) {
			t.Fatalf("row %d: got %q, want %q", i, out[i].Row, w)
		}
	}
	if out := UniquePerKey(keyExtract, nil); out != nil {
		t.Fatalf("empty input should stay empty, got %v", out)
	}
}
