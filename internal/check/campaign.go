package check

import (
	"fmt"

	"mvpbt/internal/db"
	"mvpbt/internal/ssd"
)

// FaultCampaign drives the fault-injection acceptance criterion: for every
// seed × heap layout, a fault-punctuated history is generated once and
// replayed TWICE. A run passes when lockstep with the oracle holds under
// every injected fault (masked or recovered, never silent corruption), and
// the pair passes when both replays observed byte-for-byte identical fault
// behaviour — same per-kind injection counters, same crash/recovery counts,
// same final state hash. Maintenance runs synchronously: background timing
// would make the I/O interleaving, and with it the fault schedule, racy.

// CampaignConfig parameterizes a fault campaign.
type CampaignConfig struct {
	Seeds   []uint64
	Ops     int
	Clients int
	Keys    int
	Crashes int
	// Log, when set, receives one progress line per run pair.
	Log func(format string, args ...any)
}

// CampaignRun is the outcome of one (heap, seed) pair: the first replay's
// result plus the determinism verdict against the second.
type CampaignRun struct {
	Heap db.HeapKind
	Seed uint64
	Res  Result
	// Mismatch describes how the two replays diverged ("" = deterministic).
	Mismatch string
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Runs       []CampaignRun
	Faults     ssd.FaultCounters // injected across all runs (first replays)
	Recoveries int
	Rebuilds   int64
	Violations int
	Mismatches int
}

// Failed reports whether any run violated an invariant or replayed
// nondeterministically.
func (c *CampaignResult) Failed() bool { return c.Violations > 0 || c.Mismatches > 0 }

// FaultCampaign runs the campaign over both heap layouts.
func FaultCampaign(cfg CampaignConfig) CampaignResult {
	var out CampaignResult
	for _, hk := range []db.HeapKind{db.HeapHOT, db.HeapSIAS} {
		for _, seed := range cfg.Seeds {
			rc := RunConfig{
				Heap: hk, Seed: seed, Ops: cfg.Ops, Clients: cfg.Clients,
				Keys: cfg.Keys, Crashes: cfg.Crashes, Faults: true,
			}
			ops := History(rc)
			r1 := Replay(rc, ops)
			r2 := Replay(rc, ops)
			run := CampaignRun{Heap: hk, Seed: seed, Res: r1, Mismatch: diffRuns(r1, r2)}
			out.Runs = append(out.Runs, run)
			for i, n := range r1.Faults.Injected {
				out.Faults.Injected[i] += n
			}
			out.Recoveries += r1.FaultRecoveries
			out.Rebuilds += r1.Rebuilds
			if r1.Violation != nil {
				out.Violations++
			}
			if r2.Violation != nil && r1.Violation == nil {
				out.Violations++ // a replay-only failure is still a failure
			}
			if run.Mismatch != "" {
				out.Mismatches++
			}
			if cfg.Log != nil {
				status := "ok"
				switch {
				case r1.Violation != nil:
					status = "VIOLATION: " + r1.Violation.Error()
				case r2.Violation != nil:
					status = "VIOLATION (2nd replay): " + r2.Violation.Error()
				case run.Mismatch != "":
					status = "NONDETERMINISTIC: " + run.Mismatch
				}
				cfg.Log("  heap=%v seed=%d: %d ops, %d crashes, %d recoveries, %d rebuilds, faults[%v] — %s",
					hk, seed, r1.Ops, r1.Crashes, r1.FaultRecoveries, r1.Rebuilds, r1.Faults, status)
			}
		}
	}
	return out
}

// diffRuns compares the determinism-relevant fields of two replays of the
// same history.
func diffRuns(a, b Result) string {
	switch {
	case a.Faults != b.Faults:
		return fmt.Sprintf("fault counters differ: [%v] vs [%v]", a.Faults, b.Faults)
	case a.StateHash != b.StateHash:
		return fmt.Sprintf("final state hash differs: %016x vs %016x", a.StateHash, b.StateHash)
	case a.FaultRecoveries != b.FaultRecoveries:
		return fmt.Sprintf("fault recoveries differ: %d vs %d", a.FaultRecoveries, b.FaultRecoveries)
	case a.Crashes != b.Crashes:
		return fmt.Sprintf("crash counts differ: %d vs %d", a.Crashes, b.Crashes)
	case a.Conflicts != b.Conflicts:
		return fmt.Sprintf("conflict counts differ: %d vs %d", a.Conflicts, b.Conflicts)
	case a.Rebuilds != b.Rebuilds:
		return fmt.Sprintf("index rebuilds differ: %d vs %d", a.Rebuilds, b.Rebuilds)
	case a.Ops != b.Ops:
		return fmt.Sprintf("executed op counts differ: %d vs %d", a.Ops, b.Ops)
	}
	return ""
}
