// Package check is the differential, model-based correctness harness: a
// naive in-memory MVCC oracle consumes the same operation stream as the
// real engine, and invariant checkers assert after every step that each
// index — B-Tree, PBT, MV-PBT and the LSM mirror — agrees with it
// post-visibility-filter, that MV-PBT never surfaces an invisible
// version, that scans are key-ordered and duplicate-free across
// PN/frozen/partitions, and that GC never reclaims a version a live
// snapshot still needs (Larson-style history replay against a sequential
// model). Histories are generated from a printed seed, replayed
// deterministically, and shrunk greedily to a minimal failing prefix.
package check

import (
	"bytes"
	"sort"

	"mvpbt/internal/txn"
)

// bootTxID stamps versions reconstructed by Oracle.Restart. WAL recovery
// replays committed transactions into a fresh engine whose ids restart at
// 1; the harness's own post-crash transactions begin only after the
// replayed ones, so id 1 either belongs to a replayed (committed)
// transaction or — when nothing was recovered — to no version at all.
const bootTxID = txn.TxID(1)

// oSnap is the oracle's own copy of a snapshot: the oracle never asks the
// engine's transaction manager anything, it re-derives visibility from its
// private commit log so a bug in the engine's snapshot bookkeeping cannot
// hide itself.
type oSnap struct {
	xmin, xmax txn.TxID
	active     map[txn.TxID]bool
}

// oVersion is one version of a tuple: its payload, creator, and (once
// superseded or deleted) invalidator — the paper's two-point invalidation
// scheme in its most naive form.
type oVersion struct {
	row        []byte
	create     txn.TxID
	invalidate txn.TxID
}

// Tuple is one logical tuple: its stable oracle identity, the engine VID
// currently mapped to it, and the version chain oldest first.
type Tuple struct {
	ID        uint64
	EngineVID uint64
	versions  []oVersion
}

// Oracle is the sequential MVCC model. Single-goroutine use only — the
// harness interleaves logical clients deterministically on one goroutine.
type Oracle struct {
	keyOf     func(row []byte) []byte
	nextTuple uint64
	tuples    map[uint64]*Tuple
	status    map[txn.TxID]txn.Status // absent = in progress / unknown
	snaps     map[txn.TxID]*oSnap
}

// NewOracle returns an empty oracle extracting index keys with keyOf.
func NewOracle(keyOf func(row []byte) []byte) *Oracle {
	return &Oracle{
		keyOf:  keyOf,
		tuples: make(map[uint64]*Tuple),
		status: make(map[txn.TxID]txn.Status),
		snaps:  make(map[txn.TxID]*oSnap),
	}
}

// Begin registers the engine transaction's snapshot with the oracle. The
// snapshot content is copied from the engine handle (ids must match for a
// differential comparison to mean anything) but visibility is evaluated
// against the oracle's own commit log.
func (o *Oracle) Begin(tx *txn.Tx) {
	s := &oSnap{xmin: tx.Snap.Xmin, xmax: tx.Snap.Xmax, active: make(map[txn.TxID]bool, len(tx.Snap.Active))}
	for _, a := range tx.Snap.Active {
		s.active[a] = true
	}
	o.snaps[tx.ID] = s
}

// Commit marks id committed in the oracle's commit log.
func (o *Oracle) Commit(id txn.TxID) {
	o.status[id] = txn.Committed
	delete(o.snaps, id)
}

// Abort marks id aborted.
func (o *Oracle) Abort(id txn.TxID) {
	o.status[id] = txn.Aborted
	delete(o.snaps, id)
}

func (o *Oracle) statusOf(id txn.TxID) txn.Status {
	if st, ok := o.status[id]; ok {
		return st
	}
	return txn.InProgress
}

// sees is the paper's snapshot-visibility rule over the oracle's own
// state: a transaction sees itself, and otherwise only transactions that
// began before its snapshot (id < xmax), were not active at snapshot time,
// and have committed.
func (o *Oracle) sees(self txn.TxID, id txn.TxID) bool {
	if id == txn.InvalidTxID {
		return false
	}
	if id == self {
		return true
	}
	s := o.snaps[self]
	if s == nil {
		return false
	}
	if id >= s.xmax || s.active[id] {
		return false
	}
	return o.statusOf(id) == txn.Committed
}

// visibleVersion returns the version of t visible to self, or nil. At
// most one version of a tuple is ever visible to one snapshot (two-point
// invalidation); scanning newest to oldest returns it directly.
func (o *Oracle) visibleVersion(t *Tuple, self txn.TxID) *oVersion {
	for i := len(t.versions) - 1; i >= 0; i-- {
		v := &t.versions[i]
		if !o.sees(self, v.create) {
			continue
		}
		if v.invalidate != txn.InvalidTxID && o.sees(self, v.invalidate) {
			// The invalidation is visible too: this version and — because
			// invalidators are strictly newer than creators — every older
			// one is dead to this snapshot.
			return nil
		}
		return v
	}
	return nil
}

// VisRow is one visible row with its tuple identity and the transaction
// that created the visible version (which is the timestamp the engine's
// index records carry — unique-index per-key resolution needs it).
type VisRow struct {
	Tuple  *Tuple
	Row    []byte
	Create txn.TxID
}

// LookupVisible returns the rows visible to self whose key equals key,
// ordered by tuple id (the caller compares as a set).
func (o *Oracle) LookupVisible(self txn.TxID, key []byte) []VisRow {
	var out []VisRow
	for _, t := range o.tuples {
		if v := o.visibleVersion(t, self); v != nil && bytes.Equal(o.keyOf(v.row), key) {
			out = append(out, VisRow{Tuple: t, Row: v.row, Create: v.create})
		}
	}
	sortVisRows(out)
	return out
}

// ScanVisible returns the rows visible to self with lo <= key < hi
// (hi nil = +inf), ordered by (key, tuple id).
func (o *Oracle) ScanVisible(self txn.TxID, lo, hi []byte) []VisRow {
	var out []VisRow
	for _, t := range o.tuples {
		v := o.visibleVersion(t, self)
		if v == nil {
			continue
		}
		k := o.keyOf(v.row)
		if bytes.Compare(k, lo) < 0 || (hi != nil && bytes.Compare(k, hi) >= 0) {
			continue
		}
		out = append(out, VisRow{Tuple: t, Row: v.row, Create: v.create})
	}
	sortVisRows(out)
	return out
}

// UniquePerKey collapses rows (sorted by row bytes, hence key-grouped) to
// one per key the way a unique MV-PBT does: the record with the newest
// timestamp — i.e. the visible version created by the highest transaction
// id — decides the key.
func UniquePerKey(keyOf func([]byte) []byte, rows []VisRow) []VisRow {
	var out []VisRow
	for _, r := range rows {
		k := keyOf(r.Row)
		if n := len(out); n > 0 && bytes.Equal(keyOf(out[n-1].Row), k) {
			if r.Create > out[n-1].Create {
				out[n-1] = r
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortVisRows(rows []VisRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if c := bytes.Compare(a.Row, b.Row); c != 0 {
			return c < 0
		}
		return a.Tuple.ID < b.Tuple.ID
	})
}

// Occupied reports whether any version at key could still be or become
// live: its creator is not aborted and its invalidator (if any) has not
// committed. The harness's executor converts inserts on occupied keys
// into updates, guaranteeing at most one live-or-pending tuple per key —
// the discipline WAL replay's key-addressed update/delete records rely
// on, and what makes the unique MV-PBT index applicable.
func (o *Oracle) Occupied(key []byte) bool {
	for _, t := range o.tuples {
		for i := range t.versions {
			v := &t.versions[i]
			if !bytes.Equal(o.keyOf(v.row), key) {
				continue
			}
			if o.statusOf(v.create) == txn.Aborted {
				continue
			}
			if v.invalidate != txn.InvalidTxID && o.statusOf(v.invalidate) == txn.Committed {
				continue
			}
			return true
		}
	}
	return false
}

// Insert creates a new tuple with a single version created by self.
func (o *Oracle) Insert(self txn.TxID, row []byte) *Tuple {
	o.nextTuple++
	t := &Tuple{ID: o.nextTuple, versions: []oVersion{{row: append([]byte(nil), row...), create: self}}}
	o.tuples[t.ID] = t
	return t
}

// Write applies an update (newRow != nil) or delete (newRow == nil) by
// self to the version of t currently visible to self. It returns true on
// success and false for a first-updater-wins conflict: the target version
// was already invalidated by a different, non-aborted transaction. The
// caller must have established visibility first.
func (o *Oracle) Write(self txn.TxID, t *Tuple, newRow []byte) (ok bool) {
	for i := len(t.versions) - 1; i >= 0; i-- {
		v := &t.versions[i]
		if !o.sees(self, v.create) {
			continue
		}
		if v.invalidate != txn.InvalidTxID && o.sees(self, v.invalidate) {
			return false // deleted for this snapshot; nothing to write
		}
		if v.invalidate != txn.InvalidTxID && v.invalidate != self &&
			o.statusOf(v.invalidate) != txn.Aborted {
			return false // first-updater-wins conflict
		}
		v.invalidate = self
		if newRow != nil {
			t.versions = append(t.versions, oVersion{row: append([]byte(nil), newRow...), create: self})
		}
		return true
	}
	return false
}

// TupleByRow finds the tuple one of whose versions carries exactly row.
// The harness keeps all row payloads globally unique, so the mapping is
// unambiguous; nil when unknown.
func (o *Oracle) TupleByRow(row []byte) *Tuple {
	for _, t := range o.tuples {
		for i := range t.versions {
			if bytes.Equal(t.versions[i].row, row) {
				return t
			}
		}
	}
	return nil
}

// committedRow returns the row of t visible to a fresh post-crash
// snapshot: the newest version with a committed creator, unless a
// committed invalidation killed it.
func (o *Oracle) committedRow(t *Tuple) []byte {
	for i := len(t.versions) - 1; i >= 0; i-- {
		v := &t.versions[i]
		if o.statusOf(v.create) != txn.Committed {
			continue
		}
		if v.invalidate != txn.InvalidTxID && o.statusOf(v.invalidate) == txn.Committed {
			return nil
		}
		return v.row
	}
	return nil
}

// CommittedRows returns the durable state — what a crash-recovered engine
// must present — ordered by (key, tuple id).
func (o *Oracle) CommittedRows() []VisRow {
	var out []VisRow
	for _, t := range o.tuples {
		if row := o.committedRow(t); row != nil {
			out = append(out, VisRow{Tuple: t, Row: row})
		}
	}
	sortVisRows(out)
	return out
}

// Restart collapses the oracle to its durable state after a crash: every
// in-flight transaction is gone, surviving tuples keep their identity but
// are reborn as single committed versions stamped bootTxID, and the
// commit log restarts with only bootTxID committed (matching the fresh
// engine's remapped recovery transactions).
func (o *Oracle) Restart() {
	survivors := make(map[uint64]*Tuple)
	for id, t := range o.tuples {
		row := o.committedRow(t)
		if row == nil {
			continue
		}
		survivors[id] = &Tuple{ID: t.ID, versions: []oVersion{{row: row, create: bootTxID}}}
	}
	o.tuples = survivors
	o.status = make(map[txn.TxID]txn.Status)
	if len(survivors) > 0 {
		// Survivors imply at least one replayed (committed) transaction, so
		// the fresh engine's id 1 can never be a harness transaction and
		// marking it committed is sound. With no survivors the commit log
		// stays empty: id 1 might be the first post-crash harness
		// transaction, and no version references bootTxID anyway.
		o.status[bootTxID] = txn.Committed
	}
	o.snaps = make(map[txn.TxID]*oSnap)
}

// Tuples returns the live tuple map (read-only use by the harness).
func (o *Oracle) Tuples() map[uint64]*Tuple { return o.tuples }
