package check

import "testing"

// TestChaosCampaignSmoke runs a reduced chaos campaign: every kind on two
// seeds, each run replayed twice. Asserts the full acceptance criterion at
// small scale — zero acked-write loss, every in-doubt commit resolved,
// byte-identical double replay — and that chaos actually fired (a campaign
// that injects nothing proves nothing).
func TestChaosCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is seconds-long")
	}
	res := ChaosCampaign(ChaosConfig{
		Seeds: []uint64{1, 2},
		Ops:   120,
		Keys:  60,
		Log:   t.Logf,
	})
	if res.Failed() {
		for _, run := range res.Runs {
			if run.Violation != "" {
				t.Errorf("kind=%s seed=%d: %s", run.Kind, run.Seed, run.Violation)
			}
			if run.Mismatch != "" {
				t.Errorf("kind=%s seed=%d nondeterministic: %s", run.Kind, run.Seed, run.Mismatch)
			}
		}
		t.Fatalf("chaos campaign failed: %d violations, %d mismatches", res.Violations, res.Mismatches)
	}
	if res.Cuts+res.Truncs+res.Stalls == 0 {
		t.Fatal("no chaos was injected across the whole campaign")
	}
	if res.Reconnects == 0 {
		t.Fatal("client never reconnected: cuts were not exercised")
	}
}
