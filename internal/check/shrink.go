package check

// Shrink greedily minimizes a failing history: replay candidates with an
// audit after EVERY op (so failures reproduce independently of the
// original audit cadence), truncate to the failing prefix, then
// delta-debug — remove chunks of halving size as long as the result still
// fails. Op semantics are closed under subsetting (every op is a no-op
// when its precondition is absent), so any subsequence is a valid
// history. The budget caps total replays; 0 picks a default.
func Shrink(cfg RunConfig, ops []Op, budget int) []Op {
	if budget <= 0 {
		budget = 400
	}
	sc := cfg
	sc.StepAudit = true
	sc.Log = nil
	attempts := 0
	// fails replays cand and, when it fails, returns it truncated to the
	// failing prefix (dropping everything after the violation for free).
	fails := func(cand []Op) ([]Op, bool) {
		if attempts >= budget {
			return cand, false
		}
		attempts++
		r := Replay(sc, cand)
		if r.Violation == nil {
			return cand, false
		}
		if n := r.Violation.Step + 1; n < len(cand) {
			cand = cand[:n]
		}
		return cand, true
	}
	cur, ok := fails(ops)
	if !ok {
		// Not reproducible under step-audit cadence; retry with the
		// original one before giving up.
		sc.StepAudit = cfg.StepAudit
		sc.AuditEvery = cfg.AuditEvery
		if cur, ok = fails(ops); !ok {
			return ops
		}
	}
	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(cur) && len(cur) > 1; {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				break
			}
			if shrunk, ok := fails(cand); ok {
				cur = shrunk
				removed = true
			} else {
				start += chunk
			}
		}
		if chunk > 1 {
			chunk = (chunk + 1) / 2
		} else if !removed {
			break
		}
	}
	return cur
}
