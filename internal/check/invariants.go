package check

import (
	"bytes"
	"fmt"
	"sort"

	"mvpbt/internal/db"
	"mvpbt/internal/index"
	"mvpbt/internal/index/mvpbt"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// engRow is one row the engine surfaced, in emission order.
type engRow struct {
	key []byte
	row []byte
	vid uint64
}

// collectRows runs a table scan/lookup result into copied engRows.
func collectRows(fn func(cb func(db.RowRef) bool) error) ([]engRow, error) {
	var out []engRow
	err := fn(func(rr db.RowRef) bool {
		out = append(out, engRow{
			key: append([]byte(nil), rr.Key...),
			row: append([]byte(nil), rr.Row...),
			vid: rr.VID,
		})
		return true
	})
	return out, err
}

// isVersionAware reports whether ix surfaces only visible entries itself
// (ordered output guaranteed); version-oblivious candidate indexes return
// an unordered set once stale entries resolve through the base table.
func isVersionAware(ix *db.Index) bool {
	return ix.MV() != nil && !ix.Def.NoIdxVC
}

// diffRows compares the engine's result against the oracle's, including
// per-row tuple identity (VID) and key-extraction agreement. Both sides
// are compared in row-byte order: the oracle sorts that way, and engine
// emission order within one key is timestamp-based (and for oblivious
// indexes arbitrary), so only the cross-key ordering — asserted separately
// in compareScan — is meaningful.
func (h *harness) diffRows(step int, opStr string, ix *db.Index, got []engRow, want []VisRow) *Violation {
	if ix.Def.Unique {
		want = UniquePerKey(keyExtract, want)
	}
	sort.Slice(got, func(i, j int) bool { return bytes.Compare(got[i].row, got[j].row) < 0 })
	if len(got) != len(want) {
		return h.viol(step, opStr, "%s: engine returned %d rows, oracle %d", ix.Def.Name, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !bytes.Equal(g.row, w.Row) {
			return h.viol(step, opStr, "%s: row %d: engine %q, oracle %q", ix.Def.Name, i, g.row, w.Row)
		}
		if !bytes.Equal(g.key, keyExtract(g.row)) {
			return h.viol(step, opStr, "%s: row %d: emitted key %q != row key %q", ix.Def.Name, i, g.key, keyExtract(g.row))
		}
		if g.vid != w.Tuple.EngineVID {
			return h.viol(step, opStr, "%s: row %q: engine VID %d, oracle VID %d", ix.Def.Name, g.row, g.vid, w.Tuple.EngineVID)
		}
	}
	return nil
}

// compareLookup checks a point lookup on ix against the oracle.
func (h *harness) compareLookup(step int, opStr string, tx *txn.Tx, ix *db.Index, key []byte) *Violation {
	got, err := collectRows(func(cb func(db.RowRef) bool) error {
		return h.tbl.Lookup(tx, ix, key, true, cb)
	})
	if err != nil {
		return h.violE(step, opStr, err, "%s lookup: %v", ix.Def.Name, err)
	}
	return h.diffRows(step, opStr, ix, got, h.ora.LookupVisible(tx.ID, key))
}

// compareScan checks a range scan on ix against the oracle. Version-aware
// indexes must additionally emit in non-decreasing key order with no
// duplicate rows.
func (h *harness) compareScan(step int, opStr string, tx *txn.Tx, ix *db.Index, lo, hi []byte) *Violation {
	got, err := collectRows(func(cb func(db.RowRef) bool) error {
		return h.tbl.Scan(tx, ix, lo, hi, true, cb)
	})
	if err != nil {
		return h.violE(step, opStr, err, "%s scan: %v", ix.Def.Name, err)
	}
	seen := make(map[string]bool, len(got))
	for i, g := range got {
		if seen[string(g.row)] {
			return h.viol(step, opStr, "%s scan: duplicate row %q", ix.Def.Name, g.row)
		}
		seen[string(g.row)] = true
		if isVersionAware(ix) && i > 0 && bytes.Compare(got[i-1].key, g.key) > 0 {
			return h.viol(step, opStr, "%s scan: keys out of order: %q after %q", ix.Def.Name, g.key, got[i-1].key)
		}
	}
	return h.diffRows(step, opStr, ix, got, h.ora.ScanVisible(tx.ID, lo, hi))
}

// audit is the full invariant sweep: every index against the oracle under
// every open snapshot (GC safety: an old snapshot must still read exactly
// its state) and a fresh one, the LSM mirror against the committed state,
// and the raw-record structural invariants of MV-PBT and LSM.
func (h *harness) audit(step int, opStr string) *Violation {
	h.res.Audits++
	lo := keyBytes(0)
	for ci, c := range h.clients {
		if c.tx == nil {
			continue
		}
		for _, ix := range h.tbl.Indexes() {
			tag := fmt.Sprintf("%s/audit c%d", opStr, ci)
			if v := h.compareScan(step, tag, c.tx, ix, lo, nil); v != nil {
				return v
			}
		}
	}
	tx, done := h.freshTx()
	defer done()
	for _, ix := range h.tbl.Indexes() {
		if v := h.compareScan(step, opStr+"/audit fresh", tx, ix, lo, nil); v != nil {
			return v
		}
	}
	if v := h.checkMirror(step, opStr); v != nil {
		return v
	}
	for _, name := range []string{"mv", "mvu"} {
		if v := h.checkRawMV(step, opStr, tx, name); v != nil {
			return v
		}
	}
	return h.checkRawLSM(step, opStr)
}

// checkMirror compares the LSM mirror's live content with the oracle's
// committed state (open transactions never touch the mirror).
func (h *harness) checkMirror(step int, opStr string) *Violation {
	got := make(map[string][]byte)
	err := h.mirror.Scan(nil, 1<<30, func(k, v []byte) bool {
		got[string(k)] = append([]byte(nil), v...)
		return true
	})
	if err != nil {
		return h.violE(step, opStr, err, "mirror scan: %v", err)
	}
	want := h.ora.CommittedRows()
	if len(got) != len(want) {
		return h.viol(step, opStr, "mirror holds %d keys, oracle committed state has %d rows", len(got), len(want))
	}
	for _, vr := range want {
		if g, ok := got[string(tidKey(vr.Tuple.ID))]; !ok {
			return h.viol(step, opStr, "mirror missing tuple %d (%q)", vr.Tuple.ID, vr.Row)
		} else if !bytes.Equal(g, vr.Row) {
			return h.viol(step, opStr, "mirror tuple %d: %q, oracle %q", vr.Tuple.ID, g, vr.Row)
		}
	}
	return nil
}

// checkRawMV asserts the MV-PBT structural invariants on index name:
//
//  1. the visible scan result is a subset of the raw MATTER records —
//     MV-PBT never fabricates an entry it does not physically hold;
//  2. within every source (PN, each frozen PN, each partition) keys are
//     non-decreasing and per-key timestamps non-increasing (§4.3);
//  3. the visible scan emits each (key, rid) at most once across
//     PN/frozen/partitions (anti-matter suppression works).
//
// The visible scan runs FIRST: concurrent background eviction/merge may
// garbage-collect invisible records between the two passes but can never
// remove a record visible to the still-open tx — so a visible entry
// missing from the later dump is a genuine GC-safety violation.
func (h *harness) checkRawMV(step int, opStr string, tx *txn.Tx, name string) *Violation {
	tree := h.tbl.Index(name).MV()
	lo := keyBytes(0)
	type kr struct {
		key string
		rid storage.RecordID
	}
	var visible []kr
	seen := make(map[kr]bool)
	var vv *Violation
	err := tree.Scan(tx, lo, nil, func(e index.Entry) bool {
		p := kr{key: string(e.Key), rid: e.Ref.RID}
		if seen[p] {
			vv = h.viol(step, opStr, "%s: visible scan emitted key %q rid %v twice", name, e.Key, e.Ref.RID)
			return false
		}
		seen[p] = true
		visible = append(visible, p)
		return true
	})
	if err != nil {
		return h.violE(step, opStr, err, "%s visible scan: %v", name, err)
	}
	if vv != nil {
		return vv
	}
	matter := make(map[kr]bool)
	var src string
	var prevKey []byte
	var prevTS txn.TxID
	err = tree.DumpRange(lo, nil, func(re mvpbt.RawEntry) bool {
		if re.Source != src {
			src, prevKey, prevTS = re.Source, nil, 0
		}
		if prevKey != nil {
			switch c := bytes.Compare(prevKey, re.Key); {
			case c > 0:
				vv = h.viol(step, opStr, "%s %s: raw keys out of order: %q after %q", name, re.Source, re.Key, prevKey)
				return false
			case c == 0 && re.Rec.TS > prevTS:
				vv = h.viol(step, opStr, "%s %s: key %q: ts %d after newer ts %d", name, re.Source, re.Key, re.Rec.TS, prevTS)
				return false
			}
		}
		prevKey = append(prevKey[:0], re.Key...)
		prevTS = re.Rec.TS
		if re.Rec.Matter() {
			matter[kr{key: string(re.Key), rid: re.Rec.Ref.RID}] = true
		}
		return true
	})
	if err != nil {
		return h.violE(step, opStr, err, "%s raw dump: %v", name, err)
	}
	if vv != nil {
		return vv
	}
	for _, p := range visible {
		if !matter[p] {
			return h.viol(step, opStr, "%s: visible entry key %q rid %v has no backing matter record (GC reclaimed a needed version?)", name, p.key, p.rid)
		}
	}
	return nil
}

// checkRawLSM asserts that the LSM mirror's Scan output equals what its
// own raw record set implies: the newest (highest-seq) record per key,
// skipped when it is a tombstone.
func (h *harness) checkRawLSM(step int, opStr string) *Violation {
	tree := h.mirror.Tree()
	type newest struct {
		tomb bool
		val  []byte
	}
	top := make(map[string]newest)
	err := tree.ScanRawAll(nil, nil, func(key []byte, seq uint64, tomb bool, val []byte) bool {
		if _, ok := top[string(key)]; !ok { // emitted newest-first per key
			top[string(key)] = newest{tomb: tomb, val: append([]byte(nil), val...)}
		}
		return true
	})
	if err != nil {
		return h.violE(step, opStr, err, "lsm raw scan: %v", err)
	}
	live := 0
	for _, n := range top {
		if !n.tomb {
			live++
		}
	}
	got := make(map[string][]byte)
	err = tree.Scan(nil, nil, func(k, v []byte) bool {
		got[string(k)] = append([]byte(nil), v...)
		return true
	})
	if err != nil {
		return h.violE(step, opStr, err, "lsm scan: %v", err)
	}
	if len(got) != live {
		return h.viol(step, opStr, "lsm scan returned %d keys, raw newest-wins implies %d", len(got), live)
	}
	for k, n := range top {
		if n.tomb {
			continue
		}
		if g, ok := got[k]; !ok {
			return h.viol(step, opStr, "lsm scan missing key %x (raw newest is live)", k)
		} else if !bytes.Equal(g, n.val) {
			return h.viol(step, opStr, "lsm key %x: scan %q, raw newest %q", k, g, n.val)
		}
	}
	return nil
}
