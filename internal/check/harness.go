package check

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"mvpbt/internal/db"
	"mvpbt/internal/heap"
	"mvpbt/internal/index/lsm"
	"mvpbt/internal/sfile"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/wal"
)

// RunConfig parameterizes one harness run.
type RunConfig struct {
	Heap    db.HeapKind
	Seed    uint64
	Ops     int
	Clients int
	Keys    int
	Crashes int
	// Background runs maintenance on the engine's worker pool (the
	// concurrency under test); false keeps everything synchronous.
	Background bool
	// AuditEvery runs a full audit (every index × every open snapshot vs
	// the oracle, plus raw-record invariants) every N ops (default 250).
	AuditEvery int
	// StepAudit audits after EVERY op — shrink-mode replay, where failures
	// must reproduce independently of the audit cadence.
	StepAudit bool
	// FaultEvery, when > 0, installs the test-only visibility mutation hook
	// on both MV-PBTs: decisions for records whose transaction id is a
	// multiple of FaultEvery are inverted. Used by the harness's self-test.
	FaultEvery int
	// Faults punctuates the generated history with deterministic device
	// faults (read/write errors, bit rot, torn commit flushes) and enables
	// the typed-error recovery path: a storage fault that escapes to the
	// top of an op is treated as damage to recover from — the engine
	// crash-restarts and lockstep with the oracle must still hold. Leave it
	// false to treat any typed storage error as a violation.
	Faults bool
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.Keys <= 0 {
		c.Keys = 100
	}
	if c.AuditEvery <= 0 {
		c.AuditEvery = 250
	}
	return c
}

// Violation reports the first invariant breach of a run.
type Violation struct {
	Step int    // index into the history (len(history) for the final audit)
	Op   string // formatted op, or "final audit"
	Msg  string
	// Err is the engine error behind the violation, when there is one —
	// fault mode inspects it (errors.Is) to tell injected-fault damage,
	// which is recoverable by crash-restart, from genuine logic bugs.
	Err error
}

func (v *Violation) Error() string {
	return fmt.Sprintf("step %d (%s): %s", v.Step, v.Op, v.Msg)
}

// Result summarizes a run.
type Result struct {
	Ops       int // ops executed (≤ len(history) when a violation stopped the run)
	Audits    int
	Crashes   int
	Conflicts int // first-updater-wins conflicts observed (with parity checked)
	// FaultRecoveries counts injected faults that escaped every masking
	// layer (retry, checksum-quarantine-rebuild) and were absorbed by a
	// crash-restart instead — torn commits included.
	FaultRecoveries int
	// Faults accumulates the device's injected-fault counters across every
	// engine incarnation of the run (the device dies with each crash, so
	// counters are harvested before teardown).
	Faults ssd.FaultCounters
	// Rebuilds counts index quarantine-rebuilds across incarnations:
	// checksum-detected rot in a version-oblivious index repaired in place
	// from the base table, invisibly to the op that hit it.
	Rebuilds int64
	// StateHash fingerprints the oracle's final committed state (FNV-1a
	// over rows and tuple ids). Two runs of the same history must agree on
	// it AND on Faults — the fault-determinism contract.
	StateHash uint64
	Violation *Violation
}

// client is one logical client: its open transaction and the write set
// destined for the LSM mirror at commit.
type client struct {
	tx     *txn.Tx
	writes map[uint64][]byte // tuple id → final row (nil = deleted)
	order  []uint64          // first-touch order of writes keys
}

func (c *client) reset() {
	c.tx = nil
	c.writes = nil
	c.order = nil
}

func (c *client) record(tid uint64, row []byte) {
	if c.writes == nil {
		c.writes = make(map[uint64][]byte)
	}
	if _, ok := c.writes[tid]; !ok {
		c.order = append(c.order, tid)
	}
	c.writes[tid] = row
}

// harness binds one engine instance (rebuilt on crash) to the oracle.
type harness struct {
	cfg     RunConfig
	eng     *db.Engine
	tbl     *db.Table
	mirror  *db.LSMKV
	ora     *Oracle
	clients []*client
	res     Result
}

// keyExtract reads the length-prefixed key out of a row: [len][key][val].
func keyExtract(row []byte) []byte { return row[1 : 1+row[0]] }

func keyBytes(ord int) []byte { return []byte(fmt.Sprintf("k%04d", ord)) }

// rowBytes builds the globally unique row payload for (key, step, client):
// uniqueness lets the harness map any engine row back to its oracle tuple,
// including across crash-recovery, which reassigns VIDs.
func rowBytes(key []byte, step, cl int) []byte {
	val := fmt.Sprintf("s%d.c%d", step, cl)
	row := make([]byte, 0, 1+len(key)+len(val))
	row = append(row, byte(len(key)))
	row = append(row, key...)
	return append(row, val...)
}

// tidKey is the LSM mirror's key for an oracle tuple.
func tidKey(tid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], tid)
	return b[:]
}

// indexNames in Op.Ix order.
var indexNames = [4]string{"mv", "mvu", "bt", "pb"}

func newHarness(cfg RunConfig) (*harness, error) {
	h := &harness{cfg: cfg, ora: NewOracle(keyExtract)}
	h.clients = make([]*client, cfg.Clients)
	for i := range h.clients {
		h.clients[i] = &client{}
	}
	if err := h.buildEngine(); err != nil {
		return nil, err
	}
	return h, nil
}

// buildEngine constructs a fresh engine + schema (initial start and every
// crash-restart). The partition buffer is kept deliberately tiny so
// evictions, frozen PNs, partition builds and merges all happen within
// even short histories.
func (h *harness) buildEngine() error {
	h.eng = db.NewEngine(db.Config{
		BufferPages:          2048,
		PartitionBufferBytes: 96 << 10,
		EnableWAL:            true,
		// Route every commit through the group-commit batcher so the
		// campaign exercises the production pipeline. The harness is
		// single-threaded, so each commit is a deterministic batch of one
		// (MaxDelay 0); multi-member batches are driven explicitly by
		// OpTornBatch via CommitBatchDurable.
		GroupCommit:     db.GroupCommitConfig{Enabled: true},
		BackgroundMaint: h.cfg.Background,
		MaintWorkers:    2,
	})
	pbRef := db.RefPhysical
	if h.cfg.Heap == db.HeapSIAS {
		pbRef = db.RefLogical // exercise the VID indirection path
	}
	tbl, err := h.eng.NewTable("t", h.cfg.Heap,
		db.IndexDef{Name: "mv", Kind: db.IdxMVPBT, RefMode: db.RefPhysical,
			Extract: keyExtract, BloomBits: 10, PrefixLen: 2, MaxPartitions: 4},
		db.IndexDef{Name: "mvu", Kind: db.IdxMVPBT, RefMode: db.RefPhysical, Unique: true,
			Extract: keyExtract, BloomBits: 10, MaxPartitions: 4},
		db.IndexDef{Name: "bt", Kind: db.IdxBTree, RefMode: db.RefPhysical, Extract: keyExtract},
		db.IndexDef{Name: "pb", Kind: db.IdxPBT, RefMode: pbRef,
			Extract: keyExtract, BloomBits: 10, PrefixLen: 2},
	)
	if err != nil {
		return err
	}
	h.tbl = tbl
	h.mirror = db.NewLSMKV(h.eng, "mirror", lsm.Options{MemtableBytes: 16 << 10, L0Runs: 3})
	if n := h.cfg.FaultEvery; n > 0 {
		fault := func(ts txn.TxID, visible bool) bool {
			if uint64(ts)%uint64(n) == 0 {
				return !visible
			}
			return visible
		}
		tbl.Index("mv").MV().SetVisibilityFaultForTest(fault)
		tbl.Index("mvu").MV().SetVisibilityFaultForTest(fault)
	}
	return nil
}

// ensureTx lazily opens client c's transaction on both sides.
func (h *harness) ensureTx(c *client) {
	if c.tx == nil {
		c.tx = h.eng.Begin()
		h.ora.Begin(c.tx)
	}
}

// freshTx opens a throwaway transaction registered with the oracle; the
// returned func commits it on both sides.
func (h *harness) freshTx() (*txn.Tx, func()) {
	tx := h.eng.Begin()
	h.ora.Begin(tx)
	return tx, func() {
		id := tx.ID // capture before Commit: the handle is pooled
		h.eng.Commit(tx)
		h.ora.Commit(id)
	}
}

// keyTaken reports whether inserting a fresh tuple at key would break the
// occupancy discipline: a live-or-pending tuple exists (Occupied), or the
// inserting transaction itself still sees a row there (its snapshot
// predates a committed delete — inserting would place a matter record with
// a LOWER timestamp than the tombstone, inverting the §4.3 lineage order
// every index relies on). The second case re-routes to an update, which
// correctly surfaces as a first-updater-wins conflict.
func (h *harness) keyTaken(tx *txn.Tx, key []byte) bool {
	return h.ora.Occupied(key) || len(h.ora.LookupVisible(tx.ID, key)) > 0
}

func (h *harness) viol(step int, op string, format string, args ...any) *Violation {
	return &Violation{Step: step, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// violE is viol carrying the engine error that caused the breach, so fault
// mode can classify it.
func (h *harness) violE(step int, op string, err error, format string, args ...any) *Violation {
	v := h.viol(step, op, format, args...)
	v.Err = err
	return v
}

// lookupTarget finds the row at key visible to tx on BOTH sides and
// cross-checks them: the engine's choice (via the primary MV-PBT, the
// same index WAL replay uses) must carry exactly the oracle's visible row.
// When an old snapshot legitimately sees several rows at the key (its own
// insert next to a predecessor tuple whose delete it cannot see yet), the
// engine's LookupOne surfaces the newest — mirror that with UniquePerKey.
// Returns (nil, nil, nil) when both agree the key is absent.
func (h *harness) lookupTarget(step int, op Op, tx *txn.Tx, key []byte) (*db.RowRef, *Tuple, *Violation) {
	rr, err := h.tbl.LookupOne(tx, h.tbl.Indexes()[0], key, true)
	if err != nil {
		return nil, nil, h.violE(step, op.String(), err, "target lookup: %v", err)
	}
	want := UniquePerKey(keyExtract, h.ora.LookupVisible(tx.ID, key))
	switch {
	case rr == nil && len(want) == 0:
		return nil, nil, nil
	case rr == nil:
		return nil, nil, h.viol(step, op.String(), "engine sees no row at %q, oracle sees %q", key, want[0].Row)
	case len(want) == 0:
		return nil, nil, h.viol(step, op.String(), "engine sees row %q at %q, oracle sees none", rr.Row, key)
	case string(rr.Row) != string(want[0].Row):
		return nil, nil, h.viol(step, op.String(), "target mismatch at %q: engine %q, oracle %q", key, rr.Row, want[0].Row)
	case rr.VID != want[0].Tuple.EngineVID:
		return nil, nil, h.viol(step, op.String(), "target VID mismatch at %q: engine %d, oracle %d", key, rr.VID, want[0].Tuple.EngineVID)
	}
	return rr, want[0].Tuple, nil
}

// step executes one history op. Returns the violation that stops the run,
// or nil.
func (h *harness) step(i int, op Op) *Violation {
	switch op.Kind {
	case OpInsert:
		c := h.clients[op.Client]
		h.ensureTx(c)
		key := keyBytes(op.Key)
		row := rowBytes(key, i, op.Client)
		if h.keyTaken(c.tx, key) {
			// Occupancy discipline: never two live-or-pending tuples on one
			// key. Re-route to an update of whatever this snapshot sees
			// (which surfaces as a write-write conflict when the row was
			// deleted under the snapshot's feet — exactly what a unique
			// index under snapshot isolation would report).
			return h.writeAt(i, op, c, key, row)
		}
		vid, _, err := h.tbl.Insert(c.tx, row)
		if err != nil {
			return h.violE(i, op.String(), err, "insert: %v", err)
		}
		t := h.ora.Insert(c.tx.ID, row)
		t.EngineVID = vid
		c.record(t.ID, row)
	case OpUpdate:
		c := h.clients[op.Client]
		h.ensureTx(c)
		key := keyBytes(op.Key)
		return h.writeAt(i, op, c, key, rowBytes(key, i, op.Client))
	case OpUpdateKey:
		c := h.clients[op.Client]
		h.ensureTx(c)
		oldKey, newKey := keyBytes(op.Key), keyBytes(op.Key2)
		if op.Key2 != op.Key && h.keyTaken(c.tx, newKey) {
			return nil // target key taken: skip to preserve the discipline
		}
		return h.writeAt(i, op, c, oldKey, rowBytes(newKey, i, op.Client))
	case OpDelete:
		c := h.clients[op.Client]
		h.ensureTx(c)
		return h.writeAt(i, op, c, keyBytes(op.Key), nil)
	case OpLookup:
		c := h.clients[op.Client]
		h.ensureTx(c)
		ix := h.tbl.Index(indexNames[op.Ix])
		return h.compareLookup(i, op.String(), c.tx, ix, keyBytes(op.Key))
	case OpScan:
		c := h.clients[op.Client]
		h.ensureTx(c)
		ix := h.tbl.Index(indexNames[op.Ix])
		return h.compareScan(i, op.String(), c.tx, ix, keyBytes(op.Key), keyBytes(op.Key2))
	case OpCount:
		c := h.clients[op.Client]
		h.ensureTx(c)
		ix := h.tbl.Index(indexNames[op.Ix])
		n, err := h.tbl.Count(c.tx, ix, keyBytes(op.Key), keyBytes(op.Key2))
		if err != nil {
			return h.violE(i, op.String(), err, "count: %v", err)
		}
		rows := h.ora.ScanVisible(c.tx.ID, keyBytes(op.Key), keyBytes(op.Key2))
		if ix.Def.Unique {
			rows = UniquePerKey(keyExtract, rows)
		}
		if want := len(rows); n != want {
			return h.viol(i, op.String(), "count mismatch on %s: engine %d, oracle %d", ix.Def.Name, n, want)
		}
	case OpCommit:
		c := h.clients[op.Client]
		if c.tx == nil {
			return nil
		}
		id := c.tx.ID // capture before Commit: the handle is pooled
		h.eng.Commit(c.tx)
		h.ora.Commit(id)
		return h.commitMirror(i, op, c)
	case OpAbort:
		c := h.clients[op.Client]
		if c.tx == nil {
			return nil
		}
		id := c.tx.ID
		h.eng.Abort(c.tx)
		h.ora.Abort(id)
		c.reset()
	case OpVacuum:
		if _, err := h.tbl.Vacuum(); err != nil {
			return h.violE(i, op.String(), err, "vacuum: %v", err)
		}
	case OpEvict:
		for _, name := range []string{"mv", "mvu"} {
			if err := h.tbl.Index(name).MV().EvictPN(); err != nil {
				return h.violE(i, op.String(), err, "evict %s: %v", name, err)
			}
		}
		if err := h.tbl.Index("pb").PB().EvictPN(); err != nil {
			return h.violE(i, op.String(), err, "evict pb: %v", err)
		}
	case OpMerge:
		for _, name := range []string{"mv", "mvu"} {
			if err := h.tbl.Index(name).MV().MergePartitions(); err != nil {
				return h.violE(i, op.String(), err, "merge %s: %v", name, err)
			}
		}
	case OpPause:
		if h.eng.Maint != nil {
			h.eng.Maint.Pause()
		}
	case OpResume:
		if h.eng.Maint != nil {
			h.eng.Maint.Resume()
		}
	case OpBarrier:
		h.eng.Quiesce()
		return h.audit(i, op.String())
	case OpCrash:
		return h.crash(i)
	case OpFaultRead, OpFaultWrite:
		kind := ssd.FaultReadErr
		if op.Kind == OpFaultWrite {
			kind = ssd.FaultWriteErr
		}
		// 1-3 consecutive failures of the next matching I/O: up to 2 are
		// masked in-line by the buffer pool's bounded retry; 3 exhaust it
		// and escalate to a crash-recovery.
		n := 1 + op.Key%3
		sched := make([]uint64, n)
		for j := range sched {
			sched[j] = uint64(j + 1)
		}
		h.eng.Dev.ArmFault(ssd.FaultRule{Kind: kind, Class: faultClass(op.Key), Ops: sched})
	case OpFaultFlip:
		// One-shot bit rot under the next matching page read, never the WAL
		// (ClassMeta): the page checksum must catch it — a rotted index page
		// is quarantined and rebuilt from the heap, a rotted heap page is a
		// hard error absorbed by crash-recovery. Empty the buffer pool first;
		// otherwise the small working set stays cached and the armed rot
		// almost never sees a device read.
		if err := h.eng.Pool.FlushAll(); err != nil {
			return h.violE(i, op.String(), err, "pre-rot flush: %v", err)
		}
		if err := h.eng.Pool.EvictAll(); err != nil {
			return h.violE(i, op.String(), err, "pre-rot evict: %v", err)
		}
		h.eng.Dev.ArmFault(ssd.FaultRule{
			Kind: ssd.FaultBitFlip, Class: faultClass(op.Key),
			ByteOffset: 16 + op.Key*37, BitMask: byte(1 << (op.Key % 8)),
			Ops: []uint64{1},
		})
	case OpTornCommit:
		return h.tornCommit(i, op)
	case OpTornBatch:
		return h.tornBatch(i, op)
	}
	return nil
}

// faultClass derives the deterministic fault scope from a key ordinal:
// base-table or index extents, never ClassMeta — WAL faults are exercised
// exclusively by OpTornCommit, whose in-doubt outcome the harness resolves
// explicitly (a blind read/write error on the log would leave the oracle
// unable to know what recovery will see).
func faultClass(key int) int {
	if key%2 == 1 {
		return int(sfile.ClassIndex)
	}
	return int(sfile.ClassTable)
}

// commitMirror propagates client c's committed write set into the LSM
// mirror and resets the client.
func (h *harness) commitMirror(i int, op Op, c *client) *Violation {
	for _, tid := range c.order {
		row := c.writes[tid]
		if row == nil {
			if err := h.mirror.Delete(tidKey(tid)); err != nil {
				return h.violE(i, op.String(), err, "mirror delete: %v", err)
			}
		} else if err := h.mirror.Put(tidKey(tid), row); err != nil {
			return h.violE(i, op.String(), err, "mirror put: %v", err)
		}
	}
	c.reset()
	return nil
}

// tornCommit commits through a WAL flush whose page writes all tear
// (persisting only a prefix of each page's sectors), leaving the
// transaction's durability IN DOUBT. The harness resolves the doubt exactly
// the way recovery will — is the commit record inside the readable prefix
// of the durable log bytes? — applies the verdict to the oracle, and
// crash-restarts. Lockstep after recovery is the assertion: a torn flush
// may cost the unacknowledged transaction, but never an acknowledged one
// and never consistency.
func (h *harness) tornCommit(i int, op Op) *Violation {
	c := h.clients[op.Client]
	h.ensureTx(c)
	id := h.eng.Dev.ArmFault(ssd.FaultRule{
		Kind: ssd.FaultTornWrite, Class: int(sfile.ClassMeta),
		// The log writer retries a failing page write up to 3 times; tear
		// all of them so the flush genuinely fails.
		Ops:         []uint64{1, 2, 3},
		TornSectors: op.Key % (storage.PageSize / ssd.SectorSize),
	})
	txid := c.tx.ID // capture before CommitDurable: the handle is pooled
	err := h.eng.CommitDurable(c.tx)
	h.eng.Dev.DisarmFault(id)
	if err == nil {
		// The flush dodged the fault (or the transaction was read-only and
		// never touched the log); a plain successful commit.
		h.ora.Commit(txid)
		return h.commitMirror(i, op, c)
	}
	if !errors.Is(err, storage.ErrIOFault) {
		return h.violE(i, op.String(), err, "torn commit flush: %v", err)
	}
	if logCommitted(h.eng.LogImage(), txid) {
		h.ora.Commit(txid)
	} else {
		h.ora.Abort(txid)
	}
	h.res.FaultRecoveries++
	return h.crash(i)
}

// tornBatch drives a batched group commit through a torn WAL flush: every
// client's open transaction joins one CommitBatchDurable, whose single
// flush tears, leaving EVERY logged member of the batch in doubt at once.
// Commit records were appended in batch order, so the tear typically
// persists a prefix of the batch: each member is resolved independently
// against the durable bytes — exactly the question recovery will answer —
// the verdicts are applied to the oracle, and the run crash-restarts.
// Lockstep after recovery asserts that a torn batched flush can cost
// unacknowledged transactions, but never consistency.
func (h *harness) tornBatch(i int, op Op) *Violation {
	var (
		txs   []*txn.Tx
		cls   []*client
		txids []txn.TxID
	)
	for _, c := range h.clients {
		if c.tx != nil {
			txs = append(txs, c.tx)
			cls = append(cls, c)
			txids = append(txids, c.tx.ID)
		}
	}
	if len(txs) == 0 {
		return nil
	}
	id := h.eng.Dev.ArmFault(ssd.FaultRule{
		Kind: ssd.FaultTornWrite, Class: int(sfile.ClassMeta),
		Ops:         []uint64{1, 2, 3},
		TornSectors: op.Key % (storage.PageSize / ssd.SectorSize),
	})
	err := h.eng.CommitBatchDurable(txs)
	h.eng.Dev.DisarmFault(id)
	if err == nil {
		// The flush dodged the fault (e.g. every member read-only): a plain
		// successful batch commit, already applied in memory.
		for j, c := range cls {
			h.ora.Commit(txids[j])
			if v := h.commitMirror(i, op, c); v != nil {
				return v
			}
		}
		return nil
	}
	if !errors.Is(err, storage.ErrIOFault) {
		return h.violE(i, op.String(), err, "torn batch flush: %v", err)
	}
	img := h.eng.LogImage()
	for j, c := range cls {
		if logCommitted(img, txids[j]) {
			h.ora.Commit(txids[j])
			if v := h.commitMirror(i, op, c); v != nil {
				return v
			}
		} else {
			h.ora.Abort(txids[j])
			c.reset()
		}
	}
	h.res.FaultRecoveries++
	return h.crash(i)
}

// logCommitted reports whether the readable prefix of a durable log image
// contains txid's commit record — the exact question recovery will answer.
func logCommitted(image []byte, txid txn.TxID) bool {
	r := wal.NewReaderFromBytes(image)
	for {
		rec, ok := r.Next()
		if !ok {
			return false
		}
		if rec.Op == wal.OpCommit && rec.TxID == uint64(txid) {
			return true
		}
	}
}

// writeAt applies an update (newRow != nil) or delete (nil) at key for
// client c, checking write-conflict parity between engine and oracle.
func (h *harness) writeAt(i int, op Op, c *client, key, newRow []byte) *Violation {
	rr, t, v := h.lookupTarget(i, op, c.tx, key)
	if v != nil {
		return v
	}
	if rr == nil {
		return nil // key absent for this snapshot on both sides: no-op
	}
	var engErr error
	if newRow == nil {
		engErr = h.tbl.Delete(c.tx, *rr)
	} else {
		_, engErr = h.tbl.Update(c.tx, *rr, newRow)
	}
	engConflict := errors.Is(engErr, heap.ErrWriteConflict)
	if engErr != nil && !engConflict {
		return h.violE(i, op.String(), engErr, "write: %v", engErr)
	}
	oraOK := h.ora.Write(c.tx.ID, t, newRow)
	switch {
	case engConflict && oraOK:
		return h.viol(i, op.String(), "engine reports write conflict, oracle allows the write")
	case !engConflict && !oraOK:
		return h.viol(i, op.String(), "engine allows the write, oracle reports a conflict")
	case engConflict:
		h.res.Conflicts++
		return nil
	}
	c.record(t.ID, newRow)
	return nil
}

// crash simulates power loss and recovery: capture the durable WAL bytes,
// kill the engine, rebuild schema, replay, collapse the oracle, remap
// tuple→VID via a full scan (which is itself the crash invariant: the
// recovered state must equal the oracle's committed state), and reseed
// the LSM mirror (a cache in this harness, not WAL-protected).
func (h *harness) crash(i int) *Violation {
	h.harvestFaults()
	img := h.eng.LogImage()
	h.eng.Crash()
	for _, c := range h.clients {
		c.reset()
	}
	if err := h.buildEngine(); err != nil {
		return h.viol(i, "crash", "rebuild: %v", err)
	}
	if _, err := h.eng.Recover(img, map[string]*db.Table{"t": h.tbl}); err != nil {
		return h.viol(i, "crash", "recover: %v", err)
	}
	h.ora.Restart()
	h.res.Crashes++

	want := h.ora.CommittedRows()
	tx, done := h.freshTx()
	var got []db.RowRef
	err := h.tbl.Scan(tx, h.tbl.Indexes()[0], keyBytes(0), nil, true, func(rr db.RowRef) bool {
		rr.Row = append([]byte(nil), rr.Row...)
		got = append(got, rr)
		return true
	})
	if err != nil {
		done()
		return h.viol(i, "crash", "post-recovery scan: %v", err)
	}
	done()
	if len(got) != len(want) {
		return h.viol(i, "crash", "recovered %d rows, oracle committed state has %d", len(got), len(want))
	}
	for j := range got {
		if string(got[j].Row) != string(want[j].Row) {
			return h.viol(i, "crash", "recovered row %d: engine %q, oracle %q", j, got[j].Row, want[j].Row)
		}
		// Recovery reassigns VIDs; re-learn the mapping from the scan.
		want[j].Tuple.EngineVID = got[j].VID
	}
	for _, vr := range want {
		if err := h.mirror.Put(tidKey(vr.Tuple.ID), vr.Row); err != nil {
			return h.viol(i, "crash", "mirror reseed: %v", err)
		}
	}
	return h.audit(i, "crash")
}

// harvestFaults folds the device's injected-fault counters into the result
// and resets them. Must run before the device is discarded (crash rebuilds
// the engine on a fresh device) and once more at the end of the run.
func (h *harness) harvestFaults() {
	c := h.eng.Dev.FaultCounters()
	for i, n := range c.Injected {
		h.res.Faults.Injected[i] += n
	}
	h.eng.Dev.ResetFaultCounters()
	h.res.Rebuilds += h.tbl.Rebuilds()
}

// finish seals the result: harvest the last engine incarnation's fault
// counters and fingerprint the oracle's final committed state.
func (h *harness) finish() Result {
	if h.eng != nil {
		h.harvestFaults()
	}
	fh := fnv.New64a()
	var b [8]byte
	for _, vr := range h.ora.CommittedRows() {
		binary.BigEndian.PutUint64(b[:], vr.Tuple.ID)
		fh.Write(b[:])
		fh.Write(vr.Row)
		fh.Write([]byte{0})
	}
	h.res.StateHash = fh.Sum64()
	return h.res
}

// faultDamage reports whether v is collateral damage of an injected device
// fault — a typed storage error that escaped every masking layer — rather
// than a logic bug. Only meaningful while fault injection is on.
func faultDamage(v *Violation) bool {
	return v.Err != nil &&
		(errors.Is(v.Err, storage.ErrIOFault) || errors.Is(v.Err, storage.ErrCorruptPage))
}

// Replay executes a fixed history against a fresh harness. Panics are
// converted into violations so a seeded fault that trips an internal
// assertion still yields a shrinkable failure instead of killing the run.
func Replay(cfg RunConfig, ops []Op) (res Result) {
	cfg = cfg.withDefaults()
	h, err := newHarness(cfg)
	if err != nil {
		return Result{Violation: &Violation{Step: 0, Op: "setup", Msg: err.Error()}}
	}
	curStep := 0
	defer func() {
		if r := recover(); r != nil {
			h.res.Ops = curStep
			h.res.Violation = &Violation{Step: curStep, Op: "panic", Msg: fmt.Sprint(r)}
			res = h.finish()
			return
		}
		if h.eng != nil {
			h.eng.Close()
		}
	}()
	for i, op := range ops {
		curStep = i
		v := h.step(i, op)
		if v == nil && (cfg.StepAudit || (i+1)%cfg.AuditEvery == 0) &&
			op.Kind != OpBarrier && op.Kind != OpCrash { // those just audited
			v = h.audit(i, op.String())
		}
		if v != nil && cfg.Faults && faultDamage(v) {
			// An injected fault made it to the top of an op instead of being
			// masked in a lower layer (e.g. heap-page rot, retry-exhausting
			// error bursts). That is legal — but it must be RECOVERABLE:
			// disarm everything, crash-restart, and hold the engine to the
			// oracle's committed state like any other crash.
			h.eng.Dev.DisarmAllFaults()
			h.res.FaultRecoveries++
			v = h.crash(i)
		}
		if v != nil {
			h.res.Ops = i + 1
			h.res.Violation = v
			return h.finish()
		}
		if cfg.Log != nil && (i+1)%10000 == 0 {
			cfg.Log("  %d/%d ops, %d audits, %d crashes, %d conflicts, %d fault recoveries",
				i+1, len(ops), h.res.Audits, h.res.Crashes, h.res.Conflicts, h.res.FaultRecoveries)
		}
	}
	h.res.Ops = len(ops)
	// Armed-but-unfired rules must not leak into the shutdown flushes.
	h.eng.Dev.DisarmAllFaults()
	h.eng.Quiesce()
	h.res.Violation = h.audit(len(ops), "final audit")
	return h.finish()
}

// Run generates the history for cfg and replays it.
func Run(cfg RunConfig) Result {
	return Replay(cfg, History(cfg))
}

// History returns the ops Run would execute for cfg (for shrinking).
func History(cfg RunConfig) []Op {
	cfg = cfg.withDefaults()
	return Generate(GenConfig{Seed: cfg.Seed, Ops: cfg.Ops, Clients: cfg.Clients,
		Keys: cfg.Keys, Crashes: cfg.Crashes, Faults: cfg.Faults})
}
