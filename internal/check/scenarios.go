package check

import (
	"fmt"

	"mvpbt/internal/ssd"
	"mvpbt/internal/workload/hostile"
)

// ScenarioCampaign drives the hostile-workload acceptance criterion: every
// scenario in the hostile generator's catalogue — hot-key version storms,
// sawtooth bulk load/delete cycles, GC-horizon-pinning analytical
// snapshots, tenant-skewed admission-controlled mixes — must run to
// completion on every requested device in the zoo, hold its own embedded
// invariants (those are errors inside hostile.Run), and replay
// byte-identically from the same seed: each (device, scenario, seed) cell
// is executed twice and the two fingerprints are diffed field by field.
// This is the same double-replay discipline as the fault and exhaustion
// campaigns; the scenarios are deterministic functions of their
// parameters, so any divergence is a nondeterminism bug.

// ScenarioConfig parameterizes a hostile-scenario campaign.
type ScenarioConfig struct {
	Seeds []uint64
	// Devices is the device-zoo subset to run on (default: the whole zoo).
	Devices []ssd.DeviceSpec
	// Kinds is the scenario subset (default: every scenario).
	Kinds []hostile.Kind
	// Scale multiplies scenario run length (default 1).
	Scale int
	// Log, when set, receives one progress line per cell.
	Log func(format string, args ...any)
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1}
	}
	if len(c.Devices) == 0 {
		c.Devices = ssd.Zoo()
	}
	if len(c.Kinds) == 0 {
		c.Kinds = hostile.Kinds()
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// ScenarioRun is the outcome of one (device, scenario, seed) cell.
type ScenarioRun struct {
	Device string
	Kind   hostile.Kind
	Seed   uint64
	Fp     hostile.Fingerprint
	// Mismatch describes how the two replays diverged ("" = deterministic).
	Mismatch  string
	Violation *Violation
}

// ScenarioResult aggregates a hostile-scenario campaign.
type ScenarioResult struct {
	Runs       []ScenarioRun
	Violations int
	Mismatches int
}

// Failed reports whether any cell broke a scenario invariant or replayed
// nondeterministically.
func (r *ScenarioResult) Failed() bool {
	return r.Violations > 0 || r.Mismatches > 0
}

// ScenarioCampaign runs the scenario × device × seed cross-product.
func ScenarioCampaign(cfg ScenarioConfig) ScenarioResult {
	cfg = cfg.withDefaults()
	var out ScenarioResult
	for _, dev := range cfg.Devices {
		for _, kind := range cfg.Kinds {
			for _, seed := range cfg.Seeds {
				run := scenarioCell(kind, dev, seed, cfg.Scale)
				out.Runs = append(out.Runs, run)
				if run.Violation != nil {
					out.Violations++
				}
				if run.Mismatch != "" {
					out.Mismatches++
				}
				if cfg.Log != nil {
					status := "ok"
					switch {
					case run.Violation != nil:
						status = "VIOLATION: " + run.Violation.Error()
					case run.Mismatch != "":
						status = "NONDETERMINISTIC: " + run.Mismatch
					}
					fp := run.Fp
					cfg.Log("  device=%-15s scenario=%-13s seed=%d: %d commits, %d typed errs, io %d ops / %.1fms, hash %016x — %s",
						run.Device, kind, seed, fp.Committed, fp.TypedErrs,
						fp.Reads+fp.Writes, float64(fp.IOTimeNS)/1e6, fp.StateHash, status)
				}
			}
		}
	}
	return out
}

// scenarioCell runs one cell twice and diffs the fingerprints.
func scenarioCell(kind hostile.Kind, dev ssd.DeviceSpec, seed uint64, scale int) ScenarioRun {
	run := ScenarioRun{Device: dev.Name, Kind: kind, Seed: seed}
	cfg := hostile.Config{Device: dev, Seed: seed, Scale: scale}
	fp1, err := hostile.Run(kind, cfg)
	run.Fp = fp1
	if err != nil {
		run.Violation = &Violation{Op: fmt.Sprintf("%s on %s", kind, dev.Name), Msg: err.Error(), Err: err}
		return run
	}
	fp2, err := hostile.Run(kind, cfg)
	if err != nil {
		// A replay-only failure is still a failure (and a determinism bug).
		run.Violation = &Violation{Op: fmt.Sprintf("%s on %s (replay)", kind, dev.Name), Msg: err.Error(), Err: err}
		return run
	}
	if diff := hostile.Diff(fp1, fp2); diff != "" {
		run.Mismatch = "replay diverged: " + diff
	}
	return run
}
