package check

import (
	"fmt"
	"strings"
	"testing"
)

// TestExhaustCampaignSmoke is the tier-1 slice of the exhaustion campaign
// (cmd/mvpbt-check -exhaust runs it at more seeds): on both heap layouts a
// capacity-bounded engine must degrade to read-only under fill, keep reads
// oracle-correct while degraded, recover the soft-watermark headroom via
// checkpoint truncation + GC + vacuum, resume writes, recover from the
// checkpointed log, and replay the whole scenario byte-identically. The
// stall probe holds the context-deadline bound on a wedged write stall.
func TestExhaustCampaignSmoke(t *testing.T) {
	var lines []string
	res := ExhaustCampaign(ExhaustConfig{
		Seeds: []uint64{1},
		Log:   func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) },
	})
	if res.Failed() {
		if res.StallViolation != nil {
			t.Errorf("stall probe: %v", res.StallViolation)
		}
		t.Fatalf("campaign failed (%d violations, %d nondeterministic):\n%s",
			res.Violations, res.Mismatches, strings.Join(lines, "\n"))
	}
	for _, r := range res.Runs {
		if r.Fp.NoSpaceInjected == 0 {
			t.Errorf("heap=%v: FaultNoSpace never injected", r.Heap)
		}
		// One read-only entry from the ENOSPC probe, one from the fill.
		if r.Fp.ROEntries < 2 || r.Fp.ROExits < 2 {
			t.Errorf("heap=%v: read-only entry/exit counters too low: %+v", r.Heap, r.Fp)
		}
		if r.Fp.FillTxs == 0 {
			t.Errorf("heap=%v: fill committed no transactions", r.Heap)
		}
		if r.Fp.WALAfter >= r.Fp.WALAtRO {
			t.Errorf("heap=%v: WAL never truncated: %d -> %d", r.Heap, r.Fp.WALAtRO, r.Fp.WALAfter)
		}
		if r.Fp.RecoveredTxs == 0 || r.Fp.StateHash == 0 {
			t.Errorf("heap=%v: recovery fingerprint empty: %+v", r.Heap, r.Fp)
		}
	}
}
