package check

import (
	"fmt"
	"strings"

	"mvpbt/internal/util"
)

// OpKind enumerates the history grammar. Every kind is a no-op when its
// precondition is absent (no open transaction, key not visible, …), so
// any subsequence of a valid history is itself valid — the property the
// greedy shrinker relies on.
type OpKind int

// History operations.
const (
	OpInsert    OpKind = iota // insert a fresh row at Key (update if occupied)
	OpUpdate                  // update the visible row at Key in place (same key)
	OpUpdateKey               // move the visible row from Key to Key2
	OpDelete                  // delete the visible row at Key
	OpLookup                  // point lookup Key on index Ix, compare with oracle
	OpScan                    // range scan [Key, Key2) on index Ix, compare
	OpCount                   // COUNT(*) over [Key, Key2) on index Ix, compare
	OpCommit                  // commit the client's open transaction
	OpAbort                   // abort the client's open transaction
	OpVacuum                  // heap vacuum at the current horizon
	OpEvict                   // force a partition-buffer eviction pass
	OpMerge                   // force an MV-PBT partition merge
	OpPause                   // pause background maintenance
	OpResume                  // resume background maintenance
	OpBarrier                 // quiesce maintenance, then audit everything
	OpCrash                   // crash the engine, recover from the WAL, re-audit
	// Fault ops (generated only with GenConfig.Faults). Every fault is
	// armed as a deterministic ssd.FaultRule whose parameters derive from
	// Op.Key, so a replayed history injects the exact same faults.
	OpFaultRead  // arm 1-3 consecutive read errors on table/index pages
	OpFaultWrite // arm 1-3 consecutive write errors on table/index pages
	OpFaultFlip  // arm a one-shot bit-flip (media rot) on a table/index read
	OpTornCommit // commit through a torn WAL write, resolve the in-doubt
	// transaction from the durable bytes, then crash-restart
	OpTornBatch // batch-commit EVERY client's open transaction under one
	// torn flush, resolve each member independently, then crash-restart
	nOpKinds
)

var opNames = [nOpKinds]string{
	"insert", "update", "updatekey", "delete", "lookup", "scan", "count",
	"commit", "abort", "vacuum", "evict", "merge", "pause", "resume",
	"barrier", "crash", "fault-read", "fault-write", "fault-flip",
	"torn-commit", "torn-batch",
}

func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opNames) {
		return "?"
	}
	return opNames[k]
}

// Op is one step of a history, executed by logical client Client.
type Op struct {
	Client int
	Kind   OpKind
	Key    int // key ordinal (the executor formats it)
	Key2   int // second ordinal: scan/count upper bound, updatekey target
	Ix     int // index selector for reads: 0=mv 1=mvu 2=bt 3=pb
}

func (op Op) String() string {
	switch op.Kind {
	case OpInsert, OpUpdate, OpDelete:
		return fmt.Sprintf("c%d %s k%d", op.Client, op.Kind, op.Key)
	case OpUpdateKey:
		return fmt.Sprintf("c%d %s k%d->k%d", op.Client, op.Kind, op.Key, op.Key2)
	case OpLookup:
		return fmt.Sprintf("c%d %s k%d ix%d", op.Client, op.Kind, op.Key, op.Ix)
	case OpScan, OpCount:
		return fmt.Sprintf("c%d %s [k%d,k%d) ix%d", op.Client, op.Kind, op.Key, op.Key2, op.Ix)
	case OpCommit, OpAbort, OpTornCommit:
		return fmt.Sprintf("c%d %s", op.Client, op.Kind)
	case OpFaultRead, OpFaultWrite, OpFaultFlip, OpTornBatch:
		return fmt.Sprintf("%s k%d", op.Kind, op.Key)
	default:
		return op.Kind.String()
	}
}

// FormatOps renders a history one op per line (failure reports).
func FormatOps(ops []Op) string {
	var b strings.Builder
	for i, op := range ops {
		fmt.Fprintf(&b, "  %3d: %s\n", i, op)
	}
	return b.String()
}

// GenConfig parameterizes history generation.
type GenConfig struct {
	Seed    uint64
	Ops     int
	Clients int
	Keys    int
	Crashes int
	// Faults mixes deterministic device-fault ops into the history
	// (read/write errors, bit rot, torn commit flushes). Off by default so
	// legacy (seed, …) tuples keep generating byte-identical histories.
	Faults bool
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.Keys <= 0 {
		c.Keys = 100
	}
	return c
}

// Generate produces a deterministic randomized history from the seed:
// a mixed read/write workload across Clients logical clients with
// commit/abort decisions, maintenance control (pause/resume windows,
// forced evictions and merges, quiesce barriers), heap vacuums, and
// Crashes crash-restart points spread evenly through the run. The same
// (seed, ops, clients, keys, crashes) tuple always yields the same
// history.
func Generate(cfg GenConfig) []Op {
	cfg = cfg.withDefaults()
	r := util.NewRand(cfg.Seed)
	crashAt := make(map[int]bool, cfg.Crashes)
	for i := 1; i <= cfg.Crashes; i++ {
		crashAt[i*cfg.Ops/(cfg.Crashes+1)] = true
	}
	ops := make([]Op, 0, cfg.Ops)
	pausedFor := 0 // steps until the matching resume
	for len(ops) < cfg.Ops {
		if crashAt[len(ops)] {
			delete(crashAt, len(ops))
			if pausedFor > 0 {
				// Crash clears the pause with the engine; keep the
				// bookkeeping consistent.
				pausedFor = 0
			}
			ops = append(ops, Op{Kind: OpCrash})
			continue
		}
		if pausedFor > 0 {
			pausedFor--
			if pausedFor == 0 {
				ops = append(ops, Op{Kind: OpResume})
				continue
			}
		}
		c := r.Intn(cfg.Clients)
		key := r.Intn(cfg.Keys)
		span := 1 + r.Intn(cfg.Keys/4+1)
		op := Op{Client: c, Key: key, Ix: r.Intn(4)}
		if cfg.Faults {
			// ~8% of ops arm a fault; the extra draw happens only in fault
			// mode, so non-fault histories are unchanged.
			if fr := r.Intn(100); fr < 8 {
				switch {
				case fr < 2:
					op.Kind = OpFaultRead
				case fr < 4:
					op.Kind = OpFaultWrite
				case fr < 6:
					op.Kind = OpFaultFlip
				case fr < 7:
					op.Kind = OpTornCommit
				default:
					op.Kind = OpTornBatch
				}
				ops = append(ops, op)
				continue
			}
		}
		switch roll := r.Intn(1000); {
		case roll < 180:
			op.Kind = OpInsert
		case roll < 400:
			op.Kind = OpUpdate
		case roll < 440:
			op.Kind = OpUpdateKey
			op.Key2 = r.Intn(cfg.Keys)
		case roll < 520:
			op.Kind = OpDelete
		case roll < 680:
			op.Kind = OpLookup
		case roll < 780:
			op.Kind = OpScan
			op.Key2 = key + span
		case roll < 820:
			op.Kind = OpCount
			op.Key2 = key + span
		case roll < 930:
			op.Kind = OpCommit
		case roll < 965:
			op.Kind = OpAbort
		case roll < 975:
			op.Kind = OpVacuum
		case roll < 983:
			op.Kind = OpEvict
		case roll < 989:
			op.Kind = OpMerge
		case roll < 995:
			op.Kind = OpBarrier
		default:
			op.Kind = OpPause
			pausedFor = 5 + r.Intn(25)
		}
		ops = append(ops, op)
	}
	return ops
}
