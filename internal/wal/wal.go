// Package wal implements a logical redo log with crash recovery for the
// storage engine. Logging is OPT-IN (db.Config.EnableWAL): the paper's
// experiments run without it, like the paper's own prototype, but a
// downstream adopter gets durability.
//
// The log is logical: one record per row operation (insert / update /
// delete, addressed by table name and primary key) plus transaction
// begin/commit/abort markers. Records are length-prefixed and
// checksummed; recovery replays the operations of committed transactions
// in log order through the normal table interfaces, which rebuilds every
// derived structure (heaps, indexes, indirection tables) from scratch.
// Replay stops at the first torn or corrupt record, so a crash during a
// log flush loses at most the unflushed suffix — never committed state
// that reached the device.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/util"
)

// Op is a log record type.
type Op uint8

// Log record types.
const (
	OpBegin Op = iota + 1
	OpCommit
	OpAbort
	OpInsert
	OpUpdate
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "?"
	}
}

// Record is one logical log entry.
type Record struct {
	Op    Op
	TxID  uint64 // transaction id at log-write time (ids are remapped on replay)
	Table string // row ops only
	Key   []byte // primary-key of the target row (update/delete)
	Row   []byte // new row payload (insert/update)
}

// encode renders a record with a leading length and trailing checksum:
// [len varint][body][fnv64(body) 8B].
func encode(dst []byte, r *Record) []byte {
	body := []byte{byte(r.Op)}
	body = util.PutUvarint(body, r.TxID)
	body = util.PutBytes(body, []byte(r.Table))
	body = util.PutBytes(body, r.Key)
	body = util.PutBytes(body, r.Row)
	dst = util.PutUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	return util.EncodeUint64(dst, checksum(body))
}

func checksum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// decode parses one record from src, returning it and the bytes consumed.
// ok is false at a torn, truncated or corrupt record.
func decode(src []byte) (rec Record, n int, ok bool) {
	l, c := binary.Uvarint(src)
	if c <= 0 || int(l) <= 0 || c+int(l)+8 > len(src) {
		return Record{}, 0, false
	}
	body := src[c : c+int(l)]
	if util.DecodeUint64(src[c+int(l):]) != checksum(body) {
		return Record{}, 0, false
	}
	rec.Op = Op(body[0])
	if rec.Op < OpBegin || rec.Op > OpDelete {
		return Record{}, 0, false
	}
	i := 1
	tx, m := util.Uvarint(body[i:])
	i += m
	rec.TxID = tx
	tbl, m := util.GetBytes(body[i:])
	i += m
	rec.Table = string(tbl)
	key, m := util.GetBytes(body[i:])
	i += m
	rec.Key = append([]byte(nil), key...)
	row, _ := util.GetBytes(body[i:])
	rec.Row = append([]byte(nil), row...)
	return rec, c + int(l) + 8, true
}

// Writer appends records to a log file. Records buffer in memory and
// reach the device on Flush (called at commit): the log is a byte stream
// split into pages, full pages are written once, and the tail page is
// rewritten as it fills — standard group-commit WAL behaviour.
type Writer struct {
	mu       sync.Mutex
	file     *sfile.File
	pending  []byte // appended since the last flush
	tail     []byte // bytes of the current (partially filled) tail page
	tailPage uint64
	haveTail bool
	written  int64 // total logical bytes appended
}

// NewWriter creates a writer logging to file.
func NewWriter(file *sfile.File) *Writer {
	return &Writer{file: file}
}

// Append adds a record to the log buffer (no device I/O yet).
func (w *Writer) Append(r *Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	before := len(w.pending)
	w.pending = encode(w.pending, r)
	w.written += int64(len(w.pending) - before)
}

// Written returns the total logical log bytes appended so far.
func (w *Writer) Written() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Flush forces buffered records to the device.
func (w *Writer) Flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) == 0 {
		return
	}
	stream := append(w.tail, w.pending...)
	w.pending = nil
	if !w.haveTail {
		w.tailPage = w.file.AllocPage()
		w.haveTail = true
	}
	for len(stream) > storage.PageSize {
		w.file.WritePage(w.tailPage, stream[:storage.PageSize])
		stream = append([]byte(nil), stream[storage.PageSize:]...)
		w.tailPage = w.file.AllocPage()
	}
	page := make([]byte, storage.PageSize)
	copy(page, stream)
	w.file.WritePage(w.tailPage, page)
	w.tail = stream
}

// Reader iterates a log image.
type Reader struct {
	data []byte
	off  int
}

// NewReader reads the log from the file's pages. Pages are concatenated in
// order; decode stops at the first invalid record.
func NewReader(file *sfile.File) *Reader {
	n := file.NumPages()
	data := make([]byte, 0, int(n)*storage.PageSize)
	buf := make([]byte, storage.PageSize)
	for i := uint64(0); i < n; i++ {
		file.ReadPage(i, buf)
		data = append(data, buf...)
	}
	return &Reader{data: data}
}

// NewReaderFromBytes reads a raw log image (tests).
func NewReaderFromBytes(b []byte) *Reader { return &Reader{data: b} }

// Next returns the next valid record; ok is false at end of log (or at
// the first torn record, which by design ends recovery).
func (r *Reader) Next() (Record, bool) {
	for r.off < len(r.data) {
		rec, n, ok := decode(r.data[r.off:])
		if ok {
			r.off += n
			return rec, true
		}
		// A zero length byte means tail padding within a page: skip to the
		// next page boundary and retry; anything else is a torn record.
		if r.data[r.off] == 0 {
			r.off = (r.off/storage.PageSize + 1) * storage.PageSize
			continue
		}
		return Record{}, false
	}
	return Record{}, false
}

// String renders a record for diagnostics.
func (r Record) String() string {
	return fmt.Sprintf("%s tx=%d table=%q key=%x (%dB row)", r.Op, r.TxID, r.Table, r.Key, len(r.Row))
}
