// Package wal implements a logical redo log with crash recovery for the
// storage engine. Logging is OPT-IN (db.Config.EnableWAL): the paper's
// experiments run without it, like the paper's own prototype, but a
// downstream adopter gets durability.
//
// The log is logical: one record per row operation (insert / update /
// delete, addressed by table name and primary key) plus transaction
// begin/commit/abort markers. Records are length-prefixed and
// checksummed; recovery replays the operations of committed transactions
// in log order through the normal table interfaces, which rebuilds every
// derived structure (heaps, indexes, indirection tables) from scratch.
// Replay stops at the first torn or corrupt record, so a crash during a
// log flush loses at most the unflushed suffix — never committed state
// that reached the device.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/util"
)

// ErrWALCorrupt marks a log whose readable prefix ends at an unreadable
// record even though committed transactions exist beyond it — mid-log
// corruption, as opposed to a harmlessly torn tail. Recovery refuses to
// replay garbage and reports how much committed work was dropped.
var ErrWALCorrupt = errors.New("wal: corrupt record mid-log")

// Op is a log record type.
type Op uint8

// Log record types. The Ckpt* records frame a checkpoint snapshot at the
// head of a log generation: CkptBegin opens it (TxID carries the checkpoint
// sequence number), one CkptRow per committed visible row (Table + Row set,
// Key holds the primary key), and CkptEnd closes it with the row count in
// TxID — replay verifies the count so a torn snapshot can never be mistaken
// for a complete one.
const (
	OpBegin Op = iota + 1
	OpCommit
	OpAbort
	OpInsert
	OpUpdate
	OpDelete
	OpCkptBegin
	OpCkptRow
	OpCkptEnd
	// Two-phase-commit records (presumed abort, see DESIGN.md §15).
	// OpPrepare marks the transaction PREPARED: its row operations are
	// durable but the commit decision belongs to a cross-shard coordinator
	// (Key carries the commit-group id, see GroupKey). A prepared
	// transaction survives recovery IN DOUBT — neither committed nor
	// aborted — until a decide record or an external resolution finishes
	// it. OpDecideCommit/OpDecideAbort are that decision (OpDecideCommit is
	// a commit record in every other respect); OpForget marks a decision
	// fully acknowledged in a coordinator log, so checkpointing can drop it.
	OpPrepare
	OpDecideCommit
	OpDecideAbort
	OpForget
)

// opMax is the highest valid record type; decode rejects anything past it.
const opMax = OpForget

func (o Op) String() string {
	switch o {
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpCkptBegin:
		return "ckpt-begin"
	case OpCkptRow:
		return "ckpt-row"
	case OpCkptEnd:
		return "ckpt-end"
	case OpPrepare:
		return "prepare"
	case OpDecideCommit:
		return "decide-commit"
	case OpDecideAbort:
		return "decide-abort"
	case OpForget:
		return "forget"
	default:
		return "?"
	}
}

// Record is one logical log entry.
type Record struct {
	Op    Op
	TxID  uint64 // transaction id at log-write time (ids are remapped on replay)
	Table string // row ops only
	Key   []byte // primary-key of the target row (update/delete)
	Row   []byte // new row payload (insert/update)
}

// encodeBody renders a record body into scratch (reused across calls by the
// Writer so the hot append path allocates nothing once the buffer has grown).
func encodeBody(scratch []byte, r *Record) []byte {
	body := append(scratch[:0], byte(r.Op))
	body = util.PutUvarint(body, r.TxID)
	body = util.PutUvarint(body, uint64(len(r.Table)))
	body = append(body, r.Table...)
	body = util.PutBytes(body, r.Key)
	body = util.PutBytes(body, r.Row)
	return body
}

// encode renders a record with a leading length and trailing checksum:
// [len varint][body][fnv64(body) 8B].
func encode(dst []byte, r *Record) []byte {
	body := encodeBody(nil, r)
	dst = util.PutUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	return util.EncodeUint64(dst, checksum(body))
}

func checksum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// decode parses one record from src, returning it and the bytes consumed.
// ok is false at a torn, truncated or corrupt record.
func decode(src []byte) (rec Record, n int, ok bool) {
	l, c := binary.Uvarint(src)
	if c <= 0 || int(l) <= 0 || c+int(l)+8 > len(src) {
		return Record{}, 0, false
	}
	body := src[c : c+int(l)]
	if util.DecodeUint64(src[c+int(l):]) != checksum(body) {
		return Record{}, 0, false
	}
	rec.Op = Op(body[0])
	if rec.Op < OpBegin || rec.Op > opMax {
		return Record{}, 0, false
	}
	i := 1
	tx, m := util.Uvarint(body[i:])
	i += m
	rec.TxID = tx
	tbl, m := util.GetBytes(body[i:])
	i += m
	rec.Table = string(tbl)
	key, m := util.GetBytes(body[i:])
	i += m
	rec.Key = append([]byte(nil), key...)
	row, _ := util.GetBytes(body[i:])
	rec.Row = append([]byte(nil), row...)
	return rec, c + int(l) + 8, true
}

// Writer appends records to a log file. Records buffer in memory and
// reach the device on Flush (called at commit): the log is a byte stream
// split into pages, full pages are written once, and the tail page is
// rewritten as it fills — standard group-commit WAL behaviour.
type Writer struct {
	mu       sync.Mutex
	file     *sfile.File
	pending  []byte // appended since the last flush
	tail     []byte // bytes of the current (partially filled) tail page
	tailPage uint64
	haveTail bool
	written  int64 // total logical bytes appended

	// Reused scratch (all owned by w, guarded by mu): enc is the record-body
	// encode buffer, page the device write buffer, stream the flush staging
	// buffer. They grow once and make steady-state Append/Flush allocation
	// free.
	enc    []byte
	page   []byte
	stream []byte

	flushes atomic.Int64 // successful Flush calls that reached the device
}

// NewWriter creates a writer logging to file.
func NewWriter(file *sfile.File) *Writer {
	return &Writer{file: file}
}

// Append adds a record to the log buffer (no device I/O yet).
func (w *Writer) Append(r *Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enc = encodeBody(w.enc, r)
	before := len(w.pending)
	w.pending = util.PutUvarint(w.pending, uint64(len(w.enc)))
	w.pending = append(w.pending, w.enc...)
	w.pending = util.EncodeUint64(w.pending, checksum(w.enc))
	w.written += int64(len(w.pending) - before)
}

// Written returns the total logical log bytes appended so far.
func (w *Writer) Written() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Flushes returns the number of Flush calls that performed device writes
// and succeeded (flushes of an empty buffer are not counted).
func (w *Writer) Flushes() int64 { return w.flushes.Load() }

// Flush forces buffered records to the device. Each page write is retried
// a bounded number of times; if a write still fails, the unflushed suffix
// stays buffered and the error (wrapping the device fault) is returned —
// a later Flush resumes at exactly the failed page, reusing its page
// number, so no unreadable gap pages are ever left in the log. A page
// allocation failure (device at capacity) likewise leaves the suffix
// buffered; a later Flush — after reclamation — retries the allocation.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) == 0 {
		return nil
	}
	if !w.haveTail {
		// Allocate before cutting tail/pending so a failure leaves the
		// writer state exactly as it was.
		no, err := w.file.AllocPage()
		if err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		w.tailPage = no
		w.haveTail = true
	}
	// Stage tail+pending in the reusable stream buffer; on failure the
	// unwritten remainder is copied back into pending (the buffers are
	// distinct, so the copy is safe), exactly as before.
	stream := append(w.stream[:0], w.tail...)
	stream = append(stream, w.pending...)
	w.stream = stream[:0]
	w.tail, w.pending = w.tail[:0], w.pending[:0]
	for len(stream) > storage.PageSize {
		if err := w.writePageRetry(w.tailPage, stream[:storage.PageSize]); err != nil {
			w.pending = append(w.pending[:0], stream...)
			w.tail = w.tail[:0]
			return fmt.Errorf("wal: flush: %w", err)
		}
		stream = stream[storage.PageSize:]
		no, err := w.file.AllocPage()
		if err != nil {
			// The filled page was written; the rest stays buffered and the
			// next Flush allocates a fresh tail page for it.
			w.pending = append(w.pending[:0], stream...)
			w.tail = w.tail[:0]
			w.haveTail = false
			return fmt.Errorf("wal: flush: %w", err)
		}
		w.tailPage = no
	}
	if w.page == nil {
		w.page = make([]byte, storage.PageSize)
	}
	copy(w.page, stream)
	clear(w.page[len(stream):])
	if err := w.writePageRetry(w.tailPage, w.page); err != nil {
		w.pending = append(w.pending[:0], stream...)
		w.tail = w.tail[:0]
		return fmt.Errorf("wal: flush: %w", err)
	}
	w.tail = append(w.tail[:0], stream...)
	w.flushes.Add(1)
	return nil
}

func (w *Writer) writePageRetry(pageNo uint64, buf []byte) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = w.file.WritePage(pageNo, buf); err == nil {
			return nil
		}
	}
	return err
}

// Reader iterates a log image.
type Reader struct {
	data    []byte
	off     int
	stopped bool // Next hit an unreadable record (not clean end-of-data)
}

// NewReader reads the log from the file's pages. Pages are concatenated in
// order; decode stops at the first invalid record. Page reads are retried
// a bounded number of times; a persistently unreadable page fails the
// whole read (recovery cannot safely skip log pages).
func NewReader(file *sfile.File) (*Reader, error) {
	n := file.NumPages()
	data := make([]byte, 0, int(n)*storage.PageSize)
	buf := make([]byte, storage.PageSize)
	for i := uint64(0); i < n; i++ {
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = file.ReadPage(i, buf); err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("wal: reading log page %d: %w", i, err)
		}
		data = append(data, buf...)
	}
	return &Reader{data: data}, nil
}

// NewReaderFromBytes reads a raw log image.
func NewReaderFromBytes(b []byte) *Reader { return &Reader{data: b} }

// Next returns the next valid record; ok is false at end of log (or at
// the first torn record, which by design ends recovery).
func (r *Reader) Next() (Record, bool) {
	for r.off < len(r.data) {
		rec, n, ok := decode(r.data[r.off:])
		if ok {
			r.off += n
			return rec, true
		}
		// A zero length byte means tail padding within a page: skip to the
		// next page boundary and retry — but genuine padding is zero all the
		// way to the boundary; a nonzero byte inside it means a zeroed
		// length prefix, i.e. corruption, not padding.
		if r.data[r.off] == 0 {
			next := (r.off/storage.PageSize + 1) * storage.PageSize
			if next > len(r.data) {
				next = len(r.data)
			}
			for i := r.off; i < next; i++ {
				if r.data[i] != 0 {
					r.stopped = true
					return Record{}, false
				}
			}
			r.off = next
			continue
		}
		r.stopped = true
		return Record{}, false
	}
	return Record{}, false
}

// Stopped reports whether iteration ended at an unreadable record rather
// than at the clean end of the image. Whether that is a harmless torn tail
// or real mid-log corruption is decided by Salvage: only dropped COMMITTED
// transactions make it corruption.
func (r *Reader) Stopped() bool { return r.stopped }

// Offset returns the byte offset reached by Next.
func (r *Reader) Offset() int { return r.off }

// Salvage scans the log image beyond off for decodable records and returns
// the TxIDs of commit records found there. After the readable prefix ends,
// these are transactions whose commit reached the device but which recovery
// cannot safely replay (their operations may lie in the unreadable region):
// the count of such transactions not already applied is the damage a
// corrupt log did.
func Salvage(data []byte, off int) (commits []uint64) {
	for i := off; i >= 0 && i < len(data); i++ {
		if data[i] == 0 {
			continue
		}
		if rec, n, ok := decode(data[i:]); ok {
			if rec.Op == OpCommit || rec.Op == OpDecideCommit {
				commits = append(commits, rec.TxID)
			}
			i += n - 1
		}
	}
	return commits
}

// GroupKey encodes a 2PC commit-group id into a record Key (8 bytes,
// big-endian). OpPrepare records carry the coordinator's group id this way
// so recovery can resolve an in-doubt transaction against the coordinator
// log.
func GroupKey(gid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], gid)
	return b[:]
}

// GroupID decodes a GroupKey (0 for a malformed key).
func GroupID(key []byte) uint64 {
	if len(key) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(key)
}

// String renders a record for diagnostics.
func (r Record) String() string {
	return fmt.Sprintf("%s tx=%d table=%q key=%x (%dB row)", r.Op, r.TxID, r.Table, r.Key, len(r.Row))
}
