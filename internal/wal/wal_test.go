package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

func mustReader(t *testing.T, f *sfile.File) *Reader {
	t.Helper()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newFile() *sfile.File {
	m := sfile.NewManager(ssd.New(simclock.New(), ssd.IntelP3600))
	return m.Create("wal", sfile.ClassMeta)
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpBegin, TxID: 7},
		{Op: OpInsert, TxID: 7, Table: "accounts", Key: []byte("k1"), Row: []byte("row-bytes")},
		{Op: OpUpdate, TxID: 7, Table: "accounts", Key: []byte("k1"), Row: []byte("new-row")},
		{Op: OpDelete, TxID: 7, Table: "accounts", Key: []byte("k1")},
		{Op: OpCommit, TxID: 7},
		{Op: OpAbort, TxID: 9},
	}
	var buf []byte
	for i := range recs {
		buf = encode(buf, &recs[i])
	}
	r := NewReaderFromBytes(buf)
	for i := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if got.Op != recs[i].Op || got.TxID != recs[i].TxID || got.Table != recs[i].Table ||
			!bytes.Equal(got.Key, recs[i].Key) || !bytes.Equal(got.Row, recs[i].Row) {
			t.Fatalf("record %d: %+v != %+v", i, got, recs[i])
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("reader returned extra record")
	}
}

func TestWriterReaderThroughFile(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	const n = 2000 // spans many pages
	for i := 0; i < n; i++ {
		w.Append(&Record{Op: OpInsert, TxID: uint64(i), Table: "t",
			Key: []byte(fmt.Sprintf("key-%05d", i)), Row: bytes.Repeat([]byte("x"), 40)})
		if i%10 == 9 {
			w.Flush()
		}
	}
	w.Flush()
	r := mustReader(t, f)
	for i := 0; i < n; i++ {
		rec, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing after file round trip", i)
		}
		if rec.TxID != uint64(i) {
			t.Fatalf("record %d out of order: tx=%d", i, rec.TxID)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record after end")
	}
}

func TestUnflushedRecordsLost(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	w.Append(&Record{Op: OpBegin, TxID: 1})
	w.Flush()
	w.Append(&Record{Op: OpCommit, TxID: 1}) // never flushed: "crash"
	r := mustReader(t, f)
	rec, ok := r.Next()
	if !ok || rec.Op != OpBegin {
		t.Fatalf("flushed record lost: %+v %v", rec, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("unflushed record survived the crash")
	}
}

func TestTornRecordEndsRecovery(t *testing.T) {
	var buf []byte
	buf = encode(buf, &Record{Op: OpBegin, TxID: 1})
	buf = encode(buf, &Record{Op: OpCommit, TxID: 1})
	whole := len(buf)
	buf = encode(buf, &Record{Op: OpInsert, TxID: 2, Table: "t", Row: bytes.Repeat([]byte("y"), 100)})
	// Tear the last record.
	buf = buf[:whole+(len(buf)-whole)/2]
	r := NewReaderFromBytes(buf)
	count := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Fatalf("recovered %d records, want 2 (torn tail must end recovery)", count)
	}
}

func TestCorruptChecksumRejected(t *testing.T) {
	var buf []byte
	buf = encode(buf, &Record{Op: OpInsert, TxID: 3, Table: "t", Key: []byte("k"), Row: []byte("v")})
	buf[len(buf)/2] ^= 0xFF
	r := NewReaderFromBytes(buf)
	if _, ok := r.Next(); ok {
		t.Fatal("corrupt record accepted")
	}
}

func TestTailPageRewrite(t *testing.T) {
	// Many small flushes must keep rewriting the same tail page, not
	// allocate a page per commit.
	f := newFile()
	w := NewWriter(f)
	for i := 0; i < 20; i++ {
		w.Append(&Record{Op: OpCommit, TxID: uint64(i)})
		w.Flush()
	}
	if n := f.NumPages(); n > 2 {
		t.Fatalf("20 tiny commits used %d pages", n)
	}
	r := mustReader(t, f)
	count := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	if count != 20 {
		t.Fatalf("recovered %d records, want 20", count)
	}
}

func TestWrittenCounter(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	if w.Written() != 0 {
		t.Fatal("fresh writer reports bytes")
	}
	w.Append(&Record{Op: OpBegin, TxID: 1})
	if w.Written() == 0 {
		t.Fatal("Written did not grow")
	}
	before := w.Written()
	w.Flush()
	if w.Written() != before {
		t.Fatal("Flush changed the logical byte count")
	}
}

func TestOpAndRecordStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpBegin: "begin", OpCommit: "commit", OpAbort: "abort",
		OpInsert: "insert", OpUpdate: "update", OpDelete: "delete", Op(99): "?",
	} {
		if op.String() != want {
			t.Fatalf("Op(%d).String()=%q want %q", op, op.String(), want)
		}
	}
	s := Record{Op: OpInsert, TxID: 4, Table: "t", Key: []byte{0xAB}, Row: []byte("xy")}.String()
	for _, want := range []string{"insert", "tx=4", `"t"`, "ab", "2B"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("Record.String()=%q missing %q", s, want)
		}
	}
}

func TestEmptyLogRecovers(t *testing.T) {
	f := newFile()
	r := mustReader(t, f)
	if _, ok := r.Next(); ok {
		t.Fatal("empty log yielded a record")
	}
}

func TestRecordSpanningPages(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	big := bytes.Repeat([]byte("B"), 3*8192) // record larger than a page
	w.Append(&Record{Op: OpInsert, TxID: 1, Table: "t", Key: []byte("k"), Row: big})
	w.Append(&Record{Op: OpCommit, TxID: 1})
	w.Flush()
	r := mustReader(t, f)
	rec, ok := r.Next()
	if !ok || len(rec.Row) != len(big) {
		t.Fatalf("page-spanning record lost: ok=%v len=%d", ok, len(rec.Row))
	}
	if rec2, ok := r.Next(); !ok || rec2.Op != OpCommit {
		t.Fatal("record after page-spanner lost")
	}
}

func TestStoppedDistinguishesCleanEnd(t *testing.T) {
	var buf []byte
	buf = encode(buf, &Record{Op: OpBegin, TxID: 1})
	buf = encode(buf, &Record{Op: OpCommit, TxID: 1})
	r := NewReaderFromBytes(buf)
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Stopped() {
		t.Fatal("clean end of image reported as stopped")
	}
	// Corrupt the second record: iteration must stop AND report it.
	buf[len(buf)-4] ^= 0x20
	r = NewReaderFromBytes(buf)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 || !r.Stopped() {
		t.Fatalf("n=%d stopped=%v, want 1 true", n, r.Stopped())
	}
}

func TestSalvageFindsCommitsPastCorruption(t *testing.T) {
	var buf []byte
	buf = encode(buf, &Record{Op: OpBegin, TxID: 1})
	buf = encode(buf, &Record{Op: OpCommit, TxID: 1})
	cut := len(buf)
	buf = encode(buf, &Record{Op: OpInsert, TxID: 2, Table: "t", Key: []byte("k"), Row: []byte("v")})
	buf = encode(buf, &Record{Op: OpCommit, TxID: 2})
	buf = encode(buf, &Record{Op: OpBegin, TxID: 3}) // no commit
	buf[cut+3] ^= 0x01                               // corrupt tx2's insert
	r := NewReaderFromBytes(buf)
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if !r.Stopped() || r.Offset() != cut {
		t.Fatalf("stopped=%v off=%d, want true %d", r.Stopped(), r.Offset(), cut)
	}
	commits := Salvage(buf, r.Offset())
	if len(commits) != 1 || commits[0] != 2 {
		t.Fatalf("salvaged commits %v, want [2]", commits)
	}
}

func TestZeroedLengthMidPageIsCorruption(t *testing.T) {
	// A bit flip that zeroes a record's length byte must not be mistaken
	// for tail padding (which would silently skip the rest of the page).
	var buf []byte
	buf = encode(buf, &Record{Op: OpBegin, TxID: 1})
	cut := len(buf)
	buf = encode(buf, &Record{Op: OpCommit, TxID: 1})
	img := make([]byte, storage.PageSize)
	copy(img, buf)
	img[cut] = 0 // zero the commit record's length prefix
	r := NewReaderFromBytes(img)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 || !r.Stopped() {
		t.Fatalf("n=%d stopped=%v, want 1 true (zeroed length must stop iteration)", n, r.Stopped())
	}
}

func TestFlushRetriesTransientFaultAndResumes(t *testing.T) {
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	f := sfile.NewManager(dev).Create("wal", sfile.ClassMeta)
	w := NewWriter(f)
	// One-shot write fault: Flush's in-line retry must mask it.
	dev.ArmFault(ssd.FaultRule{Kind: ssd.FaultWriteErr, Class: ssd.AnyClass, Ops: []uint64{1}})
	w.Append(&Record{Op: OpBegin, TxID: 1})
	if err := w.Flush(); err != nil {
		t.Fatalf("one-shot write fault should be masked by retry: %v", err)
	}
	// Sticky fault: Flush fails, records stay buffered; after disarm a new
	// Flush resumes at the same page and loses nothing.
	id := dev.ArmFault(ssd.FaultRule{Kind: ssd.FaultWriteErr, Class: ssd.AnyClass, Sticky: true})
	w.Append(&Record{Op: OpCommit, TxID: 1})
	if err := w.Flush(); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("sticky fault should surface, got %v", err)
	}
	dev.DisarmFault(id)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := mustReader(t, f)
	var ops []Op
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		ops = append(ops, rec.Op)
	}
	if len(ops) != 2 || ops[0] != OpBegin || ops[1] != OpCommit || r.Stopped() {
		t.Fatalf("log after faulty flushes: %v stopped=%v", ops, r.Stopped())
	}
	if n := f.NumPages(); n != 1 {
		t.Fatalf("failed flush left gap pages: %d pages", n)
	}
}

// TestFlushesCounter: the counter feeds the flushes/commit metric, so it
// must count exactly the successful flushes that wrote the device — not
// empty no-ops, not failed attempts.
func TestFlushesCounter(t *testing.T) {
	dev := ssd.New(simclock.New(), ssd.IntelP3600)
	f := sfile.NewManager(dev).Create("wal", sfile.ClassMeta)
	w := NewWriter(f)
	if err := w.Flush(); err != nil || w.Flushes() != 0 {
		t.Fatalf("empty flush: err=%v flushes=%d, want 0", err, w.Flushes())
	}
	w.Append(&Record{Op: OpBegin, TxID: 1})
	w.Append(&Record{Op: OpCommit, TxID: 1})
	if err := w.Flush(); err != nil || w.Flushes() != 1 {
		t.Fatalf("first flush: err=%v flushes=%d, want 1", err, w.Flushes())
	}
	if err := w.Flush(); err != nil || w.Flushes() != 1 {
		t.Fatalf("empty re-flush counted: err=%v flushes=%d, want still 1", err, w.Flushes())
	}
	id := dev.ArmFault(ssd.FaultRule{Kind: ssd.FaultWriteErr, Class: ssd.AnyClass, Sticky: true})
	w.Append(&Record{Op: OpBegin, TxID: 2})
	if err := w.Flush(); err == nil || w.Flushes() != 1 {
		t.Fatalf("failed flush counted: err=%v flushes=%d, want still 1", err, w.Flushes())
	}
	dev.DisarmFault(id)
	if err := w.Flush(); err != nil || w.Flushes() != 2 {
		t.Fatalf("resumed flush: err=%v flushes=%d, want 2", err, w.Flushes())
	}
}
