package wal

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
)

func newFile() *sfile.File {
	m := sfile.NewManager(ssd.New(simclock.New(), ssd.IntelP3600))
	return m.Create("wal", sfile.ClassMeta)
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpBegin, TxID: 7},
		{Op: OpInsert, TxID: 7, Table: "accounts", Key: []byte("k1"), Row: []byte("row-bytes")},
		{Op: OpUpdate, TxID: 7, Table: "accounts", Key: []byte("k1"), Row: []byte("new-row")},
		{Op: OpDelete, TxID: 7, Table: "accounts", Key: []byte("k1")},
		{Op: OpCommit, TxID: 7},
		{Op: OpAbort, TxID: 9},
	}
	var buf []byte
	for i := range recs {
		buf = encode(buf, &recs[i])
	}
	r := NewReaderFromBytes(buf)
	for i := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if got.Op != recs[i].Op || got.TxID != recs[i].TxID || got.Table != recs[i].Table ||
			!bytes.Equal(got.Key, recs[i].Key) || !bytes.Equal(got.Row, recs[i].Row) {
			t.Fatalf("record %d: %+v != %+v", i, got, recs[i])
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("reader returned extra record")
	}
}

func TestWriterReaderThroughFile(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	const n = 2000 // spans many pages
	for i := 0; i < n; i++ {
		w.Append(&Record{Op: OpInsert, TxID: uint64(i), Table: "t",
			Key: []byte(fmt.Sprintf("key-%05d", i)), Row: bytes.Repeat([]byte("x"), 40)})
		if i%10 == 9 {
			w.Flush()
		}
	}
	w.Flush()
	r := NewReader(f)
	for i := 0; i < n; i++ {
		rec, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing after file round trip", i)
		}
		if rec.TxID != uint64(i) {
			t.Fatalf("record %d out of order: tx=%d", i, rec.TxID)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record after end")
	}
}

func TestUnflushedRecordsLost(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	w.Append(&Record{Op: OpBegin, TxID: 1})
	w.Flush()
	w.Append(&Record{Op: OpCommit, TxID: 1}) // never flushed: "crash"
	r := NewReader(f)
	rec, ok := r.Next()
	if !ok || rec.Op != OpBegin {
		t.Fatalf("flushed record lost: %+v %v", rec, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("unflushed record survived the crash")
	}
}

func TestTornRecordEndsRecovery(t *testing.T) {
	var buf []byte
	buf = encode(buf, &Record{Op: OpBegin, TxID: 1})
	buf = encode(buf, &Record{Op: OpCommit, TxID: 1})
	whole := len(buf)
	buf = encode(buf, &Record{Op: OpInsert, TxID: 2, Table: "t", Row: bytes.Repeat([]byte("y"), 100)})
	// Tear the last record.
	buf = buf[:whole+(len(buf)-whole)/2]
	r := NewReaderFromBytes(buf)
	count := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Fatalf("recovered %d records, want 2 (torn tail must end recovery)", count)
	}
}

func TestCorruptChecksumRejected(t *testing.T) {
	var buf []byte
	buf = encode(buf, &Record{Op: OpInsert, TxID: 3, Table: "t", Key: []byte("k"), Row: []byte("v")})
	buf[len(buf)/2] ^= 0xFF
	r := NewReaderFromBytes(buf)
	if _, ok := r.Next(); ok {
		t.Fatal("corrupt record accepted")
	}
}

func TestTailPageRewrite(t *testing.T) {
	// Many small flushes must keep rewriting the same tail page, not
	// allocate a page per commit.
	f := newFile()
	w := NewWriter(f)
	for i := 0; i < 20; i++ {
		w.Append(&Record{Op: OpCommit, TxID: uint64(i)})
		w.Flush()
	}
	if n := f.NumPages(); n > 2 {
		t.Fatalf("20 tiny commits used %d pages", n)
	}
	r := NewReader(f)
	count := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	if count != 20 {
		t.Fatalf("recovered %d records, want 20", count)
	}
}

func TestWrittenCounter(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	if w.Written() != 0 {
		t.Fatal("fresh writer reports bytes")
	}
	w.Append(&Record{Op: OpBegin, TxID: 1})
	if w.Written() == 0 {
		t.Fatal("Written did not grow")
	}
	before := w.Written()
	w.Flush()
	if w.Written() != before {
		t.Fatal("Flush changed the logical byte count")
	}
}

func TestOpAndRecordStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpBegin: "begin", OpCommit: "commit", OpAbort: "abort",
		OpInsert: "insert", OpUpdate: "update", OpDelete: "delete", Op(99): "?",
	} {
		if op.String() != want {
			t.Fatalf("Op(%d).String()=%q want %q", op, op.String(), want)
		}
	}
	s := Record{Op: OpInsert, TxID: 4, Table: "t", Key: []byte{0xAB}, Row: []byte("xy")}.String()
	for _, want := range []string{"insert", "tx=4", `"t"`, "ab", "2B"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("Record.String()=%q missing %q", s, want)
		}
	}
}

func TestEmptyLogRecovers(t *testing.T) {
	f := newFile()
	r := NewReader(f)
	if _, ok := r.Next(); ok {
		t.Fatal("empty log yielded a record")
	}
}

func TestRecordSpanningPages(t *testing.T) {
	f := newFile()
	w := NewWriter(f)
	big := bytes.Repeat([]byte("B"), 3*8192) // record larger than a page
	w.Append(&Record{Op: OpInsert, TxID: 1, Table: "t", Key: []byte("k"), Row: big})
	w.Append(&Record{Op: OpCommit, TxID: 1})
	w.Flush()
	r := NewReader(f)
	rec, ok := r.Next()
	if !ok || len(rec.Row) != len(big) {
		t.Fatalf("page-spanning record lost: ok=%v len=%d", ok, len(rec.Row))
	}
	if rec2, ok := r.Next(); !ok || rec2.Op != OpCommit {
		t.Fatal("record after page-spanner lost")
	}
}
