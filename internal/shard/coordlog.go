package shard

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"mvpbt/internal/page"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/wal"
)

// coordLog is the router's two-phase-commit coordinator log (DESIGN.md
// §15): the durable record of every COMMIT decision for a multi-shard
// commit group, on its own device, independent of every shard. The
// protocol is presumed abort, so the log is small and write-once-per-group:
//
//   - a group id is allocated in memory only (inflight set, nothing
//     durable) — a coordinator crash before the decision leaves no trace,
//     and recovering participants that find no decision abort;
//   - the commit decision is one flushed OpDecideCommit record keyed by
//     group id — THE commit point of the whole group;
//   - abort decisions write nothing (absence IS the abort record);
//   - once every leg has durably applied its decision the group is
//     forgotten (OpForget), letting checkpointing drop it.
//
// Like the engines' walmeta, the log is checkpointed through a dual-slot
// page-checksummed superblock: a checkpoint rewrites the live (unforgotten)
// decisions as a fresh generation, commits the switch with one superblock
// page write, and frees the old generation. The superblock also carries the
// coordinator INCARNATION: recovery bumps it durably before handing out a
// single new group id, so ids from a pre-crash inflight group (which left
// no trace) can never be reused and mis-resolve a stale in-doubt leg.
type coordLog struct {
	mu   sync.Mutex
	fm   *sfile.Manager
	file *sfile.File // current generation
	meta *sfile.File // dual-slot superblock
	w    *wal.Writer
	seq  uint64 // checkpoint sequence (superblock slot = seq%2)
	base int64  // w.Written() at the current generation's start

	incarnation uint64 // durably bumped on every recovery
	nextCounter uint64 // low 32 bits of the next group id

	inflight  map[uint64]bool // allocated, undecided (in-memory only)
	decisions map[uint64]bool // durable commit decisions, unforgotten
	pending   map[uint64]int  // gid → legs still to acknowledge

	decides, forgets, ckpts, recovers int64
}

// coordSuper layout inside a page's client area:
// magic(8) | seq(8) | fileID(8) | incarnation(8).
const coordMagic = 0x4d56_5042_5432_5043 // "MVPBT2PC"

// coordCkptBytes triggers a coordinator-log checkpoint once the current
// generation outgrows it.
const coordCkptBytes = 32 << 10

func encodeCoordSuper(buf []byte, seq uint64, id storage.FileID, incarnation uint64) {
	p := page.Wrap(buf)
	p.Init()
	c := p.Client()
	binary.LittleEndian.PutUint64(c[0:8], coordMagic)
	binary.LittleEndian.PutUint64(c[8:16], seq)
	binary.LittleEndian.PutUint64(c[16:24], uint64(id))
	binary.LittleEndian.PutUint64(c[24:32], incarnation)
	page.StampChecksum(buf)
}

func decodeCoordSuper(buf []byte) (seq uint64, id storage.FileID, incarnation uint64, ok bool) {
	if !page.VerifyChecksum(buf) {
		return 0, 0, 0, false
	}
	c := page.Wrap(buf).Client()
	if binary.LittleEndian.Uint64(c[0:8]) != coordMagic {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(c[8:16]), storage.FileID(binary.LittleEndian.Uint64(c[16:24])),
		binary.LittleEndian.Uint64(c[24:32]), true
}

// newCoordLog builds a coordinator log on a fresh private device and
// durably stamps incarnation 1 before any group id exists.
func newCoordLog() (*coordLog, error) {
	clk := simclock.New()
	dev := ssd.NewWithSpec(clk, ssd.DeviceSpec{Profile: ssd.IntelP3600})
	c := &coordLog{
		fm:          sfile.NewManager(dev),
		seq:         1,
		incarnation: 1,
		inflight:    map[uint64]bool{},
		decisions:   map[uint64]bool{},
		pending:     map[uint64]int{},
	}
	c.file = c.fm.Create("coord", sfile.ClassMeta)
	c.meta = c.fm.Create("coordmeta", sfile.ClassMeta)
	c.w = wal.NewWriter(c.file)
	if _, err := c.meta.AllocRun(2); err != nil {
		return nil, fmt.Errorf("shard: coordinator log superblock alloc: %w", err)
	}
	if err := c.writeSuperLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// writeSuperLocked stamps the current (seq, generation, incarnation) into
// slot seq%2 with bounded retries.
func (c *coordLog) writeSuperLocked() error {
	buf := make([]byte, storage.PageSize)
	encodeCoordSuper(buf, c.seq, c.file.ID(), c.incarnation)
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = c.meta.WritePage(c.seq%2, buf); err == nil {
			return nil
		}
	}
	return fmt.Errorf("shard: coordinator log superblock write: %w", err)
}

// beginGroup allocates a commit-group id. Nothing is durable yet — a crash
// now means the group never existed (presumed abort).
func (c *coordLog) beginGroup() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextCounter++
	gid := c.incarnation<<32 | c.nextCounter
	c.inflight[gid] = true
	return gid
}

// decideCommit durably logs the group's COMMIT decision — the commit point
// of the whole group. legs is how many participant acknowledgements retire
// the decision (forget). On error the decision did not happen: the caller
// must treat the group as aborted.
func (c *coordLog) decideCommit(gid uint64, legs int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Append(&wal.Record{Op: wal.OpDecideCommit, TxID: gid})
	if err := c.w.Flush(); err != nil {
		delete(c.inflight, gid)
		return fmt.Errorf("shard: coordinator decision flush: %w", err)
	}
	delete(c.inflight, gid)
	c.decisions[gid] = true
	c.pending[gid] = legs
	c.decides++
	return nil
}

// decideAbort aborts the group. Presumed abort: nothing is written — the
// absence of a decision IS the abort record.
func (c *coordLog) decideAbort(gid uint64) {
	c.mu.Lock()
	delete(c.inflight, gid)
	c.mu.Unlock()
}

// ack records one leg's durable application of a commit decision. The last
// ack forgets the group: an OpForget record lets the next checkpoint drop
// the decision. Acks for groups this incarnation doesn't track (resolved
// legs of a pre-recovery group) are ignored — their decisions simply stay
// live until checkpointing rewrites them, which is harmless because
// decisions are idempotent.
func (c *coordLog) ack(gid uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, tracked := c.pending[gid]
	if !tracked {
		return
	}
	if n--; n > 0 {
		c.pending[gid] = n
		return
	}
	delete(c.pending, gid)
	delete(c.decisions, gid)
	c.forgets++
	c.w.Append(&wal.Record{Op: wal.OpForget, TxID: gid})
	// The forget record need not be durable: losing it only resurrects an
	// idempotent decision. It reaches the device with the next decision
	// flush, an image capture, or the checkpoint below.
	if c.w.Written()-c.base > coordCkptBytes {
		c.checkpointLocked()
	}
}

// decisionOf answers a participant's in-doubt query: committed reports a
// durable commit decision, inflight reports a group this coordinator is
// still deciding (the participant must stay in doubt). Neither set means
// presumed abort.
func (c *coordLog) decisionOf(gid uint64) (committed, inflight bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decisions[gid], c.inflight[gid]
}

// checkpointLocked rewrites the live decisions as a new generation and
// swaps the superblock to it (same recipe as the engines' WAL checkpoint:
// new generation durable first, then the superblock slot, then free the
// old pages). Failures before the superblock write abandon the new
// generation; the old log stays authoritative.
func (c *coordLog) checkpointLocked() {
	seq := c.seq + 1
	newFile := c.fm.Create(fmt.Sprintf("coord.%d", seq), sfile.ClassMeta)
	newW := wal.NewWriter(newFile)
	abandon := func() {
		if n := newFile.NumPages(); n > 0 {
			newFile.FreeRun(0, int(n))
		}
	}
	gids := make([]uint64, 0, len(c.decisions))
	for gid := range c.decisions {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		newW.Append(&wal.Record{Op: wal.OpDecideCommit, TxID: gid})
	}
	if len(gids) > 0 {
		if err := newW.Flush(); err != nil {
			abandon()
			return
		}
	}
	oldFile, oldSeq := c.file, c.seq
	c.file, c.seq = newFile, seq
	if err := c.writeSuperLocked(); err != nil {
		c.file, c.seq = oldFile, oldSeq
		abandon()
		return
	}
	if n := oldFile.NumPages(); n > 0 {
		oldFile.FreeRun(0, int(n))
	}
	c.w = newW
	c.base = newW.Written()
	c.ckpts++
}

// image returns the durable bytes of the authoritative generation — what a
// coordinator crash would leave behind. Unflushed forget records are
// flushed first so the image is the freshest durable state (a real crash
// could also lose them; recover tolerates either).
func (c *coordLog) image() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Flush()
	f := c.currentFileLocked()
	n := f.NumPages()
	out := make([]byte, 0, int(n)*storage.PageSize)
	buf := make([]byte, storage.PageSize)
	for i := uint64(0); i < n; i++ {
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = f.ReadPage(i, buf); err == nil {
				break
			}
		}
		if err != nil {
			break
		}
		out = append(out, buf...)
	}
	return out
}

// currentFileLocked resolves the authoritative generation from the
// superblock (best valid slot wins; the original file is the fallback).
func (c *coordLog) currentFileLocked() *sfile.File {
	best := c.file
	var bestSeq uint64
	buf := make([]byte, storage.PageSize)
	for slot := uint64(0); slot < 2; slot++ {
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = c.meta.ReadPage(slot, buf); err == nil {
				break
			}
		}
		if err != nil {
			continue
		}
		seq, id, _, ok := decodeCoordSuper(buf)
		if !ok || seq < bestSeq {
			continue
		}
		if f := c.fm.Lookup(id); f != nil {
			best, bestSeq = f, seq
		}
	}
	return best
}

// recover rebuilds the coordinator from a durable image (the simulated
// coordinator crash): inflight groups vanish — presumed abort — and the
// incarnation is durably bumped via an immediate checkpoint BEFORE any new
// group id is handed out, so pre-crash inflight ids can never be reused.
func (c *coordLog) recover(img []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight = map[uint64]bool{}
	c.pending = map[uint64]int{}
	c.decisions = map[uint64]bool{}
	r := wal.NewReaderFromBytes(img)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		switch rec.Op {
		case wal.OpDecideCommit:
			c.decisions[rec.TxID] = true
		case wal.OpForget:
			delete(c.decisions, rec.TxID)
		}
	}
	c.incarnation++
	c.nextCounter = 0
	c.recovers++
	c.checkpointLocked()
}

// CoordStats is the coordinator log's externally visible state.
type CoordStats struct {
	// LiveDecisions is the number of unforgotten commit decisions.
	LiveDecisions int
	// Inflight is the number of allocated, undecided commit groups.
	Inflight int
	// LogBytes is the device footprint (current generation + superblock).
	LogBytes int64
	// Decides/Forgets/Checkpoints/Recoveries count protocol events.
	Decides, Forgets, Checkpoints, Recoveries int64
	// Incarnation is the coordinator's durable incarnation number.
	Incarnation uint64
}

func (c *coordLog) stats() CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CoordStats{
		LiveDecisions: len(c.decisions),
		Inflight:      len(c.inflight),
		LogBytes:      int64(c.file.NumPages())*storage.PageSize + int64(c.meta.NumPages())*storage.PageSize,
		Decides:       c.decides,
		Forgets:       c.forgets,
		Checkpoints:   c.ckpts,
		Recoveries:    c.recovers,
		Incarnation:   c.incarnation,
	}
}
