// Shard supervision: a per-shard health state machine driven by the typed
// errors the engine already surfaces (storage.ErrIOFault storms,
// storage.ErrCorruptPage, failed WAL flushes), automatic restart of a
// failed shard through WAL crash recovery on its own goroutine, and a
// circuit breaker bounding restart churn (DESIGN.md §14).
//
// The supervisor never blocks the router's data path: health observation
// is a handful of atomics on the existing error-return path, and the only
// lock a restart takes is the failed shard's own gate — every other shard
// keeps serving reads and writes throughout recovery. Operations that
// reach a failed or recovering shard fail fast with ErrShardUnavailable,
// which the server maps to a retriable wire status (StatusUnavailable) so
// clients can distinguish "back off and retry" from real failures.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/storage"
)

// HealthState is one shard's position in the supervision state machine:
//
//	healthy ──ErrReadOnly──▶ degraded ──writes resume──▶ healthy
//	healthy/degraded ──fault storm, corruption──▶ failed
//	failed ──restart attempt──▶ recovering ──recovery ok──▶ healthy
//	recovering ──recovery failed──▶ failed (backoff, breaker)
type HealthState int32

const (
	// Healthy: serving reads and writes normally.
	Healthy HealthState = iota
	// Degraded: the shard's space governor has gone read-only
	// (db.ErrReadOnly); reads keep working, writes fail per-key. The
	// governor heals this state itself — the supervisor only reports it.
	Degraded
	// Failed: the shard hit a fault storm or corruption and has been
	// taken out of service; operations fail with ErrShardUnavailable
	// while a restart goroutine works on it.
	Failed
	// Recovering: a restart attempt is in flight — the old engine has
	// been failure-stopped and a fresh one is replaying the WAL image.
	Recovering
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("HealthState(%d)", int32(s))
}

// ErrShardUnavailable is the typed cause inside the ShardError returned by
// operations routed to a failed or recovering shard. It is retriable: the
// supervisor is restarting the shard, and every other shard keeps serving.
var ErrShardUnavailable = errors.New("shard: unavailable (failed, restart in progress)")

// SupervisorConfig tunes the shard supervisor (Config.Supervise enables it).
type SupervisorConfig struct {
	// FaultThreshold is how many consecutive fault-class errors
	// (storage.ErrIOFault, db.ErrClosed) an otherwise-live shard may
	// return before it is failed and restarted (default 3). A
	// storage.ErrCorruptPage fails the shard immediately — corruption
	// does not heal with retries.
	FaultThreshold int
	// RestartBackoff is the delay before the second restart attempt;
	// later attempts back off exponentially (default 10ms). The first
	// attempt runs immediately.
	RestartBackoff time.Duration
	// MaxBackoff caps the exponential backoff and sets the half-open
	// probe cadence once the breaker is open (default 1s).
	MaxBackoff time.Duration
	// BreakerThreshold is how many consecutive failed restart attempts
	// open the circuit breaker (default 4). An open breaker stops the
	// exponential escalation and probes half-open at MaxBackoff cadence;
	// the first successful probe closes it again.
	BreakerThreshold int
	// OnTransition, if set, observes every state transition. Called from
	// supervisor goroutines and the data path; keep it fast.
	OnTransition func(shard int, from, to HealthState)
	// RestartHook, if set, runs at the start of every restart attempt
	// (before the old engine is crashed). An error fails the attempt —
	// the test seam for driving the breaker.
	RestartHook func(shard int) error
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.FaultThreshold <= 0 {
		c.FaultThreshold = 3
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 4
	}
	return c
}

// HealthInfo is one shard's externally visible supervision state.
type HealthInfo struct {
	State HealthState
	// Restarts counts completed restart-through-recovery cycles.
	Restarts uint64
	// ConsecFaults is the current consecutive fault-class error count
	// (reset by any successful operation).
	ConsecFaults int32
	// RestartFailures counts failed restart attempts since the last
	// successful one.
	RestartFailures uint64
	// BreakerOpen reports an open circuit breaker: restart attempts have
	// failed BreakerThreshold times in a row and the supervisor is down
	// to half-open probes at MaxBackoff cadence.
	BreakerOpen bool
	// LastError is the most recent error that failed the shard or a
	// restart attempt ("" when none).
	LastError string
}

// shardHealth is the per-shard supervision state. The gate orders the data
// path against engine swaps: operations hold it shared for the duration of
// one engine call, a restart holds it exclusively across the swap. Epoch
// increments on every swap so transactions can detect that a leg they
// captured belongs to a dead incarnation.
type shardHealth struct {
	gate  sync.RWMutex
	state atomic.Int32
	epoch atomic.Uint64

	consec       atomic.Int32
	restarts     atomic.Uint64
	restartFails atomic.Uint64
	breakerOpen  atomic.Bool
	restarting   atomic.Bool

	errMu   sync.Mutex
	lastErr string
}

func (h *shardHealth) setLastErr(err error) {
	h.errMu.Lock()
	h.lastErr = err.Error()
	h.errMu.Unlock()
}

func (h *shardHealth) lastError() string {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	return h.lastErr
}

// unavailable reports whether the shard is out of service (failed or
// mid-restart).
func (h *shardHealth) unavailable() bool {
	st := HealthState(h.state.Load())
	return st == Failed || st == Recovering
}

// supervisor owns the restart goroutines and the transition bookkeeping.
type supervisor struct {
	r   *Router
	cfg SupervisorConfig

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

func newSupervisor(r *Router, cfg SupervisorConfig) *supervisor {
	return &supervisor{r: r, cfg: cfg.withDefaults(), stop: make(chan struct{})}
}

// shutdown stops the supervisor and waits for in-flight restarts to
// finish or bail. Called by Router.Close before the engines come down.
func (s *supervisor) shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// transition CASes shard i from `from` to `to`, firing the hook on success.
func (s *supervisor) transition(i int, from, to HealthState) bool {
	h := s.r.health[i]
	if !h.state.CompareAndSwap(int32(from), int32(to)) {
		return false
	}
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(i, from, to)
	}
	return true
}

// observe classifies one operation's outcome on shard i. Nil errors reset
// the consecutive-fault counter (and heal a reported degradation); typed
// fault errors count toward the storm threshold; corruption fails the
// shard immediately.
func (s *supervisor) observe(i int, err error) {
	h := s.r.health[i]
	if err == nil {
		h.consec.Store(0)
		s.transition(i, Degraded, Healthy)
		return
	}
	switch {
	case errors.Is(err, storage.ErrCorruptPage):
		h.setLastErr(err)
		s.fail(i)
	case errors.Is(err, storage.ErrIOFault), errors.Is(err, db.ErrClosed):
		h.setLastErr(err)
		if int(h.consec.Add(1)) >= s.cfg.FaultThreshold {
			s.fail(i)
		}
	case errors.Is(err, db.ErrReadOnly):
		s.transition(i, Healthy, Degraded)
	}
	// Everything else (conflicts, context cancellation, ErrShardUnavailable
	// bounced off the gate) says nothing about the shard's health.
}

// fail moves shard i to Failed from any live state and kicks off the
// restart goroutine (one at a time per shard).
func (s *supervisor) fail(i int) {
	h := s.r.health[i]
	moved := s.transition(i, Healthy, Failed) || s.transition(i, Degraded, Failed)
	if !moved {
		return // already failed or recovering
	}
	if h.restarting.CompareAndSwap(false, true) {
		s.wg.Add(1)
		go s.restartLoop(i)
	}
}

// restartLoop drives shard i failed → recovering → healthy: immediate
// first attempt, exponential backoff between failures, breaker after
// BreakerThreshold consecutive failures (half-open probes at MaxBackoff
// cadence), until an attempt succeeds or the router closes.
func (s *supervisor) restartLoop(i int) {
	defer s.wg.Done()
	h := s.r.health[i]
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			d := s.cfg.RestartBackoff << (attempt - 1)
			if d > s.cfg.MaxBackoff || d <= 0 {
				d = s.cfg.MaxBackoff
			}
			if attempt >= s.cfg.BreakerThreshold {
				h.breakerOpen.Store(true)
				d = s.cfg.MaxBackoff
			}
			select {
			case <-s.stop:
				h.restarting.Store(false)
				return
			case <-time.After(d):
			}
		}
		select {
		case <-s.stop:
			h.restarting.Store(false)
			return
		default:
		}
		s.transition(i, Failed, Recovering)
		err := s.restartShard(i)
		if err == nil {
			h.consec.Store(0)
			h.restartFails.Store(0)
			h.breakerOpen.Store(false)
			h.restarts.Add(1)
			// Clear restarting BEFORE publishing Healthy: a failure observed
			// in the gap then either sees Recovering (ignored) or spawns a
			// fresh restart goroutine — never a stranded Failed shard.
			h.restarting.Store(false)
			s.transition(i, Recovering, Healthy)
			return
		}
		h.restartFails.Add(1)
		h.setLastErr(err)
		s.transition(i, Recovering, Failed)
	}
}

// restartShard replaces shard i's engine with a freshly recovered one:
// capture the WAL image, failure-stop the old engine, build a new engine
// from the router's template, and replay every committed transaction into
// it. The shard's gate is held exclusively only across the capture and the
// swap — no other shard is touched. Exactly the acknowledged (durably
// flushed) commits survive, per the crash-recovery contract; the fresh
// engine also starts with a fresh simulated device, so armed fault rules
// (the storms that failed the shard) do not follow it.
func (s *supervisor) restartShard(i int) error {
	if hook := s.cfg.RestartHook; hook != nil {
		if err := hook(i); err != nil {
			return err
		}
	}
	r := s.r
	h := r.health[i]
	sh := r.shards[i]
	h.gate.Lock()
	defer h.gate.Unlock()
	var img []byte
	if r.cfg.Engine.EnableWAL {
		img = sh.Engine.LogImage()
	}
	sh.Engine.Crash()
	eng := db.NewEngine(r.cfg.Engine)
	kvName := fmt.Sprintf("%s%d/kv", r.cfg.DirPrefix, i)
	kv, err := db.NewMVPBTKV(eng, kvName, r.cfg.KVOptions)
	if err != nil {
		eng.Close()
		return fmt.Errorf("shard %d: rebuild: %w", i, err)
	}
	if img != nil {
		if _, err := eng.RecoverAll(img, nil, map[string]*db.MVPBTKV{kvName: kv}); err != nil {
			eng.Close()
			return fmt.Errorf("shard %d: recovery: %w", i, err)
		}
		// Recovery re-parks prepared-undecided 2PC legs in doubt; resolve
		// them against the coordinator log before the shard goes back into
		// service: a durable commit decision commits the leg (and is
		// acknowledged toward the group's forget), a group the coordinator
		// is still deciding stays in doubt (the in-flight commit2PC will
		// resolve it), and a group the log does not vouch for is PRESUMED
		// ABORT — the decision record is the commit point, its absence is
		// the abort record.
		if r.coord != nil {
			for _, d := range eng.InDoubtList() {
				committed, inflight := r.coord.decisionOf(d.GID)
				if inflight {
					continue
				}
				if err := eng.ResolvePrepared(d.TxID, committed); err != nil {
					eng.Close()
					return fmt.Errorf("shard %d: resolving in-doubt tx %d: %w", i, d.TxID, err)
				}
				if committed {
					r.coord.ack(d.GID)
				}
			}
		}
	}
	sh.Engine, sh.KV = eng, kv
	h.epoch.Add(1)
	return nil
}

// observe forwards an operation outcome to the supervisor (no-op when
// supervision is off).
func (r *Router) observe(i int, err error) {
	if r.sup != nil {
		r.sup.observe(i, err)
	}
}

// Health returns shard i's supervision state. Without Config.Supervise the
// state machine never leaves Healthy.
func (r *Router) Health(i int) HealthInfo {
	h := r.health[i]
	return HealthInfo{
		State:           HealthState(h.state.Load()),
		Restarts:        h.restarts.Load(),
		ConsecFaults:    h.consec.Load(),
		RestartFailures: h.restartFails.Load(),
		BreakerOpen:     h.breakerOpen.Load(),
		LastError:       h.lastError(),
	}
}

// FailShard administratively fails shard i (as if a fault storm had), and
// the supervisor restarts it through recovery. Requires Config.Supervise.
func (r *Router) FailShard(i int, cause error) error {
	if r.sup == nil {
		return errors.New("shard: FailShard requires Config.Supervise")
	}
	if cause == nil {
		cause = errors.New("shard: administratively failed")
	}
	r.health[i].setLastErr(cause)
	r.sup.fail(i)
	return nil
}
