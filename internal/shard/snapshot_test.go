package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mvpbt/internal/db"
)

// pairOnDistinctShards probes for two keys owned by two different shards:
// the smallest unit of a cross-shard logical operation.
func pairOnDistinctShards(t *testing.T, r *Router, tag string) (k1, k2 []byte) {
	t.Helper()
	k1 = []byte(fmt.Sprintf("%s-left", tag))
	s1 := r.ShardOf(k1)
	for i := 0; i < 10000; i++ {
		k2 = []byte(fmt.Sprintf("%s-right-%04d", tag, i))
		if r.ShardOf(k2) != s1 {
			return k1, k2
		}
	}
	t.Fatal("no cross-shard pair found")
	return nil, nil
}

// TestSnapshotNoTornCut is the randomized multi-client consistency test:
// per key pair, one writer commits version v to BOTH keys in one
// multi-shard transaction (K1@shard-A, K2@shard-B, one logical op);
// concurrent readers take cross-shard snapshots and must always observe
// the pair at the SAME version — both-or-neither for every commit, never
// a torn cut where one shard's half landed and the other's did not.
//
// Each pair has a single writer (versions are then monotone per shard),
// while readers are many and pick pairs at random, so a snapshot that
// interleaved with the middle of any commit group would read k1@v and
// k2@v' with v != v' and fail loudly.
func TestSnapshotNoTornCut(t *testing.T) {
	r := newRouter(t, 4)

	const pairs = 3
	const commitsPerPair = 120
	const readers = 4

	type pair struct{ k1, k2 []byte }
	ps := make([]pair, pairs)
	for i := range ps {
		k1, k2 := pairOnDistinctShards(t, r, fmt.Sprintf("p%d", i))
		ps[i] = pair{k1, k2}
		// Seed version 0 so readers never see the pair half-initialized.
		tx, err := r.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Put(k1, []byte("00000000")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Put(k2, []byte("00000000")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	var writersDone atomic.Int32
	var wg sync.WaitGroup
	errc := make(chan error, pairs+readers)

	for pi := range ps {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			defer writersDone.Add(1)
			p := ps[pi]
			for v := 1; v <= commitsPerPair; v++ {
				tx, err := r.Begin()
				if err != nil {
					errc <- err
					return
				}
				val := []byte(fmt.Sprintf("%08d", v))
				if err := tx.Put(p.k1, val); err != nil {
					tx.Abort()
					errc <- err
					return
				}
				if err := tx.Put(p.k2, val); err != nil {
					tx.Abort()
					errc <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errc <- err
					return
				}
			}
		}(pi)
	}

	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ri)))
			for writersDone.Load() < pairs {
				p := ps[rng.Intn(pairs)]
				tx, err := r.Begin()
				if err != nil {
					errc <- err
					return
				}
				v1, ok1, err1 := tx.Get(p.k1)
				v2, ok2, err2 := tx.Get(p.k2)
				tx.Commit()
				if err1 != nil || err2 != nil {
					errc <- fmt.Errorf("snapshot read: %v / %v", err1, err2)
					return
				}
				if !ok1 || !ok2 {
					errc <- fmt.Errorf("torn cut: pair half-visible (%v/%v)", ok1, ok2)
					return
				}
				if string(v1) != string(v2) {
					errc <- fmt.Errorf("torn cut: %q@%q vs %q@%q", p.k1, v1, p.k2, v2)
					return
				}
			}
		}(ri)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every pair ends at its final version on both shards.
	want := fmt.Sprintf("%08d", commitsPerPair)
	for _, p := range ps {
		v1, ok1, _ := r.Get(p.k1)
		v2, ok2, _ := r.Get(p.k2)
		if !ok1 || !ok2 || string(v1) != want || string(v2) != want {
			t.Fatalf("final state wrong: %q=%q(%v) %q=%q(%v) want %q",
				p.k1, v1, ok1, p.k2, v2, ok2, want)
		}
	}
}

// TestScanNoTornCut: the consistent cut must hold for multi-shard SCANS
// too — a scan that merges per-shard streams at one snapshot vector must
// see a concurrently rewritten pair at a single version.
func TestScanNoTornCut(t *testing.T) {
	r := newRouter(t, 2)
	k1, k2 := pairOnDistinctShards(t, r, "scanpair")

	seed, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	seed.Put(k1, []byte("00000000"))
	seed.Put(k2, []byte("00000000"))
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	const commits = 100
	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for v := 1; v <= commits; v++ {
			tx, err := r.Begin()
			if err != nil {
				errc <- err
				return
			}
			val := []byte(fmt.Sprintf("%08d", v))
			if e1, e2 := tx.Put(k1, val), tx.Put(k2, val); e1 != nil || e2 != nil {
				tx.Abort()
				errc <- fmt.Errorf("writer put: %v / %v", e1, e2)
				return
			}
			if err := tx.Commit(); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			got := map[string]string{}
			if err := r.Scan([]byte("scanpair"), 10, func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			}); err != nil {
				errc <- err
				return
			}
			v1, v2 := got[string(k1)], got[string(k2)]
			if v1 == "" || v2 == "" {
				errc <- fmt.Errorf("scan missed a pair member: %v", got)
				return
			}
			if v1 != v2 {
				errc <- fmt.Errorf("scan saw torn cut: %s vs %s", v1, v2)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestSnapshotWithDegradedShard: cross-shard snapshots must keep working
// (including on the degraded shard's data) while one shard is read-only,
// and multi-shard commit groups touching it must fail without leaving a
// torn half on the healthy shard visible as the pair's newest version —
// the writer aborts the healthy leg on the first degraded-leg failure.
func TestSnapshotWithDegradedShard(t *testing.T) {
	r := newRouter(t, 2)
	k1, k2 := pairOnDistinctShards(t, r, "degpair")

	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx.Put(k1, []byte("v0"))
	tx.Put(k2, []byte("v0"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	degraded := r.ShardOf(k2)
	r.Shard(degraded).Engine.ForceReadOnly(true)
	defer r.Shard(degraded).Engine.ForceReadOnly(false)

	// A writer that hits the degraded leg aborts the whole logical op.
	w, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(k1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(k2, []byte("v1")); !errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("degraded shard write: %v, want db.ErrReadOnly", err)
	}
	w.Abort()

	// Snapshots still read both shards and observe the untorn v0 state.
	s, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Commit()
	v1, ok1, err1 := s.Get(k1)
	v2, ok2, err2 := s.Get(k2)
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("snapshot read with degraded shard: %v %v %v %v", ok1, err1, ok2, err2)
	}
	if string(v1) != "v0" || string(v2) != "v0" {
		t.Fatalf("degraded-era snapshot saw %q/%q, want v0/v0", v1, v2)
	}
}
