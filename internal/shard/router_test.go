package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"mvpbt/internal/db"
	"mvpbt/internal/util"
)

func newRouter(t *testing.T, shards int) *Router {
	t.Helper()
	r, err := New(Config{
		Shards: shards,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// keyOnShard probes for a key owned by the given shard.
func keyOnShard(t *testing.T, r *Router, shard int, tag string) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("%s-%04d", tag, i))
		if r.ShardOf(k) == shard {
			return k
		}
	}
	t.Fatalf("no key found for shard %d", shard)
	return nil
}

func TestRouterBasicOps(t *testing.T) {
	r := newRouter(t, 4)
	const n = 400
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := r.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, ok, err := r.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %s: %q %v %v", k, v, ok, err)
		}
	}
	// Deletes and misses.
	if err := r.Delete([]byte("key-00000")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Get([]byte("key-00000")); ok {
		t.Fatal("deleted key still visible")
	}
	if _, ok, _ := r.Get([]byte("never-written")); ok {
		t.Fatal("phantom key")
	}
}

// TestRouterDistribution checks hash partitioning actually spreads keys:
// with 4 shards and 2000 keys every shard must own a substantial fraction.
func TestRouterDistribution(t *testing.T) {
	r := newRouter(t, 4)
	counts := make([]int, 4)
	for i := 0; i < 2000; i++ {
		counts[r.ShardOf([]byte(fmt.Sprintf("key-%05d", i)))]++
	}
	for i, c := range counts {
		if c < 300 {
			t.Fatalf("shard %d owns only %d/2000 keys: %v", i, c, counts)
		}
	}
}

// TestRouterScanMergesGlobalOrder writes across all shards and checks a
// router scan returns the global key order with correct pagination.
func TestRouterScanMergesGlobalOrder(t *testing.T) {
	r := newRouter(t, 4)
	const n = 300
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		want = append(want, k)
		if err := r.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)

	var got []string
	if err := r.Scan([]byte("key-"), n, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan returned %d keys, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order broke at %d: got %s want %s", i, got[i], want[i])
		}
	}

	// Pagination from a mid-key with a limit.
	var page []string
	if err := r.Scan([]byte(want[100]), 50, func(k, v []byte) bool {
		page = append(page, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(page) != 50 || page[0] != want[100] || page[49] != want[149] {
		t.Fatalf("paged scan wrong: %d keys, first %s last %s", len(page), page[0], page[len(page)-1])
	}
}

// TestTxReadYourWrites: a multi-shard transaction sees its own uncommitted
// writes across shards; others do not until commit.
func TestTxReadYourWrites(t *testing.T) {
	r := newRouter(t, 4)
	ka := keyOnShard(t, r, 0, "a")
	kb := keyOnShard(t, r, 1, "b")

	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(ka, []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(kb, []byte("vb")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tx.Get(ka); !ok || string(v) != "va" {
		t.Fatalf("tx does not see its own write: %q %v", v, ok)
	}
	if _, ok, _ := r.Get(ka); ok {
		t.Fatal("uncommitted write visible to autocommit reader")
	}
	other, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := other.Get(kb); ok {
		t.Fatal("uncommitted write visible to concurrent snapshot")
	}
	other.Commit()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := r.Get(ka); !ok || string(v) != "va" {
		t.Fatalf("committed write lost: %q %v", v, ok)
	}
	if v, ok, _ := r.Get(kb); !ok || string(v) != "vb" {
		t.Fatalf("committed write lost: %q %v", v, ok)
	}
}

// TestTxAbortDiscards: aborted multi-shard writes never surface.
func TestTxAbortDiscards(t *testing.T) {
	r := newRouter(t, 2)
	ka := keyOnShard(t, r, 0, "a")
	kb := keyOnShard(t, r, 1, "b")
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(ka, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(kb, []byte("y")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if _, ok, _ := r.Get(ka); ok {
		t.Fatal("aborted write visible")
	}
	if _, ok, _ := r.Get(kb); ok {
		t.Fatal("aborted write visible")
	}
}

// TestSnapshotVector: timestamps come from independent per-shard id
// spaces, one per shard.
func TestSnapshotVector(t *testing.T) {
	r := newRouter(t, 3)
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	ts := tx.Timestamps()
	if len(ts) != 3 {
		t.Fatalf("snapshot vector has %d entries, want 3", len(ts))
	}
	for i, id := range ts {
		if id == 0 {
			t.Fatalf("shard %d begin timestamp is zero", i)
		}
	}
}

// TestDegradedShardTypedErrors: a read-only shard fails its own keys with
// a typed per-key ShardError and leaves every other shard fully usable —
// degraded state must not poison the router.
func TestDegradedShardTypedErrors(t *testing.T) {
	r := newRouter(t, 4)
	const degraded = 2
	kd := keyOnShard(t, r, degraded, "deg")
	kh := keyOnShard(t, r, (degraded+1)%4, "ok")

	if err := r.Put(kd, []byte("before")); err != nil {
		t.Fatal(err)
	}
	r.Shard(degraded).Engine.ForceReadOnly(true)

	// Autocommit write to the degraded shard: typed, per-key.
	err := r.Put(kd, []byte("after"))
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("degraded put returned %v, want *ShardError", err)
	}
	if se.Shard != degraded || !bytes.Equal(se.Key, kd) {
		t.Fatalf("ShardError names shard %d key %q, want %d %q", se.Shard, se.Key, degraded, kd)
	}
	if !errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("ShardError does not unwrap to db.ErrReadOnly: %v", err)
	}

	// Reads on the degraded shard keep working (old value intact).
	if v, ok, err := r.Get(kd); err != nil || !ok || string(v) != "before" {
		t.Fatalf("degraded shard read broken: %q %v %v", v, ok, err)
	}
	// Other shards unaffected.
	if err := r.Put(kh, []byte("fine")); err != nil {
		t.Fatalf("healthy shard poisoned: %v", err)
	}
	// Multi-shard transaction: the degraded leg fails per-key, the caller
	// aborts, and nothing from the transaction surfaces anywhere.
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(kh, []byte("tx-h")); err != nil {
		t.Fatalf("healthy leg rejected: %v", err)
	}
	if err := tx.Put(kd, []byte("tx-d")); !errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("degraded leg error: %v, want db.ErrReadOnly", err)
	}
	tx.Abort()
	if v, _, _ := r.Get(kh); string(v) == "tx-h" {
		t.Fatal("aborted healthy leg leaked")
	}

	// Degraded list, and recovery restores writes.
	if d := r.Degraded(); len(d) != 1 || d[0] != degraded {
		t.Fatalf("Degraded() = %v, want [%d]", d, degraded)
	}
	r.Shard(degraded).Engine.ForceReadOnly(false)
	if err := r.Put(kd, []byte("healed")); err != nil {
		t.Fatalf("restored shard rejects writes: %v", err)
	}
}

// TestRouterCloseIdempotent: Close twice, then operations on a new router
// still work (engines are independent).
func TestRouterCloseIdempotent(t *testing.T) {
	r := newRouter(t, 2)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Begin(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin on closed router: %v, want ErrClosed", err)
	}
}

// TestRouterStats: per-shard stats carry the per-shard namespaces and
// independent WAL counters.
func TestRouterStats(t *testing.T) {
	r := newRouter(t, 2)
	k0 := keyOnShard(t, r, 0, "s")
	for i := 0; i < 10; i++ {
		if err := r.Put(append(k0, byte('0'+i)), []byte("v")); err != nil && r.ShardOf(append(k0, byte('0'+i))) == 0 {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if len(st) != 2 {
		t.Fatalf("stats for %d shards, want 2", len(st))
	}
	if st[0].Dir != "shard-0" || st[1].Dir != "shard-1" {
		t.Fatalf("shard dirs %q %q", st[0].Dir, st[1].Dir)
	}
}

// TestScanPropertyVsSingleShardOracle is the k-way-merge property test:
// for random shard counts and random key sets (with overwrites and
// deletes), a cross-shard scan must yield a globally sorted,
// duplicate-free stream identical to the same history played into a
// single-shard router — the oracle whose "merge" is trivially correct.
// Everything derives from the seed, so a failure names its repro.
func TestScanPropertyVsSingleShardOracle(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := util.NewRand(seed)
			shards := 2 + rng.Intn(6) // 2..7
			r := newRouter(t, shards)
			oracle := newRouter(t, 1)

			// Random history: puts (with overwrites, random-length keys and
			// values) and occasional deletes, applied to both routers.
			keyspace := 50 + rng.Intn(400)
			ops := 400 + rng.Intn(800)
			mkKey := func() []byte {
				k := make([]byte, 1+rng.Intn(24))
				rng.Letters(k)
				// A shared prefix for a fraction of keys exercises merge
				// runs landing on the same shard stream back to back.
				if rng.Intn(3) == 0 {
					return append([]byte("common-"), k...)
				}
				return k
			}
			keys := make([][]byte, keyspace)
			for i := range keys {
				keys[i] = mkKey()
			}
			for i := 0; i < ops; i++ {
				k := keys[rng.Intn(keyspace)]
				if rng.Intn(5) == 0 {
					if err := r.Delete(k); err != nil {
						t.Fatal(err)
					}
					if err := oracle.Delete(k); err != nil {
						t.Fatal(err)
					}
					continue
				}
				v := make([]byte, 1+rng.Intn(80))
				rng.Letters(v)
				if err := r.Put(k, v); err != nil {
					t.Fatal(err)
				}
				if err := oracle.Put(k, v); err != nil {
					t.Fatal(err)
				}
			}

			collect := func(rt *Router, lo []byte, limit int) (ks, vs []string) {
				err := rt.Scan(lo, limit, func(k, v []byte) bool {
					ks = append(ks, string(k))
					vs = append(vs, string(v))
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				return ks, vs
			}

			// Full scan plus random windows (random lo, random limit).
			type window struct {
				lo    []byte
				limit int
			}
			windows := []window{{nil, 1 << 30}}
			for i := 0; i < 8; i++ {
				windows = append(windows, window{keys[rng.Intn(keyspace)], 1 + rng.Intn(keyspace)})
			}
			for _, w := range windows {
				gotK, gotV := collect(r, w.lo, w.limit)
				wantK, wantV := collect(oracle, w.lo, w.limit)
				if len(gotK) != len(wantK) {
					t.Fatalf("shards=%d lo=%q limit=%d: %d keys, oracle %d",
						shards, w.lo, w.limit, len(gotK), len(wantK))
				}
				for i := range gotK {
					if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
						t.Fatalf("shards=%d lo=%q limit=%d: row %d = (%q,%q), oracle (%q,%q)",
							shards, w.lo, w.limit, i, gotK[i], gotV[i], wantK[i], wantV[i])
					}
					if i > 0 && gotK[i] <= gotK[i-1] {
						t.Fatalf("shards=%d: stream not strictly sorted at %d: %q after %q",
							shards, i, gotK[i], gotK[i-1])
					}
				}
			}
		})
	}
}
