package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpbt/internal/db"
)

// newTwoPCRouter builds a supervised WAL router with 2PC crash hooks and
// fast restart timing.
func newTwoPCRouter(t *testing.T, shards int, hooks TwoPCHooks) *Router {
	t.Helper()
	r, err := New(Config{
		Shards: shards,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
		Supervise: true,
		Supervisor: SupervisorConfig{
			RestartBackoff: time.Millisecond,
			MaxBackoff:     10 * time.Millisecond,
		},
		TwoPC: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// crossShardCommit writes one key to each of two shards in a single
// transaction and commits, returning the commit error.
func crossShardCommit(t *testing.T, r *Router, kA, kB, val []byte) error {
	t.Helper()
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(kA, val); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(kB, val); err != nil {
		t.Fatal(err)
	}
	return tx.Commit()
}

// TestRestartResolvesInDoubtCommit is the satellite regression for the
// restart/2PC interaction, commit side: every participant crashes AFTER the
// commit decision became durable in the coordinator log, so both shards
// restart holding a prepared-but-undecided leg. The supervisor's recovery
// must re-enter in-doubt resolution against the coordinator log — committing
// both legs and retiring the group — never salvage-drop them as uncommitted
// work.
func TestRestartResolvesInDoubtCommit(t *testing.T) {
	var armed atomic.Bool
	r := newTwoPCRouter(t, 2, TwoPCHooks{
		AfterDecide: func(gid uint64) error {
			if armed.Load() {
				return errors.New("test: all participants crash after decision")
			}
			return nil
		},
	})
	kA, kB := keyOnShard(t, r, 0, "idc-a"), keyOnShard(t, r, 1, "idc-b")

	armed.Store(true)
	err := crossShardCommit(t, r, kA, kB, []byte("v1"))
	armed.Store(false)
	if !errors.Is(err, ErrTxInDoubt) {
		t.Fatalf("commit with all participants crashed post-decision: %v, want ErrTxInDoubt", err)
	}

	// The restarts must converge: both shards healthy, no leg in doubt, and
	// the group fully acknowledged (decision forgotten).
	waitFor(t, "in-doubt legs resolved by restart", func() bool {
		if r.Health(0).State != Healthy || r.Health(1).State != Healthy {
			return false
		}
		st := r.TwoPCInfo()
		return st.InDoubt == 0 && st.Coordinator.LiveDecisions == 0
	})
	for _, k := range [][]byte{kA, kB} {
		v, ok, err := r.Get(k)
		if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("decided-commit leg %q lost after restart: %q %v %v", k, v, ok, err)
		}
	}
	st := r.TwoPCInfo()
	if st.Coordinator.Decides < 1 || st.Coordinator.Forgets < 1 {
		t.Fatalf("coordinator never decided/retired the group: %+v", st.Coordinator)
	}
	if st.ResolvedCommits < 2 {
		t.Fatalf("expected both legs resolved to commit, got %+v", st)
	}
	// The recovered shards keep serving cross-shard commits.
	if err := crossShardCommit(t, r, kA, kB, []byte("v2")); err != nil {
		t.Fatalf("post-recovery cross-shard commit: %v", err)
	}
}

// TestRestartResolvesInDoubtAbort, abort side: the first leg's participant
// crashes after its durable YES vote, then the second leg refuses to prepare
// — the group aborts WITHOUT a coordinator-log record. The crashed shard
// restarts holding a prepared-undecided transaction whose group the
// coordinator does not vouch for; recovery must presume abort and leave no
// residue on either shard.
func TestRestartResolvesInDoubtAbort(t *testing.T) {
	var armed atomic.Bool
	r := newTwoPCRouter(t, 2, TwoPCHooks{
		AfterPrepare: func(gid uint64, shard int) error {
			if armed.Load() && shard == 0 {
				return errors.New("test: participant 0 crashes after voting")
			}
			return nil
		},
		BeforePrepare: func(gid uint64, shard int) error {
			if armed.Load() && shard == 1 {
				return errors.New("test: participant 1 refuses to vote")
			}
			return nil
		},
	})
	kA, kB := keyOnShard(t, r, 0, "ida-a"), keyOnShard(t, r, 1, "ida-b")

	armed.Store(true)
	err := crossShardCommit(t, r, kA, kB, []byte("doomed"))
	armed.Store(false)
	if err == nil || errors.Is(err, ErrTxInDoubt) {
		t.Fatalf("aborted group commit error = %v, want the injected prepare failure", err)
	}

	waitFor(t, "presumed abort resolved by restart", func() bool {
		return r.Health(0).State == Healthy && r.TwoPCInfo().InDoubt == 0
	})
	for _, k := range [][]byte{kA, kB} {
		if v, ok, err := r.Get(k); ok || err != nil {
			t.Fatalf("presumed-abort residue at %q: %q %v %v", k, v, ok, err)
		}
	}
	st := r.TwoPCInfo()
	if st.Coordinator.LiveDecisions != 0 || st.Coordinator.Decides != 0 {
		t.Fatalf("aborted group left a coordinator decision: %+v", st.Coordinator)
	}
	if st.ResolvedAborts < 1 {
		t.Fatalf("crashed YES voter never resolved to abort: %+v", st)
	}
	// The shard works again and the group id space moved on.
	if err := crossShardCommit(t, r, kA, kB, []byte("after")); err != nil {
		t.Fatalf("post-abort cross-shard commit: %v", err)
	}
}

// TestRouterCloseRacesTwoPC hammers Close against in-flight multi-shard
// commit groups (run under -race). Every commit either completes cleanly or
// is refused with a typed error — never a panic, never an untyped failure.
// Afterward each shard's log is recovered into a fresh engine and every
// group is checked all-or-nothing: both legs applied or neither, with every
// acknowledged commit present on both shards.
func TestRouterCloseRacesTwoPC(t *testing.T) {
	const goroutines, iters = 6, 25
	for round := 0; round < 4; round++ {
		r := newTwoPCRouter(t, 2, TwoPCHooks{})

		type attempt struct {
			kA, kB []byte
			val    []byte
			acked  atomic.Bool
		}
		attempts := make([]*attempt, goroutines*iters)
		for g := 0; g < goroutines; g++ {
			for i := 0; i < iters; i++ {
				idx := g*iters + i
				attempts[idx] = &attempt{
					kA:  keyOnShard(t, r, 0, fmt.Sprintf("r%d-g%d-i%d-a", round, g, i)),
					kB:  keyOnShard(t, r, 1, fmt.Sprintf("r%d-g%d-i%d-b", round, g, i)),
					val: []byte(fmt.Sprintf("v%d-%d-%d", round, g, i)),
				}
			}
		}
		typed := func(err error) {
			if err == nil {
				return
			}
			if !errors.Is(err, ErrRouterClosed) && !errors.Is(err, ErrShardUnavailable) &&
				!errors.Is(err, ErrTxInDoubt) && !errors.Is(err, db.ErrClosed) {
				t.Errorf("op racing close: untyped error %v", err)
			}
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < iters; i++ {
					a := attempts[g*iters+i]
					tx, err := r.Begin()
					if err != nil {
						typed(err)
						return
					}
					if err := tx.Put(a.kA, a.val); err != nil {
						typed(err)
						tx.Abort()
						continue
					}
					if err := tx.Put(a.kB, a.val); err != nil {
						typed(err)
						tx.Abort()
						continue
					}
					err = tx.Commit()
					typed(err)
					if err == nil {
						a.acked.Store(true)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(round) * 200 * time.Microsecond)
			typed(r.Close())
		}()
		close(start)
		wg.Wait()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}

		// Recover each closed shard's log into a fresh engine (the closed
		// engine's device is still readable in the simulator) and resolve
		// any leg left in doubt against the coordinator log, exactly as a
		// restarted shard would.
		kvs := make([]*db.MVPBTKV, r.NumShards())
		for i := 0; i < r.NumShards(); i++ {
			img := r.Shard(i).Engine.LogImage()
			eng := db.NewEngine(r.cfg.Engine)
			kvName := fmt.Sprintf("%s%d/kv", r.cfg.DirPrefix, i)
			kv, err := db.NewMVPBTKV(eng, kvName, r.cfg.KVOptions)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.RecoverAll(img, nil, map[string]*db.MVPBTKV{kvName: kv}); err != nil {
				t.Fatalf("shard %d: post-close recovery: %v", i, err)
			}
			for _, d := range eng.InDoubtList() {
				committed, inflight := r.coord.decisionOf(d.GID)
				if inflight {
					t.Fatalf("shard %d: group %d still inflight after close", i, d.GID)
				}
				if err := eng.ResolvePrepared(d.TxID, committed); err != nil {
					t.Fatal(err)
				}
			}
			kvs[i] = kv
			defer eng.Close()
		}
		for _, a := range attempts {
			_, okA, errA := kvs[0].Get(a.kA)
			_, okB, errB := kvs[1].Get(a.kB)
			if errA != nil || errB != nil {
				t.Fatal(errA, errB)
			}
			if okA != okB {
				t.Fatalf("half-applied group after close: %q=%v %q=%v", a.kA, okA, a.kB, okB)
			}
			if a.acked.Load() && !okA {
				t.Fatalf("acknowledged commit %q/%q lost", a.kA, a.kB)
			}
		}
	}
}
