package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

// newSupervisedRouter builds a supervised router with fast restart timing.
func newSupervisedRouter(t *testing.T, shards int, sup SupervisorConfig) *Router {
	t.Helper()
	if sup.RestartBackoff == 0 {
		sup.RestartBackoff = time.Millisecond
	}
	if sup.MaxBackoff == 0 {
		sup.MaxBackoff = 10 * time.Millisecond
	}
	r, err := New(Config{
		Shards: shards,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
		Supervise:  true,
		Supervisor: sup,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSupervisorRestartUnderFaultStorm is the headline resilience test: a
// sticky device-level write-fault storm on one shard drives it through
// failed → recovering → healthy via a real WAL crash recovery, while
// concurrent clients of the OTHER shards see zero errors and clients of
// the storm shard see only retriable causes. Pre-storm acked writes
// survive the restart.
func TestSupervisorRestartUnderFaultStorm(t *testing.T) {
	var transitions sync.Map // "from→to" -> count
	r := newSupervisedRouter(t, 3, SupervisorConfig{
		FaultThreshold: 3,
		OnTransition: func(shard int, from, to HealthState) {
			k := fmt.Sprintf("%v→%v", from, to)
			v, _ := transitions.LoadOrStore(k, new(atomic.Int64))
			v.(*atomic.Int64).Add(1)
		},
	})

	// Seed every shard, remembering shard 0's acked keys: they must
	// survive the crash-restart.
	stormKeys := make([][]byte, 0, 8)
	for i := 0; i < 8; i++ {
		k := keyOnShard(t, r, 0, fmt.Sprintf("storm-%d", i))
		if err := r.Put(k, []byte("pre-storm")); err != nil {
			t.Fatal(err)
		}
		stormKeys = append(stormKeys, k)
	}
	otherKeys := [][]byte{keyOnShard(t, r, 1, "other1"), keyOnShard(t, r, 2, "other2")}
	for _, k := range otherKeys {
		if err := r.Put(k, []byte("ok")); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent traffic on the healthy shards: must never see an error.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var otherErrs atomic.Int64
	for _, k := range otherKeys {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					otherErrs.Add(1)
					t.Errorf("healthy shard: %v", err)
					return
				}
				if _, _, err := r.Get(k); err != nil {
					otherErrs.Add(1)
					t.Errorf("healthy shard: %v", err)
					return
				}
			}
		}()
	}

	// Storm: every write to shard 0's device fails until the supervisor
	// swaps the engine (the fresh engine gets a fresh device, so the
	// armed rule does not follow it).
	r.Shard(0).Engine.Dev.ArmFault(ssd.FaultRule{
		Kind: ssd.FaultWriteErr, Class: ssd.AnyClass, Sticky: true,
	})
	for i := 0; i < 200; i++ {
		err := r.Put(stormKeys[0], []byte("during-storm"))
		if err == nil {
			break // storm over: shard restarted and healthy again
		}
		// Only retriable causes may surface on the storm shard.
		if !errors.Is(err, storage.ErrIOFault) && !errors.Is(err, ErrShardUnavailable) &&
			!errors.Is(err, db.ErrClosed) {
			t.Fatalf("storm shard: non-retriable error: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(t, "shard 0 healthy", func() bool {
		h := r.Health(0)
		return h.State == Healthy && h.Restarts >= 1
	})
	close(stop)
	wg.Wait()

	if n := otherErrs.Load(); n != 0 {
		t.Fatalf("%d errors on healthy shards during the storm", n)
	}
	for _, want := range []string{"healthy→failed", "failed→recovering", "recovering→healthy"} {
		v, ok := transitions.Load(want)
		if !ok || v.(*atomic.Int64).Load() == 0 {
			t.Fatalf("transition %s never observed", want)
		}
	}
	// Acked pre-storm writes survived the crash recovery.
	for _, k := range stormKeys {
		v, ok, err := r.Get(k)
		if err != nil || !ok {
			t.Fatalf("pre-storm key %s lost: %q %v %v", k, v, ok, err)
		}
	}
	// And the recovered shard accepts writes again.
	if err := r.Put(stormKeys[1], []byte("post-storm")); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
}

// TestSupervisorBreaker drives restart failures through the RestartHook
// seam: the breaker opens after BreakerThreshold consecutive failed
// attempts and closes on the first successful half-open probe.
func TestSupervisorBreaker(t *testing.T) {
	var allow atomic.Bool
	var attempts atomic.Int64
	r := newSupervisedRouter(t, 2, SupervisorConfig{
		BreakerThreshold: 3,
		RestartHook: func(shard int) error {
			attempts.Add(1)
			if !allow.Load() {
				return errors.New("restart refused by test hook")
			}
			return nil
		},
	})

	if err := r.FailShard(0, errors.New("test-induced failure")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "breaker open", func() bool {
		h := r.Health(0)
		return h.BreakerOpen && h.RestartFailures >= 3
	})
	if st := r.Health(0).State; st != Failed && st != Recovering {
		t.Fatalf("breaker-open shard state = %v", st)
	}

	// While failed, operations bounce with the typed retriable cause.
	k := keyOnShard(t, r, 0, "k")
	if err := r.Put(k, []byte("x")); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("failed-shard Put err = %v, want ErrShardUnavailable", err)
	}
	var se *ShardError
	if err := r.Put(k, []byte("x")); !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("failed-shard Put err = %v, want ShardError{Shard: 0}", err)
	}

	// Let the next half-open probe succeed: breaker closes, shard heals.
	allow.Store(true)
	waitFor(t, "shard healthy after probe", func() bool {
		h := r.Health(0)
		return h.State == Healthy && !h.BreakerOpen && h.RestartFailures == 0
	})
	if err := r.Put(k, []byte("healed")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	if attempts.Load() < 4 {
		t.Fatalf("only %d restart attempts recorded", attempts.Load())
	}
}

// TestSupervisorStatsHealth: Stats reports supervision state for failed
// shards while still serving engine-derived fields for healthy ones.
func TestSupervisorStatsHealth(t *testing.T) {
	block := make(chan struct{})
	r := newSupervisedRouter(t, 2, SupervisorConfig{
		RestartHook: func(shard int) error { <-block; return nil },
	})
	defer close(block)
	if err := r.FailShard(1, errors.New("held down")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "shard 1 out of service", func() bool {
		st := r.Health(1).State
		return st == Failed || st == Recovering
	})
	stats := r.Stats()
	if stats[0].Health.State != Healthy || stats[0].Device == "" {
		t.Fatalf("healthy shard stats: %+v", stats[0])
	}
	if st := stats[1].Health.State; st != Failed && st != Recovering {
		t.Fatalf("failed shard health = %v", st)
	}
	if stats[1].Health.LastError == "" {
		t.Fatal("failed shard lost its cause")
	}
}

// TestRouterCloseDrainFence hammers Close against concurrent operations:
// under -race this is the satellite regression test for the unsafe
// Close-vs-inflight-ops window. Every operation either completes cleanly
// or is refused with ErrRouterClosed — never a panic, never a torn engine.
func TestRouterCloseDrainFence(t *testing.T) {
	for round := 0; round < 5; round++ {
		r := newRouter(t, 4)
		var wg sync.WaitGroup
		start := make(chan struct{})
		check := func(err error) {
			if err != nil && !errors.Is(err, ErrRouterClosed) {
				t.Errorf("op during close: %v", err)
			}
		}
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					k := []byte(fmt.Sprintf("close-%d-%d", g, i))
					check(r.Put(k, []byte("v")))
					_, _, err := r.Get(k)
					check(err)
					if i%10 == 0 {
						check(r.Scan(nil, 5, func(k, v []byte) bool { return true }))
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
			check(r.Close())
		}()
		close(start)
		wg.Wait()
		// Idempotent, and permanently closed.
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if err := r.Put([]byte("after"), []byte("v")); !errors.Is(err, ErrRouterClosed) {
			t.Fatalf("post-close Put err = %v", err)
		}
	}
}
