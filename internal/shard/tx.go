package shard

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/txn"
)

// Tx is a multi-shard transaction: a vector of per-shard transactions,
// one per shard, all begun under one exclusive hold of the router's epoch
// barrier so their begin timestamps form a CONSISTENT CUT — a multi-shard
// commit group is either entirely inside every element of the vector or
// entirely outside it (see the package comment for the full argument).
//
// Reads observe that cut plus the transaction's own writes (per-shard
// MVCC self-visibility). Writes are blind upserts applied immediately to
// the owning shard's transaction and published by Commit: transactions
// that wrote a single shard commit through that engine's ordinary durable
// path; transactions that wrote several shards commit them under a shared
// hold of the epoch barrier.
//
// Supervision (supervisor.go) adds two failure surfaces. A shard that is
// failed at Begin time contributes no leg: operations touching it fail
// per-key with a ShardError wrapping ErrShardUnavailable while the rest of
// the transaction stays usable. A shard restarted mid-transaction
// invalidates its leg — the leg's engine incarnation (health epoch) is
// captured at Begin and checked under the shard's gate on every use, so a
// leg can never commit into a dead engine and falsely acknowledge.
//
// A Tx is owned by one goroutine at a time (the engine pools transaction
// handles); it must be finished with exactly one Commit or Abort.
type Tx struct {
	r       *Router
	txs     []*txn.Tx     // one per shard, indexed by shard number; nil = no leg
	engines []*db.Engine  // engine incarnation each leg was begun on
	kvs     []*db.MVPBTKV // KV incarnation each leg was begun on
	epochs  []uint64      // health epoch at Begin, per shard
	dirty   []bool        // shards this transaction wrote
	done    bool
}

// BeginCtx starts a multi-shard transaction carrying ctx: the per-shard
// begins happen under the epoch barrier's exclusive lock — a few atomic
// operations per shard, no I/O — giving the snapshot vector its
// consistency. The context is consulted at every per-shard blocking point
// (write stalls, scans, I/O retries). Failed/recovering shards are
// skipped; their keys fail per-key with ErrShardUnavailable.
func (r *Router) BeginCtx(ctx context.Context) (*Tx, error) {
	if err := r.enter(); err != nil {
		return nil, err
	}
	defer r.exit()
	n := len(r.shards)
	t := &Tx{
		r:       r,
		txs:     make([]*txn.Tx, n),
		engines: make([]*db.Engine, n),
		kvs:     make([]*db.MVPBTKV, n),
		epochs:  make([]uint64, n),
		dirty:   make([]bool, n),
	}
	r.epoch.Lock()
	for i, s := range r.shards {
		h := r.health[i]
		h.gate.RLock()
		if h.unavailable() {
			h.gate.RUnlock()
			continue
		}
		t.txs[i] = s.Engine.BeginCtx(ctx)
		t.engines[i] = s.Engine
		t.kvs[i] = s.KV
		t.epochs[i] = h.epoch.Load()
		h.gate.RUnlock()
	}
	r.epoch.Unlock()
	return t, nil
}

// Begin is BeginCtx with a background context.
func (r *Router) Begin() (*Tx, error) { return r.BeginCtx(context.Background()) }

// Timestamps returns the snapshot vector: shard i's begin timestamp (its
// per-shard transaction id; 0 for a shard that was unavailable at Begin).
// Diagnostic; the ids are only meaningful within their own shard's engine.
func (t *Tx) Timestamps() []txn.TxID {
	out := make([]txn.TxID, len(t.txs))
	for i, tx := range t.txs {
		if tx != nil {
			out[i] = tx.ID
		}
	}
	return out
}

// leg admits one operation on shard i's leg: the shard must have
// contributed a leg at Begin, and its engine must still be the same
// incarnation (a restarted shard invalidates the leg). On success the
// shard's gate is held shared; the caller releases it after the engine
// call.
func (t *Tx) leg(i int) (func(), error) {
	if t.txs[i] == nil {
		return nil, ErrShardUnavailable
	}
	h := t.r.health[i]
	h.gate.RLock()
	if h.epoch.Load() != t.epochs[i] {
		h.gate.RUnlock()
		return nil, ErrShardUnavailable
	}
	return h.gate.RUnlock, nil
}

// Get reads key at the transaction's snapshot (plus its own writes).
func (t *Tx) Get(key []byte) ([]byte, bool, error) {
	if err := t.r.enter(); err != nil {
		return nil, false, err
	}
	defer t.r.exit()
	i := t.r.ShardOf(key)
	release, err := t.leg(i)
	if err != nil {
		return nil, false, wrap(i, key, err)
	}
	v, ok, err := t.kvs[i].GetTx(t.txs[i], key)
	release()
	t.r.observe(i, err)
	return v, ok, wrap(i, key, err)
}

// Put upserts key inside the transaction. The write is invisible to other
// transactions until Commit. A degraded owning shard fails with a
// ShardError wrapping db.ErrReadOnly, an unavailable one with
// ErrShardUnavailable; the transaction remains usable — the caller
// chooses between continuing without that key and aborting.
func (t *Tx) Put(key, val []byte) error {
	if err := t.r.enter(); err != nil {
		return err
	}
	defer t.r.exit()
	i := t.r.ShardOf(key)
	release, err := t.leg(i)
	if err != nil {
		return wrap(i, key, err)
	}
	err = t.kvs[i].PutTx(t.txs[i], key, val)
	release()
	t.r.observe(i, err)
	if err != nil {
		return wrap(i, key, err)
	}
	t.dirty[i] = true
	return nil
}

// Delete tombstones key inside the transaction.
func (t *Tx) Delete(key []byte) error {
	if err := t.r.enter(); err != nil {
		return err
	}
	defer t.r.exit()
	i := t.r.ShardOf(key)
	release, err := t.leg(i)
	if err != nil {
		return wrap(i, key, err)
	}
	err = t.kvs[i].DeleteTx(t.txs[i], key)
	release()
	t.r.observe(i, err)
	if err != nil {
		return wrap(i, key, err)
	}
	t.dirty[i] = true
	return nil
}

// scanPair is one collected entry of a per-shard scan.
type scanPair struct{ k, v []byte }

// Scan streams up to limit live pairs with key >= lo in global key order
// at the transaction's snapshot. Hash partitioning scatters the key order
// across shards, so each shard contributes up to limit pairs and the
// router merges the sorted streams. A shard without a live leg fails the
// scan with ErrShardUnavailable — a partial scan would silently drop that
// shard's keyspace.
func (t *Tx) Scan(lo []byte, limit int, fn func(key, val []byte) bool) error {
	if limit <= 0 {
		return nil
	}
	if err := t.r.enter(); err != nil {
		return err
	}
	defer t.r.exit()
	streams := make([][]scanPair, len(t.txs))
	for i := range t.r.shards {
		release, err := t.leg(i)
		if err != nil {
			return wrap(i, lo, err)
		}
		pairs := make([]scanPair, 0, min(limit, 64))
		err = t.kvs[i].ScanTx(t.txs[i], lo, limit, func(k, v []byte) bool {
			// Copy out: entry bytes may alias per-page decode buffers.
			pairs = append(pairs, scanPair{
				k: append([]byte(nil), k...),
				v: append([]byte(nil), v...),
			})
			return true
		})
		release()
		t.r.observe(i, err)
		if err != nil {
			return wrap(i, lo, err)
		}
		streams[i] = pairs
	}
	// K-way merge; keys are unique across shards (each key hashes to
	// exactly one), so no tie-breaking is needed.
	idx := make([]int, len(streams))
	for n := 0; n < limit; n++ {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best < 0 || bytes.Compare(s[idx[i]].k, streams[best][idx[best]].k) < 0 {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		p := streams[best][idx[best]]
		idx[best]++
		if !fn(p.k, p.v) {
			return nil
		}
	}
	return nil
}

// Commit publishes the transaction's writes and releases its snapshot.
// Shards the transaction never wrote finish as read-only commits (no log
// record, no flush). A single written shard commits through its engine's
// ordinary durable path. Several written shards commit ATOMICALLY through
// presumed-abort two-phase commit (commit2PC, DESIGN.md §15) under a
// shared hold of the epoch barrier, so every snapshot observes the group
// both-or-neither and no crash can leave it half-applied.
//
// Commit returns nil when every leg is durably committed, a ShardError
// when the group aborted (all-or-nothing: no leg's writes survive), or
// ErrTxInDoubt when the COMMIT decision is durable but a failed
// participant could not be resolved synchronously — the transaction WILL
// commit; the server surfaces this as a distinct status so clients can
// confirm through their commit token.
func (t *Tx) Commit() error {
	if t.done {
		panic("shard: double finish of multi-shard transaction")
	}
	t.done = true
	if err := t.r.enter(); err != nil {
		return err
	}
	defer t.r.exit()
	written := make([]int, 0, len(t.dirty))
	for i, d := range t.dirty {
		if d {
			written = append(written, i)
		}
	}
	// Read-only legs first: they carry no effects (no log record, no
	// flush — committing is equivalent to aborting), so their order
	// against the barrier is irrelevant, finishing them promptly unpins
	// each shard's GC horizon, and running them against a superseded
	// engine incarnation is harmless.
	for i, tx := range t.txs {
		if tx != nil && !t.dirty[i] {
			t.engines[i].Commit(tx)
		}
	}
	if len(written) == 0 {
		return nil
	}
	if len(written) > 1 && t.r.coord != nil {
		return t.commit2PC(written)
	}
	// Single written shard — or a router without a WAL (no coordinator
	// log, nothing is durable anyway): per-leg unilateral commits.
	if len(written) > 1 {
		t.r.epoch.RLock()
		defer t.r.epoch.RUnlock()
	}
	var firstErr error
	for _, i := range written {
		if firstErr != nil {
			// A prior leg failed: roll the rest back instead of widening
			// the partial commit.
			t.engines[i].Abort(t.txs[i])
			continue
		}
		release, err := t.leg(i)
		if err != nil {
			t.engines[i].Abort(t.txs[i]) // superseded incarnation; harmless
			firstErr = &ShardError{Shard: i, Err: err}
			continue
		}
		err = t.engines[i].CommitDurable(t.txs[i])
		if err != nil {
			// Not committed in memory (durability in doubt, see
			// CommitDurable): abort the handle so the leg cannot pin the
			// shard's GC horizon. A supervisor restart resolves the doubt
			// from the log.
			t.engines[i].Abort(t.txs[i])
		}
		release()
		t.r.observe(i, err)
		if err != nil {
			firstErr = &ShardError{Shard: i, Err: err}
		}
	}
	return firstErr
}

// commit2PC commits a multi-shard group atomically: every written leg
// PREPARES (durable vote, versions invisible), the coordinator log records
// the decision — one flushed record for COMMIT, nothing for abort
// (presumed abort) — and the legs resolve per that decision. A participant
// that dies after voting leaves an in-doubt leg; its restart consults the
// coordinator log (supervisor.go), and commit2PC's slow path waits out the
// restart so the caller usually still observes the final state. A leg that
// cannot be resolved within the budget is administratively failed — the
// forced restart finds the (by then final) decision — and commit2PC
// reports ErrTxInDoubt for a commit decision, never a false abort.
//
// Crash-injection hooks (Config.TwoPC) simulate a coordinator or
// participant crash at each protocol step; see TwoPCHooks.
func (t *Tx) commit2PC(written []int) error {
	r := t.r
	hooks := r.cfg.TwoPC
	gid := r.coord.beginGroup()

	// The epoch barrier is held shared across prepare, decision and the
	// synchronous resolve pass: a concurrently begun snapshot vector
	// observes the group both-or-neither. Once a leg goes in doubt the
	// group resolves asynchronously anyway (partial visibility of an
	// in-flight group is inherent to recovery-side resolution), so the
	// slow path below runs outside the barrier.
	epochHeld := true
	r.epoch.RLock()
	unlockEpoch := func() {
		if epochHeld {
			epochHeld = false
			r.epoch.RUnlock()
		}
	}
	defer unlockEpoch()

	// Phase 1: prepare every leg (durable YES votes). First failure stops
	// the phase — the group will abort.
	prepared := make([]bool, len(t.txs)) // leg voted YES (durable)
	crashed := make([]bool, len(t.txs))  // leg's participant simulated-crashed
	var firstErr error
	for _, i := range written {
		if hooks.BeforePrepare != nil {
			if err := hooks.BeforePrepare(gid, i); err != nil {
				firstErr = &ShardError{Shard: i, Err: err}
				break
			}
		}
		release, err := t.leg(i)
		if err != nil {
			firstErr = &ShardError{Shard: i, Err: err}
			break
		}
		err = t.engines[i].PrepareDurable(t.txs[i], gid)
		release()
		r.observe(i, err)
		if err != nil {
			// Not prepared (the prepare's durability is in doubt exactly
			// like a failed CommitDurable; recovery treats a flushed
			// prepare without a decision as in-doubt and the coordinator
			// log will not vouch for this group — presumed abort).
			firstErr = &ShardError{Shard: i, Err: err}
			break
		}
		prepared[i] = true
		if hooks.AfterPrepare != nil {
			if err := hooks.AfterPrepare(gid, i); err != nil {
				// Participant crash after a durable vote: the leg's handle
				// dies with its engine and must never be touched again; the
				// restarted shard re-enters in-doubt resolution. The
				// protocol continues — a crashed voter is a YES voter.
				crashed[i] = true
				r.FailShard(i, err)
			}
		}
	}

	// Decision. A COMMIT decision is one flushed coordinator-log record —
	// the commit point of the whole group. An abort writes nothing.
	commit := firstErr == nil
	if commit && hooks.BeforeDecide != nil {
		if err := hooks.BeforeDecide(gid); err != nil {
			firstErr = fmt.Errorf("shard: 2pc decision: %w", err)
			commit = false
		}
	}
	if commit {
		if err := r.coord.decideCommit(gid, len(written)); err != nil {
			firstErr = fmt.Errorf("shard: 2pc decision: %w", err)
			commit = false
		}
	}
	if !commit {
		r.coord.decideAbort(gid)
	}
	if commit && hooks.AfterDecide != nil {
		if err := hooks.AfterDecide(gid); err != nil {
			// Every participant crashes after the decision became durable:
			// no leg can be told synchronously. All legs resolve from the
			// coordinator log after restart; the commit token confirms the
			// outcome to the client.
			unlockEpoch()
			for _, i := range written {
				if prepared[i] && !crashed[i] {
					crashed[i] = true
					r.FailShard(i, err)
				}
			}
			return ErrTxInDoubt
		}
	}

	// Phase 2: resolve the legs per the decision. Fast path first — same
	// engine incarnation, under the barrier; legs that crashed or were
	// superseded go through the slow path below, which waits out the
	// supervisor restart.
	pendingLegs := make([]int, 0, len(written))
	acks := 0
	for _, i := range written {
		if crashed[i] {
			pendingLegs = append(pendingLegs, i)
			continue
		}
		if !prepared[i] {
			// Never voted (abort outcome): the handle is live and not in
			// the in-doubt registry — plain in-memory abort.
			t.engines[i].Abort(t.txs[i])
			continue
		}
		release, err := t.leg(i)
		if err != nil {
			pendingLegs = append(pendingLegs, i) // superseded incarnation
			continue
		}
		n, err := t.engines[i].ResolveGroup(gid, commit)
		release()
		r.observe(i, err)
		if err != nil || n == 0 {
			pendingLegs = append(pendingLegs, i)
			continue
		}
		if commit {
			acks++
		}
	}
	unlockEpoch()

	unresolved := 0
	for _, i := range pendingLegs {
		switch t.resolveLeg(i, gid, commit) {
		case legResolvedHere:
			if commit {
				acks++
			}
		case legResolvedElsewhere:
			// The restart's recovery-side resolution already applied the
			// decision (and acknowledged it for a commit).
		case legUnresolved:
			unresolved++
		}
	}

	if commit {
		// Retire the group once every leg this call resolved is counted;
		// restart-side resolutions acknowledge themselves. The last
		// acknowledgement forgets the decision in the coordinator log.
		if hooks.BeforeForget != nil && hooks.BeforeForget(gid) != nil {
			// Coordinator crash before retiring the group: the decision
			// stays live in the log — harmless, decisions are idempotent,
			// and checkpointing carries it forward.
			acks = 0
		}
		for ; acks > 0; acks-- {
			r.coord.ack(gid)
		}
		if unresolved > 0 {
			return ErrTxInDoubt
		}
		return nil
	}
	return firstErr
}

// legResolution is resolveLeg's outcome.
type legResolution int

const (
	legResolvedHere      legResolution = iota // this call applied the decision
	legResolvedElsewhere                      // a restart applied (and acked) it
	legUnresolved                             // gave up; the forced restart will
)

// resolveLeg drives one in-doubt leg to the group decision through the
// shard's CURRENT engine incarnation, waiting out a supervisor restart if
// one is in flight. Exhausting the budget administratively fails the shard:
// the forced restart consults the coordinator log, where the decision is by
// now final (recorded for commit, absent-and-not-inflight for abort), so
// the leg always converges to the group outcome.
func (t *Tx) resolveLeg(i int, gid uint64, commit bool) legResolution {
	r := t.r
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r.closed.Load() {
			return legUnresolved // engines are (being) closed; nothing to converge
		}
		release, err := r.acquire(i)
		if err == nil {
			eng := r.shards[i].Engine
			n, rerr := eng.ResolveGroup(gid, commit)
			release()
			r.observe(i, rerr)
			if rerr == nil {
				if n > 0 {
					return legResolvedHere
				}
				// Nothing in doubt for gid on the current engine. If the
				// shard is healthy, the restart's resolution beat us; if a
				// restart is still swapping engines, retry.
				if r.Health(i).State == Healthy {
					return legResolvedElsewhere
				}
			}
		}
		if time.Now().After(deadline) {
			r.FailShard(i, fmt.Errorf("shard: 2pc leg unresolved for group %d: %w", gid, ErrShardUnavailable))
			return legUnresolved
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Abort discards the transaction's writes and releases its snapshot.
// Safe against concurrent shard restarts and router close: aborting a leg
// on a superseded engine incarnation only touches that dead engine's
// in-memory state.
func (t *Tx) Abort() {
	if t.done {
		panic("shard: double finish of multi-shard transaction")
	}
	t.done = true
	if err := t.r.enter(); err != nil {
		return // router closed: engines are (being) closed, legs die with them
	}
	defer t.r.exit()
	for i, tx := range t.txs {
		if tx != nil {
			t.engines[i].Abort(tx)
		}
	}
}
