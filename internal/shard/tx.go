package shard

import (
	"bytes"
	"context"

	"mvpbt/internal/txn"
)

// Tx is a multi-shard transaction: a vector of per-shard transactions,
// one per shard, all begun under one exclusive hold of the router's epoch
// barrier so their begin timestamps form a CONSISTENT CUT — a multi-shard
// commit group is either entirely inside every element of the vector or
// entirely outside it (see the package comment for the full argument).
//
// Reads observe that cut plus the transaction's own writes (per-shard
// MVCC self-visibility). Writes are blind upserts applied immediately to
// the owning shard's transaction and published by Commit: transactions
// that wrote a single shard commit through that engine's ordinary durable
// path; transactions that wrote several shards commit them under a shared
// hold of the epoch barrier.
//
// A Tx is owned by one goroutine at a time (the engine pools transaction
// handles); it must be finished with exactly one Commit or Abort.
type Tx struct {
	r     *Router
	txs   []*txn.Tx // one per shard, indexed by shard number
	dirty []bool    // shards this transaction wrote
	done  bool
}

// BeginCtx starts a multi-shard transaction carrying ctx: the per-shard
// begins happen under the epoch barrier's exclusive lock — a few atomic
// operations per shard, no I/O — giving the snapshot vector its
// consistency. The context is consulted at every per-shard blocking point
// (write stalls, scans, I/O retries).
func (r *Router) BeginCtx(ctx context.Context) (*Tx, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.mu.Unlock()
	t := &Tx{
		r:     r,
		txs:   make([]*txn.Tx, len(r.shards)),
		dirty: make([]bool, len(r.shards)),
	}
	r.epoch.Lock()
	for i, s := range r.shards {
		t.txs[i] = s.Engine.BeginCtx(ctx)
	}
	r.epoch.Unlock()
	return t, nil
}

// Begin is BeginCtx with a background context.
func (r *Router) Begin() (*Tx, error) { return r.BeginCtx(context.Background()) }

// Timestamps returns the snapshot vector: shard i's begin timestamp (its
// per-shard transaction id). Diagnostic; the ids are only meaningful
// within their own shard's engine.
func (t *Tx) Timestamps() []txn.TxID {
	out := make([]txn.TxID, len(t.txs))
	for i, tx := range t.txs {
		out[i] = tx.ID
	}
	return out
}

// Get reads key at the transaction's snapshot (plus its own writes).
func (t *Tx) Get(key []byte) ([]byte, bool, error) {
	i := t.r.ShardOf(key)
	v, ok, err := t.r.shards[i].KV.GetTx(t.txs[i], key)
	return v, ok, wrap(i, key, err)
}

// Put upserts key inside the transaction. The write is invisible to other
// transactions until Commit. A degraded owning shard fails with a
// ShardError wrapping db.ErrReadOnly; the transaction remains usable —
// the caller chooses between continuing without that key and aborting.
func (t *Tx) Put(key, val []byte) error {
	i := t.r.ShardOf(key)
	if err := t.r.shards[i].KV.PutTx(t.txs[i], key, val); err != nil {
		return wrap(i, key, err)
	}
	t.dirty[i] = true
	return nil
}

// Delete tombstones key inside the transaction.
func (t *Tx) Delete(key []byte) error {
	i := t.r.ShardOf(key)
	if err := t.r.shards[i].KV.DeleteTx(t.txs[i], key); err != nil {
		return wrap(i, key, err)
	}
	t.dirty[i] = true
	return nil
}

// scanPair is one collected entry of a per-shard scan.
type scanPair struct{ k, v []byte }

// Scan streams up to limit live pairs with key >= lo in global key order
// at the transaction's snapshot. Hash partitioning scatters the key order
// across shards, so each shard contributes up to limit pairs and the
// router merges the sorted streams.
func (t *Tx) Scan(lo []byte, limit int, fn func(key, val []byte) bool) error {
	if limit <= 0 {
		return nil
	}
	streams := make([][]scanPair, len(t.txs))
	for i, s := range t.r.shards {
		pairs := make([]scanPair, 0, min(limit, 64))
		err := s.KV.ScanTx(t.txs[i], lo, limit, func(k, v []byte) bool {
			// Copy out: entry bytes may alias per-page decode buffers.
			pairs = append(pairs, scanPair{
				k: append([]byte(nil), k...),
				v: append([]byte(nil), v...),
			})
			return true
		})
		if err != nil {
			return wrap(i, lo, err)
		}
		streams[i] = pairs
	}
	// K-way merge; keys are unique across shards (each key hashes to
	// exactly one), so no tie-breaking is needed.
	idx := make([]int, len(streams))
	for n := 0; n < limit; n++ {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best < 0 || bytes.Compare(s[idx[i]].k, streams[best][idx[best]].k) < 0 {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		p := streams[best][idx[best]]
		idx[best]++
		if !fn(p.k, p.v) {
			return nil
		}
	}
	return nil
}

// Commit publishes the transaction's writes and releases its snapshot.
// Shards the transaction never wrote finish as read-only commits (no log
// record, no flush). A single written shard commits through its engine's
// ordinary durable path. Several written shards commit as one group under
// a shared hold of the epoch barrier, so every snapshot observes the
// group both-or-neither.
//
// There is no cross-shard prepare phase (single-shard writes first, 2PC
// later): if a shard's durable commit fails mid-group, that shard's
// outcome is in doubt per the db.CommitDurable contract, shards already
// committed stay committed, and the remaining written shards are aborted;
// the first failure is returned as a ShardError.
func (t *Tx) Commit() error {
	if t.done {
		panic("shard: double finish of multi-shard transaction")
	}
	t.done = true
	written := make([]int, 0, len(t.dirty))
	for i, d := range t.dirty {
		if d {
			written = append(written, i)
		}
	}
	// Read-only legs first: they carry no effects, so their order against
	// the barrier is irrelevant, and finishing them promptly unpins each
	// shard's GC horizon.
	for i, tx := range t.txs {
		if !t.dirty[i] {
			t.r.shards[i].Engine.Commit(tx)
		}
	}
	if len(written) == 0 {
		return nil
	}
	if len(written) > 1 {
		t.r.epoch.RLock()
		defer t.r.epoch.RUnlock()
	}
	var firstErr error
	for _, i := range written {
		if firstErr != nil {
			// A prior leg failed: roll the rest back instead of widening
			// the partial commit.
			t.r.shards[i].Engine.Abort(t.txs[i])
			continue
		}
		if err := t.r.shards[i].Engine.CommitDurable(t.txs[i]); err != nil {
			firstErr = &ShardError{Shard: i, Err: err}
		}
	}
	return firstErr
}

// Abort discards the transaction's writes and releases its snapshot.
func (t *Tx) Abort() {
	if t.done {
		panic("shard: double finish of multi-shard transaction")
	}
	t.done = true
	for i, tx := range t.txs {
		t.r.shards[i].Engine.Abort(tx)
	}
}
