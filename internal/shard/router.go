// Package shard partitions the keyspace across N fully independent
// db.Engine instances — each with its own WAL, heap, maintenance service,
// space governor and simulated device — and fronts them with a Router
// that hash-routes single-key operations and hands out consistent
// cross-shard read snapshots (DESIGN.md §12).
//
// The design follows the engine-per-core argument of Larson et al.: the
// single-node engine's write path funnels through per-engine locks and a
// per-engine log, so the way to more cores (and more users) is more
// engines, not more locks. MV-PBT's index-only visibility check is what
// keeps the per-shard read path cheap enough that a thin router on top
// adds almost nothing.
//
// Consistency model. Single-shard operations (the vast majority under
// hash partitioning) go straight to the owning engine's MVCC and commit
// through its existing — group-commit-enabled — durable path. Multi-shard
// reads take a SNAPSHOT VECTOR: one read transaction per shard, all begun
// under a short exclusive hold of the router's epoch barrier. Multi-shard
// writes (a Tx that touched several shards) commit all their per-shard
// transactions under a shared hold of the same barrier. The barrier
// therefore orders every snapshot acquisition entirely before or entirely
// after every multi-shard commit group, which is exactly the torn-cut
// freedom the snapshot test demands: a logical operation that commits
// K1@shard-A and K2@shard-B is observed by every snapshot as both-or-
// neither, never one-of-two. Per-shard MVCC makes the single-shard half
// of the argument: within one engine, Begin and Commit serialize on the
// transaction manager, so a single-shard commit is atomic with respect to
// any snapshot's per-shard begin timestamp.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
)

// Config describes a sharded deployment. The zero value of Engine is a
// usable default; db.Config's copy contract (pure value type) is what
// makes one Engine template safe to instantiate N times.
type Config struct {
	// Shards is the number of independent engines (default 1).
	Shards int
	// Engine templates every shard's db.Config. Each shard gets an
	// identical, fully independent copy.
	Engine db.Config
	// DirPrefix names the per-shard namespaces: shard i lives under
	// "<DirPrefix><i>" (default "shard-"). On the simulated device this
	// is the per-shard subdirectory of a real deployment: every file the
	// shard creates — WAL, heap, index, superblock — is namespaced by it.
	DirPrefix string
	// KVOptions tunes each shard's MV-PBT store. Durable is forced on
	// when the engine template enables the WAL.
	KVOptions db.MVPBTKVOptions
	// Supervise enables the per-shard health state machine and automatic
	// restart-through-recovery of failed shards (supervisor.go). Off by
	// default: unsupervised routers surface engine errors raw and never
	// restart anything.
	Supervise bool
	// Supervisor tunes supervision (ignored unless Supervise is set).
	Supervisor SupervisorConfig
	// TwoPC installs crash-injection hooks into the two-phase commit
	// protocol (tests and the 2pc check campaign only).
	TwoPC TwoPCHooks
}

// TwoPCHooks are test seams in the multi-shard commit protocol: each hook,
// when set and returning an error, simulates a crash at that protocol step
// (tx.go threads them through commit2PC). Production deployments leave the
// zero value.
type TwoPCHooks struct {
	// BeforePrepare fires before shard's leg prepares; an error fails the
	// vote (the group aborts).
	BeforePrepare func(gid uint64, shard int) error
	// AfterPrepare fires after shard's leg durably voted YES; an error
	// simulates the participant crashing with an in-doubt leg.
	AfterPrepare func(gid uint64, shard int) error
	// BeforeDecide fires before the coordinator logs its decision; an error
	// simulates a coordinator crash (presumed abort).
	BeforeDecide func(gid uint64) error
	// AfterDecide fires after a commit decision is durable but before any
	// leg learns it; an error crashes every participant (all legs resolve
	// from the coordinator log after restart).
	AfterDecide func(gid uint64) error
	// BeforeForget fires before the group's decision is retired; an error
	// leaves the decision live in the coordinator log.
	BeforeForget func(gid uint64) error
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.DirPrefix == "" {
		c.DirPrefix = "shard-"
	}
	if c.Engine.EnableWAL {
		c.KVOptions.Durable = true
	}
	return c
}

// Shard is one partition: an engine plus its clustered MV-PBT KV store.
type Shard struct {
	// No is the shard's index in the router (also its hash bucket).
	No int
	// Dir is the shard's namespace ("<DirPrefix><No>").
	Dir string
	// Engine is the shard's private engine.
	Engine *db.Engine
	// KV is the shard's clustered MV-PBT key-value store.
	KV *db.MVPBTKV
}

// ShardError is the typed per-key error surface of the router: it names
// the shard and key an operation failed on, so one degraded shard shows
// up as per-key failures instead of poisoning the whole router. Unwrap
// exposes the underlying cause (db.ErrReadOnly, storage.ErrNoSpace, ...)
// to errors.Is/As.
type ShardError struct {
	Shard int
	Key   []byte
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d: key %q: %v", e.Shard, e.Key, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Router owns the shards and routes operations to them.
type Router struct {
	cfg    Config
	shards []*Shard
	health []*shardHealth // per-shard supervision state, indexed by shard
	sup    *supervisor    // nil unless Config.Supervise
	coord  *coordLog      // 2PC coordinator log; nil unless Engine.EnableWAL

	// epoch is the snapshot barrier. Multi-shard COMMIT groups hold it
	// shared for the duration of their per-shard commits; snapshot
	// acquisition holds it exclusively for the (cheap, in-memory) begins
	// across all shards. See the package comment for the argument.
	epoch sync.RWMutex

	// opGate is the close drain fence: every router operation holds it
	// shared for the duration of its engine calls, Close holds it
	// exclusively across shutdown. Paired with the closed flag (checked
	// under the shared hold) it guarantees no operation ever reaches an
	// engine that Close has started tearing down.
	opGate sync.RWMutex
	closed atomic.Bool
}

// New builds a router with cfg.Shards independent engines.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	r := &Router{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		eng := db.NewEngine(cfg.Engine)
		kv, err := db.NewMVPBTKV(eng, fmt.Sprintf("%s%d/kv", cfg.DirPrefix, i), cfg.KVOptions)
		if err != nil {
			eng.Close()
			r.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.shards = append(r.shards, &Shard{
			No:     i,
			Dir:    fmt.Sprintf("%s%d", cfg.DirPrefix, i),
			Engine: eng,
			KV:     kv,
		})
		r.health = append(r.health, &shardHealth{})
	}
	if cfg.Engine.EnableWAL {
		coord, err := newCoordLog()
		if err != nil {
			r.Close()
			return nil, err
		}
		r.coord = coord
	}
	if cfg.Supervise {
		r.sup = newSupervisor(r, cfg.Supervisor)
	}
	return r, nil
}

// enter admits one router operation through the close fence. Every
// successful enter must be paired with exit once the operation's engine
// calls are done.
func (r *Router) enter() error {
	r.opGate.RLock()
	if r.closed.Load() {
		r.opGate.RUnlock()
		return ErrRouterClosed
	}
	return nil
}

func (r *Router) exit() { r.opGate.RUnlock() }

// acquire takes shard i's health gate shared and checks availability. The
// returned release must be called after the engine call completes; it is
// nil when err is non-nil.
func (r *Router) acquire(i int) (func(), error) {
	h := r.health[i]
	h.gate.RLock()
	if h.unavailable() {
		h.gate.RUnlock()
		return nil, ErrShardUnavailable
	}
	return h.gate.RUnlock, nil
}

// Close shuts every shard engine down. Idempotent; returns the first
// error. New operations are refused with ErrRouterClosed the moment Close
// is called; Close then waits out every in-flight operation (the drain
// fence) before touching the engines, so a concurrent Get/Put/Scan/Commit
// either completes against live engines or is refused — it never races the
// teardown. Open Txs fail their later calls with ErrRouterClosed.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	if r.sup != nil {
		// Stop restart goroutines first: they take shard gates, not the
		// opGate, so they must be fully parked before engines close.
		r.sup.shutdown()
	}
	r.opGate.Lock()
	defer r.opGate.Unlock()
	var first error
	for _, s := range r.shards {
		if err := s.Engine.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", s.No, err)
		}
	}
	return first
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns shard i.
func (r *Router) Shard(i int) *Shard { return r.shards[i] }

// ShardOf maps a key to its owning shard (FNV-1a of the key mod N).
func (r *Router) ShardOf(key []byte) int {
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(len(r.shards)))
}

// wrap converts a shard-local error into a typed per-key ShardError.
func wrap(shard int, key []byte, err error) error {
	if err == nil {
		return nil
	}
	return &ShardError{Shard: shard, Key: append([]byte(nil), key...), Err: err}
}

// Get reads the newest committed version of key (single-shard autocommit).
func (r *Router) Get(key []byte) ([]byte, bool, error) {
	if err := r.enter(); err != nil {
		return nil, false, err
	}
	defer r.exit()
	i := r.ShardOf(key)
	release, err := r.acquire(i)
	if err != nil {
		return nil, false, wrap(i, key, err)
	}
	v, ok, err := r.shards[i].KV.Get(key)
	release()
	r.observe(i, err)
	return v, ok, wrap(i, key, err)
}

// Put upserts key (single-shard autocommit through the owning engine's
// durable commit path). A degraded shard returns a ShardError wrapping
// db.ErrReadOnly; a failed shard one wrapping ErrShardUnavailable; other
// shards are unaffected.
func (r *Router) Put(key, val []byte) error {
	if err := r.enter(); err != nil {
		return err
	}
	defer r.exit()
	i := r.ShardOf(key)
	release, err := r.acquire(i)
	if err != nil {
		return wrap(i, key, err)
	}
	err = r.shards[i].KV.Put(key, val)
	release()
	r.observe(i, err)
	return wrap(i, key, err)
}

// Delete tombstones key (single-shard autocommit).
func (r *Router) Delete(key []byte) error {
	if err := r.enter(); err != nil {
		return err
	}
	defer r.exit()
	i := r.ShardOf(key)
	release, err := r.acquire(i)
	if err != nil {
		return wrap(i, key, err)
	}
	err = r.shards[i].KV.Delete(key)
	release()
	r.observe(i, err)
	return wrap(i, key, err)
}

// Scan streams up to limit live pairs with key >= lo in global key order,
// merging the per-shard streams at one consistent snapshot.
func (r *Router) Scan(lo []byte, limit int, fn func(key, val []byte) bool) error {
	tx, err := r.BeginCtx(context.Background())
	if err != nil {
		return err
	}
	defer tx.Commit()
	return tx.Scan(lo, limit, fn)
}

// Degraded returns the indexes of shards currently degraded to read-only.
// Failed/recovering shards are not listed (see Health for those).
func (r *Router) Degraded() []int {
	var out []int
	for i, s := range r.shards {
		release, err := r.acquire(i)
		if err != nil {
			continue
		}
		if s.Engine.ReadOnly() {
			out = append(out, s.No)
		}
		release()
	}
	return out
}

// PastSoftWatermark reports whether any shard's live bytes have crossed
// its soft space watermark — the overload signal the server's admission
// control gates new sessions on.
func (r *Router) PastSoftWatermark() bool {
	for i, s := range r.shards {
		release, err := r.acquire(i)
		if err != nil {
			continue
		}
		sp := s.Engine.SpaceInfo()
		release()
		if sp.Soft > 0 && sp.Live >= sp.Soft {
			return true
		}
	}
	return false
}

// Stats returns one entry per shard. A failed/recovering shard reports its
// health but skips the engine-derived fields (the engine is mid-swap).
func (r *Router) Stats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, s := range r.shards {
		out[i] = ShardStats{Shard: s.No, Dir: s.Dir, Health: r.Health(i)}
		release, err := r.acquire(i)
		if err != nil {
			continue
		}
		out[i].Space = s.Engine.SpaceInfo()
		out[i].WAL = s.Engine.WALStatsSnapshot()
		out[i].Device = s.Engine.Dev.Stats().String()
		release()
	}
	return out
}

// ShardStats is one shard's externally visible health.
type ShardStats struct {
	Shard  int
	Dir    string
	Space  db.SpaceStats
	WAL    db.WALStats
	Device string
	Health HealthInfo
}

// ErrRouterClosed is returned by operations that arrive at or after Close:
// the drain fence refuses them before they can touch a closing engine.
var ErrRouterClosed = errors.New("shard: router closed")

// ErrClosed is the historical name of ErrRouterClosed.
var ErrClosed = ErrRouterClosed

// ErrTxInDoubt reports a multi-shard commit whose COMMIT decision is
// durable in the coordinator log but whose legs could not all be resolved
// synchronously (a participant failed mid-protocol). The transaction WILL
// commit — restarting shards resolve their in-doubt legs from the
// coordinator log — the caller just cannot yet observe all of it. The
// server maps this to a distinct wire status so clients can confirm the
// outcome through their idempotent commit token.
var ErrTxInDoubt = errors.New("shard: transaction in doubt (commit decision durable, resolution pending)")

// CrashCoordinator simulates a coordinator crash and restart: the
// in-memory protocol state (inflight groups, unacknowledged legs) is lost
// and the coordinator log is rebuilt from its durable image, bumping the
// incarnation. Undecided groups vanish — presumed abort. Test/campaign
// use only.
func (r *Router) CrashCoordinator() {
	if r.coord == nil {
		return
	}
	r.coord.recover(r.coord.image())
}

// RouterTwoPCStats aggregates the commit-protocol state across the
// coordinator log and every reachable shard.
type RouterTwoPCStats struct {
	Coordinator CoordStats
	// Prepares/ResolvedCommits/ResolvedAborts sum the reachable shards'
	// participant counters (a mid-restart shard is skipped).
	Prepares, ResolvedCommits, ResolvedAborts int64
	// InDoubt counts prepared-undecided transactions across reachable
	// shards; OldestAge is the oldest one's time since prepare.
	InDoubt   int
	OldestAge time.Duration
}

// TwoPCInfo snapshots the router's commit-protocol health (mvpbt-inspect
// and the 2pc campaign's quiescence check).
func (r *Router) TwoPCInfo() RouterTwoPCStats {
	var out RouterTwoPCStats
	if r.coord != nil {
		out.Coordinator = r.coord.stats()
	}
	if err := r.enter(); err != nil {
		return out
	}
	defer r.exit()
	for i, s := range r.shards {
		release, err := r.acquire(i)
		if err != nil {
			continue
		}
		st := s.Engine.TwoPCInfo()
		release()
		out.Prepares += st.Prepares
		out.ResolvedCommits += st.ResolvedCommits
		out.ResolvedAborts += st.ResolvedAborts
		out.InDoubt += st.InDoubt
		if st.OldestAge > out.OldestAge {
			out.OldestAge = st.OldestAge
		}
	}
	return out
}
