// Package page implements the slotted 8 KiB database page used by the
// heaps and by persisted index nodes. A page holds variable-length records
// addressed by stable slot numbers (slot numbers survive compaction, so
// RecordIDs pointing into a page stay valid until the record is deleted).
//
// Layout:
//
//	[0:2)   number of slots
//	[2:4)   freeHi — offset where the record area begins (grows downward)
//	[4:6)   page flags (e.g. FlagHasGarbage, §4.6 of the paper)
//	[6:8)   garbage bytes reclaimable by compaction
//	[8:12)  CRC32C checksum of the rest of the page, stamped at write-back
//	        and verified on every buffer-pool fetch (zero on never-stamped
//	        pages; an all-zero page is accepted as a valid fresh page)
//	[12:48) client header — 36 bytes owned by the page's user (B-tree node
//	        headers, heap page metadata, ...)
//	[48:)   slot directory, 4 bytes per slot (offset, length); record data
//	        grows from the end of the page towards the directory.
package page

import (
	"encoding/binary"
	"hash/crc32"

	"mvpbt/internal/storage"
)

const (
	checksumOff = 8
	checksumLen = 4
	headerEnd   = checksumOff + checksumLen
	clientLen   = 36
	slotBase    = headerEnd + clientLen
	slotSize    = 4
)

// MaxRecordLen is the largest record a page can hold.
const MaxRecordLen = storage.PageSize - slotBase - slotSize

// castagnoli is the CRC32C polynomial table (the checksum used by iSCSI,
// ext4 and btrfs; hardware-accelerated by the stdlib on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32C of a page image, excluding the checksum
// field itself.
func Checksum(b []byte) uint32 {
	c := crc32.Update(0, castagnoli, b[:checksumOff])
	return crc32.Update(c, castagnoli, b[headerEnd:])
}

// StampChecksum stores the current content checksum into the page header.
// Call it immediately before the page image reaches the device.
func StampChecksum(b []byte) {
	binary.LittleEndian.PutUint32(b[checksumOff:headerEnd], Checksum(b))
}

// VerifyChecksum reports whether a page image read from the device matches
// its stored checksum. An all-zero page is accepted: never-written device
// regions read as zeros (trimmed-SSD convention) and a fresh page has no
// checksum yet.
func VerifyChecksum(b []byte) bool {
	stored := binary.LittleEndian.Uint32(b[checksumOff:headerEnd])
	if Checksum(b) == stored {
		return true
	}
	if stored != 0 {
		return false
	}
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Page flags. The low byte is reserved for this package's users (the heap
// and index node implementations define their own bits there).
const (
	// FlagHasGarbage marks pages containing index records eligible for
	// cooperative garbage collection (paper §4.6, phase 1).
	FlagHasGarbage uint16 = 1 << 15
)

// Page is a view over an 8 KiB buffer-pool frame. The zero Page is invalid;
// construct with Wrap.
type Page struct {
	b []byte
}

// Wrap interprets b (which must be storage.PageSize long) as a page. It
// does not initialize the page; call Init on fresh frames.
func Wrap(b []byte) Page {
	if len(b) != storage.PageSize {
		panic("page: Wrap with wrong buffer size")
	}
	return Page{b: b}
}

// Init formats the page as empty.
func (p Page) Init() {
	for i := range p.b[:slotBase] {
		p.b[i] = 0
	}
	p.setNumSlots(0)
	p.setFreeHi(storage.PageSize)
	p.setGarbage(0)
}

// Bytes returns the underlying buffer.
func (p Page) Bytes() []byte { return p.b }

// Client returns the 36-byte client header area.
func (p Page) Client() []byte { return p.b[headerEnd:slotBase] }

func (p Page) numSlots() int     { return int(binary.LittleEndian.Uint16(p.b[0:2])) }
func (p Page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.b[0:2], uint16(n)) }
func (p Page) freeHi() int       { return int(binary.LittleEndian.Uint16(p.b[2:4])) }
func (p Page) setFreeHi(v int)   { binary.LittleEndian.PutUint16(p.b[2:4], uint16(v)) }
func (p Page) garbage() int      { return int(binary.LittleEndian.Uint16(p.b[6:8])) }
func (p Page) setGarbage(v int)  { binary.LittleEndian.PutUint16(p.b[6:8], uint16(v)) }

// Flags returns the page flag word.
func (p Page) Flags() uint16 { return binary.LittleEndian.Uint16(p.b[4:6]) }

// SetFlags stores the page flag word.
func (p Page) SetFlags(f uint16) { binary.LittleEndian.PutUint16(p.b[4:6], f) }

// SetFlag sets the given flag bits.
func (p Page) SetFlag(f uint16) { p.SetFlags(p.Flags() | f) }

// ClearFlag clears the given flag bits.
func (p Page) ClearFlag(f uint16) { p.SetFlags(p.Flags() &^ f) }

// HasFlag reports whether all given flag bits are set.
func (p Page) HasFlag(f uint16) bool { return p.Flags()&f == f }

// NumSlots returns the size of the slot directory, including dead slots.
func (p Page) NumSlots() int { return p.numSlots() }

func (p Page) slot(i int) (off, length int) {
	base := slotBase + i*slotSize
	return int(binary.LittleEndian.Uint16(p.b[base : base+2])),
		int(binary.LittleEndian.Uint16(p.b[base+2 : base+4]))
}

func (p Page) setSlot(i, off, length int) {
	base := slotBase + i*slotSize
	binary.LittleEndian.PutUint16(p.b[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.b[base+2:base+4], uint16(length))
}

func (p Page) slotEnd() int { return slotBase + p.numSlots()*slotSize }

// Get returns the record in slot i, or nil if the slot is dead. The
// returned slice aliases the page buffer; callers must not hold it across
// page modifications.
func (p Page) Get(i int) []byte {
	if i < 0 || i >= p.numSlots() {
		return nil
	}
	off, l := p.slot(i)
	if l == 0 {
		return nil
	}
	return p.b[off : off+l]
}

// Live reports whether slot i holds a record.
func (p Page) Live(i int) bool {
	if i < 0 || i >= p.numSlots() {
		return false
	}
	_, l := p.slot(i)
	return l != 0
}

// FreeSpace returns the bytes available for record data after compaction,
// not counting slot-directory overhead for new slots.
func (p Page) FreeSpace() int {
	return p.freeHi() - p.slotEnd() + p.garbage()
}

// HasRoomFor reports whether a record of n bytes can be inserted
// (accounting for a possibly needed new directory slot).
func (p Page) HasRoomFor(n int) bool {
	need := n
	if p.deadSlot() < 0 {
		need += slotSize
	}
	return p.FreeSpace() >= need
}

// deadSlot returns the index of a reusable dead slot, or -1.
func (p Page) deadSlot() int {
	for i, n := 0, p.numSlots(); i < n; i++ {
		if _, l := p.slot(i); l == 0 {
			return i
		}
	}
	return -1
}

// Insert stores rec in the page, returning its slot number. ok is false if
// the record does not fit (the page is left unchanged).
func (p Page) Insert(rec []byte) (slot int, ok bool) {
	if len(rec) == 0 || len(rec) > MaxRecordLen {
		return 0, false
	}
	slot = p.deadSlot()
	need := len(rec)
	newSlot := slot < 0
	if newSlot {
		need += slotSize
	}
	contig := p.freeHi() - p.slotEnd()
	if contig < need {
		if p.FreeSpace() < need {
			return 0, false
		}
		p.Compact()
		contig = p.freeHi() - p.slotEnd()
		if contig < need {
			return 0, false
		}
	}
	if newSlot {
		slot = p.numSlots()
		p.setNumSlots(slot + 1)
	}
	off := p.freeHi() - len(rec)
	copy(p.b[off:], rec)
	p.setFreeHi(off)
	p.setSlot(slot, off, len(rec))
	return slot, true
}

// Delete removes the record in slot i. The slot becomes dead and may be
// reused by later inserts.
func (p Page) Delete(i int) {
	if !p.Live(i) {
		return
	}
	_, l := p.slot(i)
	p.setSlot(i, 0, 0)
	p.setGarbage(p.garbage() + l)
}

// Replace overwrites the record in slot i with rec, relocating it within
// the page if it grew. ok is false if the new record does not fit (the old
// record is preserved).
func (p Page) Replace(i int, rec []byte) bool {
	if !p.Live(i) || len(rec) == 0 || len(rec) > MaxRecordLen {
		return false
	}
	off, l := p.slot(i)
	if len(rec) <= l {
		copy(p.b[off:], rec)
		p.setSlot(i, off, len(rec))
		p.setGarbage(p.garbage() + l - len(rec))
		return true
	}
	// Must relocate: free space check counts the old copy as garbage.
	if p.FreeSpace()+l < len(rec) {
		return false
	}
	p.setSlot(i, 0, 0)
	p.setGarbage(p.garbage() + l)
	contig := p.freeHi() - p.slotEnd()
	if contig < len(rec) {
		p.Compact()
	}
	noff := p.freeHi() - len(rec)
	copy(p.b[noff:], rec)
	p.setFreeHi(noff)
	p.setSlot(i, noff, len(rec))
	return true
}

// InsertAt inserts rec as slot i, shifting slots [i, n) up by one. Unlike
// Insert, slot numbers are NOT stable across InsertAt/DeleteAt — this is
// for logically ordered nodes (B-tree pages), where slot order is key
// order and nothing points at slots from outside.
func (p Page) InsertAt(i int, rec []byte) bool {
	n := p.numSlots()
	if i < 0 || i > n || len(rec) == 0 || len(rec) > MaxRecordLen {
		return false
	}
	need := len(rec) + slotSize
	contig := p.freeHi() - p.slotEnd()
	if contig < need {
		if p.FreeSpace() < need {
			return false
		}
		p.Compact()
		if p.freeHi()-p.slotEnd() < need {
			return false
		}
	}
	// Shift the slot directory entries [i, n) up by one slot.
	base := slotBase + i*slotSize
	end := slotBase + n*slotSize
	copy(p.b[base+slotSize:end+slotSize], p.b[base:end])
	p.setNumSlots(n + 1)
	off := p.freeHi() - len(rec)
	copy(p.b[off:], rec)
	p.setFreeHi(off)
	p.setSlot(i, off, len(rec))
	return true
}

// DeleteAt removes slot i entirely, shifting slots [i+1, n) down by one.
// See InsertAt for the stability caveat.
func (p Page) DeleteAt(i int) {
	n := p.numSlots()
	if i < 0 || i >= n {
		return
	}
	_, l := p.slot(i)
	if l != 0 {
		p.setGarbage(p.garbage() + l)
	}
	base := slotBase + i*slotSize
	end := slotBase + n*slotSize
	copy(p.b[base:end-slotSize], p.b[base+slotSize:end])
	p.setNumSlots(n - 1)
}

// Compact rewrites the record area to reclaim garbage from deleted and
// shrunk records. Slot numbers are unchanged.
func (p Page) Compact() {
	var tmp [storage.PageSize]byte
	hi := storage.PageSize
	n := p.numSlots()
	for i := 0; i < n; i++ {
		off, l := p.slot(i)
		if l == 0 {
			continue
		}
		hi -= l
		copy(tmp[hi:], p.b[off:off+l])
		p.setSlot(i, hi, l)
	}
	copy(p.b[hi:], tmp[hi:])
	p.setFreeHi(hi)
	p.setGarbage(0)
}

// LiveCount returns the number of live records.
func (p Page) LiveCount() int {
	c := 0
	for i, n := 0, p.numSlots(); i < n; i++ {
		if _, l := p.slot(i); l != 0 {
			c++
		}
	}
	return c
}
