package page

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mvpbt/internal/storage"
	"mvpbt/internal/util"
)

func newPage() Page {
	p := Wrap(make([]byte, storage.PageSize))
	p.Init()
	return p
}

func TestInsertGet(t *testing.T) {
	p := newPage()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	slots := make([]int, len(recs))
	for i, r := range recs {
		s, ok := p.Insert(r)
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		slots[i] = s
	}
	for i, r := range recs {
		if got := p.Get(slots[i]); !bytes.Equal(got, r) {
			t.Fatalf("slot %d: got %q want %q", slots[i], got, r)
		}
	}
	if p.NumSlots() != 3 || p.LiveCount() != 3 {
		t.Fatalf("counts wrong: slots=%d live=%d", p.NumSlots(), p.LiveCount())
	}
}

func TestGetOutOfRange(t *testing.T) {
	p := newPage()
	if p.Get(-1) != nil || p.Get(0) != nil || p.Get(100) != nil {
		t.Fatal("out-of-range Get should return nil")
	}
}

func TestDeleteAndReuse(t *testing.T) {
	p := newPage()
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	p.Delete(s0)
	if p.Live(s0) || p.Get(s0) != nil {
		t.Fatal("deleted slot still live")
	}
	if !bytes.Equal(p.Get(s1), []byte("two")) {
		t.Fatal("delete disturbed neighbor")
	}
	s2, ok := p.Insert([]byte("three"))
	if !ok || s2 != s0 {
		t.Fatalf("dead slot not reused: got %d want %d", s2, s0)
	}
}

func TestInsertUntilFullThenCompact(t *testing.T) {
	p := newPage()
	rec := make([]byte, 100)
	var slots []int
	for {
		s, ok := p.Insert(rec)
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 70 {
		t.Fatalf("page held only %d 100-byte records", len(slots))
	}
	// Delete every other record, then verify the space is reusable.
	for i := 0; i < len(slots); i += 2 {
		p.Delete(slots[i])
	}
	inserted := 0
	for {
		if _, ok := p.Insert(rec); !ok {
			break
		}
		inserted++
	}
	if inserted < len(slots)/2 {
		t.Fatalf("reclaimed space allowed only %d inserts", inserted)
	}
}

func TestReplaceInPlaceAndRelocate(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("abcdef"))
	other, _ := p.Insert([]byte("neighbor"))
	if !p.Replace(s, []byte("xyz")) {
		t.Fatal("shrink replace failed")
	}
	if !bytes.Equal(p.Get(s), []byte("xyz")) {
		t.Fatal("shrunk record wrong")
	}
	big := make([]byte, 500)
	for i := range big {
		big[i] = 0x42
	}
	if !p.Replace(s, big) {
		t.Fatal("grow replace failed")
	}
	if !bytes.Equal(p.Get(s), big) {
		t.Fatal("grown record wrong")
	}
	if !bytes.Equal(p.Get(other), []byte("neighbor")) {
		t.Fatal("replace disturbed neighbor")
	}
}

func TestReplaceDeadOrOversized(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("x"))
	p.Delete(s)
	if p.Replace(s, []byte("y")) {
		t.Fatal("replace of dead slot should fail")
	}
	s2, _ := p.Insert([]byte("z"))
	if p.Replace(s2, make([]byte, MaxRecordLen+1)) {
		t.Fatal("oversized replace should fail")
	}
}

func TestInsertRejectsOversized(t *testing.T) {
	p := newPage()
	if _, ok := p.Insert(make([]byte, MaxRecordLen+1)); ok {
		t.Fatal("oversized insert should fail")
	}
	if _, ok := p.Insert(nil); ok {
		t.Fatal("empty insert should fail")
	}
	if _, ok := p.Insert(make([]byte, MaxRecordLen)); !ok {
		t.Fatal("max-size insert into empty page should succeed")
	}
}

func TestFlags(t *testing.T) {
	p := newPage()
	p.SetFlag(FlagHasGarbage)
	if !p.HasFlag(FlagHasGarbage) {
		t.Fatal("flag not set")
	}
	p.ClearFlag(FlagHasGarbage)
	if p.HasFlag(FlagHasGarbage) {
		t.Fatal("flag not cleared")
	}
}

func TestClientHeaderPersists(t *testing.T) {
	p := newPage()
	copy(p.Client(), "btree-node-header")
	s, _ := p.Insert(bytes.Repeat([]byte("r"), 64))
	p.Delete(s)
	p.Compact()
	if !bytes.HasPrefix(p.Client(), []byte("btree-node-header")) {
		t.Fatal("client header lost")
	}
}

func TestCompactPreservesRecords(t *testing.T) {
	p := newPage()
	var keep []int
	for i := 0; i < 40; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte("x"), i)))
		s, ok := p.Insert(rec)
		if !ok {
			t.Fatal("insert failed")
		}
		if i%3 == 0 {
			p.Delete(s)
		} else {
			keep = append(keep, s)
		}
	}
	p.Compact()
	for _, s := range keep {
		got := p.Get(s)
		want := fmt.Sprintf("record-%03d-", s) // slot numbers == insert order here
		_ = want
		if got == nil {
			t.Fatalf("slot %d lost after compact", s)
		}
	}
}

// TestPageModelProperty runs a random op sequence against the page and a
// map-based model, checking they agree.
func TestPageModelProperty(t *testing.T) {
	r := util.NewRand(12345)
	p := newPage()
	model := map[int][]byte{}
	for step := 0; step < 20000; step++ {
		switch r.Intn(3) {
		case 0: // insert
			rec := make([]byte, 1+r.Intn(300))
			r.Letters(rec)
			s, ok := p.Insert(rec)
			if ok {
				if _, exists := model[s]; exists {
					t.Fatalf("step %d: insert reused live slot %d", step, s)
				}
				model[s] = append([]byte(nil), rec...)
			}
		case 1: // delete a random live slot
			if len(model) == 0 {
				continue
			}
			for s := range model {
				p.Delete(s)
				delete(model, s)
				break
			}
		case 2: // replace a random live slot
			if len(model) == 0 {
				continue
			}
			for s := range model {
				rec := make([]byte, 1+r.Intn(300))
				r.Letters(rec)
				if p.Replace(s, rec) {
					model[s] = append([]byte(nil), rec...)
				}
				break
			}
		}
		if step%500 == 0 {
			for s, want := range model {
				if got := p.Get(s); !bytes.Equal(got, want) {
					t.Fatalf("step %d slot %d: got %q want %q", step, s, got, want)
				}
			}
			if p.LiveCount() != len(model) {
				t.Fatalf("step %d: live=%d model=%d", step, p.LiveCount(), len(model))
			}
		}
	}
}

func TestFreeSpaceAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := newPage()
		for _, sz := range sizes {
			n := int(sz)%400 + 1
			before := p.FreeSpace()
			_, ok := p.Insert(make([]byte, n))
			after := p.FreeSpace()
			if ok && after > before {
				return false // free space must not grow on insert
			}
			if !ok && before >= n+4 {
				return false // insert failed despite room
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumStampVerify(t *testing.T) {
	p := newPage()
	p.Insert([]byte("some record"))
	b := p.Bytes()
	StampChecksum(b)
	if !VerifyChecksum(b) {
		t.Fatal("freshly stamped page should verify")
	}
	// Any single-bit flip outside the checksum field must be detected.
	for _, pos := range []int{0, 5, 100, storage.PageSize - 1} {
		b[pos] ^= 0x40
		if VerifyChecksum(b) {
			t.Fatalf("bit flip at %d not detected", pos)
		}
		b[pos] ^= 0x40
	}
	// A flip inside the stored checksum itself must be detected too.
	b[9] ^= 0x01
	if VerifyChecksum(b) {
		t.Fatal("checksum-field flip not detected")
	}
	b[9] ^= 0x01
	if !VerifyChecksum(b) {
		t.Fatal("restored page should verify again")
	}
}

func TestChecksumAllZeroPageAccepted(t *testing.T) {
	b := make([]byte, storage.PageSize)
	if !VerifyChecksum(b) {
		t.Fatal("all-zero (never written) page should be accepted")
	}
	b[17] = 1
	if VerifyChecksum(b) {
		t.Fatal("non-zero unstamped page should be rejected")
	}
}

func TestChecksumContentChangeDetected(t *testing.T) {
	p := newPage()
	slot, _ := p.Insert([]byte("v1"))
	StampChecksum(p.Bytes())
	p.Replace(slot, []byte("v2"))
	if VerifyChecksum(p.Bytes()) {
		t.Fatal("modified page with stale stamp should fail verification")
	}
	StampChecksum(p.Bytes())
	if !VerifyChecksum(p.Bytes()) {
		t.Fatal("restamped page should verify")
	}
}
