package page

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"mvpbt/internal/util"
)

func TestInsertAtMaintainsOrder(t *testing.T) {
	p := newPage()
	// Insert records in random order at their sorted positions.
	r := util.NewRand(5)
	var keys []int
	for i := 0; i < 60; i++ {
		k := r.Intn(10000)
		rec := []byte(fmt.Sprintf("%06d", k))
		pos := sort.SearchInts(keys, k)
		if !p.InsertAt(pos, rec) {
			t.Fatalf("InsertAt %d failed", i)
		}
		keys = append(keys, 0)
		copy(keys[pos+1:], keys[pos:])
		keys[pos] = k
	}
	for i, k := range keys {
		want := fmt.Sprintf("%06d", k)
		if got := p.Get(i); string(got) != want {
			t.Fatalf("slot %d: %q want %q", i, got, want)
		}
	}
}

func TestInsertAtBounds(t *testing.T) {
	p := newPage()
	if p.InsertAt(-1, []byte("x")) {
		t.Fatal("negative position accepted")
	}
	if p.InsertAt(1, []byte("x")) {
		t.Fatal("past-end position accepted")
	}
	if p.InsertAt(0, nil) {
		t.Fatal("empty record accepted")
	}
	if p.InsertAt(0, make([]byte, MaxRecordLen+1)) {
		t.Fatal("oversized record accepted")
	}
	if !p.InsertAt(0, []byte("first")) || !p.InsertAt(1, []byte("last")) || !p.InsertAt(0, []byte("new-first")) {
		t.Fatal("valid InsertAt failed")
	}
	if string(p.Get(0)) != "new-first" || string(p.Get(2)) != "last" {
		t.Fatal("order wrong after boundary inserts")
	}
}

func TestInsertAtCompactsWhenFragmented(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte("a"), 200)
	n := 0
	for p.InsertAt(p.NumSlots(), rec) {
		n++
	}
	// Free alternating slots via DeleteAt (shrinking the directory).
	for i := n - 1; i >= 0; i -= 2 {
		p.DeleteAt(i)
	}
	// The freed space is fragmented; InsertAt must compact and succeed.
	added := 0
	for p.InsertAt(p.NumSlots(), rec) {
		added++
	}
	if added < n/2-1 {
		t.Fatalf("compaction reclaimed too little: %d of ~%d", added, n/2)
	}
}

func TestDeleteAtShiftsSlots(t *testing.T) {
	p := newPage()
	for i := 0; i < 5; i++ {
		p.InsertAt(i, []byte(fmt.Sprintf("r%d", i)))
	}
	p.DeleteAt(1)
	p.DeleteAt(2) // originally r3
	want := []string{"r0", "r2", "r4"}
	if p.NumSlots() != 3 {
		t.Fatalf("slots=%d", p.NumSlots())
	}
	for i, w := range want {
		if got := string(p.Get(i)); got != w {
			t.Fatalf("slot %d: %q want %q", i, got, w)
		}
	}
	p.DeleteAt(-1) // no-ops
	p.DeleteAt(99)
	if p.NumSlots() != 3 {
		t.Fatal("out-of-range DeleteAt changed the page")
	}
}

func TestOrderedModelProperty(t *testing.T) {
	// Random sequence of InsertAt/DeleteAt against a slice model.
	p := newPage()
	var model [][]byte
	r := util.NewRand(99)
	for step := 0; step < 20000; step++ {
		if r.Intn(3) != 0 || len(model) == 0 {
			rec := make([]byte, 1+r.Intn(120))
			r.Letters(rec)
			pos := r.Intn(len(model) + 1)
			if p.InsertAt(pos, rec) {
				model = append(model, nil)
				copy(model[pos+1:], model[pos:])
				model[pos] = append([]byte(nil), rec...)
			}
		} else {
			pos := r.Intn(len(model))
			p.DeleteAt(pos)
			model = append(model[:pos], model[pos+1:]...)
		}
		if step%997 == 0 {
			if p.NumSlots() != len(model) {
				t.Fatalf("step %d: slots=%d model=%d", step, p.NumSlots(), len(model))
			}
			for i := range model {
				if !bytes.Equal(p.Get(i), model[i]) {
					t.Fatalf("step %d slot %d: %q want %q", step, i, p.Get(i), model[i])
				}
			}
		}
	}
}

func TestHasRoomFor(t *testing.T) {
	p := newPage()
	if !p.HasRoomFor(100) {
		t.Fatal("fresh page has no room")
	}
	for {
		if _, ok := p.Insert(bytes.Repeat([]byte("z"), 500)); !ok {
			break
		}
	}
	if p.HasRoomFor(500) {
		t.Fatal("full page reports room")
	}
	// A dead slot frees record space without needing a new slot entry.
	p.Delete(0)
	if !p.HasRoomFor(500) {
		t.Fatal("reclaimable space not reported")
	}
}
