package maint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpbt/internal/storage"
)

func TestServiceRunsJobs(t *testing.T) {
	s := New(Config{Workers: 2})
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		s.Submit(Evict, "pbuf", func() error { n.Add(1); return nil })
		s.Submit(Merge, "tree", func() error { n.Add(1); return nil })
	}
	s.Drain()
	if got := n.Load(); got == 0 {
		t.Fatal("no jobs ran")
	}
	st := s.Stats()
	if st.Jobs[Evict].Runs == 0 || st.Jobs[Merge].Runs == 0 {
		t.Fatalf("per-kind runs not recorded: %+v", st.Jobs)
	}
	if st.Submitted+st.Deduped != 20 {
		t.Fatalf("submitted %d + deduped %d != 20", st.Submitted, st.Deduped)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceDedupe(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.Pause()
	var n atomic.Int64
	run := func() error { n.Add(1); return nil }
	if !s.Submit(GC, "t1", run) {
		t.Fatal("first submit rejected")
	}
	if s.Submit(GC, "t1", run) {
		t.Fatal("duplicate pending submit not coalesced")
	}
	if !s.Submit(GC, "t2", run) {
		t.Fatal("distinct key wrongly coalesced")
	}
	if got := s.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	s.Resume()
	s.Drain()
	if got := n.Load(); got != 2 {
		t.Fatalf("ran %d jobs, want 2", got)
	}
	if st := s.Stats(); st.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", st.Deduped)
	}
}

// A job submitted while an instance of it is running must be enqueued
// again: the running instance saw pre-trigger state.
func TestServiceResubmitDuringRun(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int64
	s.Submit(Flush, "lsm", func() error {
		close(started)
		<-release
		runs.Add(1)
		return nil
	})
	<-started
	if !s.Submit(Flush, "lsm", func() error { runs.Add(1); return nil }) {
		t.Fatal("resubmit during run was coalesced")
	}
	close(release)
	s.Drain()
	if got := runs.Load(); got != 2 {
		t.Fatalf("ran %d, want 2", got)
	}
}

func TestServicePauseResume(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	s.Pause()
	var n atomic.Int64
	s.Submit(Compact, "x", func() error { n.Add(1); return nil })
	time.Sleep(5 * time.Millisecond)
	if n.Load() != 0 {
		t.Fatal("job ran while paused")
	}
	s.Resume()
	s.Drain()
	if n.Load() != 1 {
		t.Fatal("job did not run after resume")
	}
}

func TestServiceCloseDrainsAndReportsError(t *testing.T) {
	s := New(Config{Workers: 1})
	boom := errors.New("boom")
	var n atomic.Int64
	for i := 0; i < 5; i++ {
		k := i
		s.Submit(Evict, string(rune('a'+k)), func() error {
			n.Add(1)
			if k == 2 {
				return boom
			}
			return nil
		})
	}
	if err := s.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close err = %v, want boom", err)
	}
	if got := n.Load(); got != 5 {
		t.Fatalf("Close drained %d jobs, want 5", got)
	}
	if s.Submit(Evict, "late", func() error { return nil }) {
		t.Fatal("Submit accepted after Close")
	}
	if st := s.Stats(); st.Jobs[Evict].Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Jobs[Evict].Errors)
	}
}

// fakeClock drives the limiter deterministically: Sleep advances time.
type fakeClock struct {
	mu  sync.Mutex
	t   time.Time
	nap time.Duration // cumulative sleep
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.nap += d
	c.mu.Unlock()
}

func TestLimiterThrottles(t *testing.T) {
	c := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(1000, 1000) // 1000 B/s, 1000 B bucket
	l.setClock(c.now, c.sleep)

	l.Wait() // full bucket: no sleep
	if c.nap != 0 {
		t.Fatalf("Wait slept %v with full bucket", c.nap)
	}
	l.Charge(3000) // 2000 B of debt
	l.Wait()       // must sleep ~2s to clear the debt
	if c.nap < 1900*time.Millisecond {
		t.Fatalf("Wait slept only %v for 2000B debt at 1000B/s", c.nap)
	}
	if got := l.ThrottleTime(); got < 1900*time.Millisecond {
		t.Fatalf("ThrottleTime = %v", got)
	}
	l.Wait() // debt cleared: no further sleep
	if c.nap > 2100*time.Millisecond {
		t.Fatalf("Wait slept again after debt cleared: %v", c.nap)
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0)
	l.Charge(1 << 40)
	done := make(chan struct{})
	go func() { l.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("disabled limiter blocked")
	}
}

func TestServiceChargesWrittenBytes(t *testing.T) {
	var written atomic.Int64
	c := &fakeClock{t: time.Unix(0, 0)}
	s := New(Config{
		Workers:      1,
		BytesPerSec:  1 << 20,
		Burst:        1 << 20,
		WrittenBytes: written.Load,
		Now:          c.now,
		Sleep:        c.sleep,
	})
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Submit(Flush, "lsm"+string(rune('0'+i)), func() error {
			written.Add(2 << 20) // each job writes 2 MiB against a 1 MiB/s budget
			return nil
		})
	}
	s.Drain()
	st := s.Stats()
	if st.Jobs[Flush].Bytes != 6<<20 {
		t.Fatalf("bytes = %d, want %d", st.Jobs[Flush].Bytes, 6<<20)
	}
	// First job runs on the initial burst; the next two must each wait for
	// the 2 MiB debt of their predecessor: at least ~2s of throttling.
	if st.Throttle < time.Second {
		t.Fatalf("throttle = %v, want >= 1s of simulated throttling", st.Throttle)
	}
}

func TestServiceConcurrentSubmit(t *testing.T) {
	s := New(Config{Workers: 4})
	var n atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Submit(Kind(i%int(nKinds)), string(rune('a'+g)), func() error {
					n.Add(1)
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() == 0 {
		t.Fatal("no jobs ran")
	}
	st := s.Stats()
	if st.Submitted+st.Deduped != 8*200 {
		t.Fatalf("submitted %d + deduped %d != 1600", st.Submitted, st.Deduped)
	}
}

// Transient device faults (storage.ErrIOFault) are retried in place with
// exponential backoff: N-1 failures followed by success must be invisible
// to the error counters, and each retry must wait longer than the last.
func TestRetryMasksTransientFaults(t *testing.T) {
	var mu sync.Mutex
	var delays []time.Duration
	s := New(Config{
		Workers:    1,
		MaxRetries: 3,
		RetryBase:  time.Millisecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
		},
	})
	defer s.Close()
	var calls atomic.Int64
	s.Submit(Compact, "lsm", func() error {
		if calls.Add(1) < 3 {
			return fmt.Errorf("compact: %w", storage.ErrIOFault)
		}
		return nil
	})
	s.Drain()
	st := s.Stats().Jobs[Compact]
	if calls.Load() != 3 {
		t.Fatalf("job ran %d times, want 3 (2 faults + success)", calls.Load())
	}
	if st.Runs != 1 || st.Retries != 2 || st.Errors != 0 || st.GiveUps != 0 {
		t.Fatalf("stats %+v, want Runs=1 Retries=2 Errors=0 GiveUps=0", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delays) != 2 || delays[1] <= delays[0] {
		t.Fatalf("backoff delays %v: want 2 growing delays", delays)
	}
}

// A job that keeps faulting exhausts the retry budget, lands in the error
// and give-up counters, and must NOT wedge the queue: later jobs still run.
func TestRetryExhaustionDoesNotWedgeQueue(t *testing.T) {
	s := New(Config{
		Workers:    1,
		MaxRetries: 2,
		RetryBase:  time.Microsecond,
		Sleep:      func(time.Duration) {},
	})
	var faulty atomic.Int64
	s.Submit(Merge, "tree", func() error {
		faulty.Add(1)
		return fmt.Errorf("merge: %w", storage.ErrIOFault)
	})
	var ok atomic.Bool
	s.Submit(Merge, "other", func() error { ok.Store(true); return nil })
	s.Drain()
	st := s.Stats().Jobs[Merge]
	if faulty.Load() != 3 { // initial run + 2 retries
		t.Fatalf("faulty job ran %d times, want 3", faulty.Load())
	}
	if st.Errors != 1 || st.GiveUps != 1 || st.Retries != 2 {
		t.Fatalf("stats %+v, want Errors=1 GiveUps=1 Retries=2", st)
	}
	if !ok.Load() {
		t.Fatal("job behind the exhausted one never ran: queue wedged")
	}
	if err := s.Close(); !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("Close error %v, want the recorded fault", err)
	}
}

// Permanent errors (anything that is not storage.ErrIOFault) must not be
// retried: re-running a job that hit corruption or a logic bug cannot help.
func TestPermanentErrorsNotRetried(t *testing.T) {
	slept := atomic.Int64{}
	s := New(Config{
		Workers:    1,
		MaxRetries: 3,
		Sleep:      func(time.Duration) { slept.Add(1) },
	})
	defer s.Close()
	var calls atomic.Int64
	s.Submit(GC, "tree", func() error {
		calls.Add(1)
		return fmt.Errorf("gc: %w", storage.ErrCorruptPage)
	})
	s.Drain()
	st := s.Stats().Jobs[GC]
	if calls.Load() != 1 || st.Retries != 0 || st.GiveUps != 0 || st.Errors != 1 {
		t.Fatalf("calls=%d stats=%+v, want a single non-retried error", calls.Load(), st)
	}
	if slept.Load() != 0 {
		t.Fatal("backoff slept for a permanent error")
	}
}
