// Package maint is the background maintenance subsystem: a small worker
// pool that runs the reorganizations the paper describes as background
// work — MV-PBT partition eviction (Algorithm 4, §4.5), partition merges,
// PN garbage sweeps (§4.6) and LSM flush/compaction — asynchronously, off
// the foreground write path. A token-bucket I/O rate limiter bounds the
// background write bandwidth charged against the (simulated) device so
// that maintenance cannot starve foreground reads, and the producer side
// (internal/index/part's partition buffer) applies RocksDB-style write
// stalls when maintenance falls behind.
package maint

import (
	"sync"
	"sync/atomic"
	"time"
)

// Limiter is a token-bucket byte rate limiter with charge-after
// semantics: a worker calls Wait before starting a job (blocking until
// the bucket is non-negative) and Charge with the bytes the job actually
// wrote afterwards, which may drive the bucket into debt. Charging actual
// rather than estimated bytes means no size prediction is needed; debt
// simply delays the NEXT job, which is exactly the smoothing a background
// writer wants.
type Limiter struct {
	mu     sync.Mutex
	rate   int64 // bytes per second; 0 = unlimited
	burst  int64 // bucket capacity in bytes
	tokens int64 // may be negative (debt)
	last   time.Time

	// test seams; default to the real clock.
	now   func() time.Time
	sleep func(time.Duration)

	throttleNS atomic.Int64
}

// NewLimiter returns a limiter allowing rate bytes/second with the given
// burst capacity. rate 0 disables limiting entirely; burst <= 0 defaults
// to one second's worth of tokens (min 1 MiB).
func NewLimiter(rate, burst int64) *Limiter {
	if burst <= 0 {
		burst = rate
		if burst < 1<<20 {
			burst = 1 << 20
		}
	}
	l := &Limiter{rate: rate, burst: burst, tokens: burst, now: time.Now, sleep: time.Sleep}
	l.last = l.now()
	return l
}

// setClock installs a fake time source (tests).
func (l *Limiter) setClock(now func() time.Time, sleep func(time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
	l.sleep = sleep
	l.last = now()
}

// refillLocked adds tokens for the time elapsed since the last refill.
func (l *Limiter) refillLocked() {
	t := l.now()
	dt := t.Sub(l.last)
	l.last = t
	if dt <= 0 {
		return
	}
	l.tokens += int64(float64(l.rate) * dt.Seconds())
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}

// Wait blocks until the bucket is out of debt. Returns immediately when
// limiting is disabled.
func (l *Limiter) Wait() {
	if l.rate <= 0 {
		return
	}
	start := l.nowSafe()
	for {
		l.mu.Lock()
		l.refillLocked()
		tokens := l.tokens
		sleep := l.sleep
		l.mu.Unlock()
		if tokens >= 0 {
			break
		}
		// Sleep long enough to clear the debt in one go.
		d := time.Duration(float64(-tokens) / float64(l.rate) * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		sleep(d)
	}
	l.throttleNS.Add(int64(l.nowSafe().Sub(start)))
}

// Charge deducts n bytes from the bucket (no blocking).
func (l *Limiter) Charge(n int64) {
	if l.rate <= 0 || n <= 0 {
		return
	}
	l.mu.Lock()
	l.refillLocked()
	l.tokens -= n
	l.mu.Unlock()
}

func (l *Limiter) nowSafe() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now()
}

// ThrottleTime returns the cumulative time workers spent blocked in Wait.
func (l *Limiter) ThrottleTime() time.Duration {
	return time.Duration(l.throttleNS.Load())
}
