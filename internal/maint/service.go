package maint

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/storage"
)

// Kind identifies a class of maintenance job. Per-kind stats are kept so
// the inspect tooling can report how the background budget was spent.
type Kind int

const (
	Evict   Kind = iota // MV-PBT partition-buffer eviction (Algorithm 4)
	Merge               // MV-PBT partition merge
	GC                  // PN garbage sweep (§4.6 phase 1)
	Flush               // LSM memtable flush
	Compact             // LSM compaction
	Reclaim             // space reclamation under watermark pressure (urgent lane)
	nKinds
)

func (k Kind) String() string {
	switch k {
	case Evict:
		return "evict"
	case Merge:
		return "merge"
	case GC:
		return "gc"
	case Flush:
		return "flush"
	case Compact:
		return "compact"
	case Reclaim:
		return "reclaim"
	}
	return "unknown"
}

// Config parameterizes a maintenance Service.
type Config struct {
	// Workers is the pool size; defaults to 2 (one heavy job — an
	// eviction build or a merge — plus one light one can overlap).
	Workers int
	// BytesPerSec caps the background write bandwidth; 0 = unlimited.
	BytesPerSec int64
	// Burst is the limiter bucket size; 0 picks a default.
	Burst int64
	// WrittenBytes reports cumulative device bytes written; the service
	// charges each job's before/after delta to the limiter. Nil disables
	// byte accounting (jobs still run, limiter never charged).
	WrittenBytes func() int64

	// MaxRetries bounds how often a job failing with a TRANSIENT error
	// (storage.ErrIOFault) is re-run in place before the service gives up
	// on that instance. Defaults to 3; negative disables retrying.
	// Permanent errors (corrupt pages, freed pages, logic errors) are
	// never retried.
	MaxRetries int
	// RetryBase is the delay before the first retry; each further retry
	// doubles it (exponential backoff). Defaults to 1ms.
	RetryBase time.Duration

	// test seams for the limiter clock and the retry backoff.
	Now   func() time.Time
	Sleep func(time.Duration)
}

type task struct {
	kind   Kind
	key    string
	run    func() error
	urgent bool
}

// JobStats aggregates one job kind's lifetime counters.
type JobStats struct {
	Runs    int64
	Errors  int64
	Retries int64         // transient-fault re-runs (not counted in Runs)
	GiveUps int64         // jobs abandoned after exhausting the retry budget
	Bytes   int64         // device bytes written while jobs of this kind ran
	Busy    time.Duration // wall time spent running (excludes queue + throttle)
}

// Stats is a snapshot of the service's counters.
type Stats struct {
	Jobs      [nKinds]JobStats
	Submitted int64 // Submit calls accepted (enqueued)
	Deduped   int64 // Submit calls coalesced into an already-pending task
	Urgent    int64 // SubmitUrgent calls accepted (also counted in Submitted)
	Throttle  time.Duration
}

// Service owns the worker pool. Jobs are closures submitted with a
// (kind, key) identity; a job already pending under the same identity is
// coalesced rather than queued twice, but a job submitted while an
// instance of it is RUNNING is enqueued again — the running instance
// observed state from before the new trigger.
type Service struct {
	limiter    *Limiter
	written    func() int64
	maxRetries int
	retryBase  time.Duration
	sleep      func(time.Duration)

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task
	pending map[string]bool
	paused  bool
	closed  bool
	lastErr error
	wg      sync.WaitGroup
	done    chan struct{} // closed on Kill/Close; unblocks retry backoffs

	stats     [nKinds]struct{ runs, errors, retries, giveUps, bytes, busyNS atomic.Int64 }
	submitted atomic.Int64
	deduped   atomic.Int64
	urgent    atomic.Int64
	active    atomic.Int64
}

// New starts the worker pool and returns the service.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = time.Millisecond
	}
	s := &Service{
		limiter:    NewLimiter(cfg.BytesPerSec, cfg.Burst),
		written:    cfg.WrittenBytes,
		maxRetries: cfg.MaxRetries,
		retryBase:  cfg.RetryBase,
		pending:    make(map[string]bool),
		done:       make(chan struct{}),
	}
	if cfg.Sleep != nil {
		s.sleep = cfg.Sleep
	}
	if cfg.Now != nil && cfg.Sleep != nil {
		s.limiter.setClock(cfg.Now, cfg.Sleep)
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit enqueues a job unless one with the same identity is already
// waiting in the queue. Returns false when coalesced or when the service
// is closed.
func (s *Service) Submit(kind Kind, key string, run func() error) bool {
	return s.submit(kind, key, run, false)
}

// SubmitUrgent enqueues a job on the priority lane: it goes to the FRONT
// of the queue and its run bypasses the background rate limiter — this is
// the path the engine's space governor uses, because throttling the work
// that frees space behind the writes that need it would be a priority
// inversion. An already-pending job with the same identity is promoted to
// the front and made urgent instead of being queued twice.
func (s *Service) SubmitUrgent(kind Kind, key string, run func() error) bool {
	return s.submit(kind, key, run, true)
}

func (s *Service) submit(kind Kind, key string, run func() error, urgent bool) bool {
	id := kind.String() + "/" + key
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.pending[id] {
		if urgent {
			// Promote the queued instance: urgent + front of the queue.
			for i := range s.queue {
				if s.queue[i].kind == kind && s.queue[i].key == key {
					t := s.queue[i]
					t.urgent = true
					copy(s.queue[1:i+1], s.queue[:i])
					s.queue[0] = t
					break
				}
			}
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		s.deduped.Add(1)
		return false
	}
	s.pending[id] = true
	t := task{kind: kind, key: key, run: run, urgent: urgent}
	if urgent {
		s.queue = append([]task{t}, s.queue...)
		s.urgent.Add(1)
	} else {
		s.queue = append(s.queue, t)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.submitted.Add(1)
	return true
}

// Pause stops workers from starting new jobs (running jobs finish).
func (s *Service) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume undoes Pause.
func (s *Service) Resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Pending returns the number of queued (not yet started) jobs.
func (s *Service) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for (len(s.queue) == 0 || s.paused) && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			// Closed and drained (Close clears paused so the remaining
			// queue is processed before exit).
			s.mu.Unlock()
			return
		}
		t := s.queue[0]
		s.queue = s.queue[1:]
		// Drop the pending marker BEFORE running: a re-trigger during the
		// run must enqueue a fresh instance, not be coalesced away.
		delete(s.pending, t.kind.String()+"/"+t.key)
		s.active.Add(1)
		s.mu.Unlock()

		if !t.urgent {
			s.limiter.Wait()
		}
		var before int64
		if s.written != nil {
			before = s.written()
		}
		start := time.Now()
		err := t.run()
		st := &s.stats[t.kind]
		// Transient device faults are retried in place with exponential
		// backoff: the job closure is idempotent (it re-reads current state),
		// so re-running it after the fault clears is safe. Permanent errors
		// (corrupt pages, freed pages, logic bugs) skip the loop entirely.
		if err != nil && errors.Is(err, storage.ErrIOFault) && s.maxRetries > 0 {
			delay := s.retryBase
			for attempt := 0; attempt < s.maxRetries && err != nil && errors.Is(err, storage.ErrIOFault); attempt++ {
				if !s.backoff(delay) {
					// The service is being killed/closed; abandon the retry
					// loop instead of sleeping through the shutdown.
					break
				}
				delay *= 2
				st.retries.Add(1)
				err = t.run()
			}
			if err != nil && errors.Is(err, storage.ErrIOFault) {
				st.giveUps.Add(1)
			}
		}
		st.busyNS.Add(int64(time.Since(start)))
		st.runs.Add(1)
		if s.written != nil {
			if delta := s.written() - before; delta > 0 {
				st.bytes.Add(delta)
				s.limiter.Charge(delta)
			}
		}
		if err != nil {
			st.errors.Add(1)
			s.mu.Lock()
			if s.lastErr == nil {
				s.lastErr = err
			}
			s.mu.Unlock()
		}
		s.active.Add(-1)
	}
}

// backoff waits d before a retry. It returns false — without having waited
// the full delay — when the service is shut down meanwhile, so a worker
// never holds up Kill/Close by sleeping in an exponential-backoff loop.
// The cfg.Sleep test seam, when installed, is used as-is (virtual time).
func (s *Service) backoff(d time.Duration) bool {
	if s.sleep != nil {
		s.sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}

// Drain blocks until the queue is empty and no job is running. It does
// not stop the workers; new submissions after Drain returns run normally.
// A paused service with queued work never drains — callers must Resume
// first.
func (s *Service) Drain() {
	for {
		s.mu.Lock()
		empty := len(s.queue) == 0
		s.mu.Unlock()
		if empty && s.active.Load() == 0 {
			// Re-check the queue: a job that finished between the two loads
			// may have submitted a follow-up (flush → compact).
			s.mu.Lock()
			empty = len(s.queue) == 0
			s.mu.Unlock()
			if empty {
				return
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Quiesce is the deterministic checkpoint barrier: it resumes a paused
// service (a paused queue never drains), processes every queued job, and
// returns only when the queue is empty AND no job is running. Anything the
// background jobs were going to publish has been published when Quiesce
// returns; the service keeps running. Follow-up submissions made BY running
// jobs (flush → compact) are covered — a job's submissions happen while it
// still counts as active — but submissions from other goroutines racing
// Quiesce are naturally outside the barrier.
func (s *Service) Quiesce() {
	s.Resume()
	for {
		s.Drain()
		s.mu.Lock()
		idle := len(s.queue) == 0 && s.active.Load() == 0
		s.mu.Unlock()
		if idle {
			return
		}
	}
}

// Kill simulates a crash: queued jobs are DISCARDED (never run) and the
// workers stop as soon as any currently running job finishes. Unlike
// Close, nothing is drained — state the discarded jobs would have
// published simply never appears, exactly like power loss with work
// pending. Idempotent; a subsequent Close is a no-op.
func (s *Service) Kill() {
	s.mu.Lock()
	if !s.closed {
		close(s.done)
	}
	s.closed = true
	s.queue = nil
	s.pending = make(map[string]bool)
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Close drains the remaining queue, stops the workers, and returns the
// first error any job recorded over the service's lifetime.
func (s *Service) Close() error {
	s.mu.Lock()
	if !s.closed {
		close(s.done)
	}
	s.closed = true
	s.paused = false // drain everything even if paused
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Err returns the first error any job recorded (nil if none).
func (s *Service) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Stats returns a snapshot of all counters.
func (s *Service) Stats() Stats {
	var out Stats
	for k := Kind(0); k < nKinds; k++ {
		st := &s.stats[k]
		out.Jobs[k] = JobStats{
			Runs:    st.runs.Load(),
			Errors:  st.errors.Load(),
			Retries: st.retries.Load(),
			GiveUps: st.giveUps.Load(),
			Bytes:   st.bytes.Load(),
			Busy:    time.Duration(st.busyNS.Load()),
		}
	}
	out.Submitted = s.submitted.Load()
	out.Deduped = s.deduped.Load()
	out.Urgent = s.urgent.Load()
	out.Throttle = s.limiter.ThrottleTime()
	return out
}
