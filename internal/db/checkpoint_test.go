package db

import (
	"errors"
	"fmt"
	"testing"
)

// walTableKind is walTable with a selectable heap organization — the
// checkpoint tests run against both HOT and SIAS.
func walTableKind(t *testing.T, hk HeapKind, cfg Config) (*Engine, *Table, *Index) {
	t.Helper()
	cfg.EnableWAL = true
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 1024
	}
	if cfg.PartitionBufferBytes == 0 {
		cfg.PartitionBufferBytes = 1 << 22
	}
	e := NewEngine(cfg)
	tbl, err := e.NewTable("accounts", hk, IndexDef{
		Name: "pk", Kind: IdxMVPBT, Unique: true, BloomBits: 10, Extract: keyExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl, tbl.Indexes()[0]
}

func bothHeaps(t *testing.T, fn func(t *testing.T, hk HeapKind)) {
	for _, hk := range []HeapKind{HeapHOT, HeapSIAS} {
		t.Run(hk.String(), func(t *testing.T) { fn(t, hk) })
	}
}

func insertN(t *testing.T, e *Engine, tbl *Table, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		tx := e.Begin()
		if _, _, err := tbl.Insert(tx, row(fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		e.Commit(tx)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	bothHeaps(t, func(t *testing.T, hk HeapKind) {
		e, tbl, ix := walTableKind(t, hk, Config{})
		insertN(t, e, tbl, 0, 200)
		// Churn versions so the log is much bigger than the live state (the
		// snapshot must undercut the history even with the 2-page superblock
		// overhead the first checkpoint adds).
		for round := 0; round < 5; round++ {
			for i := 0; i < 200; i += 4 {
				tx := e.Begin()
				key := []byte(fmt.Sprintf("k%04d", i))
				cur, err := tbl.LookupOne(tx, ix, key, true)
				if err != nil || cur == nil {
					t.Fatalf("lookup: %v %v", cur, err)
				}
				if _, err := tbl.Update(tx, *cur, row(string(key), fmt.Sprintf("u%d", round))); err != nil {
					t.Fatal(err)
				}
				e.Commit(tx)
			}
		}
		want := snapshotState(t, e, tbl, ix)
		before := e.WALDeviceBytes()

		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		after := e.WALDeviceBytes()
		if after >= before {
			t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", before, after)
		}
		st := e.CheckpointInfo()
		if st.Count != 1 || st.Seq != 1 || st.WALBytesBefore != before {
			t.Fatalf("stats wrong: %+v (before=%d)", st, before)
		}

		// The checkpointed log must recover to the same state...
		_, tbl2, ix2, applied := recoverInto(t, e.LogImage())
		if applied != 1 {
			t.Fatalf("applied %d txs from a pure snapshot, want 1", applied)
		}
		if got := snapshotState(t, tbl2.eng, tbl2, ix2); !mapsEqual(got, want) {
			t.Fatalf("recovered state diverged:\n got %v\nwant %v", got, want)
		}

		// ...and keep accepting appends: post-checkpoint commits recover too.
		insertN(t, e, tbl, 200, 210)
		want = snapshotState(t, e, tbl, ix)
		_, tbl3, ix3, _ := recoverInto(t, e.LogImage())
		if got := snapshotState(t, tbl3.eng, tbl3, ix3); !mapsEqual(got, want) {
			t.Fatalf("post-checkpoint appends lost:\n got %v\nwant %v", got, want)
		}
	})
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	e, tbl, _ := walTableKind(t, HeapSIAS, Config{})
	insertN(t, e, tbl, 0, 5)
	tx := e.Begin()
	defer e.Abort(tx)
	if err := e.Checkpoint(); !errors.Is(err, ErrCheckpointBusy) {
		t.Fatalf("Checkpoint with an active tx: got %v, want ErrCheckpointBusy", err)
	}
}

func TestCheckpointSecondGenerationAlternatesSlot(t *testing.T) {
	e, tbl, ix := walTableKind(t, HeapSIAS, Config{})
	insertN(t, e, tbl, 0, 50)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insertN(t, e, tbl, 50, 100)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := e.CheckpointInfo(); st.Seq != 2 {
		t.Fatalf("seq = %d, want 2", st.Seq)
	}
	want := snapshotState(t, e, tbl, ix)
	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	if got := snapshotState(t, tbl2.eng, tbl2, ix2); !mapsEqual(got, want) {
		t.Fatalf("second-generation recovery diverged:\n got %v\nwant %v", got, want)
	}
}

// TestCheckpointCrashPoints crashes at each instant of the checkpoint
// protocol — snapshot durable but superblock unwritten; superblock written
// but old log not yet freed; old log freed but nothing appended since — and
// checks the surviving log image recovers to the pre-checkpoint state, for
// both heap organizations. A "crash" is taking the durable log image at
// that instant: recovery depends on nothing else.
func TestCheckpointCrashPoints(t *testing.T) {
	bothHeaps(t, func(t *testing.T, hk HeapKind) {
		for _, point := range []string{"before-super", "after-super", "after-truncate"} {
			t.Run(point, func(t *testing.T) {
				e, tbl, ix := walTableKind(t, hk, Config{})
				insertN(t, e, tbl, 0, 60)
				want := snapshotState(t, e, tbl, ix)

				var img []byte
				capture := func() { img = e.logImageLocked() }
				switch point {
				case "before-super":
					e.ckptBeforeSuper = capture
				case "after-super":
					e.ckptAfterSuper = capture
				case "after-truncate":
					e.ckptAfterTruncate = capture
				}
				if err := e.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if img == nil {
					t.Fatal("crash hook never fired")
				}
				_, tbl2, ix2, _ := recoverInto(t, img)
				if got := snapshotState(t, tbl2.eng, tbl2, ix2); !mapsEqual(got, want) {
					t.Fatalf("crash at %s diverged:\n got %v\nwant %v", point, got, want)
				}
			})
		}
	})
}

// TestCheckpointCrashAfterPostTruncateAppend covers the remaining window:
// the first commits AFTER a checkpoint land in the new generation, then the
// engine crashes. Recovery must see snapshot + suffix.
func TestCheckpointCrashAfterPostTruncateAppend(t *testing.T) {
	bothHeaps(t, func(t *testing.T, hk HeapKind) {
		e, tbl, ix := walTableKind(t, hk, Config{})
		insertN(t, e, tbl, 0, 40)
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		insertN(t, e, tbl, 40, 45)
		// Capture the image before snapshotState: its read-only transaction
		// would otherwise append one more begin/commit pair to the log.
		img := e.LogImage()
		want := snapshotState(t, e, tbl, ix)
		_, tbl2, ix2, applied := recoverInto(t, img)
		if applied != 1+5 {
			t.Fatalf("applied = %d, want 6 (snapshot + 5 commits)", applied)
		}
		if got := snapshotState(t, tbl2.eng, tbl2, ix2); !mapsEqual(got, want) {
			t.Fatalf("snapshot+suffix recovery diverged:\n got %v\nwant %v", got, want)
		}
	})
}

func TestAutoCheckpoint(t *testing.T) {
	e, tbl, ix := walTableKind(t, HeapSIAS, Config{WALCheckpointBytes: 4 << 10})
	insertN(t, e, tbl, 0, 300)
	st := e.CheckpointInfo()
	if st.Count == 0 {
		t.Fatal("auto-checkpoint never triggered")
	}
	want := snapshotState(t, e, tbl, ix)
	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	if got := snapshotState(t, tbl2.eng, tbl2, ix2); !mapsEqual(got, want) {
		t.Fatalf("auto-checkpointed log diverged:\n got %v\nwant %v", got, want)
	}
}

// TestCheckpointReplayIsRecoverable: recovering a checkpointed log re-logs
// everything (snapshot rows become ordinary inserts), so the recovered
// engine's own log must again recover to the same state.
func TestCheckpointReplayIsRecoverable(t *testing.T) {
	e, tbl, ix := walTableKind(t, HeapSIAS, Config{})
	insertN(t, e, tbl, 0, 30)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := snapshotState(t, e, tbl, ix)
	_, tbl2, _, _ := recoverInto(t, e.LogImage())
	_, tbl3, ix3, _ := recoverInto(t, tbl2.eng.LogImage())
	if got := snapshotState(t, tbl3.eng, tbl3, ix3); !mapsEqual(got, want) {
		t.Fatalf("recovery-of-recovery diverged:\n got %v\nwant %v", got, want)
	}
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
