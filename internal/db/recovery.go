package db

import (
	"fmt"

	"mvpbt/internal/txn"
	"mvpbt/internal/wal"
)

// WAL integration: with Config.EnableWAL the engine appends a logical
// redo record for every row operation and a commit/abort marker per
// transaction, flushing the log at commit (the transaction's durability
// point). Recovery (Engine.Recover) replays committed transactions in log
// order through the normal table interfaces into a freshly built engine,
// reconstructing heaps, indexes and indirection state.

// logOp appends a row-operation record when logging is enabled. The
// transaction's OpBegin record is emitted lazily here, immediately before
// its first row record (under the same walMu hold, so no other record can
// interleave between them): replay requires begin-before-first-op, and
// read-only transactions never reach this point, leaving the log untouched.
func (t *Table) logOp(tx *txn.Tx, op wal.Op, key, row []byte) {
	if t.eng.wal == nil {
		return
	}
	t.eng.walMu.RLock()
	if tx.FirstWALOp() {
		t.eng.wal.Append(&wal.Record{Op: wal.OpBegin, TxID: uint64(tx.ID)})
	}
	t.eng.wal.Append(&wal.Record{Op: op, TxID: uint64(tx.ID), Table: t.name, Key: key, Row: row})
	t.eng.walMu.RUnlock()
}

// pkKey extracts the row's primary-key (the first index's key).
func (t *Table) pkKey(row []byte) []byte {
	if len(t.indexes) == 0 {
		return nil
	}
	return t.indexes[0].Def.Extract(row)
}

// Recover replays the engine's write-ahead log into the engine. Call it
// on a FRESHLY CONSTRUCTED engine whose tables have been re-created (with
// NewTable, same names and definitions) but hold no data: the caller owns
// the schema, the log holds the data. Only transactions with a commit
// record are applied, in log order; everything else is discarded.
func (e *Engine) Recover(logImage []byte, tables map[string]*Table) (applied int, err error) {
	return e.RecoverAll(logImage, tables, nil)
}

// RecoverAll is Recover extended with durable KV stores: a row or
// checkpoint record whose Table field names an entry in kvs replays
// through that store (OpInsert/CkptRow → PutTx, OpDelete → DeleteTx)
// instead of a table. The shard router's per-shard engines recover their
// KV keyspace through this entry point.
func (e *Engine) RecoverAll(logImage []byte, tables map[string]*Table, kvs map[string]*MVPBTKV) (applied int, err error) {
	if e.wal == nil {
		return 0, fmt.Errorf("db: Recover on an engine without EnableWAL")
	}
	// Pass 1: find committed transactions, and prepared transactions whose
	// 2PC decision never reached this log — those must survive recovery IN
	// DOUBT (durable but invisible), not be dropped as uncommitted work.
	// Records appear in log order, so a later decide record settles an
	// earlier prepare.
	committed := map[uint64]bool{}
	prepared := map[uint64]uint64{} // txid → commit-group id, undecided only
	r := wal.NewReaderFromBytes(logImage)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		switch rec.Op {
		case wal.OpCommit:
			committed[rec.TxID] = true
		case wal.OpDecideCommit:
			committed[rec.TxID] = true
			delete(prepared, rec.TxID)
		case wal.OpPrepare:
			if !committed[rec.TxID] {
				prepared[rec.TxID] = wal.GroupID(rec.Key)
			}
		case wal.OpAbort, wal.OpDecideAbort:
			delete(prepared, rec.TxID)
		}
	}
	// If the readable prefix ended at an unreadable record, decide whether
	// that is a harmless torn tail (an unacknowledged flush died with the
	// crash — nothing committed is lost) or mid-log corruption: salvage-scan
	// past the damage for commit records of transactions the replay below
	// cannot reach. Dropped committed work makes the log corrupt; replay
	// still applies the intact prefix, but the error is surfaced so the
	// caller never mistakes the partial state for complete.
	var corruptErr error
	if r.Stopped() {
		dropped := map[uint64]bool{}
		for _, txid := range wal.Salvage(logImage, r.Offset()) {
			if !committed[txid] {
				dropped[txid] = true
			}
		}
		if len(dropped) > 0 {
			corruptErr = fmt.Errorf("db: WAL unreadable at offset %d, %d committed transaction(s) dropped: %w",
				r.Offset(), len(dropped), wal.ErrWALCorrupt)
		}
	}
	// Pass 2: replay committed row operations in log order. Original
	// transaction ids are remapped to fresh ones; commit order follows the
	// log, so the final visible state matches. A checkpoint snapshot at the
	// head of the log replays as one synthetic committed transaction; its
	// CkptEnd record carries the row count, which replay verifies so a torn
	// snapshot is rejected rather than silently half-applied.
	open := map[uint64]*txn.Tx{}
	var ckptTx *txn.Tx
	var ckptRows uint64
	r = wal.NewReaderFromBytes(logImage)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		switch rec.Op {
		case wal.OpBegin:
			if committed[rec.TxID] {
				open[rec.TxID] = e.Begin()
			} else if _, isPrepared := prepared[rec.TxID]; isPrepared {
				// Prepared-undecided: replay its operations too; the prepare
				// record below re-parks it in doubt.
				open[rec.TxID] = e.Begin()
			}
		case wal.OpCommit, wal.OpDecideCommit:
			if tx := open[rec.TxID]; tx != nil {
				e.Commit(tx)
				delete(open, rec.TxID)
				applied++
			}
		case wal.OpPrepare:
			// Re-prepare an undecided transaction through the normal prepare
			// path (re-logging, like all of replay): the recovered engine's
			// fresh log carries its own prepare record and the in-doubt
			// registry holds the open handle for later resolution against
			// the coordinator log.
			gid, isPrepared := prepared[rec.TxID]
			tx := open[rec.TxID]
			if tx == nil || !isPrepared {
				continue // decided later in the log, or uncommitted garbage
			}
			if err := e.PrepareDurable(tx, gid); err != nil {
				return applied, fmt.Errorf("db: re-preparing in-doubt tx %d: %w", rec.TxID, err)
			}
			delete(open, rec.TxID)
		case wal.OpAbort, wal.OpDecideAbort:
			// Aborted/decided-abort transactions were never opened.
		case wal.OpForget:
			// Coordinator-side bookkeeping; nothing to replay.
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete:
			tx := open[rec.TxID]
			if tx == nil {
				continue // uncommitted: skip
			}
			if kv := kvs[rec.Table]; kv != nil {
				if err := kv.replay(tx, rec); err != nil {
					return applied, fmt.Errorf("db: replaying %v: %w", rec, err)
				}
				continue
			}
			tbl := tables[rec.Table]
			if tbl == nil {
				return applied, fmt.Errorf("db: log references unknown table %q", rec.Table)
			}
			if err := tbl.replay(tx, rec); err != nil {
				return applied, fmt.Errorf("db: replaying %v: %w", rec, err)
			}
		case wal.OpCkptBegin:
			if ckptTx != nil {
				return applied, fmt.Errorf("db: nested checkpoint begin (seq %d): %w", rec.TxID, wal.ErrWALCorrupt)
			}
			ckptTx, ckptRows = e.Begin(), 0
		case wal.OpCkptRow:
			if ckptTx == nil {
				return applied, fmt.Errorf("db: checkpoint row outside a snapshot: %w", wal.ErrWALCorrupt)
			}
			if kv := kvs[rec.Table]; kv != nil {
				if err := kv.PutTx(ckptTx, rec.Key, rec.Row); err != nil {
					return applied, fmt.Errorf("db: replaying %v: %w", rec, err)
				}
				ckptRows++
				continue
			}
			tbl := tables[rec.Table]
			if tbl == nil {
				return applied, fmt.Errorf("db: checkpoint references unknown table %q", rec.Table)
			}
			if _, _, err := tbl.Insert(ckptTx, rec.Row); err != nil {
				return applied, fmt.Errorf("db: replaying %v: %w", rec, err)
			}
			ckptRows++
		case wal.OpCkptEnd:
			if ckptTx == nil {
				return applied, fmt.Errorf("db: checkpoint end without begin: %w", wal.ErrWALCorrupt)
			}
			if rec.TxID != ckptRows {
				return applied, fmt.Errorf("db: checkpoint row count mismatch: snapshot has %d, end record says %d: %w",
					ckptRows, rec.TxID, wal.ErrWALCorrupt)
			}
			e.Commit(ckptTx)
			ckptTx = nil
			applied++
		}
	}
	if ckptTx != nil {
		// The snapshot never closed: the generation is torn at its head and
		// nothing in it is trustworthy.
		e.Abort(ckptTx)
		return applied, fmt.Errorf("db: checkpoint snapshot torn (no end record after %d rows): %w",
			ckptRows, wal.ErrWALCorrupt)
	}
	// Any transaction left open here logged a begin but no commit was
	// found (should not happen given pass 1); abort defensively.
	for _, tx := range open {
		e.Abort(tx)
	}
	return applied, corruptErr
}

// replay applies one logged KV operation inside tx through the normal
// store interfaces (re-logging, like table replay: the recovered engine
// carries a fresh self-contained log).
func (m *MVPBTKV) replay(tx *txn.Tx, rec wal.Record) error {
	switch rec.Op {
	case wal.OpInsert, wal.OpUpdate:
		return m.PutTx(tx, rec.Key, rec.Row)
	case wal.OpDelete:
		return m.DeleteTx(tx, rec.Key)
	}
	return fmt.Errorf("unexpected KV op %v", rec.Op)
}

// replay applies one logged row operation inside tx through the normal
// table interfaces. Replay deliberately re-logs: the recovered engine ends
// up with a fresh, self-contained log of the recovered state, so recovery
// can itself be recovered from.
func (t *Table) replay(tx *txn.Tx, rec wal.Record) error {
	switch rec.Op {
	case wal.OpInsert:
		_, _, err := t.Insert(tx, rec.Row)
		return err
	case wal.OpUpdate:
		cur, err := t.LookupOne(tx, t.indexes[0], rec.Key, true)
		if err != nil {
			return err
		}
		if cur == nil {
			return fmt.Errorf("update target %x missing", rec.Key)
		}
		_, err = t.Update(tx, *cur, rec.Row)
		return err
	case wal.OpDelete:
		cur, err := t.LookupOne(tx, t.indexes[0], rec.Key, true)
		if err != nil {
			return err
		}
		if cur == nil {
			return fmt.Errorf("delete target %x missing", rec.Key)
		}
		return t.Delete(tx, *cur)
	}
	return fmt.Errorf("unexpected op %v", rec.Op)
}

// LogImage returns the bytes of the engine's write-ahead log as persisted
// on the device (what survives a crash). The authoritative generation is
// resolved through the checkpoint superblock, exactly as recovery after a
// real restart would: a crash mid-checkpoint yields whichever complete
// generation the superblock points at.
func (e *Engine) LogImage() []byte {
	e.walMu.RLock()
	defer e.walMu.RUnlock()
	return e.logImageLocked()
}

// logImageLocked is LogImage without the lock — for the checkpoint crash
// hooks, which run with walMu already held.
func (e *Engine) logImageLocked() []byte {
	if e.walFile == nil {
		return nil
	}
	return readWholeFile(e.currentLogFile())
}
