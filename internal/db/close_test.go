package db

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineCloseConcurrent races Close from several goroutines while the
// background maintenance service still has queued work: every call must
// return (no deadlock on the drain), all calls must agree on the result,
// and registered closers must run exactly once.
func TestEngineCloseConcurrent(t *testing.T) {
	e := NewEngine(Config{
		BufferPages:          512,
		PartitionBufferBytes: 1 << 20,
		BackgroundMaint:      true,
		MaintWorkers:         2,
	})
	tbl, err := e.NewTable("t", HeapHOT, IndexDef{
		Name: "pk", Kind: IdxMVPBT, Unique: true, Extract: keyExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := tbl.Indexes()[0]
	// Enough committed inserts and evictions to leave maintenance jobs
	// (builds, merges, sweeps) in flight when Close starts draining.
	for i := 0; i < 200; i++ {
		tx := e.Begin()
		if _, _, err := tbl.Insert(tx, row(fmt.Sprintf("k%03d", i), "v")); err != nil {
			t.Fatal(err)
		}
		e.Commit(tx)
		if i%50 == 49 {
			if err := ix.MV().EvictPN(); err != nil {
				t.Fatal(err)
			}
		}
	}

	var closerRuns atomic.Int64
	e.AddCloser(func() error {
		closerRuns.Add(1)
		return nil
	})

	const callers = 4
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.Close()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Close deadlocked")
	}
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("caller %d got %v, caller 0 got %v — Close is not idempotent", i, err, errs[0])
		}
	}
	if errs[0] != nil {
		t.Fatalf("Close = %v", errs[0])
	}
	if n := closerRuns.Load(); n != 1 {
		t.Fatalf("closer ran %d times, want exactly 1", n)
	}
	// A straggler call after the race still returns the settled result.
	if err := e.Close(); err != nil {
		t.Fatalf("late Close = %v", err)
	}
}

// TestEngineCloseReportsFirstError pins the error contract: the first
// closer error is returned, and repeated Close calls return that SAME
// error instead of retrying the shutdown.
func TestEngineCloseReportsFirstError(t *testing.T) {
	e := NewEngine(Config{BufferPages: 64})
	boom := errors.New("flush failed")
	e.AddCloser(func() error { return boom })
	later := errors.New("second")
	e.AddCloser(func() error { return later })
	if err := e.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want first closer error", err)
	}
	if err := e.Close(); !errors.Is(err, boom) {
		t.Fatalf("second Close = %v, want cached first error", err)
	}
}

// TestEngineCloseAfterCrash: a failure stop already marked the engine
// closed, so Close must be a clean no-op — closers do NOT run (the crash
// semantics say nothing is flushed) and no error is reported.
func TestEngineCloseAfterCrash(t *testing.T) {
	e := NewEngine(Config{BufferPages: 64, BackgroundMaint: true})
	var ran atomic.Int64
	e.AddCloser(func() error { ran.Add(1); return nil })
	e.Crash()
	if err := e.Close(); err != nil {
		t.Fatalf("Close after Crash = %v, want nil", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("closer ran after a crash: flush on a failed engine")
	}
}
