package db

import (
	"errors"
	"testing"
)

// prepareOne opens a transaction, inserts key=val, and prepares it for
// commit-group gid, returning the prepared transaction's engine state.
func prepareOne(t *testing.T, e *Engine, tbl *Table, key, val string, gid uint64) {
	t.Helper()
	tx := e.Begin()
	if _, _, err := tbl.Insert(tx, row(key, val)); err != nil {
		t.Fatal(err)
	}
	if err := e.PrepareDurable(tx, gid); err != nil {
		t.Fatalf("PrepareDurable: %v", err)
	}
}

func TestPrepareInvisibleUntilDecided(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("base", "0"))
	e.Commit(tx)

	prepareOne(t, e, tbl, "x", "1", 42)

	// Prepared ≠ committed: a fresh snapshot must not see the row.
	got := snapshotState(t, e, tbl, ix)
	if len(got) != 1 || got["base"] != "0" {
		t.Fatalf("prepared row visible before decision: %v", got)
	}
	st := e.TwoPCInfo()
	if st.Prepares != 1 || st.InDoubt != 1 || st.OldestAge < 0 {
		t.Fatalf("stats after prepare: %+v", st)
	}
	// An in-doubt transaction keeps the engine non-quiescent: checkpoint
	// must refuse rather than snapshot an undecidable version.
	if err := e.Checkpoint(); !errors.Is(err, ErrCheckpointBusy) {
		t.Fatalf("Checkpoint with in-doubt txn: %v, want ErrCheckpointBusy", err)
	}

	n, err := e.ResolveGroup(42, true)
	if err != nil || n != 1 {
		t.Fatalf("ResolveGroup: n=%d err=%v", n, err)
	}
	got = snapshotState(t, e, tbl, ix)
	if len(got) != 2 || got["x"] != "1" {
		t.Fatalf("committed decision not visible: %v", got)
	}
	st = e.TwoPCInfo()
	if st.ResolvedCommits != 1 || st.InDoubt != 0 {
		t.Fatalf("stats after resolve: %+v", st)
	}
	// Resolving an unknown group is a no-op, not an error.
	if n, err := e.ResolveGroup(42, true); err != nil || n != 0 {
		t.Fatalf("re-resolve: n=%d err=%v", n, err)
	}
}

func TestPrepareAbortDecision(t *testing.T) {
	e, tbl, ix := walTable(t)
	prepareOne(t, e, tbl, "doomed", "v", 7)
	n, err := e.ResolveGroup(7, false)
	if err != nil || n != 1 {
		t.Fatalf("ResolveGroup(abort): n=%d err=%v", n, err)
	}
	if got := snapshotState(t, e, tbl, ix); len(got) != 0 {
		t.Fatalf("aborted row visible: %v", got)
	}
	if st := e.TwoPCInfo(); st.ResolvedAborts != 1 || st.InDoubt != 0 {
		t.Fatalf("stats after abort: %+v", st)
	}
}

// TestRecoverInDoubt crashes a shard holding a prepared-but-undecided
// transaction. Recovery must carry the leg forward IN DOUBT — durable,
// invisible, listed with its commit-group id, and cleanly resolvable in
// either direction — not drop it as uncommitted work, and not report the
// log corrupt.
func TestRecoverInDoubt(t *testing.T) {
	for _, commit := range []bool{true, false} {
		name := "abort"
		if commit {
			name = "commit"
		}
		t.Run(name, func(t *testing.T) {
			e, tbl, _ := walTable(t)
			tx := e.Begin()
			tbl.Insert(tx, row("base", "0"))
			e.Commit(tx)
			prepareOne(t, e, tbl, "leg", "v", 99)

			// Crash: only the log image survives. Recover must not error —
			// an undecided prepare is in-doubt, not corruption.
			e2, tbl2, ix2, applied := recoverInto(t, e.LogImage())
			if applied != 1 {
				t.Fatalf("applied %d committed txs, want 1", applied)
			}
			doubts := e2.InDoubtList()
			if len(doubts) != 1 || doubts[0].GID != 99 {
				t.Fatalf("in-doubt after recovery: %v, want one entry for group 99", doubts)
			}
			if got := snapshotState(t, e2, tbl2, ix2); len(got) != 1 {
				t.Fatalf("in-doubt row visible after recovery: %v", got)
			}

			if err := e2.ResolvePrepared(doubts[0].TxID, commit); err != nil {
				t.Fatalf("ResolvePrepared: %v", err)
			}
			got := snapshotState(t, e2, tbl2, ix2)
			if commit {
				if len(got) != 2 || got["leg"] != "v" {
					t.Fatalf("commit decision after recovery not visible: %v", got)
				}
			} else {
				if len(got) != 1 || got["base"] != "0" {
					t.Fatalf("presumed abort left residue: %v", got)
				}
			}
		})
	}
}

// TestRecoverInDoubtTwice: recovery re-logs the prepare, so a second crash
// before the decision lands must recover the same in-doubt leg from the
// NEW log — replay of replay, still resolvable.
func TestRecoverInDoubtTwice(t *testing.T) {
	e, tbl, _ := walTable(t)
	prepareOne(t, e, tbl, "leg", "v", 5)

	e2, _, _, _ := recoverInto(t, e.LogImage())
	e3, tbl3, ix3, _ := recoverInto(t, e2.LogImage())
	doubts := e3.InDoubtList()
	if len(doubts) != 1 || doubts[0].GID != 5 {
		t.Fatalf("in-doubt after double recovery: %v", doubts)
	}
	if err := e3.ResolvePrepared(doubts[0].TxID, true); err != nil {
		t.Fatal(err)
	}
	if got := snapshotState(t, e3, tbl3, ix3); len(got) != 1 || got["leg"] != "v" {
		t.Fatalf("state after double recovery + commit: %v", got)
	}
}
