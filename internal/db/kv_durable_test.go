package db

import (
	"fmt"
	"testing"
)

// newDurableKV builds a WAL-enabled engine with one durable MV-PBT KV
// store (the per-shard configuration the shard router instantiates).
func newDurableKV(t *testing.T, group bool) (*Engine, *MVPBTKV) {
	t.Helper()
	e := NewEngine(Config{
		BufferPages:          256,
		PartitionBufferBytes: 64 << 10,
		EnableWAL:            true,
		GroupCommit:          GroupCommitConfig{Enabled: group},
	})
	kv, err := NewMVPBTKV(e, "kv", MVPBTKVOptions{Durable: true})
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	return e, kv
}

// TestDurableKVRecovery writes and deletes through a durable KV store,
// then replays the surviving log image into a fresh engine and checks the
// recovered state matches — including deletes and overwrites.
func TestDurableKVRecovery(t *testing.T) {
	e, kv := newDurableKV(t, true)
	defer e.Close()

	const n = 300
	for i := 0; i < n; i++ {
		if err := kv.Put(kvKey(i), []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := kv.Delete(kvKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 3 {
		if err := kv.Put(kvKey(i), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if ws := e.WALStatsSnapshot(); ws.Commits == 0 {
		t.Fatal("durable KV commits never reached the WAL")
	}

	img := e.LogImage()
	e2, kv2 := newDurableKV(t, true)
	defer e2.Close()
	applied, err := e2.RecoverAll(img, nil, map[string]*MVPBTKV{"kv": kv2})
	if err != nil {
		t.Fatalf("recover: %v (applied %d)", err, applied)
	}
	verifyKVState(t, kv2, n)
}

// TestDurableKVCheckpointRecovery checkpoints mid-history (truncating the
// log to a KV snapshot generation), keeps writing, and recovers from the
// authoritative generation.
func TestDurableKVCheckpointRecovery(t *testing.T) {
	e, kv := newDurableKV(t, false)
	defer e.Close()

	const n = 300
	for i := 0; i < n; i++ {
		if err := kv.Put(kvKey(i), []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := kv.Delete(kvKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ck := e.CheckpointInfo(); ck.Count != 1 {
		t.Fatalf("checkpoint did not complete: %+v", ck)
	}
	// Post-checkpoint history lands in the new generation.
	for i := 1; i < n; i += 3 {
		if err := kv.Put(kvKey(i), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	img := e.LogImage()
	e2, kv2 := newDurableKV(t, false)
	defer e2.Close()
	if _, err := e2.RecoverAll(img, nil, map[string]*MVPBTKV{"kv": kv2}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	verifyKVState(t, kv2, n)
}

func kvKey(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }

// verifyKVState checks the i%3 pattern the tests above write: i%3==0
// deleted, i%3==1 overwritten with v1, i%3==2 still v0.
func verifyKVState(t *testing.T, kv *MVPBTKV, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v, ok, err := kv.Get(kvKey(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		switch i % 3 {
		case 0:
			if ok {
				t.Fatalf("key %d: deleted key resurfaced with %q", i, v)
			}
		case 1:
			if want := fmt.Sprintf("v1-%d", i); !ok || string(v) != want {
				t.Fatalf("key %d: got %q/%v want %q", i, v, ok, want)
			}
		case 2:
			if want := fmt.Sprintf("v0-%d", i); !ok || string(v) != want {
				t.Fatalf("key %d: got %q/%v want %q", i, v, ok, want)
			}
		}
	}
}
