package db

import (
	"fmt"
	"sync"
	"testing"

	"mvpbt/internal/index/lsm"
	"mvpbt/internal/maint"
)

// Engine lifecycle with the background maintenance service: eviction,
// merge and GC ride the service, and Close drains everything.

func TestEngineSyncModeHasNoService(t *testing.T) {
	e := NewEngine(Config{})
	if e.Maint != nil {
		t.Fatal("synchronous engine should not start a maintenance service")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCloseFlushesLSM(t *testing.T) {
	e := NewEngine(Config{BackgroundMaint: true})
	kv := NewLSMKV(e, "lsm", lsm.Options{MemtableBytes: 8 << 10})
	val := make([]byte, 64)
	n := 800
	for i := 0; i < n; i++ {
		if err := kv.Put(key(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := kv.Tree().Stats()
	if st.Flushes == 0 {
		t.Fatal("no flush ran")
	}
	if kv.Tree().PendingMemtables() != 0 {
		t.Fatalf("Close left %d frozen memtables", kv.Tree().PendingMemtables())
	}
	got := 0
	if err := kv.Scan(nil, n+1, func(k, v []byte) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scan saw %d keys, want %d", got, n)
	}
	// Idempotent: a second Close is a no-op with the same result.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBackgroundMVPBT(t *testing.T) {
	e := NewEngine(Config{
		BackgroundMaint:      true,
		PartitionBufferBytes: 64 << 10,
	})
	kv, err := NewMVPBTKV(e, "mv", MVPBTKVOptions{BloomBits: 10, MaxPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				k := key(i % 500) // updates stack versions → garbage for GC
				if err := kv.Put(k, val); err != nil {
					t.Error(err)
					return
				}
				if i%31 == 0 {
					if _, ok, err := kv.Get(k); err != nil || !ok {
						t.Errorf("key %s lost: ok=%v err=%v", k, ok, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.PBuf.Evictions() == 0 {
		t.Fatal("background eviction never ran despite tiny partition buffer")
	}
	st := e.Maint.Stats()
	if st.Jobs[maint.Evict].Runs == 0 {
		t.Fatalf("no evict jobs ran: %+v", st)
	}
	// All 500 live keys readable after shutdown.
	for i := 0; i < 500; i++ {
		if _, ok, err := kv.Get(key(i)); err != nil || !ok {
			t.Fatalf("key %s lost after Close: ok=%v err=%v", key(i), ok, err)
		}
	}
}

func TestEngineCloseReportsJobError(t *testing.T) {
	e := NewEngine(Config{BackgroundMaint: true})
	wantErr := fmt.Errorf("closer failed")
	e.AddCloser(func() error { return wantErr })
	if err := e.Close(); err != wantErr {
		t.Fatalf("Close = %v, want %v", err, wantErr)
	}
	if err := e.Close(); err != wantErr {
		t.Fatalf("second Close = %v, want the cached %v", err, wantErr)
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }
