package db

import (
	"fmt"
	"testing"

	"mvpbt/internal/index/lsm"
	"mvpbt/internal/util"
)

func kvEngines(t *testing.T) map[string]KV {
	t.Helper()
	out := map[string]KV{}
	eb := NewEngine(Config{BufferPages: 2048})
	bt, err := NewBTreeKV(eb, "bt")
	if err != nil {
		t.Fatal(err)
	}
	out["btree"] = bt
	el := NewEngine(Config{BufferPages: 2048})
	out["lsm"] = NewLSMKV(el, "lsm", lsm.Options{MemtableBytes: 64 << 10})
	em := NewEngine(Config{BufferPages: 2048, PartitionBufferBytes: 128 << 10})
	mv, err := NewMVPBTKV(em, "mv", MVPBTKVOptions{BloomBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	out["mvpbt"] = mv
	return out
}

func TestKVPutGetDelete(t *testing.T) {
	for name, kv := range kvEngines(t) {
		t.Run(name, func(t *testing.T) {
			if err := kv.Put([]byte("a"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := kv.Get([]byte("a"))
			if err != nil || !ok || string(v) != "1" {
				t.Fatalf("get: %q %v %v", v, ok, err)
			}
			if err := kv.Put([]byte("a"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			v, ok, _ = kv.Get([]byte("a"))
			if !ok || string(v) != "2" {
				t.Fatalf("overwrite lost: %q", v)
			}
			if err := kv.Delete([]byte("a")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := kv.Get([]byte("a")); ok {
				t.Fatal("deleted key visible")
			}
			if _, ok, _ := kv.Get([]byte("never")); ok {
				t.Fatal("absent key visible")
			}
		})
	}
}

func TestKVScan(t *testing.T) {
	for name, kv := range kvEngines(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 100; i++ {
				kv.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
			}
			var keys []string
			err := kv.Scan([]byte("k0040"), 10, func(k, v []byte) bool {
				keys = append(keys, string(k))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 10 || keys[0] != "k0040" || keys[9] != "k0049" {
				t.Fatalf("scan wrong: %v", keys)
			}
		})
	}
}

func TestKVRandomizedModelEquivalence(t *testing.T) {
	engines := kvEngines(t)
	r := util.NewRand(31)
	model := map[string]string{}
	for step := 0; step < 5000; step++ {
		k := fmt.Sprintf("key-%04d", r.Intn(400))
		switch r.Intn(12) {
		case 0:
			for _, kv := range engines {
				if err := kv.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			delete(model, k)
		default:
			v := fmt.Sprintf("val-%d", step)
			for _, kv := range engines {
				if err := kv.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
			}
			model[k] = v
		}
	}
	for name, kv := range engines {
		got := map[string]string{}
		err := kv.Scan([]byte("key-"), 1<<30, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(model) {
			t.Fatalf("%s: %d live keys, want %d", name, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("%s: key %s got %q want %q", name, k, got[k], v)
			}
		}
	}
}
